(* RPSLyzer command-line interface.

   Subcommands:
     gen      generate a synthetic world directory (IRR dumps, AS
              relationships, collector table dumps)
     parse    parse RPSL dumps and export the IR as JSON
     stats    Section-4 characterization report
     verify   verify collector routes against the RPSL, print aggregates
     explain  verify one route and print the per-hop report
     whois    look up one object in the parsed database *)

open Cmdliner

let dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"World directory (see $(b,gen)).")

(* Exit policy: commands run under [guarded], so hard failures from
   hostile inputs (unreadable world directory, malformed as-rel.txt or
   table dumps — surfaced as Sys_error/Invalid_argument/Failure) print a
   diagnostic and exit 1 instead of dying with an OCaml backtrace.
   [faultinject] additionally exits 2 for partial failure: the pipeline
   completed but recovery paths fired (keep-going semantics). *)
let guarded body =
  try body () with
  | Failure msg | Invalid_argument msg | Sys_error msg ->
    Printf.eprintf "rpslyzer: %s\n%!" msg;
    exit 1

(* ---------------- observability options ---------------- *)

(* Shared flags enabling the Rz_obs registry and the Rz_trace layer
   around a command body:

     --metrics [FILE]         final JSON snapshot (FILE "-" = stdout)
     --trace FILE             Chrome trace_event export of the span tree
                              plus sampled hop records
     --trace-sample POLICY    hop decision-trace sampling: all | off |
                              quota:N (default quota:64 when --trace is
                              given, off otherwise)
     --metrics-stream FILE    periodic JSONL snapshots from a sampler
                              domain, every --metrics-interval seconds *)

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "-") (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Collect pipeline metrics (phase timings, counters, latency \
           histograms) and write them as a JSON snapshot to $(docv) when the \
           command finishes. $(docv) '-', or the flag without a value, \
           prints the JSON to stdout.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON array to $(docv) when the command \
           finishes: every Rz_obs span as a complete event (one lane per \
           domain) plus the sampled hop decision records as instant events. \
           Load it in chrome://tracing or Perfetto. Implies metric \
           collection.")

let sampling_conv =
  let parse s =
    match Rpslyzer.Trace.sampling_of_string s with
    | Some p -> Ok p
    | None ->
      Error (`Msg (Printf.sprintf "invalid sampling policy %S (all | off | quota:N)" s))
  in
  let print fmt p = Format.pp_print_string fmt (Rpslyzer.Trace.sampling_to_string p) in
  Arg.conv (parse, print)

let trace_sample_arg =
  Arg.(
    value
    & opt (some sampling_conv) None
    & info [ "trace-sample" ] ~docv:"POLICY"
        ~doc:
          "Hop decision-trace sampling policy: $(b,all), $(b,off), or \
           $(b,quota:N) (keep the first N records per verdict class per \
           domain). Defaults to quota:64 when $(b,--trace) is given, off \
           otherwise.")

let stream_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-stream" ] ~docv:"FILE"
        ~doc:
          "Stream metrics for long runs: a sampler domain appends one JSONL \
           line (elapsed seconds + full registry snapshot) to $(docv) every \
           $(b,--metrics-interval) seconds, plus a final line at exit. \
           Implies metric collection.")

let interval_arg =
  Arg.(
    value & opt float 5.0
    & info [ "metrics-interval" ] ~docv:"SECONDS"
        ~doc:"Sampling interval for $(b,--metrics-stream) (default 5.0).")

let prom_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom-file" ] ~docv:"FILE"
        ~doc:
          "Write the final registry snapshot in the Prometheus text \
           exposition format to $(docv) when the command finishes \
           (counters, gauges, cumulative histogram buckets, rolling \
           windows, spans). $(docv) '-' prints to stdout. Implies metric \
           collection; validated by the $(b,prom_check) tool.")

type obs_opts = {
  o_metrics : string option;
  o_trace : string option;
  o_sample : Rpslyzer.Trace.sampling option;
  o_stream : string option;
  o_interval : float;
  o_prom : string option;
}

let obs_opts_term =
  Term.(
    const (fun o_metrics o_trace o_sample o_stream o_interval o_prom ->
        { o_metrics; o_trace; o_sample; o_stream; o_interval; o_prom })
    $ metrics_arg $ trace_arg $ trace_sample_arg $ stream_arg $ interval_arg
    $ prom_arg)

(* Shared --snapshot FILE flag (parse/stats/verify): binary IR snapshot
   cache keyed on the dumps' digest. A valid, current snapshot skips
   parsing entirely; anything else — absent, stale, corrupt — falls back
   to a (parallel) parse and rewrites the file. *)
let snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ] ~docv:"FILE"
        ~doc:
          "Cache the parsed IR in $(docv). When $(docv) already holds a \
           snapshot built from exactly these dumps, loading it replaces the \
           parse (counted as snapshot.hits); a stale, truncated, or corrupt \
           file is ignored (snapshot.misses / snapshot.rejects) and \
           rewritten after the parse.")

(* Shared --domains N flag (verify/stream/rpki): worker-domain count for
   the parallel ingest behind the world load. Defaults to the host
   recommendation, which the RPSLYZER_DOMAINS environment variable
   overrides (Rz_util.Domains) — flag beats env beats autodetect. *)
let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel ingest. Defaults to the host's \
           recommended count; the $(b,RPSLYZER_DOMAINS) environment \
           variable overrides that default, and this flag overrides both.")

let write_file ~what path contents =
  try
    let oc = open_out path in
    output_string oc contents;
    output_char oc '\n';
    close_out oc
  with Sys_error e ->
    Printf.eprintf "rpslyzer: cannot write %s: %s\n%!" what e;
    exit 1

(* Wrap a command body in the observability lifecycle: enable the
   registry when any flag asks for it, stamp run metadata into
   [Obs.Meta], configure hop-trace sampling, install the Chrome span
   sink and the metrics-stream sampler, and in the [Fun.protect]
   finalizer tear it all down in dependency order — duration metadata
   first (so the stream's final line carries it), then the stream, then
   the trace export, then the metrics snapshot. *)
let with_obs ~cmd ?seed opts body =
  let module T = Rpslyzer.Trace in
  let any =
    opts.o_metrics <> None || opts.o_trace <> None || opts.o_stream <> None
    || opts.o_prom <> None
  in
  if any then Rpslyzer.Obs.enable ();
  if Rpslyzer.Obs.enabled () then begin
    Rpslyzer.Obs.Meta.set "subcommand" (Rpslyzer.Json.String cmd);
    Rpslyzer.Obs.Meta.set "start_unix_s" (Rpslyzer.Json.Float (Unix.gettimeofday ()));
    Rpslyzer.Obs.Meta.set "domains"
      (Rpslyzer.Json.Int (Rz_util.Domains.recommended ()));
    match seed with
    | Some s -> Rpslyzer.Obs.Meta.set "seed" (Rpslyzer.Json.Int s)
    | None -> ()
  end;
  (match (opts.o_sample, opts.o_trace) with
   | Some policy, _ -> T.configure policy
   | None, Some _ -> T.configure (T.Per_status 64)
   | None, None -> ());
  if opts.o_trace <> None then T.Chrome.install ();
  let stream =
    Option.map
      (fun path -> T.Metrics_stream.start ~interval_s:opts.o_interval path)
      opts.o_stream
  in
  let t0 = Unix.gettimeofday () in
  Fun.protect body ~finally:(fun () ->
      if Rpslyzer.Obs.enabled () then
        Rpslyzer.Obs.Meta.set "duration_s"
          (Rpslyzer.Json.Float (Unix.gettimeofday () -. t0));
      (match stream with Some s -> T.Metrics_stream.stop s | None -> ());
      (match opts.o_trace with
       | Some path ->
         T.Chrome.uninstall ();
         let json = T.Chrome.export ~records:(T.records ()) () in
         write_file ~what:"trace" path (Rpslyzer.Json.to_string json)
       | None -> ());
      if T.enabled () then T.configure T.Off;
      (match opts.o_prom with
       | None -> ()
       | Some dest ->
         let text =
           Rpslyzer.Obs.to_prometheus (Rpslyzer.Obs.Registry.snapshot ())
         in
         if dest = "-" then print_string text
         else write_file ~what:"prometheus exposition" dest text);
      match opts.o_metrics with
      | None -> ()
      | Some dest ->
        let json =
          Rpslyzer.Json.to_string
            (Rpslyzer.Obs.Registry.to_json (Rpslyzer.Obs.Registry.snapshot ()))
        in
        if dest = "-" then print_endline json
        else write_file ~what:"metrics" dest json)

(* ---------------- gen ---------------- *)

(* Populations of the paper preset at --scale 1.0, shrunk linearly by
   --scale (with small floors so tiny scales still produce a connected,
   verifiable world). Full scale approximates the paper's run: ~75k
   registered ASes, 60 collectors peering with the large networks. *)
let paper_preset ~scale =
  let sc base floor =
    max floor (int_of_float (Float.round (scale *. float_of_int base)))
  in
  ( sc 20 3 (* tier1 *),
    sc 2500 10 (* mid *),
    sc 72000 40 (* stub *),
    sc 60 2 (* collectors *),
    sc 300 4 (* collector-peer mids *) )

let gen_cmd =
  let run obs seed n_tier1 n_mid n_stub out world_scale scale roa_adoption
      roa_wrong roa_stale roa_hostile journal_ops journal_out =
    guarded @@ fun () ->
    with_obs ~cmd:"gen" ~seed obs @@ fun () ->
    let irr_config = { Rz_synthirr.Config.default with seed = seed + 1 } in
    let topo =
      match world_scale with
      | None ->
        let topo_params =
          { Rz_topology.Gen.default_params with seed; n_tier1; n_mid; n_stub }
        in
        let world =
          Rpslyzer.Pipeline.build_synthetic ~topo_params ~irr_config ()
        in
        Rpslyzer.Pipeline.save_world world out;
        let n_routes =
          List.fold_left
            (fun acc (d : Rz_bgp.Table_dump.t) -> acc + List.length d.routes)
            0 world.table_dumps
        in
        Printf.printf
          "wrote %d IRR dumps, as-rel.txt, %d collector routes to %s\n"
          (List.length world.dumps) n_routes out;
        world.topo
      | Some preset ->
        if preset <> "paper" then
          failwith (Printf.sprintf "unknown --world-scale preset %S" preset);
        (* Paper-scale path: same generators, but the collector RIBs are
           streamed to disk one route at a time instead of being
           materialized — at full scale the in-memory RIB, not the
           topology, is the peak-RSS ceiling. The dumps are not parsed
           back here; that is verify's job (and its snapshot cache's). *)
        let n_tier1, n_mid, n_stub, n_collectors, n_peer_mids =
          paper_preset ~scale
        in
        let topo_params =
          { Rz_topology.Gen.default_params with seed; n_tier1; n_mid; n_stub }
        in
        let topo = Rz_topology.Gen.generate topo_params in
        let synth = Rz_synthirr.Generate.generate ~config:irr_config topo in
        if not (Sys.file_exists out) then Sys.mkdir out 0o755;
        List.iter
          (fun (irr, text) ->
            let oc = open_out (Filename.concat out (irr ^ ".db")) in
            output_string oc text;
            close_out oc)
          synth.Rz_synthirr.Generate.dumps;
        Rz_asrel.Rel_db.save topo.rels (Filename.concat out "as-rel.txt");
        let peers =
          Rz_routegen.Propagate.default_collector_peers topo ~n:n_peer_mids
        in
        let total = ref 0 in
        Rz_routegen.Propagate.iter_collector_dumps topo ~n_collectors ~peers
          ~f:(fun ~collector run ->
            let oc = open_out (Filename.concat out (collector ^ ".routes")) in
            Printf.fprintf oc "# collector: %s\n" collector;
            run (fun route ->
                output_string oc (Rz_bgp.Route.to_line route);
                output_char oc '\n';
                incr total);
            close_out oc);
        Printf.printf
          "wrote %d IRR dumps, as-rel.txt, %d collector routes to %s (paper \
           preset at scale %g, %d collectors, streamed)\n"
          (List.length synth.Rz_synthirr.Generate.dumps)
          !total out scale n_collectors;
        topo
    in
    let roagen =
      Rz_rpki.Roagen.generate
        ~config:
          { seed = seed + 2;
            adoption = roa_adoption;
            wrong_maxlen_prob = roa_wrong;
            stale_origin_prob = roa_stale;
            hostile_covering_prob = roa_hostile }
        topo
    in
    let roa_path = Filename.concat out "roas.csv" in
    write_file ~what:"roas.csv" roa_path
      (Rz_rpki.Roa.render roagen.roas);
    let s = roagen.stats in
    Printf.printf
      "wrote %d ROAs (%d clean, %d wrong-maxLength, %d stale-origin, %d \
       hostile-covering) to %s\n"
      (List.length roagen.roas)
      s.Rz_rpki.Roagen.n_clean s.n_wrong_maxlen s.n_stale s.n_hostile roa_path;
    if journal_ops > 0 then begin
      (* NRTM-style churn journal over the dumps just written, for the
         serve subcommand's live generation swaps (!u). *)
      let dumps = Rpslyzer.Pipeline.load_dumps out in
      let ops = Rz_synthirr.Nrtm.generate ~seed:(seed + 3) ~n:journal_ops dumps in
      let path =
        match journal_out with
        | Some path -> path
        | None -> Filename.concat out "journal.nrtm"
      in
      let oc = open_out path in
      output_string oc (Rz_synthirr.Nrtm.render ops);
      close_out oc;
      Printf.printf "wrote %d-op NRTM journal to %s\n" (List.length ops) path
    end
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let n_tier1 = Arg.(value & opt int 5 & info [ "tier1" ] ~doc:"Number of Tier-1 ASes.") in
  let n_mid = Arg.(value & opt int 120 & info [ "mid" ] ~doc:"Number of transit ASes.") in
  let n_stub = Arg.(value & opt int 500 & info [ "stub" ] ~doc:"Number of stub ASes.") in
  let out =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let roa_adoption =
    Arg.(
      value & opt float Rz_rpki.Roagen.default.adoption
      & info [ "roa-adoption" ] ~docv:"P"
          ~doc:"Probability an AS signs ROAs for its prefixes.")
  in
  let roa_wrong =
    Arg.(
      value & opt float Rz_rpki.Roagen.default.wrong_maxlen_prob
      & info [ "roa-wrong-maxlen" ] ~docv:"P"
          ~doc:"Per-prefix probability of a misconfigured-maxLength ROA.")
  in
  let roa_stale =
    Arg.(
      value & opt float Rz_rpki.Roagen.default.stale_origin_prob
      & info [ "roa-stale" ] ~docv:"P"
          ~doc:"Per-prefix probability of a stale-origin ROA.")
  in
  let roa_hostile =
    Arg.(
      value & opt float Rz_rpki.Roagen.default.hostile_covering_prob
      & info [ "roa-hostile" ] ~docv:"P"
          ~doc:"Per-prefix probability of a hostile covering ROA.")
  in
  let world_scale =
    Arg.(
      value
      & opt (some string) None
      & info [ "world-scale" ] ~docv:"PRESET"
          ~doc:
            "Population preset; the only value is $(b,paper) (the paper's \
             run shape: ~75k ASes and 60 collectors at $(b,--scale) 1.0). \
             Collector RIBs are then streamed to disk one route at a time \
             instead of being built in memory, and $(b,--tier1/--mid/--stub) \
             are ignored.")
  in
  let scale =
    Arg.(
      value & opt float 0.01
      & info [ "scale" ] ~docv:"F"
          ~doc:
            "Linear shrink factor for $(b,--world-scale) populations \
             (1.0 = full paper scale).")
  in
  let journal_ops =
    Arg.(
      value & opt int 0
      & info [ "journal-ops" ] ~docv:"N"
          ~doc:
            "Also emit an NRTM-style add/modify/delete journal of about \
             $(docv) operations against the written dumps, for \
             $(b,serve --journal) live generation swaps. 0 (default) \
             skips it.")
  in
  let journal_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-out" ] ~docv:"FILE"
          ~doc:
            "Where to write the $(b,--journal-ops) journal (default \
             DIR/journal.nrtm).")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:"Generate a synthetic world (IRRs, relationships, BGP dumps, ROAs).")
    Term.(
      const run $ obs_opts_term $ seed $ n_tier1 $ n_mid $ n_stub $ out
      $ world_scale $ scale $ roa_adoption $ roa_wrong $ roa_stale
      $ roa_hostile $ journal_ops $ journal_out)

(* ---------------- parse ---------------- *)

let parse_cmd =
  let run obs dir snapshot output indent =
    guarded @@ fun () ->
    with_obs ~cmd:"parse" obs @@ fun () ->
    let dumps = Rpslyzer.Pipeline.load_dumps dir in
    let ir =
      match snapshot with
      | Some file -> Rz_ingest.Ingest.ingest_cached ~snapshot:file dumps
      | None -> Rz_ingest.Ingest.ingest dumps
    in
    let json = Rz_ir.Ir_json.export_string ~indent ir in
    (match output with
     | Some path ->
       let oc = open_out path in
       output_string oc json;
       close_out oc;
       Printf.printf "wrote IR for %d aut-nums to %s\n"
         (Hashtbl.length ir.Rz_ir.Ir.aut_nums) path
     | None -> print_endline json)
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Write JSON here instead of stdout.")
  in
  let indent =
    Arg.(value & opt int 0 & info [ "indent" ] ~doc:"Pretty-print with this indent.")
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse the IRR dumps of a world and export the IR as JSON.")
    Term.(const run $ obs_opts_term $ dir_arg $ snapshot_arg $ output $ indent)

(* ---------------- stats ---------------- *)

let print_table1 (rows : Rz_stats.Usage.table1_row list) =
  Rz_util.Table.print
    ~header:[ "IRR"; "SIZE (KiB)"; "aut-num"; "route"; "import"; "export" ]
    (List.map
       (fun (r : Rz_stats.Usage.table1_row) ->
         [ r.irr;
           string_of_int (r.size_bytes / 1024);
           Rz_util.Table.commas r.n_aut_num;
           Rz_util.Table.commas r.n_route;
           Rz_util.Table.commas r.n_import;
           Rz_util.Table.commas r.n_export ])
       rows)

let stats_cmd =
  let run obs dir snapshot =
    guarded @@ fun () ->
    with_obs ~cmd:"stats" obs @@ fun () ->
    let world = Rpslyzer.Pipeline.load_world ?snapshot dir in
    let u = Rpslyzer.Pipeline.usage world in
    print_endline "== Table 1: IRRs ==";
    print_table1 u.table1;
    Printf.printf "\npeering definitions that are a single ASN or ANY: %s\n"
      (Rz_util.Table.pct u.peering_simple_fraction);
    Printf.printf "ASes with rules fully BGPq4-compatible: %s\n"
      (Rz_util.Table.pct u.ases_bgpq4_only);
    print_endline "\n== Rules per aut-num (CCDF) ==";
    List.iter
      (fun (x, f) -> Printf.printf "  P(rules >= %4d) = %s\n" x (Rz_util.Table.pct f))
      (Rz_util.Stats_util.ccdf_at (List.map snd u.rules_per_aut_num) [ 1; 10; 100; 1000 ]);
    print_endline "\n== Route objects ==";
    Printf.printf "  objects %s / unique pairs %s / unique prefixes %s\n"
      (Rz_util.Table.commas u.route_stats.n_objects)
      (Rz_util.Table.commas u.route_stats.n_prefix_origin)
      (Rz_util.Table.commas u.route_stats.n_prefixes);
    Printf.printf "  multi-object %d, multi-origin %d, multi-maintainer %d prefixes\n"
      u.route_stats.multi_object_prefixes u.route_stats.multi_origin_prefixes
      u.route_stats.multi_maintainer_prefixes;
    print_endline "\n== as-sets ==";
    Printf.printf "  total %d: empty %d, singleton %d, recursive %d (loops %d, depth>=5 %d)\n"
      u.as_set_stats.n_sets u.as_set_stats.empty u.as_set_stats.singleton
      u.as_set_stats.recursive u.as_set_stats.with_loop u.as_set_stats.depth_5_plus;
    print_endline "\n== Errors ==";
    Printf.printf "  syntax %d, invalid as-set names %d, invalid route-set names %d\n"
      u.error_stats.syntax_errors u.error_stats.invalid_as_set_names
      u.error_stats.invalid_route_set_names
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Characterize RPSL usage (the paper's Section 4).")
    Term.(const run $ obs_opts_term $ dir_arg $ snapshot_arg)

(* ---------------- verify ---------------- *)

let verify_cmd =
  let run obs dir snapshot domains shards paper_compat verbose =
    guarded @@ fun () ->
    (* Sharded runs keep going past lost workers; the recovery counters
       drive the exit policy (degradation -> exit 2), so the registry is
       always on for them, like faultinject / rpki / stream. *)
    if shards > 0 then Rpslyzer.Obs.enable ();
    with_obs ~cmd:"verify" obs @@ fun () ->
    (* OCaml 5 refuses Unix.fork in a process that has ever spawned a
       domain, so a sharded run pins the ingest to one domain: process
       sharding replaces domain parallelism wholesale in this mode. *)
    let domains = if shards > 0 then Some 1 else domains in
    let world = Rpslyzer.Pipeline.load_world ?snapshot ?domains dir in
    let config = { Rz_verify.Engine.default_config with paper_compat } in
    let t0 = Unix.gettimeofday () in
    let agg, `Total total, `Excluded excluded =
      if shards > 0 then Rz_shard.Shard.verify_sharded ~config ~shards world
      else Rpslyzer.Pipeline.verify ~config world
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    Printf.printf "verified %d routes (%d excluded) in %.2fs (%.0f routes/s)\n" total
      excluded elapsed
      (float_of_int total /. elapsed);
    if shards > 0 then
      Printf.printf "aggregate fingerprint: %s (%d shards)\n"
        (Rz_verify.Aggregate.fingerprint agg)
        shards;
    let c = Rz_verify.Aggregate.overall agg in
    let hop_total = float_of_int (Rz_verify.Aggregate.n_hops agg) in
    print_endline "\n== hop statuses ==";
    List.iter
      (fun (label, count) ->
        Printf.printf "  %-11s %9s (%s)\n" label (Rz_util.Table.commas count)
          (Rz_util.Table.pct (float_of_int count /. hop_total)))
      (Rz_verify.Aggregate.counts_classes c);
    if verbose then begin
      let s2 = Rz_verify.Aggregate.per_as_summary agg in
      Printf.printf "\nASes: %d (single-status %s, all-verified %s)\n" s2.n_ases
        (Rz_util.Table.pct (float_of_int s2.all_same_status /. float_of_int s2.n_ases))
        (Rz_util.Table.pct (float_of_int s2.all_verified /. float_of_int s2.n_ases))
    end;
    if shards > 0 then begin
      let snapshot = Rpslyzer.Obs.Registry.snapshot () in
      let counters = Rpslyzer.Obs.Registry.counters snapshot in
      let value name = Option.value ~default:0 (List.assoc_opt name counters) in
      let degraded =
        List.exists
          (fun name -> value name > 0)
          Rpslyzer.Obs.recovery_counter_names
      in
      if degraded then begin
        print_endline "\nresult: DEGRADED (recovery paths fired; exit 2)";
        exit 2
      end
    end
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Verify across $(docv) forked worker processes (multi-process \
             shard-and-merge; 0 = in-process). The merged aggregate is \
             identical to the in-process run's; a worker whose result \
             frame is lost or corrupt is re-verified inline and counted \
             as degradation (exit 2).")
  in
  let paper_compat =
    Arg.(
      value & flag
      & info [ "paper-compat" ]
          ~doc:"Skip the rules the paper's implementation skips (community \
                filters, ASN ranges, ~ operators).")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Extra summaries.") in
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify collector routes against the RPSL (Section 5).")
    Term.(
      const run $ obs_opts_term $ dir_arg $ snapshot_arg $ domains_arg $ shards
      $ paper_compat $ verbose)

(* ---------------- explain ---------------- *)

let explain_cmd =
  let run dir json_out prefix path =
    guarded @@ fun () ->
    let world = Rpslyzer.Pipeline.load_world dir in
    match Rz_net.Prefix.of_string prefix with
    | Error e -> prerr_endline e; exit 1
    | Ok pfx ->
      let asns = List.filter_map (fun s -> Result.to_option (Rz_net.Asn.of_string s)) path in
      if List.length asns <> List.length path then begin
        prerr_endline "malformed ASN in path";
        exit 1
      end;
      let route = Rz_bgp.Route.make pfx asns in
      (match Rpslyzer.Pipeline.explain_route_traced world route with
       | Some e ->
         if json_out then
           print_endline
             (Rpslyzer.Json.to_string (Rpslyzer.Pipeline.explanation_to_json e))
         else print_endline (Rpslyzer.Pipeline.explanation_to_text e)
       | None ->
         if json_out then
           print_endline
             (Rpslyzer.Json.to_string
                (Rpslyzer.Json.Obj
                   [ ("route", Rpslyzer.Json.String (Rz_bgp.Route.to_line route));
                     ("excluded", Rpslyzer.Json.Bool true);
                     ("hops", Rpslyzer.Json.List []) ]))
         else print_endline "route excluded (single AS or AS_SET path)")
  in
  let json_out =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the explanation as JSON: one object per hop with its \
             Appendix-C verdict and the full provenance record (rule \
             consulted, filter kind, as-set expansion path, relaxation \
             trigger).")
  in
  let prefix =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PREFIX" ~doc:"Route prefix.")
  in
  let path =
    Arg.(value & pos_right 0 string [] & info [] ~docv:"ASN..." ~doc:"AS-path, collector side first.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Verify one route with decision tracing forced on and print the \
          per-hop report (Appendix C) with each hop's provenance.")
    Term.(const run $ dir_arg $ json_out $ prefix $ path)

(* ---------------- whois ---------------- *)

let whois_cmd =
  let run dir name =
    guarded @@ fun () ->
    let world = Rpslyzer.Pipeline.load_world dir in
    let db = world.db in
    let ir = Rz_irr.Db.ir db in
    let found = ref false in
    (match Rz_net.Asn.of_string name with
     | Ok asn when Rz_util.Strings.starts_with_ci ~prefix:"AS" name ->
       (match Rz_ir.Ir.find_aut_num ir asn with
        | Some an ->
          found := true;
          Printf.printf "aut-num: %s (source %s)\n" (Rz_net.Asn.to_string an.asn) an.source;
          List.iter
            (fun r -> Printf.printf "  %s\n" (Rz_policy.Ast.rule_to_string r))
            (an.imports @ an.exports)
        | None -> ())
     | _ -> ());
    (match Rz_ir.Ir.find_as_set ir name with
     | Some s ->
       found := true;
       Printf.printf "as-set: %s (source %s)\n" s.name s.source;
       Printf.printf "  direct: %s\n"
         (String.concat ", "
            (List.map Rz_net.Asn.to_string s.member_asns @ s.member_sets));
       let flat = Rz_irr.Db.flatten_as_set db s.name in
       Printf.printf "  flattened: %d ASNs (depth %d%s)\n"
         (Rz_irr.Db.Asn_set.cardinal flat)
         (Rz_irr.Db.as_set_depth db s.name)
         (if Rz_irr.Db.as_set_has_loop db s.name then ", loops" else "")
     | None -> ());
    (match Rz_ir.Ir.find_route_set ir name with
     | Some s ->
       found := true;
       Printf.printf "route-set: %s (source %s), %d flattened prefixes\n" s.name s.source
         (List.length (Rz_irr.Db.flatten_route_set db s.name))
     | None -> ());
    (match Rz_net.Prefix.of_string name with
     | Ok pfx ->
       let origins = Rz_irr.Db.exact_origins db pfx in
       if origins <> [] then begin
         found := true;
         List.iter
           (fun o ->
             Printf.printf "route: %s origin %s\n" (Rz_net.Prefix.to_string pfx)
               (Rz_net.Asn.to_string o))
           origins
       end
     | Error _ -> ());
    if not !found then begin
      Printf.printf "%% no entries found for %s\n" name;
      exit 1
    end
  in
  let name_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME" ~doc:"ASN, set name, or prefix.")
  in
  Cmd.v
    (Cmd.info "whois" ~doc:"Look up an object in the parsed database.")
    Term.(const run $ dir_arg $ name_arg)

(* ---------------- query (IRRd protocol) ---------------- *)

let query_cmd =
  let run dir queries =
    guarded @@ fun () ->
    let world = Rpslyzer.Pipeline.load_world dir in
    (* Both modes route through the service's shared dispatch, so the
       one-shot command applies exactly the admission guards the server
       does. *)
    if queries = [] then begin
      (* interactive: read query lines from stdin until EOF or !q.
         Flush per response — piped clients wait on each answer. *)
      try
        while true do
          let line = input_line stdin in
          match Rz_serve.Serve.dispatch world.db line with
          | Rz_irr.Irrd_query.Quit -> raise Exit
          | resp ->
            print_string (Rz_irr.Irrd_query.render resp);
            flush stdout
        done
      with End_of_file | Exit -> ()
    end
    else print_string (Rz_serve.Serve.session_lines world.db queries)
  in
  let queries =
    Arg.(value & pos_all string [] & info [] ~docv:"QUERY"
           ~doc:"IRRd-style queries, e.g. '!gAS65000' or '!iAS-FOO,1'. \
                 Reads stdin when none are given.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Answer IRRd-protocol queries against the parsed database.")
    Term.(const run $ dir_arg $ queries)

(* ---------------- serve (persistent IRRd query service) ---------------- *)

(* Connect-target syntax: a bare port number or "host:port" dials the
   loopback TCP listener (the host part is accepted for familiarity but
   always resolves to 127.0.0.1); anything else is a Unix socket path. *)
let serve_address_of_string s =
  match int_of_string_opt s with
  | Some p -> Rz_serve.Serve.Port p
  | None -> (
    match String.rindex_opt s ':' with
    | Some i -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some p -> Rz_serve.Serve.Port p
      | None -> Rz_serve.Serve.Socket s)
    | None -> Rz_serve.Serve.Socket s)

let serve_cmd =
  let run obs dir domains seed snapshot port socket workers max_inflight
      query_timeout_ms read_timeout_ms journal journal_batch access_log
      access_log_sample connect queries =
    guarded @@ fun () ->
    match connect with
    | Some target ->
      (* loopback client mode: send the queries, print the raw reply *)
      let reply =
        try Rz_serve.Serve.client (serve_address_of_string target) queries
        with Unix.Unix_error (e, _, _) ->
          failwith
            (Printf.sprintf "cannot connect to %s: %s" target
               (Unix.error_message e))
      in
      print_string reply;
      flush stdout
    | None ->
      (* Counters drive the exit policy (hostile queries -> exit 2), so
         the registry is always on here, like stream and faultinject. *)
      Rpslyzer.Obs.enable ();
      let degraded =
        with_obs ~cmd:"serve" ~seed obs @@ fun () ->
        let world =
          match dir with
          | Some dir -> Rpslyzer.Pipeline.load_world ?snapshot ?domains dir
          | None ->
            let topo_params =
              { Rz_topology.Gen.default_params with
                seed; n_tier1 = 3; n_mid = 40; n_stub = 150 }
            in
            let irr_config = { Rz_synthirr.Config.default with seed = seed + 1 } in
            Rpslyzer.Pipeline.build_synthetic ~topo_params ~irr_config ()
        in
        let journal_batches =
          match journal with
          | None -> []
          | Some path ->
            let text =
              try
                let ic = open_in_bin path in
                let text = really_input_string ic (in_channel_length ic) in
                close_in ic;
                text
              with Sys_error e -> failwith ("cannot read journal: " ^ e)
            in
            let ops, errors = Rz_synthirr.Nrtm.parse text in
            List.iteri
              (fun i (line, reason) ->
                if i < 5 then
                  Printf.eprintf "serve: journal line %d rejected: %s\n%!" line
                    reason)
              errors;
            (* chunk into batches of --journal-batch ops; each !u applies one *)
            let rec chunk acc cur n = function
              | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
              | op :: rest ->
                if n + 1 >= journal_batch then
                  chunk (List.rev (op :: cur) :: acc) [] 0 rest
                else chunk acc (op :: cur) (n + 1) rest
            in
            chunk [] [] 0 ops
        in
        let address =
          match (socket, port) with
          | Some path, _ -> Rz_serve.Serve.Socket path
          | None, Some p -> Rz_serve.Serve.Port p
          | None, None ->
            failwith "serve: pass --socket PATH or --port PORT (0 = ephemeral)"
        in
        let config =
          { Rz_serve.Serve.workers;
            max_inflight;
            query_timeout_ms;
            read_timeout_ms;
            max_line_bytes = Rz_serve.Serve.default_config.max_line_bytes }
        in
        let store = Rz_serve.Generation.init (Rz_irr.Db.ir world.db) in
        let alog =
          Option.map
            (fun path ->
              Rz_serve.Access_log.create ?sampling:access_log_sample path)
            access_log
        in
        Fun.protect
          ~finally:(fun () -> Option.iter Rz_serve.Access_log.close alog)
        @@ fun () ->
        let server =
          Rz_serve.Serve.start ~config ~journal:journal_batches ?access_log:alog
            store address
        in
        (match address with
         | Rz_serve.Serve.Port _ ->
           Printf.printf "listening on 127.0.0.1:%d (%d workers, %d pending journal batches)\n%!"
             (Rz_serve.Serve.port server) workers (List.length journal_batches)
         | Rz_serve.Serve.Socket path ->
           Printf.printf "listening on %s (%d workers, %d pending journal batches)\n%!"
             path workers (List.length journal_batches));
        (* Park until SIGTERM/SIGINT. The handler only flips a flag: the
           actual teardown (and the metrics finalizer in with_obs) runs
           on the main thread so shutdown stays clean. *)
        let stop_requested = Atomic.make false in
        let handler = Sys.Signal_handle (fun _ -> Atomic.set stop_requested true) in
        Sys.set_signal Sys.sigterm handler;
        Sys.set_signal Sys.sigint handler;
        while not (Atomic.get stop_requested) do
          Unix.sleepf 0.1
        done;
        Rz_serve.Serve.stop server;
        Printf.printf "stopped at generation %d (serial %d)\n%!"
          (Rz_serve.Generation.generation store)
          (Rz_serve.Generation.last_serial store);
        let snapshot = Rpslyzer.Obs.Registry.snapshot () in
        let counters = Rpslyzer.Obs.Registry.counters snapshot in
        let value name = Option.value ~default:0 (List.assoc_opt name counters) in
        List.exists
          (fun name -> value name > 0)
          Rpslyzer.Obs.recovery_counter_names
      in
      if degraded then exit 2
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR"
          ~doc:"World directory to serve; a small synthetic world is \
                generated in memory when omitted.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Synthetic-world seed.")
  in
  let port =
    Arg.(
      value
      & opt (some int) None
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Listen on loopback TCP $(docv); 0 binds an ephemeral port \
                (printed on startup).")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv) (takes precedence \
                over $(b,--port)).")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Worker domains answering queries.")
  in
  let max_inflight =
    Arg.(
      value & opt int 64
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Queued sessions beyond which new connections are refused \
                with 'F server busy'.")
  in
  let query_timeout_ms =
    Arg.(
      value & opt int 1000
      & info [ "query-timeout-ms" ] ~docv:"MS"
          ~doc:"Per-query deadline; an answer that took longer is replaced \
                by 'F query deadline exceeded'. 0 disables.")
  in
  let read_timeout_ms =
    Arg.(
      value & opt int 10000
      & info [ "read-timeout-ms" ] ~docv:"MS"
          ~doc:"Per-read socket deadline; a session stalling mid-line past \
                it is dropped (slowloris guard).")
  in
  let journal =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:"NRTM-style journal (see $(b,Rz_synthirr.Nrtm)); queued in \
                batches that the $(b,!u) control query applies as live \
                copy-on-write generation swaps.")
  in
  let journal_batch =
    Arg.(
      value & opt int 16
      & info [ "journal-batch" ] ~docv:"N"
          ~doc:"Journal ops applied per $(b,!u) (default 16).")
  in
  let access_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Structured per-query access log: one JSON object per query \
             (ts, peer, query, response class, latency_ns, generation, \
             serial, rejected reason) appended to $(docv) from a bounded \
             writer queue; records that would block are dropped and \
             counted on obs.accesslog_dropped.")
  in
  let access_log_sample =
    Arg.(
      value
      & opt (some sampling_conv) None
      & info [ "access-log-sample" ] ~docv:"POLICY"
          ~doc:
            "Access-log sampling: $(b,all) (default), $(b,off), or \
             $(b,quota:N) (keep the first N records per response class) — \
             the rz_trace sampling dial applied to the access log.")
  in
  let connect =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Client mode: connect to a running server at $(docv) (a port \
                number, host:port, or Unix socket path), send the QUERY \
                arguments, print the raw protocol reply, and exit.")
  in
  let queries =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"QUERY"
          ~doc:"Queries to send in $(b,--connect) client mode.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent IRRd query service: concurrent client \
          sessions over live NRTM-updated database generations. Exits 0 \
          on clean SIGTERM shutdown, 2 when recovery guards fired \
          (hostile queries, shed sessions), 1 on hard failure.")
    Term.(
      const run $ obs_opts_term $ dir $ domains_arg $ seed $ snapshot_arg
      $ port $ socket $ workers $ max_inflight $ query_timeout_ms
      $ read_timeout_ms $ journal $ journal_batch $ access_log
      $ access_log_sample $ connect $ queries)

(* ---------------- top ---------------- *)

(* Unframe one "A<len>\n<payload>\nC\n" IRRd protocol reply. *)
let unframe_data reply =
  if String.length reply < 2 || reply.[0] <> 'A' then None
  else
    match String.index_opt reply '\n' with
    | None -> None
    | Some i -> (
      match int_of_string_opt (String.sub reply 1 (i - 1)) with
      | Some len when String.length reply >= i + 1 + len ->
        Some (String.sub reply (i + 1) len)
      | _ -> None)

(* "# meta <key> <json>" comment lines in the !s exposition. *)
let meta_of_exposition payload key =
  let prefix = Printf.sprintf "# meta %s " key in
  List.find_map
    (fun line ->
      if String.length line > String.length prefix
         && String.sub line 0 (String.length prefix) = prefix
      then begin
        let v =
          String.sub line (String.length prefix)
            (String.length line - String.length prefix)
        in
        match Rpslyzer.Json.of_string v with
        | Ok (Rpslyzer.Json.String s) -> Some s
        | Ok j -> Some (Rpslyzer.Json.to_string j)
        | Error _ -> Some v
      end
      else None)
    (String.split_on_char '\n' payload)

let top_cmd =
  let run connect interval once =
    guarded @@ fun () ->
    let addr = serve_address_of_string connect in
    let fetch () =
      let reply =
        try Rz_serve.Serve.client addr [ "!s" ]
        with Unix.Unix_error (e, _, _) ->
          failwith
            (Printf.sprintf "cannot connect to %s: %s" connect
               (Unix.error_message e))
      in
      match unframe_data reply with
      | None ->
        failwith
          "server did not answer !s with a data frame (not a telemetry-capable \
           server?)"
      | Some payload -> (
        match Rpslyzer.Obs.parse_prometheus payload with
        | Error e -> failwith ("!s exposition does not parse: " ^ e)
        | Ok samples -> (payload, samples))
    in
    let render () =
      let payload, samples = fetch () in
      let v name =
        List.find_map
          (fun (s : Rpslyzer.Obs.prom_sample) ->
            if s.p_name = name && s.p_labels = [] then Some s.p_value else None)
          samples
      in
      let num name = Option.value ~default:0.0 (v name) in
      let ms ns = ns /. 1e6 in
      let b = Buffer.create 1024 in
      let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
      let fingerprint =
        Option.value ~default:"-" (meta_of_exposition payload "generation_fingerprint")
      in
      let stopping = meta_of_exposition payload "stopping" = Some "true" in
      line "rpslyzer top — %s%s" connect (if stopping then "  [STOPPING]" else "");
      line "generation %.0f (serial %.0f)  fingerprint %s"
        (num "serve_generation") (num "serve_serial") fingerprint;
      line "";
      line "  qps (window)      %10.2f   rejects/s        %10.2f"
        (num "serve_query_window_window_rate")
        (num "serve_reject_window_window_rate");
      line "  query p50         %8.3f ms   query p99      %10.3f ms"
        (ms (num "serve_query_window_window_p50"))
        (ms (num "serve_query_window_window_p99"));
      line "  sessions active   %10.0f   queue depth      %10.0f"
        (num "serve_sessions_active") (num "serve_queue_depth");
      line "  queries total     %10.0f   rejected         %10.0f"
        (num "serve_queries_total") (num "serve_queries_rejected");
      line "  query timeouts    %10.0f   sessions dropped %10.0f"
        (num "serve_query_timeouts") (num "serve_sessions_dropped");
      line "  accesslog dropped %10.0f   watchdog trips   %10.0f"
        (num "obs_accesslog_dropped") (num "stream_watchdog_trips");
      Buffer.contents b
    in
    if once then print_string (render ())
    else begin
      let stop_requested = Atomic.make false in
      let handler = Sys.Signal_handle (fun _ -> Atomic.set stop_requested true) in
      Sys.set_signal Sys.sigint handler;
      Sys.set_signal Sys.sigterm handler;
      while not (Atomic.get stop_requested) do
        let screen = render () in
        (* clear + home, then one coherent frame *)
        print_string "\027[2J\027[H";
        print_string screen;
        flush stdout;
        let rec nap left =
          if left > 0. && not (Atomic.get stop_requested) then begin
            Unix.sleepf (Float.min 0.2 left);
            nap (left -. 0.2)
          end
        in
        nap interval
      done
    end
  in
  let connect =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Server to poll (a port number, host:port, or Unix socket \
                path).")
  in
  let interval =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Refresh interval (default 2.0).")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Render a single frame to stdout and exit (no screen \
                clearing) — the scriptable mode the smoke tests drive.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live one-screen health view of a running serve process: polls \
          the $(b,!s) telemetry scrape and renders windowed qps, rolling \
          p50/p99 latency, in-flight sessions, rejects, the live \
          generation/serial/fingerprint, and watchdog state.")
    Term.(const run $ connect $ interval $ once)

(* ---------------- peval ---------------- *)

let peval_cmd =
  let run dir expr aggregate =
    guarded @@ fun () ->
    let world = Rpslyzer.Pipeline.load_world dir in
    match Rz_irr.Filter_eval.eval_string world.db expr with
    | Error e -> prerr_endline e; exit 1
    | Ok result ->
      if aggregate then
        List.iter
          (fun p -> print_endline (Rz_net.Prefix.to_string p))
          (Rz_irr.Filter_eval.to_prefix_list result)
      else
        List.iter
          (fun (p, op) ->
            Printf.printf "%s%s\n" (Rz_net.Prefix.to_string p)
              (Rz_net.Range_op.to_string op))
          result.prefixes;
      List.iter (Printf.eprintf "%% unresolved: %s\n") result.unresolved;
      if result.unresolved <> [] then exit 2
  in
  let expr =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILTER"
           ~doc:"RPSL filter expression, e.g. 'AS-FOO AND NOT AS65001'.")
  in
  let aggregate =
    Arg.(value & flag & info [ "A"; "aggregate" ] ~doc:"Aggregate adjacent prefixes.")
  in
  Cmd.v
    (Cmd.info "peval" ~doc:"Materialize a filter expression to its prefix set (IRRToolSet's peval).")
    Term.(const run $ dir_arg $ expr $ aggregate)

(* ---------------- lint ---------------- *)

let lint_cmd =
  let run dir errors_only fix =
    guarded @@ fun () ->
    let world = Rpslyzer.Pipeline.load_world dir in
    let diags = Rz_lint.Linter.lint ~rels:world.rels world.db in
    let diags =
      if errors_only then
        List.filter (fun (d : Rz_lint.Linter.diagnostic) -> d.severity = Rz_lint.Linter.Error) diags
      else diags
    in
    List.iter (fun d -> print_endline (Rz_lint.Linter.diagnostic_to_string d)) diags;
    Printf.printf "%% %d diagnostics\n" (List.length diags);
    if fix then begin
      let ir = Rz_irr.Db.ir world.db in
      Hashtbl.iter
        (fun asn _ ->
          match Rz_lint.Rewrite.suggest ~rels:world.rels world.db asn with
          | Some s ->
            Printf.printf "\n%% suggested rewrite for AS%d:\n" asn;
            List.iter
              (fun (c : Rz_lint.Rewrite.change) ->
                Printf.printf "-%s\n+%s\n  (%s)\n" c.before c.after c.reason)
              s.changes
          | None -> ())
        ir.Rz_ir.Ir.aut_nums
    end;
    if List.exists (fun (d : Rz_lint.Linter.diagnostic) -> d.severity = Rz_lint.Linter.Error) diags
    then exit 1
  in
  let errors_only =
    Arg.(value & flag & info [ "errors-only" ] ~doc:"Only report errors.")
  in
  let fix =
    Arg.(value & flag & info [ "fix" ] ~doc:"Print suggested policy rewrites.")
  in
  Cmd.v
    (Cmd.info "lint" ~doc:"Lint the RPSL objects for misuses and hygiene problems.")
    Term.(const run $ dir_arg $ errors_only $ fix)

(* ---------------- classify ---------------- *)

let classify_cmd =
  let run dir =
    guarded @@ fun () ->
    let world = Rpslyzer.Pipeline.load_world dir in
    let observed =
      let seen = Hashtbl.create 512 in
      List.iter
        (fun (dump : Rz_bgp.Table_dump.t) ->
          List.iter
            (fun route ->
              List.iter (fun asn -> Hashtbl.replace seen asn ())
                (Rz_bgp.Route.dedup_path route))
            dump.routes)
        world.table_dumps;
      Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort compare
    in
    let profiles = Rz_stats.Classify.classify_all ~rels:world.rels ~observed world.db in
    let hist = Rz_stats.Classify.histogram profiles in
    let total = List.length profiles in
    Rz_util.Table.print
      ~header:[ "style"; "ASes"; "share" ]
      (List.map
         (fun (style, count) ->
           [ Rz_stats.Classify.style_to_string style;
             string_of_int count;
             Rz_util.Table.pct (float_of_int count /. float_of_int (max 1 total)) ])
         hist)
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify BGP-visible ASes by RPSL usage style.")
    Term.(const run $ dir_arg)

(* ---------------- diff ---------------- *)

let diff_cmd =
  let run before_dir after_dir =
    guarded @@ fun () ->
    let load dir =
      let ir = Rz_ir.Ir.create () in
      List.iter
        (fun (src, text) -> ignore (Rz_ir.Lower.add_dump ir ~source:src text))
        (Rpslyzer.Pipeline.load_dumps dir);
      ir
    in
    let d = Rz_stats.Evolution.diff ~before:(load before_dir) ~after:(load after_dir) in
    print_endline (Rz_stats.Evolution.summary d);
    List.iter
      (fun asn -> Printf.printf "+ aut-num %s\n" (Rz_net.Asn.to_string asn))
      d.aut_nums_added;
    List.iter
      (fun asn -> Printf.printf "- aut-num %s\n" (Rz_net.Asn.to_string asn))
      d.aut_nums_removed;
    List.iter
      (fun (c : Rz_stats.Evolution.rule_change) ->
        Printf.printf "~ aut-num %s: %d -> %d rules\n" (Rz_net.Asn.to_string c.asn)
          c.before_rules c.after_rules)
      d.rules_changed
  in
  let before_dir =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"BEFORE" ~doc:"Earlier world dir.")
  in
  let after_dir =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"AFTER" ~doc:"Later world dir.")
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Diff two IRR snapshots (policy evolution).")
    Term.(const run $ before_dir $ after_dir)

(* The recovery counters the exit-2 policy keys on. The list itself lives
   in rz_obs ([Obs.recovery_counter_names]) — the single source of truth
   shared by this CLI, DESIGN.md, and the suite_obs drift test. *)
let recovery_counter_names = Rpslyzer.Obs.recovery_counter_names

(* ---------------- rpki ---------------- *)

let rpki_cmd =
  let run obs dir snapshot domains roa_file fault_rate fault_seed json_out golden =
    guarded @@ fun () ->
    (* Counters drive the exit policy (degraded ROA input -> exit 2), so
       the registry is always on here, like faultinject. *)
    Rpslyzer.Obs.enable ();
    let mismatches = ref [] in
    let degraded =
      with_obs ~cmd:"rpki" obs @@ fun () ->
      let world = Rpslyzer.Pipeline.load_world ?snapshot ?domains dir in
      let roa_path =
        match roa_file with
        | Some path -> path
        | None -> Filename.concat dir "roas.csv"
      in
      let text =
        try
          let ic = open_in_bin roa_path in
          let text = really_input_string ic (in_channel_length ic) in
          close_in ic;
          text
        with Sys_error e -> failwith ("cannot read ROAs: " ^ e)
      in
      let text =
        if fault_rate > 0. then begin
          let plan = Rz_fault.Fault.plan ~seed:fault_seed ~rate:fault_rate () in
          let corrupted, report = Rz_fault.Fault.corrupt_dump plan text in
          Printf.eprintf "rpki: injected %d faults into %s\n%!"
            (Rz_fault.Fault.total_faults report)
            roa_path;
          corrupted
        end
        else text
      in
      let parsed = Rz_rpki.Roa.parse_string text in
      let matrix = Rpslyzer.Pipeline.cross_validate world parsed.table in
      let module C = Rz_stats.Rpki_cross in
      let doc =
        Rpslyzer.Json.Obj
          [ ("roas",
             Rpslyzer.Json.Obj
               [ ("loaded", Rpslyzer.Json.Int parsed.loaded);
                 ("rejected", Rpslyzer.Json.Int parsed.n_rejected) ]);
            ("cross", C.to_json matrix) ]
      in
      if json_out then print_endline (Rpslyzer.Json.to_string ~indent:2 doc)
      else begin
        Printf.printf "ROAs: %d loaded, %d rejected from %s\n" parsed.loaded
          parsed.n_rejected roa_path;
        List.iteri
          (fun i (e : Rz_rpki.Roa.parse_error) ->
            if i < 5 then
              Printf.printf "  rejected line %d: %s (%s)\n" e.line e.reason
                e.text)
          parsed.rejected;
        Printf.printf "\n== RPSL verdict x RPKI origin-validation state ==\n";
        Rz_util.Table.print
          ~align:(Rz_util.Table.Left :: List.map (fun _ -> Rz_util.Table.Right) C.rpki_states)
          ~header:("rpsl \\ rpki" :: C.rpki_states)
          (C.to_rows matrix);
        let classified = C.classified matrix in
        Printf.printf
          "\nroutes: %d total, %d classified, %d excluded, %d without plain origin\n"
          (C.total matrix) classified
          (C.total matrix - classified)
          (C.n_no_origin matrix);
        Printf.printf "agreement: %d/%d classified routes (%s)\n"
          (C.agree matrix) classified
          (Rz_util.Table.pct
             (if classified = 0 then 0.
              else float_of_int (C.agree matrix) /. float_of_int classified));
        Printf.printf "RPSL-verified but RPKI-invalid: %d\n"
          (C.verified_but_rpki_invalid matrix);
        Printf.printf "RPSL-unrecorded but RPKI-valid: %d\n"
          (C.unrecorded_but_rpki_valid matrix)
      end;
      (match golden with
       | None -> ()
       | Some path ->
         let baseline_text =
           try
             let ic = open_in_bin path in
             let text = really_input_string ic (in_channel_length ic) in
             close_in ic;
             text
           with Sys_error e -> failwith ("cannot read golden file: " ^ e)
         in
         match Rpslyzer.Json.of_string baseline_text with
         | Error e -> failwith (Printf.sprintf "golden file %s: %s" path e)
         | Ok baseline -> mismatches := C.diff_json ~baseline doc);
      let snapshot = Rpslyzer.Obs.Registry.snapshot () in
      let counters = Rpslyzer.Obs.Registry.counters snapshot in
      let value name = Option.value ~default:0 (List.assoc_opt name counters) in
      List.exists (fun name -> value name > 0) recovery_counter_names
    in
    (match !mismatches with
     | [] ->
       if golden <> None then print_endline "golden: MATCH"
     | diffs ->
       Printf.eprintf "golden: MISMATCH (%d differences)\n" (List.length diffs);
       List.iter (fun d -> Printf.eprintf "  %s\n" d) diffs;
       exit 1);
    if degraded then exit 2
  in
  let roa_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "roa-file" ] ~docv:"FILE"
          ~doc:"ROA file to validate against (default: DIR/roas.csv).")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:"Corrupt the ROA file in memory with this per-entry \
                probability before parsing (hostile-input drill).")
  in
  let fault_seed =
    Arg.(value & opt int 42 & info [ "fault-seed" ] ~doc:"Fault-plan seed.")
  in
  let json_out =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the agreement matrix as JSON.")
  in
  let golden =
    Arg.(
      value
      & opt (some string) None
      & info [ "golden" ] ~docv:"FILE"
          ~doc:"Structurally compare this run's JSON document against the \
                baseline in $(docv); any difference is printed and the \
                command exits 1.")
  in
  Cmd.v
    (Cmd.info "rpki"
       ~doc:
         "Cross-validate RPSL verification against RFC 6811 origin \
          validation: classify every collector route by both systems and \
          print the per-(RPSL-verdict, RPKI-state) agreement matrix. \
          Exits 0 when clean, 1 on golden mismatch or hard failure, 2 \
          when ROA input was degraded (rejected entries or injected \
          faults).")
    Term.(
      const run $ obs_opts_term $ dir_arg $ snapshot_arg $ domains_arg
      $ roa_file $ fault_rate $ fault_seed $ json_out $ golden)

(* ---------------- stream ---------------- *)

let stream_cmd =
  let run obs dir domains seed events window capacity policy edit_rate
      chaos_rate chaos_seed max_retries backoff_ms watchdog_ms journal_out
      replay json_out golden =
    guarded @@ fun () ->
    let module S = Rz_stream.Stream in
    let module E = Rz_routegen.Events in
    (* Counters drive the exit policy (degradation -> exit 2), so the
       registry is always on here, like faultinject and rpki. *)
    Rpslyzer.Obs.enable ();
    let mismatches = ref [] in
    let degraded =
      with_obs ~cmd:"stream" ~seed obs @@ fun () ->
      let world =
        match dir with
        | Some dir -> Rpslyzer.Pipeline.load_world ?domains dir
        | None ->
          let topo_params =
            { Rz_topology.Gen.default_params with
              seed; n_tier1 = 3; n_mid = 40; n_stub = 150 }
          in
          let irr_config = { Rz_synthirr.Config.default with seed = seed + 1 } in
          Rpslyzer.Pipeline.build_synthetic ~topo_params ~irr_config ()
      in
      let base_routes =
        List.concat_map
          (fun (d : Rz_bgp.Table_dump.t) -> d.routes)
          world.Rpslyzer.Pipeline.table_dumps
      in
      let items =
        match replay with
        | Some path ->
          let text =
            try
              let ic = open_in_bin path in
              let text = really_input_string ic (in_channel_length ic) in
              close_in ic;
              text
            with Sys_error e -> failwith ("cannot read journal: " ^ e)
          in
          let items, errors = E.parse text in
          List.iteri
            (fun i (line, reason) ->
              if i < 5 then
                Printf.eprintf "stream: journal line %d rejected: %s\n%!" line
                  reason)
            errors;
          items
        | None ->
          let view = S.view_of world.Rpslyzer.Pipeline.db base_routes in
          E.generate ~seed ~n:events ~edit_rate view
      in
      (match journal_out with
       | Some path -> write_file ~what:"journal" path (E.render items)
       | None -> ());
      let policy =
        match String.lowercase_ascii policy with
        | "block" -> Rz_stream.Bqueue.Block
        | "shed-oldest" -> Rz_stream.Bqueue.Shed_oldest
        | p when String.length p > 7 && String.sub p 0 7 = "sample:" -> (
          match float_of_string_opt (String.sub p 7 (String.length p - 7)) with
          | Some f when f >= 0. && f <= 1. -> Rz_stream.Bqueue.Sample f
          | _ -> failwith (Printf.sprintf "bad sample rate in --policy %s" p))
        | p -> failwith (Printf.sprintf "unknown --policy %s" p)
      in
      let chaos =
        if chaos_rate > 0. then
          Some (Rz_fault.Fault.plan ~seed:chaos_seed ~rate:chaos_rate ())
        else None
      in
      let config =
        { S.window;
          queue_capacity = capacity;
          policy;
          chaos;
          max_retries;
          backoff_ms;
          watchdog_ms }
      in
      let t =
        S.create ~config
          ~ir:(Rz_irr.Db.ir world.Rpslyzer.Pipeline.db)
          ~rels:world.Rpslyzer.Pipeline.rels ()
      in
      let stats = S.run ~seed t items in
      let doc = S.stats_to_json t stats in
      let snapshot = Rpslyzer.Obs.Registry.snapshot () in
      let counters = Rpslyzer.Obs.Registry.counters snapshot in
      let value name = Option.value ~default:0 (List.assoc_opt name counters) in
      let degraded =
        stats.S.r_degraded
        || List.exists (fun name -> value name > 0) recovery_counter_names
      in
      if json_out then print_endline (Rpslyzer.Json.to_string ~indent:2 doc)
      else begin
        Printf.printf "== stream ==\n";
        Printf.printf
          "events: %d processed, %d applied, %d abandoned, %d rejected\n"
          stats.S.r_processed stats.S.r_applied stats.S.r_abandoned
          stats.S.r_rejected;
        Printf.printf "queue: %d dropped, %d sampled, hwm %d, final policy %s\n"
          stats.S.r_dropped stats.S.r_sampled stats.S.r_hwm
          (Rz_stream.Bqueue.policy_name stats.S.r_final_policy);
        Printf.printf
          "engine: %d generations, %d invalidations, %d watchdog trips\n"
          (S.generations t) (S.invalidated t) stats.S.r_watchdog_trips;
        Printf.printf "\n== windows ==\n";
        List.iter
          (fun (w : S.window) ->
            Printf.printf
              "  [%d] seq %d-%d: %dA/%dW/%dE rib=%d routes=%d hops: %s\n"
              w.S.w_index w.S.w_start_seq w.S.w_end_seq w.S.w_announce
              w.S.w_withdraw w.S.w_edit w.S.w_rib w.S.w_routes
              (String.concat ", "
                 (List.filter_map
                    (fun (label, n) ->
                      if n = 0 then None
                      else Some (Printf.sprintf "%s=%d" label n))
                    (Rz_verify.Aggregate.counts_classes w.S.w_hops))))
          (S.windows t);
        if degraded then
          print_endline "\nresult: DEGRADED (recovery paths fired; exit 2)"
        else print_endline "\nresult: CLEAN (exit 0)"
      end;
      (match golden with
       | None -> ()
       | Some path ->
         let baseline_text =
           try
             let ic = open_in_bin path in
             let text = really_input_string ic (in_channel_length ic) in
             close_in ic;
             text
           with Sys_error e -> failwith ("cannot read golden file: " ^ e)
         in
         match Rpslyzer.Json.of_string baseline_text with
         | Error e -> failwith (Printf.sprintf "golden file %s: %s" path e)
         | Ok baseline ->
           (* The event stream and verdicts are deterministic, but queue
              occupancy depends on producer/consumer interleaving, so the
              golden surface projects those timing-dependent fields away.
              The baseline is a full `--json` dump; both sides are
              projected, so regeneration is just re-running with --json. *)
           let stable doc =
             Rpslyzer.Json.Obj
               (List.filter_map
                  (fun k ->
                    Option.map (fun v -> (k, v)) (Rpslyzer.Json.member k doc))
                  [ "processed"; "applied"; "abandoned"; "rejected";
                    "generations"; "invalidated"; "rib"; "windows" ])
           in
           mismatches :=
             Rz_stats.Rpki_cross.diff_json ~baseline:(stable baseline)
               (stable doc));
      degraded
    in
    (match !mismatches with
     | [] -> if golden <> None then print_endline "golden: MATCH"
     | diffs ->
       Printf.eprintf "golden: MISMATCH (%d differences)\n" (List.length diffs);
       List.iter (fun d -> Printf.eprintf "  %s\n" d) diffs;
       exit 1);
    if degraded then exit 2
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR"
          ~doc:"World directory to stream against; a small synthetic world \
                is generated in memory when omitted.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"World and feed seed.")
  in
  let events =
    Arg.(
      value & opt int 512
      & info [ "events" ] ~docv:"N" ~doc:"Number of feed events to generate.")
  in
  let window =
    Arg.(
      value & opt int 64
      & info [ "window" ] ~docv:"N"
          ~doc:"Events per windowed per-verdict aggregate.")
  in
  let capacity =
    Arg.(
      value & opt int 256
      & info [ "capacity" ] ~docv:"N" ~doc:"Bounded queue capacity.")
  in
  let policy =
    Arg.(
      value & opt string "block"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Backpressure policy when the queue is full: $(b,block) \
                (lossless, deterministic), $(b,shed-oldest) (newest wins), \
                or $(b,sample:P) (admit with probability P).")
  in
  let edit_rate =
    Arg.(
      value & opt float 0.05
      & info [ "edit-rate" ] ~docv:"P"
          ~doc:"Per-event probability of a policy-object edit.")
  in
  let chaos_rate =
    Arg.(
      value & opt float 0.
      & info [ "chaos" ] ~docv:"P"
          ~doc:"Per-attempt probability that applying an event fails \
                (seeded, replayable). Retries with exponential backoff; \
                budget exhaustion abandons the event and degrades the run.")
  in
  let chaos_seed =
    Arg.(value & opt int 42 & info [ "chaos-seed" ] ~doc:"Chaos plan seed.")
  in
  let max_retries =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"Retries before an event is abandoned.")
  in
  let backoff_ms =
    Arg.(
      value & opt float 0.
      & info [ "backoff-ms" ] ~docv:"MS"
          ~doc:"Base retry backoff in milliseconds, doubled per attempt.")
  in
  let watchdog_ms =
    Arg.(
      value & opt int 0
      & info [ "watchdog-ms" ] ~docv:"MS"
          ~doc:"Stall-detection interval; a stalled consumer degrades the \
                queue policy to shed-oldest. 0 disables.")
  in
  let journal_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal-out" ] ~docv:"FILE"
          ~doc:"Write the generated event journal to $(docv) for replay.")
  in
  let replay =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay a journal instead of generating events; malformed \
                lines are rejected (stream.journal_rejected) and the run \
                is marked degraded.")
  in
  let json_out =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the run summary as JSON.")
  in
  let golden =
    Arg.(
      value
      & opt (some string) None
      & info [ "golden" ] ~docv:"FILE"
          ~doc:"Structurally compare this run's JSON summary against the \
                baseline in $(docv); any difference is printed and the \
                command exits 1. Timing-dependent fields (queue occupancy, \
                backpressure tallies) are projected away on both sides, so \
                a baseline is just a committed $(b,--json) dump.")
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Stream a live update feed (announce/withdraw/policy-edit events) \
          through the incremental verification service: bounded queues \
          with explicit backpressure, churn-safe cache invalidation, \
          windowed per-verdict aggregates. Exits 0 when clean, 1 on \
          golden mismatch or hard failure, 2 when the pipeline degraded \
          (dropped, sampled, abandoned, or rejected events; watchdog \
          trips).")
    Term.(
      const run $ obs_opts_term $ dir $ domains_arg $ seed $ events $ window $ capacity
      $ policy $ edit_rate $ chaos_rate $ chaos_seed $ max_retries $ backoff_ms
      $ watchdog_ms $ journal_out $ replay $ json_out $ golden)

(* ---------------- faultinject ---------------- *)

(* Walk every Path_regex filter of every lowered policy rule through the
   capped NFA compiler. Verification only compiles the regexes of hops it
   actually observes, so without this audit a pathological-regex bomb on an
   AS no collector route traverses would go unexercised. *)
let nfa_audit ir =
  let total = ref 0 in
  let rec walk_filter = function
    | Rz_policy.Ast.Path_regex regex ->
      incr total;
      ignore (Rz_aspath.Regex_nfa.compile regex)
    | Rz_policy.Ast.And_f (a, b) | Rz_policy.Ast.Or_f (a, b) ->
      walk_filter a;
      walk_filter b
    | Rz_policy.Ast.Not_f a -> walk_filter a
    | _ -> ()
  in
  let rec walk_expr = function
    | Rz_policy.Ast.Term_e term ->
      List.iter (fun (f : Rz_policy.Ast.factor) -> walk_filter f.filter) term.factors
    | Rz_policy.Ast.Except_e (term, rest) | Rz_policy.Ast.Refine_e (term, rest) ->
      List.iter (fun (f : Rz_policy.Ast.factor) -> walk_filter f.filter) term.factors;
      walk_expr rest
  in
  Hashtbl.iter
    (fun _ (an : Rz_ir.Ir.aut_num) ->
      List.iter
        (fun (r : Rz_policy.Ast.rule) -> walk_expr r.expr)
        (an.imports @ an.exports))
    ir.Rz_ir.Ir.aut_nums;
  !total

let faultinject_cmd =
  let run obs dir seed rate kinds domains =
    guarded @@ fun () ->
    (* Counters drive the exit policy, so the registry is always on here;
       --metrics additionally dumps the snapshot. *)
    Rpslyzer.Obs.enable ();
    (* the exit happens after with_obs returns, so the Fun.protect
       finalizer gets to write the metrics snapshot first *)
    let degraded =
      with_obs ~cmd:"faultinject" ~seed obs @@ fun () ->
      let kinds =
      match kinds with
      | [] -> Rz_fault.Fault.all_kinds
      | names ->
        List.map
          (fun n ->
            match Rz_fault.Fault.kind_of_name n with
            | Some k -> k
            | None -> failwith (Printf.sprintf "unknown fault kind %S" n))
          names
    in
    let base =
      match dir with
      | Some dir -> Rpslyzer.Pipeline.load_world dir
      | None ->
        (* Self-contained mode: a small in-memory world, deterministic in
           the same seed that drives the corruption. *)
        let topo_params =
          { Rz_topology.Gen.default_params with seed; n_tier1 = 3; n_mid = 40; n_stub = 150 }
        in
        let irr_config = { Rz_synthirr.Config.default with seed = seed + 1 } in
        Rpslyzer.Pipeline.build_synthetic ~topo_params ~irr_config ()
    in
    let plan = Rz_fault.Fault.plan ~kinds ~seed ~rate () in
    let corrupted, report = Rz_fault.Fault.corrupt_dumps plan base.dumps in
    let db = Rz_irr.Db.of_dumps corrupted in
    let world = { base with Rpslyzer.Pipeline.db; dumps = corrupted } in
    let n_regexes = nfa_audit (Rz_irr.Db.ir db) in
    (* Simulate a domain crash alongside the data corruption so the
       sequential-retry path is exercised on every corrupted run. *)
    let inject_domain_fault =
      if rate > 0. then Some (fun d -> if d = 0 then failwith "injected domain fault")
      else None
    in
    let agg, `Total total, `Excluded excluded =
      Rpslyzer.Pipeline.verify_parallel ?inject_domain_fault ~domains world
    in
    print_endline "== fault injection ==";
    List.iter print_endline (Rz_fault.Fault.report_lines report);
    Printf.printf "parse errors recorded: %d\n"
      (List.length (Rz_irr.Db.ir db).Rz_ir.Ir.errors);
    Printf.printf "regexes audited: %d\n" n_regexes;
    (match Rz_irr.Db.truncated_sets db with
     | [] -> ()
     | sets ->
       Printf.printf "truncated flattens: %s\n" (String.concat ", " sets));
    Printf.printf "\n== verify under corruption ==\n";
    Printf.printf "routes: %d total, %d excluded, %d hops\n" total excluded
      (Rz_verify.Aggregate.n_hops agg);
    let snapshot = Rpslyzer.Obs.Registry.snapshot () in
    let counters = Rpslyzer.Obs.Registry.counters snapshot in
    let value name = Option.value ~default:0 (List.assoc_opt name counters) in
    print_endline "\n== recovery counters ==";
    List.iter
      (fun name -> Printf.printf "  %-22s %d\n" name (value name))
      recovery_counter_names;
      let degraded = List.exists (fun name -> value name > 0) recovery_counter_names in
      if degraded then
        print_endline "\nresult: DEGRADED (recovery paths fired; exit 2)"
      else print_endline "\nresult: CLEAN (exit 0)";
      degraded
    in
    if degraded then exit 2
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR"
          ~doc:"World directory to corrupt; a small synthetic world is \
                generated in memory when omitted.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Fault-plan seed.") in
  let rate =
    Arg.(
      value & opt float 0.1
      & info [ "rate" ] ~docv:"P" ~doc:"Per-object corruption probability in [0,1].")
  in
  let kinds =
    Arg.(
      value
      & opt (list string) []
      & info [ "kinds" ] ~docv:"KIND,..."
          ~doc:"Comma-separated fault kinds to inject (default: all). See \
                $(b,rz_fault) for the kind names, e.g. \
                'byte-splice,as-set-deep-bomb'.")
  in
  let domains =
    Arg.(value & opt int 4 & info [ "domains" ] ~doc:"Verification domains.")
  in
  Cmd.v
    (Cmd.info "faultinject"
       ~doc:
         "Corrupt the IRR dumps with a seeded fault plan, run the full \
          pipeline on the damage, and report every recovery path that \
          fired. Exits 0 when clean, 2 when the pipeline degraded \
          (keep-going), 1 on hard failure.")
    Term.(const run $ obs_opts_term $ dir $ seed $ rate $ kinds $ domains)

let () =
  let info =
    Cmd.info "rpslyzer" ~version:"1.0.0"
      ~doc:"Parse, characterize, and verify RPSL routing policies."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ gen_cmd; parse_cmd; stats_cmd; verify_cmd; explain_cmd; whois_cmd;
            query_cmd; serve_cmd; top_cmd; peval_cmd; lint_cmd; classify_cmd;
            diff_cmd; rpki_cmd; stream_cmd; faultinject_cmd ]))
