(** Structured decision tracing for the verify engine (DESIGN.md,
    "Observability v2").

    Each hop evaluation can emit one bounded provenance {!record} —
    subject aut-num, direction, rule consulted, filter kind, as-set
    expansion path, memo hit/miss, relaxation or safelist trigger, final
    verdict — into a per-domain ring buffer. Design constraints mirror
    {!Rz_obs.Obs}:

    - {b Near-zero cost when off.} Producers gate on {!enabled} (one
      [Atomic] read); {!emit} and {!should_sample} re-check it, so a
      disabled tracer never allocates.
    - {b Bounded when on.} Rings hold at most the configured capacity
      per domain (oldest records are overwritten, counted in
      {!dropped}); [Per_status q] additionally keeps only the first [q]
      records of each verdict class per domain.
    - {b Lock-free writes.} A domain writes only its own
      [Domain.DLS]-held ring; the global registry of rings is touched
      (under a mutex) once per domain per {!configure} generation. *)

(** Sampling policy. [Per_status q] keeps the first [q] records of every
    verdict class ("verified", "relaxed", ...) in each domain. *)
type sampling = Off | All | Per_status of int

val sampling_to_string : sampling -> string

val sampling_of_string : string -> sampling option
(** Accepts ["off"], ["all"], ["quota:N"] (N > 0); case-insensitive. *)

(** One hop evaluation's provenance. Plain strings/ints — this module
    sits below [rz_verify] in the dependency order, so verdicts and
    reasons arrive pre-rendered ([Status.to_string] etc.). *)
type record = {
  seq : int;               (** global emission order *)
  t_ns : int;              (** monotonic clock at emission *)
  domain : int;            (** emitting domain id *)
  direction : string;      (** ["import"] or ["export"] *)
  subject : int;           (** aut-num whose policy was consulted *)
  remote : int;            (** PeerAS binding *)
  prefix : string;
  origin : int;
  path_len : int;
  verdict : string;        (** [Status.to_string] *)
  verdict_class : string;  (** [Status.class_label] *)
  rule : string option;    (** rule consulted, clipped rendering *)
  filter_kind : string option;
  as_sets : string list;   (** set names walked during evaluation *)
  memo : string;           (** ["computed"], ["hit"], ["miss"], ["bypass"] *)
  trigger : string option; (** relaxation / safelist / abstain trigger *)
  items : string list;     (** diagnostic items of the hop report *)
}

val default_capacity : int
(** 4096 records per domain. *)

val configure : ?cap:int -> sampling -> unit
(** Set the sampling policy (and optionally the per-domain ring
    capacity), discarding every already-collected record. Call between
    runs, not while workers are emitting. *)

val reset : unit -> unit
(** Discard collected records; policy and capacity are kept. *)

val enabled : unit -> bool
(** [true] iff the policy is not [Off]. The producer-side fast gate. *)

val sampling : unit -> sampling
val ring_capacity : unit -> int

val should_sample : string -> bool
(** [should_sample verdict_class] — whether a record of this class would
    currently be kept by this domain's ring. Check before building the
    record to skip rendering work for drops. *)

val emit : record -> unit
(** Append to this domain's ring (lock-free; [seq] is overwritten with
    the next global sequence number). No-op when disabled. *)

val next_seq : unit -> int

val records : unit -> record list
(** Every retained record across all domains, in emission order. Call
    after worker domains have joined. *)

val kept : unit -> int
(** Records currently retained across all rings. *)

val dropped : unit -> int
(** Records evicted by ring wrap-around since the last {!configure}. *)

val with_sampling : ?cap:int -> sampling -> (unit -> 'a) -> 'a
(** Run [f] under a forced policy with fresh rings, restoring the
    previous policy (and discarding the temporary records) afterwards —
    collect {!records} inside [f]. Used by [explain]. *)

val record_to_json : record -> Rz_json.Json.t

val record_to_lines : record -> string list
(** Indentable human-readable rendering, one field per line. *)

(** Chrome [trace_event]-format export of the {!Rz_obs.Obs.Span} tree
    (via {!Rz_obs.Obs.Span.set_sink}) plus sampled hop records, loadable
    in [chrome://tracing] / Perfetto. Spans become complete ("X") events
    and hop records instant ("i") events, with [pid] 1 and [tid] = the
    emitting domain id, so verify/ingest workers each get a lane. *)
module Chrome : sig
  val install : unit -> unit
  (** Start collecting span events (clears any previous collection).
      Spans only fire while {!Rz_obs.Obs.enabled}, so enable the
      registry too. *)

  val uninstall : unit -> unit

  val reset : unit -> unit

  val export : ?records:record list -> unit -> Rz_json.Json.t
  (** The trace-event JSON array: process/thread-name metadata ("M")
      events, one "X" event per collected span, one "i" event per
      [record] (its provenance under ["args"]). Timestamps are
      microseconds rebased to the earliest event. *)

  val lost : unit -> int
  (** Span events discarded after a domain's buffer filled (bounded at
      65536 events per domain per collection). *)
end

(** Periodic metrics streaming for long runs: a sampler domain appends
    one JSONL line — [{"elapsed_s": .., "metrics": <Obs registry
    snapshot>}] — to a file every [interval_s] seconds. *)
module Metrics_stream : sig
  type t

  val start : ?interval_s:float -> string -> t
  (** Open (truncate) the file and spawn the sampler domain.
      [interval_s] defaults to 5.0 and clamps to >= 0.01. *)

  val stop : t -> unit
  (** Join the sampler, append one final snapshot line (so even runs
      shorter than the interval produce a record), and close the file. *)
end
