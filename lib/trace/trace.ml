module Json = Rz_json.Json
module Obs = Rz_obs.Obs

(* ------------------------------------------------------------------ *)
(* Sampling policy                                                     *)
(* ------------------------------------------------------------------ *)

type sampling =
  | Off
  | All
  | Per_status of int  (* per-domain, per-verdict-class record quota *)

let sampling_to_string = function
  | Off -> "off"
  | All -> "all"
  | Per_status q -> Printf.sprintf "quota:%d" q

let sampling_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "off" -> Some Off
  | "all" -> Some All
  | s when String.length s > 6 && String.sub s 0 6 = "quota:" ->
    (match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
     | Some q when q > 0 -> Some (Per_status q)
     | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Decision records                                                    *)
(* ------------------------------------------------------------------ *)

(* One hop evaluation's provenance. Plain strings/ints so rz_verify can
   depend on this module (and not the other way around); every field is
   bounded — [rule] is clipped by the producer, [as_sets] capped. *)
type record = {
  seq : int;               (* global emission order *)
  t_ns : int;              (* monotonic clock at emission *)
  domain : int;            (* emitting domain id *)
  direction : string;      (* "import" | "export" *)
  subject : int;           (* aut-num whose policy was consulted *)
  remote : int;            (* PeerAS binding *)
  prefix : string;
  origin : int;
  path_len : int;
  verdict : string;        (* Status.to_string *)
  verdict_class : string;  (* Status.class_label *)
  rule : string option;    (* rule consulted (clipped rendering) *)
  filter_kind : string option;
  as_sets : string list;   (* set names walked during evaluation *)
  memo : string;           (* "computed" | "hit" | "miss" | "bypass" *)
  trigger : string option; (* relaxation / safelist / abstain trigger *)
  items : string list;     (* diagnostic items of the hop report *)
}

let default_capacity = 4096

(* ------------------------------------------------------------------ *)
(* Per-domain ring buffers                                             *)
(* ------------------------------------------------------------------ *)

(* Each domain writes its own ring without synchronization; rings are
   registered in a mutex-guarded global list at creation (rare) so
   [records] can collect them after the workers join. [configure] bumps
   a generation counter, orphaning every live ring: the next emission in
   each domain lazily creates a fresh one, which is how both reset and
   capacity changes propagate without locking the hot path. *)
type ring = {
  r_gen : int;
  r_domain : int;
  r_cap : int;
  buf : record option array;
  mutable pos : int;          (* next write slot *)
  mutable written : int;      (* records accepted into this ring *)
  mutable overwritten : int;  (* records evicted by ring wrap-around *)
  counts : (string, int ref) Hashtbl.t;  (* per verdict_class, for quotas *)
}

let on = Atomic.make false
let policy = Atomic.make Off
let capacity = Atomic.make default_capacity
let generation = Atomic.make 0
let seq_ctr = Atomic.make 0

let c_records = Obs.Counter.make "trace.records_total"
let c_dropped = Obs.Counter.make "trace.dropped_total"

let rings_mutex = Mutex.create ()
let rings : ring list ref = ref []

let with_lock f =
  Mutex.lock rings_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock rings_mutex) f

let ring_key : ring option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let my_ring () =
  let cell = Domain.DLS.get ring_key in
  let gen = Atomic.get generation in
  match !cell with
  | Some r when r.r_gen = gen -> r
  | _ ->
    let cap = max 1 (Atomic.get capacity) in
    let r =
      { r_gen = gen; r_domain = (Domain.self () :> int); r_cap = cap;
        buf = Array.make cap None; pos = 0; written = 0; overwritten = 0;
        counts = Hashtbl.create 8 }
    in
    with_lock (fun () -> rings := r :: !rings);
    cell := Some r;
    r

let configure ?cap sampling =
  with_lock (fun () -> rings := []);
  (match cap with Some c -> Atomic.set capacity (max 1 c) | None -> ());
  Atomic.set policy sampling;
  Atomic.incr generation;  (* orphan live DLS rings *)
  Atomic.set seq_ctr 0;
  Atomic.set on (sampling <> Off)

let reset () = configure (Atomic.get policy)
let enabled () = Atomic.get on
let sampling () = Atomic.get policy
let ring_capacity () = Atomic.get capacity

let class_count ring cls =
  match Hashtbl.find_opt ring.counts cls with Some c -> !c | None -> 0

(* The sampling decision, separated from [emit] so the producer can skip
   building the record (prefix rendering, item strings) when it will be
   dropped anyway. Quotas are per domain: each worker keeps its first [q]
   records of every verdict class. *)
let should_sample verdict_class =
  Atomic.get on
  && (match Atomic.get policy with
      | Off -> false
      | All -> true
      | Per_status q -> class_count (my_ring ()) verdict_class < q)

let next_seq () = Atomic.fetch_and_add seq_ctr 1

let emit r0 =
  if Atomic.get on then begin
    let ring = my_ring () in
    let r = { r0 with seq = next_seq () } in
    (match ring.buf.(ring.pos) with
     | Some _ ->
       ring.overwritten <- ring.overwritten + 1;
       Obs.Counter.incr c_dropped
     | None -> ());
    ring.buf.(ring.pos) <- Some r;
    ring.pos <- (ring.pos + 1) mod ring.r_cap;
    ring.written <- ring.written + 1;
    (match Hashtbl.find_opt ring.counts r.verdict_class with
     | Some c -> incr c
     | None -> Hashtbl.replace ring.counts r.verdict_class (ref 1));
    Obs.Counter.incr c_records
  end

let records () =
  let rs = with_lock (fun () -> !rings) in
  List.concat_map
    (fun ring -> Array.to_list ring.buf |> List.filter_map Fun.id)
    rs
  |> List.sort (fun a b -> compare a.seq b.seq)

let kept () =
  let rs = with_lock (fun () -> !rings) in
  List.fold_left (fun acc r -> acc + min r.written r.r_cap) 0 rs

let dropped () =
  let rs = with_lock (fun () -> !rings) in
  List.fold_left (fun acc r -> acc + r.overwritten) 0 rs

(* Force [sampling'] for the duration of [f] (fresh rings), restoring the
   previous policy — and discarding the temporary rings — on the way out.
   Collect {!records} inside [f]. *)
let with_sampling ?cap sampling' f =
  let prev_policy = Atomic.get policy and prev_cap = Atomic.get capacity in
  configure ?cap sampling';
  Fun.protect f ~finally:(fun () -> configure ~cap:prev_cap prev_policy)

let opt_string = function None -> Json.Null | Some s -> Json.String s

let record_to_json r =
  Json.Obj
    [ ("seq", Json.Int r.seq);
      ("domain", Json.Int r.domain);
      ("direction", Json.String r.direction);
      ("subject", Json.Int r.subject);
      ("remote", Json.Int r.remote);
      ("prefix", Json.String r.prefix);
      ("origin", Json.Int r.origin);
      ("path_len", Json.Int r.path_len);
      ("verdict", Json.String r.verdict);
      ("class", Json.String r.verdict_class);
      ("rule", opt_string r.rule);
      ("filter_kind", opt_string r.filter_kind);
      ("as_sets", Json.List (List.map (fun s -> Json.String s) r.as_sets));
      ("memo", Json.String r.memo);
      ("trigger", opt_string r.trigger);
      ("items", Json.List (List.map (fun s -> Json.String s) r.items)) ]

let record_to_lines r =
  let line k v = Printf.sprintf "%-12s %s" k v in
  List.concat
    [ [ line "verdict" r.verdict;
        line "subject" (Printf.sprintf "AS%d (%s to AS%d)" r.subject r.direction r.remote) ];
      (match r.rule with Some s -> [ line "rule" s ] | None -> []);
      (match r.filter_kind with Some s -> [ line "filter" s ] | None -> []);
      (match r.as_sets with
       | [] -> []
       | sets -> [ line "sets" (String.concat ", " sets) ]);
      (match r.trigger with Some s -> [ line "trigger" s ] | None -> []);
      [ line "memo" r.memo ] ]

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)
(* ------------------------------------------------------------------ *)

(* Collects every Obs.Span exit (via {!Obs.Span.set_sink}) into
   per-domain event buffers and renders the Chrome trace-event JSON
   array format: one complete ("X") event per span, one instant ("i")
   event per sampled hop record, with pid 1 and tid = domain id so each
   domain gets its own lane in chrome://tracing / Perfetto. *)
module Chrome = struct
  type event = { e_name : string; e_dom : int; e_start_ns : int; e_dur_ns : int }

  let max_events_per_domain = 65536

  type lane = {
    l_gen : int;
    l_dom : int;
    mutable events : event list;  (* newest first *)
    mutable n : int;
    mutable lost : int;
  }

  let gen = Atomic.make 0
  let lanes_mutex = Mutex.create ()
  let lanes : lane list ref = ref []

  let with_llock f =
    Mutex.lock lanes_mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock lanes_mutex) f

  let lane_key : lane option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

  let my_lane () =
    let cell = Domain.DLS.get lane_key in
    let g = Atomic.get gen in
    match !cell with
    | Some l when l.l_gen = g -> l
    | _ ->
      let l = { l_gen = g; l_dom = (Domain.self () :> int); events = []; n = 0; lost = 0 } in
      with_llock (fun () -> lanes := l :: !lanes);
      cell := Some l;
      l

  let sink name ~start_ns ~dur_ns =
    let l = my_lane () in
    if l.n < max_events_per_domain then begin
      l.events <- { e_name = name; e_dom = l.l_dom; e_start_ns = start_ns; e_dur_ns = dur_ns } :: l.events;
      l.n <- l.n + 1
    end
    else l.lost <- l.lost + 1

  let reset () =
    with_llock (fun () -> lanes := []);
    Atomic.incr gen

  let install () =
    reset ();
    Obs.Span.set_sink (Some sink)

  let uninstall () = Obs.Span.set_sink None

  let span_events () =
    let ls = with_llock (fun () -> !lanes) in
    List.concat_map (fun l -> List.rev l.events) ls

  let lost () =
    let ls = with_llock (fun () -> !lanes) in
    List.fold_left (fun acc l -> acc + l.lost) 0 ls

  (* ts/dur are microseconds in the trace-event format; both rebased to
     the earliest event so the viewer timeline starts near zero. *)
  let export ?(records = []) () =
    let events = span_events () in
    let t_min =
      List.fold_left
        (fun acc (e : event) -> min acc e.e_start_ns)
        (List.fold_left (fun acc (r : record) -> min acc r.t_ns) max_int records)
        events
    in
    let t_min = if t_min = max_int then 0 else t_min in
    let us ns = Json.Float (float_of_int (ns - t_min) /. 1e3) in
    let doms =
      List.sort_uniq compare
        (List.map (fun (e : event) -> e.e_dom) events
         @ List.map (fun (r : record) -> r.domain) records)
    in
    let meta_events =
      Json.Obj
        [ ("name", Json.String "process_name"); ("ph", Json.String "M");
          ("pid", Json.Int 1); ("tid", Json.Int 0);
          ("args", Json.Obj [ ("name", Json.String "rpslyzer") ]) ]
      :: List.map
           (fun d ->
             Json.Obj
               [ ("name", Json.String "thread_name"); ("ph", Json.String "M");
                 ("pid", Json.Int 1); ("tid", Json.Int d);
                 ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "domain %d" d)) ]) ])
           doms
    in
    let span_evs =
      List.map
        (fun (e : event) ->
          Json.Obj
            [ ("name", Json.String e.e_name); ("cat", Json.String "span");
              ("ph", Json.String "X"); ("pid", Json.Int 1); ("tid", Json.Int e.e_dom);
              ("ts", us e.e_start_ns);
              ("dur", Json.Float (float_of_int e.e_dur_ns /. 1e3)) ])
        events
    in
    let hop_evs =
      List.map
        (fun (r : record) ->
          Json.Obj
            [ ("name", Json.String ("hop " ^ r.verdict_class));
              ("cat", Json.String "hop"); ("ph", Json.String "i");
              ("s", Json.String "t"); ("pid", Json.Int 1); ("tid", Json.Int r.domain);
              ("ts", us r.t_ns);
              ("args", record_to_json r) ])
        records
    in
    Json.List (meta_events @ span_evs @ hop_evs)
end

(* ------------------------------------------------------------------ *)
(* Periodic metrics streaming                                          *)
(* ------------------------------------------------------------------ *)

(* A sampler domain wakes every [interval_s] seconds and appends one
   JSONL line — elapsed wall-clock plus the full Obs registry snapshot —
   to [path], turning a multi-hour run's counters into a time series.
   [stop] joins the sampler and writes one final snapshot line, so even
   runs shorter than the interval produce a record. *)
module Metrics_stream = struct
  type shared = {
    oc : out_channel;
    t0 : float;
    stop_flag : bool Atomic.t;
    out_mutex : Mutex.t;
  }

  type t = { shared : shared; sampler : unit Domain.t }

  let write_line s =
    let line =
      Json.Obj
        [ ("elapsed_s", Json.Float (Unix.gettimeofday () -. s.t0));
          ("metrics", Obs.Registry.to_json (Obs.Registry.snapshot ())) ]
    in
    Mutex.lock s.out_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock s.out_mutex)
      (fun () ->
        output_string s.oc (Json.to_string line);
        output_char s.oc '\n';
        flush s.oc)

  let start ?(interval_s = 5.0) path =
    let interval_s = Float.max 0.01 interval_s in
    let shared =
      { oc = open_out path; t0 = Unix.gettimeofday ();
        stop_flag = Atomic.make false; out_mutex = Mutex.create () }
    in
    let run () =
      (* sleep in short slices so [stop] is honored promptly *)
      let slice = 0.02 in
      let rec loop slept =
        if not (Atomic.get shared.stop_flag) then
          if slept >= interval_s then begin
            write_line shared;
            loop 0.0
          end
          else begin
            Unix.sleepf (Float.min slice (interval_s -. slept));
            loop (slept +. slice)
          end
      in
      loop 0.0
    in
    { shared; sampler = Domain.spawn run }

  let stop t =
    Atomic.set t.shared.stop_flag true;
    (try Domain.join t.sampler with _ -> ());
    write_line t.shared;  (* final snapshot: every run yields >= 1 line *)
    close_out t.shared.oc
end
