module Ir = Rz_ir.Ir
module Ast = Rz_policy.Ast

type rule_change = {
  asn : Rz_net.Asn.t;
  before_rules : int;
  after_rules : int;
}

type t = {
  aut_nums_added : Rz_net.Asn.t list;
  aut_nums_removed : Rz_net.Asn.t list;
  rules_changed : rule_change list;
  as_sets_added : string list;
  as_sets_removed : string list;
  as_sets_changed : string list;
  route_sets_added : string list;
  route_sets_removed : string list;
  routes_added : int;
  routes_removed : int;
}

let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let rules_fingerprint (an : Ir.aut_num) =
  String.concat "\n" (List.map Ast.rule_to_string (an.imports @ an.exports))

let as_set_fingerprint (s : Ir.as_set) =
  String.concat ","
    (List.map Rz_net.Asn.to_string (List.sort compare s.member_asns)
     @ List.sort compare (List.map Rz_rpsl.Set_name.canonical s.member_sets))

let route_keys (ir : Ir.t) =
  Ir.fold_routes ir ~init:[] ~f:(fun acc (r : Ir.route_obj) ->
      (Rz_net.Prefix.to_string r.prefix, r.origin) :: acc)
  |> List.sort_uniq compare

let diff ~(before : Ir.t) ~(after : Ir.t) =
  let b_asns = keys before.aut_nums and a_asns = keys after.aut_nums in
  let added = List.filter (fun a -> not (Hashtbl.mem before.aut_nums a)) a_asns in
  let removed = List.filter (fun a -> not (Hashtbl.mem after.aut_nums a)) b_asns in
  let rules_changed =
    List.filter_map
      (fun asn ->
        match (Hashtbl.find_opt before.aut_nums asn, Hashtbl.find_opt after.aut_nums asn) with
        | Some b, Some a when rules_fingerprint b <> rules_fingerprint a ->
          Some { asn; before_rules = Ir.n_rules b; after_rules = Ir.n_rules a }
        | _ -> None)
      b_asns
  in
  let set_diff b_tbl a_tbl fingerprint =
    let added = List.filter (fun k -> not (Hashtbl.mem b_tbl k)) (keys a_tbl) in
    let removed = List.filter (fun k -> not (Hashtbl.mem a_tbl k)) (keys b_tbl) in
    let changed =
      List.filter
        (fun k ->
          match (Hashtbl.find_opt b_tbl k, Hashtbl.find_opt a_tbl k) with
          | Some b, Some a -> fingerprint b <> fingerprint a
          | _ -> false)
        (keys b_tbl)
    in
    (added, removed, changed)
  in
  let as_added, as_removed, as_changed =
    set_diff before.as_sets after.as_sets as_set_fingerprint
  in
  let rs_added, rs_removed, _ =
    set_diff before.route_sets after.route_sets (fun (s : Ir.route_set) ->
        string_of_int (List.length s.members))
  in
  let b_routes = route_keys before and a_routes = route_keys after in
  let b_set = Hashtbl.create 1024 and a_set = Hashtbl.create 1024 in
  List.iter (fun k -> Hashtbl.replace b_set k ()) b_routes;
  List.iter (fun k -> Hashtbl.replace a_set k ()) a_routes;
  { aut_nums_added = added;
    aut_nums_removed = removed;
    rules_changed;
    as_sets_added = as_added;
    as_sets_removed = as_removed;
    as_sets_changed = as_changed;
    route_sets_added = rs_added;
    route_sets_removed = rs_removed;
    routes_added = List.length (List.filter (fun k -> not (Hashtbl.mem b_set k)) a_routes);
    routes_removed = List.length (List.filter (fun k -> not (Hashtbl.mem a_set k)) b_routes) }

let is_empty t =
  t.aut_nums_added = [] && t.aut_nums_removed = [] && t.rules_changed = []
  && t.as_sets_added = [] && t.as_sets_removed = [] && t.as_sets_changed = []
  && t.route_sets_added = [] && t.route_sets_removed = []
  && t.routes_added = 0 && t.routes_removed = 0

let summary t =
  if is_empty t then "no changes between snapshots"
  else
    Printf.sprintf
      "aut-nums: +%d -%d (%d policy changes); as-sets: +%d -%d (~%d); route-sets: \
       +%d -%d; route objects: +%d -%d"
      (List.length t.aut_nums_added)
      (List.length t.aut_nums_removed)
      (List.length t.rules_changed)
      (List.length t.as_sets_added)
      (List.length t.as_sets_removed)
      (List.length t.as_sets_changed)
      (List.length t.route_sets_added)
      (List.length t.route_sets_removed)
      t.routes_added t.routes_removed
