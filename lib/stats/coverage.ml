module Ir = Rz_ir.Ir

type row = {
  irr : string;
  aut_nums : int;
  as_sets : int;
  route_sets : int;
  routes : int;
}

type t = {
  rows : row list;
  shadowed_routes : int;
}

let compute ~dumps db =
  let ir = Rz_irr.Db.ir db in
  let counts : (string, row) Hashtbl.t = Hashtbl.create 13 in
  let get irr =
    match Hashtbl.find_opt counts irr with
    | Some row -> row
    | None ->
      let row = { irr; aut_nums = 0; as_sets = 0; route_sets = 0; routes = 0 } in
      Hashtbl.replace counts irr row;
      row
  in
  Hashtbl.iter
    (fun _ (an : Ir.aut_num) ->
      let row = get an.source in
      Hashtbl.replace counts an.source { row with aut_nums = row.aut_nums + 1 })
    ir.aut_nums;
  Hashtbl.iter
    (fun _ (s : Ir.as_set) ->
      let row = get s.source in
      Hashtbl.replace counts s.source { row with as_sets = row.as_sets + 1 })
    ir.as_sets;
  Hashtbl.iter
    (fun _ (s : Ir.route_set) ->
      let row = get s.source in
      Hashtbl.replace counts s.source { row with route_sets = row.route_sets + 1 })
    ir.route_sets;
  Ir.iter_routes ir
    (fun (r : Ir.route_obj) ->
      let source = Ir.route_source ir r in
      let row = get source in
      Hashtbl.replace counts source { row with routes = row.routes + 1 });
  (* raw route-object count across the dumps, to size the shadowing *)
  let raw_routes =
    List.fold_left
      (fun acc (_, text) ->
        let parsed = Rz_rpsl.Reader.parse_string text in
        acc
        + List.length
            (List.filter
               (fun (o : Rz_rpsl.Obj.t) -> o.cls = "route" || o.cls = "route6")
               parsed.objects))
      0 dumps
  in
  let owned_routes = Ir.n_route_objs ir in
  let extra_sources =
    Hashtbl.fold
      (fun irr _ acc ->
        if List.mem irr Rz_irr.Db.priority_order then acc else irr :: acc)
      counts []
    |> List.sort compare
  in
  let rows =
    List.map
      (fun irr ->
        Option.value
          ~default:{ irr; aut_nums = 0; as_sets = 0; route_sets = 0; routes = 0 }
          (Hashtbl.find_opt counts irr))
      (Rz_irr.Db.priority_order @ extra_sources)
  in
  { rows; shadowed_routes = max 0 (raw_routes - owned_routes) }
