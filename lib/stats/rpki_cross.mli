(** RPSL-verdict x RPKI-state agreement matrix — the cross-validation the
    related work (CURE, "The Fault in Our Drafts") runs between registry
    data and the RPKI, applied to the paper's Section-5 verdict classes.

    Each BGP route contributes one cell: its row is the route-level RPSL
    verdict class (the worst hop status under the Section-5 precedence,
    or ["excluded"] for single-AS / AS_SET routes) and its column the
    RFC 6811 origin-validation state of its (prefix, origin) pair. The
    matrix is the [stats]-layer artifact behind the [rpki] CLI surface
    and is committed as a golden JSON that anchors the differential
    test: any ingestion/verification/ROA-generation change that moves a
    cell fails the structural diff. *)

type t

val rpsl_classes : string list
(** Row labels: the six Section-5 classes in precedence order, then
    ["excluded"]. *)

val rpki_states : string list
(** Column labels: ["valid"], ["invalid-origin"], ["invalid-length"],
    ["not-found"]. *)

val create : unit -> t

val add : t -> rpsl:string -> Rz_rpki.Roa.state -> unit
(** Count one route. @raise Invalid_argument on an unknown class label. *)

val add_no_origin : t -> unit
(** Count a route whose AS-path has no plain origin (AS_SET tail):
    it has no ROV subject, so it lands in no cell. *)

val cell : t -> rpsl:string -> rpki:string -> int
val n_no_origin : t -> int

val classified : t -> int
(** Routes in non-[excluded] rows. *)

val total : t -> int
(** All routes with a cell, including the [excluded] row. *)

val agree : t -> int
(** Routes where the two systems concur: both accept (verified /
    relaxed / safelisted x valid), both lack data (unrecorded x
    not-found), or both reject (unverified x either invalid). Skipped and
    excluded rows never agree. *)

val verified_but_rpki_invalid : t -> int
(** RPSL fully verifies the route but ROV rejects it — the
    registry-vs-RPKI conflict class. *)

val unrecorded_but_rpki_valid : t -> int
(** The RPSL has no record but a ROA authorizes the announcement — RPKI
    coverage the registry lacks. *)

val to_rows : t -> string list list
(** Matrix rows for [Rz_util.Table.print]; header = ["rpsl \\ rpki"]
    followed by {!rpki_states}. *)

val to_json : t -> Rz_json.Json.t
(** Fully deterministic (integers only): matrix cells keyed by class and
    state, route totals, and the summary counts. *)

val of_json : Rz_json.Json.t -> (t, string) result

val diff_json : baseline:Rz_json.Json.t -> Rz_json.Json.t -> string list
(** Generic exact structural diff (path-labelled): missing/extra keys,
    length mismatches, and unequal leaves, in document order. Empty when
    the documents are structurally identical. Used by the [rpki
    --golden] gate. *)

val route_class : Rz_verify.Report.route_report option -> string
(** Row label of one verification outcome: the worst hop status class
    under the Section-5 precedence, ["excluded"] for [None]. *)
