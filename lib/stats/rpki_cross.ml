module Json = Rz_json.Json
module Roa = Rz_rpki.Roa
module Status = Rz_verify.Status
module Report = Rz_verify.Report

let rpsl_classes =
  [ "verified"; "skipped"; "unrecorded"; "relaxed"; "safelisted";
    "unverified"; "excluded" ]

let rpki_states = [ "valid"; "invalid-origin"; "invalid-length"; "not-found" ]

let n_classes = List.length rpsl_classes
let n_states = List.length rpki_states

let index_of label labels kind =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Rpki_cross: unknown %s %S" kind label)
    | l :: rest -> if String.equal l label then i else go (i + 1) rest
  in
  go 0 labels

let class_index label = index_of label rpsl_classes "RPSL class"
let state_index label = index_of label rpki_states "RPKI state"

type t = {
  cells : int array array;  (* rpsl class x rpki state *)
  mutable no_origin : int;
}

let create () =
  { cells = Array.make_matrix n_classes n_states 0; no_origin = 0 }

let add t ~rpsl state =
  let i = class_index rpsl in
  let j = state_index (Roa.state_to_string state) in
  t.cells.(i).(j) <- t.cells.(i).(j) + 1

let add_no_origin t = t.no_origin <- t.no_origin + 1

let cell t ~rpsl ~rpki = t.cells.(class_index rpsl).(state_index rpki)
let n_no_origin t = t.no_origin

let excluded_row = n_classes - 1

let total t =
  Array.fold_left (fun acc row -> acc + Array.fold_left ( + ) 0 row) 0 t.cells

let classified t = total t - Array.fold_left ( + ) 0 t.cells.(excluded_row)

(* Agreement: both systems accept, both have no data, or both reject.
   "skipped" expresses deliberate abstention on the RPSL side and
   "excluded" has no verdict at all, so neither row can agree. *)
let agree t =
  let v = state_index "valid"
  and io = state_index "invalid-origin"
  and il = state_index "invalid-length"
  and nf = state_index "not-found" in
  let row label = t.cells.(class_index label) in
  (row "verified").(v) + (row "relaxed").(v) + (row "safelisted").(v)
  + (row "unrecorded").(nf)
  + (row "unverified").(io) + (row "unverified").(il)

let verified_but_rpki_invalid t =
  let row = t.cells.(class_index "verified") in
  row.(state_index "invalid-origin") + row.(state_index "invalid-length")

let unrecorded_but_rpki_valid t =
  t.cells.(class_index "unrecorded").(state_index "valid")

let to_rows t =
  List.mapi
    (fun i label ->
      label :: Array.to_list (Array.map string_of_int t.cells.(i)))
    rpsl_classes

(* Integers only: the golden artifact must be bit-identical across
   machines, and float formatting is not. *)
let to_json t =
  Json.Obj
    [ ("matrix",
       Json.Obj
         (List.mapi
            (fun i cls ->
              ( cls,
                Json.Obj
                  (List.mapi
                     (fun j st -> (st, Json.Int t.cells.(i).(j)))
                     rpki_states) ))
            rpsl_classes));
      ("no_origin", Json.Int t.no_origin);
      ("total", Json.Int (total t));
      ("classified", Json.Int (classified t));
      ("agree", Json.Int (agree t));
      ("verified_but_rpki_invalid", Json.Int (verified_but_rpki_invalid t));
      ("unrecorded_but_rpki_valid", Json.Int (unrecorded_but_rpki_valid t))
    ]

let of_json json =
  let ( let* ) r f = Result.bind r f in
  let int_member key obj =
    match Json.member key obj with
    | Some (Json.Int n) -> Ok n
    | _ -> Error (Printf.sprintf "missing integer field %S" key)
  in
  let t = create () in
  let* matrix =
    match Json.member "matrix" json with
    | Some (Json.Obj _ as m) -> Ok m
    | _ -> Error "missing object field \"matrix\""
  in
  let* () =
    List.fold_left
      (fun acc (i, cls) ->
        let* () = acc in
        match Json.member cls matrix with
        | Some (Json.Obj _ as row) ->
          List.fold_left
            (fun acc (j, st) ->
              let* () = acc in
              let* n = int_member st row in
              t.cells.(i).(j) <- n;
              Ok ())
            (Ok ())
            (List.mapi (fun j st -> (j, st)) rpki_states)
        | _ -> Error (Printf.sprintf "missing matrix row %S" cls))
      (Ok ())
      (List.mapi (fun i cls -> (i, cls)) rpsl_classes)
  in
  let* no_origin = int_member "no_origin" json in
  t.no_origin <- no_origin;
  Ok t

(* Exact structural diff with dotted paths — the same shape as the bench
   harness's --metrics-diff walk, but with no tolerances: the golden
   matrix is integer-only and deterministic, so any drift is a finding. *)
let diff_json ~baseline current =
  let out = ref [] in
  let emit path msg = out := Printf.sprintf "%s: %s" path msg :: !out in
  let leaf = function
    | Json.Null -> "null"
    | Json.Bool b -> string_of_bool b
    | Json.Int n -> string_of_int n
    | Json.Float f -> string_of_float f
    | Json.String s -> Printf.sprintf "%S" s
    | Json.List _ -> "<list>"
    | Json.Obj _ -> "<object>"
  in
  let rec walk path a b =
    match (a, b) with
    | Json.Obj fa, Json.Obj fb ->
      List.iter
        (fun (k, va) ->
          let p = if path = "" then k else path ^ "." ^ k in
          match List.assoc_opt k fb with
          | None -> emit p "missing in current"
          | Some vb -> walk p va vb)
        fa;
      List.iter
        (fun (k, _) ->
          if not (List.mem_assoc k fa) then
            emit (if path = "" then k else path ^ "." ^ k) "not in baseline")
        fb
    | Json.List la, Json.List lb ->
      let na = List.length la and nb = List.length lb in
      if na <> nb then
        emit path (Printf.sprintf "length %d, baseline %d" nb na)
      else
        List.iteri
          (fun i (va, vb) -> walk (Printf.sprintf "%s[%d]" path i) va vb)
          (List.combine la lb)
    | _ ->
      if not (Json.equal a b) then
        emit path (Printf.sprintf "%s, baseline %s" (leaf b) (leaf a))
  in
  walk "" baseline current;
  List.rev !out

let route_class = function
  | None -> "excluded"
  | Some (report : Report.route_report) ->
    let worst =
      List.fold_left
        (fun acc (hop : Report.hop) ->
          if Status.rank hop.status > Status.rank acc then hop.status else acc)
        Status.Verified report.hops
    in
    Status.class_label worst
