module Splitmix = Rz_util.Splitmix
module Prefix = Rz_net.Prefix
module Gen = Rz_topology.Gen

type config = {
  seed : int;
  adoption : float;
  wrong_maxlen_prob : float;
  stale_origin_prob : float;
  hostile_covering_prob : float;
}

let default =
  { seed = 7;
    adoption = 0.8;
    wrong_maxlen_prob = 0.05;
    stale_origin_prob = 0.05;
    hostile_covering_prob = 0.03 }

type stats = {
  n_clean : int;
  n_wrong_maxlen : int;
  n_stale : int;
  n_hostile : int;
}

type result = {
  roas : Roa.roa list;
  stats : stats;
}

(* The covering aggregate [shorten] bits up; the constructors re-mask the
   host bits so the address stays canonical. *)
let parent prefix shorten =
  let len = max 0 (prefix.Prefix.len - shorten) in
  match prefix.Prefix.addr with
  | Prefix.V4 a -> Prefix.v4 a len
  | Prefix.V6 a -> Prefix.v6 a len

(* Uniform AS other than [asn]; the classic replace-by-last trick keeps
   the draw single-sample and deterministic. *)
let other_as rng (topo : Gen.t) asn =
  let n = Array.length topo.ases in
  let j = Splitmix.int rng (n - 1) in
  if topo.ases.(j) = asn then topo.ases.(n - 1) else topo.ases.(j)

let generate ?(config = default) (topo : Gen.t) =
  let rng = Splitmix.create config.seed in
  let roas = ref [] in
  let n_clean = ref 0 and n_wrong_maxlen = ref 0 in
  let n_stale = ref 0 and n_hostile = ref 0 in
  let multi_as = Array.length topo.ases > 1 in
  let emit roa = roas := roa :: !roas in
  (* signing sweep: each adopting AS covers its originated prefixes *)
  Array.iter
    (fun asn ->
      if Splitmix.chance rng config.adoption then
        List.iter
          (fun prefix ->
            let len = prefix.Prefix.len in
            if Splitmix.chance rng config.wrong_maxlen_prob && len >= 2 then begin
              (* aggregate signed too tight: covers the announcement but
                 authorizes one bit less than what is announced *)
              incr n_wrong_maxlen;
              emit { Roa.prefix = parent prefix 2; max_length = len - 1; origin = asn }
            end
            else if Splitmix.chance rng config.stale_origin_prob && multi_as then begin
              incr n_stale;
              emit
                { Roa.prefix; max_length = len; origin = other_as rng topo asn }
            end
            else begin
              incr n_clean;
              emit { Roa.prefix; max_length = len; origin = asn }
            end)
          (Gen.prefixes_of topo asn))
    topo.ases;
  (* hostile sweep: attackers sign covering ROAs over victim space,
     independent of whether the victim adopted *)
  Array.iter
    (fun asn ->
      List.iter
        (fun prefix ->
          if
            Splitmix.chance rng config.hostile_covering_prob
            && prefix.Prefix.len >= 1 && multi_as
          then begin
            incr n_hostile;
            let cover = parent prefix 1 in
            emit
              { Roa.prefix = cover;
                max_length = Prefix.max_len cover;
                origin = other_as rng topo asn }
          end)
        (Gen.prefixes_of topo asn))
    topo.ases;
  { roas = List.rev !roas;
    stats =
      { n_clean = !n_clean;
        n_wrong_maxlen = !n_wrong_maxlen;
        n_stale = !n_stale;
        n_hostile = !n_hostile } }

let table_of result = Roa.of_list result.roas

let of_topology ?(seed = 99) ~adoption topo =
  table_of
    (generate
       ~config:
         { seed;
           adoption;
           wrong_maxlen_prob = 0.;
           stale_origin_prob = 0.;
           hostile_covering_prob = 0. }
       topo)
