module Obs = Rz_obs.Obs

type roa = {
  prefix : Rz_net.Prefix.t;
  max_length : int;
  origin : Rz_net.Asn.t;
}

type t = { trie : roa Rz_net.Prefix_trie.t }

let create () = { trie = Rz_net.Prefix_trie.create () }
let add t roa = Rz_net.Prefix_trie.add t.trie roa.prefix roa
let size t = Rz_net.Prefix_trie.length t.trie

let of_list roas =
  let t = create () in
  List.iter (add t) roas;
  t

type state =
  | Valid
  | Invalid_origin
  | Invalid_length
  | Not_found

let state_to_string = function
  | Valid -> "valid"
  | Invalid_origin -> "invalid-origin"
  | Invalid_length -> "invalid-length"
  | Not_found -> "not-found"

let state_of_string = function
  | "valid" -> Some Valid
  | "invalid-origin" -> Some Invalid_origin
  | "invalid-length" -> Some Invalid_length
  | "not-found" -> Some Not_found
  | _ -> None

let coarse = function
  | Valid -> "valid"
  | Invalid_origin | Invalid_length -> "invalid"
  | Not_found -> "not-found"

let is_invalid = function
  | Invalid_origin | Invalid_length -> true
  | Valid | Not_found -> false

let c_rov_total = Obs.Counter.make "rpki.rov_total"
let c_rov_valid = Obs.Counter.make "rpki.rov.valid"
let c_rov_invalid_origin = Obs.Counter.make "rpki.rov.invalid_origin"
let c_rov_invalid_length = Obs.Counter.make "rpki.rov.invalid_length"
let c_rov_not_found = Obs.Counter.make "rpki.rov.not_found"

let validate t prefix origin =
  let covering = Rz_net.Prefix_trie.covering t.trie prefix in
  let len = prefix.Rz_net.Prefix.len in
  let state =
    if covering = [] then Not_found
    else if
      List.exists
        (fun (_, roa) -> roa.origin = origin && len <= roa.max_length)
        covering
    then Valid
    else if List.exists (fun (_, roa) -> roa.origin = origin) covering then
      Invalid_length
    else Invalid_origin
  in
  Obs.Counter.incr c_rov_total;
  Obs.Counter.incr
    (match state with
     | Valid -> c_rov_valid
     | Invalid_origin -> c_rov_invalid_origin
     | Invalid_length -> c_rov_invalid_length
     | Not_found -> c_rov_not_found);
  state

(* ---------------- ROA file interchange ---------------- *)

type parse_error = {
  line : int;
  text : string;
  reason : string;
}

type parsed = {
  table : t;
  roas : roa list;
  loaded : int;
  n_rejected : int;
  rejected : parse_error list;
}

let max_recorded_errors = 64

let c_loaded = Obs.Counter.make "rpki.roas_loaded"
let c_rejected = Obs.Counter.make "rpki.roas_rejected"

(* Lines shown in diagnostics must survive terminals and JSON: cap the
   length and replace control bytes. *)
let sanitize line =
  let line = if String.length line > 80 then String.sub line 0 80 ^ "..." else line in
  String.map (fun c -> if Char.code c < 0x20 then '?' else c) line

let roa_to_line roa =
  Printf.sprintf "%s,%d,%s"
    (Rz_net.Prefix.to_string roa.prefix)
    roa.max_length
    (Rz_net.Asn.to_string roa.origin)

let render roas =
  let b = Buffer.create (64 * (List.length roas + 1)) in
  Buffer.add_string b "# rpslyzer ROAs v1\n# prefix,maxLength,origin\n";
  List.iter
    (fun roa ->
      Buffer.add_char b '\n';
      Buffer.add_string b (roa_to_line roa);
      Buffer.add_char b '\n')
    roas;
  Buffer.contents b

let parse_line line =
  if String.contains line '\000' then Error "NUL byte in line"
  else if String.contains line '\r' then Error "embedded CR in line"
  else
    match String.split_on_char ',' line with
    | [ prefix_s; maxlen_s; origin_s ] ->
      (match Rz_net.Prefix.of_string (Rz_util.Strings.strip prefix_s) with
       | Error e -> Error e
       | Ok prefix ->
         (match int_of_string_opt (Rz_util.Strings.strip maxlen_s) with
          | None -> Error "maxLength is not an integer"
          | Some max_length ->
            if
              max_length < prefix.Rz_net.Prefix.len
              || max_length > Rz_net.Prefix.max_len prefix
            then
              Error
                (Printf.sprintf
                   "maxLength %d outside [%d, %d]" max_length
                   prefix.Rz_net.Prefix.len
                   (Rz_net.Prefix.max_len prefix))
            else
              (match Rz_net.Asn.of_string (Rz_util.Strings.strip origin_s) with
               | Error e -> Error e
               | Ok origin -> Ok { prefix; max_length; origin })))
    | _ -> Error "malformed line (expected prefix,maxLength,origin)"

let parse_string text =
  let table = create () in
  let seen = Hashtbl.create 64 in
  let roas = ref [] and loaded = ref 0 in
  let n_rejected = ref 0 and rejected = ref [] in
  let reject lineno line reason =
    incr n_rejected;
    Obs.Counter.incr c_rejected;
    if !n_rejected <= max_recorded_errors then
      rejected := { line = lineno; text = sanitize line; reason } :: !rejected
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      (* tolerate CRLF line endings; a CR anywhere else is an injection *)
      let line =
        let n = String.length raw in
        if n > 0 && raw.[n - 1] = '\r' then String.sub raw 0 (n - 1) else raw
      in
      let body =
        if String.contains line '\000' then line
        else Rz_util.Strings.strip (Rz_util.Strings.chop_comment '#' line)
      in
      if body <> "" then
        match parse_line body with
        | Error reason -> reject lineno raw reason
        | Ok roa ->
          let key = roa_to_line roa in
          if Hashtbl.mem seen key then reject lineno raw "duplicate entry"
          else begin
            Hashtbl.add seen key ();
            add table roa;
            roas := roa :: !roas;
            incr loaded;
            Obs.Counter.incr c_loaded
          end)
    lines;
  { table;
    roas = List.rev !roas;
    loaded = !loaded;
    n_rejected = !n_rejected;
    rejected = List.rev !rejected }

let load_file path =
  match
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text
  with
  | text -> Ok (parse_string text)
  | exception Sys_error e -> Error e
