(** Route Origin Authorizations and Route Origin Validation (RFC 6811) —
    the deployed BGP-security baseline the paper compares the RPSL against
    ("Our analysis ... follows this approach using the RPSL instead",
    Section 6). A ROA authorizes an AS to originate a prefix up to a
    maximum length; ROV classifies a (prefix, origin) pair against the
    covering ROAs.

    Origin validation refines RFC 6811's Invalid into the two failure
    modes the RPKI-misconfiguration literature (CURE, "The Fault in Our
    Drafts") distinguishes: wrong origin vs. announcement longer than any
    authorized maxLength. Collapse with {!coarse} when only the RFC
    three-state outcome matters. *)

type roa = {
  prefix : Rz_net.Prefix.t;
  max_length : int;   (** longest announcement the ROA authorizes *)
  origin : Rz_net.Asn.t;
}

type t

val create : unit -> t
val add : t -> roa -> unit
val size : t -> int

val of_list : roa list -> t
(** Build a table from a ROA list (insertion order preserved per prefix). *)

type state =
  | Valid           (** a covering ROA authorizes this origin at this length *)
  | Invalid_origin  (** covering ROAs exist but none names this origin *)
  | Invalid_length
      (** a covering ROA names this origin, but the announcement is more
          specific than its maxLength allows *)
  | Not_found       (** no covering ROA — the prefix is outside RPKI coverage *)

val validate : t -> Rz_net.Prefix.t -> Rz_net.Asn.t -> state
(** RFC 6811 semantics with the refined Invalid split: Valid if any
    covering ROA matches origin and [len <= max_length]; otherwise
    Invalid_length if some covering ROA matches the origin (only length
    disqualifies), Invalid_origin if covering ROAs exist but none matches
    the origin, Not_found when nothing covers the prefix. Bumps the
    [rpki.rov_total] / [rpki.rov.*] counters. *)

val is_invalid : state -> bool
(** True for [Invalid_origin] and [Invalid_length]. *)

val state_to_string : state -> string
(** ["valid"], ["invalid-origin"], ["invalid-length"], ["not-found"]. *)

val state_of_string : string -> state option

val coarse : state -> string
(** RFC 6811 three-state label: ["valid"], ["invalid"], ["not-found"]. *)

(** {1 ROA file interchange}

    Text format consumed and produced by the [gen]/[rpki] CLI surface:
    blank-line-separated entries (so {!Rz_fault} paragraph corruption
    applies naturally), one [prefix,maxLength,origin] triple per line,
    [#] comments. The parser is hostile-input hardened: it never raises
    on malformed text — truncated lines, NUL bytes, embedded CRs, bad
    maxLengths, duplicates are rejected line by line (counted on
    [rpki.roas_rejected]) while well-formed entries load normally
    (counted on [rpki.roas_loaded]). *)

type parse_error = {
  line : int;      (** 1-based line number *)
  text : string;   (** offending line, NUL-sanitized, truncated for display *)
  reason : string;
}

type parsed = {
  table : t;
  roas : roa list;            (** loaded entries in file order *)
  loaded : int;
  n_rejected : int;           (** every rejected line, beyond the recorded cap *)
  rejected : parse_error list;  (** first {!max_recorded_errors} rejections *)
}

val max_recorded_errors : int

val parse_string : string -> parsed
(** Never raises. A ROA whose [max_length] lies outside
    [[prefix length, address-family bits]] is rejected, as is an exact
    duplicate of an already-loaded entry. *)

val load_file : string -> (parsed, string) result
(** [Error] only when the file cannot be read. *)

val render : roa list -> string
(** Inverse of {!parse_string} for well-formed lists:
    [parse_string (render l)] loads exactly [l] (minus duplicates). *)

val roa_to_line : roa -> string
