(** Synthetic ROA generation from a topology's ground truth — the RPKI
    counterpart of [Rz_synthirr.Generate]. Each adopting AS signs ROAs
    for the prefixes it originates, and configurable fractions of those
    signatures are wrong in the ways the RPKI-vulnerability literature
    (CURE; "The Fault in Our Drafts") documents:

    - {b wrong maxLength}: the operator signs the covering aggregate with
      a maxLength below what it actually announces, so its own
      announcements validate Invalid_length;
    - {b stale origin}: the ROA still names a previous holder after the
      prefix moved (topology churn), so the current announcement
      validates Invalid_origin;
    - {b hostile covering ROA}: an attacker publishes a covering ROA for
      a victim's space under the attacker's ASN with a permissive
      maxLength — the classic downgrade that flips an unsigned victim
      from Not_found to Invalid_origin.

    Deterministic for a config (splitmix-seeded). *)

type config = {
  seed : int;
  adoption : float;            (** probability an AS signs its prefixes *)
  wrong_maxlen_prob : float;   (** per-prefix misconfigured-maxLength chance *)
  stale_origin_prob : float;   (** per-prefix stale-origin chance *)
  hostile_covering_prob : float;  (** per-prefix hostile covering-ROA chance *)
}

val default : config
(** seed 7, adoption 0.8, wrong-maxLength 0.05, stale 0.05, hostile 0.03. *)

type stats = {
  n_clean : int;
  n_wrong_maxlen : int;
  n_stale : int;
  n_hostile : int;
}

type result = {
  roas : Roa.roa list;  (** deterministic order: AS array order, then hostile sweep *)
  stats : stats;
}

val generate : ?config:config -> Rz_topology.Gen.t -> result

val table_of : result -> Roa.t

val of_topology : ?seed:int -> adoption:float -> Rz_topology.Gen.t -> Roa.t
(** Clean partial deployment (no misconfigured or hostile ROAs): each
    adopting AS signs maxLength = announced length under its own ASN. *)
