(** Reader for IRR dump files: splits the dump into paragraph-separated
    objects, folds continuation lines (leading whitespace or ['+']), strips
    ['#'] end-of-line comments and ['%'] server remark lines, and records
    malformed lines as errors without aborting the surrounding object.

    The reader is total on hostile input: no entry point raises. Truncated
    files, NUL bytes, CRLF endings, over-long lines, and error-per-line
    bombs all degrade to recorded {!error} values under the {!limits}
    bounds, with drops counted on the [reader.lines_dropped] metric. *)

type error = { line : int; text : string; reason : string }

type result_t = {
  objects : Obj.t list;
  errors : error list;
}

type limits = {
  max_line_bytes : int;
      (** Lines longer than this are dropped (one error record each) —
          bounds per-line memory against unterminated-line bombs. *)
  max_errors : int;
      (** Error records accumulated at most; further errors are counted
          into one synthetic summary record and the
          [reader.lines_dropped] counter. *)
}

val default_limits : limits
(** [{ max_line_bytes = 65_536; max_errors = 100_000 }] — far above
    anything in real registry dumps, far below a memory-exhaustion bomb. *)

val parse_string : ?limits:limits -> string -> result_t
(** Parse a whole dump held in memory. Never raises. *)

val scan_string : ?limits:limits -> string -> result_t
(** Single-pass fast scanner over a whole dump held in memory. Produces
    output identical to {!parse_string} (objects, errors, counters) while
    avoiding per-line string and per-attribute buffer allocations — the
    hot path of parallel ingestion. Never raises under {!default_limits}
    (or any limits with [max_line_bytes >= 64]). *)

val parse_file : ?limits:limits -> string -> result_t
(** Parse a dump file from disk. Never raises: an unopenable file yields
    one error record; a failure mid-file (truncation, I/O error) returns
    every object and error accumulated up to that point plus a synthetic
    trailing ["read aborted"] error. *)

val fold_file :
  ?limits:limits -> string -> init:'a -> f:('a -> Obj.t -> 'a) -> 'a * error list
(** Stream objects from a file without materializing the whole list;
    used for large dumps. Same partial-result semantics as {!parse_file}. *)
