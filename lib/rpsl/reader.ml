type error = { line : int; text : string; reason : string }

(* Observability: volume counters for the reader stage (no-ops unless
   the Rz_obs registry is enabled). [reader.lines_dropped] counts hostile
   lines discarded by the bounds below (over-long lines, and error
   records suppressed past the budget) — the reader's recovery signal. *)
let c_objects = Rz_obs.Obs.Counter.make "rpsl.objects_total"
let c_attrs = Rz_obs.Obs.Counter.make "rpsl.attrs_total"
let c_errors = Rz_obs.Obs.Counter.make "rpsl.errors_total"
let c_lines_dropped = Rz_obs.Obs.Counter.make "reader.lines_dropped"

let count_result objects errors =
  Rz_obs.Obs.Counter.add c_objects (List.length objects);
  Rz_obs.Obs.Counter.add c_attrs
    (List.fold_left (fun acc (o : Obj.t) -> acc + List.length o.attrs) 0 objects);
  Rz_obs.Obs.Counter.add c_errors (List.length errors)

type result_t = {
  objects : Obj.t list;
  errors : error list;
}

(* Hostile-input bounds. IRR dumps are untrusted text (the paper's
   Table 1 finds syntax errors in every registry): a single unbounded
   line or an error-per-line bomb must not balloon memory. Both caps
   degrade to recorded errors, never to an exception. *)
type limits = {
  max_line_bytes : int;  (** longer lines are dropped, with one error record *)
  max_errors : int;      (** further errors are counted but not accumulated *)
}

let default_limits = { max_line_bytes = 65_536; max_errors = 100_000 }

(* A '#' begins a comment anywhere on a line. Values never contain '#'
   meaningfully in the routing-related attributes we interpret. *)
let strip_comment line = Rz_util.Strings.chop_comment '#' line

let is_continuation line =
  String.length line > 0 && (line.[0] = ' ' || line.[0] = '\t' || line.[0] = '+')

(* Paragraph accumulator: turns a stream of lines into objects. *)
type state = {
  limits : limits;
  mutable current : (string * Buffer.t) list; (* reversed (key, value) list *)
  mutable start_line : int;
  mutable objects_rev : Obj.t list;
  mutable errors_rev : error list;
  mutable n_errors : int;
  mutable suppressed : int;  (* errors past the budget, counted not stored *)
}

let fresh_state limits =
  { limits; current = []; start_line = 0; objects_rev = []; errors_rev = [];
    n_errors = 0; suppressed = 0 }

let push_error st err =
  if st.n_errors < st.limits.max_errors then begin
    st.errors_rev <- err :: st.errors_rev;
    st.n_errors <- st.n_errors + 1
  end
  else begin
    st.suppressed <- st.suppressed + 1;
    Rz_obs.Obs.Counter.incr c_lines_dropped
  end

let flush_object st =
  match List.rev st.current with
  | [] -> ()
  | (cls_key, cls_buf) :: _ as attrs ->
    let attrs = List.map (fun (k, b) -> Attr.make k (Buffer.contents b)) attrs in
    let obj =
      { Obj.cls = Rz_util.Strings.lowercase cls_key;
        name = Rz_util.Strings.strip (Buffer.contents cls_buf);
        attrs;
        line = st.start_line }
    in
    st.objects_rev <- obj :: st.objects_rev;
    st.current <- []

let valid_key key =
  key <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '*')
       key

let feed_line st lineno raw =
  if String.length raw > st.limits.max_line_bytes then begin
    Rz_obs.Obs.Counter.incr c_lines_dropped;
    push_error st
      { line = lineno;
        text = String.sub raw 0 64;
        reason =
          Printf.sprintf "line exceeds %d bytes (%d); dropped"
            st.limits.max_line_bytes (String.length raw) }
  end
  else begin
    let line = strip_comment raw in
    if Rz_util.Strings.is_blank line then flush_object st
    else if String.length raw > 0 && raw.[0] = '%' then () (* server remark *)
    else if is_continuation line then begin
      (* Continuation of the previous attribute's value. A '+' alone
         continues with an empty line; otherwise append the folded text. *)
      match st.current with
      | [] ->
        push_error st
          { line = lineno; text = raw; reason = "continuation line outside an object" }
      | (_, buf) :: _ ->
        let text =
          if line.[0] = '+' then String.sub line 1 (String.length line - 1) else line
        in
        let text = Rz_util.Strings.strip text in
        if text <> "" then begin
          Buffer.add_char buf '\n';
          Buffer.add_string buf text
        end
    end
    else
      match String.index_opt line ':' with
      | None ->
        push_error st { line = lineno; text = raw; reason = "line is not key: value" }
      | Some i ->
        let key = Rz_util.Strings.strip (String.sub line 0 i) in
        let value = String.sub line (i + 1) (String.length line - i - 1) in
        if not (valid_key key) then
          push_error st
            { line = lineno; text = raw;
              reason = Printf.sprintf "invalid attribute key %S" key }
        else begin
          if st.current = [] then st.start_line <- lineno;
          let buf = Buffer.create 32 in
          Buffer.add_string buf (Rz_util.Strings.strip value);
          st.current <- (key, buf) :: st.current
        end
  end

(* Close the accumulator: flush the trailing object, convert the budget
   overflow into one synthetic summary error, and count the totals. *)
let finish st =
  flush_object st;
  if st.suppressed > 0 then
    st.errors_rev <-
      { line = 0; text = "";
        reason =
          Printf.sprintf "error budget (%d) exhausted; %d further errors suppressed"
            st.limits.max_errors st.suppressed }
      :: st.errors_rev;
  let objects = List.rev st.objects_rev and errors = List.rev st.errors_rev in
  count_result objects errors;
  { objects; errors }

let parse_string ?(limits = default_limits) text =
  let st = fresh_state limits in
  List.iteri (fun i line -> feed_line st (i + 1) line) (String.split_on_char '\n' text);
  finish st

let parse_file ?(limits = default_limits) path =
  let st = fresh_state limits in
  (match open_in path with
   | exception Sys_error msg ->
     push_error st { line = 0; text = path; reason = "cannot open: " ^ msg }
   | ic ->
     let lineno = ref 0 in
     (* Any mid-file failure (truncated dump, I/O error, interrupt while
        reading an NFS-mounted registry mirror) keeps everything parsed so
        far and becomes a synthetic trailing error — a 3 GiB dump cut off
        at 99% must not discard 99% of its objects. *)
     (try
        while true do
          incr lineno;
          feed_line st !lineno (input_line ic)
        done
      with
      | End_of_file -> ()
      | e ->
        push_error st
          { line = !lineno; text = path;
            reason = "read aborted: " ^ Printexc.to_string e });
     (try close_in ic with Sys_error _ -> ()));
  finish st

let fold_file ?limits path ~init ~f =
  let parsed = parse_file ?limits path in
  (List.fold_left f init parsed.objects, parsed.errors)
