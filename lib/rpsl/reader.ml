type error = { line : int; text : string; reason : string }

(* Observability: volume counters for the reader stage (no-ops unless
   the Rz_obs registry is enabled). [reader.lines_dropped] counts hostile
   lines discarded by the bounds below (over-long lines, and error
   records suppressed past the budget) — the reader's recovery signal. *)
let c_objects = Rz_obs.Obs.Counter.make "rpsl.objects_total"
let c_attrs = Rz_obs.Obs.Counter.make "rpsl.attrs_total"
let c_errors = Rz_obs.Obs.Counter.make "rpsl.errors_total"
let c_lines_dropped = Rz_obs.Obs.Counter.make "reader.lines_dropped"

let count_result objects errors =
  Rz_obs.Obs.Counter.add c_objects (List.length objects);
  Rz_obs.Obs.Counter.add c_attrs
    (List.fold_left (fun acc (o : Obj.t) -> acc + List.length o.attrs) 0 objects);
  Rz_obs.Obs.Counter.add c_errors (List.length errors)

type result_t = {
  objects : Obj.t list;
  errors : error list;
}

(* Hostile-input bounds. IRR dumps are untrusted text (the paper's
   Table 1 finds syntax errors in every registry): a single unbounded
   line or an error-per-line bomb must not balloon memory. Both caps
   degrade to recorded errors, never to an exception. *)
type limits = {
  max_line_bytes : int;  (** longer lines are dropped, with one error record *)
  max_errors : int;      (** further errors are counted but not accumulated *)
}

let default_limits = { max_line_bytes = 65_536; max_errors = 100_000 }

(* A '#' begins a comment anywhere on a line. Values never contain '#'
   meaningfully in the routing-related attributes we interpret. *)
let strip_comment line = Rz_util.Strings.chop_comment '#' line

let is_continuation line =
  String.length line > 0 && (line.[0] = ' ' || line.[0] = '\t' || line.[0] = '+')

(* Paragraph accumulator: turns a stream of lines into objects. *)
type state = {
  limits : limits;
  mutable current : (string * Buffer.t) list; (* reversed (key, value) list *)
  mutable start_line : int;
  mutable objects_rev : Obj.t list;
  mutable errors_rev : error list;
  mutable n_errors : int;
  mutable suppressed : int;  (* errors past the budget, counted not stored *)
}

let fresh_state limits =
  { limits; current = []; start_line = 0; objects_rev = []; errors_rev = [];
    n_errors = 0; suppressed = 0 }

let push_error st err =
  if st.n_errors < st.limits.max_errors then begin
    st.errors_rev <- err :: st.errors_rev;
    st.n_errors <- st.n_errors + 1
  end
  else begin
    st.suppressed <- st.suppressed + 1;
    Rz_obs.Obs.Counter.incr c_lines_dropped
  end

let flush_object st =
  match List.rev st.current with
  | [] -> ()
  | (cls_key, cls_buf) :: _ as attrs ->
    let attrs = List.map (fun (k, b) -> Attr.make k (Buffer.contents b)) attrs in
    let obj =
      { Obj.cls = Rz_util.Strings.lowercase cls_key;
        name = Rz_util.Strings.strip (Buffer.contents cls_buf);
        attrs;
        line = st.start_line }
    in
    st.objects_rev <- obj :: st.objects_rev;
    st.current <- []

let valid_key key =
  key <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '*')
       key

let feed_line st lineno raw =
  if String.length raw > st.limits.max_line_bytes then begin
    Rz_obs.Obs.Counter.incr c_lines_dropped;
    push_error st
      { line = lineno;
        text = String.sub raw 0 64;
        reason =
          Printf.sprintf "line exceeds %d bytes (%d); dropped"
            st.limits.max_line_bytes (String.length raw) }
  end
  else begin
    let line = strip_comment raw in
    if Rz_util.Strings.is_blank line then flush_object st
    else if String.length raw > 0 && raw.[0] = '%' then () (* server remark *)
    else if is_continuation line then begin
      (* Continuation of the previous attribute's value. A '+' alone
         continues with an empty line; otherwise append the folded text. *)
      match st.current with
      | [] ->
        push_error st
          { line = lineno; text = raw; reason = "continuation line outside an object" }
      | (_, buf) :: _ ->
        let text =
          if line.[0] = '+' then String.sub line 1 (String.length line - 1) else line
        in
        let text = Rz_util.Strings.strip text in
        if text <> "" then begin
          Buffer.add_char buf '\n';
          Buffer.add_string buf text
        end
    end
    else
      match String.index_opt line ':' with
      | None ->
        push_error st { line = lineno; text = raw; reason = "line is not key: value" }
      | Some i ->
        let key = Rz_util.Strings.strip (String.sub line 0 i) in
        let value = String.sub line (i + 1) (String.length line - i - 1) in
        if not (valid_key key) then
          push_error st
            { line = lineno; text = raw;
              reason = Printf.sprintf "invalid attribute key %S" key }
        else begin
          if st.current = [] then st.start_line <- lineno;
          let buf = Buffer.create 32 in
          Buffer.add_string buf (Rz_util.Strings.strip value);
          st.current <- (key, buf) :: st.current
        end
  end

(* Close the accumulator: flush the trailing object, convert the budget
   overflow into one synthetic summary error, and count the totals. *)
let finish st =
  flush_object st;
  if st.suppressed > 0 then
    st.errors_rev <-
      { line = 0; text = "";
        reason =
          Printf.sprintf "error budget (%d) exhausted; %d further errors suppressed"
            st.limits.max_errors st.suppressed }
      :: st.errors_rev;
  let objects = List.rev st.objects_rev and errors = List.rev st.errors_rev in
  count_result objects errors;
  { objects; errors }

let parse_string ?(limits = default_limits) text =
  let st = fresh_state limits in
  List.iteri (fun i line -> feed_line st (i + 1) line) (String.split_on_char '\n' text);
  finish st

(* Single-pass scanner over a whole in-memory dump: the fast path of
   [parse_string]. It walks the text once with index arithmetic — no
   per-line string, no Buffer per attribute — and materializes only the
   final key/value strings. Output is identical to [parse_string] byte
   for byte (the ingest test suite holds the two equivalent under
   QCheck); keep the two in lockstep when touching either. *)
let scan_string ?(limits = default_limits) text =
  let n = String.length text in
  let objects_rev = ref [] and errors_rev = ref [] in
  let n_errors = ref 0 and suppressed = ref 0 in
  let push_error err =
    if !n_errors < limits.max_errors then begin
      errors_rev := err :: !errors_rev;
      incr n_errors
    end
    else begin
      incr suppressed;
      Rz_obs.Obs.Counter.incr c_lines_dropped
    end
  in
  (* current object: reversed (key, value-pieces-reversed) list *)
  let current = ref [] and start_line = ref 0 in
  (* Attribute keys repeat massively across a dump ("import", "mnt-by",
     ...): intern the lowercased form keyed by the raw trimmed slice so
     each distinct spelling is lowercased once. *)
  let intern : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let intern_key raw =
    match Hashtbl.find_opt intern raw with
    | Some k -> k
    | None ->
      let k = Rz_util.Strings.lowercase raw in
      Hashtbl.replace intern raw k;
      k
  in
  let flush () =
    match !current with
    | [] -> ()
    | rev ->
      let attrs =
        List.rev_map
          (fun (key, pieces) ->
            let value =
              match pieces with
              | [ one ] -> one
              | many -> Rz_util.Strings.strip (String.concat "\n" (List.rev many))
            in
            { Attr.key; value })
          rev
      in
      (match attrs with
       | [] -> ()
       | (first : Attr.t) :: _ ->
         objects_rev :=
           { Obj.cls = first.key; name = first.value; attrs; line = !start_line }
           :: !objects_rev);
      current := []
  in
  let is_sp c = c = ' ' || c = '\t' || c = '\r' || c = '\n' in
  (* trimmed sub-slice bounds of [s, e) *)
  let trim s e =
    let s = ref s and e = ref e in
    while !s < !e && is_sp (String.unsafe_get text !s) do incr s done;
    while !e > !s && is_sp (String.unsafe_get text (!e - 1)) do decr e done;
    (!s, !e)
  in
  let valid_key_slice s e =
    e > s
    && (let ok = ref true in
        for i = s to e - 1 do
          let c = String.unsafe_get text i in
          if
            not
              ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
               || (c >= '0' && c <= '9') || c = '-' || c = '_' || c = '*')
          then ok := false
        done;
        !ok)
  in
  let line lineno s e =
    if e - s > limits.max_line_bytes then begin
      Rz_obs.Obs.Counter.incr c_lines_dropped;
      push_error
        { line = lineno;
          text = String.sub text s (min 64 (e - s));
          reason =
            Printf.sprintf "line exceeds %d bytes (%d); dropped"
              limits.max_line_bytes (e - s) }
    end
    else begin
      (* end-of-line comment: '#' anywhere truncates the line *)
      let eff = ref e in
      (let i = ref s in
       while !i < !eff do
         if String.unsafe_get text !i = '#' then eff := !i else incr i
       done);
      let eff = !eff in
      let blank = ref true in
      (let i = ref s in
       while !blank && !i < eff do
         if not (is_sp (String.unsafe_get text !i)) then blank := false;
         incr i
       done);
      if !blank then flush ()
      else
        (* non-blank implies eff > s, so the raw first char exists *)
        let c0 = String.unsafe_get text s in
        if c0 = '%' then () (* server remark *)
        else if c0 = ' ' || c0 = '\t' || c0 = '+' then begin
          match !current with
          | [] ->
            push_error
              { line = lineno;
                text = String.sub text s (e - s);
                reason = "continuation line outside an object" }
          | (key, pieces) :: rest ->
            let ts = if c0 = '+' then s + 1 else s in
            let ts, te = trim ts eff in
            if te > ts then
              current := (key, String.sub text ts (te - ts) :: pieces) :: rest
        end
        else begin
          let colon = ref (-1) in
          (let i = ref s in
           while !colon < 0 && !i < eff do
             if String.unsafe_get text !i = ':' then colon := !i;
             incr i
           done);
          if !colon < 0 then
            push_error
              { line = lineno;
                text = String.sub text s (e - s);
                reason = "line is not key: value" }
          else begin
            let ks, ke = trim s !colon in
            if not (valid_key_slice ks ke) then
              push_error
                { line = lineno;
                  text = String.sub text s (e - s);
                  reason =
                    Printf.sprintf "invalid attribute key %S"
                      (String.sub text ks (ke - ks)) }
            else begin
              if !current = [] then start_line := lineno;
              let key = intern_key (String.sub text ks (ke - ks)) in
              let vs, ve = trim (!colon + 1) eff in
              current := (key, [ String.sub text vs (ve - vs) ]) :: !current
            end
          end
        end
    end
  in
  let lineno = ref 0 and pos = ref 0 and looping = ref true in
  while !looping do
    incr lineno;
    let stop =
      match String.index_from_opt text !pos '\n' with Some j -> j | None -> n
    in
    line !lineno !pos stop;
    if stop >= n then looping := false else pos := stop + 1
  done;
  flush ();
  if !suppressed > 0 then
    errors_rev :=
      { line = 0; text = "";
        reason =
          Printf.sprintf "error budget (%d) exhausted; %d further errors suppressed"
            limits.max_errors !suppressed }
      :: !errors_rev;
  let objects = List.rev !objects_rev and errors = List.rev !errors_rev in
  count_result objects errors;
  { objects; errors }

let parse_file ?(limits = default_limits) path =
  let st = fresh_state limits in
  (match open_in path with
   | exception Sys_error msg ->
     push_error st { line = 0; text = path; reason = "cannot open: " ^ msg }
   | ic ->
     let lineno = ref 0 in
     (* Any mid-file failure (truncated dump, I/O error, interrupt while
        reading an NFS-mounted registry mirror) keeps everything parsed so
        far and becomes a synthetic trailing error — a 3 GiB dump cut off
        at 99% must not discard 99% of its objects. *)
     (try
        while true do
          incr lineno;
          feed_line st !lineno (input_line ic)
        done
      with
      | End_of_file -> ()
      | e ->
        push_error st
          { line = !lineno; text = path;
            reason = "read aborted: " ^ Printexc.to_string e });
     (try close_in ic with Sys_error _ -> ()));
  finish st

let fold_file ?limits path ~init ~f =
  let parsed = parse_file ?limits path in
  (List.fold_left f init parsed.objects, parsed.errors)
