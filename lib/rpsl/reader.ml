type error = { line : int; text : string; reason : string }

(* Observability: volume counters for the reader stage (no-ops unless
   the Rz_obs registry is enabled). *)
let c_objects = Rz_obs.Obs.Counter.make "rpsl.objects_total"
let c_attrs = Rz_obs.Obs.Counter.make "rpsl.attrs_total"
let c_errors = Rz_obs.Obs.Counter.make "rpsl.errors_total"

let count_result objects errors =
  Rz_obs.Obs.Counter.add c_objects (List.length objects);
  Rz_obs.Obs.Counter.add c_attrs
    (List.fold_left (fun acc (o : Obj.t) -> acc + List.length o.attrs) 0 objects);
  Rz_obs.Obs.Counter.add c_errors (List.length errors)

type result_t = {
  objects : Obj.t list;
  errors : error list;
}

(* A '#' begins a comment anywhere on a line. Values never contain '#'
   meaningfully in the routing-related attributes we interpret. *)
let strip_comment line = Rz_util.Strings.chop_comment '#' line

let is_continuation line =
  String.length line > 0 && (line.[0] = ' ' || line.[0] = '\t' || line.[0] = '+')

(* Paragraph accumulator: turns a stream of lines into objects. *)
type state = {
  mutable current : (string * Buffer.t) list; (* reversed (key, value) list *)
  mutable start_line : int;
  mutable objects_rev : Obj.t list;
  mutable errors_rev : error list;
}

let fresh_state () =
  { current = []; start_line = 0; objects_rev = []; errors_rev = [] }

let flush_object st =
  match List.rev st.current with
  | [] -> ()
  | (cls_key, cls_buf) :: _ as attrs ->
    let attrs = List.map (fun (k, b) -> Attr.make k (Buffer.contents b)) attrs in
    let obj =
      { Obj.cls = Rz_util.Strings.lowercase cls_key;
        name = Rz_util.Strings.strip (Buffer.contents cls_buf);
        attrs;
        line = st.start_line }
    in
    st.objects_rev <- obj :: st.objects_rev;
    st.current <- []

let valid_key key =
  key <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
         || c = '-' || c = '_' || c = '*')
       key

let feed_line st lineno raw =
  let line = strip_comment raw in
  if Rz_util.Strings.is_blank line then flush_object st
  else if String.length raw > 0 && raw.[0] = '%' then () (* server remark *)
  else if is_continuation line then begin
    (* Continuation of the previous attribute's value. A '+' alone
       continues with an empty line; otherwise append the folded text. *)
    match st.current with
    | [] ->
      st.errors_rev <-
        { line = lineno; text = raw; reason = "continuation line outside an object" }
        :: st.errors_rev
    | (_, buf) :: _ ->
      let text =
        if line.[0] = '+' then String.sub line 1 (String.length line - 1) else line
      in
      let text = Rz_util.Strings.strip text in
      if text <> "" then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf text
      end
  end
  else
    match String.index_opt line ':' with
    | None ->
      st.errors_rev <-
        { line = lineno; text = raw; reason = "line is not key: value" } :: st.errors_rev
    | Some i ->
      let key = Rz_util.Strings.strip (String.sub line 0 i) in
      let value = String.sub line (i + 1) (String.length line - i - 1) in
      if not (valid_key key) then
        st.errors_rev <-
          { line = lineno; text = raw; reason = Printf.sprintf "invalid attribute key %S" key }
          :: st.errors_rev
      else begin
        if st.current = [] then st.start_line <- lineno;
        let buf = Buffer.create 32 in
        Buffer.add_string buf (Rz_util.Strings.strip value);
        st.current <- (key, buf) :: st.current
      end

let parse_string text =
  let st = fresh_state () in
  List.iteri (fun i line -> feed_line st (i + 1) line) (String.split_on_char '\n' text);
  flush_object st;
  let objects = List.rev st.objects_rev and errors = List.rev st.errors_rev in
  count_result objects errors;
  { objects; errors }

let parse_file path =
  let ic = open_in path in
  let st = fresh_state () in
  (try
     let lineno = ref 0 in
     (try
        while true do
          incr lineno;
          feed_line st !lineno (input_line ic)
        done
      with End_of_file -> ());
     flush_object st;
     close_in ic
   with e ->
     close_in ic;
     raise e);
  let objects = List.rev st.objects_rev and errors = List.rev st.errors_rev in
  count_result objects errors;
  { objects; errors }

let fold_file path ~init ~f =
  let parsed = parse_file path in
  (List.fold_left f init parsed.objects, parsed.errors)
