(** Copy-on-write database generations for the long-lived query service.

    A {!store} holds the {e current} generation — a fully built, fully
    warmed {!Rz_irr.Db.t} — behind an [Atomic.t]. Readers (worker domains
    answering IRRd queries) grab the pointer once per query and never see
    a database mutate underneath them: applying an NRTM journal batch
    copies the current IR ({!Rz_ir.Ir.copy}), replays the ops onto the
    copy, builds and warms a fresh database, and publishes it with one
    atomic swap. Old generations stay valid for as long as some reader
    still holds them; the GC reclaims them when the last reader moves on.

    Warming ({!Rz_irr.Db.warm_caches}) before publication is what makes
    cross-domain sharing safe: it forces every memo table, so the
    published database is read-only. *)

type store

val init : Rz_ir.Ir.t -> store
(** Build generation 1 from a copy of [ir] (the caller's IR stays
    untouched and reusable). Builds the database and warms its caches, so
    this is the expensive, once-per-server-start step. *)

val current : store -> Rz_irr.Db.t
(** The live generation. One atomic read; answer a whole query against
    the value returned, not against repeated [current] calls. *)

val generation : store -> int
(** Sequence number of the live generation (1 after {!init}). *)

val last_serial : store -> int
(** Highest NRTM serial applied so far (0 after {!init}). *)

val apply : store -> Rz_synthirr.Nrtm.op list -> int
(** Replay a journal batch as one copy-on-write swap and return the new
    generation number. Ops whose serial is not beyond {!last_serial} are
    skipped (counted on [nrtm.ops_stale]); an op whose paragraph fails to
    re-parse is skipped on [nrtm.ops_rejected]. Applied ops count on
    [nrtm.ops_applied]; the swap's wall-clock (copy + replay + build +
    warm) lands in the [serve.swap_ns] histogram and [serve.generations]
    counts the publication. Serialized internally — concurrent [apply]
    calls queue on a mutex. An empty (or fully stale) batch publishes
    nothing and returns the current generation number. *)

val cached_fingerprint : store -> string
(** {!fingerprint} of the live generation, memoized per generation
    number under the store lock (the expensive IR export runs once per
    swap, on the first call that observes the new generation). What the
    [!s] scrape and [rpslyzer top] report. *)

val fingerprint : Rz_irr.Db.t -> string
(** Canonical content digest of a database's IR: the {!Rz_ir.Ir_json}
    export with route objects sorted (the arena keeps insertion order,
    which differs between incremental replay and batch re-ingest) and
    lowering errors excluded (error lists are path-dependent), hashed.
    Two databases with the same interpreted objects fingerprint
    identically regardless of how they were built — the
    incremental==batch differential in [suite_serve] pins this. *)
