(* Long-lived IRRd query service. See serve.mli. *)

module Irrd_query = Rz_irr.Irrd_query
module Bqueue = Rz_stream.Bqueue
module Nrtm = Rz_synthirr.Nrtm
module Obs = Rz_obs.Obs
module Json = Rz_json.Json

let c_sessions = Obs.Counter.make "serve.sessions_total"
let c_sessions_rejected = Obs.Counter.make "serve.sessions_rejected"
let c_sessions_dropped = Obs.Counter.make "serve.sessions_dropped"
let c_queries = Obs.Counter.make "serve.queries_total"
let c_rejected = Obs.Counter.make "serve.queries_rejected"
let c_timeouts = Obs.Counter.make "serve.query_timeouts"
let h_query = Obs.Histogram.make "serve.query_ns"

(* live-telemetry surface: point-in-time gauges plus rolling windows
   (default geometry: 12 x 5s slots = 60s) feeding qps / rejects-per-sec
   and rolling latency quantiles for the !s scrape and `rpslyzer top` *)
let g_active = Obs.Gauge.make "serve.sessions_active"
let g_generation = Obs.Gauge.make "serve.generation"
let g_serial = Obs.Gauge.make "serve.serial"
let g_queue = Obs.Gauge.make "serve.queue_depth"
let w_query = Obs.Window.make "serve.query_window"
let w_rejects = Obs.Window.make "serve.reject_window"

let response_class = function
  | Irrd_query.Data _ -> "data"
  | Irrd_query.No_data -> "no_data"
  | Irrd_query.Not_found_key -> "not_found"
  | Irrd_query.Error_resp _ -> "error"
  | Irrd_query.Quit -> "quit"

type config = {
  workers : int;
  max_inflight : int;
  query_timeout_ms : int;
  read_timeout_ms : int;
  max_line_bytes : int;
}

let default_config =
  { workers = 2;
    max_inflight = 64;
    query_timeout_ms = 1_000;
    read_timeout_ms = 10_000;
    max_line_bytes = 1_024 }

(* ---------------- shared dispatch ---------------- *)

let dispatch ?(config = default_config) ?stats ?sink db line =
  Obs.Counter.incr c_queries;
  let finish ?rejected ~latency_ns resp =
    (match sink with
     | Some f -> f ~query:line ~response:resp ~latency_ns ~rejected
     | None -> ());
    resp
  in
  let reject reason =
    Obs.Counter.incr c_rejected;
    Obs.Window.observe w_rejects 1.0;
    finish ~rejected:reason ~latency_ns:0 (Irrd_query.Error_resp reason)
  in
  if String.length line > config.max_line_bytes then reject "query too long"
  else if String.contains line '\000' then reject "NUL byte in query"
  else if String.contains line '\r' || String.contains line '\n' then
    reject "control byte in query"
  else begin
    let t0 = Obs.now_ns () in
    let resp =
      Obs.Span.with_ "serve.query" (fun () ->
          (* !s is read-only and rides the normal guarded dispatch path,
             so it is counted, timed, and windowed like any query *)
          match stats with
          | Some scrape when line = "!s" -> Irrd_query.Data (scrape ())
          | _ -> Irrd_query.answer db line)
    in
    let dt = Obs.now_ns () - t0 in
    Obs.Histogram.observe h_query (float_of_int dt);
    Obs.Window.observe w_query (float_of_int dt);
    if
      config.query_timeout_ms > 0
      && dt > config.query_timeout_ms * 1_000_000
      && resp <> Irrd_query.Quit
    then begin
      Obs.Counter.incr c_timeouts;
      finish ~latency_ns:dt (Irrd_query.Error_resp "query deadline exceeded")
    end
    else finish ~latency_ns:dt resp
  end

let session_lines ?config db lines =
  let buf = Buffer.create 256 in
  let rec go = function
    | [] -> ()
    | line :: rest -> (
      match dispatch ?config db line with
      | Irrd_query.Quit -> ()
      | resp ->
        Buffer.add_string buf (Irrd_query.render resp);
        go rest)
  in
  go lines;
  Buffer.contents buf

(* ---------------- sockets ---------------- *)

type address = Port of int | Socket of string

type t = {
  config : config;
  store : Generation.store;
  listen_fd : Unix.file_descr;
  bound_port : int;
  sock_path : string option;
  queue : Unix.file_descr Bqueue.t;
  stopping : bool Atomic.t;
  access_log : Access_log.t option;
  mutable journal : Nrtm.op list list;  (* guarded by [jlock] *)
  jlock : Mutex.t;
  mutable accept_d : unit Domain.t option;
  mutable worker_ds : unit Domain.t list;
}

let send fd s =
  let n = String.length s in
  let rec go off =
    if off >= n then true
    else
      match Unix.write_substring fd s off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error _ -> false
  in
  go 0

(* Buffered per-session line reader with a wall-clock read deadline. The
   select slice is capped so a stopping server never waits a whole
   deadline for a silent client. *)
type conn = { fd : Unix.file_descr; mutable pending : string }

let recv_line ~stopping ~(config : config) conn =
  let deadline =
    Unix.gettimeofday () +. (float_of_int config.read_timeout_ms /. 1000.)
  in
  let rec go () =
    match String.index_opt conn.pending '\n' with
    | Some i ->
      let line = String.sub conn.pending 0 i in
      conn.pending <-
        String.sub conn.pending (i + 1) (String.length conn.pending - i - 1);
      `Line line
    | None ->
      if String.length conn.pending > config.max_line_bytes then `Too_long
      else if Atomic.get stopping then `Closed
      else begin
        let now = Unix.gettimeofday () in
        if now >= deadline then `Timeout
        else
          match Unix.select [ conn.fd ] [] [] (Float.min 0.25 (deadline -. now)) with
          | [], _, _ -> go ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | _ -> (
            let chunk = Bytes.create 4096 in
            match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
            | 0 -> `Eof
            | n ->
              conn.pending <- conn.pending ^ Bytes.sub_string chunk 0 n;
              go ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception Unix.Unix_error _ -> `Eof)
      end
  in
  go ()

(* ---------------- sessions ---------------- *)

let next_batch t =
  Mutex.lock t.jlock;
  let batch =
    match t.journal with
    | [] -> None
    | batch :: rest ->
      t.journal <- rest;
      Some batch
  in
  Mutex.unlock t.jlock;
  batch

(* The !s scrape body: refresh the point-in-time gauges and the
   generation fingerprint (cached per generation — the expensive IR
   export runs once per swap, not per scrape), then render the full
   Prometheus exposition. Runs on the shared dispatch path, so it is
   safe under concurrent generation swaps: everything it reads is an
   atomic, a gauge, or the mutex-guarded fingerprint cache. *)
let server_stats t () =
  Obs.Gauge.set g_generation (Generation.generation t.store);
  Obs.Gauge.set g_serial (Generation.last_serial t.store);
  Obs.Gauge.set g_queue (Bqueue.length t.queue);
  Obs.Meta.set "generation_fingerprint"
    (Json.String (Generation.cached_fingerprint t.store));
  Obs.Meta.set "stopping" (Json.Bool (Atomic.get t.stopping));
  Obs.to_prometheus (Obs.Registry.snapshot ())

let peer_name fd =
  match Unix.getpeername fd with
  | Unix.ADDR_INET (addr, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port
  | Unix.ADDR_UNIX _ | (exception Unix.Unix_error _) -> "unix"

let session t fd =
  Obs.Counter.incr c_sessions;
  Obs.Gauge.incr g_active;
  Fun.protect
    ~finally:(fun () ->
      Obs.Gauge.decr g_active;
      try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Obs.Span.with_ "serve.session" @@ fun () ->
  let conn = { fd; pending = "" } in
  let peer = peer_name fd in
  let access ~query ~response ~latency_ns ~rejected =
    match t.access_log with
    | None -> ()
    | Some al ->
      Access_log.log al ~peer ~query ~verdict:(response_class response)
        ?rejected ~latency_ns ~generation:(Generation.generation t.store)
        ~serial:(Generation.last_serial t.store) ()
  in
  let rec loop () =
    match recv_line ~stopping:t.stopping ~config:t.config conn with
    | `Closed -> ()
    | `Eof ->
      (* disconnect mid-command: the partial line is a truncated query *)
      if conn.pending <> "" then Obs.Counter.incr c_rejected
    | `Timeout ->
      if conn.pending <> "" then Obs.Counter.incr c_sessions_dropped
    | `Too_long ->
      Obs.Counter.incr c_rejected;
      access ~query:"" ~response:(Irrd_query.Error_resp "query too long")
        ~latency_ns:0 ~rejected:(Some "query too long");
      ignore (send fd "F query too long\n")
    | `Line line ->
      if line = "!u" then begin
        let t0 = Obs.now_ns () in
        let resp =
          match next_batch t with
          | None -> Irrd_query.No_data
          | Some batch ->
            let gen = Generation.apply t.store batch in
            Irrd_query.Data
              (Printf.sprintf "generation %d: applied %d ops" gen
                 (List.length batch))
        in
        access ~query:line ~response:resp ~latency_ns:(Obs.now_ns () - t0)
          ~rejected:None;
        if send fd (Irrd_query.render resp) then loop ()
      end
      else
        match
          dispatch ~config:t.config ~stats:(fun () -> server_stats t ())
            ~sink:access
            (Generation.current t.store) line
        with
        | Irrd_query.Quit -> ()
        | resp -> if send fd (Irrd_query.render resp) then loop ()
  in
  loop ()

let worker t () =
  (* one span per worker: its own lane in the Chrome trace export *)
  Obs.Span.with_ "serve.worker" @@ fun () ->
  let rec loop () =
    match Bqueue.pop t.queue with
    | None -> ()
    | Some fd ->
      (try session t fd
       with _ -> ( try Unix.close fd with Unix.Unix_error _ -> ()));
      loop ()
  in
  loop ()

let accept_loop t () =
  let rec loop () =
    if not (Atomic.get t.stopping) then begin
      (match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | [], _, _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> Atomic.set t.stopping true
      | _ -> (
        match Unix.accept ~cloexec:true t.listen_fd with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error _ -> Atomic.set t.stopping true
        | fd, _ ->
          if Bqueue.length t.queue >= t.config.max_inflight then begin
            Obs.Counter.incr c_sessions_rejected;
            ignore (send fd "F server busy\n");
            (try Unix.close fd with Unix.Unix_error _ -> ())
          end
          else
            (* the accept domain is the only producer, so the length
               check above keeps this push from ever blocking *)
            ignore (Bqueue.push t.queue fd)));
      loop ()
    end
  in
  loop ()

(* ---------------- lifecycle ---------------- *)

let start ?(config = default_config) ?(journal = []) ?access_log store address =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd, bound_port, sock_path =
    match address with
    | Port p ->
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, p));
      Unix.listen fd 64;
      let actual =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p') -> p'
        | _ -> p
      in
      (fd, actual, None)
    | Socket path ->
      if Sys.file_exists path then
        (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      (fd, 0, Some path)
  in
  let t =
    { config = { config with workers = max 1 config.workers };
      store;
      listen_fd;
      bound_port;
      sock_path;
      queue = Bqueue.create ~capacity:(max 1 config.max_inflight) ();
      stopping = Atomic.make false;
      access_log;
      journal;
      jlock = Mutex.create ();
      accept_d = None;
      worker_ds = [] }
  in
  t.worker_ds <- List.init t.config.workers (fun _ -> Domain.spawn (worker t));
  t.accept_d <- Some (Domain.spawn (accept_loop t));
  t

let port t = t.bound_port

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (match t.accept_d with Some d -> Domain.join d | None -> ());
    t.accept_d <- None;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Bqueue.close t.queue;
    List.iter Domain.join t.worker_ds;
    t.worker_ds <- [];
    match t.sock_path with
    | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | None -> ()
  end

(* ---------------- loopback client ---------------- *)

let connect address =
  match address with
  | Port p ->
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, p))
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    fd
  | Socket path ->
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX path)
     with e -> (try Unix.close fd with Unix.Unix_error _ -> ()); raise e);
    fd

let drain fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.select [ fd ] [] [] 30.0 with
    | [], _, _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | _ -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> ())
  in
  go ();
  Buffer.contents buf

let client address queries =
  let fd = connect address in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let queries =
    if List.exists (fun q -> String.trim q = "!q") queries then queries
    else queries @ [ "!q" ]
  in
  List.iter (fun q -> ignore (send fd (q ^ "\n"))) queries;
  drain fd

let client_raw address ?(stall_s = 0.) bytes =
  let fd = connect address in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  ignore (send fd bytes);
  if stall_s > 0. then Unix.sleepf stall_s;
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  drain fd
