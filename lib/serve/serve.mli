(** Long-lived IRRd query service over live database generations.

    The server speaks the {!Rz_irr.Irrd_query} protocol on a TCP or Unix
    socket: an accept loop admits client sessions into a bounded queue
    ({!Rz_stream.Bqueue}) drained by a pool of worker domains, each
    session answering query lines against whatever generation its
    {!Generation.store} publishes at the moment the query arrives. One
    control extension, [!u], applies the next pending NRTM journal batch
    as a copy-on-write generation swap, so a scripted client can drive
    registry churn and observe it in subsequent answers.

    Admission guards, all counted on [serve.queries_rejected]:
    over-long query lines (at the socket read layer {e and} in
    {!dispatch}), NUL bytes, embedded CR/LF (injection through the
    in-process paths), and commands truncated by mid-line disconnect.
    Sessions that exceed [max_inflight] are refused at accept time with
    [F server busy] ([serve.sessions_rejected]); a session that stalls
    past the read deadline with bytes pending (slowloris) is dropped
    ([serve.sessions_dropped]). Per-query wall-clock lands in the
    [serve.query_ns] histogram under a [serve.query] span; a query
    running past [query_timeout_ms] has its answer replaced by
    [F query deadline exceeded] ([serve.query_timeouts]). *)

type config = {
  workers : int;           (** worker domains draining the session queue *)
  max_inflight : int;      (** queued sessions beyond which accepts are refused *)
  query_timeout_ms : int;  (** per-query deadline; [0] disables *)
  read_timeout_ms : int;   (** per-read socket deadline (slowloris guard) *)
  max_line_bytes : int;    (** longest admissible query line *)
}

val default_config : config
(** [{ workers = 2; max_inflight = 64; query_timeout_ms = 1_000;
      read_timeout_ms = 10_000; max_line_bytes = 1_024 }] *)

val dispatch :
  ?config:config ->
  ?stats:(unit -> string) ->
  ?sink:
    (query:string ->
     response:Rz_irr.Irrd_query.response ->
     latency_ns:int ->
     rejected:string option ->
     unit) ->
  Rz_irr.Db.t ->
  string ->
  Rz_irr.Irrd_query.response
(** The one shared query path: admission guards, then
    {!Rz_irr.Irrd_query.answer} under the latency span/histogram/window
    and the deadline check. Both the one-shot CLI [query] command and
    every server session route through this. Total: never raises.

    [stats], when given, answers the [!s] control query with
    [Data (stats ())] — the live-telemetry scrape. It rides this same
    guarded path, so it is counted on [serve.queries_total], timed into
    [serve.query_ns]/[serve.query_window], and subject to the deadline
    like any query; server sessions pass the Prometheus exposition
    closure, the one-shot CLI paths pass nothing and [!s] falls through
    to {!Rz_irr.Irrd_query.answer}.

    [sink] fires once per dispatched query with the final response, the
    measured latency (0 for guard-rejected queries), and the guard
    reason if rejected — the access-log hook. *)

val session_lines :
  ?config:config -> Rz_irr.Db.t -> string list -> string
(** In-process session: {!dispatch} each line in order, stop at [!q],
    concatenate the rendered responses — {!Rz_irr.Irrd_query.session}
    with the service guards applied. *)

(** Where to listen (or connect): a loopback TCP port — [Port 0] binds an
    ephemeral port, read it back with {!port} — or a Unix-domain socket
    path. *)
type address = Port of int | Socket of string

type t

val start :
  ?config:config ->
  ?journal:Rz_synthirr.Nrtm.op list list ->
  ?access_log:Access_log.t ->
  Generation.store ->
  address ->
  t
(** Bind, then spawn the accept domain and [config.workers] worker
    domains; returns once the socket is listening. [journal] is the
    queue of pending NRTM batches [!u] applies, oldest first. SIGPIPE is
    set to ignore (a client vanishing mid-write must not kill the
    server). Raises [Unix.Unix_error] if the address cannot be bound.

    [access_log], when given, receives one record per query (including
    [!u] and [!s], and guard rejections) with the session's peer address
    and the live generation/serial. The caller owns the log: close it
    after {!stop}.

    Live telemetry registered by this module: gauges
    [serve.sessions_active], [serve.generation], [serve.serial],
    [serve.queue_depth] (refreshed on each [!s] scrape), and 60-second
    rolling windows [serve.query_window] (latency) and
    [serve.reject_window] (guard rejections). The [!s] exposition also
    carries [# meta generation_fingerprint] (cached per generation) and
    [# meta stopping]. *)

val port : t -> int
(** The bound TCP port (the ephemeral one under [Port 0]); [0] for a
    Unix-socket server. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, drain queued sessions, join every
    domain, unlink the Unix socket. Idempotent. In-flight sessions run
    to completion. *)

val client : address -> string list -> string
(** Loopback client for scripted drills: connect, send each query line
    (appending [!q] if absent so the server closes the session), and
    return everything the server wrote until EOF. Raises
    [Unix.Unix_error] if the connection fails. *)

val client_raw : address -> ?stall_s:float -> string -> string
(** Hostile-corpus client: write [bytes] exactly as given (no newline or
    [!q] appended), optionally sleep [stall_s] with the send side still
    open (slowloris), then shut down writing and drain the reply. For
    driving the [test/fixtures/query_*.txt] corpus through the real
    admission path. *)
