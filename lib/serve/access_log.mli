(** Structured per-query access logging for the query service.

    Opt-in JSONL: one object per logged event with fields [ts] (Unix
    epoch seconds), [peer], [query], [class] (the response class:
    [data]/[no_data]/[not_found]/[error]/[quit]), [rejected] (the guard
    reason, present only on rejected queries), [latency_ns],
    [generation], and [serial] — enough to recompute the server's
    windowed qps and latency quantiles offline (the acceptance
    differential in suite_serve does exactly that against a live [!s]
    scrape).

    Writes never block the query path: records render in the calling
    domain, then enter a bounded queue drained by one writer domain that
    batches flushes. When the queue is at capacity the record is dropped
    and counted on [obs.accesslog_dropped] (a recovery counter — a run
    that lost access-log records exits 2 under the keep-going
    contract).

    Sampling reuses the {!Rz_trace.Trace.sampling} dial ([off] / [all] /
    [quota:N]): under [quota:N] at most N records of each response class
    are kept over the log's lifetime, mirroring rz_trace's bounded
    provenance semantics. *)

type t

val create : ?capacity:int -> ?sampling:Rz_trace.Trace.sampling -> string -> t
(** Open [path] for writing (truncating) and spawn the writer domain.
    [capacity] (default 1024) bounds the in-flight record queue;
    [sampling] defaults to [All]. Spawns a domain — callers that must
    [Unix.fork] later (sharded verify) cannot use this, which is fine:
    only the serve path logs access. *)

val log :
  t ->
  peer:string ->
  query:string ->
  verdict:string ->
  ?rejected:string ->
  latency_ns:int ->
  generation:int ->
  serial:int ->
  unit ->
  unit
(** Enqueue one record. Never blocks and never raises: a full (or
    closed) queue drops the record on [obs.accesslog_dropped]. *)

val close : t -> unit
(** Drain the queue, flush, join the writer domain, close the file.
    Idempotent. Records logged after [close] are dropped (and
    counted). *)
