(* Copy-on-write database generations. See generation.mli. *)

module Ir = Rz_ir.Ir
module Lower = Rz_ir.Lower
module Db = Rz_irr.Db
module Nrtm = Rz_synthirr.Nrtm
module Obs = Rz_obs.Obs
module Json = Rz_json.Json
module Strings = Rz_util.Strings

let c_generations = Obs.Counter.make "serve.generations"
let c_applied = Obs.Counter.make "nrtm.ops_applied"
let c_stale = Obs.Counter.make "nrtm.ops_stale"
let c_rejected = Obs.Counter.make "nrtm.ops_rejected"
let h_swap = Obs.Histogram.make "serve.swap_ns"

type store = {
  current : Db.t Atomic.t;
  gen : int Atomic.t;
  mutable serial : int;  (* guarded by [lock] *)
  mutable fp_cache : (int * string) option;  (* guarded by [lock] *)
  lock : Mutex.t;
}

let build_db ir =
  let db = Db.build ir in
  Db.warm_caches db;
  db

let init ir =
  { current = Atomic.make (build_db (Ir.copy ir));
    gen = Atomic.make 1;
    serial = 0;
    fp_cache = None;
    lock = Mutex.create () }

let current t = Atomic.get t.current
let generation t = Atomic.get t.gen
let last_serial t = t.serial

(* Remove the IR entry a paragraph's primary key names, whichever table
   it lives in. Route objects are keyed (prefix, origin): the arena entry
   goes via [filter_routes] and the dedup index entry must go too, or a
   later ADD of the same pair would be silently swallowed. *)
let remove_obj (ir : Ir.t) (obj : Rz_rpsl.Obj.t) =
  let canon = Rz_rpsl.Set_name.canonical in
  match obj.cls with
  | "aut-num" -> (
    match Rz_net.Asn.of_string obj.name with
    | Ok asn -> Hashtbl.remove ir.aut_nums asn
    | Error _ -> ())
  | "as-set" -> Hashtbl.remove ir.as_sets (canon obj.name)
  | "route-set" -> Hashtbl.remove ir.route_sets (canon obj.name)
  | "peering-set" -> Hashtbl.remove ir.peering_sets (canon obj.name)
  | "filter-set" -> Hashtbl.remove ir.filter_sets (canon obj.name)
  | "rtr-set" -> Hashtbl.remove ir.rtr_sets (canon obj.name)
  | "mntner" -> Hashtbl.remove ir.mntners (Strings.uppercase obj.name)
  | "inet-rtr" -> Hashtbl.remove ir.inet_rtrs (Strings.lowercase obj.name)
  | "route" | "route6" -> (
    let origin =
      match Rz_rpsl.Obj.value obj "origin" with
      | Some o -> Rz_net.Asn.of_string o
      | None -> Error "no origin"
    in
    match (Rz_net.Prefix.of_string obj.name, origin) with
    | Ok prefix, Ok origin ->
      Ir.filter_routes ir (fun r ->
          not (Rz_net.Prefix.equal r.Ir.prefix prefix
               && Rz_net.Asn.equal r.Ir.origin origin));
      Hashtbl.remove ir.route_seen (prefix, origin)
    | _ -> ())
  | _ -> ()

let replay_op ir (op : Nrtm.op) =
  match (Rz_rpsl.Reader.parse_string op.text).objects with
  | [] -> Obs.Counter.incr c_rejected
  | obj :: _ -> (
    (* ADD replaces any existing same-key object (NRTM modify = DEL+ADD,
       but a replayed journal may also carry a bare replacing ADD), so
       both actions clear the key first. *)
    remove_obj ir obj;
    match op.action with
    | Nrtm.Del -> ()
    | Nrtm.Add -> Lower.add_objects ir ~source:op.source [ obj ])

let apply t ops =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  let fresh, stale =
    List.partition (fun (op : Nrtm.op) -> op.serial > t.serial) ops
  in
  Obs.Counter.add c_stale (List.length stale);
  if fresh = [] then Atomic.get t.gen
  else begin
    let t0 = Obs.now_ns () in
    let ir = Ir.copy (Db.ir (Atomic.get t.current)) in
    List.iter (replay_op ir) fresh;
    let db = build_db ir in
    t.serial <-
      List.fold_left (fun acc (op : Nrtm.op) -> max acc op.serial) t.serial fresh;
    Atomic.set t.current db;
    let gen = Atomic.fetch_and_add t.gen 1 + 1 in
    Obs.Counter.add c_applied (List.length fresh);
    Obs.Counter.incr c_generations;
    Obs.Histogram.observe h_swap (float_of_int (Obs.now_ns () - t0));
    gen
  end

let fingerprint db =
  let canonical =
    match Rz_ir.Ir_json.export (Db.ir db) with
    | Json.Obj fields ->
      Json.Obj
        (List.filter_map
           (fun (key, value) ->
             match (key, value) with
             | "errors", _ -> None
             | "routes", Json.List routes ->
               let sorted =
                 List.map Json.to_string routes |> List.sort compare
               in
               Some (key, Json.List (List.map (fun s -> Json.String s) sorted))
             | _ -> Some (key, value))
           fields)
    | json -> json
  in
  Digest.to_hex (Digest.string (Json.to_string canonical))

(* The !s scrape wants the live generation's fingerprint on every poll,
   but [fingerprint] exports the whole IR — far too expensive per
   scrape. Memoize per generation number under the store lock; reading
   gen and db inside the same lock [apply] holds during a swap keeps the
   (gen, db) pair coherent. The export runs once per swap, on the first
   scrape that observes it. *)
let cached_fingerprint t =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) @@ fun () ->
  let gen = Atomic.get t.gen in
  match t.fp_cache with
  | Some (g, fp) when g = gen -> fp
  | _ ->
    let fp = fingerprint (Atomic.get t.current) in
    t.fp_cache <- Some (gen, fp);
    fp
