(* Structured per-query access log. See access_log.mli. *)

module Bqueue = Rz_stream.Bqueue
module Obs = Rz_obs.Obs
module Json = Rz_json.Json
module Trace = Rz_trace.Trace

let c_dropped = Obs.Counter.make "obs.accesslog_dropped"

type t = {
  queue : string Bqueue.t;
  capacity : int;
  sampling : Trace.sampling;
  (* per-response-class quota ledger under [Per_status]; the mutex also
     serializes [close] against late [log] calls racing the queue close *)
  quota : (string, int) Hashtbl.t;
  lock : Mutex.t;
  mutable closed : bool;
  writer : unit Domain.t;
}

let create ?(capacity = 1024) ?(sampling = Trace.All) path =
  let capacity = max 1 capacity in
  (* Double the admission bound inside the queue itself: [log] drops at
     [capacity] by length check, so racing producers overshooting the
     check still never block on a full queue. *)
  let queue = Bqueue.create ~capacity:(2 * capacity) () in
  (* open in the caller so a bad path fails [create], not the domain *)
  let oc = open_out path in
  let writer =
    Domain.spawn (fun () ->
        Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
        let rec loop () =
          match Bqueue.pop queue with
          | None -> ()
          | Some line ->
            output_string oc line;
            output_char oc '\n';
            (* batch-flush: only pay the flush when the queue drains *)
            if Bqueue.length queue = 0 then flush oc;
            loop ()
        in
        loop ())
  in
  { queue; capacity; sampling; quota = Hashtbl.create 8;
    lock = Mutex.create (); closed = false; writer }

let should_keep t verdict =
  match t.sampling with
  | Trace.Off -> false
  | Trace.All -> true
  | Trace.Per_status q ->
    Mutex.lock t.lock;
    let n = Option.value ~default:0 (Hashtbl.find_opt t.quota verdict) in
    let keep = n < q in
    if keep then Hashtbl.replace t.quota verdict (n + 1);
    Mutex.unlock t.lock;
    keep

let log t ~peer ~query ~verdict ?rejected ~latency_ns ~generation ~serial () =
  if should_keep t verdict then begin
    let record =
      Json.Obj
        ([ ("ts", Json.Float (Unix.gettimeofday ()));
           ("peer", Json.String peer);
           ("query", Json.String query);
           ("class", Json.String verdict) ]
        @ (match rejected with
          | Some reason -> [ ("rejected", Json.String reason) ]
          | None -> [])
        @ [ ("latency_ns", Json.Int latency_ns);
            ("generation", Json.Int generation);
            ("serial", Json.Int serial) ])
    in
    let line = Json.to_string record in
    Mutex.lock t.lock;
    let dropped =
      t.closed || Bqueue.length t.queue >= t.capacity
      || not (Bqueue.push t.queue line)
    in
    Mutex.unlock t.lock;
    if dropped then Obs.Counter.incr c_dropped
  end

let close t =
  Mutex.lock t.lock;
  let was_closed = t.closed in
  t.closed <- true;
  if not was_closed then Bqueue.close t.queue;
  Mutex.unlock t.lock;
  if not was_closed then Domain.join t.writer
