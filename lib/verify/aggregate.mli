(** Aggregation of hop reports at the paper's three granularities —
    per AS (Figure 2), per AS pair (Figure 3), per route (Figure 4) —
    plus the unrecorded breakdown (Figure 5) and the special-case
    breakdown (Figure 6). *)

(** Hop counts by coarse status class. *)
type counts = {
  mutable verified : int;
  mutable skipped : int;
  mutable unrecorded : int;
  mutable relaxed : int;
  mutable safelisted : int;
  mutable unverified : int;
}

val zero_counts : unit -> counts
val counts_total : counts -> int
val counts_add : counts -> Status.t -> unit
val counts_classes : counts -> (string * int) list
(** [(class label, count)] in the paper's precedence order. *)

type t

val create : unit -> t

val add_route_report : ?weight:int -> t -> Report.route_report -> unit
(** Fold one route's hop reports in. [weight] (default 1) is the route's
    multiplicity: identical routes collapsed by dedup are verified once
    and added with their pre-dedup copy count, which scales every global
    tally (per-AS, per-pair, overall, [n_routes], the unverified-hop
    accounting) while contributing [weight] identical per-route profiles —
    exactly what adding the report [weight] separate times would produce.
    A non-positive [weight] adds nothing. *)

val merge_into : dst:t -> t -> unit
(** Fold another aggregate into [dst]; used to combine per-domain
    aggregates after parallel verification. *)

val n_routes : t -> int
val n_hops : t -> int
(** Total hop checks (each inter-AS link contributes an export and an
    import check). *)

val overall : t -> counts
(** All hop checks pooled: the per-interconnection fractions quoted in the
    paper's abstract (29.3% verified, 40.4% unrecorded, ...). *)

(** {1 Figure 2 — per AS} *)

val per_as_list : t -> (Rz_net.Asn.t * counts * counts) list
(** [(asn, import counts, export counts)] for every AS observed. *)

type per_as_summary = {
  n_ases : int;
  all_same_status : int;      (** single colour across both directions *)
  all_verified : int;
  all_unrecorded : int;
  all_relaxed : int;
  all_safelisted : int;
  all_unverified : int;
  with_skips : int;
  with_unrecorded : int;      (** >= 1 unrecorded check *)
  with_special : int;         (** >= 1 relaxed or safelisted check *)
}

val per_as_summary : t -> per_as_summary

(** {1 Figure 3 — per AS pair} *)

type per_pair_summary = {
  n_pairs : int;                    (** directed pairs x direction *)
  single_status_import : float;     (** fraction of import pairs with one status *)
  single_status_export : float;
  pairs_with_unverified : int;
  unverified_peering_mismatch : float;
      (** among unverified hop checks, fraction whose diagnostics show no
          rule peering covering the neighbor (the paper's 98.98%) *)
}

val per_pair_summary : t -> per_pair_summary

val per_pair_list :
  t -> ([ `Import | `Export ] * (Rz_net.Asn.t * Rz_net.Asn.t) * counts) list
(** Every directed pair with its per-direction counts — the raw series
    behind Figure 3. *)

(** {1 Figure 4 — per route} *)

type per_route_summary = {
  n_routes : int;
  single_status : float;            (** all hops one class *)
  single_verified : float;
  single_unrecorded : float;
  single_unverified : float;
  two_statuses : float;
  three_plus : float;
}

val per_route_summary : t -> per_route_summary

val per_route_list : t -> counts list
(** Per-route status counts in insertion order — the raw series behind
    Figure 4. *)

(** {1 Figure 5 — unrecorded breakdown (count of ASes with >= 1 case)} *)

type unrec_breakdown = {
  ases_no_aut_num : int;
  ases_no_rules : int;
  ases_zero_route_as : int;
  ases_missing_set : int;
}

val unrec_breakdown : t -> unrec_breakdown

(** {1 Figure 6 — special-case breakdown (count of ASes with >= 1 case)} *)

type special_breakdown = {
  ases_export_self : int;
  ases_import_customer : int;
  ases_missing_routes : int;
  ases_only_provider : int;
  ases_tier1_pair : int;
  ases_uphill : int;
  ases_any_special : int;
}

val special_breakdown : t -> special_breakdown

(** {1 Canonical fingerprint} *)

val fingerprint : t -> string
(** MD5 hex digest of a canonical rendering of the whole aggregate —
    overall counts, every per-AS and per-pair series (sorted), the
    per-route profile multiset (sorted, since {!merge_into} interleaves
    the list by merge order), and both breakdown figures. Two aggregates
    built from the same hop reports fingerprint identically regardless
    of add order, dedup weighting, domain split, or merge tree; the
    shard-and-merge differential gates key on this. *)
