type counts = {
  mutable verified : int;
  mutable skipped : int;
  mutable unrecorded : int;
  mutable relaxed : int;
  mutable safelisted : int;
  mutable unverified : int;
}

let zero_counts () =
  { verified = 0; skipped = 0; unrecorded = 0; relaxed = 0; safelisted = 0; unverified = 0 }

let counts_total c =
  c.verified + c.skipped + c.unrecorded + c.relaxed + c.safelisted + c.unverified

let counts_add_n c (status : Status.t) n =
  match status with
  | Status.Verified -> c.verified <- c.verified + n
  | Status.Skipped _ -> c.skipped <- c.skipped + n
  | Status.Unrecorded _ -> c.unrecorded <- c.unrecorded + n
  | Status.Relaxed _ -> c.relaxed <- c.relaxed + n
  | Status.Safelisted _ -> c.safelisted <- c.safelisted + n
  | Status.Unverified -> c.unverified <- c.unverified + n

let counts_add c status = counts_add_n c status 1

let counts_classes c =
  [ ("verified", c.verified); ("skipped", c.skipped); ("unrecorded", c.unrecorded);
    ("relaxed", c.relaxed); ("safelisted", c.safelisted); ("unverified", c.unverified) ]

(* Unrecorded causes, per AS, for Figure 5. *)
type unrec_flags = {
  mutable no_aut_num : bool;
  mutable no_rules : bool;
  mutable zero_route_as : bool;
  mutable missing_set : bool;
}

(* Special cases, per AS, for Figure 6. *)
type special_flags = {
  mutable export_self : bool;
  mutable import_customer : bool;
  mutable missing_routes : bool;
  mutable only_provider : bool;
  mutable tier1_pair : bool;
  mutable uphill : bool;
}

type t = {
  per_as_import : (Rz_net.Asn.t, counts) Hashtbl.t;
  per_as_export : (Rz_net.Asn.t, counts) Hashtbl.t;
  per_pair_import : (Rz_net.Asn.t * Rz_net.Asn.t, counts) Hashtbl.t;
  per_pair_export : (Rz_net.Asn.t * Rz_net.Asn.t, counts) Hashtbl.t;
  mutable per_route : counts list;
  unrec_by_as : (Rz_net.Asn.t, unrec_flags) Hashtbl.t;
  special_by_as : (Rz_net.Asn.t, special_flags) Hashtbl.t;
  total : counts;
  mutable n_routes : int;
  mutable unverified_hops : int;
  mutable unverified_peering_only : int;
}

let create () =
  { per_as_import = Hashtbl.create 512;
    per_as_export = Hashtbl.create 512;
    per_pair_import = Hashtbl.create 2048;
    per_pair_export = Hashtbl.create 2048;
    per_route = [];
    unrec_by_as = Hashtbl.create 512;
    special_by_as = Hashtbl.create 512;
    total = zero_counts ();
    n_routes = 0;
    unverified_hops = 0;
    unverified_peering_only = 0 }

let table_counts tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> c
  | None ->
    let c = zero_counts () in
    Hashtbl.replace tbl key c;
    c

let unrec_flags_of t asn =
  match Hashtbl.find_opt t.unrec_by_as asn with
  | Some f -> f
  | None ->
    let f = { no_aut_num = false; no_rules = false; zero_route_as = false; missing_set = false } in
    Hashtbl.replace t.unrec_by_as asn f;
    f

let special_flags_of t asn =
  match Hashtbl.find_opt t.special_by_as asn with
  | Some f -> f
  | None ->
    let f =
      { export_self = false; import_customer = false; missing_routes = false;
        only_provider = false; tier1_pair = false; uphill = false }
    in
    Hashtbl.replace t.special_by_as asn f;
    f

let record_hop t ~weight (hop : Report.hop) route_counts =
  let subject =
    match hop.direction with `Import -> hop.to_as | `Export -> hop.from_as
  in
  let as_table =
    match hop.direction with `Import -> t.per_as_import | `Export -> t.per_as_export
  in
  let pair_table =
    match hop.direction with `Import -> t.per_pair_import | `Export -> t.per_pair_export
  in
  (* Global tallies take the route's multiplicity; [route_counts] is the
     profile of one route, so it always takes 1. *)
  counts_add_n (table_counts as_table subject) hop.status weight;
  counts_add_n (table_counts pair_table (hop.from_as, hop.to_as)) hop.status weight;
  counts_add_n t.total hop.status weight;
  counts_add route_counts hop.status;
  (match hop.status with
   | Status.Unrecorded reason ->
     let f = unrec_flags_of t subject in
     (match reason with
      | Status.No_aut_num _ -> f.no_aut_num <- true
      | Status.No_rules -> f.no_rules <- true
      | Status.Zero_route_as _ -> f.zero_route_as <- true
      | Status.Unrecorded_as_set _ | Status.Unrecorded_route_set _
      | Status.Unrecorded_peering_set _ | Status.Unrecorded_filter_set _ ->
        f.missing_set <- true)
   | Status.Relaxed special | Status.Safelisted special ->
     let f = special_flags_of t subject in
     (match special with
      | Status.Export_self -> f.export_self <- true
      | Status.Import_customer -> f.import_customer <- true
      | Status.Missing_routes -> f.missing_routes <- true
      | Status.Only_provider_policies -> f.only_provider <- true
      | Status.Tier1_pair -> f.tier1_pair <- true
      | Status.Uphill -> f.uphill <- true)
   | Status.Unverified ->
     t.unverified_hops <- t.unverified_hops + weight;
     (* "Undeclared peering": every diagnostic is a peering mismatch —
        no rule's peering covered the neighbor. *)
     let peering_only =
       List.for_all
         (function
           | Report.Match_remote_as_num _ | Report.Match_remote_as_set _ -> true
           | _ -> false)
         hop.items
     in
     if peering_only then
       t.unverified_peering_only <- t.unverified_peering_only + weight
   | Status.Verified | Status.Skipped _ -> ())

let add_route_report ?(weight = 1) t (report : Report.route_report) =
  if weight > 0 then begin
    let route_counts = zero_counts () in
    List.iter (fun hop -> record_hop t ~weight hop route_counts) report.hops;
    (* [weight] identical routes contribute [weight] identical per-route
       profiles; the record is never mutated after this point, so the
       copies can share it. *)
    for _ = 1 to weight do
      t.per_route <- route_counts :: t.per_route
    done;
    t.n_routes <- t.n_routes + weight
  end

let add_counts_into (dst : counts) (src : counts) =
  dst.verified <- dst.verified + src.verified;
  dst.skipped <- dst.skipped + src.skipped;
  dst.unrecorded <- dst.unrecorded + src.unrecorded;
  dst.relaxed <- dst.relaxed + src.relaxed;
  dst.safelisted <- dst.safelisted + src.safelisted;
  dst.unverified <- dst.unverified + src.unverified

let merge_into ~dst (src : t) =
  let merge_table dst_tbl src_tbl =
    Hashtbl.iter (fun key c -> add_counts_into (table_counts dst_tbl key) c) src_tbl
  in
  merge_table dst.per_as_import src.per_as_import;
  merge_table dst.per_as_export src.per_as_export;
  merge_table dst.per_pair_import src.per_pair_import;
  merge_table dst.per_pair_export src.per_pair_export;
  dst.per_route <- src.per_route @ dst.per_route;
  Hashtbl.iter
    (fun asn (f : unrec_flags) ->
      let d = unrec_flags_of dst asn in
      d.no_aut_num <- d.no_aut_num || f.no_aut_num;
      d.no_rules <- d.no_rules || f.no_rules;
      d.zero_route_as <- d.zero_route_as || f.zero_route_as;
      d.missing_set <- d.missing_set || f.missing_set)
    src.unrec_by_as;
  Hashtbl.iter
    (fun asn (f : special_flags) ->
      let d = special_flags_of dst asn in
      d.export_self <- d.export_self || f.export_self;
      d.import_customer <- d.import_customer || f.import_customer;
      d.missing_routes <- d.missing_routes || f.missing_routes;
      d.only_provider <- d.only_provider || f.only_provider;
      d.tier1_pair <- d.tier1_pair || f.tier1_pair;
      d.uphill <- d.uphill || f.uphill)
    src.special_by_as;
  add_counts_into dst.total src.total;
  dst.n_routes <- dst.n_routes + src.n_routes;
  dst.unverified_hops <- dst.unverified_hops + src.unverified_hops;
  dst.unverified_peering_only <- dst.unverified_peering_only + src.unverified_peering_only

let n_routes t = t.n_routes
let n_hops t = counts_total t.total
let overall t = t.total

(* ---------------- Figure 2 ---------------- *)

let per_as_list t =
  let asns = Hashtbl.create 512 in
  Hashtbl.iter (fun asn _ -> Hashtbl.replace asns asn ()) t.per_as_import;
  Hashtbl.iter (fun asn _ -> Hashtbl.replace asns asn ()) t.per_as_export;
  Hashtbl.fold
    (fun asn () acc ->
      let imports =
        Option.value ~default:(zero_counts ()) (Hashtbl.find_opt t.per_as_import asn)
      in
      let exports =
        Option.value ~default:(zero_counts ()) (Hashtbl.find_opt t.per_as_export asn)
      in
      (asn, imports, exports) :: acc)
    asns []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

type per_as_summary = {
  n_ases : int;
  all_same_status : int;
  all_verified : int;
  all_unrecorded : int;
  all_relaxed : int;
  all_safelisted : int;
  all_unverified : int;
  with_skips : int;
  with_unrecorded : int;
  with_special : int;
}

let merge_counts a b =
  { verified = a.verified + b.verified;
    skipped = a.skipped + b.skipped;
    unrecorded = a.unrecorded + b.unrecorded;
    relaxed = a.relaxed + b.relaxed;
    safelisted = a.safelisted + b.safelisted;
    unverified = a.unverified + b.unverified }

let pure c =
  let total = counts_total c in
  if total = 0 then None
  else if c.verified = total then Some `Verified
  else if c.skipped = total then Some `Skipped
  else if c.unrecorded = total then Some `Unrecorded
  else if c.relaxed = total then Some `Relaxed
  else if c.safelisted = total then Some `Safelisted
  else if c.unverified = total then Some `Unverified
  else None

let per_as_summary (t : t) =
  let entries = per_as_list t in
  let s =
    { n_ases = List.length entries;
      all_same_status = 0;
      all_verified = 0;
      all_unrecorded = 0;
      all_relaxed = 0;
      all_safelisted = 0;
      all_unverified = 0;
      with_skips = 0;
      with_unrecorded = 0;
      with_special = 0 }
  in
  List.fold_left
    (fun s (_, imports, exports) ->
      let both = merge_counts imports exports in
      let s =
        match pure both with
        | Some status ->
          { s with
            all_same_status = s.all_same_status + 1;
            all_verified = (s.all_verified + if status = `Verified then 1 else 0);
            all_unrecorded = (s.all_unrecorded + if status = `Unrecorded then 1 else 0);
            all_relaxed = (s.all_relaxed + if status = `Relaxed then 1 else 0);
            all_safelisted = (s.all_safelisted + if status = `Safelisted then 1 else 0);
            all_unverified = (s.all_unverified + if status = `Unverified then 1 else 0) }
        | None -> s
      in
      { s with
        with_skips = (s.with_skips + if both.skipped > 0 then 1 else 0);
        with_unrecorded = (s.with_unrecorded + if both.unrecorded > 0 then 1 else 0);
        with_special = (s.with_special + if both.relaxed + both.safelisted > 0 then 1 else 0) })
    s entries

(* ---------------- Figure 3 ---------------- *)

type per_pair_summary = {
  n_pairs : int;
  single_status_import : float;
  single_status_export : float;
  pairs_with_unverified : int;
  unverified_peering_mismatch : float;
}

let per_pair_summary (t : t) =
  let single tbl =
    let total = Hashtbl.length tbl in
    if total = 0 then 0.0
    else begin
      let singles = ref 0 in
      Hashtbl.iter (fun _ c -> if pure c <> None then incr singles) tbl;
      float_of_int !singles /. float_of_int total
    end
  in
  let with_unverified = ref 0 in
  let count_unv tbl = Hashtbl.iter (fun _ c -> if c.unverified > 0 then incr with_unverified) tbl in
  count_unv t.per_pair_import;
  count_unv t.per_pair_export;
  { n_pairs = Hashtbl.length t.per_pair_import + Hashtbl.length t.per_pair_export;
    single_status_import = single t.per_pair_import;
    single_status_export = single t.per_pair_export;
    pairs_with_unverified = !with_unverified;
    unverified_peering_mismatch =
      (if t.unverified_hops = 0 then 0.0
       else float_of_int t.unverified_peering_only /. float_of_int t.unverified_hops) }

let per_pair_list (t : t) =
  let collect direction tbl acc =
    Hashtbl.fold (fun pair counts acc -> (direction, pair, counts) :: acc) tbl acc
  in
  collect `Import t.per_pair_import (collect `Export t.per_pair_export [])
  |> List.sort compare

(* ---------------- Figure 4 ---------------- *)

type per_route_summary = {
  n_routes : int;
  single_status : float;
  single_verified : float;
  single_unrecorded : float;
  single_unverified : float;
  two_statuses : float;
  three_plus : float;
}

let per_route_summary (t : t) =
  let n = t.n_routes in
  if n = 0 then
    { n_routes = 0; single_status = 0.0; single_verified = 0.0; single_unrecorded = 0.0;
      single_unverified = 0.0; two_statuses = 0.0; three_plus = 0.0 }
  else begin
    let singles = ref 0 and sv = ref 0 and su = ref 0 and sb = ref 0 in
    let twos = ref 0 and more = ref 0 in
    List.iter
      (fun c ->
        let nonzero =
          List.length (List.filter (fun (_, v) -> v > 0) (counts_classes c))
        in
        if nonzero <= 1 then begin
          incr singles;
          match pure c with
          | Some `Verified -> incr sv
          | Some `Unrecorded -> incr su
          | Some `Unverified -> incr sb
          | _ -> ()
        end
        else if nonzero = 2 then incr twos
        else incr more)
      t.per_route;
    let f x = float_of_int x /. float_of_int n in
    { n_routes = n;
      single_status = f !singles;
      single_verified = f !sv;
      single_unrecorded = f !su;
      single_unverified = f !sb;
      two_statuses = f !twos;
      three_plus = f !more }
  end

(* ---------------- Figures 5 and 6 ---------------- *)

let per_route_list (t : t) = List.rev t.per_route

type unrec_breakdown = {
  ases_no_aut_num : int;
  ases_no_rules : int;
  ases_zero_route_as : int;
  ases_missing_set : int;
}

let unrec_breakdown (t : t) =
  Hashtbl.fold
    (fun _ f acc ->
      { ases_no_aut_num = (acc.ases_no_aut_num + if f.no_aut_num then 1 else 0);
        ases_no_rules = (acc.ases_no_rules + if f.no_rules then 1 else 0);
        ases_zero_route_as = (acc.ases_zero_route_as + if f.zero_route_as then 1 else 0);
        ases_missing_set = (acc.ases_missing_set + if f.missing_set then 1 else 0) })
    t.unrec_by_as
    { ases_no_aut_num = 0; ases_no_rules = 0; ases_zero_route_as = 0; ases_missing_set = 0 }

type special_breakdown = {
  ases_export_self : int;
  ases_import_customer : int;
  ases_missing_routes : int;
  ases_only_provider : int;
  ases_tier1_pair : int;
  ases_uphill : int;
  ases_any_special : int;
}

let special_breakdown (t : t) =
  Hashtbl.fold
    (fun _ f acc ->
      { ases_export_self = (acc.ases_export_self + if f.export_self then 1 else 0);
        ases_import_customer =
          (acc.ases_import_customer + if f.import_customer then 1 else 0);
        ases_missing_routes = (acc.ases_missing_routes + if f.missing_routes then 1 else 0);
        ases_only_provider = (acc.ases_only_provider + if f.only_provider then 1 else 0);
        ases_tier1_pair = (acc.ases_tier1_pair + if f.tier1_pair then 1 else 0);
        ases_uphill = (acc.ases_uphill + if f.uphill then 1 else 0);
        ases_any_special = acc.ases_any_special + 1 })
    t.special_by_as
    { ases_export_self = 0; ases_import_customer = 0; ases_missing_routes = 0;
      ases_only_provider = 0; ases_tier1_pair = 0; ases_uphill = 0; ases_any_special = 0 }

(* ---------------- canonical fingerprint ---------------- *)

(* The only order-sensitive component of [t] is [per_route]:
   [merge_into] prepend-concatenates, so two merge trees over the same
   shards interleave the profiles differently while agreeing on the
   multiset. The fingerprint therefore sorts the per-route profiles and
   every keyed series; everything else in [t] is commutative sums and
   monotone flags, independent of add/merge order by construction. *)
let fingerprint (t : t) =
  let b = Buffer.create 4096 in
  let counts c =
    Buffer.add_string b
      (Printf.sprintf "%d/%d/%d/%d/%d/%d" c.verified c.skipped c.unrecorded
         c.relaxed c.safelisted c.unverified)
  in
  Buffer.add_string b (Printf.sprintf "routes=%d hops=%d " t.n_routes (counts_total t.total));
  Buffer.add_string b "total=";
  counts t.total;
  Buffer.add_string b
    (Printf.sprintf " unverified_hops=%d peering_only=%d" t.unverified_hops
       t.unverified_peering_only);
  Buffer.add_string b "\nper_as:";
  List.iter
    (fun (asn, imp, exp) ->
      Buffer.add_string b (Printf.sprintf "\n  %d i=" asn);
      counts imp;
      Buffer.add_string b " e=";
      counts exp)
    (per_as_list t);
  Buffer.add_string b "\nper_pair:";
  List.iter
    (fun (dir, (a, z), c) ->
      Buffer.add_string b
        (Printf.sprintf "\n  %s %d>%d "
           (match dir with `Import -> "i" | `Export -> "e")
           a z);
      counts c)
    (per_pair_list t);
  Buffer.add_string b "\nper_route:";
  List.iter
    (fun c ->
      Buffer.add_string b "\n  ";
      counts c)
    (List.sort compare t.per_route);
  let u = unrec_breakdown t in
  Buffer.add_string b
    (Printf.sprintf "\nunrec=%d/%d/%d/%d" u.ases_no_aut_num u.ases_no_rules
       u.ases_zero_route_as u.ases_missing_set);
  let s = special_breakdown t in
  Buffer.add_string b
    (Printf.sprintf "\nspecial=%d/%d/%d/%d/%d/%d/%d" s.ases_export_self
       s.ases_import_customer s.ases_missing_routes s.ases_only_provider
       s.ases_tier1_pair s.ases_uphill s.ases_any_special);
  Digest.to_hex (Digest.string (Buffer.contents b))
