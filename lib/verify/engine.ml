module Ast = Rz_policy.Ast
module Db = Rz_irr.Db
module Rel_db = Rz_asrel.Rel_db
module Range_op = Rz_net.Range_op

type config = { paper_compat : bool; memoize : bool; track_deps : bool }

let default_config = { paper_compat = false; memoize = true; track_deps = false }

(* Observability: one increment of [verify.hops_total] plus exactly one
   per-status counter per hop check, so the status counters always sum
   to the hop total (asserted by the golden pipeline test). All are
   Atomic-backed — safe under verify_parallel's domain fan-out. *)
module Obs = Rz_obs.Obs
module Trace = Rz_trace.Trace

let c_hops = Obs.Counter.make "verify.hops_total"
let c_verified = Obs.Counter.make "verify.status.verified"
let c_skipped = Obs.Counter.make "verify.status.skipped"
let c_unrecorded = Obs.Counter.make "verify.status.unrecorded"
let c_relaxed = Obs.Counter.make "verify.status.relaxed"
let c_safelisted = Obs.Counter.make "verify.status.safelisted"
let c_unverified = Obs.Counter.make "verify.status.unverified"
let c_as_set_evals = Obs.Counter.make "verify.filter_evals.as_set"
let c_filter_abstains = Obs.Counter.make "verify.filter_abstains_total"
let c_routes = Obs.Counter.make "verify.routes_total"
let c_routes_excluded = Obs.Counter.make "verify.routes_excluded_total"
let c_memo_hits = Obs.Counter.make "verify.memo_hits"
let c_memo_misses = Obs.Counter.make "verify.memo_misses"
let h_route_ns = Obs.Histogram.make "verify.route_ns"

(* Churn-safe invalidation (the streaming engine's contract): entries
   surgically removed from the hop memo when a policy object changes, and
   compiled NFAs evicted when the rules that contributed them change.
   Registered here because the memo lives here, named under [stream.*]
   because only the streaming scenario exercises them. *)
let c_invalidations = Obs.Counter.make "stream.invalidations"
let c_nfa_evicted = Obs.Counter.make "stream.nfa_evicted"

let status_counter (status : Status.t) =
  match status with
  | Status.Verified -> c_verified
  | Status.Skipped _ -> c_skipped
  | Status.Unrecorded _ -> c_unrecorded
  | Status.Relaxed _ -> c_relaxed
  | Status.Safelisted _ -> c_safelisted
  | Status.Unverified -> c_unverified

let count_status (status : Status.t) =
  Obs.Counter.incr c_hops;
  Obs.Counter.incr (status_counter status)

(* Key of one memoizable hop check. [second] is [path.(1)] for export
   checks (read by the Export-Self relaxation and the uphill safelist) and
   a sentinel otherwise — with it, every input [verify_hop] consumes on a
   path-free policy is in the key, so a cached verdict is bit-identical to
   a recomputed one. *)
type hop_key = {
  k_export : bool;
  k_subject : Rz_net.Asn.t;
  k_remote : Rz_net.Asn.t;
  k_second : Rz_net.Asn.t;
  k_prefix : Rz_net.Prefix.t;
  k_origin : Rz_net.Asn.t;
}

(* The memo lookup sits on the per-hop fast path, so it avoids
   [Hashtbl.hash]'s generic structure walk: ASNs and both address
   families are machine integers underneath, mixed by hand. *)
module Hop_tbl = Hashtbl.Make (struct
  type t = hop_key

  let equal a b =
    a.k_subject = b.k_subject && a.k_remote = b.k_remote
    && a.k_second = b.k_second && a.k_origin = b.k_origin
    && a.k_export = b.k_export
    && Rz_net.Prefix.equal a.k_prefix b.k_prefix

  let prefix_hash (p : Rz_net.Prefix.t) =
    match p.addr with
    | Rz_net.Prefix.V4 a -> (a * 31) + p.len
    | Rz_net.Prefix.V6 (hi, lo) ->
      (((Int64.to_int hi * 31) + Int64.to_int lo) * 31) + p.len

  let hash k =
    let h = prefix_hash k.k_prefix in
    let h = (h * 31) + k.k_subject in
    let h = (h * 31) + k.k_remote in
    let h = (h * 31) + k.k_second in
    let h = (h * 31) + k.k_origin in
    if k.k_export then h * 31 else h
end)

(* Trace provenance gathered alongside a hop verdict when decision
   tracing ({!Rz_trace.Trace}) is enabled: the rendered rule consulted,
   the kind of the decisive filter, and every set name walked. [None]
   whenever tracing was off during the evaluation — which also covers
   every memo entry created in an untraced run. *)
type prov = {
  p_rule : string option;
  p_filter : string option;
  p_sets : string list;
}

(* A memoized hop carries its provenance so cached hits can emit trace
   records as rich as recomputed ones. Tracing configuration is fixed
   before an engine runs, so entries created in a traced run (the only
   ones its hits can find) always hold [Some prov]. *)
type memo_entry = { e_hop : Report.hop; e_prov : prov option }

(* Database reads a hop evaluation performed beyond what {!hop_key}
   captures, recorded when [config.track_deps] so a later policy-object
   edit can surgically invalidate exactly the entries that read the
   edited object. Set names are the {e roots} consulted (flattening
   recurses inside [Db]; the reachability walk in {!apply_edits} expands
   them). Origins are the ASNs whose route-object {e presence} gated the
   verdict (the [Zero_route_as] abstain). [n_overflow] marks an entry
   that blew the cap and must be treated as depending on everything. *)
type dep_note = {
  mutable n_sets : string list;
  mutable n_origins : int list;
  mutable n_overflow : bool;
}

let max_deps = 128
let fresh_deps () = { n_sets = []; n_origins = []; n_overflow = false }

type t = {
  mutable db : Db.t;
      (* mutable for generation swaps: {!apply_edits} installs the next
         database generation after invalidating what the edits touched *)
  rels : Rel_db.t;
  config : config;
  only_provider_memo : (Rz_net.Asn.t, bool) Hashtbl.t;
  regex_cache : Rz_aspath.Regex_nfa.Cache.cache;
      (* each distinct Path_regex pattern compiled once per engine *)
  path_dep_memo : (int, bool) Hashtbl.t;
      (* (subject lsl 1) lor is_export -> policies reference the AS-path *)
  hop_memo : memo_entry Hop_tbl.t;
  (* Reverse dependency indexes over memoized keys, maintained only when
     [config.track_deps]. A key may be listed more than once (re-inserted
     after an invalidation through another index); removal is idempotent
     and [stream.invalidations] counts actual memo removals only. The
     ["*"] bucket of [idx_set] holds overflowed entries. *)
  idx_subject : (Rz_net.Asn.t, hop_key list ref) Hashtbl.t;
  idx_prefix : (Rz_net.Prefix.t, hop_key list ref) Hashtbl.t;
  idx_set : (string, hop_key list ref) Hashtbl.t;
  idx_origin : (Rz_net.Asn.t, hop_key list ref) Hashtbl.t;
}

let create ?(config = default_config) db rels =
  { db; rels; config;
    only_provider_memo = Hashtbl.create 64;
    regex_cache = Rz_aspath.Regex_nfa.Cache.create ();
    path_dep_memo = Hashtbl.create 64;
    hop_memo = Hop_tbl.create 4096;
    idx_subject = Hashtbl.create 64;
    idx_prefix = Hashtbl.create 256;
    idx_set = Hashtbl.create 64;
    idx_origin = Hashtbl.create 64 }

let db t = t.db
let hop_memo_size t = Hop_tbl.length t.hop_memo
let nfa_cache_size t = Rz_aspath.Regex_nfa.Cache.size t.regex_cache

(* ------------------------------------------------------------------ *)
(* Tri-valued evaluation: a filter/peering either matches, mismatches,  *)
(* or abstains (unhandled construct / missing RPSL object).             *)
(* ------------------------------------------------------------------ *)

type abstain = A_skip of Status.skip_reason | A_unrec of Status.unrec_reason
type outcome = Match | NoMatch | Abstain of abstain

let o_and a b =
  match (a, b) with
  | NoMatch, _ | _, NoMatch -> NoMatch
  | Abstain x, _ | _, Abstain x -> Abstain x
  | Match, Match -> Match

let o_or a b =
  match (a, b) with
  | Match, _ | _, Match -> Match
  | Abstain x, _ | _, Abstain x -> Abstain x
  | NoMatch, NoMatch -> NoMatch

let o_not = function Match -> NoMatch | NoMatch -> Match | Abstain x -> Abstain x

(* Evaluation context for one hop check. *)
type ctx = {
  prefix : Rz_net.Prefix.t;
  path : Rz_net.Asn.t array;  (** exporter first, origin last *)
  remote : Rz_net.Asn.t;      (** PeerAS binding *)
  origin : Rz_net.Asn.t;
  mutable covering : (Rz_net.Prefix.t * Rz_net.Asn.t) list option;
      (** route objects covering [prefix], computed on first use — the
          trie is walked once per hop check, however many filter terms
          consult it *)
  trace : bool;  (** decision tracing on for this evaluation *)
  mutable sets_walked : string list;
      (** set names consulted (reverse order), only when [trace] *)
  mutable sets_n : int;
  deps : dep_note option;
      (** database reads recorded for invalidation, when [track_deps] *)
}

(* Bound on [sets_walked]: trace records must stay small even under an
   as-set bomb. *)
let max_traced_sets = 8

let make_ctx ~trace ~deps ~prefix ~path ~remote ~origin =
  { prefix; path; remote; origin; covering = None; trace; sets_walked = [];
    sets_n = 0; deps }

let trace_set ctx name =
  if ctx.trace && ctx.sets_n < max_traced_sets then begin
    ctx.sets_walked <- name :: ctx.sets_walked;
    ctx.sets_n <- ctx.sets_n + 1
  end

let dep_set ctx name =
  match ctx.deps with
  | None -> ()
  | Some d ->
    if not d.n_overflow then begin
      let key = Rz_rpsl.Set_name.canonical name in
      if not (List.mem key d.n_sets) then
        if List.length d.n_sets >= max_deps then d.n_overflow <- true
        else d.n_sets <- key :: d.n_sets
    end

let dep_origin ctx asn =
  match ctx.deps with
  | None -> ()
  | Some d ->
    if (not d.n_overflow) && not (List.mem asn d.n_origins) then
      if List.length d.n_origins >= max_deps then d.n_overflow <- true
      else d.n_origins <- asn :: d.n_origins

(* Every set-reference evaluation site notes the name for both consumers:
   the trace record (display name, capped small) and the invalidation
   index (canonical name, capped large). *)
let note_set ctx name =
  trace_set ctx name;
  dep_set ctx name

let covering t ctx =
  match ctx.covering with
  | Some routes -> routes
  | None ->
    let routes = Db.covering_routes t.db ctx.prefix in
    ctx.covering <- Some routes;
    routes

(* ---------------- filters ---------------- *)

let prefix_from_origin t ctx asn op =
  List.exists
    (fun (declared, o) ->
      o = asn && Range_op.matches op ~declared ~observed:ctx.prefix)
    (covering t ctx)

let rec eval_filter t ctx (filter : Ast.filter) : outcome =
  match filter with
  | Ast.Any -> Match
  | Ast.Peer_as_filter ->
    if prefix_from_origin t ctx ctx.remote Range_op.None_ then Match
    else begin
      (* The verdict now hinges on whether [remote] has any route object
         at all — record the origin dependency so a route add/del for it
         (anywhere, not just under this prefix) invalidates the entry. *)
      dep_origin ctx ctx.remote;
      if not (Db.origin_has_routes t.db ctx.remote) then
        Abstain (A_unrec (Status.Zero_route_as ctx.remote))
      else NoMatch
    end
  | Ast.As_num (asn, op) ->
    if prefix_from_origin t ctx asn op then Match
    else begin
      dep_origin ctx asn;
      if not (Db.origin_has_routes t.db asn) then
        Abstain (A_unrec (Status.Zero_route_as asn))
      else NoMatch
    end
  | Ast.As_set_ref (name, op) ->
    note_set ctx name;
    if not (Db.as_set_exists t.db name) then
      Abstain (A_unrec (Status.Unrecorded_as_set name))
    else begin
      Obs.Counter.incr c_as_set_evals;
      let members = Db.flatten_as_set t.db name in
      if
        List.exists
          (fun (declared, o) ->
            Db.Asn_set.mem o members && Range_op.matches op ~declared ~observed:ctx.prefix)
          (covering t ctx)
      then Match
      else NoMatch
    end
  | Ast.Route_set_ref (name, op) ->
    note_set ctx name;
    if not (Db.route_set_exists t.db name) then
      Abstain (A_unrec (Status.Unrecorded_route_set name))
    else begin
      let members = Db.flatten_route_set t.db name in
      if
        List.exists
          (fun (declared, member_op) ->
            let effective = Range_op.compose op member_op in
            Range_op.matches effective ~declared ~observed:ctx.prefix)
          members
      then Match
      else NoMatch
    end
  | Ast.Filter_set_ref name ->
    note_set ctx name;
    (match Db.find_filter_set t.db name with
     | None -> Abstain (A_unrec (Status.Unrecorded_filter_set name))
     | Some fs -> eval_filter t ctx fs.filter)
  | Ast.Prefix_set (members, outer_op) ->
    if
      List.exists
        (fun (declared, member_op) ->
          let effective = Range_op.compose outer_op member_op in
          Range_op.matches effective ~declared ~observed:ctx.prefix)
        members
    then Match
    else NoMatch
  | Ast.Path_regex regex ->
    if t.config.paper_compat && Rz_aspath.Regex_ast.uses_future_work_features regex then
      Abstain (A_skip Status.Future_work_regex)
    else begin
      (* Each distinct pattern is compiled to its Thompson NFA once per
         engine; every later route with the same pattern reuses it. The
         state-estimate cap ({1000,2000} repetition bombs and friends) is
         decided inside the cached compile: a capped matcher matches
         nothing, so the hop falls through to Unverified (conservative
         abstain) exactly as the old per-route estimate check did, and
         [nfa.capped] records the refusal once per pattern. *)
      let nfa = Rz_aspath.Regex_nfa.Cache.get t.regex_cache regex in
      let env =
        { Rz_aspath.Regex_match.asn_in_set = (fun name asn -> Db.asn_in_as_set t.db name asn);
          peer_as = Some ctx.remote }
      in
      if Rz_aspath.Regex_nfa.matches ~env nfa ctx.path then Match else NoMatch
    end
  | Ast.Community _ -> Abstain (A_skip Status.Community_filter)
  | Ast.Fltr_martian -> if Rz_net.Martian.is_martian ctx.prefix then Match else NoMatch
  | Ast.And_f (a, b) -> o_and (eval_filter t ctx a) (eval_filter t ctx b)
  | Ast.Or_f (a, b) -> o_or (eval_filter t ctx a) (eval_filter t ctx b)
  | Ast.Not_f a -> o_not (eval_filter t ctx a)

(* ---------------- peerings ---------------- *)

let rec eval_as_expr t ctx (expr : Ast.as_expr) : outcome =
  match expr with
  | Ast.Asn asn -> if asn = ctx.remote then Match else NoMatch
  | Ast.As_set name ->
    note_set ctx name;
    if not (Db.as_set_exists t.db name) then
      Abstain (A_unrec (Status.Unrecorded_as_set name))
    else if Db.asn_in_as_set t.db name ctx.remote then Match
    else NoMatch
  | Ast.Any_as -> Match
  | Ast.And (a, b) -> o_and (eval_as_expr t ctx a) (eval_as_expr t ctx b)
  | Ast.Or (a, b) -> o_or (eval_as_expr t ctx a) (eval_as_expr t ctx b)
  | Ast.Except_as (a, b) ->
    o_and (eval_as_expr t ctx a) (o_not (eval_as_expr t ctx b))

let eval_peering t ctx (peering : Ast.peering) : outcome =
  match peering with
  | Ast.Peering_spec { as_expr; _ } -> eval_as_expr t ctx as_expr
  | Ast.Peering_set_ref name ->
    note_set ctx name;
    (match Db.find_peering_set t.db name with
     | None -> Abstain (A_unrec (Status.Unrecorded_peering_set name))
     | Some ps ->
       List.fold_left
         (fun acc p ->
           o_or acc
             (match p with
              | Ast.Peering_spec { as_expr; _ } -> eval_as_expr t ctx as_expr
              | Ast.Peering_set_ref _ -> NoMatch (* no nested peering-sets *)))
         NoMatch ps.peerings)

(* Remote ASNs / as-sets a peering references, for diagnostics. *)
let rec as_expr_refs acc = function
  | Ast.Asn asn -> Report.Match_remote_as_num asn :: acc
  | Ast.As_set name -> Report.Match_remote_as_set name :: acc
  | Ast.Any_as -> acc
  | Ast.And (a, b) | Ast.Or (a, b) | Ast.Except_as (a, b) ->
    as_expr_refs (as_expr_refs acc a) b

let peering_refs = function
  | Ast.Peering_spec { as_expr; _ } -> as_expr_refs [] as_expr
  | Ast.Peering_set_ref name -> [ Report.Match_remote_as_set name ]

(* ---------------- rules ---------------- *)

(* Facts gathered per factor whose afi applied, used by the precedence
   decision and the relaxation checks. *)
type factor_fact = {
  peering_outcome : outcome;
  filter_outcome : outcome option;  (* evaluated only when peering matched *)
  filter : Ast.filter;
  refs : Report.item list;          (* peering references, for diagnostics *)
  matched_actions : Ast.action list;
      (* actions of the peering clauses that matched the remote *)
}

let afi_applies (rule : Ast.rule) (term : Ast.term) prefix =
  match term.afi with
  | [] ->
    if rule.multiprotocol then true
    else
      (* plain import/export covers IPv4 unicast only (RFC 2622) *)
      Rz_net.Prefix.is_v4 prefix
  | afis -> Rz_net.Afi.matches_any afis prefix

let eval_factor t ctx (factor : Ast.factor) : factor_fact * outcome =
  let peering_outcome = ref NoMatch in
  let matched_actions = ref [] in
  List.iter
    (fun (pa : Ast.peering_action) ->
      let o = eval_peering t ctx pa.peering in
      if o = Match then matched_actions := !matched_actions @ pa.actions;
      peering_outcome := o_or !peering_outcome o)
    factor.peerings;
  let peering_outcome = !peering_outcome in
  let matched_actions = !matched_actions in
  let refs = List.concat_map (fun (pa : Ast.peering_action) -> peering_refs pa.peering) factor.peerings in
  match peering_outcome with
  | Match ->
    let filter_outcome = eval_filter t ctx factor.filter in
    (match filter_outcome with
     | Abstain _ -> Obs.Counter.incr c_filter_abstains
     | Match | NoMatch -> ());
    ( { peering_outcome; filter_outcome = Some filter_outcome; filter = factor.filter;
        refs; matched_actions },
      filter_outcome )
  | NoMatch ->
    ({ peering_outcome; filter_outcome = None; filter = factor.filter; refs;
       matched_actions = [] },
     NoMatch)
  | Abstain a ->
    ({ peering_outcome; filter_outcome = None; filter = factor.filter; refs;
       matched_actions = [] },
     Abstain a)

let eval_term t ctx (rule : Ast.rule) (term : Ast.term) facts : outcome =
  if not (afi_applies rule term ctx.prefix) then NoMatch
  else
    List.fold_left
      (fun acc factor ->
        let fact, outcome = eval_factor t ctx factor in
        facts := fact :: !facts;
        o_or acc outcome)
      NoMatch term.factors

(* Structured policies: EXCEPT's right-hand side takes precedence for the
   routes it matches; REFINE requires both sides (RFC 2622 §6.6), each
   side constrained to its own afi scope. *)
let rec scope_applies (rule : Ast.rule) prefix = function
  | Ast.Term_e term -> afi_applies rule term prefix
  | Ast.Except_e (term, rest) | Ast.Refine_e (term, rest) ->
    afi_applies rule term prefix || scope_applies rule prefix rest

let rec eval_expr t ctx rule facts = function
  | Ast.Term_e term -> eval_term t ctx rule term facts
  | Ast.Except_e (term, rest) ->
    if scope_applies rule ctx.prefix rest then begin
      match eval_expr t ctx rule facts rest with
      | Match -> Match
      | Abstain a -> Abstain a
      | NoMatch -> eval_term t ctx rule term facts
    end
    else eval_term t ctx rule term facts
  | Ast.Refine_e (term, rest) ->
    if scope_applies rule ctx.prefix rest then
      o_and (eval_term t ctx rule term facts) (eval_expr t ctx rule facts rest)
    else eval_term t ctx rule term facts

let eval_rule t ctx (rule : Ast.rule) facts = eval_expr t ctx rule facts rule.expr

(* ---------------- special cases (Section 5.1) ---------------- *)

(* Export Self: the filter is the exporter's own ASN; relax when the AS
   the route was received from is a customer and a route object by some
   cone member covers the prefix (Appendix C semantics). *)
let export_self_applies t ctx ~subject (fact : factor_fact) =
  match fact.filter with
  | Ast.As_num (asn, _) when asn = subject && Array.length ctx.path >= 2 ->
    let received_from = ctx.path.(1) in
    Rel_db.relationship t.rels subject received_from = Rel_db.A_provider_of_b
    &&
    let cone = Rel_db.customer_cone t.rels subject in
    List.exists (fun (_, o) -> Rel_db.Asn_set.mem o cone) (covering t ctx)
  | _ -> false

(* Import Customer: filter names the (transit) customer the route comes
   from; relax the filter to ANY. *)
let import_customer_applies t ctx ~subject (fact : factor_fact) =
  match fact.filter with
  | Ast.As_num (asn, _) ->
    asn = ctx.remote
    && Rel_db.relationship t.rels subject ctx.remote = Rel_db.A_provider_of_b
  | _ -> false

(* Missing routes: the filter names the origin AS (or a set containing
   it) but its route objects are stale/missing. *)
let missing_routes_applies t ctx (fact : factor_fact) =
  match fact.filter with
  | Ast.As_num (asn, _) -> asn = ctx.origin
  | Ast.As_set_ref (name, _) ->
    Db.as_set_exists t.db name && Db.asn_in_as_set t.db name ctx.origin
  | _ -> false

(* Only Provider Policies: every ASN referenced in the subject's rules'
   peerings is one of its providers. *)
let only_provider_policies t ~subject =
  match Hashtbl.find_opt t.only_provider_memo subject with
  | Some cached -> cached
  | None ->
    let result =
      match Db.find_aut_num t.db subject with
      | None -> false
      | Some an ->
        let referenced = ref [] and disqualified = ref false in
        let scan_as_expr = function
          | Ast.Asn asn -> referenced := asn :: !referenced
          | Ast.As_set _ | Ast.Any_as | Ast.And _ | Ast.Or _ | Ast.Except_as _ ->
            disqualified := true
        in
        let scan_rule (rule : Ast.rule) =
          List.iter
            (fun (term : Ast.term) ->
              List.iter
                (fun (factor : Ast.factor) ->
                  List.iter
                    (fun (pa : Ast.peering_action) ->
                      match pa.peering with
                      | Ast.Peering_spec { as_expr; _ } -> scan_as_expr as_expr
                      | Ast.Peering_set_ref _ -> disqualified := true)
                    factor.peerings)
                term.factors)
            (Ast.expr_terms rule.expr)
        in
        List.iter scan_rule an.imports;
        List.iter scan_rule an.exports;
        (not !disqualified)
        && !referenced <> []
        && List.for_all
             (fun asn -> Rel_db.relationship t.rels asn subject = Rel_db.A_provider_of_b)
             !referenced
    in
    Hashtbl.replace t.only_provider_memo subject result;
    result

(* ---------------- path-freeness analysis ---------------- *)

(* A hop verdict may be memoized only when the subject's policies in that
   direction never read the AS-path beyond what {!hop_key} captures (the
   origin, plus [path.(1)] for exports). The one filter construct that
   reads the full path is [Path_regex]; filter-sets are resolved
   recursively (with a cycle guard) because they can hide one. *)
let rec filter_reads_path t ~visiting (filter : Ast.filter) =
  match filter with
  | Ast.Path_regex _ -> true
  | Ast.And_f (a, b) | Ast.Or_f (a, b) ->
    filter_reads_path t ~visiting a || filter_reads_path t ~visiting b
  | Ast.Not_f a -> filter_reads_path t ~visiting a
  | Ast.Filter_set_ref name ->
    let key = Rz_rpsl.Set_name.canonical name in
    if List.mem key visiting then false
    else
      (match Db.find_filter_set t.db name with
       | None -> false
       | Some fs -> filter_reads_path t ~visiting:(key :: visiting) fs.filter)
  | Ast.Any | Ast.Peer_as_filter | Ast.As_num _ | Ast.As_set_ref _
  | Ast.Route_set_ref _ | Ast.Prefix_set _ | Ast.Community _ | Ast.Fltr_martian ->
    false

let policies_read_path t ~subject ~direction =
  let memo_key = (subject lsl 1) lor (match direction with `Export -> 1 | `Import -> 0) in
  match Hashtbl.find_opt t.path_dep_memo memo_key with
  | Some cached -> cached
  | None ->
    let result =
      match Db.find_aut_num t.db subject with
      | None -> false
      | Some an ->
        let rules = match direction with `Import -> an.imports | `Export -> an.exports in
        List.exists
          (fun (rule : Ast.rule) ->
            List.exists
              (fun (term : Ast.term) ->
                List.exists
                  (fun (factor : Ast.factor) ->
                    filter_reads_path t ~visiting:[] factor.filter)
                  term.factors)
              (Ast.expr_terms rule.expr))
          rules
    in
    Hashtbl.replace t.path_dep_memo memo_key result;
    result

(* ---------------- hop verification ---------------- *)

(* Top-level constructor label of a filter, for trace provenance. *)
let filter_kind_label : Ast.filter -> string = function
  | Ast.Any -> "any"
  | Ast.Peer_as_filter -> "peeras"
  | Ast.As_num _ -> "as-num"
  | Ast.As_set_ref _ -> "as-set"
  | Ast.Route_set_ref _ -> "route-set"
  | Ast.Filter_set_ref _ -> "filter-set"
  | Ast.Prefix_set _ -> "prefix-set"
  | Ast.Path_regex _ -> "path-regex"
  | Ast.Community _ -> "community"
  | Ast.Fltr_martian -> "martian"
  | Ast.And_f _ | Ast.Or_f _ | Ast.Not_f _ -> "composite"

(* Trace records are bounded: a pathological rule rendering is clipped. *)
let clip s = if String.length s > 200 then String.sub s 0 197 ^ "..." else s

let trigger_of : Status.t -> string option = function
  | Status.Relaxed s | Status.Safelisted s -> Some (Status.special_to_string s)
  | Status.Unrecorded r -> Some (Status.unrec_to_string r)
  | Status.Skipped r -> Some (Status.skip_to_string r)
  | Status.Verified | Status.Unverified -> None

let empty_prov = { p_rule = None; p_filter = None; p_sets = [] }

(* Emit one trace record for a hop verdict, subject to the sampling
   policy. Building the record (prefix rendering, item strings) only
   happens for sampled hops. *)
let emit_trace ~direction ~subject ~remote ~prefix ~path ~memo (hop : Report.hop)
    (prov : prov option) =
  let cls = Status.class_label hop.Report.status in
  if Trace.should_sample cls then begin
    let n = Array.length path in
    let prov = Option.value prov ~default:empty_prov in
    Trace.emit
      { Trace.seq = 0;  (* assigned by emit *)
        t_ns = Obs.now_ns ();
        domain = (Domain.self () :> int);
        direction = (match direction with `Export -> "export" | `Import -> "import");
        subject; remote;
        prefix = Rz_net.Prefix.to_string prefix;
        origin = (if n = 0 then remote else path.(n - 1));
        path_len = n;
        verdict = Status.to_string hop.Report.status;
        verdict_class = cls;
        rule = prov.p_rule;
        filter_kind = prov.p_filter;
        as_sets = prov.p_sets;
        memo;
        trigger = trigger_of hop.Report.status;
        items = List.map Report.item_to_string hop.Report.items }
  end

let verify_hop_full t ~direction ~subject ~remote ~prefix ~path :
    Report.hop * prov option * dep_note option =
  let tracing = Trace.enabled () in
  let deps = if t.config.track_deps then Some (fresh_deps ()) else None in
  let from_as, to_as =
    match direction with `Export -> (subject, remote) | `Import -> (remote, subject)
  in
  let finish ?attrs status items =
    count_status status;
    { Report.direction; from_as; to_as; status; items; attrs }
  in
  match Db.find_aut_num t.db subject with
  | None ->
    ( finish (Status.Unrecorded (Status.No_aut_num subject))
        [ Report.Unrec (Status.No_aut_num subject) ],
      (if tracing then Some empty_prov else None),
      deps )
  | Some an ->
    let rules = match direction with `Import -> an.imports | `Export -> an.exports in
    if rules = [] then
      ( finish (Status.Unrecorded Status.No_rules) [ Report.Unrec Status.No_rules ],
        (if tracing then Some empty_prov else None),
        deps )
    else begin
      let origin = path.(Array.length path - 1) in
      let ctx = make_ctx ~trace:tracing ~deps ~prefix ~path ~remote ~origin in
      let facts = ref [] in
      let matched_rule = ref None in
      let overall =
        List.fold_left
          (fun acc rule ->
            let o = eval_rule t ctx rule facts in
            if o = Match && !matched_rule = None then matched_rule := Some rule;
            o_or acc o)
          NoMatch rules
      in
      let facts = List.rev !facts in
      (* Diagnostics: peering references of factors whose peering failed,
         and filter identities of factors whose filter failed. *)
      let items =
        List.concat_map
          (fun (fact : factor_fact) ->
            match (fact.peering_outcome, fact.filter_outcome) with
            | Match, Some NoMatch ->
              [ (match fact.filter with
                 | Ast.As_num (asn, op) -> Report.Match_filter_as_num (asn, op)
                 | Ast.As_set_ref (name, _) -> Report.Match_filter_as_set name
                 | _ -> Report.Match_filter) ]
            | NoMatch, _ -> fact.refs
            | _ -> [])
          facts
      in
      (* Provenance for the trace record: the matched rule for Verified,
         otherwise the first rule consulted (all were); the decisive
         filter's kind; the sets walked during evaluation. Computed only
         when tracing — the untraced hot path allocates nothing here. *)
      let prov () =
        if not tracing then None
        else begin
          let rule =
            match !matched_rule with Some r -> Some r | None -> List.nth_opt rules 0
          in
          let decisive =
            match overall with
            | Match ->
              List.find_opt
                (fun (fact : factor_fact) -> fact.filter_outcome = Some Match)
                facts
            | NoMatch | Abstain _ ->
              List.find_opt
                (fun (fact : factor_fact) ->
                  match fact.filter_outcome with
                  | Some NoMatch | Some (Abstain _) -> true
                  | _ -> false)
                facts
          in
          Some
            { p_rule = Option.map (fun r -> clip (Ast.rule_to_string r)) rule;
              p_filter =
                Option.map (fun (f : factor_fact) -> filter_kind_label f.filter) decisive;
              p_sets = List.rev ctx.sets_walked }
        end
      in
      let finish ?attrs status items = (finish ?attrs status items, prov (), deps) in
      match overall with
      | Match ->
        (* the attributes the first fully-matching factor assigns *)
        let attrs =
          List.find_map
            (fun (fact : factor_fact) ->
              if fact.filter_outcome = Some Match && fact.matched_actions <> [] then
                Result.to_option
                  (Rz_policy.Action_eval.apply fact.matched_actions
                     Rz_policy.Action_eval.empty)
              else None)
            facts
        in
        finish ?attrs Status.Verified []
      | NoMatch | Abstain _ ->
        (* Precedence after Verified: Skip, Unrecorded, Relaxed,
           Safelisted, Unverified (Section 5). *)
        let abstains =
          List.filter_map
            (fun (fact : factor_fact) ->
              match (fact.peering_outcome, fact.filter_outcome) with
              | Abstain a, _ | _, Some (Abstain a) -> Some a
              | _ -> None)
            facts
          @ (match overall with Abstain a -> [ a ] | _ -> [])
        in
        let first_skip =
          List.find_map (function A_skip r -> Some r | A_unrec _ -> None) abstains
        in
        let first_unrec =
          List.find_map (function A_unrec r -> Some r | A_skip _ -> None) abstains
        in
        (match first_skip with
         | Some reason -> finish (Status.Skipped reason) (items @ [ Report.Skip reason ])
         | None ->
           (match first_unrec with
            | Some reason ->
              finish (Status.Unrecorded reason) (items @ [ Report.Unrec reason ])
            | None ->
              (* Relaxed filters: only for factors whose peering matched
                 but filter said no. *)
              let filter_failed =
                List.filter
                  (fun (fact : factor_fact) -> fact.filter_outcome = Some NoMatch)
                  facts
              in
              let relaxed =
                if
                  direction = `Export
                  && List.exists (export_self_applies t ctx ~subject) filter_failed
                then Some Status.Export_self
                else if
                  direction = `Import
                  && List.exists (import_customer_applies t ctx ~subject) filter_failed
                then Some Status.Import_customer
                else if List.exists (missing_routes_applies t ctx) filter_failed then
                  Some Status.Missing_routes
                else None
              in
              (match relaxed with
               | Some special ->
                 finish (Status.Relaxed special) (items @ [ Report.Spec special ])
               | None ->
                 let is_customer_or_peer =
                   match Rel_db.relationship t.rels subject remote with
                   | Rel_db.A_provider_of_b | Rel_db.Peers -> true
                   | _ -> false
                 in
                 let safelisted =
                   if is_customer_or_peer && only_provider_policies t ~subject then
                     Some Status.Only_provider_policies
                   else if Rel_db.is_tier1 t.rels subject && Rel_db.is_tier1 t.rels remote
                   then Some Status.Tier1_pair
                   else begin
                     let uphill =
                       match direction with
                       | `Export ->
                         (* A customer passing a customer-learned route up
                            to its provider. The origin's own first-hop
                            export is NOT safelisted (there is no previous
                            AS), matching the paper's Appendix C where the
                            origin's export stays BadExport — the place
                            where filtering is most valuable. *)
                         Rel_db.relationship t.rels remote subject
                         = Rel_db.A_provider_of_b
                         && Array.length ctx.path >= 2
                         && Rel_db.relationship t.rels subject ctx.path.(1)
                            = Rel_db.A_provider_of_b
                       | `Import ->
                         (* provider importing from its customer *)
                         Rel_db.relationship t.rels subject remote
                         = Rel_db.A_provider_of_b
                     in
                     if uphill then Some Status.Uphill else None
                   end
                 in
                 (match safelisted with
                  | Some special ->
                    finish (Status.Safelisted special) (items @ [ Report.Spec special ])
                  | None -> finish Status.Unverified items))))
    end

(* Never a valid ASN ([Asn.t] is a non-negative int), so it cannot
   collide with a real [path.(1)]. *)
let no_second_as = -1

(* Reverse-index maintenance: push a key under an index bucket. Buckets
   are plain cons lists — duplicates are tolerated (see the [t] comment)
   and removal is wholesale per bucket. *)
let idx_push tbl k v =
  match Hashtbl.find_opt tbl k with
  | Some l -> l := v :: !l
  | None -> Hashtbl.add tbl k (ref [ v ])

let index_entry t key (deps : dep_note option) =
  idx_push t.idx_subject key.k_subject key;
  idx_push t.idx_prefix key.k_prefix key;
  match deps with
  | None -> idx_push t.idx_set "*" key
  | Some d ->
    if d.n_overflow then idx_push t.idx_set "*" key
    else begin
      List.iter (fun name -> idx_push t.idx_set name key) d.n_sets;
      List.iter (fun asn -> idx_push t.idx_origin asn key) d.n_origins
    end

let verify_hop t ~direction ~subject ~remote ~prefix ~path : Report.hop =
  let n = Array.length path in
  let tracing = Trace.enabled () in
  if (not t.config.memoize) || n = 0 then begin
    let hop, prov, _deps = verify_hop_full t ~direction ~subject ~remote ~prefix ~path in
    if tracing then
      emit_trace ~direction ~subject ~remote ~prefix ~path ~memo:"computed" hop prov;
    hop
  end
  else begin
    let is_export = match direction with `Export -> true | `Import -> false in
    let key =
      { k_export = is_export;
        k_subject = subject;
        k_remote = remote;
        k_second = (if is_export && n >= 2 then path.(1) else no_second_as);
        k_prefix = prefix;
        k_origin = path.(n - 1) }
    in
    match Hop_tbl.find t.hop_memo key with
    | entry ->
      (* A stored verdict implies the subject's policies are path-free,
         so the hit path is a single probe. Cached verdicts still advance
         [verify.hops_total] and the per-status counters, preserving the
         golden-metrics invariant that the status counters sum to the hop
         total. *)
      Obs.Counter.incr c_memo_hits;
      count_status entry.e_hop.Report.status;
      if tracing then
        emit_trace ~direction ~subject ~remote ~prefix ~path ~memo:"hit" entry.e_hop
          entry.e_prov;
      entry.e_hop
    | exception Not_found ->
      let hop, prov, deps = verify_hop_full t ~direction ~subject ~remote ~prefix ~path in
      (* Path-dependent policies bypass the memo (nothing is inserted, so
         later identical keys cannot hit) and results stay bit-identical
         to an unmemoized engine. *)
      let memo_label =
        if not (policies_read_path t ~subject ~direction) then begin
          Obs.Counter.incr c_memo_misses;
          Hop_tbl.add t.hop_memo key { e_hop = hop; e_prov = prov };
          if t.config.track_deps then index_entry t key deps;
          "miss"
        end
        else "bypass"
      in
      if tracing then
        emit_trace ~direction ~subject ~remote ~prefix ~path ~memo:memo_label hop prov;
      hop
  end

(* ---------------- generation swaps and churn-safe invalidation ------- *)

(* A policy-object change, described by the object that changed. The
   caller (the streaming engine) mutates its IR, rebuilds the database
   indexes, and hands the new generation here together with what changed;
   this function removes exactly the memoized state the change can reach
   and swaps the engine onto the new database.

   [Edit_aut_num] covers rule changes of that aut-num (member-of changes
   must additionally be reported as [Edit_set] of the affected sets).
   [Edit_set] covers any definition/member change of the named set, in
   any set class, including creation and deletion. [Edit_route] covers
   adding or removing the (prefix, origin) route object (its [member-of]
   sets, when any, must be reported as [Edit_set] too). *)
type edit =
  | Edit_aut_num of Rz_net.Asn.t
  | Edit_set of string
  | Edit_route of Rz_net.Prefix.t * Rz_net.Asn.t

let canon = Rz_rpsl.Set_name.canonical

let rec patterns_of_filter acc (f : Ast.filter) =
  match f with
  | Ast.Path_regex r -> r :: acc
  | Ast.And_f (a, b) | Ast.Or_f (a, b) ->
    patterns_of_filter (patterns_of_filter acc a) b
  | Ast.Not_f a -> patterns_of_filter acc a
  | Ast.Any | Ast.Peer_as_filter | Ast.As_num _ | Ast.As_set_ref _
  | Ast.Route_set_ref _ | Ast.Filter_set_ref _ | Ast.Prefix_set _
  | Ast.Community _ | Ast.Fltr_martian -> acc

let patterns_of_rules rules =
  List.fold_left
    (fun acc (rule : Ast.rule) ->
      List.fold_left
        (fun acc (term : Ast.term) ->
          List.fold_left
            (fun acc (factor : Ast.factor) -> patterns_of_filter acc factor.filter)
            acc term.factors)
        acc (Ast.expr_terms rule.expr))
    [] rules

let evict_patterns t patterns =
  List.iter
    (fun p ->
      Rz_aspath.Regex_nfa.Cache.remove t.regex_cache p;
      Obs.Counter.incr c_nfa_evicted)
    patterns

let apply_edits t ~db:new_db edits =
  let old_db = t.db in
  let removed = ref 0 in
  let invalidate_key key =
    if Hop_tbl.mem t.hop_memo key then begin
      Hop_tbl.remove t.hop_memo key;
      incr removed
    end
  in
  let invalidate_bucket tbl k =
    match Hashtbl.find_opt tbl k with
    | Some l ->
      List.iter invalidate_key !l;
      Hashtbl.remove tbl k
    | None -> ()
  in
  (* Overflowed entries depend on unknown objects: any edit kills them. *)
  if edits <> [] then invalidate_bucket t.idx_set "*";
  let set_roots () =
    Hashtbl.fold (fun r _ acc -> if r = "*" then acc else r :: acc) t.idx_set []
  in
  let any_set_edit = ref false in
  List.iter
    (fun edit ->
      match edit with
      | Edit_aut_num x ->
        Hashtbl.remove t.only_provider_memo x;
        Hashtbl.remove t.path_dep_memo (x lsl 1);
        Hashtbl.remove t.path_dep_memo ((x lsl 1) lor 1);
        invalidate_bucket t.idx_subject x;
        (* Evict the NFAs of both the outgoing and the incoming rule
           sets; the cache is pure, so eviction is a memory-bound
           measure, never a correctness one. *)
        List.iter
          (fun db0 ->
            match Db.find_aut_num db0 x with
            | None -> ()
            | Some an ->
              evict_patterns t (patterns_of_rules (an.imports @ an.exports)))
          [ old_db; new_db ]
      | Edit_set name ->
        any_set_edit := true;
        let target = canon name in
        List.iter
          (fun db0 ->
            match Db.find_filter_set db0 target with
            | None -> ()
            | Some fs -> evict_patterns t (patterns_of_filter [] fs.filter))
          [ old_db; new_db ];
        (* Invalidate every entry whose recorded root set can reach the
           edited set — in the old graph (the entry read it) or the new
           one (covers multi-edit batches where an earlier edit wires up
           the path). *)
        List.iter
          (fun root ->
            if
              Db.set_reaches old_db ~root ~target
              || Db.set_reaches new_db ~root ~target
            then invalidate_bucket t.idx_set root)
          (set_roots ())
      | Edit_route (p, o) ->
        (* Covering-route reads: every memoized evaluation under a prefix
           the edited route object covers saw a different covering list. *)
        let prefixes = Hashtbl.fold (fun q _ acc -> q :: acc) t.idx_prefix [] in
        List.iter
          (fun q -> if Rz_net.Prefix.contains p q then invalidate_bucket t.idx_prefix q)
          prefixes;
        (* Route-presence reads: entries whose verdict hinged on whether
           [o] originates anything at all. *)
        invalidate_bucket t.idx_origin o;
        (* Flatten-time reads: route-set flattens that consult [o]'s
           route objects. Route edits leave the set graph untouched, so
           either generation answers identically; use the new one. *)
        List.iter
          (fun root ->
            if Db.set_consults_origin new_db ~root o then
              invalidate_bucket t.idx_set root)
          (set_roots ()))
    edits;
  (* Path-freeness can flip when a filter-set starts or stops hiding a
     Path_regex; the memo is small and lazily refilled, so clear it
     wholesale on any set edit. (Per-subject entries for edited aut-nums
     were already removed above.) *)
  if !any_set_edit then Hashtbl.reset t.path_dep_memo;
  t.db <- new_db;
  Obs.Counter.add c_invalidations !removed;
  !removed

let verify_route_impl t (route : Rz_bgp.Route.t) : Report.route_report option =
  if Rz_bgp.Route.contains_as_set route then None
  else begin
    let path = Array.of_list (Rz_bgp.Route.dedup_path route) in
    let n = Array.length path in
    if n < 2 then None
    else begin
      (* Walk from the origin: path.(n-1) is the origin; hop i is
         exporter path.(i+1 ... wait, collector order) — element i is
         nearer the collector, element i+1 nearer the origin. *)
      let hops = ref [] in
      for i = n - 2 downto 0 do
        let exporter = path.(i + 1) and importer = path.(i) in
        (* Path as announced across this hop: exporter .. origin. *)
        let hop_path = Array.sub path (i + 1) (n - i - 1) in
        let export_hop =
          verify_hop t ~direction:`Export ~subject:exporter ~remote:importer
            ~prefix:route.prefix ~path:hop_path
        in
        let import_hop =
          verify_hop t ~direction:`Import ~subject:importer ~remote:exporter
            ~prefix:route.prefix ~path:hop_path
        in
        hops := import_hop :: export_hop :: !hops
      done;
      (* hops were accumulated collector-side-first; the paper reports
         origin-side first. *)
      Some { Report.route; hops = List.rev !hops }
    end
  end

let verify_route t route =
  if not (Obs.enabled ()) then verify_route_impl t route
  else begin
    let t0 = Obs.now_ns () in
    let result = verify_route_impl t route in
    let elapsed = Obs.now_ns () - t0 in
    (match result with
     | Some _ ->
       Obs.Counter.incr c_routes;
       Obs.Histogram.observe h_route_ns (float_of_int elapsed)
     | None -> Obs.Counter.incr c_routes_excluded);
    result
  end

let replay_route_counters ~times (result : Report.route_report option) =
  if times > 0 && Obs.enabled () then
    match result with
    | None -> Obs.Counter.add c_routes_excluded times
    | Some report ->
      Obs.Counter.add c_routes times;
      List.iter
        (fun (hop : Report.hop) ->
          Obs.Counter.add c_hops times;
          Obs.Counter.add (status_counter hop.status) times)
        report.hops
