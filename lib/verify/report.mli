(** Per-hop verification reports, printed in the style of the paper's
    Appendix C example ([OkImport { from: 133840, to: 6939 }],
    [MehExport { ... items: [...] }], ...). *)

type item =
  | Match_remote_as_num of Rz_net.Asn.t
      (** a rule's peering referenced this remote ASN, which is not the hop's
          other AS *)
  | Match_remote_as_set of string
      (** a rule's peering referenced this as-set, which does not contain the
          hop's other AS *)
  | Match_filter_as_num of Rz_net.Asn.t * Rz_net.Range_op.t
      (** peering matched, but this ASN filter rejected the prefix *)
  | Match_filter_as_set of string
  | Match_filter
      (** peering matched but a (non-ASN/as-set) filter rejected the route *)
  | Unrec of Status.unrec_reason
  | Skip of Status.skip_reason
  | Spec of Status.special

type hop = {
  direction : [ `Import | `Export ];
  from_as : Rz_net.Asn.t;   (** exporter side of the hop *)
  to_as : Rz_net.Asn.t;     (** importer side of the hop *)
  status : Status.t;
  items : item list;        (** diagnostics explaining non-Verified outcomes *)
  attrs : Rz_policy.Action_eval.attrs option;
      (** for Verified hops: the BGP attributes the matching rule's
          actions assign (LocalPref via the pref inversion, MED,
          communities, prepends); [None] when no actions applied or the
          hop did not verify *)
}

type route_report = {
  route : Rz_bgp.Route.t;
  hops : hop list;          (** origin-side hops first; export then import per hop *)
}

val item_to_string : item -> string

val verb_of : hop -> string
(** The Appendix-C verb combining status class and direction, e.g.
    ["OkImport"], ["MehExport"], ["BadExport"]. *)

val hop_to_string : hop -> string
(** E.g. [MehImport { from: 1299, to: 3257, items: [MatchRemoteAsNum(AS12), SpecTier1Pair] }]. *)

val route_report_to_string : route_report -> string
