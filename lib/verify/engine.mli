(** The route verification engine (paper Section 5).

    For each inter-AS hop of a BGP route, checks the exporter's [export]
    rules and the importer's [import] rules against the route, classifying
    the hop with {!Status.t} in the paper's precedence order and emitting
    Appendix-C style diagnostics. *)

type config = {
  paper_compat : bool;
      (** [true] reproduces the paper exactly: community filters and
          future-work regex constructs (ASN ranges, [~] operators) make the
          rule {e skipped}. [false] (the default) evaluates them — except
          community filters, which remain skipped because BGP communities
          are stripped unpredictably en route and cannot be checked against
          collector dumps. *)
  memoize : bool;
      (** [true] (the default) caches hop verdicts per
          [(direction, subject, remote, prefix, origin)] — plus the AS the
          route was received from, for exports — and short-circuits
          repeated hop checks. Gated by a per-[(aut-num, direction)]
          path-freeness analysis: policies that read the AS-path (a
          [Path_regex] filter, possibly hidden behind a filter-set) bypass
          the cache, so memoized results are bit-identical to
          [memoize = false]. Observable via [verify.memo_hits] /
          [verify.memo_misses]. *)
  track_deps : bool;
      (** [true] additionally records, per memoized hop verdict, which
          database objects the evaluation read beyond the memo key — set
          roots consulted and ASNs whose route-object presence gated the
          verdict — in reverse indexes, so {!apply_edits} can invalidate
          exactly the entries a policy-object change can reach. [false]
          (the default) keeps the batch hot path free of the bookkeeping;
          {!apply_edits} then has nothing to consult and the engine must
          not be fed edits. *)
}

val default_config : config
(** [{paper_compat = false; memoize = true; track_deps = false}]. *)

type t

val create : ?config:config -> Rz_irr.Db.t -> Rz_asrel.Rel_db.t -> t
(** [create db rels] — IRR database plus the business-relationship
    database used by the special-case checks. *)

val db : t -> Rz_irr.Db.t
(** The engine's current database generation. *)

val hop_memo_size : t -> int
(** Number of memoized hop verdicts (bounded-memory reporting). *)

val nfa_cache_size : t -> int
(** Number of compiled AS-path NFAs held by the engine's cache. *)

(** {1 Generation swaps (streaming verification)} *)

(** A policy-object change: the object whose definition changed. The
    caller mutates its IR, rebuilds the database ({!Rz_irr.Db.build}),
    and reports what changed via {!apply_edits}. [Edit_aut_num] is a rule
    change of that aut-num ([member-of] changes must also be reported as
    [Edit_set] of the affected sets); [Edit_set] is any change to the set
    with that (canonicalized) name in any set class, including creation
    and deletion; [Edit_route] is the addition or removal of the
    (prefix, origin) route object (plus [Edit_set] for its [member-of]
    targets, when any). Relationship (rels) data is static. *)
type edit =
  | Edit_aut_num of Rz_net.Asn.t
  | Edit_set of string
  | Edit_route of Rz_net.Prefix.t * Rz_net.Asn.t

val apply_edits : t -> db:Rz_irr.Db.t -> edit list -> int
(** [apply_edits t ~db edits] invalidates every memoized hop verdict the
    edits can reach — via the reverse dependency indexes recorded under
    [track_deps] — evicts compiled NFAs contributed by edited objects,
    drops the affected path-freeness and only-provider memo entries, and
    swaps the engine onto the [db] generation. Returns the number of hop
    memo entries removed (also added to [stream.invalidations]; NFA
    evictions count on [stream.nfa_evicted]). Invalidation is {e sound}
    (no stale entry survives — the streaming differential test proves
    incremental verdicts equal a from-scratch batch) and {e surgical}
    (an entry is removed only through a dependency it recorded). *)

val verify_hop :
  t ->
  direction:[ `Import | `Export ] ->
  subject:Rz_net.Asn.t ->
  remote:Rz_net.Asn.t ->
  prefix:Rz_net.Prefix.t ->
  path:Rz_net.Asn.t array ->
  Report.hop
(** Check one side of one hop. [subject] is the AS whose rules are
    examined; [remote] the other side of the BGP session; [path] is the
    AS-path as the route travels this hop — exporter first, origin last. *)

val verify_route : t -> Rz_bgp.Route.t -> Report.route_report option
(** Full walk from the origin: for each adjacent pair, the exporter's
    export check then the importer's import check. Returns [None] for
    routes the paper excludes: single-AS paths (nothing to verify) and
    paths containing BGP AS_SETs. Prepending is removed first. *)

val replay_route_counters : times:int -> Report.route_report option -> unit
(** Advance the observability counters as if {!verify_route} had returned
    this result [times] more times: [verify.routes_total] plus the hop and
    per-status counters for a report, [verify.routes_excluded_total] for
    [None]. Used by route dedup (identical routes verified once, weighted
    [multiplicity]) so global counters match an undeduplicated run; the
    per-route latency histogram is {e not} replayed. No-op when [times <= 0]
    or metrics are disabled. *)
