(** The route verification engine (paper Section 5).

    For each inter-AS hop of a BGP route, checks the exporter's [export]
    rules and the importer's [import] rules against the route, classifying
    the hop with {!Status.t} in the paper's precedence order and emitting
    Appendix-C style diagnostics. *)

type config = {
  paper_compat : bool;
      (** [true] reproduces the paper exactly: community filters and
          future-work regex constructs (ASN ranges, [~] operators) make the
          rule {e skipped}. [false] (the default) evaluates them — except
          community filters, which remain skipped because BGP communities
          are stripped unpredictably en route and cannot be checked against
          collector dumps. *)
  memoize : bool;
      (** [true] (the default) caches hop verdicts per
          [(direction, subject, remote, prefix, origin)] — plus the AS the
          route was received from, for exports — and short-circuits
          repeated hop checks. Gated by a per-[(aut-num, direction)]
          path-freeness analysis: policies that read the AS-path (a
          [Path_regex] filter, possibly hidden behind a filter-set) bypass
          the cache, so memoized results are bit-identical to
          [memoize = false]. Observable via [verify.memo_hits] /
          [verify.memo_misses]. *)
}

val default_config : config
(** [{paper_compat = false; memoize = true}]. *)

type t

val create : ?config:config -> Rz_irr.Db.t -> Rz_asrel.Rel_db.t -> t
(** [create db rels] — IRR database plus the business-relationship
    database used by the special-case checks. *)

val verify_hop :
  t ->
  direction:[ `Import | `Export ] ->
  subject:Rz_net.Asn.t ->
  remote:Rz_net.Asn.t ->
  prefix:Rz_net.Prefix.t ->
  path:Rz_net.Asn.t array ->
  Report.hop
(** Check one side of one hop. [subject] is the AS whose rules are
    examined; [remote] the other side of the BGP session; [path] is the
    AS-path as the route travels this hop — exporter first, origin last. *)

val verify_route : t -> Rz_bgp.Route.t -> Report.route_report option
(** Full walk from the origin: for each adjacent pair, the exporter's
    export check then the importer's import check. Returns [None] for
    routes the paper excludes: single-AS paths (nothing to verify) and
    paths containing BGP AS_SETs. Prepending is removed first. *)

val replay_route_counters : times:int -> Report.route_report option -> unit
(** Advance the observability counters as if {!verify_route} had returned
    this result [times] more times: [verify.routes_total] plus the hop and
    per-status counters for a report, [verify.routes_excluded_total] for
    [None]. Used by route dedup (identical routes verified once, weighted
    [multiplicity]) so global counters match an undeduplicated run; the
    per-route latency histogram is {e not} replayed. No-op when [times <= 0]
    or metrics are disabled. *)
