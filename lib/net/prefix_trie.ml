(* A node at depth d is reached by one specific bit path, and an entry
   terminates at depth = prefix length; since [Prefix.t] is canonical
   (host bits zeroed), every binding terminating at a node carries the
   *same* prefix. The compact representation stores that prefix once per
   occupied node and keeps only the bare values in the per-node list —
   at paper scale (millions of route objects in one trie) this saves a
   tuple cons per binding — reconstructing the (prefix, value) pairs on
   read. *)

type 'a node = {
  mutable zero : 'a node option;
  mutable one : 'a node option;
  mutable prefix : Prefix.t option; (* Some iff values <> [] *)
  mutable values : 'a list; (* bindings terminating here, newest first *)
}

type 'a t = {
  v4_root : 'a node;
  v6_root : 'a node;
  mutable count : int;
}

let fresh_node () = { zero = None; one = None; prefix = None; values = [] }
let create () = { v4_root = fresh_node (); v6_root = fresh_node (); count = 0 }
let root t p = if Prefix.is_v4 p then t.v4_root else t.v6_root

(* Prepend this node's (prefix, value) pairs onto [acc], reversing the
   stored order — the same shape [List.rev_append node.values acc] had
   when the pairs were stored whole. *)
let rev_pairs node acc =
  match node.prefix with
  | None -> acc
  | Some p -> List.fold_left (fun acc v -> (p, v) :: acc) acc node.values

let add t prefix value =
  let rec descend node depth =
    if depth = prefix.Prefix.len then begin
      node.prefix <- Some prefix;
      node.values <- value :: node.values
    end
    else begin
      let child =
        if Prefix.bit prefix depth then
          match node.one with
          | Some c -> c
          | None ->
            let c = fresh_node () in
            node.one <- Some c;
            c
        else
          match node.zero with
          | Some c -> c
          | None ->
            let c = fresh_node () in
            node.zero <- Some c;
            c
      in
      descend child (depth + 1)
    end
  in
  descend (root t prefix) 0;
  t.count <- t.count + 1

let exact t prefix =
  let rec descend node depth =
    if depth = prefix.Prefix.len then node.values
    else
      let child = if Prefix.bit prefix depth then node.one else node.zero in
      match child with None -> [] | Some c -> descend c (depth + 1)
  in
  descend (root t prefix) 0

let mem_exact t prefix = exact t prefix <> []

let covering t prefix =
  let rec descend node depth acc =
    let acc = rev_pairs node acc in
    if depth = prefix.Prefix.len then acc
    else
      let child = if Prefix.bit prefix depth then node.one else node.zero in
      match child with None -> acc | Some c -> descend c (depth + 1) acc
  in
  List.rev (descend (root t prefix) 0 [])

let covered_by t prefix =
  let rec subtree node acc =
    let acc = rev_pairs node acc in
    let acc = match node.zero with None -> acc | Some c -> subtree c acc in
    match node.one with None -> acc | Some c -> subtree c acc
  in
  let rec descend node depth =
    if depth = prefix.Prefix.len then subtree node []
    else
      let child = if Prefix.bit prefix depth then node.one else node.zero in
      match child with None -> [] | Some c -> descend c (depth + 1)
  in
  descend (root t prefix) 0

let length t = t.count

let iter f t =
  let rec walk node =
    (match node.prefix with
     | None -> ()
     | Some p -> List.iter (fun v -> f p v) node.values);
    Option.iter walk node.zero;
    Option.iter walk node.one
  in
  walk t.v4_root;
  walk t.v6_root

let fold f t init =
  let acc = ref init in
  iter (fun p v -> acc := f p v !acc) t;
  !acc
