module Splitmix = Rz_util.Splitmix

let c_injected = Rz_obs.Obs.Counter.make "fault.injected"

type kind =
  | Truncate_mid_object
  | Byte_splice
  | Crlf_line
  | Nul_line
  | Oversized_line
  | Duplicate_object
  | Interleave_objects
  | As_set_cycle_bomb
  | As_set_deep_bomb
  | Pathological_regex

let all_kinds =
  [ Truncate_mid_object; Byte_splice; Crlf_line; Nul_line; Oversized_line;
    Duplicate_object; Interleave_objects; As_set_cycle_bomb; As_set_deep_bomb;
    Pathological_regex ]

let kind_name = function
  | Truncate_mid_object -> "truncate-mid-object"
  | Byte_splice -> "byte-splice"
  | Crlf_line -> "crlf-line"
  | Nul_line -> "nul-line"
  | Oversized_line -> "oversized-line"
  | Duplicate_object -> "duplicate-object"
  | Interleave_objects -> "interleave-objects"
  | As_set_cycle_bomb -> "as-set-cycle-bomb"
  | As_set_deep_bomb -> "as-set-deep-bomb"
  | Pathological_regex -> "pathological-regex"

let kind_of_name name =
  List.find_opt (fun k -> kind_name k = name) all_kinds

type plan = {
  seed : int;
  rate : float;
  kinds : kind list;
}

let plan ?(kinds = all_kinds) ~seed ~rate () =
  if not (rate >= 0. && rate <= 1.) then
    invalid_arg (Printf.sprintf "Fault.plan: rate %g outside [0, 1]" rate);
  if kinds = [] then invalid_arg "Fault.plan: empty kind list";
  { seed; rate; kinds }

type report = {
  objects_seen : int;
  faults : (kind * int) list;
}

let total_faults r = List.fold_left (fun acc (_, n) -> acc + n) 0 r.faults

let report_lines r =
  Printf.sprintf "objects scanned: %d" r.objects_seen
  :: Printf.sprintf "faults injected: %d" (total_faults r)
  :: List.filter_map
       (fun (k, n) ->
         if n = 0 then None else Some (Printf.sprintf "  %-20s %d" (kind_name k) n))
       r.faults

(* ---------------- paragraph machinery ----------------

   Dumps are blank-line-separated paragraphs (see Rz_synthirr.Generate and
   Rz_rpsl.Reader); faults operate at paragraph granularity so a corrupted
   object damages itself, not the framing of its neighbours — except the
   faults whose whole point is to damage the framing. *)

let split_paragraphs text =
  let paras = ref [] and cur = ref [] in
  List.iter
    (fun line ->
      if String.trim line = "" then begin
        (match !cur with [] -> () | ls -> paras := List.rev ls :: !paras);
        cur := []
      end
      else cur := line :: !cur)
    (String.split_on_char '\n' text);
  (match !cur with [] -> () | ls -> paras := List.rev ls :: !paras);
  List.rev !paras

let join_paragraphs paras =
  match paras with
  | [] -> ""
  | _ -> String.concat "\n\n" (List.map (String.concat "\n") paras) ^ "\n"

let relines s = String.split_on_char '\n' s

(* ---------------- bomb payloads ----------------

   Bombs are appended as fresh paragraphs rather than edits, so they are
   syntactically clean RPSL that survives parsing and detonates in the
   layer it targets (flattening, NFA compilation). [idx] keeps names
   unique across multiple applications. *)

(* One past Rz_irr.Db.max_flatten_depth (64); kept literal to avoid a
   dependency cycle — suite_fault pins the relationship. *)
let deep_bomb_depth = 96

let deep_bomb idx =
  List.init deep_bomb_depth (fun i ->
      let self = Printf.sprintf "AS-FAULT-DEEP-%d-%d" idx i in
      let member =
        if i = deep_bomb_depth - 1 then "AS1"
        else Printf.sprintf "AS-FAULT-DEEP-%d-%d" idx (i + 1)
      in
      [ "as-set: " ^ self; "members: " ^ member ])

let cycle_bomb idx =
  List.init 3 (fun i ->
      [ Printf.sprintf "as-set: AS-FAULT-CYC-%d-%d" idx i;
        Printf.sprintf "members: AS-FAULT-CYC-%d-%d" idx ((i + 1) mod 3) ])

(* {3000,6000} estimates to ~24_000 NFA states — past the 10_000 cap, so
   Regex_nfa.compile refuses it and the verify engine abstains. The ASN is
   far outside the synthetic topology range so it collides with nothing. *)
let regex_bomb idx =
  let asn = 3_900_000 + idx in
  [ [ Printf.sprintf "aut-num: AS%d" asn;
      Printf.sprintf "as-name: FAULT-REGEX-%d" idx;
      "import: from AS1 accept <^AS2{3000,6000}$>";
      "export: to AS1 announce ANY" ] ]

(* ---------------- per-object faults ---------------- *)

let oversized_payload_len = 70_000 (* > Reader.default_limits.max_line_bytes *)

let splice_bytes rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let n = 1 + Splitmix.int rng 4 in
    for _ = 1 to n do
      Bytes.set b (Splitmix.int rng (Bytes.length b))
        (Char.chr (Splitmix.int rng 256))
    done;
    Bytes.to_string b
  end

let truncate_mid rng s =
  if String.length s <= 1 then s
  else String.sub s 0 (1 + Splitmix.int rng (String.length s - 1))

let interleave a b =
  let rec go acc = function
    | [], rest | rest, [] -> List.rev_append acc rest
    | x :: xs, y :: ys -> go (y :: x :: acc) (xs, ys)
  in
  go [] (a, b)

(* Apply [kind] to the paragraph stream at the current position.
   [para] is the chosen paragraph, [rest] the paragraphs after it.
   Returns (replacement paragraphs, remaining stream, appended bombs). *)
let apply_fault rng ~bomb_idx kind para rest =
  match kind with
  | Truncate_mid_object ->
    ([ relines (truncate_mid rng (String.concat "\n" para)) ], rest, [])
  | Byte_splice ->
    ([ relines (splice_bytes rng (String.concat "\n" para)) ], rest, [])
  | Crlf_line -> ([ List.map (fun l -> l ^ "\r") para ], rest, [])
  | Nul_line ->
    let garbage = "\x00\x00\xffbinary garbage\x00\x01\x02" in
    let pos = Splitmix.int rng (List.length para + 1) in
    let lines =
      List.concat (List.mapi (fun i l -> if i = pos then [ garbage; l ] else [ l ]) para)
    in
    ((if pos = List.length para then [ para @ [ garbage ] ] else [ lines ]), rest, [])
  | Oversized_line ->
    ([ para @ [ "remarks: " ^ String.make oversized_payload_len 'x' ] ], rest, [])
  | Duplicate_object -> ([ para; para ], rest, [])
  | Interleave_objects -> (
    match rest with
    | next :: rest' -> ([ interleave para next ], rest', [])
    | [] -> ([ para; para ], rest, []) (* no neighbour: degrade to duplicate *))
  | As_set_cycle_bomb -> ([ para ], rest, cycle_bomb bomb_idx)
  | As_set_deep_bomb -> ([ para ], rest, deep_bomb bomb_idx)
  | Pathological_regex -> ([ para ], rest, regex_bomb bomb_idx)

(* ---------------- driver ---------------- *)

type ctx = {
  rng : Splitmix.t;
  kinds : kind array;
  rate : float;
  counts : (kind, int) Hashtbl.t;
  mutable seen : int;
  mutable bombs : int; (* unique index for appended payload names *)
}

let record ctx kind =
  Hashtbl.replace ctx.counts kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt ctx.counts kind));
  Rz_obs.Obs.Counter.incr c_injected

let corrupt_text ctx text =
  let touched = ref false in
  let rec go acc tail paras =
    match paras with
    | [] -> (List.rev acc, List.rev tail)
    | para :: rest ->
      ctx.seen <- ctx.seen + 1;
      if ctx.rate > 0. && Splitmix.chance ctx.rng ctx.rate then begin
        touched := true;
        let kind = Splitmix.choose ctx.rng ctx.kinds in
        record ctx kind;
        let bomb_idx = ctx.bombs in
        let replaced, rest, bombs = apply_fault ctx.rng ~bomb_idx kind para rest in
        if bombs <> [] then ctx.bombs <- ctx.bombs + 1;
        go (List.rev_append replaced acc) (List.rev_append bombs tail) rest
      end
      else go (para :: acc) tail rest
  in
  let paras, bombs = go [] [] (split_paragraphs text) in
  (* Untouched dumps stay byte-identical — re-joining would normalize
     whitespace and spoil the rate-0/no-hit identity guarantee. *)
  if not !touched then text else join_paragraphs (paras @ bombs)

let finish_report ctx =
  { objects_seen = ctx.seen;
    faults =
      List.map
        (fun k -> (k, Option.value ~default:0 (Hashtbl.find_opt ctx.counts k)))
        all_kinds }

let make_ctx plan =
  { rng = Splitmix.create plan.seed;
    kinds = Array.of_list plan.kinds;
    rate = plan.rate;
    counts = Hashtbl.create 16;
    seen = 0;
    bombs = 0 }

let corrupt_dump plan text =
  let ctx = make_ctx plan in
  let corrupted = if plan.rate = 0. then text else corrupt_text ctx text in
  (corrupted, finish_report ctx)

let corrupt_dumps plan dumps =
  let ctx = make_ctx plan in
  let out =
    List.map
      (fun (source, text) ->
        (source, if plan.rate = 0. then text else corrupt_text ctx text))
      dumps
  in
  (out, finish_report ctx)
