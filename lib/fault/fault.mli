(** Deterministic fault injection for IRR dumps.

    The hostile-input counterpart of [Rz_synthirr.Generate]: given a clean
    synthetic dump and a splitmix-seeded {!plan}, [corrupt_dump] produces a
    corrupted dump exercising every recovery path in the pipeline —
    truncation mid-object, byte splices, CRLF/NUL/oversized lines,
    duplicated and interleaved objects, cyclic and over-deep as-set bombs,
    and pathological AS-path regexes. Equal plans yield byte-identical
    corruption, so every chaos failure is replayable from [(seed, rate)].

    Faults never make the pipeline {e wrong}, only {e degraded}: parsers
    record errors, flatteners truncate, matchers abstain. The harness in
    [bin/rpslyzer_cli.ml] ([faultinject]) and the [--chaos] bench sweep
    assert exactly that. Applications are counted on [fault.injected]. *)

type kind =
  | Truncate_mid_object  (** cut the object's text at a random byte *)
  | Byte_splice          (** overwrite one random byte with random garbage *)
  | Crlf_line            (** give every line of the object a CR ending *)
  | Nul_line             (** insert a line of NUL-laced binary garbage *)
  | Oversized_line
      (** insert a line longer than [Rz_rpsl.Reader.default_limits.max_line_bytes] *)
  | Duplicate_object     (** emit the object twice *)
  | Interleave_objects   (** riffle the object's lines with the next object's *)
  | As_set_cycle_bomb    (** append a 3-cycle of as-sets referencing each other *)
  | As_set_deep_bomb
      (** append a member chain deeper than [Rz_irr.Db.max_flatten_depth] *)
  | Pathological_regex
      (** append an aut-num whose import filter is a repetition bomb past
          [Rz_aspath.Regex_nfa.default_max_states] *)

val all_kinds : kind list
(** Every kind, in declaration order. *)

val kind_name : kind -> string
(** Stable kebab-case name, e.g. ["as-set-deep-bomb"]. *)

val kind_of_name : string -> kind option

type plan = {
  seed : int;    (** splitmix seed; equal plans corrupt identically *)
  rate : float;  (** per-object corruption probability in [0, 1] *)
  kinds : kind list;  (** kinds to draw from, uniformly *)
}

val plan : ?kinds:kind list -> seed:int -> rate:float -> unit -> plan
(** Build a plan; [kinds] defaults to {!all_kinds}. Raises
    [Invalid_argument] on a rate outside [0, 1] or an empty kind list. *)

type report = {
  objects_seen : int;       (** paragraphs scanned across all dumps *)
  faults : (kind * int) list;  (** applications per kind, declaration order *)
}

val total_faults : report -> int

val corrupt_dump : plan -> string -> string * report
(** Corrupt one dump. At [rate = 0.] the text is returned byte-identical
    (and no counter moves). *)

val corrupt_dumps : plan -> (string * string) list -> (string * string) list * report
(** Corrupt a [(source, text)] dump list in order under one RNG stream;
    the report aggregates across dumps. *)

val report_lines : report -> string list
(** Human-readable per-kind summary for CLI output. *)
