(** Pipeline observability: domain-safe counters, log-bucketed latency
    histograms, and monotonic-clock phase spans, collected in a global
    registry that renders to human-readable text and JSON.

    Design constraints (see DESIGN.md, "Observability"):

    - {b Near-zero cost when disabled.} Every hot-path operation first
      reads one [Atomic] flag and returns immediately when the registry
      is disabled (the default). Instrumented libraries can therefore
      create metrics unconditionally at module-init time.
    - {b Domain safety.} Counters and histogram buckets are
      [Atomic]-backed, so concurrent increments from [Domain.spawn]
      workers (as in [Rpslyzer.Pipeline.verify_parallel]) are never
      lost. Span nesting state is domain-local ([Domain.DLS]); the
      accumulated per-name statistics are atomics.
    - {b Naming.} Metric names follow [subsystem.metric_name], e.g.
      [verify.hops_total], [irr.as_flat.hits]. Counters that only ever
      grow end in [_total] or a [.hits]/[.misses] pair. *)

val enable : unit -> unit
(** Turn metric collection on (process-wide). Call before spawning
    worker domains so the flag write happens-before their reads. *)

val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered counter, histogram, and span accumulator, and
    clear the {!Meta} table. Registration survives; used by tests and
    long-running servers. *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds since an arbitrary epoch. For ad-hoc
    latency measurements feeding {!Histogram.observe}; {!Span.with_} is
    the higher-level interface. *)

module Counter : sig
  type t

  val make : string -> t
  (** Register (or look up) the counter with this name. Idempotent:
      two [make "x"] calls return the same underlying counter. *)

  val incr : t -> unit
  val add : t -> int -> unit
  (** No-ops while the registry is disabled. *)

  val get : t -> int
  val name : t -> string
end

module Histogram : sig
  (** Log-bucketed histogram over non-negative values. Bucket [i >= 1]
      covers [gamma^(i-1), gamma^i); values below [1.0] (and negatives)
      land in the underflow bucket 0. Quantile extraction returns the
      geometric midpoint of the selected bucket, so its relative error
      is bounded by [sqrt gamma] < one bucket width. *)

  type t

  val make : ?gamma:float -> string -> t
  (** [gamma] is the bucket growth factor, default [2^(1/4)] (~19% wide
      buckets, <= 9% quantile error). Must exceed 1.0. Idempotent per
      name; a differing [gamma] on a second [make] is ignored. *)

  val observe : t -> float -> unit
  (** Record one value. No-op while disabled. *)

  val count : t -> int
  val quantile : t -> float -> float
  (** [quantile h q] selects the bucket holding the observation of rank
      [max 1 (ceil (q * count))] (1-based, cumulative from the lowest
      bucket) and returns that bucket's geometric-midpoint
      representative. Degenerate inputs are pinned as follows (tested in
      suite_obs):

      - {b empty histogram}: [0.0] for every [q] — the only case that
        can return a value no bucket represents;
      - {b single observation}: every [q] (including 0 and 1) returns
        the same value, the representative of that observation's bucket;
      - {b q = 0.0}: rank clamps to 1, i.e. the lowest occupied bucket's
        representative (never a bucket below every observation);
      - {b q = 1.0}: rank is [count], i.e. the highest occupied bucket's
        representative;
      - {b q outside [0, 1]} (including NaN): clamped into [0, 1], so
        [q < 0] behaves as 0 and [q > 1] as 1;
      - values below 1.0 (and negatives, and non-finite values) share
        the underflow bucket, whose representative is [0.5]. *)

  val gamma : t -> float
  val name : t -> string
end

module Span : sig
  (** Phase spans on the monotonic clock. Spans nest: entering a span
      inside another simply pushes the per-domain stack; each name
      accumulates (count, total ns, max ns) across all its runs. *)

  val with_ : string -> (unit -> 'a) -> 'a
  (** Time [f] under [name]. Exceptions propagate; the span is still
      recorded. When the registry is disabled this is just [f ()] —
      no clock read. *)

  val depth : unit -> int
  (** Current nesting depth in this domain (0 outside any span). *)

  val count : string -> int
  val total_ns : string -> int
  (** 0 for a name never recorded. *)

  val set_sink : (string -> start_ns:int -> dur_ns:int -> unit) option -> unit
  (** Install (or remove, with [None]) a per-event sink called on every
      span exit with the span name, its monotonic-clock start, and its
      duration. Used by trace-event exporters ({!Rz_trace}); the sink
      runs in the domain that closed the span and must be domain-safe.
      Exceptions it raises are swallowed. Costs one [Atomic] read per
      span exit when unset. *)
end

module Meta : sig
  (** Run metadata (CLI subcommand, seed, wall-clock start, domain
      count, ...) embedded in every {!Registry} snapshot under ["meta"],
      so metrics files and JSONL stream records are self-describing.
      Cleared by {!reset}. *)

  val set : string -> Rz_json.Json.t -> unit
  (** Set (or overwrite) one metadata key. *)

  val clear : unit -> unit

  val list : unit -> (string * Rz_json.Json.t) list
  (** Sorted by key. *)
end

val recovery_counter_names : string list
(** Canonical list of graceful-degradation ("recovery") counters: the
    counters a keep-going run increments instead of crashing. The CLI's
    exit-2 contract (faultinject / rpki / stream) sums exactly this
    list; enumerate new recovery counters here, nowhere else. Kept in
    sync with runtime registration by a suite_obs test: every registered
    counter matching {!looks_like_recovery} must appear here. *)

val looks_like_recovery : string -> bool
(** Whether a counter name carries a recovery-ish suffix
    ([rejected]/[dropped]/[truncated]/[capped], regardless of whether the
    preceding separator is [.] or [_]) and therefore belongs in
    {!recovery_counter_names}. *)

module Registry : sig
  (** A consistent-enough point-in-time view of every registered
      metric. (Individual atomics are read without a global lock;
      counters racing with an in-progress snapshot may differ by the
      increments in flight, which is fine for reporting.) *)

  type snapshot

  val snapshot : unit -> snapshot

  val counters : snapshot -> (string * int) list
  (** Sorted by name. *)

  val spans : snapshot -> (string * (int * int)) list
  (** [(name, (count, total_ns))], sorted by name. *)

  val meta : snapshot -> (string * Rz_json.Json.t) list
  (** The {!Meta} table at snapshot time, sorted by key. *)

  val to_json : snapshot -> Rz_json.Json.t
  (** [{"meta": {..}, "counters": {..},
       "histograms": {name: {count, p50, p90, p99}},
       "spans": {name: {count, total_ns, max_ns}}}] — reparseable with
      {!Rz_json.Json.of_string}. *)

  val to_text : snapshot -> string
  (** Aligned human-readable rendering, spans first. *)
end
