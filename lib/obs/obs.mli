(** Pipeline observability: domain-safe counters, gauges, log-bucketed
    latency histograms, rolling time windows, and monotonic-clock phase
    spans, collected in a global registry that renders to human-readable
    text, JSON, and the Prometheus text exposition format.

    Design constraints (see DESIGN.md, "Observability"):

    - {b Near-zero cost when disabled.} Every hot-path operation first
      reads one [Atomic] flag and returns immediately when the registry
      is disabled (the default). Instrumented libraries can therefore
      create metrics unconditionally at module-init time.
    - {b Domain safety.} Counters, gauges, histogram buckets, and window
      slots are [Atomic]-backed, so concurrent increments from
      [Domain.spawn] workers (as in [Rpslyzer.Pipeline.verify_parallel])
      are never lost. Span nesting state is domain-local ([Domain.DLS]);
      the accumulated per-name statistics are atomics.
    - {b Mergeable snapshots.} Histogram and window snapshots are plain
      bucket-count values; {!Histogram.merge_into} / {!Window.merge_into}
      add them back into the live registry. Addition commutes, so a set
      of worker deltas merged in any order equals having observed inline
      — the property [lib/shard] relies on to ship latency observations
      across fork boundaries, pinned by a QCheck differential in
      suite_obs.
    - {b Naming.} Metric names follow [subsystem.metric_name], e.g.
      [verify.hops_total], [irr.as_flat.hits]. Counters that only ever
      grow end in [_total] or a [.hits]/[.misses] pair. *)

val enable : unit -> unit
(** Turn metric collection on (process-wide). Call before spawning
    worker domains so the flag write happens-before their reads. *)

val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered counter, gauge, histogram, window, and span
    accumulator, and clear the {!Meta} table. Registration survives;
    used by tests and long-running servers. *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds since an arbitrary epoch. For ad-hoc
    latency measurements feeding {!Histogram.observe}; {!Span.with_} is
    the higher-level interface. *)

module Counter : sig
  type t

  val make : string -> t
  (** Register (or look up) the counter with this name. Idempotent:
      two [make "x"] calls return the same underlying counter. *)

  val incr : t -> unit
  val add : t -> int -> unit
  (** No-ops while the registry is disabled. *)

  val get : t -> int
  val name : t -> string
end

module Gauge : sig
  (** Settable point-in-time values (active sessions, in-flight queries,
      current generation). Unlike counters they go up {i and} down and
      are exported with Prometheus type [gauge]. *)

  type t

  val make : string -> t
  (** Idempotent per name, like {!Counter.make}. *)

  val set : t -> int -> unit
  val add : t -> int -> unit
  val incr : t -> unit
  val decr : t -> unit
  (** No-ops while the registry is disabled. *)

  val get : t -> int
  val name : t -> string
end

module Histogram : sig
  (** Log-bucketed histogram over non-negative values. Bucket [i >= 1]
      covers [gamma^(i-1), gamma^i); values below [1.0] (and negatives)
      land in the underflow bucket 0. Quantile extraction returns the
      geometric midpoint of the selected bucket, so its relative error
      is bounded by [sqrt gamma] < one bucket width. *)

  type t

  type snap = {
    s_name : string;
    s_gamma : float;
    s_counts : int array;  (** one count per log bucket *)
  }
  (** A plain-value copy of a histogram's buckets, safe to marshal
      across process boundaries (the shard frame payload). *)

  val make : ?gamma:float -> string -> t
  (** [gamma] is the bucket growth factor, default [2^(1/4)] (~19% wide
      buckets, <= 9% quantile error). Must exceed 1.0. Idempotent per
      name; a differing [gamma] on a second [make] is ignored. *)

  val observe : t -> float -> unit
  (** Record one value. No-op while disabled. *)

  val count : t -> int

  val counts : t -> int array
  (** A consistent single-pass copy of the bucket counts. All derived
      statistics (count + rank selection) must come from one such copy;
      {!quantile} does this internally, so a scrape racing concurrent
      [observe] calls can never pair a count with bucket contents from a
      different moment (the torn-read bug pinned in suite_obs). *)

  val quantile : t -> float -> float
  (** [quantile h q] selects the bucket holding the observation of rank
      [max 1 (ceil (q * count))] (1-based, cumulative from the lowest
      bucket) and returns that bucket's geometric-midpoint
      representative. Degenerate inputs are pinned as follows (tested in
      suite_obs):

      - {b empty histogram}: [0.0] for every [q] — the only case that
        can return a value no bucket represents;
      - {b single observation}: every [q] (including 0 and 1) returns
        the same value, the representative of that observation's bucket;
      - {b q = 0.0}: rank clamps to 1, i.e. the lowest occupied bucket's
        representative (never a bucket below every observation);
      - {b q = 1.0}: rank is [count], i.e. the highest occupied bucket's
        representative;
      - {b q outside [0, 1]} (including NaN): clamped into [0, 1], so
        [q < 0] behaves as 0 and [q > 1] as 1;
      - values below 1.0 (and negatives, and non-finite values) share
        the underflow bucket, whose representative is [0.5]. *)

  val gamma : t -> float
  val name : t -> string

  val snapshot : t -> snap
  val delta : baseline:snap list -> snap -> snap
  (** Bucket-wise difference against the matching (by name) baseline
      snapshot; absent from the baseline means delta against zero. *)

  val merge_into : snap -> unit
  (** Add a (delta) snapshot's buckets into the live registry,
      registering the name if needed. Commutative and associative, so
      merging worker deltas in any order equals observing inline. Gated
      on the enable flag like {!observe}. *)

  val snapshot_all : unit -> snap list
  (** Snapshots of every registered histogram, sorted by name. Workers
      take this as a baseline before doing work. *)

  val deltas_since : snap list -> snap list
  (** [deltas_since baseline] = non-zero deltas of the current registry
      against a {!snapshot_all} baseline — the payload a shard worker
      ships home. *)
end

module Window : sig
  (** Rolling time windows: a ring of time-bucketed slots, each holding
      an event count plus log-bucketed value histogram, giving rolling
      rates (events/sec) and rolling quantiles over the last
      [slots * slot_ms] milliseconds. Old slots are lazily recycled as
      the clock advances; readers only aggregate slots whose epoch falls
      inside the current window.

      Snapshots are {e order-insensitively mergeable}: cells carry their
      absolute epoch, merge sums same-epoch cells and keeps only the
      newest epoch per ring slot, so any merge order of a snapshot set
      yields the same registry state (QCheck-pinned in suite_obs).

      All reads and writes accept an explicit [?now_ns] so tests drive
      virtual time deterministically; production callers omit it and get
      the monotonic clock. *)

  type t

  type snap = {
    w_name : string;
    w_gamma : float;
    w_slot_ns : int;
    w_n_slots : int;
    w_cells : (int * int * int array) list;
        (** (epoch, event count, value buckets), sorted by epoch *)
  }

  val make : ?slots:int -> ?slot_ms:int -> ?gamma:float -> string -> t
  (** Default 12 slots of 5s each — a 60-second rolling window.
      Idempotent per name (differing geometry on a second [make] is
      ignored, like {!Histogram.make}). *)

  val observe : ?now_ns:int -> t -> float -> unit
  (** Record one event with a value (e.g. latency in ns). No-op while
      disabled. *)

  val total : ?now_ns:int -> t -> int
  (** Events observed inside the rolling window. *)

  val rate : ?now_ns:int -> t -> float
  (** Events per second: {!total} divided by the full window span. A
      window younger than its span under-reports rather than dividing
      by elapsed time. *)

  val counts : ?now_ns:int -> t -> int array
  (** Summed value buckets of the in-window slots. *)

  val quantile : ?now_ns:int -> t -> float -> float
  (** Rolling quantile over the in-window value buckets; same rank
      selection and degenerate-case pins as {!Histogram.quantile}. *)

  val span_ns : t -> int
  val gamma : t -> float
  val name : t -> string

  val snapshot : ?now_ns:int -> t -> snap
  (** In-window cells with their absolute epochs (empty cells elided). *)

  val merge_into : snap -> unit
  (** Merge a snapshot into the live registry: same-epoch cells sum,
      newer epochs roll the slot, older epochs are dropped as out of
      window. Order-insensitive. Gated on the enable flag. *)

  val snapshot_all : ?now_ns:int -> unit -> snap list
  (** Non-empty snapshots of every registered window, sorted by name. *)

  val delta : baseline:snap list -> snap -> snap
  (** Cell-wise difference against the matching (by name) baseline
      snapshot: same-epoch cells subtract (exact — per-slot contents
      only grow while an epoch is live and epochs are never revisited),
      epochs absent from the baseline ship whole. *)

  val deltas_since : ?now_ns:int -> snap list -> snap list
  (** Non-empty deltas of the current registry against a
      {!snapshot_all} baseline — the payload a forked worker ships
      home without echoing inherited cells. *)
end

module Span : sig
  (** Phase spans on the monotonic clock. Spans nest: entering a span
      inside another simply pushes the per-domain stack; each name
      accumulates (count, total ns, max ns) across all its runs. *)

  val with_ : string -> (unit -> 'a) -> 'a
  (** Time [f] under [name]. Exceptions propagate; the span is still
      recorded. When the registry is disabled this is just [f ()] —
      no clock read. *)

  val depth : unit -> int
  (** Current nesting depth in this domain (0 outside any span). *)

  val count : string -> int
  val total_ns : string -> int
  (** 0 for a name never recorded. *)

  val set_sink : (string -> start_ns:int -> dur_ns:int -> unit) option -> unit
  (** Install (or remove, with [None]) a per-event sink called on every
      span exit with the span name, its monotonic-clock start, and its
      duration. Used by trace-event exporters ({!Rz_trace}); the sink
      runs in the domain that closed the span and must be domain-safe.
      Exceptions it raises are swallowed. Costs one [Atomic] read per
      span exit when unset. *)
end

module Meta : sig
  (** Run metadata (CLI subcommand, seed, wall-clock start, domain
      count, ...) embedded in every {!Registry} snapshot under ["meta"],
      so metrics files and JSONL stream records are self-describing.
      Cleared by {!reset}. *)

  val set : string -> Rz_json.Json.t -> unit
  (** Set (or overwrite) one metadata key. *)

  val clear : unit -> unit

  val list : unit -> (string * Rz_json.Json.t) list
  (** Sorted by key. *)
end

val recovery_counter_names : string list
(** Canonical list of graceful-degradation ("recovery") counters: the
    counters a keep-going run increments instead of crashing. The CLI's
    exit-2 contract (faultinject / rpki / stream) sums exactly this
    list; enumerate new recovery counters here, nowhere else. Kept in
    sync with runtime registration by a suite_obs test: every registered
    counter matching {!looks_like_recovery} must appear here. *)

val looks_like_recovery : string -> bool
(** Whether a counter name carries a recovery-ish suffix
    ([rejected]/[dropped]/[truncated]/[capped], regardless of whether the
    preceding separator is [.] or [_]) and therefore belongs in
    {!recovery_counter_names}. *)

module Registry : sig
  (** A consistent-enough point-in-time view of every registered
      metric. (Individual atomics are read without a global lock;
      counters racing with an in-progress snapshot may differ by the
      increments in flight, which is fine for reporting. Each
      histogram's row, however, is internally consistent: its count and
      quantiles derive from one bucket copy.) *)

  type snapshot

  val snapshot : unit -> snapshot

  val counters : snapshot -> (string * int) list
  (** Sorted by name. *)

  val gauges : snapshot -> (string * int) list
  (** Sorted by name. *)

  val window_stats : snapshot -> (string * (int * float * float * float)) list
  (** [(name, (in-window count, rate per sec, p50, p99))], sorted by
      name. *)

  val spans : snapshot -> (string * (int * int)) list
  (** [(name, (count, total_ns))], sorted by name. *)

  val meta : snapshot -> (string * Rz_json.Json.t) list
  (** The {!Meta} table at snapshot time, sorted by key. *)

  val to_json : snapshot -> Rz_json.Json.t
  (** [{"meta": {..}, "counters": {..}, "gauges": {..},
       "histograms": {name: {count, p50, p90, p99}},
       "windows": {name: {count, rate, p50, p99, span_ns}},
       "spans": {name: {count, total_ns, max_ns}}}] — reparseable with
      {!Rz_json.Json.of_string}. *)

  val to_text : snapshot -> string
  (** Aligned human-readable rendering, spans first. *)
end

val to_prometheus : Registry.snapshot -> string
(** Prometheus text exposition of a snapshot. Dotted metric names map
    to underscores ([serve.query_ns] -> [serve_query_ns]); counters and
    gauges export as themselves with [# TYPE] lines; histograms export
    cumulative [_bucket{le="..."}] series (log-bucket upper bounds, a
    final [+Inf] bucket), [_count], and a bucket-midpoint-approximated
    [_sum]; windows export [_window_count]/[_window_rate]/[_window_p50]/
    [_window_p99]/[_window_span_seconds] gauges; spans export
    [_span_count]/[_span_total_ns] counters and a [_span_max_ns] gauge.
    {!Meta} entries lead the document as [# meta key value] comments.
    Always re-parses with {!parse_prometheus} (round-trip pinned in
    suite_obs). *)

type prom_sample = {
  p_name : string;
  p_labels : (string * string) list;
  p_value : float;
}

val parse_prometheus : string -> (prom_sample list, string) result
(** Strict parser/validator for the Prometheus text exposition format,
    shared by the [prom_check] CLI validator, the test suites, and
    [rpslyzer top]. Enforces: valid metric/label syntax on every sample
    line, a preceding [# TYPE] declaration for every sample's family,
    no duplicate TYPE declarations, no timestamps, and histogram-family
    invariants (every [_bucket] carries [le], bounds strictly increase,
    cumulative counts never decrease, the [+Inf] bucket exists and
    equals [_count], [_sum]/[_count] present). Returns the samples in
    file order, or [Error "line N: reason"]. *)
