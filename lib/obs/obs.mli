(** Pipeline observability: domain-safe counters, log-bucketed latency
    histograms, and monotonic-clock phase spans, collected in a global
    registry that renders to human-readable text and JSON.

    Design constraints (see DESIGN.md, "Observability"):

    - {b Near-zero cost when disabled.} Every hot-path operation first
      reads one [Atomic] flag and returns immediately when the registry
      is disabled (the default). Instrumented libraries can therefore
      create metrics unconditionally at module-init time.
    - {b Domain safety.} Counters and histogram buckets are
      [Atomic]-backed, so concurrent increments from [Domain.spawn]
      workers (as in [Rpslyzer.Pipeline.verify_parallel]) are never
      lost. Span nesting state is domain-local ([Domain.DLS]); the
      accumulated per-name statistics are atomics.
    - {b Naming.} Metric names follow [subsystem.metric_name], e.g.
      [verify.hops_total], [irr.as_flat.hits]. Counters that only ever
      grow end in [_total] or a [.hits]/[.misses] pair. *)

val enable : unit -> unit
(** Turn metric collection on (process-wide). Call before spawning
    worker domains so the flag write happens-before their reads. *)

val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered counter, histogram, and span accumulator.
    Registration survives; used by tests and long-running servers. *)

val now_ns : unit -> int
(** Monotonic clock, nanoseconds since an arbitrary epoch. For ad-hoc
    latency measurements feeding {!Histogram.observe}; {!Span.with_} is
    the higher-level interface. *)

module Counter : sig
  type t

  val make : string -> t
  (** Register (or look up) the counter with this name. Idempotent:
      two [make "x"] calls return the same underlying counter. *)

  val incr : t -> unit
  val add : t -> int -> unit
  (** No-ops while the registry is disabled. *)

  val get : t -> int
  val name : t -> string
end

module Histogram : sig
  (** Log-bucketed histogram over non-negative values. Bucket [i >= 1]
      covers [gamma^(i-1), gamma^i); values below [1.0] (and negatives)
      land in the underflow bucket 0. Quantile extraction returns the
      geometric midpoint of the selected bucket, so its relative error
      is bounded by [sqrt gamma] < one bucket width. *)

  type t

  val make : ?gamma:float -> string -> t
  (** [gamma] is the bucket growth factor, default [2^(1/4)] (~19% wide
      buckets, <= 9% quantile error). Must exceed 1.0. Idempotent per
      name; a differing [gamma] on a second [make] is ignored. *)

  val observe : t -> float -> unit
  (** Record one value. No-op while disabled. *)

  val count : t -> int
  val quantile : t -> float -> float
  (** [quantile h q] for [0 <= q <= 1]; 0.0 when empty. [q = 0] is the
      minimum-bucket representative, [q = 1] the maximum's. *)

  val gamma : t -> float
  val name : t -> string
end

module Span : sig
  (** Phase spans on the monotonic clock. Spans nest: entering a span
      inside another simply pushes the per-domain stack; each name
      accumulates (count, total ns, max ns) across all its runs. *)

  val with_ : string -> (unit -> 'a) -> 'a
  (** Time [f] under [name]. Exceptions propagate; the span is still
      recorded. When the registry is disabled this is just [f ()] —
      no clock read. *)

  val depth : unit -> int
  (** Current nesting depth in this domain (0 outside any span). *)

  val count : string -> int
  val total_ns : string -> int
  (** 0 for a name never recorded. *)
end

module Registry : sig
  (** A consistent-enough point-in-time view of every registered
      metric. (Individual atomics are read without a global lock;
      counters racing with an in-progress snapshot may differ by the
      increments in flight, which is fine for reporting.) *)

  type snapshot

  val snapshot : unit -> snapshot

  val counters : snapshot -> (string * int) list
  (** Sorted by name. *)

  val spans : snapshot -> (string * (int * int)) list
  (** [(name, (count, total_ns))], sorted by name. *)

  val to_json : snapshot -> Rz_json.Json.t
  (** [{"counters": {..}, "histograms": {name: {count, p50, p90, p99}},
       "spans": {name: {count, total_ns, max_ns}}}] — reparseable with
      {!Rz_json.Json.of_string}. *)

  val to_text : snapshot -> string
  (** Aligned human-readable rendering, spans first. *)
end
