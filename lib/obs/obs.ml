module Json = Rz_json.Json

(* ------------------------------------------------------------------ *)
(* Global enable flag                                                  *)
(* ------------------------------------------------------------------ *)

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* Registration is rare (module init, first use); guard it with one
   mutex. Hot-path reads/increments never take it. *)
let registry_mutex = Mutex.create ()

let with_lock f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let table : (string, t) Hashtbl.t = Hashtbl.create 64

  let make name =
    with_lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some c -> c
        | None ->
          let c = { name; v = Atomic.make 0 } in
          Hashtbl.replace table name c;
          c)

  let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.v n)
  let incr c = add c 1
  let get c = Atomic.get c.v
  let name c = c.name
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  let n_buckets = 256

  type t = {
    name : string;
    gamma : float;
    log_gamma : float;
    buckets : int Atomic.t array;
        (* bucket 0: values < 1.0 (underflow); bucket i >= 1 covers
           [gamma^(i-1), gamma^i); the last bucket also absorbs overflow *)
  }

  let table : (string, t) Hashtbl.t = Hashtbl.create 16

  let make ?(gamma = Float.pow 2.0 0.25) name =
    if gamma <= 1.0 then invalid_arg "Obs.Histogram.make: gamma must exceed 1.0";
    with_lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some h -> h
        | None ->
          let h =
            { name; gamma; log_gamma = Float.log gamma;
              buckets = Array.init n_buckets (fun _ -> Atomic.make 0) }
          in
          Hashtbl.replace table name h;
          h)

  let bucket_of h v =
    if not (Float.is_finite v) || v < 1.0 then 0
    else
      let i = 1 + int_of_float (Float.log v /. h.log_gamma) in
      if i < 1 then 1 else if i >= n_buckets then n_buckets - 1 else i

  let observe h v =
    if Atomic.get enabled_flag then
      ignore (Atomic.fetch_and_add h.buckets.(bucket_of h v) 1)

  let count h = Array.fold_left (fun acc b -> acc + Atomic.get b) 0 h.buckets

  (* Geometric midpoint of bucket [i]: sqrt(lo * hi) = gamma^(i - 1/2).
     The underflow bucket reports 0.5 (its values lie in [0, 1)). *)
  let representative h i =
    if i = 0 then 0.5 else Float.pow h.gamma (float_of_int i -. 0.5)

  let quantile h q =
    let total = count h in
    if total = 0 then 0.0
    else begin
      let q = Float.max 0.0 (Float.min 1.0 q) in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
      let rank = min rank total in
      let cum = ref 0 and found = ref 0 in
      (try
         for i = 0 to n_buckets - 1 do
           cum := !cum + Atomic.get h.buckets.(i);
           if !cum >= rank then begin
             found := i;
             raise Exit
           end
         done
       with Exit -> ());
      representative h !found
    end

  let gamma h = h.gamma
  let name h = h.name
end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

module Span = struct
  type stat = { count : int Atomic.t; total_ns : int Atomic.t; max_ns : int Atomic.t }

  let table : (string, stat) Hashtbl.t = Hashtbl.create 32

  let stat_of name =
    (* fast path without the lock: concurrent lookups of an
       already-registered name must not contend *)
    match Hashtbl.find_opt table name with
    | Some s -> s
    | None ->
      with_lock (fun () ->
          match Hashtbl.find_opt table name with
          | Some s -> s
          | None ->
            let s =
              { count = Atomic.make 0; total_ns = Atomic.make 0; max_ns = Atomic.make 0 }
            in
            Hashtbl.replace table name s;
            s)

  (* Nesting is tracked per domain; only the aggregate is shared. *)
  let stack_key : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

  let depth () = List.length !(Domain.DLS.get stack_key)

  let record name elapsed_ns =
    let s = stat_of name in
    ignore (Atomic.fetch_and_add s.count 1);
    ignore (Atomic.fetch_and_add s.total_ns elapsed_ns);
    atomic_max s.max_ns elapsed_ns

  (* Optional per-event sink for trace-event exporters (rz_trace's Chrome
     writer). One Atomic read per span exit when unset; the sink itself
     must be domain-safe — it runs in whichever domain closed the span. *)
  let sink : (string -> start_ns:int -> dur_ns:int -> unit) option Atomic.t =
    Atomic.make None

  let set_sink f = Atomic.set sink f

  let with_ name f =
    if not (Atomic.get enabled_flag) then f ()
    else begin
      let stack = Domain.DLS.get stack_key in
      stack := name :: !stack;
      let t0 = Monotonic_clock.now () in
      let finish () =
        let elapsed = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0) in
        (match !stack with [] -> () | _ :: rest -> stack := rest);
        record name (max 0 elapsed);
        match Atomic.get sink with
        | None -> ()
        | Some emit ->
          (try emit name ~start_ns:(Int64.to_int t0) ~dur_ns:(max 0 elapsed)
           with _ -> ())
      in
      match f () with
      | result ->
        finish ();
        result
      | exception e ->
        finish ();
        raise e
    end

  let count name =
    match Hashtbl.find_opt table name with
    | Some s -> Atomic.get s.count
    | None -> 0

  let total_ns name =
    match Hashtbl.find_opt table name with
    | Some s -> Atomic.get s.total_ns
    | None -> 0
end

(* ------------------------------------------------------------------ *)
(* Run metadata                                                        *)
(* ------------------------------------------------------------------ *)

(* Free-form key/value metadata describing the run (subcommand, seed,
   wall-clock start, domain count, ...). Written rarely — mutex-guarded;
   snapshots embed it so metrics files and JSONL stream records are
   self-describing. *)
module Meta = struct
  let table : (string, Json.t) Hashtbl.t = Hashtbl.create 8

  let set key value = with_lock (fun () -> Hashtbl.replace table key value)
  let clear () = with_lock (fun () -> Hashtbl.reset table)

  let list () =
    with_lock (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
        |> List.sort (fun (a, _) (b, _) -> compare a b))
end

(* ------------------------------------------------------------------ *)
(* Reset                                                               *)
(* ------------------------------------------------------------------ *)

let reset () =
  with_lock (fun () ->
      Hashtbl.reset Meta.table;
      Hashtbl.iter (fun _ (c : Counter.t) -> Atomic.set c.v 0) Counter.table;
      Hashtbl.iter
        (fun _ (h : Histogram.t) -> Array.iter (fun b -> Atomic.set b 0) h.buckets)
        Histogram.table;
      Hashtbl.iter
        (fun _ (s : Span.stat) ->
          Atomic.set s.count 0;
          Atomic.set s.total_ns 0;
          Atomic.set s.max_ns 0)
        Span.table)

(* ------------------------------------------------------------------ *)
(* Recovery counters                                                   *)
(* ------------------------------------------------------------------ *)

(* Single source of truth for the graceful-degradation contract: a run
   that kept going but fired any of these exits 2 under the keep-going
   subcommands (faultinject / rpki / stream). The CLI and the docs both
   read this list; suite_obs checks it stays in sync with what the
   instrumented libraries actually register. *)
let recovery_counter_names =
  [ "fault.injected";
    "reader.lines_dropped";
    "flatten.truncated";
    "nfa.capped";
    "verify.domain_retries";
    "rpki.roas_rejected";
    "stream.events_dropped";
    "stream.events_sampled";
    "stream.events_abandoned";
    "stream.journal_rejected";
    "stream.watchdog_trips";
    "stream.retries";
    "shard.frames_rejected";
    "serve.queries_rejected";
    "serve.sessions_rejected";
    "serve.sessions_dropped";
    "nrtm.ops_rejected" ]

let recovery_suffixes = [ "rejected"; "dropped"; "truncated"; "capped" ]

let looks_like_recovery name =
  List.exists (fun suf -> Filename.check_suffix name suf) recovery_suffixes

(* ------------------------------------------------------------------ *)
(* Registry snapshots                                                  *)
(* ------------------------------------------------------------------ *)

module Registry = struct
  type hist_row = { count : int; p50 : float; p90 : float; p99 : float }

  type snapshot = {
    meta : (string * Json.t) list;
    counters : (string * int) list;
    histograms : (string * hist_row) list;
    spans : (string * (int * int * int)) list;  (* count, total_ns, max_ns *)
  }

  let sorted_bindings tbl f =
    Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let snapshot () =
    with_lock (fun () ->
        { meta = sorted_bindings Meta.table Fun.id;
          counters = sorted_bindings Counter.table (fun c -> Atomic.get c.Counter.v);
          histograms =
            sorted_bindings Histogram.table (fun h ->
                { count = Histogram.count h;
                  p50 = Histogram.quantile h 0.5;
                  p90 = Histogram.quantile h 0.9;
                  p99 = Histogram.quantile h 0.99 });
          spans =
            sorted_bindings Span.table (fun (s : Span.stat) ->
                (Atomic.get s.count, Atomic.get s.total_ns, Atomic.get s.max_ns)) })

  let counters s = s.counters
  let spans s = List.map (fun (n, (c, t, _)) -> (n, (c, t))) s.spans
  let meta s = s.meta

  let to_json s =
    Json.Obj
      [ ("meta", Json.Obj s.meta);
        ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters));
        ( "histograms",
          Json.Obj
            (List.map
               (fun (n, (r : hist_row)) ->
                 ( n,
                   Json.Obj
                     [ ("count", Json.Int r.count);
                       ("p50", Json.Float r.p50);
                       ("p90", Json.Float r.p90);
                       ("p99", Json.Float r.p99) ] ))
               s.histograms) );
        ( "spans",
          Json.Obj
            (List.map
               (fun (n, (count, total_ns, max_ns)) ->
                 ( n,
                   Json.Obj
                     [ ("count", Json.Int count);
                       ("total_ns", Json.Int total_ns);
                       ("max_ns", Json.Int max_ns) ] ))
               s.spans) ) ]

  let to_text s =
    let b = Buffer.create 1024 in
    let ms ns = float_of_int ns /. 1e6 in
    if s.meta <> [] then begin
      Buffer.add_string b "meta:\n";
      List.iter
        (fun (n, v) ->
          Buffer.add_string b (Printf.sprintf "  %-32s %s\n" n (Json.to_string v)))
        s.meta
    end;
    if s.spans <> [] then begin
      Buffer.add_string b "spans:\n";
      List.iter
        (fun (n, (count, total_ns, max_ns)) ->
          Buffer.add_string b
            (Printf.sprintf "  %-32s %8d runs %12.3f ms total %10.3f ms max\n" n count
               (ms total_ns) (ms max_ns)))
        s.spans
    end;
    if s.counters <> [] then begin
      Buffer.add_string b "counters:\n";
      List.iter
        (fun (n, v) -> Buffer.add_string b (Printf.sprintf "  %-32s %12d\n" n v))
        s.counters
    end;
    if s.histograms <> [] then begin
      Buffer.add_string b "histograms:\n";
      List.iter
        (fun (n, (r : hist_row)) ->
          Buffer.add_string b
            (Printf.sprintf "  %-32s %8d obs  p50 %10.1f  p90 %10.1f  p99 %10.1f\n" n
               r.count r.p50 r.p90 r.p99))
        s.histograms
    end;
    Buffer.contents b
end
