module Json = Rz_json.Json

(* ------------------------------------------------------------------ *)
(* Global enable flag                                                  *)
(* ------------------------------------------------------------------ *)

let enabled_flag = Atomic.make false
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* Registration is rare (module init, first use); guard it with one
   mutex. Hot-path reads/increments never take it. *)
let registry_mutex = Mutex.create ()

let with_lock f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

(* ------------------------------------------------------------------ *)
(* Log-bucket math (shared by Histogram and Window)                    *)
(* ------------------------------------------------------------------ *)

let n_buckets = 256
let default_gamma = Float.pow 2.0 0.25

(* bucket 0: values < 1.0 (underflow); bucket i >= 1 covers
   [gamma^(i-1), gamma^i); the last bucket also absorbs overflow *)
let bucket_of_value ~log_gamma v =
  if not (Float.is_finite v) || v < 1.0 then 0
  else
    let i = 1 + int_of_float (Float.log v /. log_gamma) in
    if i < 1 then 1 else if i >= n_buckets then n_buckets - 1 else i

(* Geometric midpoint of bucket [i]: sqrt(lo * hi) = gamma^(i - 1/2).
   The underflow bucket reports 0.5 (its values lie in [0, 1)). *)
let representative_of ~gamma i =
  if i = 0 then 0.5 else Float.pow gamma (float_of_int i -. 0.5)

(* Inclusive upper bound of bucket [i] for cumulative (Prometheus-style)
   encodings: bucket 0 is everything below 1.0, bucket i ends at
   gamma^i. The last bucket absorbs overflow, so its bound is +inf. *)
let upper_bound_of ~gamma i =
  if i = 0 then 1.0
  else if i >= n_buckets - 1 then Float.infinity
  else Float.pow gamma (float_of_int i)

(* Rank-select a quantile out of a plain (already consistent) bucket
   count array. Total and cumulative ranks come from the same array, so
   a caller holding a snapshot can never see a torn (count, buckets)
   pair. *)
let quantile_of_counts ~gamma counts q =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
    let rank = min rank total in
    let cum = ref 0 and found = ref 0 in
    (try
       for i = 0 to Array.length counts - 1 do
         cum := !cum + counts.(i);
         if !cum >= rank then begin
           found := i;
           raise Exit
         end
       done
     with Exit -> ());
    representative_of ~gamma !found
  end

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

module Counter = struct
  type t = { name : string; v : int Atomic.t }

  let table : (string, t) Hashtbl.t = Hashtbl.create 64

  let make name =
    with_lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some c -> c
        | None ->
          let c = { name; v = Atomic.make 0 } in
          Hashtbl.replace table name c;
          c)

  let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.v n)
  let incr c = add c 1
  let get c = Atomic.get c.v
  let name c = c.name
end

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)
(* ------------------------------------------------------------------ *)

module Gauge = struct
  type t = { name : string; v : int Atomic.t }

  let table : (string, t) Hashtbl.t = Hashtbl.create 16

  let make name =
    with_lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some g -> g
        | None ->
          let g = { name; v = Atomic.make 0 } in
          Hashtbl.replace table name g;
          g)

  let set g n = if Atomic.get enabled_flag then Atomic.set g.v n
  let add g n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add g.v n)
  let incr g = add g 1
  let decr g = add g (-1)
  let get g = Atomic.get g.v
  let name g = g.name
end

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

module Histogram = struct
  let n_buckets = n_buckets

  type t = {
    name : string;
    gamma : float;
    log_gamma : float;
    buckets : int Atomic.t array;
  }

  type snap = { s_name : string; s_gamma : float; s_counts : int array }

  let table : (string, t) Hashtbl.t = Hashtbl.create 16

  let make ?(gamma = default_gamma) name =
    if gamma <= 1.0 then invalid_arg "Obs.Histogram.make: gamma must exceed 1.0";
    with_lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some h -> h
        | None ->
          let h =
            { name; gamma; log_gamma = Float.log gamma;
              buckets = Array.init n_buckets (fun _ -> Atomic.make 0) }
          in
          Hashtbl.replace table name h;
          h)

  let bucket_of h v = bucket_of_value ~log_gamma:h.log_gamma v

  let observe h v =
    if Atomic.get enabled_flag then
      ignore (Atomic.fetch_and_add h.buckets.(bucket_of h v) 1)

  (* One atomic read per bucket into a plain array: every derived figure
     (count, quantiles, cumulative encodings) must come from one such
     copy so concurrent observers can never tear the view. *)
  let counts h = Array.map Atomic.get h.buckets

  let count h = Array.fold_left (fun acc b -> acc + Atomic.get b) 0 h.buckets

  let quantile h q = quantile_of_counts ~gamma:h.gamma (counts h) q

  let gamma h = h.gamma
  let name h = h.name

  let snapshot h = { s_name = h.name; s_gamma = h.gamma; s_counts = counts h }

  (* Bucket-wise difference of a later snapshot against [baseline];
     histograms only grow, so the result is the observations made in
     between. A histogram absent from [baseline] deltas against zero. *)
  let delta ~baseline s =
    match List.find_opt (fun b -> b.s_name = s.s_name) baseline with
    | None -> s
    | Some b ->
      { s with s_counts = Array.mapi (fun i v -> v - b.s_counts.(i)) s.s_counts }

  (* Replay a (delta) snapshot into the live registry: registers the
     name if needed and adds the shipped bucket counts. Addition is
     commutative and associative, so merging any permutation of worker
     deltas equals having observed inline. Gated on the enable flag like
     [observe], so a disabled parent drops deltas the same way it drops
     direct observations. *)
  let merge_into s =
    if Atomic.get enabled_flag then begin
      let h = make ~gamma:s.s_gamma s.s_name in
      Array.iteri
        (fun i v -> if v <> 0 then ignore (Atomic.fetch_and_add h.buckets.(i) v))
        s.s_counts
    end

  let snapshot_all () =
    with_lock (fun () ->
        Hashtbl.fold
          (fun _ h acc ->
            { s_name = h.name; s_gamma = h.gamma; s_counts = Array.map Atomic.get h.buckets }
            :: acc)
          table []
        |> List.sort (fun a b -> compare a.s_name b.s_name))

  let deltas_since baseline =
    List.filter_map
      (fun s ->
        let d = delta ~baseline s in
        if Array.exists (fun v -> v <> 0) d.s_counts then Some d else None)
      (snapshot_all ())
end

(* ------------------------------------------------------------------ *)
(* Windows: rings of time buckets with mergeable snapshots             *)
(* ------------------------------------------------------------------ *)

module Window = struct
  type slot = {
    epoch : int Atomic.t;  (* now_ns / slot_ns when the slot was last live *)
    count : int Atomic.t;
    buckets : int Atomic.t array;
  }

  type t = {
    name : string;
    gamma : float;
    log_gamma : float;
    slot_ns : int;
    n_slots : int;
    slots : slot array;
  }

  type snap = {
    w_name : string;
    w_gamma : float;
    w_slot_ns : int;
    w_n_slots : int;
    w_cells : (int * int * int array) list;  (* epoch, count, buckets *)
  }

  let table : (string, t) Hashtbl.t = Hashtbl.create 8

  let make ?(slots = 12) ?(slot_ms = 5000) ?(gamma = default_gamma) name =
    if slots < 2 then invalid_arg "Obs.Window.make: need at least 2 slots";
    if slot_ms < 1 then invalid_arg "Obs.Window.make: slot_ms must be positive";
    if gamma <= 1.0 then invalid_arg "Obs.Window.make: gamma must exceed 1.0";
    with_lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some w -> w
        | None ->
          let w =
            { name; gamma; log_gamma = Float.log gamma;
              slot_ns = slot_ms * 1_000_000; n_slots = slots;
              slots =
                Array.init slots (fun _ ->
                    { epoch = Atomic.make 0; count = Atomic.make 0;
                      buckets = Array.init n_buckets (fun _ -> Atomic.make 0) }) }
          in
          Hashtbl.replace table name w;
          w)

  let span_ns w = w.n_slots * w.slot_ns
  let name w = w.name
  let gamma w = w.gamma

  (* Advance a ring slot to [epoch], zeroing its contents. The CAS on
     the epoch elects one roller; observations racing the zeroing can
     land in a partially-cleared slot and be miscounted by a handful —
     acceptable for rolling rates, and tests drive [?now_ns] explicitly
     so the property checks are deterministic. *)
  let rec roll slot epoch =
    let cur = Atomic.get slot.epoch in
    if cur >= epoch then ()
    else if Atomic.compare_and_set slot.epoch cur epoch then begin
      Atomic.set slot.count 0;
      Array.iter (fun b -> Atomic.set b 0) slot.buckets
    end
    else roll slot epoch

  let slot_for w epoch = w.slots.(epoch mod w.n_slots)

  let observe ?now_ns:at w v =
    if Atomic.get enabled_flag then begin
      let now = match at with Some t -> t | None -> now_ns () in
      let epoch = now / w.slot_ns in
      let slot = slot_for w epoch in
      roll slot epoch;
      if Atomic.get slot.epoch = epoch then begin
        ignore (Atomic.fetch_and_add slot.count 1);
        ignore
          (Atomic.fetch_and_add slot.buckets.(bucket_of_value ~log_gamma:w.log_gamma v) 1)
      end
    end

  (* A slot is inside the rolling window iff its epoch is one of the
     last [n_slots] epochs ending at the current one. *)
  let in_window w ~now_epoch epoch =
    epoch > 0 && epoch <= now_epoch && epoch > now_epoch - w.n_slots

  let fold_cells ?now_ns:at w f acc =
    let now = match at with Some t -> t | None -> now_ns () in
    let now_epoch = now / w.slot_ns in
    Array.fold_left
      (fun acc slot ->
        let epoch = Atomic.get slot.epoch in
        if in_window w ~now_epoch epoch then f acc slot epoch else acc)
      acc w.slots

  let total ?now_ns w =
    fold_cells ?now_ns w (fun acc slot _ -> acc + Atomic.get slot.count) 0

  (* Events per second over the full window span. A window younger than
     its span under-reports the rate rather than dividing by the shorter
     elapsed time — the steady-state figure is what operators watch. *)
  let rate ?now_ns w =
    float_of_int (total ?now_ns w) /. (float_of_int (span_ns w) /. 1e9)

  let counts ?now_ns w =
    let acc = Array.make n_buckets 0 in
    fold_cells ?now_ns w
      (fun () slot _ ->
        Array.iteri (fun i b -> acc.(i) <- acc.(i) + Atomic.get b) slot.buckets)
      ();
    acc

  let quantile ?now_ns w q = quantile_of_counts ~gamma:w.gamma (counts ?now_ns w) q

  let snapshot ?now_ns:at w =
    let cells =
      fold_cells ?now_ns:at w
        (fun acc slot epoch ->
          let c = Atomic.get slot.count in
          if c = 0 then acc
          else (epoch, c, Array.map Atomic.get slot.buckets) :: acc)
        []
    in
    { w_name = w.name; w_gamma = w.gamma; w_slot_ns = w.slot_ns;
      w_n_slots = w.n_slots; w_cells = List.sort compare cells }

  (* Merge a shipped snapshot into the live registry. Cells land in the
     slot their epoch maps to: an older epoch than the slot currently
     holds is out of window and dropped; a newer epoch rolls the slot
     first. Both rules are order-insensitive — any merge order of a set
     of snapshots keeps exactly the cells of the newest epoch per slot,
     summed. *)
  let merge_into s =
    if Atomic.get enabled_flag then begin
      let w =
        make ~slots:s.w_n_slots
          ~slot_ms:(max 1 (s.w_slot_ns / 1_000_000))
          ~gamma:s.w_gamma s.w_name
      in
      List.iter
        (fun (epoch, c, counts) ->
          let slot = slot_for w epoch in
          roll slot epoch;
          if Atomic.get slot.epoch = epoch then begin
            ignore (Atomic.fetch_and_add slot.count c);
            Array.iteri
              (fun i v -> if v <> 0 then ignore (Atomic.fetch_and_add slot.buckets.(i) v))
              counts
          end)
        s.w_cells
    end

  let snapshot_all ?now_ns () =
    with_lock (fun () -> Hashtbl.fold (fun _ w acc -> w :: acc) table [])
    |> List.sort (fun a b -> compare a.name b.name)
    |> List.map (fun w -> snapshot ?now_ns w)
    |> List.filter (fun s -> s.w_cells <> [])

  (* Cell-wise difference against the matching baseline snapshot: a cell
     whose epoch also appears in the baseline subtracts the baseline's
     contents (per-slot contents only grow while an epoch is live, and
     an epoch is never revisited after rolling, so the subtraction is
     exact); an epoch absent from the baseline is shipped whole. Used by
     forked shard workers, which inherit the parent's pre-fork cells and
     must not echo them back. *)
  let delta ~baseline s =
    match List.find_opt (fun b -> b.w_name = s.w_name) baseline with
    | None -> s
    | Some b ->
      let cells =
        List.filter_map
          (fun (epoch, c, counts) ->
            match
              List.find_opt (fun (e, _, _) -> e = epoch) b.w_cells
            with
            | None -> Some (epoch, c, counts)
            | Some (_, bc, bcounts) ->
              let c = c - bc in
              if c <= 0 then None
              else
                Some (epoch, c, Array.mapi (fun i v -> v - bcounts.(i)) counts))
          s.w_cells
      in
      { s with w_cells = cells }

  let deltas_since ?now_ns baseline =
    List.filter_map
      (fun s ->
        let d = delta ~baseline s in
        if d.w_cells = [] then None else Some d)
      (snapshot_all ?now_ns ())
end

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

module Span = struct
  type stat = { count : int Atomic.t; total_ns : int Atomic.t; max_ns : int Atomic.t }

  let table : (string, stat) Hashtbl.t = Hashtbl.create 32

  let stat_of name =
    (* fast path without the lock: concurrent lookups of an
       already-registered name must not contend *)
    match Hashtbl.find_opt table name with
    | Some s -> s
    | None ->
      with_lock (fun () ->
          match Hashtbl.find_opt table name with
          | Some s -> s
          | None ->
            let s =
              { count = Atomic.make 0; total_ns = Atomic.make 0; max_ns = Atomic.make 0 }
            in
            Hashtbl.replace table name s;
            s)

  (* Nesting is tracked per domain; only the aggregate is shared. *)
  let stack_key : string list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

  let depth () = List.length !(Domain.DLS.get stack_key)

  let record name elapsed_ns =
    let s = stat_of name in
    ignore (Atomic.fetch_and_add s.count 1);
    ignore (Atomic.fetch_and_add s.total_ns elapsed_ns);
    atomic_max s.max_ns elapsed_ns

  (* Optional per-event sink for trace-event exporters (rz_trace's Chrome
     writer). One Atomic read per span exit when unset; the sink itself
     must be domain-safe — it runs in whichever domain closed the span. *)
  let sink : (string -> start_ns:int -> dur_ns:int -> unit) option Atomic.t =
    Atomic.make None

  let set_sink f = Atomic.set sink f

  let with_ name f =
    if not (Atomic.get enabled_flag) then f ()
    else begin
      let stack = Domain.DLS.get stack_key in
      stack := name :: !stack;
      let t0 = Monotonic_clock.now () in
      let finish () =
        let elapsed = Int64.to_int (Int64.sub (Monotonic_clock.now ()) t0) in
        (match !stack with [] -> () | _ :: rest -> stack := rest);
        record name (max 0 elapsed);
        match Atomic.get sink with
        | None -> ()
        | Some emit ->
          (try emit name ~start_ns:(Int64.to_int t0) ~dur_ns:(max 0 elapsed)
           with _ -> ())
      in
      match f () with
      | result ->
        finish ();
        result
      | exception e ->
        finish ();
        raise e
    end

  let count name =
    match Hashtbl.find_opt table name with
    | Some s -> Atomic.get s.count
    | None -> 0

  let total_ns name =
    match Hashtbl.find_opt table name with
    | Some s -> Atomic.get s.total_ns
    | None -> 0
end

(* ------------------------------------------------------------------ *)
(* Run metadata                                                        *)
(* ------------------------------------------------------------------ *)

(* Free-form key/value metadata describing the run (subcommand, seed,
   wall-clock start, domain count, ...). Written rarely — mutex-guarded;
   snapshots embed it so metrics files and JSONL stream records are
   self-describing. *)
module Meta = struct
  let table : (string, Json.t) Hashtbl.t = Hashtbl.create 8

  let set key value = with_lock (fun () -> Hashtbl.replace table key value)
  let clear () = with_lock (fun () -> Hashtbl.reset table)

  let list () =
    with_lock (fun () ->
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
        |> List.sort (fun (a, _) (b, _) -> compare a b))
end

(* ------------------------------------------------------------------ *)
(* Reset                                                               *)
(* ------------------------------------------------------------------ *)

let reset () =
  with_lock (fun () ->
      Hashtbl.reset Meta.table;
      Hashtbl.iter (fun _ (c : Counter.t) -> Atomic.set c.v 0) Counter.table;
      Hashtbl.iter (fun _ (g : Gauge.t) -> Atomic.set g.v 0) Gauge.table;
      Hashtbl.iter
        (fun _ (h : Histogram.t) -> Array.iter (fun b -> Atomic.set b 0) h.buckets)
        Histogram.table;
      Hashtbl.iter
        (fun _ (w : Window.t) ->
          Array.iter
            (fun (s : Window.slot) ->
              Atomic.set s.epoch 0;
              Atomic.set s.count 0;
              Array.iter (fun b -> Atomic.set b 0) s.buckets)
            w.slots)
        Window.table;
      Hashtbl.iter
        (fun _ (s : Span.stat) ->
          Atomic.set s.count 0;
          Atomic.set s.total_ns 0;
          Atomic.set s.max_ns 0)
        Span.table)

(* ------------------------------------------------------------------ *)
(* Recovery counters                                                   *)
(* ------------------------------------------------------------------ *)

(* Single source of truth for the graceful-degradation contract: a run
   that kept going but fired any of these exits 2 under the keep-going
   subcommands (faultinject / rpki / stream). The CLI and the docs both
   read this list; suite_obs checks it stays in sync with what the
   instrumented libraries actually register. *)
let recovery_counter_names =
  [ "fault.injected";
    "reader.lines_dropped";
    "flatten.truncated";
    "nfa.capped";
    "verify.domain_retries";
    "rpki.roas_rejected";
    "stream.events_dropped";
    "stream.events_sampled";
    "stream.events_abandoned";
    "stream.journal_rejected";
    "stream.watchdog_trips";
    "stream.retries";
    "shard.frames_rejected";
    "serve.queries_rejected";
    "serve.sessions_rejected";
    "serve.sessions_dropped";
    "nrtm.ops_rejected";
    "obs.accesslog_dropped" ]

let recovery_suffixes = [ "rejected"; "dropped"; "truncated"; "capped" ]

let looks_like_recovery name =
  List.exists (fun suf -> Filename.check_suffix name suf) recovery_suffixes

(* ------------------------------------------------------------------ *)
(* Registry snapshots                                                  *)
(* ------------------------------------------------------------------ *)

module Registry = struct
  type hist_row = {
    count : int;
    p50 : float;
    p90 : float;
    p99 : float;
    h_gamma : float;
    h_counts : int array;  (* consistent copy backing every figure above *)
  }

  type win_row = {
    w_count : int;
    w_rate : float;
    w_p50 : float;
    w_p99 : float;
    w_span_ns : int;
  }

  type snapshot = {
    meta : (string * Json.t) list;
    counters : (string * int) list;
    gauges : (string * int) list;
    histograms : (string * hist_row) list;
    windows : (string * win_row) list;
    spans : (string * (int * int * int)) list;  (* count, total_ns, max_ns *)
  }

  let sorted_bindings tbl f =
    Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)

  let snapshot () =
    with_lock (fun () ->
        { meta = sorted_bindings Meta.table Fun.id;
          counters = sorted_bindings Counter.table (fun c -> Atomic.get c.Counter.v);
          gauges = sorted_bindings Gauge.table (fun g -> Atomic.get g.Gauge.v);
          histograms =
            sorted_bindings Histogram.table (fun h ->
                let counts = Histogram.counts h in
                let gamma = Histogram.gamma h in
                { count = Array.fold_left ( + ) 0 counts;
                  p50 = quantile_of_counts ~gamma counts 0.5;
                  p90 = quantile_of_counts ~gamma counts 0.9;
                  p99 = quantile_of_counts ~gamma counts 0.99;
                  h_gamma = gamma;
                  h_counts = counts });
          windows =
            sorted_bindings Window.table (fun w ->
                let counts = Window.counts w in
                let gamma = Window.gamma w in
                { w_count = Array.fold_left ( + ) 0 counts;
                  w_rate =
                    float_of_int (Array.fold_left ( + ) 0 counts)
                    /. (float_of_int (Window.span_ns w) /. 1e9);
                  w_p50 = quantile_of_counts ~gamma counts 0.5;
                  w_p99 = quantile_of_counts ~gamma counts 0.99;
                  w_span_ns = Window.span_ns w });
          spans =
            sorted_bindings Span.table (fun (s : Span.stat) ->
                (Atomic.get s.count, Atomic.get s.total_ns, Atomic.get s.max_ns)) })

  let counters s = s.counters
  let gauges s = s.gauges
  let spans s = List.map (fun (n, (c, t, _)) -> (n, (c, t))) s.spans
  let meta s = s.meta

  let window_stats s =
    List.map
      (fun (n, w) -> (n, (w.w_count, w.w_rate, w.w_p50, w.w_p99)))
      s.windows

  let to_json s =
    Json.Obj
      [ ("meta", Json.Obj s.meta);
        ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters));
        ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.gauges));
        ( "histograms",
          Json.Obj
            (List.map
               (fun (n, (r : hist_row)) ->
                 ( n,
                   Json.Obj
                     [ ("count", Json.Int r.count);
                       ("p50", Json.Float r.p50);
                       ("p90", Json.Float r.p90);
                       ("p99", Json.Float r.p99) ] ))
               s.histograms) );
        ( "windows",
          Json.Obj
            (List.map
               (fun (n, (w : win_row)) ->
                 ( n,
                   Json.Obj
                     [ ("count", Json.Int w.w_count);
                       ("rate", Json.Float w.w_rate);
                       ("p50", Json.Float w.w_p50);
                       ("p99", Json.Float w.w_p99);
                       ("span_ns", Json.Int w.w_span_ns) ] ))
               s.windows) );
        ( "spans",
          Json.Obj
            (List.map
               (fun (n, (count, total_ns, max_ns)) ->
                 ( n,
                   Json.Obj
                     [ ("count", Json.Int count);
                       ("total_ns", Json.Int total_ns);
                       ("max_ns", Json.Int max_ns) ] ))
               s.spans) ) ]

  let to_text s =
    let b = Buffer.create 1024 in
    let ms ns = float_of_int ns /. 1e6 in
    if s.meta <> [] then begin
      Buffer.add_string b "meta:\n";
      List.iter
        (fun (n, v) ->
          Buffer.add_string b (Printf.sprintf "  %-32s %s\n" n (Json.to_string v)))
        s.meta
    end;
    if s.spans <> [] then begin
      Buffer.add_string b "spans:\n";
      List.iter
        (fun (n, (count, total_ns, max_ns)) ->
          Buffer.add_string b
            (Printf.sprintf "  %-32s %8d runs %12.3f ms total %10.3f ms max\n" n count
               (ms total_ns) (ms max_ns)))
        s.spans
    end;
    if s.counters <> [] then begin
      Buffer.add_string b "counters:\n";
      List.iter
        (fun (n, v) -> Buffer.add_string b (Printf.sprintf "  %-32s %12d\n" n v))
        s.counters
    end;
    if s.gauges <> [] then begin
      Buffer.add_string b "gauges:\n";
      List.iter
        (fun (n, v) -> Buffer.add_string b (Printf.sprintf "  %-32s %12d\n" n v))
        s.gauges
    end;
    if s.histograms <> [] then begin
      Buffer.add_string b "histograms:\n";
      List.iter
        (fun (n, (r : hist_row)) ->
          Buffer.add_string b
            (Printf.sprintf "  %-32s %8d obs  p50 %10.1f  p90 %10.1f  p99 %10.1f\n" n
               r.count r.p50 r.p90 r.p99))
        s.histograms
    end;
    if s.windows <> [] then begin
      Buffer.add_string b "windows:\n";
      List.iter
        (fun (n, (w : win_row)) ->
          Buffer.add_string b
            (Printf.sprintf
               "  %-32s %8d in %3.0fs  %10.1f/s  p50 %10.1f  p99 %10.1f\n" n
               w.w_count
               (float_of_int w.w_span_ns /. 1e9)
               w.w_rate w.w_p50 w.w_p99))
        s.windows
    end;
    Buffer.contents b
end

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* Prometheus metric names admit [a-zA-Z0-9_:]; our dotted names map
   dots (and anything else) to underscores. *)
let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let prom_le v = if v = Float.infinity then "+Inf" else prom_float v

let to_prometheus (s : Registry.snapshot) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b l; Buffer.add_char b '\n') fmt in
  List.iter
    (fun (k, v) -> line "# meta %s %s" (prom_name k) (Json.to_string v))
    s.Registry.meta;
  List.iter
    (fun (n, v) ->
      let n = prom_name n in
      line "# TYPE %s counter" n;
      line "%s %d" n v)
    s.Registry.counters;
  List.iter
    (fun (n, v) ->
      let n = prom_name n in
      line "# TYPE %s gauge" n;
      line "%s %d" n v)
    s.Registry.gauges;
  List.iter
    (fun (n, (r : Registry.hist_row)) ->
      let n = prom_name n in
      line "# TYPE %s histogram" n;
      let cum = ref 0 and approx_sum = ref 0.0 in
      Array.iteri
        (fun i c ->
          if c > 0 then begin
            cum := !cum + c;
            approx_sum := !approx_sum +. (float_of_int c *. representative_of ~gamma:r.h_gamma i);
            line "%s_bucket{le=\"%s\"} %d" n (prom_le (upper_bound_of ~gamma:r.h_gamma i)) !cum
          end)
        r.h_counts;
      line "%s_bucket{le=\"+Inf\"} %d" n r.count;
      line "%s_sum %s" n (prom_float !approx_sum);
      line "%s_count %d" n r.count)
    s.Registry.histograms;
  List.iter
    (fun (n, (w : Registry.win_row)) ->
      let n = prom_name n in
      let emit suffix value =
        let full = n ^ suffix in
        line "# TYPE %s gauge" full;
        line "%s %s" full value
      in
      emit "_window_count" (string_of_int w.w_count);
      emit "_window_rate" (prom_float w.w_rate);
      emit "_window_p50" (prom_float w.w_p50);
      emit "_window_p99" (prom_float w.w_p99);
      emit "_window_span_seconds" (prom_float (float_of_int w.w_span_ns /. 1e9)))
    s.Registry.windows;
  List.iter
    (fun (n, (count, total_ns, max_ns)) ->
      let n = prom_name n ^ "_span" in
      line "# TYPE %s_count counter" n;
      line "%s_count %d" n count;
      line "# TYPE %s_total_ns counter" n;
      line "%s_total_ns %d" n total_ns;
      line "# TYPE %s_max_ns gauge" n;
      line "%s_max_ns %d" n max_ns)
    s.Registry.spans;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Strict exposition parser (prom_check, tests, `top`)                 *)
(* ------------------------------------------------------------------ *)

type prom_sample = {
  p_name : string;
  p_labels : (string * string) list;
  p_value : float;
}

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name n =
  n <> ""
  && is_name_start n.[0]
  && String.for_all is_name_char n

let parse_value str =
  match str with
  | "+Inf" -> Some Float.infinity
  | "-Inf" -> Some Float.neg_infinity
  | "NaN" -> Some Float.nan
  | _ -> float_of_string_opt str

(* Parse a {k="v",...} label block starting just past '{'; returns the
   labels and the index just past '}'. *)
let parse_labels line i =
  let n = String.length line in
  let ident j =
    let rec go j = if j < n && is_name_char line.[j] then go (j + 1) else j in
    go j
  in
  let rec labels acc j =
    if j >= n then Error "unterminated label block"
    else if line.[j] = '}' then Ok (List.rev acc, j + 1)
    else begin
      let k_end = ident j in
      if k_end = j then Error "empty label name"
      else if k_end >= n || line.[k_end] <> '=' then Error "label missing '='"
      else if k_end + 1 >= n || line.[k_end + 1] <> '"' then
        Error "label value not quoted"
      else begin
        let key = String.sub line j (k_end - j) in
        let buf = Buffer.create 16 in
        let rec value j =
          if j >= n then Error "unterminated label value"
          else
            match line.[j] with
            | '"' -> Ok (j + 1)
            | '\\' ->
              if j + 1 >= n then Error "dangling escape"
              else begin
                (match line.[j + 1] with
                 | 'n' -> Buffer.add_char buf '\n'
                 | c -> Buffer.add_char buf c);
                value (j + 2)
              end
            | c ->
              Buffer.add_char buf c;
              value (j + 1)
        in
        match value (k_end + 2) with
        | Error e -> Error e
        | Ok j ->
          let acc = (key, Buffer.contents buf) :: acc in
          if j < n && line.[j] = ',' then labels acc (j + 1)
          else labels acc j
      end
    end
  in
  labels [] i

(* Strict line-oriented parse of the Prometheus text exposition format:
   every sample line must be [name[{labels}] value], every sample's
   family must carry a preceding [# TYPE] declaration, TYPE declarations
   must not repeat, histogram families must have monotone cumulative
   buckets ending in a [+Inf] bucket that equals [_count]. Returns the
   samples in file order. *)
let parse_prometheus text =
  let lines = String.split_on_char '\n' text in
  let types : (string, string) Hashtbl.t = Hashtbl.create 64 in
  let err lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let parse_sample lineno line =
    let n = String.length line in
    let name_end =
      let rec go j = if j < n && is_name_char line.[j] then go (j + 1) else j in
      go 0
    in
    if name_end = 0 then err lineno "sample does not start with a metric name"
    else begin
      let name = String.sub line 0 name_end in
      if not (valid_name name) then err lineno ("invalid metric name " ^ name)
      else begin
        let labels_result =
          if name_end < n && line.[name_end] = '{' then
            parse_labels line (name_end + 1)
          else Ok ([], name_end)
        in
        match labels_result with
        | Error e -> err lineno e
        | Ok (labels, j) ->
          if j >= n || line.[j] <> ' ' then err lineno "expected space before value"
          else begin
            let value_str = String.sub line (j + 1) (n - j - 1) in
            let value_str = String.trim value_str in
            if value_str = "" then err lineno "missing sample value"
            else if String.contains value_str ' ' then
              err lineno "trailing junk after value (timestamps not accepted)"
            else
              match parse_value value_str with
              | None -> err lineno ("unparsable value " ^ value_str)
              | Some v -> Ok { p_name = name; p_labels = labels; p_value = v }
          end
      end
    end
  in
  let parse_type_line lineno line =
    (* "# TYPE <name> <counter|gauge|histogram>" *)
    match String.split_on_char ' ' line with
    | [ "#"; "TYPE"; name; kind ] ->
      if not (valid_name name) then err lineno ("invalid metric name " ^ name)
      else if not (List.mem kind [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
      then err lineno ("unknown metric type " ^ kind)
      else if Hashtbl.mem types name then
        err lineno ("duplicate TYPE declaration for " ^ name)
      else begin
        Hashtbl.replace types name kind;
        Ok ()
      end
    | _ -> err lineno "malformed TYPE line"
  in
  (* family resolution: histogram samples use the declared base name
     plus _bucket/_sum/_count; everything else matches its TYPE name
     exactly. *)
  let family_of name =
    if Hashtbl.mem types name then Some name
    else
      let strip suffix =
        if Filename.check_suffix name suffix then
          let base = Filename.chop_suffix name suffix in
          if Hashtbl.find_opt types base = Some "histogram" then Some base else None
        else None
      in
      match strip "_bucket" with
      | Some b -> Some b
      | None ->
        (match strip "_sum" with
         | Some b -> Some b
         | None -> strip "_count")
  in
  let rec walk lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let stripped = String.trim line in
      if stripped = "" then walk (lineno + 1) acc rest
      else if String.length stripped >= 1 && stripped.[0] = '#' then begin
        if String.length stripped >= 7 && String.sub stripped 0 7 = "# TYPE " then
          match parse_type_line lineno stripped with
          | Error e -> Error e
          | Ok () -> walk (lineno + 1) acc rest
        else walk (lineno + 1) acc rest (* HELP / free comments *)
      end
      else
        match parse_sample lineno stripped with
        | Error e -> Error e
        | Ok sample ->
          (match family_of sample.p_name with
           | None ->
             err lineno ("sample " ^ sample.p_name ^ " has no preceding TYPE declaration")
           | Some _ -> walk (lineno + 1) (sample :: acc) rest)
  in
  match walk 1 [] lines with
  | Error e -> Error e
  | Ok samples ->
    (* Histogram family invariants. *)
    let check_family name =
      let buckets =
        List.filter_map
          (fun s ->
            if s.p_name = name ^ "_bucket" then
              match List.assoc_opt "le" s.p_labels with
              | None -> Some (Error "histogram bucket without le label")
              | Some le ->
                (match parse_value le with
                 | None -> Some (Error ("unparsable le bound " ^ le))
                 | Some bound -> Some (Ok (bound, s.p_value)))
            else None)
          samples
      in
      let count =
        List.find_opt (fun s -> s.p_name = name ^ "_count") samples
      in
      let sum = List.find_opt (fun s -> s.p_name = name ^ "_sum") samples in
      match List.find_opt Result.is_error buckets with
      | Some (Error e) -> Error (name ^ ": " ^ e)
      | Some (Ok _) | None ->
        let buckets = List.filter_map Result.to_option buckets in
        if buckets = [] then Error (name ^ ": histogram has no buckets")
        else if count = None then Error (name ^ ": histogram missing _count")
        else if sum = None then Error (name ^ ": histogram missing _sum")
        else begin
          let rec monotone = function
            | (le1, c1) :: ((le2, c2) :: _ as rest) ->
              if le2 <= le1 then Error (name ^ ": bucket le bounds not increasing")
              else if c2 < c1 then Error (name ^ ": cumulative buckets decrease")
              else monotone rest
            | _ -> Ok ()
          in
          match monotone buckets with
          | Error e -> Error e
          | Ok () ->
            let last_le, last_c = List.nth buckets (List.length buckets - 1) in
            let count_v = (Option.get count).p_value in
            if last_le <> Float.infinity then
              Error (name ^ ": histogram missing +Inf bucket")
            else if last_c <> count_v then
              Error (name ^ ": +Inf bucket disagrees with _count")
            else Ok ()
        end
    in
    let hist_names =
      Hashtbl.fold (fun n k acc -> if k = "histogram" then n :: acc else acc) types []
    in
    let rec check = function
      | [] -> Ok samples
      | n :: rest ->
        (match check_family n with Error e -> Error e | Ok () -> check rest)
    in
    check hist_names
