(** Parallel multi-IRR ingestion with an IR snapshot cache.

    [ingest] shards per-IRR dump parsing and lowering across OCaml 5
    domains (work-stealing whole files off an Atomic cursor, the
    [verify_parallel] pattern) and merges deterministically, preserving
    {!Rz_irr.Db}'s inter-IRR first-definition-wins priority semantics:
    the result is byte-identical (via {!Rz_ir.Ir_json}) to the
    sequential [Lower.add_dump] loop, for any input and any domain
    count. Counters: [ingest.parallel.domains], [ingest.files_stolen],
    [snapshot.hits]/[snapshot.misses] (plus [snapshot.rejects] from
    {!Rz_ir.Ir_snapshot}). *)

val default_domains : int
(** [max 1 (min 4 (Rz_util.Domains.recommended ()))] (honors the [RPSLYZER_DOMAINS] override). *)

val ingest_sequential : (string * string) list -> Rz_ir.Ir.t
(** The sequential oracle: exactly [Db.of_dumps]'s lowering loop. The
    bench's ablation baseline and the differential suite's ground
    truth. *)

val ingest :
  ?domains:int ->
  ?force_domains:bool ->
  ?inject_domain_fault:(int -> unit) ->
  (string * string) list ->
  Rz_ir.Ir.t
(** Parallel ingest of [(source, rpsl_text)] dumps given in priority
    order. [domains] is a requested upper bound: the pool is sized to
    [min domains (min n_dumps (Rz_util.Domains.recommended ()))]
    because oversubscribing cores is a measured slowdown (minor GCs are
    stop-the-world syncs across all domains). [force_domains] bypasses
    the recommended-count clamp so differential tests can genuinely
    exercise multi-domain interleavings on any host.
    [inject_domain_fault] (fault-injection harness hook) runs at the
    top of each worker with the domain index and may raise to simulate
    a domain crash; lost work is retried sequentially and the result is
    unchanged. *)

val ingest_cached :
  ?domains:int -> snapshot:string -> (string * string) list -> Rz_ir.Ir.t
(** Snapshot-backed ingest: loads [snapshot] when it is valid and was
    built from exactly these dumps (hit); otherwise ingests and
    (re)writes it (miss; a corrupt file additionally counts a reject and
    is never partially loaded). *)

val dumps_digest : (string * string) list -> string
(** The 16-byte MD5 staleness key over the dumps, as stored in a
    snapshot header. *)

val db_of_dumps :
  ?domains:int -> ?snapshot:string -> (string * string) list -> Rz_irr.Db.t
(** Drop-in parallel replacement for {!Rz_irr.Db.of_dumps}, optionally
    snapshot-cached. *)
