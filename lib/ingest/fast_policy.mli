(** Direct-coded fast path for the dominant import/export rule shapes
    ([[afi <afi>] from|to <word> accept|announce <word>] — the paper's
    98.4%-simple finding), building the identical AST the general
    recursive-descent parser would. Everything else returns [None] and
    must fall back to {!Rz_policy.Parser.parse_rule}, which keeps error
    messages and corner cases byte-identical by construction. *)

val parse_simple :
  direction:[ `Import | `Export ] ->
  multiprotocol:bool ->
  string ->
  Rz_policy.Ast.rule option
(** Recognize one simple rule; [None] means "use the general parser". *)

val cached_rule_parser : unit -> Rz_ir.Lower.rule_parser
(** A fresh memoized parser: fast path first, general parser fallback,
    all results (including errors) cached per (direction,
    multiprotocol, text). The table is not synchronized — create one
    per domain. *)

val cached_split : unit -> string -> string list
(** A fresh memoized {!Rz_ir.Lower.split_names}: member-list values
    (mnt-by above all) repeat heavily within a dump. Same per-domain
    ownership rule as {!cached_rule_parser}. *)
