(* Parallel multi-IRR ingestion: the ingestion-side counterpart of the
   verify hot-path overhaul.

   The sequential oracle is [Db.of_dumps]'s loop — [Lower.add_dump] per
   dump in priority order, where the IR's own tables carry the
   first-definition-wins gate. That loop cannot shard as-is: lowering a
   dump observes every earlier dump's insertions (which duplicates are
   shadowed, hence which error lists they emit). The parallel path
   splits the gate out:

     A. parse   — every dump scanned independently ([Reader.scan_string]),
                  domains work-stealing whole files off an Atomic cursor;
     B. scan    — one cheap sequential pass over all parsed objects in
                  dump-priority order computes per-object keep flags from
                  [Lower.admission_key] (filter-sets claim their key only
                  when lowerable, matching the sequential gate that stays
                  open after a failed insert);
     C. lower   — each dump lowers into a private IR with its keep flags
                  and a per-domain memoized fast-path rule parser, again
                  work-stealing;
     D. merge   — winners' tables are key-disjoint by construction, so
                  tables union; the routes and errors lists concatenate
                  in dump order, reproducing the oracle's insertion
                  order exactly.

   The result is byte-identical to the oracle under [Ir_json.export]
   (the differential suite holds this under QCheck, including over
   rz_fault-corrupted worlds). A domain crash mid-phase loses only its
   unfinished slots; a sequential sweep re-runs those, mirroring
   verify_parallel's retry semantics. *)

let c_domains = Rz_obs.Obs.Counter.make "ingest.parallel.domains"
let c_files_stolen = Rz_obs.Obs.Counter.make "ingest.files_stolen"
let c_snapshot_hits = Rz_obs.Obs.Counter.make "snapshot.hits"
let c_snapshot_misses = Rz_obs.Obs.Counter.make "snapshot.misses"

let default_domains = max 1 (min 4 (Rz_util.Domains.recommended ()))

(* Requested domain counts are clamped to the host's recommended count:
   oversubscribing cores costs real time (every minor GC is a
   stop-the-world sync across domains, so idle-core domains make the
   whole pool slower, measured 2x on a single-core host). [force] is the
   test harness bypass — differential suites must genuinely exercise
   multi-domain interleavings even where the scheduler would not. *)
let effective_domains ~force ~requested n =
  let cap = if force then requested else min requested (Rz_util.Domains.recommended ()) in
  max 1 (min cap n)

(* The sequential oracle: exactly what [Db.of_dumps] does before the
   index build. The ingest bench uses it as the ablation baseline; the
   differential suite as ground truth. *)
let ingest_sequential dumps =
  let ir = Rz_ir.Ir.create () in
  List.iter (fun (source, text) -> ignore (Rz_ir.Lower.add_dump ir ~source text)) dumps;
  ir

(* Run [work 0..domains-1]; a crashed domain is absorbed (its unfinished
   slots are retried by the caller's sweep). domains = 1 runs inline —
   no spawn cost on single-core hosts. *)
let run_domains ~domains work =
  if domains <= 1 then (try work 0 () with _ -> ())
  else begin
    let handles = List.init domains (fun d -> Domain.spawn (work d)) in
    List.iter
      (fun h -> match Domain.join h with () -> () | exception _ -> ())
      handles
  end

(* Phase B: cross-dump first-wins admission, resolved sequentially in
   dump-priority order over the already-parsed objects. *)
let winner_scan parsed =
  let n = Array.length parsed in
  let taken = Hashtbl.create 4096 in
  let keep_of obj =
    match Rz_ir.Lower.admission_key obj with
    | None -> true
    | Some key ->
      if Hashtbl.mem taken key then false
      else begin
        (match key with
         | Rz_ir.Lower.K_filter_set _ ->
           (* a filter-set that cannot lower leaves its key unclaimed *)
           if Rz_ir.Lower.filter_set_lowerable obj then Hashtbl.replace taken key ()
         | _ -> Hashtbl.replace taken key ());
        true
      end
  in
  let keeps = Array.make n [||] in
  for i = 0 to n - 1 do
    let r : Rz_rpsl.Reader.result_t = parsed.(i) in
    keeps.(i) <- Array.of_list (List.map keep_of r.objects)
  done;
  keeps

let ingest ?(domains = default_domains) ?(force_domains = false) ?inject_domain_fault
    dumps =
  let files = Array.of_list dumps in
  let n = Array.length files in
  if n = 0 then Rz_ir.Ir.create ()
  else begin
    let domains = effective_domains ~force:force_domains ~requested:domains n in
    Rz_obs.Obs.Counter.add c_domains domains;
    (* ---- phase A: parallel parse, stealing whole files ---- *)
    let parsed : Rz_rpsl.Reader.result_t option array = Array.make n None in
    let next = Atomic.make 0 in
    let parse_one i =
      let _, text = files.(i) in
      let r =
        Rz_obs.Obs.Span.with_ "parse" (fun () -> Rz_rpsl.Reader.scan_string text)
      in
      parsed.(i) <- Some r;
      Rz_obs.Obs.Counter.incr c_files_stolen
    in
    run_domains ~domains (fun d () ->
        (match inject_domain_fault with Some f -> f d | None -> ());
        let rec drain () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            parse_one i;
            drain ()
          end
        in
        drain ());
    (* crash sweep: re-parse any slot a dead domain claimed but never
       finished (parsing is pure, so a finished slot is always valid) *)
    for i = 0 to n - 1 do
      if Option.is_none parsed.(i) then parse_one i
    done;
    let parsed = Array.map Option.get parsed in
    (* ---- phase B: sequential winner scan ---- *)
    let keeps = winner_scan parsed in
    (* ---- phase C: parallel lowering into private IRs ---- *)
    let privates : Rz_ir.Ir.t option array = Array.make n None in
    let next = Atomic.make 0 in
    let lower_one ~rule_parser ~split i =
      let source, _ = files.(i) in
      let p = parsed.(i) in
      let ir = Rz_ir.Ir.create () in
      Rz_ir.Lower.add_reader_errors ir ~source p.errors;
      Rz_ir.Lower.add_objects ~rule_parser ~split ~keep:keeps.(i) ir ~source
        p.objects;
      privates.(i) <- Some ir
    in
    run_domains ~domains (fun d () ->
        (match inject_domain_fault with Some f -> f d | None -> ());
        (* memo tables are private to the domain, hence unsynchronized *)
        let rule_parser = Fast_policy.cached_rule_parser () in
        let split = Fast_policy.cached_split () in
        let rec drain () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            lower_one ~rule_parser ~split i;
            drain ()
          end
        in
        drain ());
    (let retry_memos =
       lazy (Fast_policy.cached_rule_parser (), Fast_policy.cached_split ())
     in
     for i = 0 to n - 1 do
       if Option.is_none privates.(i) then begin
         let rule_parser, split = Lazy.force retry_memos in
         lower_one ~rule_parser ~split i
       end
     done);
    (* ---- phase D: deterministic merge in dump-priority order ---- *)
    let merged = Rz_ir.Ir.create () in
    let union dst src = Hashtbl.iter (fun k v -> Hashtbl.replace dst k v) src in
    for i = 0 to n - 1 do
      let p = Option.get privates.(i) in
      union merged.Rz_ir.Ir.aut_nums p.Rz_ir.Ir.aut_nums;
      union merged.mntners p.mntners;
      union merged.inet_rtrs p.inet_rtrs;
      union merged.rtr_sets p.rtr_sets;
      union merged.as_sets p.as_sets;
      union merged.route_sets p.route_sets;
      union merged.peering_sets p.peering_sets;
      union merged.filter_sets p.filter_sets;
      union merged.route_seen p.route_seen;
      (* routes append in dump order with ids re-interned into the
         merged pool, reproducing the oracle's insertion order; errors
         are still a reversed cons list, so earlier dumps prepend *)
      Rz_ir.Ir.absorb_routes merged p;
      merged.errors <- p.errors @ merged.errors
    done;
    merged
  end

(* MD5 over the input dumps (sources and texts, NUL-framed): the staleness
   key stored in a snapshot's header. *)
let dumps_digest dumps =
  Digest.string
    (String.concat "\x00"
       (List.concat_map (fun (source, text) -> [ source; text ]) dumps))

(* Snapshot-backed ingest: load when the file carries this exact input's
   digest (hit); otherwise — absent, rejected, or stale — ingest and
   (re)write it (miss). Rejections additionally bump [snapshot.rejects]
   inside [Ir_snapshot.load]; a stale-but-valid snapshot is only a miss. *)
let ingest_cached ?domains ~snapshot dumps =
  let digest = dumps_digest dumps in
  let cached =
    if Sys.file_exists snapshot then
      match Rz_ir.Ir_snapshot.load snapshot with
      | Ok (d, ir) when String.equal d digest -> Some ir
      | Ok _ | Error _ -> None
    else None
  in
  match cached with
  | Some ir ->
    Rz_obs.Obs.Counter.incr c_snapshot_hits;
    ir
  | None ->
    Rz_obs.Obs.Counter.incr c_snapshot_misses;
    let ir = ingest ?domains dumps in
    (try Rz_ir.Ir_snapshot.save snapshot ~input_digest:digest ir
     with Sys_error _ -> ());
    ir

let db_of_dumps ?domains ?snapshot dumps =
  let ir =
    match snapshot with
    | Some path -> ingest_cached ?domains ~snapshot:path dumps
    | None -> ingest ?domains dumps
  in
  Rz_irr.Db.build ir
