(* Direct-coded fast path for the dominant rule shapes.

   The paper reports 98.4% of peerings are a single ASN or ANY; in our
   worlds the overwhelming majority of import/export attributes are

       from AS1966 accept AS1966:AS-CUST
       afi ipv6.unicast from AS1014 accept ANY

   i.e. [afi <afi>] from|to <peering-word> accept|announce <filter-word>.
   The general recursive-descent parser tokenizes into a list and walks
   it with closures; this module recognizes exactly those shapes with
   one character scan and a word split, building the identical AST the
   general parser would. Anything else — extra tokens, keywords in odd
   positions, malformed names, every error case — returns [None] and
   falls back to [Rz_policy.Parser.parse_rule], so error messages and
   corner-case semantics stay byte-identical by construction. The ingest
   differential suite holds fast-vs-full equality under QCheck.

   Keep every predicate here in lockstep with lib/policy/{lexer,parser}.ml. *)

(* Mirrors Lexer.is_word_char: a text containing any other non-blank
   character tokenizes to something richer than plain words. *)
let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '.' || c = ':' || c = '/' || c = '-' || c = '_' || c = '^' || c = '+'
  || c = '*' || c = '?'

let is_blank_char c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

(* Mirrors Parser.keywords; matched on the case-folded word (a decision
   tree, not 15 list probes — this runs per word of every rule). *)
let is_keyword w =
  match Rz_util.Strings.lowercase w with
  | "from" | "to" | "action" | "accept" | "announce" | "except" | "refine"
  | "at" | "and" | "or" | "not" | "afi" | "protocol" | "into" | "networks" ->
    true
  | _ -> false

let word_is_asn w =
  Rz_util.Strings.starts_with_ci ~prefix:"AS" w
  && Result.is_ok (Rz_net.Asn.of_string w)

(* Mirrors Parser.split_range_op, minus the exception. *)
let split_range_op word =
  match String.index_opt word '^' with
  | None -> Some (word, Rz_net.Range_op.None_)
  | Some i ->
    let base = String.sub word 0 i in
    (match Rz_net.Range_op.parse (String.sub word i (String.length word - i)) with
     | Ok op -> Some (base, op)
     | Error _ -> None)

(* Mirrors Parser.parse_peering_expr for a single non-keyword word. *)
let peering_of_word w =
  if is_keyword w then None
  else if Rz_rpsl.Set_name.classify w = Some Rz_rpsl.Set_name.Peering_set then
    Some (Rz_policy.Ast.Peering_set_ref w)
  else
    let as_expr =
      if Rz_util.Strings.equal_ci w "AS-ANY" then Some Rz_policy.Ast.Any_as
      else if word_is_asn w then
        Some (Rz_policy.Ast.Asn (Rz_net.Asn.of_string_exn w))
      else if Rz_rpsl.Set_name.is_valid Rz_rpsl.Set_name.As_set w then
        Some (Rz_policy.Ast.As_set w)
      else None
    in
    Option.map
      (fun e ->
        Rz_policy.Ast.Peering_spec
          { as_expr = e; remote_router = None; local_router = None })
      as_expr

(* Mirrors Parser.parse_filter_word for a single non-keyword word,
   returning [None] on every path that parser treats as complex or as an
   error (community filters, bad range ops, invalid names). *)
let filter_of_word w =
  if is_keyword w then None
  else
    let upper = Rz_util.Strings.uppercase w in
    if upper = "ANY" || upper = "AS-ANY" || upper = "RS-ANY" then
      Some Rz_policy.Ast.Any
    else if Rz_util.Strings.equal_ci w "PeerAS" then
      Some Rz_policy.Ast.Peer_as_filter
    else if Rz_util.Strings.equal_ci w "fltr-martian" then
      Some Rz_policy.Ast.Fltr_martian
    else if Rz_util.Strings.starts_with_ci ~prefix:"community" w then None
    else
      match split_range_op w with
      | None -> None
      | Some (base, op) ->
        if word_is_asn base then
          Some (Rz_policy.Ast.As_num (Rz_net.Asn.of_string_exn base, op))
        else (
          match Rz_rpsl.Set_name.classify base with
          | Some Rz_rpsl.Set_name.As_set
            when Rz_rpsl.Set_name.is_valid As_set base ->
            Some (Rz_policy.Ast.As_set_ref (base, op))
          | Some Rz_rpsl.Set_name.Route_set
            when Rz_rpsl.Set_name.is_valid Route_set base ->
            Some (Rz_policy.Ast.Route_set_ref (base, op))
          | Some Rz_rpsl.Set_name.Filter_set
            when Rz_rpsl.Set_name.is_valid Filter_set base ->
            if op = Rz_net.Range_op.None_ then
              Some (Rz_policy.Ast.Filter_set_ref base)
            else None
          | _ ->
            (match Rz_net.Prefix.of_string base with
             | Ok p ->
               Some (Rz_policy.Ast.Prefix_set ([ (p, op) ], Rz_net.Range_op.None_))
             | Error _ -> None))

let split_simple_words text =
  (* One scan: bail out on any character the lexer treats as structure
     (braces, parens, '<', ';', ',', '='...), split the rest on blanks. *)
  let n = String.length text in
  let words = ref [] and i = ref 0 and simple = ref true in
  while !simple && !i < n do
    let c = String.unsafe_get text !i in
    if is_blank_char c then incr i
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char (String.unsafe_get text !i) do incr i done;
      words := String.sub text start (!i - start) :: !words
    end
    else simple := false
  done;
  if !simple then Some (List.rev !words) else None

let build ~direction ~multiprotocol ~afi peer_w filter_w =
  match (peering_of_word peer_w, filter_of_word filter_w) with
  | Some peering, Some filter ->
    Some
      { Rz_policy.Ast.direction;
        multiprotocol;
        protocol = None;
        into_protocol = None;
        expr =
          Rz_policy.Ast.Term_e
            { afi;
              factors = [ { peerings = [ { peering; actions = [] } ]; filter } ] } }
  | _ -> None

let parse_simple ~direction ~multiprotocol text =
  let peering_kw = match direction with `Import -> "from" | `Export -> "to" in
  let verb_kw = match direction with `Import -> "accept" | `Export -> "announce" in
  match split_simple_words text with
  | None -> None
  | Some words ->
    (match words with
     | [ kw; peer; verb; flt ]
       when Rz_util.Strings.equal_ci kw peering_kw
            && Rz_util.Strings.equal_ci verb verb_kw ->
       build ~direction ~multiprotocol ~afi:[] peer flt
     | [ a; af; kw; peer; verb; flt ]
       when Rz_util.Strings.equal_ci a "afi"
            && (not (is_keyword af))
            && Rz_util.Strings.equal_ci kw peering_kw
            && Rz_util.Strings.equal_ci verb verb_kw ->
       (match Rz_net.Afi.parse af with
        | Ok afi -> build ~direction ~multiprotocol ~afi:[ afi ] peer flt
        | Error _ -> None)
     | _ -> None)

(* A fresh memoized rule parser: fast path first, general parser as
   fallback, every (direction, multiprotocol, text) result — including
   errors — cached. parse_rule is pure, so caching is transparent; the
   table is NOT domain-safe, so the parallel ingest creates one per
   domain. *)
let cached_rule_parser () : Rz_ir.Lower.rule_parser =
  let tbl : ((bool * bool * string), (Rz_policy.Ast.rule, string) result) Hashtbl.t =
    Hashtbl.create 2048
  in
  fun ~direction ~multiprotocol text ->
    let key = (direction = `Import, multiprotocol, text) in
    match Hashtbl.find_opt tbl key with
    | Some r -> r
    | None ->
      let r =
        match parse_simple ~direction ~multiprotocol text with
        | Some rule -> Ok rule
        | None -> Rz_policy.Parser.parse_rule ~direction ~multiprotocol text
      in
      Hashtbl.add tbl key r;
      r

(* Memoized member-list splitter: mnt-by and member-of values repeat
   heavily across a dump (the same maintainers guard thousands of
   routes), so caching [Lower.split_names] per raw value skips most of
   the continuation-folding and re-splitting work. Pure function, so
   transparent; same per-domain ownership rule as the rule parser. *)
let cached_split () =
  let tbl : (string, string list) Hashtbl.t = Hashtbl.create 2048 in
  fun value ->
    match Hashtbl.find_opt tbl value with
    | Some names -> names
    | None ->
      let names = Rz_ir.Lower.split_names value in
      Hashtbl.add tbl value names;
      names
