(** Valley-free (Gao-Rexford) BGP route propagation over a synthetic
    topology — the substrate standing in for the real Internet's routing
    that produced the paper's 779M collector routes.

    Export policy: an AS announces its own and customer-learned routes to
    every neighbor, and peer-/provider-learned routes only to customers.
    Selection: prefer customer over peer over provider routes, then
    shorter AS-paths, then the lower next-hop ASN (deterministic). *)

type route_class = Own | From_customer | From_peer | From_provider

type best = {
  cls : route_class;
  length : int;        (** number of inter-AS hops to the destination *)
  path : Rz_net.Asn.t list;  (** this AS first, destination (origin) last *)
}

val best_routes : Rz_topology.Gen.t -> dest:Rz_net.Asn.t -> (Rz_net.Asn.t, best) Hashtbl.t
(** Best route of every AS that can reach [dest]; [dest] maps to
    [{cls = Own; length = 0; path = [dest]}]. *)

val collector_dump :
  ?prepend_prob:float ->
  Rz_topology.Gen.t ->
  collector:string ->
  peers:Rz_net.Asn.t list ->
  Rz_bgp.Table_dump.t
(** Full RIB dump: for each collector peer and each (destination,
    prefix), one route whose AS-path starts at the peer. This mirrors the
    paper's RIPE RIS / RouteViews table dumps. [prepend_prob] (default
    0.05) is the chance a route's origin is prepended 1-2 extra times —
    the inbound traffic-engineering noise the paper strips before
    verification. *)

val iter_collector_routes :
  ?prepend_prob:float ->
  Rz_topology.Gen.t ->
  peers:Rz_net.Asn.t list ->
  (Rz_bgp.Route.t -> unit) ->
  unit
(** Streamed [collector_dump]: push every route of the RIB to the
    callback in generation order without materializing the list — the
    paper-scale emission path ([gen --world-scale]), where the full RIB
    would be the peak-RSS ceiling. [collector_dump] is this plus a
    collect-to-list, so both paths produce identical dumps. *)

val collector_dumps :
  ?prepend_prob:float ->
  Rz_topology.Gen.t ->
  n_collectors:int ->
  peers:Rz_net.Asn.t list ->
  Rz_bgp.Table_dump.t list
(** Split the peers round-robin over [n_collectors] dumps named
    [synth-rrc00], [synth-rrc01], ... — the multi-collector vantage mix of
    the paper's 60 RIPE RIS / RouteViews collectors. *)

val default_collector_peers : Rz_topology.Gen.t -> n:int -> Rz_net.Asn.t list
(** Realistic peer mix: all Tier-1s plus the [n] best-connected mids —
    collectors predominantly peer with large networks. *)

val iter_collector_dumps :
  ?prepend_prob:float ->
  Rz_topology.Gen.t ->
  n_collectors:int ->
  peers:Rz_net.Asn.t list ->
  f:(collector:string -> ((Rz_bgp.Route.t -> unit) -> unit) -> unit) ->
  unit
(** Streamed [collector_dumps]: for each collector (same round-robin
    peer split, same [synth-rrc..] names) call [f ~collector run];
    [run emit] then generates that collector's routes into [emit]. Lets
    the caller write each dump straight to disk with one route in memory
    at a time. *)
