(** Announce/withdraw/churn event streams over a generated world — the
    update-feed counterpart of {!Propagate}'s static collector dumps.

    A stream interleaves BGP-style route events (flap re-announcements,
    path changes, new more-specifics, withdrawals) with policy-object
    edits (aut-num rule changes, as-set membership changes, route-object
    add/remove) — the churn that exercises incremental verification and
    its cache invalidation. Generation is splitmix-seeded: equal seeds
    over equal world views yield equal streams.

    Streams round-trip through a line-oriented {e journal} text format so
    they can be saved, replayed, and fault-injected. The parser is
    hardened: a malformed line (truncation, NUL bytes, unparsable
    fields, out-of-order sequence numbers) is rejected and recorded — on
    the [stream.journal_rejected] counter and in the returned error
    list — while parsing keeps going. *)

(** One policy-object edit. Rule text in [Add_import]/[Add_export] is
    RPSL policy text (e.g. ["from AS64500 accept ANY"]), parsed at
    application time; [Drop_import]/[Drop_export] name the 0-based index
    of the rule to remove. *)
type policy_edit =
  | Add_import of Rz_net.Asn.t * string
  | Drop_import of Rz_net.Asn.t * int
  | Add_export of Rz_net.Asn.t * string
  | Drop_export of Rz_net.Asn.t * int
  | As_set_add of string * Rz_net.Asn.t
  | As_set_del of string * Rz_net.Asn.t
  | Route_add of Rz_net.Prefix.t * Rz_net.Asn.t
  | Route_del of Rz_net.Prefix.t * Rz_net.Asn.t

type event =
  | Announce of Rz_bgp.Route.t
  | Withdraw of Rz_net.Prefix.t * Rz_net.Asn.t
      (** (prefix, collector-side peer AS) — the RIB slot to vacate *)
  | Edit of policy_edit

type item = { seq : int; ev : event }
(** A sequenced stream element; journals carry [seq] explicitly so
    reordering and replay gaps are detectable. *)

(** What the generator may target, extracted from a built world by the
    caller (keeps this module independent of the IRR database types). *)
type world_view = {
  base_routes : Rz_bgp.Route.t list;  (** initial RIB candidates *)
  as_sets : string list;              (** editable as-set names *)
  autnums : Rz_net.Asn.t list;        (** editable aut-num ASNs *)
  route_objs : (Rz_net.Prefix.t * Rz_net.Asn.t) list;
      (** existing route objects (deletion / more-specific targets) *)
}

val generate : seed:int -> n:int -> ?edit_rate:float -> world_view -> item list
(** [n] sequenced events, numbered from 1. [edit_rate] (default [0.05])
    is the per-event probability of a policy edit; the rest split
    between announcements (flaps, path changes, more-specifics, fresh
    routes) and withdrawals of live state. Events degrade gracefully on
    a degenerate view (no routes, no aut-nums): impossible choices fall
    back to whatever remains possible. *)

val render : item list -> string
(** Journal text: one [<seq> A|W|E ...] line per event, newline
    terminated. [parse] inverts it. *)

val parse : string -> item list * (int * string) list
(** Parse journal text. Returns accepted items in input order plus
    [(line number, reason)] rejections. Rejected lines — truncated or
    unknown forms, NUL-containing lines, unparsable routes/prefixes/
    ASNs, sequence numbers not strictly above the last accepted one —
    increment [stream.journal_rejected] and never abort the parse. *)

val event_to_string : event -> string
(** Compact rendering (the journal form without the sequence number). *)
