module Rel_db = Rz_asrel.Rel_db
module Gen = Rz_topology.Gen

type route_class = Own | From_customer | From_peer | From_provider

type best = {
  cls : route_class;
  length : int;
  path : Rz_net.Asn.t list;
}

(* Per-destination three-phase computation.

   Phase 1 (uphill): customer-learned routes climb provider edges — a BFS
   from the destination over customer->provider edges yields, per AS, the
   shortest strictly-downhill path to the destination ("customer route").

   Phase 2 (lateral): an AS with a customer route announces it to peers.

   Phase 3 (downhill): every AS announces its best route to customers;
   customers inherit in provider->customer topological order.

   Selection prefers customer > peer > provider, then length, then the
   smaller next-hop path (resolved by deterministic comparison).

   The whole computation runs on a reusable workspace of int-indexed
   arrays — the same shape per destination — so building a full set of
   collector tables is O(destinations x edges) with no rehashing. *)

type workspace = {
  topo : Gen.t;
  index_of : (Rz_net.Asn.t, int) Hashtbl.t;
  providers : int array array;
  customers : int array array;
  peers : int array array;
  topo_order : int array;           (* providers before customers *)
  (* per-destination scratch (reset between runs): *)
  cust_next : int array;            (* next hop of the customer route; -1 = none; self = dest *)
  cust_len : int array;
  peer_next : int array;
  peer_len : int array;
  best_cls : int array;             (* 0 none, 1 own, 2 customer, 3 peer, 4 provider *)
  best_next : int array;
  best_len : int array;
  queue : int Queue.t;
}

let workspace (topo : Gen.t) =
  let n = Array.length topo.ases in
  let index_of = Hashtbl.create (2 * n) in
  Array.iteri (fun i asn -> Hashtbl.replace index_of asn i) topo.ases;
  let idx asn = Hashtbl.find index_of asn in
  let neighbors f =
    Array.map (fun asn -> Array.of_list (List.map idx (f topo.rels asn))) topo.ases
  in
  let providers = neighbors Rel_db.providers in
  let customers = neighbors Rel_db.customers in
  let peers = neighbors Rel_db.peers in
  (* Kahn's algorithm over provider->customer edges *)
  let indegree = Array.map Array.length providers in
  let order = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i order) indegree;
  let topo_order = Array.make n (-1) in
  let filled = ref 0 in
  while not (Queue.is_empty order) do
    let x = Queue.pop order in
    topo_order.(!filled) <- x;
    incr filled;
    Array.iter
      (fun c ->
        indegree.(c) <- indegree.(c) - 1;
        if indegree.(c) = 0 then Queue.add c order)
      customers.(x)
  done;
  { topo;
    index_of;
    providers;
    customers;
    peers;
    topo_order;
    cust_next = Array.make n (-1);
    cust_len = Array.make n max_int;
    peer_next = Array.make n (-1);
    peer_len = Array.make n max_int;
    best_cls = Array.make n 0;
    best_next = Array.make n (-1);
    best_len = Array.make n max_int;
    queue = Queue.create () }

(* Fill the workspace for one destination index. *)
let compute ws dest_i =
  let n = Array.length ws.topo.ases in
  Array.fill ws.cust_next 0 n (-1);
  Array.fill ws.cust_len 0 n max_int;
  Array.fill ws.peer_next 0 n (-1);
  Array.fill ws.peer_len 0 n max_int;
  Array.fill ws.best_cls 0 n 0;
  Array.fill ws.best_next 0 n (-1);
  Array.fill ws.best_len 0 n max_int;
  (* Phase 1: BFS up provider edges (unit weights -> queue order = BFS). *)
  ws.cust_next.(dest_i) <- dest_i;
  ws.cust_len.(dest_i) <- 0;
  Queue.clear ws.queue;
  Queue.add dest_i ws.queue;
  while not (Queue.is_empty ws.queue) do
    let x = Queue.pop ws.queue in
    Array.iter
      (fun prov ->
        if ws.cust_next.(prov) = -1 then begin
          ws.cust_next.(prov) <- x;
          ws.cust_len.(prov) <- ws.cust_len.(x) + 1;
          Queue.add prov ws.queue
        end)
      ws.providers.(x)
  done;
  (* Phase 2: single lateral step over peer edges. *)
  for x = 0 to n - 1 do
    if ws.cust_next.(x) <> -1 then
      Array.iter
        (fun peer ->
          let candidate = ws.cust_len.(x) + 1 in
          if
            candidate < ws.peer_len.(peer)
            || (candidate = ws.peer_len.(peer) && x < ws.peer_next.(peer))
          then begin
            ws.peer_len.(peer) <- candidate;
            ws.peer_next.(peer) <- x
          end)
        ws.peers.(x)
  done;
  (* Phase 3: downhill in topological order. *)
  Array.iter
    (fun x ->
      if x >= 0 then begin
        if ws.cust_next.(x) <> -1 then begin
          ws.best_cls.(x) <- (if x = dest_i then 1 else 2);
          ws.best_next.(x) <- ws.cust_next.(x);
          ws.best_len.(x) <- ws.cust_len.(x)
        end
        else if ws.peer_next.(x) <> -1 then begin
          ws.best_cls.(x) <- 3;
          ws.best_next.(x) <- ws.peer_next.(x);
          ws.best_len.(x) <- ws.peer_len.(x)
        end
        else
          Array.iter
            (fun prov ->
              if ws.best_cls.(prov) <> 0 then begin
                let candidate = ws.best_len.(prov) + 1 in
                if
                  candidate < ws.best_len.(x)
                  || (candidate = ws.best_len.(x) && prov < ws.best_next.(x))
                then begin
                  ws.best_cls.(x) <- 4;
                  ws.best_next.(x) <- prov;
                  ws.best_len.(x) <- candidate
                end
              end)
            ws.providers.(x)
      end)
    ws.topo_order

(* Reconstruct the path of the AS at index [i] after [compute]. Provider
   routes chain through the providers' best routes; peer routes continue
   on the peer's customer route; customer routes follow customer-route
   next hops. *)
let reconstruct ws dest_i i =
  let asn j = ws.topo.ases.(j) in
  let rec follow_customer j acc =
    if j = dest_i then List.rev (asn j :: acc)
    else follow_customer ws.cust_next.(j) (asn j :: acc)
  in
  let rec follow_best j acc =
    if j = dest_i then List.rev (asn j :: acc)
    else
      match ws.best_cls.(j) with
      | 1 | 2 -> List.rev_append acc (follow_customer j [])
      | 3 ->
        let via = ws.peer_next.(j) in
        List.rev_append (asn j :: acc) (follow_customer via [])
      | 4 -> follow_best ws.best_next.(j) (asn j :: acc)
      | _ -> invalid_arg "reconstruct: unreachable AS"
  in
  follow_best i []

let class_of = function
  | 1 -> Own
  | 2 -> From_customer
  | 3 -> From_peer
  | 4 -> From_provider
  | _ -> invalid_arg "class_of"

let best_routes (topo : Gen.t) ~dest =
  let ws = workspace topo in
  let dest_i = Hashtbl.find ws.index_of dest in
  compute ws dest_i;
  let table = Hashtbl.create 256 in
  Array.iteri
    (fun i asn ->
      if ws.best_cls.(i) <> 0 then
        Hashtbl.replace table asn
          { cls = class_of ws.best_cls.(i);
            length = ws.best_len.(i);
            path = reconstruct ws dest_i i })
    topo.ases;
  table

let c_routes = Rz_obs.Obs.Counter.make "routegen.routes_total"

(* Streamed emission: every route of one collector's RIB, in generation
   order, pushed to [f] as it is produced — nothing retained. At paper
   scale (hundreds of millions of collector routes) materializing the
   RIB as a list is the peak-RSS ceiling; [collector_dump] below is a
   thin collect-to-list wrapper over this, so the list and streamed
   paths share one generator (same RNG draws, same order, same dumps). *)
let iter_collector_routes ?(prepend_prob = 0.05) (topo : Gen.t) ~peers f =
  Rz_obs.Obs.Span.with_ "routegen" @@ fun () ->
  let rng = Rz_util.Splitmix.create (topo.params.seed lxor 0x5eed) in
  let ws = workspace topo in
  let peer_is = List.map (fun asn -> Hashtbl.find ws.index_of asn) peers in
  let n = ref 0 in
  Array.iteri
    (fun dest_i dest ->
      let prefixes = Gen.prefixes_of topo dest in
      if prefixes <> [] then begin
        compute ws dest_i;
        List.iter
          (fun peer_i ->
            if ws.best_cls.(peer_i) <> 0 then begin
              let path = reconstruct ws dest_i peer_i in
              List.iter
                (fun prefix ->
                  (* inbound traffic engineering: some origins prepend
                     themselves; verification strips this *)
                  let path =
                    if Rz_util.Splitmix.chance rng prepend_prob then begin
                      let extra = 1 + Rz_util.Splitmix.int rng 2 in
                      path @ List.init extra (fun _ -> dest)
                    end
                    else path
                  in
                  incr n;
                  f (Rz_bgp.Route.make prefix path))
                prefixes
            end)
          peer_is
      end)
    topo.ases;
  Rz_obs.Obs.Counter.add c_routes !n

let collector_dump ?prepend_prob (topo : Gen.t) ~collector ~peers =
  let routes = ref [] in
  iter_collector_routes ?prepend_prob topo ~peers (fun r -> routes := r :: !routes);
  { Rz_bgp.Table_dump.collector; routes = List.rev !routes }

(* Round-robin split of the peers over [synth-rrc00..], identical to
   [collector_dumps]'s bucketing. [f ~collector run] is called once per
   collector; [run emit] generates that collector's routes into [emit]. *)
let iter_collector_dumps ?prepend_prob (topo : Gen.t) ~n_collectors ~peers ~f =
  let n = max 1 n_collectors in
  let buckets = Array.make n [] in
  List.iteri (fun i peer -> buckets.(i mod n) <- peer :: buckets.(i mod n)) peers;
  Array.iteri
    (fun i bucket ->
      f
        ~collector:(Printf.sprintf "synth-rrc%02d" i)
        (fun emit ->
          iter_collector_routes ?prepend_prob topo ~peers:(List.rev bucket) emit))
    buckets

let collector_dumps ?prepend_prob (topo : Gen.t) ~n_collectors ~peers =
  let dumps = ref [] in
  iter_collector_dumps ?prepend_prob topo ~n_collectors ~peers
    ~f:(fun ~collector run ->
      let routes = ref [] in
      run (fun r -> routes := r :: !routes);
      dumps :=
        { Rz_bgp.Table_dump.collector; routes = List.rev !routes } :: !dumps);
  List.rev !dumps

let default_collector_peers (topo : Gen.t) ~n =
  let tier1s =
    Array.to_list topo.ases
    |> List.filter (fun asn -> Gen.tier topo asn = Gen.Tier1)
  in
  let mids =
    Array.to_list topo.ases
    |> List.filter (fun asn -> Gen.tier topo asn = Gen.Mid)
    |> List.sort (fun a b ->
           compare
             (List.length (Rel_db.neighbors topo.rels b))
             (List.length (Rel_db.neighbors topo.rels a)))
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  tier1s @ take n mids
