(* Seeded announce/withdraw/churn event streams and their journal codec.
   See events.mli for the contract. *)

module Asn = Rz_net.Asn
module Prefix = Rz_net.Prefix
module Route = Rz_bgp.Route
module Splitmix = Rz_util.Splitmix
module Obs = Rz_obs.Obs

type policy_edit =
  | Add_import of Asn.t * string
  | Drop_import of Asn.t * int
  | Add_export of Asn.t * string
  | Drop_export of Asn.t * int
  | As_set_add of string * Asn.t
  | As_set_del of string * Asn.t
  | Route_add of Prefix.t * Asn.t
  | Route_del of Prefix.t * Asn.t

type event =
  | Announce of Route.t
  | Withdraw of Prefix.t * Asn.t
  | Edit of policy_edit

type item = { seq : int; ev : event }

type world_view = {
  base_routes : Route.t list;
  as_sets : string list;
  autnums : Asn.t list;
  route_objs : (Prefix.t * Asn.t) list;
}

let c_rejected = Obs.Counter.make "stream.journal_rejected"

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

let peer_of route =
  match route.Route.path with Route.Seq a :: _ -> Some a | _ -> None

(* Routes the generator can mutate: plain-sequence paths with a head. *)
let mutable_route r = (not (Route.contains_as_set r)) && peer_of r <> None

let pick_route rng pool =
  if Array.length pool = 0 then None else Some (Splitmix.choose rng pool)

let more_specific rng (p : Prefix.t) =
  let len = p.Prefix.len and max_len = Prefix.max_len p in
  if len >= max_len then None
  else
    let l = min max_len (len + 1 + Splitmix.int rng 2) in
    match Prefix.subnets p l with
    | [] -> None
    | subs -> Some (Splitmix.choose_list rng subs)

let gen_edit rng view =
  let pick_autnum () = Splitmix.choose_list rng view.autnums in
  let pick_set () = Splitmix.choose_list rng view.as_sets in
  let rule_text direction =
    let peer = pick_autnum () in
    let action, kw = match direction with
      | `Import -> "from", "accept"
      | `Export -> "to", "announce"
    in
    let filter = match Splitmix.int rng 3 with
      | 0 -> "ANY"
      | 1 when view.as_sets <> [] -> pick_set ()
      | _ -> Asn.to_string (pick_autnum ())
    in
    Printf.sprintf "%s %s %s %s" action (Asn.to_string peer) kw filter
  in
  let have_autnums = view.autnums <> [] in
  let have_sets = view.as_sets <> [] in
  let have_routes = view.route_objs <> [] in
  let rec choose () =
    match Splitmix.int rng 8 with
    | 0 when have_autnums -> Add_import (pick_autnum (), rule_text `Import)
    | 1 when have_autnums -> Drop_import (pick_autnum (), Splitmix.int rng 4)
    | 2 when have_autnums -> Add_export (pick_autnum (), rule_text `Export)
    | 3 when have_autnums -> Drop_export (pick_autnum (), Splitmix.int rng 4)
    | 4 when have_sets && have_autnums -> As_set_add (pick_set (), pick_autnum ())
    | 5 when have_sets && have_autnums -> As_set_del (pick_set (), pick_autnum ())
    | 6 when have_routes ->
        let p, o = Splitmix.choose_list rng view.route_objs in
        (match more_specific rng p with
         | Some sub -> Route_add (sub, o)
         | None -> Route_del (p, o))
    | 7 when have_routes ->
        let p, o = Splitmix.choose_list rng view.route_objs in
        Route_del (p, o)
    | _ when have_autnums || have_sets || have_routes -> choose ()
    | _ -> Add_import (0, "from AS0 accept ANY") (* degenerate view *)
  in
  choose ()

let generate ~seed ~n ?(edit_rate = 0.05) view =
  let rng = Splitmix.create seed in
  let live : Route.t array ref =
    ref (Array.of_list (List.filter mutable_route view.base_routes))
  in
  let withdrawn : Route.t list ref = ref [] in
  let announce r = live := Array.append !live [| r |]; Announce r in
  let withdraw_at i =
    let r = !live.(i) in
    let n = Array.length !live in
    let rest = Array.init (n - 1) (fun j -> !live.(if j < i then j else j + 1)) in
    live := rest;
    withdrawn := r :: !withdrawn;
    match peer_of r with
    | Some peer -> Withdraw (r.Route.prefix, peer)
    | None -> assert false
  in
  let gen_announce () =
    (* flap back a withdrawn route, or derive a variant of a live one *)
    match !withdrawn with
    | r :: rest when Splitmix.chance rng 0.4 -> withdrawn := rest; announce r
    | _ ->
        (match pick_route rng !live with
         | None ->
             (match view.base_routes with
              | [] -> Edit (gen_edit rng view)
              | l -> announce (Splitmix.choose_list rng l))
         | Some r ->
             (match Splitmix.int rng 3 with
              | 0 ->
                  (* new more-specific under an existing announcement *)
                  (match more_specific rng r.Route.prefix with
                   | Some sub -> announce { r with Route.prefix = sub }
                   | None -> announce r)
              | 1 ->
                  (* path change: re-announce via a different neighbor *)
                  let path = Route.dedup_path r in
                  (match pick_route rng !live with
                   | Some other when peer_of other <> peer_of r ->
                       let head = Option.get (peer_of other) in
                       announce (Route.make r.Route.prefix (head :: path))
                   | _ -> announce r)
              | _ ->
                  (* refresh (implicit replace of the same RIB slot) *)
                  announce r))
  in
  let gen_one () =
    if Splitmix.chance rng edit_rate
       && (view.autnums <> [] || view.as_sets <> [] || view.route_objs <> [])
    then Edit (gen_edit rng view)
    else if Array.length !live > 0 && Splitmix.chance rng 0.35 then
      withdraw_at (Splitmix.int rng (Array.length !live))
    else gen_announce ()
  in
  List.init n (fun i -> { seq = i + 1; ev = gen_one () })

(* ------------------------------------------------------------------ *)
(* Journal rendering                                                   *)
(* ------------------------------------------------------------------ *)

let edit_to_string = function
  | Add_import (a, text) ->
      Printf.sprintf "E autnum %s add-import %s" (Asn.to_string a) text
  | Drop_import (a, i) ->
      Printf.sprintf "E autnum %s drop-import %d" (Asn.to_string a) i
  | Add_export (a, text) ->
      Printf.sprintf "E autnum %s add-export %s" (Asn.to_string a) text
  | Drop_export (a, i) ->
      Printf.sprintf "E autnum %s drop-export %d" (Asn.to_string a) i
  | As_set_add (s, a) ->
      Printf.sprintf "E as-set %s add %s" s (Asn.to_string a)
  | As_set_del (s, a) ->
      Printf.sprintf "E as-set %s del %s" s (Asn.to_string a)
  | Route_add (p, o) ->
      Printf.sprintf "E route add %s %s" (Prefix.to_string p) (Asn.to_string o)
  | Route_del (p, o) ->
      Printf.sprintf "E route del %s %s" (Prefix.to_string p) (Asn.to_string o)

let event_to_string = function
  | Announce r -> "A " ^ Route.to_line r
  | Withdraw (p, peer) ->
      Printf.sprintf "W %s|%s" (Prefix.to_string p) (Asn.to_string peer)
  | Edit e -> edit_to_string e

let render items =
  let buf = Buffer.create (64 * List.length items) in
  List.iter
    (fun { seq; ev } ->
      Buffer.add_string buf (string_of_int seq);
      Buffer.add_char buf ' ';
      Buffer.add_string buf (event_to_string ev);
      Buffer.add_char buf '\n')
    items;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Journal parsing (hardened)                                          *)
(* ------------------------------------------------------------------ *)

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

(* First [n] whitespace tokens of [s] plus the untokenized remainder
   (rule text keeps its internal spacing). *)
let take_tokens n s =
  let len = String.length s in
  let rec skip i = if i < len && s.[i] = ' ' then skip (i + 1) else i in
  let rec go acc k i =
    if k = 0 then Some (List.rev acc, String.sub s i (len - i))
    else
      let i = skip i in
      if i >= len then None
      else
        let j = try String.index_from s i ' ' with Not_found -> len in
        go (String.sub s i (j - i) :: acc) (k - 1) j
  in
  go [] n 0

let parse_edit rest =
  match take_tokens 3 rest with
  | Some ([ "autnum"; asn; verb ], tail) -> (
      match Asn.of_string asn with
      | Error e -> Error ("bad asn: " ^ e)
      | Ok a -> (
          let tail = String.trim tail in
          match verb with
          | "add-import" | "add-export" ->
              if tail = "" then Error "missing rule text"
              else if verb = "add-import" then Ok (Add_import (a, tail))
              else Ok (Add_export (a, tail))
          | "drop-import" | "drop-export" -> (
              match int_of_string_opt tail with
              | Some i when i >= 0 ->
                  if verb = "drop-import" then Ok (Drop_import (a, i))
                  else Ok (Drop_export (a, i))
              | _ -> Error "bad rule index")
          | _ -> Error ("unknown autnum edit: " ^ verb)))
  | Some ([ "as-set"; name; verb ], tail) -> (
      match split_ws tail with
      | [ asn ] -> (
          match Asn.of_string asn with
          | Error e -> Error ("bad asn: " ^ e)
          | Ok a -> (
              match verb with
              | "add" -> Ok (As_set_add (name, a))
              | "del" -> Ok (As_set_del (name, a))
              | _ -> Error ("unknown as-set edit: " ^ verb)))
      | _ -> Error "as-set edit wants exactly one asn")
  | Some ([ "route"; verb; pfx ], tail) -> (
      match split_ws tail with
      | [ asn ] -> (
          match (Prefix.of_string pfx, Asn.of_string asn) with
          | Ok p, Ok a -> (
              match verb with
              | "add" -> Ok (Route_add (p, a))
              | "del" -> Ok (Route_del (p, a))
              | _ -> Error ("unknown route edit: " ^ verb))
          | Error e, _ | _, Error e -> Error e)
      | _ -> Error "route edit wants prefix and asn")
  | _ -> Error "truncated edit"

let parse_event kind rest =
  match kind with
  | "A" -> (
      match Route.of_line (String.trim rest) with
      | Ok r when peer_of r <> None -> Ok (Announce r)
      | Ok _ -> Error "announce without a peer head"
      | Error e -> Error e)
  | "W" -> (
      match String.split_on_char '|' (String.trim rest) with
      | [ pfx; asn ] -> (
          match (Prefix.of_string pfx, Asn.of_string asn) with
          | Ok p, Ok a -> Ok (Withdraw (p, a))
          | Error e, _ | _, Error e -> Error e)
      | _ -> Error "withdraw wants prefix|peer")
  | "E" -> (
      match parse_edit (String.trim rest) with
      | Ok e -> Ok (Edit e)
      | Error e -> Error e)
  | k -> Error ("unknown event kind: " ^ k)

let parse text =
  let items = ref [] and errors = ref [] in
  let last_seq = ref 0 in
  let reject lineno reason =
    Obs.Counter.incr c_rejected;
    errors := (lineno, reason) :: !errors
  in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line = "" then ()
      else if String.contains line '\000' then reject lineno "NUL byte"
      else
        match take_tokens 2 line with
        | None -> reject lineno "truncated line"
        | Some ([ seq_s; kind ], rest) -> (
            match int_of_string_opt seq_s with
            | None -> reject lineno "bad sequence number"
            | Some seq when seq <= !last_seq ->
                reject lineno
                  (Printf.sprintf "out-of-order sequence %d after %d" seq
                     !last_seq)
            | Some seq -> (
                match parse_event kind rest with
                | Ok ev ->
                    last_seq := seq;
                    items := { seq; ev } :: !items
                | Error e -> reject lineno e))
        | Some _ -> reject lineno "truncated line")
    lines;
  (List.rev !items, List.rev !errors)
