let recommended () =
  match Sys.getenv_opt "RPSLYZER_DOMAINS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()
