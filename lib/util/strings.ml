(* ASCII case folding, alloc-free on the (dominant) already-folded case:
   attribute keys are lowercase after the reader, set names are usually
   uppercase on the wire. Semantics are exactly
   [String.lowercase_ascii]/[uppercase_ascii] — only 'A'..'Z'/'a'..'z'
   fold; returning the argument itself is safe because strings are
   immutable. *)
let lower_char c = if c >= 'A' && c <= 'Z' then Char.unsafe_chr (Char.code c + 32) else c

let lowercase s =
  let n = String.length s in
  let rec clean i = i >= n || (not (String.unsafe_get s i >= 'A' && String.unsafe_get s i <= 'Z') && clean (i + 1)) in
  if clean 0 then s else String.lowercase_ascii s

let uppercase s =
  let n = String.length s in
  let rec clean i = i >= n || (not (String.unsafe_get s i >= 'a' && String.unsafe_get s i <= 'z') && clean (i + 1)) in
  if clean 0 then s else String.uppercase_ascii s

let is_space c = c = ' ' || c = '\t' || c = '\r' || c = '\n'

let strip s =
  let n = String.length s in
  let i = ref 0 in
  while !i < n && is_space s.[!i] do incr i done;
  let j = ref (n - 1) in
  while !j >= !i && is_space s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

let split_on_string ~sep s =
  if sep = "" then invalid_arg "split_on_string: empty separator";
  let seplen = String.length sep in
  let rec go start acc =
    match
      (* Find next occurrence of sep at or after start. *)
      let limit = String.length s - seplen in
      let rec find i =
        if i > limit then None
        else if String.sub s i seplen = sep then Some i
        else find (i + 1)
      in
      find start
    with
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
    | Some i -> go (i + seplen) (String.sub s start (i - start) :: acc)
  in
  go 0 []

let starts_with_ci ~prefix s =
  let np = String.length prefix in
  String.length s >= np
  && (let rec go i =
        i >= np
        || (lower_char (String.unsafe_get s i) = lower_char (String.unsafe_get prefix i)
            && go (i + 1))
      in
      go 0)

let equal_ci a b =
  let n = String.length a in
  String.length b = n
  && (let rec go i =
        i >= n
        || (lower_char (String.unsafe_get a i) = lower_char (String.unsafe_get b i)
            && go (i + 1))
      in
      go 0)
let is_blank s = String.for_all is_space s

let split_words s =
  String.split_on_char ' ' (String.map (fun c -> if is_space c then ' ' else c) s)
  |> List.filter (fun w -> w <> "")

let chop_comment c s =
  match String.index_opt s c with
  | None -> s
  | Some i -> String.sub s 0 i

let concat_map_lines f s =
  String.split_on_char '\n' s
  |> List.filter_map f
  |> String.concat "\n"
