(** Domain-count policy for the parallel paths.

    [recommended ()] is [Domain.recommended_domain_count ()] unless the
    [RPSLYZER_DOMAINS] environment variable holds a positive integer, in
    which case that wins — the single knob that pins worker counts for
    reproducible runs (CI, benches, differential tests) without touching
    every call site. Malformed or non-positive values are ignored. *)

val recommended : unit -> int
