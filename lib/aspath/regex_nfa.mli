(** Thompson-NFA evaluation of AS-path regexes — the paper's symbolic
    formulation made polynomial: AS tokens become the NFA alphabet, each
    observed ASN is mapped to the {e set} of tokens it matches, and the
    subset simulation advances over those sets. Equivalent accept/reject
    behaviour to {!Regex_match.matches} (a qcheck differential property
    enforces it) with worst-case cost O(path · states) regardless of the
    pattern — immune to the backtracking matcher's pathological cases.

    The same-pattern operators [~*]/[~+] need one extra register (the
    pinned ASN) and are handled by running the containing repetition as an
    anchored sub-simulation. *)

type t
(** A compiled matcher. *)

val default_max_states : int
(** Default state budget ([10_000]) — far above any regex observed in real
    IRR dumps, far below what a repetition bomb requests. *)

val compile : ?max_states:int -> Regex_ast.t -> t
(** Compile, refusing patterns whose {!Regex_ast.state_estimate} exceeds
    [max_states]. A refused pattern yields a {e capped} matcher that
    matches nothing (conservative abstain — it can never claim Verified)
    and increments the [nfa.capped] counter; no state is allocated, so a
    hostile [{m,n}] bomb costs O(pattern text), not O(expansion). *)

val is_capped : t -> bool
(** Whether the state budget was exceeded at compile time. *)

val matches : ?env:Regex_match.env -> t -> Rz_net.Asn.t array -> bool
(** Unanchored search, like {!Regex_match.matches}. Always [false] on a
    capped matcher. *)

val state_count : t -> int
(** Number of NFA states (for tests and the bench report); 0 when capped. *)

(** Compile-once cache: hashconses regex ASTs so each distinct pattern is
    compiled a single time per cache (the verification engine keeps one
    per engine instance instead of recompiling per route). The
    {!state_estimate} cap is decided at compile time inside the cache, so
    a hostile pattern is refused once, not per evaluation. Not
    domain-safe — give each domain its own cache, like each domain gets
    its own engine. *)
module Cache : sig
  type cache

  val create : ?max_states:int -> unit -> cache
  (** [max_states] defaults to {!default_max_states}. *)

  val get : cache -> Regex_ast.t -> t
  (** Look up (incrementing [nfa.compile_hits]) or compile-and-memoize. *)

  val size : cache -> int
  (** Number of distinct patterns compiled so far. *)

  val remove : cache -> Regex_ast.t -> unit
  (** Evict one pattern. The cache is a pure memo (recompiling is always
      semantically safe), so eviction exists for bounded memory under
      policy churn, not correctness: the streaming engine drops patterns
      whose owning aut-num rules were edited away. No-op when absent. *)
end
