type term =
  | Asn of Rz_net.Asn.t
  | Asn_range of Rz_net.Asn.t * Rz_net.Asn.t
  | As_set of string
  | Peer_as
  | Wildcard
  | Class of bool * term list

type t =
  | Empty
  | Term of term
  | Bol
  | Eol
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t
  | Repeat of t * int * int option
  | Tilde_star of term
  | Tilde_plus of term

let rec term_to_string = function
  | Asn n -> Rz_net.Asn.to_string n
  | Asn_range (lo, hi) ->
    Printf.sprintf "%s-%s" (Rz_net.Asn.to_string lo) (Rz_net.Asn.to_string hi)
  | As_set name -> name
  | Peer_as -> "PeerAS"
  | Wildcard -> "."
  | Class (negated, terms) ->
    Printf.sprintf "[%s%s]" (if negated then "^" else "")
      (String.concat " " (List.map term_to_string terms))

let rec to_string = function
  | Empty -> ""
  | Term t -> term_to_string t
  | Bol -> "^"
  | Eol -> "$"
  | Seq (a, b) ->
    let sa = to_string a and sb = to_string b in
    if sa = "" then sb else if sb = "" then sa else sa ^ " " ^ sb
  | Alt (a, b) -> Printf.sprintf "(%s | %s)" (to_string a) (to_string b)
  | Star t -> atom_string t ^ "*"
  | Plus t -> atom_string t ^ "+"
  | Opt t -> atom_string t ^ "?"
  | Repeat (t, m, None) -> Printf.sprintf "%s{%d,}" (atom_string t) m
  | Repeat (t, m, Some n) ->
    if m = n then Printf.sprintf "%s{%d}" (atom_string t) m
    else Printf.sprintf "%s{%d,%d}" (atom_string t) m n
  | Tilde_star t -> term_to_string t ^ "~*"
  | Tilde_plus t -> term_to_string t ^ "~+"

and atom_string t =
  match t with
  | Term _ | Bol | Eol | Empty -> to_string t
  | _ -> "(" ^ to_string t ^ ")"

(* Saturating estimate of the Thompson-NFA state count {!Regex_nfa.compile}
   would allocate. Repeat nodes multiply: [{m,n}] expands to n copies of the
   inner automaton, so hostile regexes like [AS1{500000}] or nested
   repetitions can request exponentially many states from linear text. The
   estimate is computed on the un-expanded AST (always small), so callers
   can refuse pathological patterns before any allocation happens. *)
let state_estimate ast =
  let cap = max_int / 4 in
  let sat a b = if a >= cap - b then cap else a + b in
  let satmul a b = if a <> 0 && b >= cap / a then cap else a * b in
  let rec go = function
    | Empty -> 1
    | Bol | Eol | Term _ | Tilde_star _ | Tilde_plus _ -> 2
    | Seq (a, b) -> sat (go a) (go b)
    | Alt (a, b) -> sat 2 (sat (go a) (go b))
    | Star inner | Opt inner -> sat 2 (go inner)
    | Plus inner -> sat 2 (satmul 2 (go inner))
    | Repeat (inner, m, bound) ->
      let per_copy = sat 2 (go inner) in
      let copies = match bound with None -> max 1 m + 1 | Some n -> max 1 (max m n) in
      sat 2 (satmul copies per_copy)
  in
  go ast

let term_uses_future_work = function
  | Asn_range _ -> true
  | Class (_, terms) -> List.exists (function Asn_range _ -> true | _ -> false) terms
  | Asn _ | As_set _ | Peer_as | Wildcard -> false

let rec uses_future_work_features = function
  | Empty | Bol | Eol -> false
  | Term t -> term_uses_future_work t
  | Seq (a, b) | Alt (a, b) -> uses_future_work_features a || uses_future_work_features b
  | Star t | Plus t | Opt t | Repeat (t, _, _) -> uses_future_work_features t
  | Tilde_star _ | Tilde_plus _ -> true
