(** Abstract syntax of RPSL AS-path regular expressions (RFC 2622 §5.4),
    as written between [<] and [>] in filters, e.g. [<^AS13911 AS6327+$>].

    One path element (an ASN in the observed AS-path) is matched by a
    {!term}; the paper calls these "AS tokens". The extensions the paper
    lists as future work — ASN ranges and the same-pattern operators [~*]
    and [~+] — are part of the AST and fully supported by the matcher. *)

type term =
  | Asn of Rz_net.Asn.t              (** a literal ASN *)
  | Asn_range of Rz_net.Asn.t * Rz_net.Asn.t  (** [AS64496-AS64511] *)
  | As_set of string                 (** an as-set name; membership resolved via the environment *)
  | Peer_as                          (** the [PeerAS] keyword, bound per BGP session *)
  | Wildcard                         (** [.] — any ASN *)
  | Class of bool * term list        (** [\[...\]] set of terms; [true] = negated [\[^...\]] *)

type t =
  | Empty                            (** matches the empty sequence *)
  | Term of term
  | Bol                              (** [^] — beginning of path *)
  | Eol                              (** [$] — end of path *)
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t
  | Repeat of t * int * int option   (** [{m,n}]; [None] = unbounded *)
  | Tilde_star of term               (** [~*]: zero or more of the {e same} ASN *)
  | Tilde_plus of term               (** [~+]: one or more of the {e same} ASN *)

val to_string : t -> string
(** Render back to RPSL syntax (without the surrounding [< >]). *)

val term_to_string : term -> string

val state_estimate : t -> int
(** Saturating upper bound on the number of NFA states {!Regex_nfa.compile}
    would build for this AST. Cheap (proportional to the written regex, not
    its expansion), so callers can reject pathological repetition bombs —
    e.g. [AS1{500000,900000}] — before compiling or matching. *)

val uses_future_work_features : t -> bool
(** True when the regex contains ASN ranges or [~]-operators — the 58
    rules the paper {e skips}; this implementation handles them, but the
    [paper_compat] verification mode uses this predicate to reproduce the
    paper's Skip counts. *)
