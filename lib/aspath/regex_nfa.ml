open Regex_ast

(* NFA edges: epsilon, a single AS token, an anchor, or a pinned
   same-ASN run (the ~ operators, which consume 0..n or 1..n copies of
   one identical ASN matching the token). *)
type edge =
  | Eps of int
  | Tok of term * int
  | Anchor_bol of int
  | Anchor_eol of int
  | Tilde of term * bool * int  (* term, at_least_one, target *)

type t = {
  edges : edge list array;  (* state -> outgoing edges *)
  start : int;
  accept : int;
  capped : bool;            (* state budget exceeded; matches nothing *)
}

(* Hostile-input bound: a {m,n} repetition bomb (the paper's Section-4
   pathological policies) would otherwise expand to millions of states —
   and the expansion itself recurses over a left-nested Seq spine that
   deep enough input turns into a stack overflow. Patterns whose estimated
   state count exceeds the cap are not compiled at all: the resulting
   matcher abstains (rejects everything), which keeps verification
   conservative — a capped filter can never produce Verified. *)
let default_max_states = 10_000

let c_capped = Rz_obs.Obs.Counter.make "nfa.capped"

let is_capped t = t.capped

let compile_uncapped ast =
  let edges = ref [] and next = ref 0 in
  let fresh () =
    let s = !next in
    incr next;
    s
  in
  let add state edge = edges := (state, edge) :: !edges in
  (* returns (entry, exit) *)
  let rec build = function
    | Empty ->
      let s = fresh () in
      (s, s)
    | Bol ->
      let s = fresh () and e = fresh () in
      add s (Anchor_bol e);
      (s, e)
    | Eol ->
      let s = fresh () and e = fresh () in
      add s (Anchor_eol e);
      (s, e)
    | Term term ->
      let s = fresh () and e = fresh () in
      add s (Tok (term, e));
      (s, e)
    | Seq (a, b) ->
      let sa, ea = build a in
      let sb, eb = build b in
      add ea (Eps sb);
      (sa, eb)
    | Alt (a, b) ->
      let s = fresh () and e = fresh () in
      let sa, ea = build a in
      let sb, eb = build b in
      add s (Eps sa);
      add s (Eps sb);
      add ea (Eps e);
      add eb (Eps e);
      (s, e)
    | Star inner ->
      let s = fresh () and e = fresh () in
      let si, ei = build inner in
      add s (Eps si);
      add s (Eps e);
      add ei (Eps si);
      add ei (Eps e);
      (s, e)
    | Plus inner -> build (Seq (inner, Star inner))
    | Opt inner -> build (Alt (inner, Empty))
    | Repeat (inner, m, bound) ->
      let required = List.init m (fun _ -> inner) in
      let optional =
        match bound with
        | None -> [ Star inner ]
        | Some n -> List.init (max 0 (n - m)) (fun _ -> Opt inner)
      in
      let seq =
        match required @ optional with
        | [] -> Empty
        | first :: rest -> List.fold_left (fun acc x -> Seq (acc, x)) first rest
      in
      build seq
    | Tilde_star term ->
      let s = fresh () and e = fresh () in
      add s (Tilde (term, false, e));
      (s, e)
    | Tilde_plus term ->
      let s = fresh () and e = fresh () in
      add s (Tilde (term, true, e));
      (s, e)
  in
  let start, exit_state = build ast in
  let accept = fresh () in
  add exit_state (Eps accept);
  let arr = Array.make !next [] in
  List.iter (fun (state, edge) -> arr.(state) <- edge :: arr.(state)) !edges;
  { edges = arr; start; accept; capped = false }

let compile ?(max_states = default_max_states) ast =
  if Regex_ast.state_estimate ast > max_states then begin
    Rz_obs.Obs.Counter.incr c_capped;
    { edges = [||]; start = 0; accept = -1; capped = true }
  end
  else compile_uncapped ast

let state_count t = Array.length t.edges

module Cache = struct
  (* ASTs are pure structural data (no closures, no cycles), so the
     polymorphic hash/equality of the generic Hashtbl hashcons them
     correctly: two textually identical patterns share one compiled
     matcher. The cap decision happens inside [compile] exactly once per
     distinct pattern, so [nfa.capped] records refusals per pattern, not
     per evaluation. *)
  type cache = { tbl : (Regex_ast.t, t) Hashtbl.t; max_states : int }

  let c_compile_hits = Rz_obs.Obs.Counter.make "nfa.compile_hits"

  let create ?(max_states = default_max_states) () =
    { tbl = Hashtbl.create 64; max_states }

  let get cache ast =
    match Hashtbl.find_opt cache.tbl ast with
    | Some nfa ->
      Rz_obs.Obs.Counter.incr c_compile_hits;
      nfa
    | None ->
      let nfa = compile ~max_states:cache.max_states ast in
      Hashtbl.replace cache.tbl ast nfa;
      nfa

  let size cache = Hashtbl.length cache.tbl

  let remove cache ast = Hashtbl.remove cache.tbl ast
end

(* Subset simulation. States are tracked together with anchor context:
   whether the run may still claim position-0 start. We simulate once per
   possible start offset to keep anchors simple (paths are short). Tilde
   edges are expanded eagerly per position: from position i they can jump
   to any j >= i (or > i when at_least_one) such that path.(i..j-1) are
   all the same ASN matching the term — so they produce (state, position)
   pairs beyond the uniform frontier, which the worklist handles. *)
let matches ?(env = Regex_match.default_env) t path =
  if t.capped then false
  else
  let n = Array.length path in
  let run start_pos =
    (* reachable: set of (state, position) *)
    let seen = Hashtbl.create 64 in
    let queue = Queue.create () in
    let push state pos =
      if not (Hashtbl.mem seen (state, pos)) then begin
        Hashtbl.replace seen (state, pos) ();
        Queue.add (state, pos) queue
      end
    in
    push t.start start_pos;
    let accepted = ref false in
    while not (Queue.is_empty queue) do
      let state, pos = Queue.pop queue in
      if state = t.accept then accepted := true
      else
        List.iter
          (fun edge ->
            match edge with
            | Eps target -> push target pos
            | Anchor_bol target -> if pos = 0 then push target pos
            | Anchor_eol target -> if pos = n then push target pos
            | Tok (term, target) ->
              if pos < n && Regex_match.term_matches env term path.(pos) then
                push target (pos + 1)
            | Tilde (term, at_least_one, target) ->
              if not at_least_one then push target pos;
              if pos < n && Regex_match.term_matches env term path.(pos) then begin
                let pinned = path.(pos) in
                let j = ref (pos + 1) in
                push target !j;
                while !j < n && path.(!j) = pinned do
                  incr j;
                  push target !j
                done
              end)
          t.edges.(state)
    done;
    !accepted
  in
  let rec from i = (i <= n && run i) || (i < n && from (i + 1)) in
  from 0
