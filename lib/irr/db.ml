module Asn_set = Set.Make (Int)

let canon = Rz_rpsl.Set_name.canonical

(* Observability: index-build volume and memo-table effectiveness. The
   hit/miss pair only tracks top-level flattening calls (recursive
   descents inside one flatten are part of the same miss). *)
let c_trie_inserts = Rz_obs.Obs.Counter.make "irr.trie_inserts_total"
let c_as_flat_hits = Rz_obs.Obs.Counter.make "irr.as_flat.hits"
let c_as_flat_misses = Rz_obs.Obs.Counter.make "irr.as_flat.misses"
let c_rs_flat_hits = Rz_obs.Obs.Counter.make "irr.rs_flat.hits"
let c_rs_flat_misses = Rz_obs.Obs.Counter.make "irr.rs_flat.misses"
let c_flatten_truncated = Rz_obs.Obs.Counter.make "flatten.truncated"

(* Hostile-input bounds on recursive set resolution. Registry data is
   adversarial: a chain of 10^6 nested as-sets (or a handful of sets whose
   cross-products duplicate members combinatorially) would otherwise turn
   flattening into a stack overflow or an O(depth^2) [List.mem] crawl. The
   paper's characterization puts real nesting depth in single digits
   (depth >= 5 is already flagged as an anomaly), so the caps below are
   generous for legitimate data and tight against bombs. A capped flatten
   returns the partial result gathered so far and records a truncation
   marker — verification stays conservative (missing members can only
   move routes toward Unverified, never fabricate a Verified). *)
let max_flatten_depth = 64
let max_flatten_work = 10_000
let max_route_set_members = 200_000

type t = {
  ir : Rz_ir.Ir.t;
  route_trie : Rz_net.Asn.t Rz_net.Prefix_trie.t;
  by_origin : (Rz_net.Asn.t, Rz_net.Prefix.t list) Hashtbl.t;
  (* Indirect members via member-of, grouped by target set (canonical). *)
  indirect_as_members : (string, Rz_net.Asn.t list) Hashtbl.t;
  indirect_route_members : (string, (Rz_net.Prefix.t * Rz_net.Range_op.t) list) Hashtbl.t;
  (* Memo tables. *)
  as_flat : (string, Asn_set.t) Hashtbl.t;
  rs_flat : (string, (Rz_net.Prefix.t * Rz_net.Range_op.t) list) Hashtbl.t;
  as_depth : (string, int) Hashtbl.t;
  as_loop : (string, bool) Hashtbl.t;
  (* Canonical names of sets whose flattening hit a bound above. Written
     only while memo tables are being filled (i.e. before [warm_caches]
     completes), so reads after warming are safe across domains. *)
  flatten_trunc : (string, unit) Hashtbl.t;
}

let mark_truncated t key =
  if not (Hashtbl.mem t.flatten_trunc key) then begin
    Hashtbl.replace t.flatten_trunc key ();
    Rz_obs.Obs.Counter.incr c_flatten_truncated
  end

let flatten_truncated t name = Hashtbl.mem t.flatten_trunc (canon name)

let truncated_sets t =
  List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) t.flatten_trunc [])

let ir t = t.ir

let priority_order =
  [ "APNIC"; "AFRINIC"; "ARIN"; "LACNIC"; "RIPE"; "IDNIC"; "JPIRR"; "RADB";
    "NTTCOM"; "LEVEL3"; "TC"; "REACH"; "ALTDB" ]

(* mbrs-by-ref authorizes indirect membership when it lists one of the
   member object's maintainers, or the keyword ANY. *)
let mbrs_by_ref_allows (set_mbrs : string list) (member_mnt : string list) =
  List.exists
    (fun m ->
      Rz_util.Strings.equal_ci m "ANY"
      || List.exists (Rz_util.Strings.equal_ci m) member_mnt)
    set_mbrs

let build (ir : Rz_ir.Ir.t) =
  Rz_obs.Obs.Span.with_ "db-build" (fun () ->
  let route_trie = Rz_net.Prefix_trie.create () in
  let by_origin = Hashtbl.create 1024 in
  (* newest-first iteration with prepends preserves the grouping order
     the reversed-cons-list representation produced *)
  Rz_ir.Ir.iter_routes_rev ir
    (fun (r : Rz_ir.Ir.route_obj) ->
      Rz_net.Prefix_trie.add route_trie r.prefix r.origin;
      Rz_obs.Obs.Counter.incr c_trie_inserts;
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_origin r.origin) in
      Hashtbl.replace by_origin r.origin (r.prefix :: existing));
  (* aut-num member-of -> as-set indirect members (when authorized) *)
  let indirect_as_members = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ (an : Rz_ir.Ir.aut_num) ->
      List.iter
        (fun set_name ->
          let key = canon set_name in
          match Hashtbl.find_opt ir.as_sets key with
          | Some set when mbrs_by_ref_allows set.mbrs_by_ref an.mnt_by ->
            let existing =
              Option.value ~default:[] (Hashtbl.find_opt indirect_as_members key)
            in
            Hashtbl.replace indirect_as_members key (an.asn :: existing)
          | _ -> ())
        an.member_of)
    ir.aut_nums;
  (* route member-of -> route-set indirect members *)
  let indirect_route_members = Hashtbl.create 64 in
  Rz_ir.Ir.iter_routes_rev ir
    (fun (r : Rz_ir.Ir.route_obj) ->
      match r.member_of_ids with
      | [] -> ()
      | _ ->
        List.iter
          (fun set_name ->
            let key = canon set_name in
            match Hashtbl.find_opt ir.route_sets key with
            | Some set
              when mbrs_by_ref_allows set.mbrs_by_ref (Rz_ir.Ir.route_mnt_by ir r) ->
              let existing =
                Option.value ~default:[] (Hashtbl.find_opt indirect_route_members key)
              in
              Hashtbl.replace indirect_route_members key
                ((r.prefix, Rz_net.Range_op.None_) :: existing)
            | _ -> ())
          (Rz_ir.Ir.route_member_of ir r));
  { ir;
    route_trie;
    by_origin;
    indirect_as_members;
    indirect_route_members;
    as_flat = Hashtbl.create 256;
    rs_flat = Hashtbl.create 64;
    as_depth = Hashtbl.create 256;
    as_loop = Hashtbl.create 256;
    flatten_trunc = Hashtbl.create 16 })

let of_dumps dumps =
  let ir = Rz_ir.Ir.create () in
  List.iter (fun (source, text) -> ignore (Rz_ir.Lower.add_dump ir ~source text)) dumps;
  build ir

(* ---------------- as-set flattening ---------------- *)

let as_set_exists t name = Hashtbl.mem t.ir.as_sets (canon name)

let flatten_as_set t name =
  let top_key = canon name in
  let work = ref 0 in
  let rec go key visiting depth =
    match Hashtbl.find_opt t.as_flat key with
    | Some cached -> cached
    | None ->
      if depth > max_flatten_depth || !work > max_flatten_work then begin
        (* Bound hit: stop descending; the partial union built by the
           ancestors is still returned, marked truncated at the root. *)
        mark_truncated t top_key;
        Asn_set.empty
      end
      else if List.mem key visiting then Asn_set.empty (* cycle cut; no memo here *)
      else begin
        incr work;
        match Hashtbl.find_opt t.ir.as_sets key with
        | None -> Asn_set.empty
        | Some set ->
          let direct = Asn_set.of_list set.member_asns in
          let indirect =
            Asn_set.of_list
              (Option.value ~default:[] (Hashtbl.find_opt t.indirect_as_members key))
          in
          let nested =
            List.fold_left
              (fun acc child ->
                Asn_set.union acc (go (canon child) (key :: visiting) (depth + 1)))
              Asn_set.empty set.member_sets
          in
          let result = Asn_set.union (Asn_set.union direct indirect) nested in
          (* Only memoize at the top of the recursion stack; results under
             a cycle cut can be partial for inner nodes. *)
          if visiting = [] then Hashtbl.replace t.as_flat key result;
          result
      end
  in
  if Rz_obs.Obs.enabled () then
    Rz_obs.Obs.Counter.incr
      (if Hashtbl.mem t.as_flat top_key then c_as_flat_hits else c_as_flat_misses);
  go top_key [] 0

let asn_in_as_set t name asn = Asn_set.mem asn (flatten_as_set t name)

let as_set_depth t name =
  let top_key = canon name in
  let rec go key visiting depth =
    match Hashtbl.find_opt t.as_depth key with
    | Some cached -> cached
    | None ->
      if depth > max_flatten_depth then begin
        (* Saturate: the reported depth tops out at the cap, which still
           trips every depth >= k characterization threshold we use. *)
        mark_truncated t top_key;
        0
      end
      else if List.mem key visiting then 0
      else begin
        match Hashtbl.find_opt t.ir.as_sets key with
        | None -> 0
        | Some set ->
          let child_depth =
            List.fold_left
              (fun acc child -> max acc (go (canon child) (key :: visiting) (depth + 1)))
              0 set.member_sets
          in
          let result = 1 + child_depth in
          if visiting = [] then Hashtbl.replace t.as_depth key result;
          result
      end
  in
  go top_key [] 0

let as_set_has_loop t name =
  let top_key = canon name in
  let rec go key visiting depth =
    match Hashtbl.find_opt t.as_loop key with
    | Some cached -> cached
    | None ->
      if depth > max_flatten_depth then begin
        (* Abstain past the cap: report no loop rather than guess. *)
        mark_truncated t top_key;
        false
      end
      else if List.mem key visiting then true
      else begin
        match Hashtbl.find_opt t.ir.as_sets key with
        | None -> false
        | Some set ->
          let result =
            List.exists
              (fun child -> go (canon child) (key :: visiting) (depth + 1))
              set.member_sets
          in
          if visiting = [] then Hashtbl.replace t.as_loop key result;
          result
      end
  in
  go top_key [] 0

(* ---------------- route-object queries ---------------- *)

let covering_routes t observed = Rz_net.Prefix_trie.covering t.route_trie observed
let origin_prefixes t asn = Option.value ~default:[] (Hashtbl.find_opt t.by_origin asn)
let origin_has_routes t asn = Hashtbl.mem t.by_origin asn
let exact_origins t prefix = Rz_net.Prefix_trie.exact t.route_trie prefix

(* ---------------- route-set flattening ---------------- *)

let route_set_exists t name = Hashtbl.mem t.ir.route_sets (canon name)

let take_at_most n lst =
  let rec loop acc n = function
    | [] -> List.rev acc
    | _ when n = 0 -> List.rev acc
    | x :: rest -> loop (x :: acc) (n - 1) rest
  in
  loop [] n lst

let flatten_route_set t name =
  let top_key = canon name in
  let work = ref 0 in
  let rec go key visiting depth =
    match Hashtbl.find_opt t.rs_flat key with
    | Some cached -> cached
    | None ->
      if depth > max_flatten_depth || !work > max_flatten_work then begin
        mark_truncated t top_key;
        []
      end
      else if List.mem key visiting then []
      else begin
        incr work;
        match Hashtbl.find_opt t.ir.route_sets key with
        | None ->
          (* A route-set member may also name an as-set (RFC 2622 allows
             as-sets inside route-set members): handled by the caller via
             Rs_set resolution below. *)
          []
        | Some set ->
          let resolve = function
            | Rz_ir.Ir.Rs_prefix (p, op) -> [ (p, op) ]
            | Rz_ir.Ir.Rs_asn (asn, op) ->
              List.map (fun p -> (p, op)) (origin_prefixes t asn)
            | Rz_ir.Ir.Rs_set (child, op) ->
              let child_key = canon child in
              let base =
                if Hashtbl.mem t.ir.route_sets child_key then
                  go child_key (key :: visiting) (depth + 1)
                else
                  (* as-set member: prefixes of its flattened ASNs *)
                  Asn_set.fold
                    (fun asn acc ->
                      List.rev_append
                        (List.map (fun p -> (p, Rz_net.Range_op.None_)) (origin_prefixes t asn))
                        acc)
                    (flatten_as_set t child) []
              in
              List.map (fun (p, inner) -> (p, Rz_net.Range_op.compose op inner)) base
          in
          let direct = List.concat_map resolve set.members in
          let indirect =
            Option.value ~default:[] (Hashtbl.find_opt t.indirect_route_members key)
          in
          let result = direct @ indirect in
          let result =
            (* Member-count bound: duplication bombs (the same large set
               referenced from many members) multiply the flattened list,
               not the object count, so cap the materialized result. *)
            if List.length result > max_route_set_members then begin
              mark_truncated t top_key;
              take_at_most max_route_set_members result
            end
            else result
          in
          if visiting = [] then Hashtbl.replace t.rs_flat key result;
          result
      end
  in
  if Rz_obs.Obs.enabled () then
    Rz_obs.Obs.Counter.incr
      (if Hashtbl.mem t.rs_flat top_key then c_rs_flat_hits else c_rs_flat_misses);
  go top_key [] 0

let warm_caches t =
  Hashtbl.iter
    (fun _ (s : Rz_ir.Ir.as_set) ->
      ignore (flatten_as_set t s.name);
      ignore (as_set_depth t s.name);
      ignore (as_set_has_loop t s.name))
    t.ir.as_sets;
  Hashtbl.iter
    (fun _ (s : Rz_ir.Ir.route_set) -> ignore (flatten_route_set t s.name))
    t.ir.route_sets

(* ---------------- set reference graph ---------------- *)

(* Direct set-to-set references of one named set object, across every set
   class sharing the canonical name space: as-set member sets, route-set
   [Rs_set] members, set references inside a filter-set's filter, and
   as-sets / nested sets named by a peering-set's peerings. This is the
   edge relation behind the streaming engine's invalidation walk — edges
   are a {e superset} of what evaluation can read (sound: reachability
   over-approximation can only widen invalidation, never miss it), and
   deliberately ignore the flattening work/depth caps. *)
let rec filter_set_refs acc (f : Rz_policy.Ast.filter) =
  match f with
  | Rz_policy.Ast.As_set_ref (name, _)
  | Rz_policy.Ast.Route_set_ref (name, _)
  | Rz_policy.Ast.Filter_set_ref name -> canon name :: acc
  | Rz_policy.Ast.And_f (a, b) | Rz_policy.Ast.Or_f (a, b) ->
    filter_set_refs (filter_set_refs acc a) b
  | Rz_policy.Ast.Not_f a -> filter_set_refs acc a
  | Rz_policy.Ast.Any | Rz_policy.Ast.Peer_as_filter | Rz_policy.Ast.As_num _
  | Rz_policy.Ast.Prefix_set _ | Rz_policy.Ast.Path_regex _
  | Rz_policy.Ast.Community _ | Rz_policy.Ast.Fltr_martian -> acc

let rec as_expr_set_refs acc (e : Rz_policy.Ast.as_expr) =
  match e with
  | Rz_policy.Ast.As_set name -> canon name :: acc
  | Rz_policy.Ast.Asn _ | Rz_policy.Ast.Any_as -> acc
  | Rz_policy.Ast.And (a, b) | Rz_policy.Ast.Or (a, b)
  | Rz_policy.Ast.Except_as (a, b) -> as_expr_set_refs (as_expr_set_refs acc a) b

let peering_set_refs acc (p : Rz_policy.Ast.peering) =
  match p with
  | Rz_policy.Ast.Peering_spec { as_expr; _ } -> as_expr_set_refs acc as_expr
  | Rz_policy.Ast.Peering_set_ref name -> canon name :: acc

let referenced_sets t name =
  let key = canon name in
  let acc = [] in
  let acc =
    match Hashtbl.find_opt t.ir.as_sets key with
    | None -> acc
    | Some s -> List.rev_append (List.map canon s.member_sets) acc
  in
  let acc =
    match Hashtbl.find_opt t.ir.route_sets key with
    | None -> acc
    | Some s ->
      List.fold_left
        (fun acc m ->
          match m with
          | Rz_ir.Ir.Rs_set (child, _) -> canon child :: acc
          | Rz_ir.Ir.Rs_prefix _ | Rz_ir.Ir.Rs_asn _ -> acc)
        acc s.members
  in
  let acc =
    match Hashtbl.find_opt t.ir.filter_sets key with
    | None -> acc
    | Some s -> filter_set_refs acc s.filter
  in
  let acc =
    match Hashtbl.find_opt t.ir.peering_sets key with
    | None -> acc
    | Some s -> List.fold_left peering_set_refs acc s.peerings
  in
  List.sort_uniq compare acc

let set_reaches t ~root ~target =
  let root = canon root and target = canon target in
  if root = target then true
  else begin
    let visited = Hashtbl.create 16 in
    let rec go name =
      name = target
      || (not (Hashtbl.mem visited name))
         && begin
              Hashtbl.replace visited name ();
              List.exists go (referenced_sets t name)
            end
    in
    go root
  end

(* Whether flattening the set named [root] consults the route objects of
   [asn] (a route-set [Rs_asn] member, or an as-set member whose flattened
   ASNs include it) — the flatten-time origin reads invisible to the
   verification engine's own dependency notes. *)
let set_consults_origin t ~root asn =
  let visited = Hashtbl.create 16 in
  let rec go name =
    if Hashtbl.mem visited name then false
    else begin
      Hashtbl.replace visited name ();
      let here =
        match Hashtbl.find_opt t.ir.route_sets name with
        | None -> false
        | Some s ->
          List.exists
            (fun m ->
              match m with
              | Rz_ir.Ir.Rs_asn (a, _) -> a = asn
              | Rz_ir.Ir.Rs_set (child, _) ->
                let child_key = canon child in
                (not (Hashtbl.mem t.ir.route_sets child_key))
                && Hashtbl.mem t.ir.as_sets child_key
                && Asn_set.mem asn (flatten_as_set t child_key)
              | Rz_ir.Ir.Rs_prefix _ -> false)
            s.members
      in
      here || List.exists go (referenced_sets t name)
    end
  in
  go (canon root)

(* ---------------- delegates ---------------- *)

let find_aut_num t asn = Rz_ir.Ir.find_aut_num t.ir asn
let find_peering_set t name = Rz_ir.Ir.find_peering_set t.ir name
let find_filter_set t name = Rz_ir.Ir.find_filter_set t.ir name
