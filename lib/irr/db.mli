(** The queryable IRR database: an {!Rz_ir.Ir.t} plus the resolution
    machinery route verification needs — indirect set members
    ([member-of] / [mbrs-by-ref]), memoized recursive as-set and route-set
    flattening with cycle cutting, and a prefix trie over [route]
    objects for covering-prefix queries (the paper's "binary search over
    each AS's route objects" made family-generic). *)

type t

val build : Rz_ir.Ir.t -> t
(** Index an already-lowered IR. The IR must not be mutated afterwards. *)

val ir : t -> Rz_ir.Ir.t

val priority_order : string list
(** The paper's Table 1 IRR priority: authoritative registries first
    (APNIC, AFRINIC, ARIN, LACNIC, RIPE, IDNIC, JPIRR), then RADB, then
    the other databases (NTTCOM, LEVEL3, TC, REACH, ALTDB). *)

val of_dumps : (string * string) list -> t
(** [of_dumps [(source, rpsl_text); ...]] lowers the dumps in the given
    order (which should be priority order — see {!priority_order}) and
    builds the database. *)

(** {1 Resolution bounds}

    Set flattening recurses over untrusted registry data, so it runs
    under hard bounds: nesting depth, per-call work (distinct sets
    visited), and materialized route-set members. A bound hit degrades to
    a partial result — never an exception or unbounded memory — records
    the root set in {!truncated_sets}, and increments the
    [flatten.truncated] counter. Partial results are conservative for
    verification: missing members can only push routes toward
    Unverified. *)

val max_flatten_depth : int
(** Nesting-depth cap (64); the paper flags real-world depth >= 5 as
    anomalous, so legitimate data sits far below this. *)

val max_flatten_work : int
(** Distinct sets visited per top-level flatten (10_000). *)

val max_route_set_members : int
(** Materialized (prefix, op) pairs per flattened route-set (200_000). *)

val flatten_truncated : t -> string -> bool
(** Whether flattening rooted at this set ever hit a bound. *)

val truncated_sets : t -> string list
(** Canonical names of all bound-hit roots, sorted. *)

(** {1 As-set resolution} *)

module Asn_set : Set.S with type elt = Rz_net.Asn.t

val flatten_as_set : t -> string -> Asn_set.t
(** Transitive ASN members of an as-set, including indirect members via
    [member-of]/[mbrs-by-ref]; empty when the set is unknown. Memoized;
    cycles are cut; bounded per the resolution bounds above. *)

val as_set_exists : t -> string -> bool
val asn_in_as_set : t -> string -> Rz_net.Asn.t -> bool

val as_set_depth : t -> string -> int
(** Nesting depth: 1 for a flat set, 1 + max member depth otherwise;
    members on a cycle do not add depth. 0 for unknown sets. *)

val as_set_has_loop : t -> string -> bool
(** Whether a cycle is reachable from this set (the set participates in or
    references a loop). *)

(** {1 Route-set resolution} *)

val flatten_route_set : t -> string -> (Rz_net.Prefix.t * Rz_net.Range_op.t) list
(** Transitive prefix members with their effective range operators;
    nested as-sets and ASN members contribute the prefixes those ASes
    originate in [route] objects. Memoized; cycles cut. *)

val route_set_exists : t -> string -> bool

(** {1 Route-object queries} *)

val covering_routes : t -> Rz_net.Prefix.t -> (Rz_net.Prefix.t * Rz_net.Asn.t) list
(** All (declared prefix, origin) route objects whose prefix covers the
    observed prefix (including exact matches), least specific first. *)

val origin_prefixes : t -> Rz_net.Asn.t -> Rz_net.Prefix.t list
(** Prefixes the AS originates in [route] objects. *)

val origin_has_routes : t -> Rz_net.Asn.t -> bool
val exact_origins : t -> Rz_net.Prefix.t -> Rz_net.Asn.t list
(** Origins of route objects for exactly this prefix. *)

val warm_caches : t -> unit
(** Force every memo table (as-set and route-set flattening, depth, loop
    detection) so subsequent queries are read-only — required before
    sharing the database across domains for parallel verification. *)

(** {1 Set reference graph}

    The edge relation behind churn-safe cache invalidation
    ({!Rz_verify.Engine.apply_edits}): which other sets can a set's
    evaluation or flattening read? Edges are a {e superset} of actual
    reads (unbounded by the flattening work/depth caps), so reachability
    over-approximates — invalidation can only widen, never miss. *)

val referenced_sets : t -> string -> string list
(** Canonical names of sets directly referenced by the set object(s) with
    this (canonicalized) name, across every set class: as-set member
    sets, route-set [Rs_set] members, set references inside a
    filter-set's filter, peering-set peerings. Sorted, deduplicated;
    empty for unknown names. *)

val set_reaches : t -> root:string -> target:string -> bool
(** Whether [target] is reachable from [root] over {!referenced_sets}
    edges (reflexively: a set reaches itself). Cycle-safe. *)

val set_consults_origin : t -> root:string -> Rz_net.Asn.t -> bool
(** Whether flattening rooted at [root] consults the route objects
    originated by this ASN — a route-set [Rs_asn] member naming it, or a
    route-set member as-set whose flattened ASNs include it. These are
    the flatten-time reads of [origin_prefixes] that the verification
    engine cannot observe from outside {!flatten_route_set}. *)

(** {1 Other object queries (delegates to the IR)} *)

val find_aut_num : t -> Rz_net.Asn.t -> Rz_ir.Ir.aut_num option
val find_peering_set : t -> string -> Rz_ir.Ir.peering_set option
val find_filter_set : t -> string -> Rz_ir.Ir.filter_set option
