module Ir = Rz_ir.Ir

type response =
  | Data of string
  | No_data
  | Not_found_key
  | Error_resp of string
  | Quit

let render = function
  | Data payload -> Printf.sprintf "A%d\n%s\nC\n" (String.length payload) payload
  | No_data -> "C\n"
  | Not_found_key -> "D\n"
  | Error_resp reason -> Printf.sprintf "F %s\n" reason
  | Quit -> ""

let space_join items = String.concat " " items

let data_or_empty = function [] -> No_data | items -> Data (space_join items)

(* ---------------- !g / !6 : origin prefixes ---------------- *)

let origin_prefixes db text ~v6 =
  match Rz_net.Asn.of_string text with
  | Error e -> Error_resp e
  | Ok asn ->
    if not (Db.origin_has_routes db asn) then Not_found_key
    else
      Db.origin_prefixes db asn
      |> List.filter (fun p -> if v6 then Rz_net.Prefix.is_v6 p else Rz_net.Prefix.is_v4 p)
      |> List.sort Rz_net.Prefix.compare
      |> List.map Rz_net.Prefix.to_string
      |> data_or_empty

(* ---------------- !i : set members ---------------- *)

let set_members db text =
  let name, recursive =
    match Rz_util.Strings.split_on_string ~sep:"," text with
    | [ name; "1" ] -> (Rz_util.Strings.strip name, true)
    | [ name ] -> (Rz_util.Strings.strip name, false)
    | _ -> (Rz_util.Strings.strip text, false)
  in
  let ir = Db.ir db in
  match Ir.find_as_set ir name with
  | Some set ->
    if recursive then
      Db.flatten_as_set db name
      |> Db.Asn_set.elements
      |> List.map Rz_net.Asn.to_string
      |> data_or_empty
    else
      data_or_empty
        (List.map Rz_net.Asn.to_string set.member_asns @ set.member_sets)
  | None ->
    (match Ir.find_route_set ir name with
     | Some set ->
       if recursive then
         Db.flatten_route_set db name
         |> List.map (fun (p, op) ->
                Rz_net.Prefix.to_string p ^ Rz_net.Range_op.to_string op)
         |> List.sort_uniq compare
         |> data_or_empty
       else
         data_or_empty
           (List.map
              (function
                | Ir.Rs_prefix (p, op) ->
                  Rz_net.Prefix.to_string p ^ Rz_net.Range_op.to_string op
                | Ir.Rs_set (child, op) -> child ^ Rz_net.Range_op.to_string op
                | Ir.Rs_asn (a, op) ->
                  Rz_net.Asn.to_string a ^ Rz_net.Range_op.to_string op)
              set.members)
     | None -> Not_found_key)

(* ---------------- !a : aggregated prefixes of a set ---------------- *)

let set_prefixes db text =
  let name, v6 =
    if String.length text > 0 && text.[0] = '6' then
      (Rz_util.Strings.strip (String.sub text 1 (String.length text - 1)), true)
    else (Rz_util.Strings.strip text, false)
  in
  if not (Db.as_set_exists db name) then Not_found_key
  else begin
    let members = Db.flatten_as_set db name in
    let prefixes =
      Db.Asn_set.fold
        (fun asn acc -> List.rev_append (Db.origin_prefixes db asn) acc)
        members []
      |> List.filter (fun p -> if v6 then Rz_net.Prefix.is_v6 p else Rz_net.Prefix.is_v4 p)
      |> Rz_net.Prefix_agg.aggregate
    in
    data_or_empty (List.map Rz_net.Prefix.to_string prefixes)
  end

(* ---------------- rendering objects back to RPSL ---------------- *)

let render_aut_num (an : Ir.aut_num) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "aut-num:        %s\n" (Rz_net.Asn.to_string an.asn));
  if an.as_name <> "" then
    Buffer.add_string buf (Printf.sprintf "as-name:        %s\n" an.as_name);
  List.iter
    (fun rule ->
      let text = Rz_policy.Ast.rule_to_string rule in
      match String.index_opt text ':' with
      | Some i ->
        Buffer.add_string buf
          (Printf.sprintf "%-15s %s\n"
             (String.sub text 0 (i + 1))
             (Rz_util.Strings.strip
                (String.sub text (i + 1) (String.length text - i - 1))))
      | None -> Buffer.add_string buf (text ^ "\n"))
    (an.imports @ an.exports);
  List.iter
    (fun m -> Buffer.add_string buf (Printf.sprintf "member-of:      %s\n" m))
    an.member_of;
  List.iter
    (fun m -> Buffer.add_string buf (Printf.sprintf "mnt-by:         %s\n" m))
    an.mnt_by;
  Buffer.add_string buf (Printf.sprintf "source:         %s" an.source);
  Buffer.contents buf

let render_as_set (s : Ir.as_set) =
  let members =
    List.map Rz_net.Asn.to_string s.member_asns
    @ s.member_sets
    @ (if s.contains_any then [ "ANY" ] else [])
  in
  String.concat "\n"
    ([ Printf.sprintf "as-set:         %s" s.name ]
     @ (if members = [] then [] else [ Printf.sprintf "members:        %s" (String.concat ", " members) ])
     @ (if s.mbrs_by_ref = [] then []
        else [ Printf.sprintf "mbrs-by-ref:    %s" (String.concat ", " s.mbrs_by_ref) ])
     @ [ Printf.sprintf "source:         %s" s.source ])

let render_route_set (s : Ir.route_set) =
  let member = function
    | Ir.Rs_prefix (p, op) -> Rz_net.Prefix.to_string p ^ Rz_net.Range_op.to_string op
    | Ir.Rs_set (child, op) -> child ^ Rz_net.Range_op.to_string op
    | Ir.Rs_asn (a, op) -> Rz_net.Asn.to_string a ^ Rz_net.Range_op.to_string op
  in
  String.concat "\n"
    ([ Printf.sprintf "route-set:      %s" s.name ]
     @ (if s.members = [] then []
        else
          [ Printf.sprintf "members:        %s" (String.concat ", " (List.map member s.members)) ])
     @ [ Printf.sprintf "source:         %s" s.source ])

let object_query db text =
  match Rz_util.Strings.split_on_string ~sep:"," text with
  | [ cls; key ] ->
    let cls = Rz_util.Strings.lowercase (Rz_util.Strings.strip cls) in
    let key = Rz_util.Strings.strip key in
    let ir = Db.ir db in
    (match cls with
     | "aut-num" ->
       (match Result.to_option (Rz_net.Asn.of_string key) with
        | Some asn ->
          (match Ir.find_aut_num ir asn with
           | Some an -> Data (render_aut_num an)
           | None -> Not_found_key)
        | None -> Error_resp "malformed ASN")
     | "as-set" ->
       (match Ir.find_as_set ir key with
        | Some s -> Data (render_as_set s)
        | None -> Not_found_key)
     | "route-set" ->
       (match Ir.find_route_set ir key with
        | Some s -> Data (render_route_set s)
        | None -> Not_found_key)
     | "route" | "route6" ->
       (match Rz_net.Prefix.of_string key with
        | Ok prefix ->
          (match Db.exact_origins db prefix with
           | [] -> Not_found_key
           | origins ->
             Data
               (String.concat "\n\n"
                  (List.map
                     (fun o ->
                       Printf.sprintf "%s:%s%s\norigin:         %s"
                         (if Rz_net.Prefix.is_v4 prefix then "route" else "route6")
                         (if Rz_net.Prefix.is_v4 prefix then "          " else "         ")
                         (Rz_net.Prefix.to_string prefix)
                         (Rz_net.Asn.to_string o))
                     origins)))
        | Error e -> Error_resp e)
     | other -> Error_resp (Printf.sprintf "unsupported object class %S" other))
  | _ -> Error_resp "expected !mTYPE,KEY"

(* ---------------- !r : route lookup ---------------- *)

let route_query db text =
  let prefix_text, mode =
    match Rz_util.Strings.split_on_string ~sep:"," text with
    | [ p; m ] -> (Rz_util.Strings.strip p, Rz_util.Strings.strip m)
    | _ -> (Rz_util.Strings.strip text, "")
  in
  match Rz_net.Prefix.of_string prefix_text with
  | Error e -> Error_resp e
  | Ok prefix ->
    let entries =
      match mode with
      | "l" -> Db.covering_routes db prefix
      | "" | "o" -> List.map (fun o -> (prefix, o)) (Db.exact_origins db prefix)
      | _ -> []
    in
    (match entries with
     | [] -> Not_found_key
     | entries ->
       if mode = "o" then
         data_or_empty (List.map (fun (_, o) -> Rz_net.Asn.to_string o) entries)
       else
         Data
           (String.concat "\n"
              (List.map
                 (fun (p, o) ->
                   Printf.sprintf "%s %s" (Rz_net.Prefix.to_string p)
                     (Rz_net.Asn.to_string o))
                 entries)))

(* ---------------- plain whois fallback ---------------- *)

let plain_query db text =
  let ir = Db.ir db in
  let sections = ref [] in
  (match Result.to_option (Rz_net.Asn.of_string text) with
   | Some asn when Rz_util.Strings.starts_with_ci ~prefix:"AS" text ->
     (match Ir.find_aut_num ir asn with
      | Some an -> sections := render_aut_num an :: !sections
      | None -> ())
   | _ -> ());
  (match Ir.find_as_set ir text with
   | Some s -> sections := render_as_set s :: !sections
   | None -> ());
  (match Ir.find_route_set ir text with
   | Some s -> sections := render_route_set s :: !sections
   | None -> ());
  (match Rz_net.Prefix.of_string text with
   | Ok prefix ->
     List.iter
       (fun o ->
         sections :=
           Printf.sprintf "route:          %s\norigin:         %s"
             (Rz_net.Prefix.to_string prefix) (Rz_net.Asn.to_string o)
           :: !sections)
       (Db.exact_origins db prefix)
   | Error _ -> ());
  match List.rev !sections with
  | [] -> Not_found_key
  | sections -> Data (String.concat "\n\n" sections)

let c_query_errors = Rz_obs.Obs.Counter.make "irrd.query_errors"

let answer_unguarded db line =
  let line = Rz_util.Strings.strip line in
  if line = "" then No_data
  else if line = "!q" then Quit
  else if String.length line >= 2 && line.[0] = '!' then begin
    let arg = String.sub line 2 (String.length line - 2) in
    match line.[1] with
    | 'g' -> origin_prefixes db arg ~v6:false
    | '6' -> origin_prefixes db arg ~v6:true
    | 'i' -> set_members db arg
    | 'a' -> set_prefixes db arg
    | 'm' -> object_query db arg
    | 'r' -> route_query db arg
    | 'n' -> No_data (* client identification, acknowledged *)
    | c -> Error_resp (Printf.sprintf "unsupported query !%c" c)
  end
  else plain_query db line

(* Query text arrives from the network, so the dispatcher is total: any
   handler exception becomes an F response instead of tearing down the
   session (and is counted — a nonzero [irrd.query_errors] in production
   would mean a handler bug worth chasing). *)
let answer db line =
  try answer_unguarded db line
  with e ->
    Rz_obs.Obs.Counter.incr c_query_errors;
    Error_resp ("internal error: " ^ Printexc.to_string e)

let session db lines =
  let buf = Buffer.create 256 in
  let rec go = function
    | [] -> ()
    | line :: rest ->
      (match answer db line with
       | Quit -> ()
       | resp ->
         Buffer.add_string buf (render resp);
         go rest)
  in
  go lines;
  Buffer.contents buf
