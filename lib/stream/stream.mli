(** Streaming verification: a stateful service that keeps per-route
    verdicts current while a live update feed mutates both the RIB
    (announcements, withdrawals) and the policy database (aut-num,
    as-set, route-object edits).

    The batch pipeline verifies a frozen world once; this module turns
    the engine into a long-lived service. It owns a private copy of the
    IR, rebuilds the database generation on each policy edit, invalidates
    exactly the memoized hop verdicts and compiled NFAs the edit can
    reach ({!Rz_verify.Engine.apply_edits}), and re-verifies the RIB as a
    memo-warm sweep — untouched hops are cache hits, so incremental cost
    tracks the blast radius of the change, not the RIB size. The
    streaming differential test proves the incremental verdicts equal a
    from-scratch batch verify after any event sequence, faults included.

    Overload and fault handling are explicit: events flow through a
    {!Bqueue} whose policy bounds memory (block / shed-oldest /
    degrade-to-sampling), chaos-injected failures are retried with
    seeded exponential backoff and abandoned after a budget
    ([stream.events_abandoned]), and a watchdog degrades the queue
    policy rather than let a stalled stage wedge the pipeline
    ([stream.watchdog_trips]). The pipeline degrades — it never crashes
    or deadlocks, even at chaos rate 1.0. *)

type config = {
  window : int;           (** events per aggregate window (count-based) *)
  queue_capacity : int;   (** bounded-queue capacity for {!run} *)
  policy : Bqueue.policy; (** initial backpressure policy *)
  chaos : Rz_fault.Fault.plan option;
      (** seeded fault injection: each event application fails with
          probability [rate], deterministically per
          (plan seed, event seq, attempt) *)
  max_retries : int;      (** retries before an event is abandoned *)
  backoff_ms : float;     (** base retry backoff, doubled per attempt; 0 in tests *)
  watchdog_ms : int;      (** stall-detection interval for {!run}; 0 disables *)
}

val default_config : config
(** window 64, capacity 256, [Block], no chaos, 2 retries, 1ms backoff,
    watchdog off. *)

type t

val create : ?config:config -> ir:Rz_ir.Ir.t -> rels:Rz_asrel.Rel_db.t -> unit -> t
(** The service copies [ir] ({!Rz_ir.Ir.copy}) and owns the copy; the
    caller's IR and any databases built from it stay valid. The engine
    runs memoized with dependency tracking. *)

val engine : t -> Rz_verify.Engine.t
val db : t -> Rz_irr.Db.t
(** Current database generation. *)

val generations : t -> int
(** Database rebuilds so far (policy edits applied). *)

val invalidated : t -> int
(** Cumulative hop-memo invalidations across generation swaps. *)

val rib_routes : t -> Rz_bgp.Route.t list
(** Current RIB contents in deterministic (prefix, path) order. *)

val reports : t -> (Rz_bgp.Route.t * Rz_verify.Report.route_report option) list
(** Current per-route verdicts, same order as {!rib_routes}; [None] for
    routes the paper excludes. This is the surface the differential test
    compares against a from-scratch batch verify. *)

(** Outcome of feeding one event. [Rejected] means the event content was
    unusable (e.g. unparsable rule text) — deterministic, unlike
    [Abandoned], which is a chaos budget exhaustion. *)
type feed_result = Applied | Abandoned | Rejected of string

val feed : t -> Rz_routegen.Events.item -> feed_result
(** Apply one event synchronously (chaos, retries and backoff included).
    Window accounting advances; a full window closes automatically. *)

(** {1 Windowed aggregates} *)

type window = {
  w_index : int;
  w_start_seq : int;
  w_end_seq : int;
  w_events : int;
  w_announce : int;
  w_withdraw : int;
  w_edit : int;
  w_abandoned : int;
  w_rejected : int;
  w_rib : int;
  w_routes : int;
  w_excluded : int;
  w_hops : Rz_verify.Aggregate.counts;  (** hop statuses over the RIB at window close *)
}

val windows : t -> window list
val flush : t -> unit
(** Close a partially filled trailing window, if any. *)

val window_to_json : window -> Rz_json.Json.t

(** {1 Pipelined run} *)

type run_stats = {
  r_processed : int;
  r_applied : int;
  r_abandoned : int;
  r_rejected : int;
  r_dropped : int;
  r_sampled : int;
  r_hwm : int;            (** queue high-water mark (bounded-memory witness) *)
  r_watchdog_trips : int;
  r_final_policy : Bqueue.policy;  (** differs from the config's after degradation *)
  r_degraded : bool;
      (** any recovery path fired — the CLI's exit-2 signal *)
}

val run : ?seed:int -> t -> Rz_routegen.Events.item list -> run_stats
(** Producer domain -> bounded queue -> consumer (calling domain), with
    the watchdog (when enabled) monitoring consumer heartbeats and
    degrading the queue policy to [Shed_oldest] on a stall. Joins all
    domains and flushes the trailing window before returning. [seed]
    drives [Sample] admission. *)

val stats_to_json : t -> run_stats -> Rz_json.Json.t
(** Full run summary: stats, cache sizes, and every window. *)

val view_of : Rz_irr.Db.t -> Rz_bgp.Route.t list -> Rz_routegen.Events.world_view
(** Extract the event generator's target universe from a built world:
    its aut-nums, as-sets, route objects, and the given base routes. *)
