(** Bounded multi-producer/consumer queue with explicit backpressure.

    The queue is the seam between the update-feed producer and the
    verification consumer: its capacity bounds pipeline memory, and its
    policy says what happens when the consumer falls behind:

    - [Block]: the producer waits — lossless, backpressure propagates
      upstream. The only policy under which streams are deterministic
      end to end.
    - [Shed_oldest]: the oldest queued event is discarded to make room
      ([stream.events_dropped]); the freshest state wins, as in a BGP
      RIB where a newer update supersedes a queued older one.
    - [Sample keep]: an arriving event is admitted with probability
      [keep] (displacing the oldest, counted as dropped) and discarded
      otherwise ([stream.events_sampled]) — degrade-to-sampling under
      sustained overload. Admission decisions come from a seeded
      generator, so a given arrival order replays identically.

    All operations are thread-safe; blocking uses a mutex + condition
    pair, no spinning. *)

type policy = Block | Shed_oldest | Sample of float

val policy_name : policy -> string

type 'a t

val create : ?policy:policy -> ?seed:int -> capacity:int -> unit -> 'a t
(** [policy] defaults to [Block]; [seed] (default 0) drives [Sample]
    admission. Raises [Invalid_argument] on non-positive capacity. *)

val push : 'a t -> 'a -> bool
(** Enqueue per the current policy. [true] if the element was admitted,
    [false] if it was sampled away. Blocks only under [Block] when full.
    Raises [Invalid_argument] if the queue is closed. *)

val pop : 'a t -> 'a option
(** Dequeue, blocking while empty; [None] once the queue is closed and
    drained. *)

val close : 'a t -> unit
(** No further pushes; blocked consumers drain and then see [None]. *)

val set_policy : 'a t -> policy -> unit
(** Switch policy live — the watchdog's degradation lever
    ([Block] -> [Shed_oldest] keeps a stuck pipeline's producer from
    blocking forever). *)

val policy : 'a t -> policy
val length : 'a t -> int

val hwm : 'a t -> int
(** High-water mark: the largest queue length observed — the
    bounded-memory witness reported in stream metrics. *)

val dropped : 'a t -> int
(** Events shed to make room (this queue only — the global counterpart is
    [stream.events_dropped], which no-ops when metrics are disabled). *)

val sampled : 'a t -> int
(** Events discarded by [Sample] admission (global: [stream.events_sampled]). *)
