(* Incremental verification of a live update feed. See stream.mli. *)

module Asn = Rz_net.Asn
module Prefix = Rz_net.Prefix
module Route = Rz_bgp.Route
module Ir = Rz_ir.Ir
module Db = Rz_irr.Db
module Engine = Rz_verify.Engine
module Report = Rz_verify.Report
module Aggregate = Rz_verify.Aggregate
module Events = Rz_routegen.Events
module Fault = Rz_fault.Fault
module Obs = Rz_obs.Obs
module Splitmix = Rz_util.Splitmix
module Json = Rz_json.Json

let c_abandoned = Obs.Counter.make "stream.events_abandoned"
let c_retries = Obs.Counter.make "stream.retries"
let c_watchdog = Obs.Counter.make "stream.watchdog_trips"
let h_event_ns = Obs.Histogram.make "stream.event_ns"

type config = {
  window : int;
  queue_capacity : int;
  policy : Bqueue.policy;
  chaos : Fault.plan option;
  max_retries : int;
  backoff_ms : float;
  watchdog_ms : int;
}

let default_config =
  { window = 64;
    queue_capacity = 256;
    policy = Bqueue.Block;
    chaos = None;
    max_retries = 2;
    backoff_ms = 1.0;
    watchdog_ms = 0 }

type window = {
  w_index : int;
  w_start_seq : int;
  w_end_seq : int;
  w_events : int;
  w_announce : int;
  w_withdraw : int;
  w_edit : int;
  w_abandoned : int;
  w_rejected : int;
  w_rib : int;
  w_routes : int;    (* RIB routes with a verification report *)
  w_excluded : int;  (* RIB routes the paper excludes (single-AS, AS_SET) *)
  w_hops : Aggregate.counts;
}

type t = {
  cfg : config;
  ir : Ir.t;  (* owned: mutated in place on policy edits *)
  engine : Engine.t;
  rib : (Prefix.t * Asn.t, Route.t) Hashtbl.t;
  reports : (Prefix.t * Asn.t, Report.route_report option) Hashtbl.t;
  mutable processed : int;
  mutable applied : int;
  mutable abandoned : int;
  mutable rejected : int;
  mutable generations : int;  (* database rebuilds (policy edits applied) *)
  mutable invalidated : int;  (* hop memo entries invalidated, cumulative *)
  mutable windows_rev : window list;
  (* current (open) window accumulators *)
  mutable w_index : int;
  mutable w_start_seq : int;
  mutable w_end_seq : int;
  mutable w_events : int;
  mutable w_announce : int;
  mutable w_withdraw : int;
  mutable w_edit : int;
  mutable w_abandoned : int;
  mutable w_rejected : int;
}

let create ?(config = default_config) ~ir ~rels () =
  let ir = Ir.copy ir in
  let db = Db.build ir in
  let engine_config =
    { Engine.default_config with memoize = true; track_deps = true }
  in
  { cfg = config;
    ir;
    engine = Engine.create ~config:engine_config db rels;
    rib = Hashtbl.create 1024;
    reports = Hashtbl.create 1024;
    processed = 0;
    applied = 0;
    abandoned = 0;
    rejected = 0;
    generations = 0;
    invalidated = 0;
    windows_rev = [];
    w_index = 0;
    w_start_seq = 0;
    w_end_seq = 0;
    w_events = 0;
    w_announce = 0;
    w_withdraw = 0;
    w_edit = 0;
    w_abandoned = 0;
    w_rejected = 0 }

let engine t = t.engine
let db t = Engine.db t.engine
let generations t = t.generations
let invalidated t = t.invalidated

let rib_routes t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.rib []
  |> List.sort (fun a b ->
         let c = Prefix.compare a.Route.prefix b.Route.prefix in
         if c <> 0 then c else compare a.Route.path b.Route.path)

let reports t =
  Hashtbl.fold
    (fun key route acc -> (route, Hashtbl.find t.reports key) :: acc)
    t.rib []
  |> List.sort (fun (a, _) (b, _) ->
         let c = Prefix.compare a.Route.prefix b.Route.prefix in
         if c <> 0 then c else compare a.Route.path b.Route.path)

(* ------------------------------------------------------------------ *)
(* Event application                                                   *)
(* ------------------------------------------------------------------ *)

let peer_of route =
  match route.Route.path with Route.Seq a :: _ -> Some a | _ -> None

let slot_of route =
  match peer_of route with
  | Some peer -> Some (route.Route.prefix, peer)
  | None -> None

let verify_into t route =
  match slot_of route with
  | None -> ()
  | Some key ->
      Hashtbl.replace t.rib key route;
      Hashtbl.replace t.reports key (Engine.verify_route t.engine route)

(* Re-verify every RIB entry after a generation swap. Invalidation
   exactness makes this a memo-warm sweep: hops the edits could not
   reach are cache hits. *)
let sweep t =
  Hashtbl.iter
    (fun key route ->
      Hashtbl.replace t.reports key (Engine.verify_route t.engine route))
    t.rib

let blank_aut_num asn =
  { Ir.asn;
    as_name = "STREAMED";
    imports = [];
    exports = [];
    defaults = [];
    member_of = [];
    mnt_by = [];
    source = "STREAM" }

let blank_as_set name =
  { Ir.name;
    member_asns = [];
    member_sets = [];
    contains_any = false;
    mbrs_by_ref = [];
    mnt_by = [];
    source = "STREAM" }

let canon = Rz_rpsl.Set_name.canonical

(* Mutate the IR per the edit; [Ok edits] lists what changed in the
   engine's vocabulary, [Error reason] rejects the event (bad rule text —
   a journal-content problem, not a fault). *)
let apply_policy_edit t (edit : Events.policy_edit) :
    (Engine.edit list, string) result =
  let update_autnum asn f =
    let an =
      match Ir.find_aut_num t.ir asn with
      | Some an -> an
      | None -> blank_aut_num asn
    in
    match f an with
    | Error _ as e -> e
    | Ok an' ->
        Hashtbl.replace t.ir.Ir.aut_nums asn an';
        Ok [ Engine.Edit_aut_num asn ]
  in
  let drop_nth l i =
    if i < 0 || i >= List.length l then l
    else List.filteri (fun j _ -> j <> i) l
  in
  match edit with
  | Events.Add_import (asn, text) -> (
      match
        Rz_policy.Parser.parse_rule ~direction:`Import ~multiprotocol:false text
      with
      | Error e -> Error ("bad import rule: " ^ e)
      | Ok rule ->
          update_autnum asn (fun an ->
              Ok { an with Ir.imports = an.Ir.imports @ [ rule ] }))
  | Events.Add_export (asn, text) -> (
      match
        Rz_policy.Parser.parse_rule ~direction:`Export ~multiprotocol:false text
      with
      | Error e -> Error ("bad export rule: " ^ e)
      | Ok rule ->
          update_autnum asn (fun an ->
              Ok { an with Ir.exports = an.Ir.exports @ [ rule ] }))
  | Events.Drop_import (asn, i) ->
      update_autnum asn (fun an ->
          Ok { an with Ir.imports = drop_nth an.Ir.imports i })
  | Events.Drop_export (asn, i) ->
      update_autnum asn (fun an ->
          Ok { an with Ir.exports = drop_nth an.Ir.exports i })
  | Events.As_set_add (name, asn) ->
      let key = canon name in
      let s =
        match Ir.find_as_set t.ir key with
        | Some s -> s
        | None -> blank_as_set key
      in
      let s' =
        if List.mem asn s.Ir.member_asns then s
        else { s with Ir.member_asns = asn :: s.Ir.member_asns }
      in
      Hashtbl.replace t.ir.Ir.as_sets key s';
      Ok [ Engine.Edit_set key ]
  | Events.As_set_del (name, asn) -> (
      let key = canon name in
      match Ir.find_as_set t.ir key with
      | None -> Ok []
      | Some s ->
          let s' =
            { s with
              Ir.member_asns = List.filter (fun a -> a <> asn) s.Ir.member_asns }
          in
          Hashtbl.replace t.ir.Ir.as_sets key s';
          Ok [ Engine.Edit_set key ])
  | Events.Route_add (p, o) ->
      if Hashtbl.mem t.ir.Ir.route_seen (p, o) then Ok []
      else (
        Ir.add_route t.ir ~prefix:p ~origin:o ~member_of:[] ~mnt_by:[]
          ~source:"STREAM";
        Ok [ Engine.Edit_route (p, o) ])
  | Events.Route_del (p, o) ->
      if not (Hashtbl.mem t.ir.Ir.route_seen (p, o)) then Ok []
      else
        let member_sets = ref [] in
        Ir.filter_routes t.ir
          (fun r ->
            if Prefix.equal r.Ir.prefix p && r.Ir.origin = o then (
              member_sets := Ir.route_member_of t.ir r @ !member_sets;
              false)
            else true);
        Hashtbl.remove t.ir.Ir.route_seen (p, o);
        let set_edits =
          List.sort_uniq compare !member_sets
          |> List.map (fun s -> Engine.Edit_set (canon s))
        in
        Ok (Engine.Edit_route (p, o) :: set_edits)

let apply_event t (ev : Events.event) : (unit, string) result =
  match ev with
  | Events.Announce r ->
      if Route.contains_as_set r || peer_of r = None then
        Error "announce without a usable path head"
      else (verify_into t r; Ok ())
  | Events.Withdraw (p, peer) ->
      Hashtbl.remove t.rib (p, peer);
      Hashtbl.remove t.reports (p, peer);
      Ok ()
  | Events.Edit e -> (
      match apply_policy_edit t e with
      | Error _ as err -> err
      | Ok [] -> Ok ()  (* no-op edit: nothing referenced changed *)
      | Ok edits ->
          let db' = Db.build t.ir in
          t.invalidated <- t.invalidated + Engine.apply_edits t.engine ~db:db' edits;
          t.generations <- t.generations + 1;
          sweep t;
          Ok ())

(* ------------------------------------------------------------------ *)
(* Chaos: seeded per-(event, attempt) fault injection                  *)
(* ------------------------------------------------------------------ *)

let chaos_fires plan ~seq ~attempt =
  let rng =
    Splitmix.create
      (plan.Fault.seed lxor (seq * 1000003) lxor (attempt * 0x9E3779B9))
  in
  Splitmix.chance rng plan.Fault.rate

(* ------------------------------------------------------------------ *)
(* Windows                                                             *)
(* ------------------------------------------------------------------ *)

let snapshot_counts t =
  let counts = Aggregate.zero_counts () in
  let routes = ref 0 and excluded = ref 0 in
  Hashtbl.iter
    (fun _ report ->
      match report with
      | None -> incr excluded
      | Some (r : Report.route_report) ->
          incr routes;
          List.iter
            (fun (h : Report.hop) -> Aggregate.counts_add counts h.Report.status)
            r.Report.hops)
    t.reports;
  (counts, !routes, !excluded)

let close_window t =
  let counts, routes, excluded = snapshot_counts t in
  let w =
    { w_index = t.w_index;
      w_start_seq = t.w_start_seq;
      w_end_seq = t.w_end_seq;
      w_events = t.w_events;
      w_announce = t.w_announce;
      w_withdraw = t.w_withdraw;
      w_edit = t.w_edit;
      w_abandoned = t.w_abandoned;
      w_rejected = t.w_rejected;
      w_rib = Hashtbl.length t.rib;
      w_routes = routes;
      w_excluded = excluded;
      w_hops = counts }
  in
  t.windows_rev <- w :: t.windows_rev;
  t.w_index <- t.w_index + 1;
  t.w_start_seq <- 0;
  t.w_end_seq <- 0;
  t.w_events <- 0;
  t.w_announce <- 0;
  t.w_withdraw <- 0;
  t.w_edit <- 0;
  t.w_abandoned <- 0;
  t.w_rejected <- 0

let windows t = List.rev t.windows_rev

let flush t = if t.w_events > 0 then close_window t

let window_to_json (w : window) =
  Json.Obj
    [ ("window", Json.Int w.w_index);
      ("start_seq", Json.Int w.w_start_seq);
      ("end_seq", Json.Int w.w_end_seq);
      ("events", Json.Int w.w_events);
      ("announce", Json.Int w.w_announce);
      ("withdraw", Json.Int w.w_withdraw);
      ("edit", Json.Int w.w_edit);
      ("abandoned", Json.Int w.w_abandoned);
      ("rejected", Json.Int w.w_rejected);
      ("rib", Json.Int w.w_rib);
      ("routes", Json.Int w.w_routes);
      ("excluded", Json.Int w.w_excluded);
      ("hops",
       Json.Obj
         (List.map
            (fun (label, n) -> (label, Json.Int n))
            (Aggregate.counts_classes w.w_hops))) ]

(* ------------------------------------------------------------------ *)
(* Feeding                                                             *)
(* ------------------------------------------------------------------ *)

type feed_result = Applied | Abandoned | Rejected of string

let tally t (item : Events.item) result =
  t.processed <- t.processed + 1;
  if t.w_events = 0 then t.w_start_seq <- item.Events.seq;
  t.w_end_seq <- item.Events.seq;
  t.w_events <- t.w_events + 1;
  (match item.Events.ev with
  | Events.Announce _ -> t.w_announce <- t.w_announce + 1
  | Events.Withdraw _ -> t.w_withdraw <- t.w_withdraw + 1
  | Events.Edit _ -> t.w_edit <- t.w_edit + 1);
  (match result with
  | Applied -> t.applied <- t.applied + 1
  | Abandoned ->
      t.abandoned <- t.abandoned + 1;
      t.w_abandoned <- t.w_abandoned + 1;
      Obs.Counter.incr c_abandoned
  | Rejected _ ->
      t.rejected <- t.rejected + 1;
      t.w_rejected <- t.w_rejected + 1);
  if t.w_events >= t.cfg.window then close_window t

let feed t (item : Events.item) =
  let t0 = Obs.now_ns () in
  let result =
    match t.cfg.chaos with
    | None -> (
        match apply_event t item.Events.ev with
        | Ok () -> Applied
        | Error e -> Rejected e)
    | Some plan ->
        (* Attempt 1 plus up to [max_retries] retries; each attempt's
           fate is a pure function of (plan seed, event seq, attempt),
           so a chaos run replays bit-identically. *)
        let rec attempt k =
          if chaos_fires plan ~seq:item.Events.seq ~attempt:k then
            if k > t.cfg.max_retries then Abandoned
            else (
              Obs.Counter.incr c_retries;
              if t.cfg.backoff_ms > 0. then
                Unix.sleepf
                  (t.cfg.backoff_ms *. (2. ** float_of_int (k - 1)) /. 1000.);
              attempt (k + 1))
          else
            match apply_event t item.Events.ev with
            | Ok () -> Applied
            | Error e -> Rejected e
        in
        attempt 1
  in
  tally t item result;
  Obs.Histogram.observe h_event_ns (float_of_int (Obs.now_ns () - t0));
  result

(* ------------------------------------------------------------------ *)
(* Pipelined run                                                       *)
(* ------------------------------------------------------------------ *)

type run_stats = {
  r_processed : int;
  r_applied : int;
  r_abandoned : int;
  r_rejected : int;
  r_dropped : int;
  r_sampled : int;
  r_hwm : int;
  r_watchdog_trips : int;
  r_final_policy : Bqueue.policy;
  r_degraded : bool;
}

let run ?(seed = 0) t items =
  let q = Bqueue.create ~policy:t.cfg.policy ~seed ~capacity:t.cfg.queue_capacity () in
  let heartbeat = Atomic.make 0 in
  let finished = Atomic.make false in
  let trips = Atomic.make 0 in
  let producer =
    Domain.spawn (fun () ->
        List.iter (fun item -> ignore (Bqueue.push q item)) items;
        Bqueue.close q)
  in
  let watchdog =
    if t.cfg.watchdog_ms <= 0 then None
    else
      Some
        (Domain.spawn (fun () ->
             let last = ref (-1) in
             while not (Atomic.get finished) do
               Unix.sleepf (float_of_int t.cfg.watchdog_ms /. 1000.);
               let beat = Atomic.get heartbeat in
               if
                 (not (Atomic.get finished))
                 && beat = !last
                 && Bqueue.length q > 0
               then (
                 (* consumer stalled with work queued: degrade so the
                    producer can never wedge behind a full queue *)
                 Atomic.incr trips;
                 Obs.Counter.incr c_watchdog;
                 Bqueue.set_policy q Bqueue.Shed_oldest);
               last := beat
             done))
  in
  let rec consume () =
    match Bqueue.pop q with
    | None -> ()
    | Some item ->
        ignore (feed t item);
        Atomic.incr heartbeat;
        consume ()
  in
  consume ();
  Atomic.set finished true;
  Domain.join producer;
  Option.iter Domain.join watchdog;
  flush t;
  let dropped = Bqueue.dropped q and sampled = Bqueue.sampled q in
  let trips = Atomic.get trips in
  { r_processed = t.processed;
    r_applied = t.applied;
    r_abandoned = t.abandoned;
    r_rejected = t.rejected;
    r_dropped = dropped;
    r_sampled = sampled;
    r_hwm = Bqueue.hwm q;
    r_watchdog_trips = trips;
    r_final_policy = Bqueue.policy q;
    r_degraded =
      t.abandoned > 0 || t.rejected > 0 || dropped > 0 || sampled > 0
      || trips > 0 }

(* ------------------------------------------------------------------ *)
(* Views and summaries                                                 *)
(* ------------------------------------------------------------------ *)

let view_of db routes =
  let ir = Db.ir db in
  let autnums =
    Hashtbl.fold (fun asn _ acc -> asn :: acc) ir.Ir.aut_nums []
    |> List.sort compare
  in
  let as_sets =
    Hashtbl.fold (fun name _ acc -> name :: acc) ir.Ir.as_sets []
    |> List.sort compare
  in
  (* newest first: the order the reversed cons list presented, which the
     event generator's goldens depend on *)
  let route_objs =
    let acc = ref [] in
    Ir.iter_routes ir (fun r -> acc := (r.Ir.prefix, r.Ir.origin) :: !acc);
    !acc
  in
  { Events.base_routes = routes; as_sets; autnums; route_objs }

let stats_to_json t (stats : run_stats) =
  Json.Obj
    [ ("processed", Json.Int stats.r_processed);
      ("applied", Json.Int stats.r_applied);
      ("abandoned", Json.Int stats.r_abandoned);
      ("rejected", Json.Int stats.r_rejected);
      ("dropped", Json.Int stats.r_dropped);
      ("sampled", Json.Int stats.r_sampled);
      ("queue_hwm", Json.Int stats.r_hwm);
      ("watchdog_trips", Json.Int stats.r_watchdog_trips);
      ("final_policy", Json.String (Bqueue.policy_name stats.r_final_policy));
      ("degraded", Json.Bool stats.r_degraded);
      ("generations", Json.Int t.generations);
      ("invalidated", Json.Int t.invalidated);
      ("hop_memo", Json.Int (Engine.hop_memo_size t.engine));
      ("nfa_cache", Json.Int (Engine.nfa_cache_size t.engine));
      ("rib", Json.Int (Hashtbl.length t.rib));
      ("windows", Json.List (List.map window_to_json (windows t))) ]
