(* Bounded producer/consumer queue with an explicit backpressure policy.
   See bqueue.mli. *)

module Obs = Rz_obs.Obs
module Splitmix = Rz_util.Splitmix

let c_dropped = Obs.Counter.make "stream.events_dropped"
let c_sampled = Obs.Counter.make "stream.events_sampled"

type policy = Block | Shed_oldest | Sample of float

let policy_name = function
  | Block -> "block"
  | Shed_oldest -> "shed-oldest"
  | Sample f -> Printf.sprintf "sample:%g" f

type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable policy : policy;
  mutable closed : bool;
  mutable hwm : int;
  mutable dropped : int;
  mutable sampled : int;
  rng : Splitmix.t;  (* Sample admission decisions; guarded by [mutex] *)
}

let create ?(policy = Block) ?(seed = 0) ~capacity () =
  if capacity <= 0 then invalid_arg "Bqueue.create: capacity must be positive";
  { q = Queue.create ();
    capacity;
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    policy;
    closed = false;
    hwm = 0;
    dropped = 0;
    sampled = 0;
    rng = Splitmix.create seed }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let set_policy t p = with_lock t (fun () -> t.policy <- p; Condition.broadcast t.not_full)
let policy t = with_lock t (fun () -> t.policy)
let length t = with_lock t (fun () -> Queue.length t.q)
let hwm t = with_lock t (fun () -> t.hwm)
let dropped t = with_lock t (fun () -> t.dropped)
let sampled t = with_lock t (fun () -> t.sampled)

let enqueue t x =
  Queue.push x t.q;
  if Queue.length t.q > t.hwm then t.hwm <- Queue.length t.q;
  Condition.signal t.not_empty

let push t x =
  with_lock t (fun () ->
      if t.closed then invalid_arg "Bqueue.push: closed";
      let rec go () =
        if Queue.length t.q < t.capacity then (enqueue t x; true)
        else
          match t.policy with
          | Block ->
              Condition.wait t.not_full t.mutex;
              if t.closed then invalid_arg "Bqueue.push: closed" else go ()
          | Shed_oldest ->
              ignore (Queue.pop t.q);
              t.dropped <- t.dropped + 1;
              Obs.Counter.incr c_dropped;
              enqueue t x;
              true
          | Sample keep ->
              if Splitmix.chance t.rng keep then (
                ignore (Queue.pop t.q);
                t.dropped <- t.dropped + 1;
                Obs.Counter.incr c_dropped;
                enqueue t x;
                true)
              else (
                t.sampled <- t.sampled + 1;
                Obs.Counter.incr c_sampled;
                false)
      in
      go ())

let pop t =
  with_lock t (fun () ->
      let rec go () =
        match Queue.take_opt t.q with
        | Some x -> Condition.signal t.not_full; Some x
        | None ->
            if t.closed then None
            else (Condition.wait t.not_empty t.mutex; go ())
      in
      go ())

let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.not_empty;
      Condition.broadcast t.not_full)
