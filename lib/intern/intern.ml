module Pool = struct
  type t = {
    ids : (string, int) Hashtbl.t;
    mutable strings : string array;
    mutable n : int;
  }

  let create () = { ids = Hashtbl.create 64; strings = Array.make 16 ""; n = 0 }

  let grow t =
    let cap = Array.length t.strings in
    if t.n = cap then begin
      let strings = Array.make (cap * 2) "" in
      Array.blit t.strings 0 strings 0 cap;
      t.strings <- strings
    end

  let intern t s =
    match Hashtbl.find_opt t.ids s with
    | Some id -> id
    | None ->
      let id = t.n in
      grow t;
      t.strings.(id) <- s;
      t.n <- t.n + 1;
      Hashtbl.add t.ids s id;
      id

  let resolve t id =
    if id < 0 || id >= t.n then
      invalid_arg (Printf.sprintf "Intern.Pool.resolve: id %d (pool has %d)" id t.n);
    t.strings.(id)

  let find_opt t s = Hashtbl.find_opt t.ids s
  let length t = t.n

  let iter t f =
    for id = 0 to t.n - 1 do
      f id t.strings.(id)
    done

  let copy t =
    { ids = Hashtbl.copy t.ids; strings = Array.copy t.strings; n = t.n }

  let add_u32 buf v =
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char buf (Char.chr (v land 0xff))

  let encode buf t =
    add_u32 buf t.n;
    for id = 0 to t.n - 1 do
      let s = t.strings.(id) in
      add_u32 buf (String.length s);
      Buffer.add_string buf s
    done

  let read_u32 s pos =
    if pos + 4 > String.length s then failwith "Intern.Pool.decode: truncated";
    (Char.code s.[pos] lsl 24)
    lor (Char.code s.[pos + 1] lsl 16)
    lor (Char.code s.[pos + 2] lsl 8)
    lor Char.code s.[pos + 3]

  let decode s ~pos =
    let n = read_u32 s pos in
    if n < 0 || n > String.length s then
      failwith "Intern.Pool.decode: implausible count";
    let t = create () in
    let pos = ref (pos + 4) in
    for _ = 1 to n do
      let len = read_u32 s !pos in
      if len < 0 || !pos + 4 + len > String.length s then
        failwith "Intern.Pool.decode: truncated string";
      let str = String.sub s (!pos + 4) len in
      pos := !pos + 4 + len;
      ignore (intern t str)
    done;
    if length t <> n then failwith "Intern.Pool.decode: duplicate strings";
    (t, !pos)
end

module Arena = struct
  type 'a t = {
    mutable items : 'a array;
    mutable n : int;
    mutable capacity : int;  (* initial size once the first element arrives *)
  }

  let create ?(capacity = 16) () =
    (* [items] stays empty until the first push provides a seed value, so
       no dummy element (and no [Obj.magic]) is ever stored. *)
    { items = [||]; n = 0; capacity = max 1 capacity }

  let push t x =
    let cap = Array.length t.items in
    if t.n = cap then begin
      let items = Array.make (max t.capacity (cap * 2)) x in
      Array.blit t.items 0 items 0 cap;
      t.items <- items
    end;
    t.items.(t.n) <- x;
    t.n <- t.n + 1

  let get t i =
    if i < 0 || i >= t.n then invalid_arg "Intern.Arena.get";
    t.items.(i)

  let length t = t.n

  let iter t f =
    for i = 0 to t.n - 1 do
      f t.items.(i)
    done

  let iter_rev t f =
    for i = t.n - 1 downto 0 do
      f t.items.(i)
    done

  let fold t ~init ~f =
    let acc = ref init in
    for i = 0 to t.n - 1 do
      acc := f !acc t.items.(i)
    done;
    !acc

  let filter_in_place t keep =
    let j = ref 0 in
    for i = 0 to t.n - 1 do
      let x = t.items.(i) in
      if keep x then begin
        t.items.(!j) <- x;
        incr j
      end
    done;
    (* release dropped slots so the GC can reclaim them *)
    if !j > 0 then
      for i = !j to t.n - 1 do
        t.items.(i) <- t.items.(0)
      done;
    t.n <- !j

  let copy t = { items = Array.copy t.items; n = t.n; capacity = t.capacity }

  let of_list l =
    match l with
    | [] -> create ()
    | _ ->
      let t = create ~capacity:(List.length l) () in
      List.iter (fun x -> push t x) l;
      t

  let to_list t =
    let acc = ref [] in
    for i = t.n - 1 downto 0 do
      acc := t.items.(i) :: !acc
    done;
    !acc
end
