(** String interning and arena storage for the compact IR.

    At paper scale the IR holds millions of route objects whose string
    fields (route-set names, maintainer handles, IRR source tags) repeat
    across nearly every object. [Pool] maps each distinct string to a
    dense int id — insertion-order stable, so two pools fed the same
    strings in the same order assign the same ids — and [Arena] stores
    the hot objects in a growable array instead of a cons list (one
    header word per element saved, cache-friendly iteration, in-place
    filtering). *)

module Pool : sig
  type t

  val create : unit -> t

  val intern : t -> string -> int
  (** Dense id for [s]; the same string always returns the same id, and
      ids are assigned 0, 1, 2, … in first-seen order. *)

  val resolve : t -> int -> string
  (** Inverse of {!intern}. @raise Invalid_argument on an id never
      issued by this pool. *)

  val find_opt : t -> string -> int option
  (** Id for [s] if already interned, without interning it. *)

  val length : t -> int
  (** Number of distinct strings interned so far. *)

  val iter : t -> (int -> string -> unit) -> unit
  (** Iterate (id, string) pairs in id order. *)

  val copy : t -> t
  (** Independent pool with the same contents and ids. *)

  val encode : Buffer.t -> t -> unit
  (** Append a self-delimiting binary encoding: u32 count, then each
      string as u32 length + bytes, in id order. *)

  val decode : string -> pos:int -> t * int
  (** Read an encoding produced by {!encode} starting at [pos]; returns
      the pool and the position one past it.
      @raise Failure on truncated or implausible input. *)
end

module Arena : sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  val push : 'a t -> 'a -> unit
  val get : 'a t -> int -> 'a
  val length : 'a t -> int

  val iter : 'a t -> ('a -> unit) -> unit
  (** In insertion order (index 0 first). *)

  val iter_rev : 'a t -> ('a -> unit) -> unit
  (** Newest first — the order the old reversed cons list presented. *)

  val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
  (** In insertion order. *)

  val filter_in_place : 'a t -> ('a -> bool) -> unit
  (** Drop elements failing the predicate; survivors keep their
      relative order. *)

  val copy : 'a t -> 'a t

  val of_list : 'a list -> 'a t
  (** Elements in list order. *)

  val to_list : 'a t -> 'a list
  (** In insertion order. *)
end
