(** Multi-process shard-and-merge verification — the paper-scale mode.

    OCaml 5 domains share one minor-GC barrier, so past a handful of
    domains the allocation-heavy verify loop stops scaling on one
    runtime. This module forks [shards] worker {e processes} instead
    ([Unix.fork]): each worker verifies the deterministic route shard
    [i mod shards = s] over the copy-on-write world it inherited, then
    ships one framed result delta back over a pipe — its private
    aggregate, its route accounting, and the registry counters it
    incremented — and the parent merges the deltas.

    The merge is exact, not approximate: per-worker dedup weights its
    reports by multiplicity (the same equivalence
    {!Rz_verify.Aggregate.add_route_report} documents), aggregates merge
    with {!Rz_verify.Aggregate.merge_into}, and counter deltas add back
    into the parent registry. A sharded run therefore fingerprints
    identically ({!Rz_verify.Aggregate.fingerprint}) to the sequential
    [Pipeline.verify] oracle, which the differential suite and the
    scale bench both gate on.

    {2 Frame protocol}

    Each worker writes exactly one frame and [_exit]s:

    {v magic "RZSHARDF" | payload length (u64 BE) | MD5(payload) | payload v}

    where the payload is the [Marshal]ed delta. The parent re-hashes and
    rejects the frame on any defect — bad magic, implausible length,
    checksum mismatch, truncation, a worker that died before writing —
    bumping [shard.frames_rejected] (a recovery counter: the keep-going
    exit-2 contract applies) and re-verifying that worker's shard inline,
    so a lost worker loses no routes.

    Setting [RPSLYZER_SHARD_FAULT=s] makes worker [s] corrupt its own
    payload after checksumming — the fault drill used by the smoke test
    to prove the rejection path end to end. *)

val frames_rejected : Rz_obs.Obs.Counter.t
(** The [shard.frames_rejected] recovery counter (listed in
    {!Rz_obs.Obs.recovery_counter_names}). *)

val verify_sharded :
  ?config:Rz_verify.Engine.config ->
  ?shards:int ->
  Rpslyzer.Pipeline.world ->
  Rz_verify.Aggregate.t * [ `Total of int ] * [ `Excluded of int ]
(** Verify every collector route of [world] across [shards] forked
    workers (default 1; values are clamped to at least 1) and merge the
    result. The triple mirrors [Pipeline.verify]'s so the CLI can swap
    the engines behind one flag. [shards = 1] still forks one worker —
    the protocol, not just the arithmetic, is on the measured path. *)
