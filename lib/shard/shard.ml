module Aggregate = Rz_verify.Aggregate
module Engine = Rz_verify.Engine
module Obs = Rz_obs.Obs
module P = Rpslyzer.Pipeline

let frames_rejected = Obs.Counter.make "shard.frames_rejected"
let c_workers = Obs.Counter.make "shard.workers_total"

let magic = "RZSHARDF"
let header_len = 8 + 8 + 16 (* magic, payload length u64 BE, MD5 *)

(* A hard ceiling on plausible payload size: a delta is one aggregate
   plus a counter alist, far under this even at paper scale. A garbage
   length field must not make the parent try to allocate it. *)
let max_payload = 1 lsl 32

(* What one worker ships back: its private aggregate, its share of the
   route accounting, and the registry metrics it moved (deltas against
   the post-fork baseline — the child inherits the parent's pre-fork
   counts, histogram buckets, and window cells, and must not echo them
   back). Histogram deltas are bucket arrays, window deltas are
   epoch-tagged cells; both merge commutatively in the parent, so the
   workers' latency observations (e.g. verify.route_ns) survive the
   fork boundary instead of being silently dropped. *)
type delta = {
  d_agg : Aggregate.t;
  d_total : int;
  d_excluded : int;
  d_counters : (string * int) list;
  d_hists : Obs.Histogram.snap list;
  d_windows : Obs.Window.snap list;
}

(* ------------------------------------------------------------------ *)
(* Shard verification (runs in the worker, and in the parent's retry)  *)
(* ------------------------------------------------------------------ *)

(* Same hand-rolled route hash as the core dedup table: this runs once
   per route of the shard, and the generic [Hashtbl.hash] structure walk
   is measurable at that frequency. *)
module Route_tbl = Hashtbl.Make (struct
  type t = Rz_bgp.Route.t

  let equal = Rz_bgp.Route.equal

  let hash (r : Rz_bgp.Route.t) =
    let h =
      match r.prefix.addr with
      | Rz_net.Prefix.V4 a -> (a * 31) + r.prefix.len
      | Rz_net.Prefix.V6 (hi, lo) ->
        (((Int64.to_int hi * 31) + Int64.to_int lo) * 31) + r.prefix.len
    in
    List.fold_left
      (fun h (seg : Rz_bgp.Route.segment) ->
        match seg with
        | Rz_bgp.Route.Seq asn -> (h * 31) + asn
        | Rz_bgp.Route.Set asns ->
          List.fold_left (fun h a -> (h * 33) + a) (h * 37) asns)
      h r.path
end)

(* Verify the shard [i mod shards = shard] of [routes] into [agg],
   deduplicating within the shard (first-occurrence order, reports
   weighted by multiplicity — the exact-equivalence contract of
   [Aggregate.add_route_report]). Returns (total, excluded) for the
   shard's accounting. *)
let verify_slice ?config (world : P.world) routes ~shards ~shard agg =
  let n = Array.length routes in
  let index = Route_tbl.create 1024 in
  let order = ref [] in
  let total = ref 0 in
  let i = ref shard in
  while !i < n do
    incr total;
    let route = routes.(!i) in
    (match Route_tbl.find index route with
     | cell -> incr cell
     | exception Not_found ->
       Route_tbl.add index route (ref 1);
       order := route :: !order);
    i := !i + shards
  done;
  let engine = Engine.create ?config world.P.db world.P.rels in
  let excluded = ref 0 in
  List.iter
    (fun route ->
      let weight = !(Route_tbl.find index route) in
      match Engine.verify_route engine route with
      | Some report ->
        Aggregate.add_route_report ~weight agg report;
        Engine.replay_route_counters ~times:(weight - 1) (Some report)
      | None ->
        excluded := !excluded + weight;
        Engine.replay_route_counters ~times:(weight - 1) None)
    (List.rev !order);
  (!total, !excluded)

(* ------------------------------------------------------------------ *)
(* Frame protocol                                                      *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let n = String.length s in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

(* Read exactly [n] bytes; [None] on premature EOF (dead worker). *)
let read_exact fd n =
  let buf = Bytes.create n in
  let rec go off =
    if off = n then Some (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (n - off) with
      | 0 -> None
      | k -> go (off + k)
  in
  go 0

(* RPSLYZER_SHARD_FAULT="<s>" corrupts worker s's frame after
   checksumming; "<s>:crash" kills worker s before it writes anything.
   Both land on the same parent-side rejection + inline-retry path. *)
let fault_shard () =
  match Sys.getenv_opt "RPSLYZER_SHARD_FAULT" with
  | None -> None
  | Some spec -> (
    match String.split_on_char ':' (String.trim spec) with
    | [ s ] -> Option.map (fun i -> (i, `Corrupt)) (int_of_string_opt s)
    | [ s; "crash" ] -> Option.map (fun i -> (i, `Crash)) (int_of_string_opt s)
    | _ -> None)

let encode_frame ~corrupt (d : delta) =
  let payload = Marshal.to_string d [] in
  let len = String.length payload in
  let md5 = Digest.string payload in
  let header = Bytes.create header_len in
  Bytes.blit_string magic 0 header 0 8;
  for i = 0 to 7 do
    Bytes.set header (8 + i) (Char.chr ((len lsr (56 - (8 * i))) land 0xff))
  done;
  Bytes.blit_string md5 0 header 16 16;
  let payload =
    (* the fault drill: checksum first, then flip one payload byte, so
       the parent's MD5 check is what catches it *)
    if corrupt && len > 0 then begin
      let b = Bytes.of_string payload in
      let k = len / 2 in
      Bytes.set b k (Char.chr (Char.code (Bytes.get b k) lxor 0xff));
      Bytes.unsafe_to_string b
    end
    else payload
  in
  Bytes.unsafe_to_string header ^ payload

let decode_frame fd =
  match read_exact fd header_len with
  | None -> Error "no frame (worker died before writing)"
  | Some header ->
    if String.sub header 0 8 <> magic then Error "bad frame magic"
    else begin
      let len = ref 0 in
      for i = 0 to 7 do
        len := (!len lsl 8) lor Char.code header.[8 + i]
      done;
      if !len < 0 || !len > max_payload then
        Error (Printf.sprintf "implausible frame length %d" !len)
      else
        let md5 = String.sub header 16 16 in
        match read_exact fd !len with
        | None -> Error "truncated frame payload"
        | Some payload ->
          if Digest.string payload <> md5 then Error "frame checksum mismatch"
          else
            match (Marshal.from_string payload 0 : delta) with
            | d -> Ok d
            | exception _ -> Error "undecodable frame payload"
    end

(* ------------------------------------------------------------------ *)
(* Fork, merge, recover                                                *)
(* ------------------------------------------------------------------ *)

let counter_list () = Obs.Registry.counters (Obs.Registry.snapshot ())

let counters_since baseline current =
  List.filter_map
    (fun (name, v) ->
      let b = Option.value ~default:0 (List.assoc_opt name baseline) in
      if v - b <> 0 then Some (name, v - b) else None)
    current

let verify_sharded ?config ?(shards = 1) (world : P.world) =
  Obs.Span.with_ "verify" @@ fun () ->
  let shards = max 1 shards in
  let routes =
    Array.of_list
      (List.concat_map
         (fun (d : Rz_bgp.Table_dump.t) -> d.routes)
         world.P.table_dumps)
  in
  (* Warm the shared read-only caches before forking: the workers then
     inherit them copy-on-write instead of each paying the warm-up. *)
  Rz_irr.Db.warm_caches world.P.db;
  Rz_asrel.Rel_db.warm_cones world.P.rels;
  let fault = fault_shard () in
  (* Spawn all workers first, then drain their pipes in shard order: each
     worker writes one frame to its own pipe, so later workers simply
     block in [write] until the parent gets to them. *)
  let workers =
    List.init shards (fun s ->
        let r, w = Unix.pipe ~cloexec:false () in
        flush stdout;
        flush stderr;
        match Unix.fork () with
        | 0 ->
          Unix.close r;
          if fault = Some (s, `Crash) then Unix._exit 3;
          let status =
            try
              let baseline = counter_list () in
              let hist_baseline = Obs.Histogram.snapshot_all () in
              let window_baseline = Obs.Window.snapshot_all () in
              let agg = Aggregate.create () in
              let total, excluded =
                verify_slice ?config world routes ~shards ~shard:s agg
              in
              let d_counters = counters_since baseline (counter_list ()) in
              let d_hists = Obs.Histogram.deltas_since hist_baseline in
              let d_windows = Obs.Window.deltas_since window_baseline in
              let frame =
                encode_frame ~corrupt:(fault = Some (s, `Corrupt))
                  { d_agg = agg; d_total = total; d_excluded = excluded;
                    d_counters; d_hists; d_windows }
              in
              write_all w frame;
              0
            with _ -> 1
          in
          (try Unix.close w with Unix.Unix_error _ -> ());
          (* skip at_exit: the child must not flush the stdio buffers it
             shares copy-on-write with the parent *)
          Unix._exit status
        | pid ->
          Unix.close w;
          Obs.Counter.incr c_workers;
          (s, pid, r))
  in
  let agg = Aggregate.create () in
  let total = ref 0 and excluded = ref 0 in
  let failed = ref [] in
  List.iter
    (fun (s, pid, r) ->
      let frame = decode_frame r in
      (try Unix.close r with Unix.Unix_error _ -> ());
      let _, status = Unix.waitpid [] pid in
      match (frame, status) with
      | Ok d, Unix.WEXITED 0 ->
        Aggregate.merge_into ~dst:agg d.d_agg;
        total := !total + d.d_total;
        excluded := !excluded + d.d_excluded;
        List.iter
          (fun (name, v) -> Obs.Counter.add (Obs.Counter.make name) v)
          d.d_counters;
        List.iter Obs.Histogram.merge_into d.d_hists;
        List.iter Obs.Window.merge_into d.d_windows
      | Ok _, _ | Error _, _ ->
        (* One bump per lost shard, whatever the defect: the exit-2
           recovery contract counts degraded shards, not bad bytes. *)
        Obs.Counter.incr frames_rejected;
        (match frame with
         | Error msg ->
           Printf.eprintf "rpslyzer: shard %d rejected: %s; re-verifying inline\n%!"
             s msg
         | Ok _ ->
           Printf.eprintf
             "rpslyzer: shard %d worker exited abnormally; re-verifying inline\n%!"
             s);
        failed := s :: !failed)
    workers;
  (* Recovery: a rejected shard is re-verified in-process. Nothing was
     merged from its frame, so the retry never double-counts. *)
  List.iter
    (fun s ->
      let t, e = verify_slice ?config world routes ~shards ~shard:s agg in
      total := !total + t;
      excluded := !excluded + e)
    (List.rev !failed);
  (agg, `Total !total, `Excluded !excluded)
