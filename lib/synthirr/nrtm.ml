(* NRTM-style ADD/DEL journals over rendered RPSL dumps. See nrtm.mli. *)

module Splitmix = Rz_util.Splitmix
module Strings = Rz_util.Strings
module Obs = Rz_obs.Obs

let c_ops = Obs.Counter.make "nrtm.ops_total"
let c_rejected = Obs.Counter.make "nrtm.ops_rejected"

type action = Add | Del

type op = {
  serial : int;
  source : string;
  action : action;
  text : string;
}

type key = string

(* ---------------- paragraphs ---------------- *)

(* Split dump text into blank-line-separated paragraphs, preserving
   order. Remark paragraphs (%- or #-led) are kept so reassembly does
   not lose them; they carry the empty key. *)
let paragraphs text =
  let lines = String.split_on_char '\n' text in
  let blocks = ref [] and cur = ref [] in
  let flush () =
    if !cur <> [] then begin
      blocks := String.concat "\n" (List.rev !cur) :: !blocks;
      cur := []
    end
  in
  List.iter
    (fun line ->
      if Strings.is_blank line then flush () else cur := line :: !cur)
    lines;
  flush ();
  List.rev !blocks

let unparagraphs blocks =
  match blocks with
  | [] -> ""
  | _ -> String.concat "\n\n" blocks ^ "\n"

let first_attr para =
  match String.index_opt para ':' with
  | None -> None
  | Some i ->
    let line_end =
      match String.index_opt para '\n' with
      | Some j -> j
      | None -> String.length para
    in
    if i >= line_end then None
    else
      let cls = Strings.lowercase (Strings.strip (String.sub para 0 i)) in
      let value = Strings.strip (String.sub para (i + 1) (line_end - i - 1)) in
      if cls = "" || String.contains cls ' ' then None else Some (cls, value)

let attr_value para name =
  let needle = name ^ ":" in
  let rec find = function
    | [] -> None
    | line :: rest ->
      if Strings.starts_with_ci ~prefix:needle line then
        Some
          (Strings.strip
             (String.sub line (String.length needle)
                (String.length line - String.length needle)))
      else find rest
  in
  find (String.split_on_char '\n' para)

let key_of_paragraph para =
  if String.length para > 0 && (para.[0] = '%' || para.[0] = '#') then ""
  else
    match first_attr para with
    | None -> ""
    | Some (cls, name) ->
      let name = Strings.uppercase name in
      if cls = "route" || cls = "route6" then
        let origin =
          match attr_value para "origin" with
          | Some o -> Strings.uppercase o
          | None -> ""
        in
        Printf.sprintf "%s|%s|%s" cls name origin
      else Printf.sprintf "%s|%s" cls name

(* ---------------- generation ---------------- *)

(* Mutable view of the dump set the generator edits as it draws ops, so
   every op is valid at its point in the journal (no double deletes, no
   adds of keys that still exist elsewhere). *)
type gen_state = {
  mutable next_fresh : int;                     (* fresh 198.18/15 allocator *)
  key_counts : (key, int) Hashtbl.t;            (* across all dumps *)
  live : (key, string * string) Hashtbl.t;      (* key -> (source, text) *)
}

let index_dumps dumps =
  let st =
    { next_fresh = 0; key_counts = Hashtbl.create 1024; live = Hashtbl.create 1024 }
  in
  List.iter
    (fun (source, text) ->
      List.iter
        (fun para ->
          let key = key_of_paragraph para in
          if key <> "" then begin
            let n = Option.value ~default:0 (Hashtbl.find_opt st.key_counts key) in
            Hashtbl.replace st.key_counts key (n + 1);
            Hashtbl.replace st.live key (source, para)
          end)
        (paragraphs text))
    dumps;
  st

let unique_keyed st ~cls_prefix =
  Hashtbl.fold
    (fun key (source, text) acc ->
      if
        Hashtbl.find_opt st.key_counts key = Some 1
        && List.exists
             (fun p -> String.length key >= String.length p
                       && String.sub key 0 (String.length p) = p)
             cls_prefix
      then (key, source, text) :: acc
      else acc)
    st.live []
  |> List.sort compare

let fresh_route st rng origins =
  (* 198.18.0.0/15 is disjoint from the topology's 20.0.0.0/8 space, so
     fresh keys never collide with (or shadow) generated route objects. *)
  let i = st.next_fresh in
  st.next_fresh <- i + 1;
  let prefix = Printf.sprintf "198.%d.%d.0/24" (18 + (i lsr 8)) (i land 0xFF) in
  let origin = Splitmix.choose_list rng origins in
  Printf.sprintf "route: %s\norigin: %s" prefix origin

let generate ~seed ~n dumps =
  let rng = Splitmix.create seed in
  let st = index_dumps dumps in
  let sources = List.map fst dumps in
  let origins =
    let routes = unique_keyed st ~cls_prefix:[ "route|"; "route6|" ] in
    let os =
      List.filter_map (fun (_, _, text) -> attr_value text "origin") routes
      |> List.sort_uniq compare
    in
    if os = [] then [ "AS64500" ] else os
  in
  let serial = ref 0 in
  let next_serial () = incr serial; !serial in
  let del st key =
    Hashtbl.remove st.live key;
    Hashtbl.remove st.key_counts key
  in
  let add st source text =
    let key = key_of_paragraph text in
    Hashtbl.replace st.live key (source, text);
    Hashtbl.replace st.key_counts key 1;
    key
  in
  let ops = ref [] in
  let emit o = ops := o :: !ops in
  let pick_unique cls_prefix =
    match unique_keyed st ~cls_prefix with
    | [] -> None
    | candidates -> Some (Splitmix.choose_list rng candidates)
  in
  (* Draws that find no candidate emit nothing; the attempt cap keeps a
     degenerate dump set (nothing editable) from spinning forever. *)
  let attempts = ref 0 in
  while !serial < n && !attempts < 20 * (n + 1) do
    incr attempts;
    match Splitmix.int rng 100 with
    | r when r < 30 ->
      (* fresh route object *)
      let source = Splitmix.choose_list rng sources in
      let text = fresh_route st rng origins in
      ignore (add st source text);
      emit { serial = next_serial (); source; action = Add; text }
    | r when r < 55 -> (
      (* delete a route object *)
      match pick_unique [ "route|"; "route6|" ] with
      | None -> ()
      | Some (key, source, text) ->
        del st key;
        emit { serial = next_serial (); source; action = Del; text })
    | r when r < 75 -> (
      (* modify an as-set: DEL old text, ADD with one more member *)
      match pick_unique [ "as-set|" ] with
      | None -> ()
      | Some (key, source, text) ->
        let member = Printf.sprintf "AS%d" (64600 + Splitmix.int rng 200) in
        let text' = text ^ "\nmembers: " ^ member in
        emit { serial = next_serial (); source; action = Del; text };
        del st key;
        ignore (add st source text');
        emit { serial = next_serial (); source; action = Add; text = text' })
    | r when r < 92 -> (
      (* modify an aut-num: append one import rule *)
      match pick_unique [ "aut-num|" ] with
      | None -> ()
      | Some (key, source, text) ->
        let peer = Printf.sprintf "AS%d" (64800 + Splitmix.int rng 200) in
        let text' = text ^ Printf.sprintf "\nimport: from %s accept ANY" peer in
        emit { serial = next_serial (); source; action = Del; text };
        del st key;
        ignore (add st source text');
        emit { serial = next_serial (); source; action = Add; text = text' })
    | _ -> (
      (* delete a whole as-set *)
      match pick_unique [ "as-set|" ] with
      | None -> ()
      | Some (key, source, text) ->
        del st key;
        emit { serial = next_serial (); source; action = Del; text })
  done;
  let ops = List.rev !ops in
  Obs.Counter.add c_ops (List.length ops);
  ops

(* ---------------- text-level replay ---------------- *)

let apply_to_dumps ops dumps =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (source, text) -> Hashtbl.replace tbl source (paragraphs text)) dumps;
  List.iter
    (fun op ->
      match Hashtbl.find_opt tbl op.source with
      | None -> ()
      | Some blocks ->
        let key = key_of_paragraph op.text in
        let without = List.filter (fun b -> key_of_paragraph b <> key) blocks in
        let blocks' =
          match op.action with
          | Del -> without
          | Add -> without @ [ op.text ]
        in
        Hashtbl.replace tbl op.source blocks')
    ops;
  List.map
    (fun (source, _) -> (source, unparagraphs (Hashtbl.find tbl source)))
    dumps

(* ---------------- journal text ---------------- *)

let action_name = function Add -> "ADD" | Del -> "DEL"

let render ops =
  let b = Buffer.create 4096 in
  let first = match ops with o :: _ -> o.serial | [] -> 0 in
  let last = List.fold_left (fun _ o -> o.serial) first ops in
  Buffer.add_string b
    (Printf.sprintf "%%START Version: 3 rpslyzer %d-%d\n" first last);
  List.iter
    (fun op ->
      Buffer.add_string b
        (Printf.sprintf "%s %d %s\n\n%s\n\n" (action_name op.action) op.serial
           op.source op.text))
    ops;
  Buffer.add_string b "%END rpslyzer\n";
  Buffer.contents b

let max_paragraph_bytes = 65_536

let parse text =
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let n = Array.length lines in
  let ops = ref [] and errors = ref [] in
  let reject line reason =
    errors := (line, reason) :: !errors;
    Obs.Counter.incr c_rejected
  in
  let last_serial = ref 0 in
  let i = ref 0 in
  while !i < n do
    let line = lines.(!i) in
    let lineno = !i + 1 in
    if Strings.is_blank line || (String.length line > 0 && line.[0] = '%') then
      incr i
    else begin
      (* op header *)
      let header_ok =
        match Strings.split_words line with
        | [ action; serial; source ] -> (
          let action =
            match action with
            | "ADD" -> Some Add
            | "DEL" -> Some Del
            | _ -> None
          in
          match (action, int_of_string_opt serial) with
          | Some action, Some serial when serial > !last_serial ->
            Some (action, serial, source)
          | Some _, Some _ -> None
          | _ -> None)
        | _ -> None
      in
      (* collect the paragraph that follows, regardless, so a bad header
         skips its payload instead of re-rejecting every line of it *)
      incr i;
      while !i < n && Strings.is_blank lines.(!i) do incr i done;
      let para = Buffer.create 256 in
      while !i < n && not (Strings.is_blank lines.(!i)) do
        if Buffer.length para > 0 then Buffer.add_char para '\n';
        Buffer.add_string para lines.(!i);
        incr i
      done;
      let para = Buffer.contents para in
      match header_ok with
      | None -> reject lineno (Printf.sprintf "malformed op header %S" line)
      | Some (action, serial, source) ->
        if String.contains para '\000' then
          reject lineno "NUL byte in paragraph"
        else if String.length para > max_paragraph_bytes then
          reject lineno "oversized paragraph"
        else if key_of_paragraph para = "" then
          reject lineno "paragraph has no key attribute"
        else begin
          last_serial := serial;
          ops := { serial; source; action; text = para } :: !ops
        end
    end
  done;
  (List.rev !ops, List.rev !errors)
