module Splitmix = Rz_util.Splitmix
module Gen = Rz_topology.Gen
module Rel_db = Rz_asrel.Rel_db

type persona =
  | No_aut_num
  | No_rules
  | Regular
  | Only_provider
  | Any_any
  | Complex

type profile = {
  asn : Rz_net.Asn.t;
  persona : persona;
  export_self : bool;
  import_customer : bool;
  uses_mp : bool;
  has_route_set : bool;
  has_self_set : bool;
  home_irr : string;
  dropped_neighbors : Rz_net.Asn.t list;
  mnt : string;  (** maintainer handle; siblings share one *)
}

type world = {
  topo : Rz_topology.Gen.t;
  config : Config.t;
  profiles : (Rz_net.Asn.t, profile) Hashtbl.t;
  dumps : (string * string) list;
}

let irr_names =
  [ "APNIC"; "AFRINIC"; "ARIN"; "LACNIC"; "RIPE"; "IDNIC"; "JPIRR"; "RADB";
    "NTTCOM"; "LEVEL3"; "TC"; "REACH"; "ALTDB" ]

(* Home-IRR weights shaped like the paper's Table 1 object counts. *)
let irr_weights =
  [ (0.15, "APNIC"); (0.03, "AFRINIC"); (0.04, "ARIN"); (0.02, "LACNIC");
    (0.45, "RIPE"); (0.03, "IDNIC"); (0.01, "JPIRR"); (0.12, "RADB");
    (0.04, "NTTCOM"); (0.02, "LEVEL3"); (0.05, "TC"); (0.01, "REACH");
    (0.03, "ALTDB") ]

let cone_set_name asn = Printf.sprintf "AS%d:AS-CUST" asn
let self_set_name asn = Printf.sprintf "AS%d:AS-SELF" asn
let route_set_name asn = Printf.sprintf "AS%d:RS-ROUTES" asn
let maintainer asn = Printf.sprintf "MNT-AS%d" asn

(* ---------------- RPSL emission helpers ---------------- *)

type writer = (string, Buffer.t) Hashtbl.t

let buffer_of (w : writer) irr =
  match Hashtbl.find_opt w irr with
  | Some b -> b
  | None ->
    let b = Buffer.create 65536 in
    Hashtbl.replace w irr b;
    b

let emit w irr attrs =
  let b = buffer_of w irr in
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s:%s%s\n" k (if v = "" then "" else " ") v))
    attrs;
  Buffer.add_char b '\n'

(* ---------------- persona assignment ---------------- *)

let assign_profiles (config : Config.t) (topo : Gen.t) rng =
  let profiles = Hashtbl.create 512 in
  Array.iteri
    (fun idx asn ->
      let is_transit = Rel_db.customers topo.rels asn <> [] in
      let tier = Gen.tier topo asn in
      let home_irr = Splitmix.weighted rng irr_weights in
      let base_persona =
        match tier with
        | Gen.Tier1 ->
          (* The paper finds extreme variance at the top: some Tier-1s have
             zero rules, others thousands. *)
          Splitmix.weighted rng
            [ (0.3, No_rules); (0.2, Any_any); (0.4, Regular); (0.1, Complex) ]
        | Gen.Mid | Gen.Stub ->
          Splitmix.weighted rng
            [ (config.p_no_aut_num, No_aut_num);
              (config.p_no_rules, No_rules);
              (config.p_any_any, Any_any);
              (config.p_complex, Complex);
              ((if is_transit then config.p_only_provider else 0.0001), Only_provider);
              ( 1.0 -. config.p_no_aut_num -. config.p_no_rules -. config.p_any_any
                -. config.p_complex -. config.p_only_provider,
                Regular ) ]
      in
      (* The LACNIC dump carries no import/export rules at all. *)
      let persona =
        if home_irr = "LACNIC" && base_persona <> No_aut_num then No_rules
        else base_persona
      in
      let writes_rules =
        match persona with
        | Regular | Only_provider | Complex -> true
        | No_aut_num | No_rules | Any_any -> false
      in
      let dropped_neighbors =
        (* Undeclared peerings concentrate at ASes with many sessions (the
           paper's Figure 3); never strip an AS's only covered neighbor,
           which would masquerade as the separate "zero rules" category. *)
        if writes_rules then begin
          let neighbors = Rel_db.neighbors topo.rels asn in
          if List.length neighbors < 2 then []
          else begin
            let dropped =
              List.filter
                (fun _ -> Splitmix.chance rng config.p_neighbor_rule_missing)
                neighbors
            in
            if List.length dropped = List.length neighbors then List.tl dropped
            else dropped
          end
        end
        else []
      in
      (* a few organizations run several ASNs under one maintainer (the
         sibling signal as2org-style pipelines mine) *)
      let mnt =
        if idx > 0 && Splitmix.chance rng 0.05 then
          maintainer topo.ases.(Splitmix.int rng idx)
        else maintainer asn
      in
      Hashtbl.replace profiles asn
        { asn;
          persona;
          mnt;
          export_self = is_transit && Splitmix.chance rng config.p_export_self;
          import_customer = is_transit && Splitmix.chance rng config.p_import_customer;
          uses_mp = Splitmix.chance rng config.p_mp_rules;
          has_route_set = is_transit && Splitmix.chance rng config.p_route_set_defined;
          has_self_set =
            (not is_transit) && Splitmix.chance rng config.p_singleton_set;
          home_irr;
          dropped_neighbors })
    topo.ases;
  profiles

(* ---------------- rule text generation ---------------- *)

(* The filter an AS uses to describe "my own routes and my customers'":
   the cone as-set for transit ASes (unless misusing export-self), the
   bare ASN otherwise. *)
let self_filter (profiles : (int, profile) Hashtbl.t) topo asn =
  let p = Hashtbl.find profiles asn in
  let is_transit = Rel_db.customers topo.Gen.rels asn <> [] in
  if is_transit && not p.export_self then cone_set_name asn
  else if p.has_self_set then self_set_name asn
  else Printf.sprintf "AS%d" asn

(* The filter an AS uses for routes arriving from a neighbor [n]. *)
let neighbor_filter (config : Config.t) profiles topo rng n =
  let np : profile = Hashtbl.find profiles n in
  let n_transit = Rel_db.customers topo.Gen.rels n <> [] in
  if n_transit && np.has_route_set && Splitmix.chance rng config.p_filter_uses_route_set
  then route_set_name n
  else if n_transit then cone_set_name n
  else Printf.sprintf "AS%d" n

let rule_attr (p : profile) direction body =
  let base = match direction with `Import -> "import" | `Export -> "export" in
  if p.uses_mp then ("mp-" ^ base, "afi any.unicast " ^ body) else (base, body)

(* Regular / Only_provider / Complex rule bodies for one AS. *)
let rules_for (config : Config.t) profiles (topo : Gen.t) rng (p : profile) =
  let rels = topo.rels in
  let asn = p.asn in
  let covered n = not (List.mem n p.dropped_neighbors) in
  let rules = ref [] in
  let add direction body = rules := rule_attr p direction body :: !rules in
  let providers = Rel_db.providers rels asn in
  let peers = Rel_db.peers rels asn in
  let customers = Rel_db.customers rels asn in
  (* Providers: import everything, export self/cone. *)
  List.iter
    (fun prov ->
      if covered prov then begin
        add `Import (Printf.sprintf "from AS%d accept ANY" prov);
        add `Export
          (Printf.sprintf "to AS%d announce %s" prov (self_filter profiles topo asn))
      end)
    providers;
  if p.persona <> Only_provider then begin
    (* Peers: accept the peer's routes, export self/cone. A Complex AS
       writes its first peer's import against a BGP community — the
       construct the verifier must Skip (the paper's 114 skipped rules). *)
    (* A Complex transit AS writes one import against a BGP community —
       the construct the verifier must Skip (the paper's 114 skipped
       rules). Pin it to the first customer (whose uphill routes collectors
       actually observe), falling back to the first peer. *)
    let community_peer =
      match (p.persona, customers, peers) with
      | Complex, cust :: _, _ -> Some cust
      | Complex, [], peer :: _ -> Some peer
      | _ -> None
    in
    List.iter
      (fun peer ->
        if community_peer = Some peer then begin
          add `Import (Printf.sprintf "from AS%d accept community(65535:666)" peer);
          add `Export
            (Printf.sprintf "to AS%d announce %s" peer (self_filter profiles topo asn))
        end
        else if covered peer then begin
          add `Import
            (Printf.sprintf "from AS%d accept %s" peer
               (neighbor_filter config profiles topo rng peer));
          add `Export
            (Printf.sprintf "to AS%d announce %s" peer (self_filter profiles topo asn))
        end)
      peers;
    (* Customers: import their cone (or the import-customer misuse),
       export full table. *)
    List.iter
      (fun cust ->
        if community_peer = Some cust then begin
          add `Import (Printf.sprintf "from AS%d accept community(65535:666)" cust);
          add `Export (Printf.sprintf "to AS%d announce ANY" cust)
        end
        else if covered cust then begin
          let filter =
            if p.import_customer then Printf.sprintf "AS%d" cust
            else neighbor_filter config profiles topo rng cust
          in
          add `Import (Printf.sprintf "from AS%d accept %s" cust filter);
          add `Export (Printf.sprintf "to AS%d announce ANY" cust)
        end)
      customers
  end;
  (* Compound extras for the Complex persona. *)
  if p.persona = Complex then begin
    (match providers with
     | prov :: _ ->
       let steer =
         match customers with c :: _ -> c | [] -> asn
       in
       rules :=
         ( "mp-import",
           Printf.sprintf
             "afi any.unicast from AS%d accept ANY AND NOT {0.0.0.0/0, ::/0} REFINE afi \
              ipv4.unicast from AS%d action pref=200; accept <^AS%d .* AS%d$>"
             prov prov prov steer )
         :: !rules
     | [] -> ());
    (match peers with
     | peer :: _ ->
       rules :=
         ( "import",
           Printf.sprintf
             "from AS%d action pref = 100; community .= { 65000:%d }; accept PeerAS"
             peer (asn mod 1000) )
         :: !rules
     | [] -> ());
    (* exercise peering-set and filter-set references, the rare object
       kinds Table 2 tracks *)
    let idx = 1 + (asn mod config.n_peering_sets) in
    let fidx = 1 + (asn mod config.n_filter_sets) in
    rules :=
      ("import", Printf.sprintf "from PRNG-SYNTH-%d accept FLTR-SYNTH-%d" idx fidx)
      :: !rules;
  end;
  List.rev !rules

(* ---------------- object emission ---------------- *)

let emit_aut_num config profiles topo rng w ~member_of (p : profile) =
  if p.persona <> No_aut_num then begin
    let rules =
      match p.persona with
      | No_aut_num | No_rules -> []
      | Any_any ->
        [ rule_attr p `Import "from AS-ANY accept ANY";
          rule_attr p `Export "to AS-ANY announce ANY" ]
      | Regular | Only_provider | Complex -> rules_for config profiles topo rng p
    in
    (* stubs often register a default route toward their main provider *)
    let rules =
      match (p.persona, Rel_db.providers topo.rels p.asn) with
      | (Regular | Complex), prov :: _
        when Rel_db.customers topo.rels p.asn = [] && Splitmix.chance rng 0.3 ->
        rules @ [ ("default", Printf.sprintf "to AS%d action pref=100; networks ANY" prov) ]
      | _ -> rules
    in
    let member_of_attrs =
      if List.mem p.asn member_of then [ ("member-of", "AS-COOPERATIVE") ] else []
    in
    emit w p.home_irr
      ([ ("aut-num", Printf.sprintf "AS%d" p.asn);
         ("as-name", Printf.sprintf "NET-%d" p.asn) ]
       @ rules @ member_of_attrs
       @ [ ("mnt-by", p.mnt); ("source", p.home_irr) ])
  end

let emit_as_set config topo rng w (profiles : (int, profile) Hashtbl.t) (p : profile) =
  let customers = Rel_db.customers topo.Gen.rels p.asn in
  if customers <> [] && p.persona <> No_aut_num then begin
    (* Cone set: self plus, per customer, either its ASN (stub) or its own
       cone set (transit) — this is where real-world recursive as-set
       structure comes from. Members are dropped at the configured
       staleness rate. *)
    let members =
      Printf.sprintf "AS%d" p.asn
      :: List.filter_map
           (fun c ->
             if Splitmix.chance rng config.Config.p_as_set_member_missing then None
             else if Rel_db.customers topo.Gen.rels c <> [] then Some (cone_set_name c)
             else Some (Printf.sprintf "AS%d" c))
           customers
    in
    emit w p.home_irr
      [ ("as-set", cone_set_name p.asn);
        ("members", String.concat ", " members);
        ("mnt-by", maintainer p.asn);
        ("source", p.home_irr) ];
    if Splitmix.chance rng config.Config.p_dup_in_radb && p.home_irr <> "RADB" then
      emit w "RADB"
        [ ("as-set", cone_set_name p.asn);
          ("members", String.concat ", " members);
          ("mnt-by", maintainer p.asn);
          ("source", "RADB") ]
  end;
  ignore profiles

let emit_self_set w (p : profile) =
  if p.has_self_set && p.persona <> No_aut_num then
    emit w p.home_irr
      [ ("as-set", self_set_name p.asn);
        ("members", Printf.sprintf "AS%d" p.asn);
        ("mnt-by", maintainer p.asn);
        ("source", p.home_irr) ]

let emit_route_set topo rng w (p : profile) =
  if p.has_route_set && p.persona <> No_aut_num then begin
    let prefixes = Gen.prefixes_of topo p.asn in
    let members =
      List.map
        (fun prefix ->
          let text = Rz_net.Prefix.to_string prefix in
          if Splitmix.chance rng 0.3 then text ^ "^+" else text)
        prefixes
    in
    (* Transit route-sets also pull in customer routes via the customers'
       ASNs (RFC 2622 allows ASN members in route-sets). *)
    let customer_members =
      List.map (fun c -> Printf.sprintf "AS%d" c) (Rel_db.customers topo.Gen.rels p.asn)
    in
    emit w p.home_irr
      [ ("route-set", route_set_name p.asn);
        ("members", String.concat ", " (members @ customer_members));
        ("mnt-by", maintainer p.asn);
        ("source", p.home_irr) ]
  end

let emit_routes config topo rng w (profiles : (int, profile) Hashtbl.t) (p : profile) =
  let all_asns = topo.Gen.ases in
  List.iter
    (fun prefix ->
      let missing = Splitmix.chance rng config.Config.p_route_missing in
      let cls = if Rz_net.Prefix.is_v4 prefix then "route" else "route6" in
      let text = Rz_net.Prefix.to_string prefix in
      if not missing then begin
        emit w p.home_irr
          [ (cls, text);
            ("origin", Printf.sprintf "AS%d" p.asn);
            ("mnt-by", maintainer p.asn);
            ("source", p.home_irr) ];
        if Splitmix.chance rng config.Config.p_dup_in_radb && p.home_irr <> "RADB" then
          emit w "RADB"
            [ (cls, text);
              ("origin", Printf.sprintf "AS%d" p.asn);
              ("mnt-by", maintainer p.asn);
              ("source", "RADB") ]
      end;
      (* A provider registering its customer's route: same pair, another
         maintainer, the provider's home IRR. *)
      (match Rel_db.providers topo.Gen.rels p.asn with
       | prov :: _ when Splitmix.chance rng config.Config.p_route_foreign_mnt ->
         let prov_profile = Hashtbl.find profiles prov in
         emit w prov_profile.home_irr
           [ (cls, text);
             ("origin", Printf.sprintf "AS%d" p.asn);
             ("mnt-by", maintainer prov);
             ("source", prov_profile.home_irr) ]
       | _ -> ());
      (* Stale object with a wrong origin, the hygiene problem the paper
         quantifies (40x more multi-origin prefixes than BGP). *)
      if Splitmix.chance rng config.Config.p_route_stale_origin then begin
        let other = all_asns.(Splitmix.int rng (Array.length all_asns)) in
        if other <> p.asn then
          emit w "RADB"
            [ (cls, text);
              ("origin", Printf.sprintf "AS%d" other);
              ("mnt-by", maintainer other);
              ("source", "RADB") ]
      end)
    (Gen.prefixes_of topo p.asn)

(* Deliberate anomaly objects: empty sets, loops, ANY members, invalid
   names, deep chains, syntax errors, peering-sets, filter-sets. *)
let emit_anomalies (config : Config.t) rng w =
  for i = 1 to config.n_empty_as_sets do
    emit w "RADB" [ ("as-set", Printf.sprintf "AS-EMPTY-%d" i); ("source", "RADB") ]
  done;
  for i = 1 to config.n_loop_as_sets do
    emit w "RADB"
      [ ("as-set", Printf.sprintf "AS-LOOP-%d-A" i);
        ("members", Printf.sprintf "AS-LOOP-%d-B, AS%d" i (64000 + i));
        ("source", "RADB") ];
    emit w "RADB"
      [ ("as-set", Printf.sprintf "AS-LOOP-%d-B" i);
        ("members", Printf.sprintf "AS-LOOP-%d-A" i);
        ("source", "RADB") ]
  done;
  for i = 1 to config.n_any_member_sets do
    emit w "RADB"
      [ ("as-set", Printf.sprintf "AS-HASANY-%d" i);
        ("members", "ANY");
        ("source", "RADB") ]
  done;
  for i = 1 to config.n_invalid_set_names do
    (* Invalid names: missing the AS-/RS- prefix, or a reserved word. *)
    let name = if i = 1 then "AS-ANY" else Printf.sprintf "BADSET-%d" i in
    emit w "RADB" [ ("as-set", name); ("members", "AS64500"); ("source", "RADB") ]
  done;
  for c = 1 to config.n_deep_set_chains do
    for depth = 1 to 6 do
      let members =
        if depth = 6 then Printf.sprintf "AS%d" (64100 + c)
        else Printf.sprintf "AS-DEEP-%d-%d" c (depth + 1)
      in
      emit w "RADB"
        [ ("as-set", Printf.sprintf "AS-DEEP-%d-%d" c depth);
          ("members", members);
          ("source", "RADB") ]
    done
  done;
  for i = 1 to config.n_syntax_errors do
    if i mod 2 = 0 then
      (* Broken rule keyword inside an otherwise fine aut-num. *)
      emit w "RADB"
        [ ("aut-num", Printf.sprintf "AS%d" (64200 + i));
          ("as-name", "BROKEN");
          ("import", "from accept ANY");
          ("source", "RADB") ]
    else
      (* Out-of-place text: a broken comma-separated members list. *)
      emit w "RADB"
        [ ("as-set", Printf.sprintf "AS-BROKEN-%d" i);
          ("members", "AS1,, ,AS_bad name");
          ("source", "RADB") ]
  done;
  for i = 1 to config.n_peering_sets do
    emit w "RIPE"
      [ ("peering-set", Printf.sprintf "PRNG-SYNTH-%d" i);
        ("peering", Printf.sprintf "AS%d" (1000 + (i * 7)));
        ("source", "RIPE") ]
  done;
  for i = 1 to config.n_filter_sets do
    emit w "RIPE"
      [ ("filter-set", Printf.sprintf "FLTR-SYNTH-%d" i);
        ("filter", "{ 0.0.0.0/0^0-24 } AND NOT { 10.0.0.0/8^+, 192.168.0.0/16^+ }");
        ("source", "RIPE") ]
  done;
  ignore rng

(* Members-by-reference showcase: one cooperative as-set whose members
   join indirectly via member-of on their own aut-nums (the attribute is
   added by emit_aut_num for the chosen ASes). *)
let emit_cooperative_set w members =
  emit w "RIPE"
    [ ("as-set", "AS-COOPERATIVE");
      ("mbrs-by-ref", String.concat ", " (List.map maintainer members));
      ("source", "RIPE") ]

let c_dumps = Rz_obs.Obs.Counter.make "synthirr.dumps_total"
let c_bytes = Rz_obs.Obs.Counter.make "synthirr.bytes_total"

let generate ?(config = Config.default) (topo : Gen.t) =
  Rz_obs.Obs.Span.with_ "generate" @@ fun () ->
  let rng = Splitmix.create config.seed in
  let profiles = assign_profiles config topo rng in
  let w : writer = Hashtbl.create 13 in
  (* Ensure all 13 dumps exist even if tiny. *)
  List.iter (fun irr -> ignore (buffer_of w irr)) irr_names;
  let cooperative_members =
    let candidates =
      Array.to_list topo.ases
      |> List.filter (fun asn -> (Hashtbl.find profiles asn).persona <> No_aut_num)
    in
    Array.to_list (Splitmix.sample rng 2 (Array.of_list candidates))
  in
  Array.iter
    (fun asn ->
      let p = Hashtbl.find profiles asn in
      emit_aut_num config profiles topo rng w ~member_of:cooperative_members p;
      (* maintainer objects back the mnt-by references; a few are missing
         (dangling), as in real registries *)
      if p.persona <> No_aut_num && not (Splitmix.chance rng 0.05) then
        emit w p.home_irr
          [ ("mntner", p.mnt);
            ("auth", "PGPKEY-SYNTH");
            ("source", p.home_irr) ];
      emit_as_set config topo rng w profiles p;
      emit_self_set w p;
      emit_route_set topo rng w p;
      emit_routes config topo rng w profiles p)
    topo.ases;
  emit_anomalies config rng w;
  emit_cooperative_set w cooperative_members;
  let dumps = List.map (fun irr -> (irr, Buffer.contents (buffer_of w irr))) irr_names in
  Rz_obs.Obs.Counter.add c_dumps (List.length dumps);
  Rz_obs.Obs.Counter.add c_bytes
    (List.fold_left (fun acc (_, text) -> acc + String.length text) 0 dumps);
  { topo; config; profiles; dumps }

let profile_of world asn = Hashtbl.find world.profiles asn
