(** NRTM-style registry journals: serial-numbered ADD/DEL operations,
    each carrying one full RPSL paragraph, the way IRRd mirrors publish
    incremental updates (a {e modify} is a DEL of the old object followed
    by an ADD of the new text, as in the real protocol).

    The generator works at the text level — it edits the paragraphs of an
    already rendered dump set — so it stays independent of the parser and
    the IR, and both consumers of a journal see exactly the same bytes:

    - {!apply_to_dumps} replays the journal onto the dump texts, giving
      the post-edit registry for a from-scratch re-ingest (the batch side
      of the incremental==batch differential);
    - [Rz_serve.Generation.apply] replays the same ops onto a live IR as
      copy-on-write generations (the incremental side).

    Journal text round-trips through {!render}/{!parse}. The parser is
    hardened like the stream journal parser: malformed headers, NUL
    bytes, non-increasing serials, and key-less paragraphs are rejected
    and recorded — on the [nrtm.ops_rejected] counter and in the returned
    error list — while parsing keeps going. *)

type action = Add | Del

type op = {
  serial : int;      (** strictly increasing across a journal *)
  source : string;   (** IRR the object belongs to, e.g. ["RADB"] *)
  action : action;
  text : string;     (** one RPSL paragraph, no blank lines inside *)
}

type key = string
(** Identity of a paragraph: [class|NAME] for named classes, with the
    origin appended for route/route6 ([route|192.0.2.0/24|AS65001]).
    Case-insensitive on the class and name. [""] for paragraphs without
    a [key: value] first line (remarks). *)

val key_of_paragraph : string -> key

val generate : seed:int -> n:int -> (string * string) list -> op list
(** [generate ~seed ~n dumps] draws about [n] operations against the
    given [(source, rpsl_text)] dump set: fresh route-object ADDs (from
    the 198.18.0.0/15 benchmark range, disjoint from the synthetic
    world's 20.0.0.0/8 space), route and whole-object DELs, and
    DEL+ADD modify pairs that append as-set members or aut-num rules.
    Only objects whose key is unique across the whole dump set are
    edited, so text-level and IR-level replay agree under the
    first-definition-wins merge. Deterministic in [seed]. *)

val apply_to_dumps : op list -> (string * string) list -> (string * string) list
(** Replay the journal onto the dump texts, in op order: DEL removes the
    paragraph with the op's key from the op's source dump, ADD replaces
    any same-key paragraph and appends the op's text. Dumps keep their
    order; paragraph separators are normalized to one blank line. Ops
    naming an unknown source are ignored. *)

val render : op list -> string
(** Journal text: a [%START] header, one [ADD <serial> <source>] or
    [DEL <serial> <source>] line per op followed by its paragraph and a
    blank line, and a [%END] trailer. *)

val parse : string -> op list * (int * string) list
(** Inverse of {!render}. Returns accepted ops in journal order plus
    [(line number, reason)] rejections; never raises. [%]-comment lines
    are ignored. Each rejection increments [nrtm.ops_rejected]. *)
