(* Binary IR snapshot cache: a parsed-and-lowered IR serialized to disk
   so repeated runs over the same dumps skip parsing entirely.

   Layout (all integers big-endian):

     magic    8 bytes   "RZIRSNAP"
     version  4 bytes   format version (reject on mismatch)
     input    16 bytes  MD5 over the input dumps (caller-computed)
     count    4 bytes   number of sections
     hdr_md5  16 bytes  MD5 over the 32 header bytes above — so a flip
                        anywhere in the file is a detected corruption,
                        including in the input digest itself
     section* name_len:4  name  payload_len:8  md5(payload):16  payload
     <EOF>              trailing bytes reject the file

   One section per IR table plus the routes and errors lists. The
   [route_seen] dedup index is derived data and is rebuilt on load. Any
   anomaly — short file, bad magic/version, unknown/missing/duplicate
   section, digest mismatch, trailing garbage — is a rejection, counted
   on [snapshot.rejects]; a snapshot is never partially loaded. *)

let magic = "RZIRSNAP"
let version = 1

let c_rejects = Rz_obs.Obs.Counter.make "snapshot.rejects"

let section_names =
  [ "aut_nums"; "mntners"; "inet_rtrs"; "rtr_sets"; "as_sets"; "route_sets";
    "peering_sets"; "filter_sets"; "routes"; "errors" ]

let add_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let add_u64 buf v =
  add_u32 buf ((v lsr 32) land 0xffffffff);
  add_u32 buf (v land 0xffffffff)

let encode ~input_digest (ir : Ir.t) =
  if String.length input_digest <> 16 then
    invalid_arg "Ir_snapshot: input digest must be 16 raw MD5 bytes";
  let sections =
    [ ("aut_nums", Marshal.to_string ir.aut_nums []);
      ("mntners", Marshal.to_string ir.mntners []);
      ("inet_rtrs", Marshal.to_string ir.inet_rtrs []);
      ("rtr_sets", Marshal.to_string ir.rtr_sets []);
      ("as_sets", Marshal.to_string ir.as_sets []);
      ("route_sets", Marshal.to_string ir.route_sets []);
      ("peering_sets", Marshal.to_string ir.peering_sets []);
      ("filter_sets", Marshal.to_string ir.filter_sets []);
      ("routes", Marshal.to_string ir.routes []);
      ("errors", Marshal.to_string ir.errors []) ]
  in
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  add_u32 buf version;
  Buffer.add_string buf input_digest;
  add_u32 buf (List.length sections);
  Buffer.add_string buf (Digest.string (Buffer.contents buf));
  List.iter
    (fun (name, payload) ->
      add_u32 buf (String.length name);
      Buffer.add_string buf name;
      add_u64 buf (String.length payload);
      Buffer.add_string buf (Digest.string payload);
      Buffer.add_string buf payload)
    sections;
  Buffer.contents buf

let save path ~input_digest ir =
  let data = encode ~input_digest ir in
  (* write-then-rename: a crash mid-write leaves either the old snapshot
     or a .tmp the loader never looks at, never a torn file *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc data;
  close_out oc;
  Sys.rename tmp path

exception Reject of string

let decode data =
  let n = String.length data in
  let pos = ref 0 in
  let need k what =
    if !pos + k > n then raise (Reject (Printf.sprintf "truncated (%s)" what))
  in
  let read k what =
    need k what;
    let s = String.sub data !pos k in
    pos := !pos + k;
    s
  in
  let read_u32 what =
    need 4 what;
    let b i = Char.code (String.unsafe_get data (!pos + i)) in
    let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    pos := !pos + 4;
    v
  in
  let read_u64 what =
    let hi = read_u32 what in
    let lo = read_u32 what in
    (hi lsl 32) lor lo
  in
  if read 8 "magic" <> magic then raise (Reject "bad magic");
  let v = read_u32 "version" in
  if v <> version then
    raise (Reject (Printf.sprintf "version %d, expected %d" v version));
  let input_digest = read 16 "input digest" in
  let count = read_u32 "section count" in
  let header_digest = read 16 "header digest" in
  if Digest.string (String.sub data 0 32) <> header_digest then
    raise (Reject "header checksum mismatch");
  if count <> List.length section_names then
    raise (Reject (Printf.sprintf "%d sections, expected %d" count
                     (List.length section_names)));
  let sections = Hashtbl.create 16 in
  for _ = 1 to count do
    let name_len = read_u32 "section name length" in
    if name_len > 256 then raise (Reject "oversized section name");
    let name = read name_len "section name" in
    if not (List.mem name section_names) then
      raise (Reject (Printf.sprintf "unknown section %S" name));
    if Hashtbl.mem sections name then
      raise (Reject (Printf.sprintf "duplicate section %S" name));
    let payload_len = read_u64 "payload length" in
    if payload_len < 0 || payload_len > n then
      raise (Reject "implausible payload length");
    let digest = read 16 "payload digest" in
    let payload = read payload_len ("section " ^ name) in
    if Digest.string payload <> digest then
      raise (Reject (Printf.sprintf "checksum mismatch in section %S" name));
    Hashtbl.replace sections name payload
  done;
  if !pos <> n then raise (Reject "trailing bytes after last section");
  let section name =
    match Hashtbl.find_opt sections name with
    | Some payload -> payload
    | None -> raise (Reject (Printf.sprintf "missing section %S" name))
  in
  (* Payloads are checksum-verified above, so unmarshaling sees exactly
     the bytes [save] produced. *)
  let unmarshal name = Marshal.from_string (section name) 0 in
  let ir : Ir.t =
    { aut_nums = unmarshal "aut_nums";
      mntners = unmarshal "mntners";
      inet_rtrs = unmarshal "inet_rtrs";
      rtr_sets = unmarshal "rtr_sets";
      as_sets = unmarshal "as_sets";
      route_sets = unmarshal "route_sets";
      peering_sets = unmarshal "peering_sets";
      filter_sets = unmarshal "filter_sets";
      routes = unmarshal "routes";
      route_seen = Hashtbl.create 1024;
      errors = unmarshal "errors" }
  in
  List.iter
    (fun (r : Ir.route_obj) ->
      Hashtbl.replace ir.route_seen (r.prefix, r.origin) ())
    ir.routes;
  (input_digest, ir)

let load path =
  match
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    decode data
  with
  | result -> Ok result
  | exception Reject msg ->
    Rz_obs.Obs.Counter.incr c_rejects;
    Error msg
  | exception e ->
    Rz_obs.Obs.Counter.incr c_rejects;
    Error (Printexc.to_string e)
