(* Binary IR snapshot cache: a parsed-and-lowered IR serialized to disk
   so repeated runs over the same dumps skip parsing entirely.

   Layout (all integers big-endian):

     magic    8 bytes   "RZIRSNAP"
     version  4 bytes   format version (reject on mismatch)
     input    16 bytes  MD5 over the input dumps (caller-computed)
     count    4 bytes   number of sections
     hdr_md5  16 bytes  MD5 over the 32 header bytes above — so a flip
                        anywhere in the file is a detected corruption,
                        including in the input digest itself
     section* name_len:4  name  payload_len:8  md5(payload):16  payload
     <EOF>              trailing bytes reject the file

   Version 2 ("compact IR"): the intern pool is serialized once as its
   own section ("pool": u32 count, then u32 length + bytes per string in
   id order), and the route objects — the only table that reaches
   millions of entries at paper scale — are a packed binary section
   instead of a Marshal blob: per route, afi byte (4|6), the address (u32
   or two u64 halves), prefix length byte, origin u32, source id u32,
   and the member-of / mnt-by id lists as u32 count + u32 ids. Ids refer
   to the pool section and are bounds-checked on load. The remaining
   tables stay Marshal payloads. Sections are produced one at a time
   through a reused buffer and streamed straight to the sink, so peak
   extra memory is one section, not the whole file twice.

   The [route_seen] dedup index is derived data and is rebuilt on load.
   Any anomaly — short file, bad magic/version, unknown/missing/duplicate
   section, digest mismatch, out-of-range pool id, trailing garbage — is
   a rejection, counted on [snapshot.rejects]; a snapshot is never
   partially loaded. *)

module Pool = Rz_intern.Intern.Pool
module Arena = Rz_intern.Intern.Arena

let magic = "RZIRSNAP"
let version = 2

let c_rejects = Rz_obs.Obs.Counter.make "snapshot.rejects"

let section_names =
  [ "pool"; "aut_nums"; "mntners"; "inet_rtrs"; "rtr_sets"; "as_sets";
    "route_sets"; "peering_sets"; "filter_sets"; "routes"; "errors" ]

let add_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let add_u64 buf v =
  add_u32 buf ((v lsr 32) land 0xffffffff);
  add_u32 buf (v land 0xffffffff)

let add_i64 buf (v : int64) =
  for i = 0 to 7 do
    let shift = 56 - (8 * i) in
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v shift) 0xffL)))
  done

(* ---- packed route section ---- *)

let encode_routes buf (ir : Ir.t) =
  add_u32 buf (Ir.n_route_objs ir);
  Ir.iter_routes ir (fun (r : Ir.route_obj) ->
      (match (r.prefix : Rz_net.Prefix.t) with
       | { addr = Rz_net.Prefix.V4 a; len } ->
         Buffer.add_char buf '\004';
         add_u32 buf a;
         Buffer.add_char buf (Char.chr len)
       | { addr = Rz_net.Prefix.V6 (hi, lo); len } ->
         Buffer.add_char buf '\006';
         add_i64 buf hi;
         add_i64 buf lo;
         Buffer.add_char buf (Char.chr len));
      add_u32 buf r.origin;
      add_u32 buf r.source_id;
      add_u32 buf (List.length r.member_of_ids);
      List.iter (add_u32 buf) r.member_of_ids;
      add_u32 buf (List.length r.mnt_by_ids);
      List.iter (add_u32 buf) r.mnt_by_ids)

(* ---- streamed writer ---- *)

(* Emit header + all sections through [sink]. One payload string lives at
   a time; the framing goes through a small reused buffer. *)
let write_sections ~input_digest (ir : Ir.t) ~(sink : string -> unit) =
  if String.length input_digest <> 16 then
    invalid_arg "Ir_snapshot: input digest must be 16 raw MD5 bytes";
  let hdr = Buffer.create 64 in
  Buffer.add_string hdr magic;
  add_u32 hdr version;
  Buffer.add_string hdr input_digest;
  add_u32 hdr (List.length section_names);
  let hdr_s = Buffer.contents hdr in
  sink hdr_s;
  sink (Digest.string hdr_s);
  let frame = Buffer.create 64 in
  let emit name payload =
    Buffer.clear frame;
    add_u32 frame (String.length name);
    Buffer.add_string frame name;
    add_u64 frame (String.length payload);
    Buffer.add_string frame (Digest.string payload);
    sink (Buffer.contents frame);
    sink payload
  in
  let payload_buf = Buffer.create (1 lsl 16) in
  let custom fill =
    Buffer.clear payload_buf;
    fill payload_buf;
    Buffer.contents payload_buf
  in
  emit "pool" (custom (fun b -> Pool.encode b ir.pool));
  emit "aut_nums" (Marshal.to_string ir.aut_nums []);
  emit "mntners" (Marshal.to_string ir.mntners []);
  emit "inet_rtrs" (Marshal.to_string ir.inet_rtrs []);
  emit "rtr_sets" (Marshal.to_string ir.rtr_sets []);
  emit "as_sets" (Marshal.to_string ir.as_sets []);
  emit "route_sets" (Marshal.to_string ir.route_sets []);
  emit "peering_sets" (Marshal.to_string ir.peering_sets []);
  emit "filter_sets" (Marshal.to_string ir.filter_sets []);
  emit "routes" (custom (fun b -> encode_routes b ir));
  emit "errors" (Marshal.to_string ir.errors [])

let encode ~input_digest ir =
  let buf = Buffer.create (1 lsl 16) in
  write_sections ~input_digest ir ~sink:(Buffer.add_string buf);
  Buffer.contents buf

let save path ~input_digest ir =
  (* write-then-rename: a crash mid-write leaves either the old snapshot
     or a .tmp the loader never looks at, never a torn file *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try write_sections ~input_digest ir ~sink:(output_string oc)
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

exception Reject of string

let decode data =
  let n = String.length data in
  let pos = ref 0 in
  let need k what =
    if !pos + k > n then raise (Reject (Printf.sprintf "truncated (%s)" what))
  in
  let read k what =
    need k what;
    let s = String.sub data !pos k in
    pos := !pos + k;
    s
  in
  let read_u32 what =
    need 4 what;
    let b i = Char.code (String.unsafe_get data (!pos + i)) in
    let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    pos := !pos + 4;
    v
  in
  let read_u64 what =
    let hi = read_u32 what in
    let lo = read_u32 what in
    (hi lsl 32) lor lo
  in
  if read 8 "magic" <> magic then raise (Reject "bad magic");
  let v = read_u32 "version" in
  if v <> version then
    raise (Reject (Printf.sprintf "version %d, expected %d" v version));
  let input_digest = read 16 "input digest" in
  let count = read_u32 "section count" in
  let header_digest = read 16 "header digest" in
  if Digest.string (String.sub data 0 32) <> header_digest then
    raise (Reject "header checksum mismatch");
  if count <> List.length section_names then
    raise (Reject (Printf.sprintf "%d sections, expected %d" count
                     (List.length section_names)));
  let sections = Hashtbl.create 16 in
  for _ = 1 to count do
    let name_len = read_u32 "section name length" in
    if name_len > 256 then raise (Reject "oversized section name");
    let name = read name_len "section name" in
    if not (List.mem name section_names) then
      raise (Reject (Printf.sprintf "unknown section %S" name));
    if Hashtbl.mem sections name then
      raise (Reject (Printf.sprintf "duplicate section %S" name));
    let payload_len = read_u64 "payload length" in
    if payload_len < 0 || payload_len > n then
      raise (Reject "implausible payload length");
    let digest = read 16 "payload digest" in
    let payload = read payload_len ("section " ^ name) in
    if Digest.string payload <> digest then
      raise (Reject (Printf.sprintf "checksum mismatch in section %S" name));
    Hashtbl.replace sections name payload
  done;
  if !pos <> n then raise (Reject "trailing bytes after last section");
  let section name =
    match Hashtbl.find_opt sections name with
    | Some payload -> payload
    | None -> raise (Reject (Printf.sprintf "missing section %S" name))
  in
  (* Payloads are checksum-verified above, so unmarshaling sees exactly
     the bytes [save] produced; the packed sections are still parsed
     defensively (length and id bounds) because a re-crafted file can
     carry a correct checksum over malformed contents. *)
  let pool =
    let payload = section "pool" in
    match Pool.decode payload ~pos:0 with
    | p, end_pos when end_pos = String.length payload -> p
    | _ -> raise (Reject "trailing bytes in pool section")
    | exception Failure msg -> raise (Reject ("pool section: " ^ msg))
  in
  let routes =
    let payload = section "routes" in
    let rn = String.length payload in
    let rpos = ref 0 in
    let rneed k =
      if !rpos + k > rn then raise (Reject "truncated routes section")
    in
    let byte () =
      rneed 1;
      let c = Char.code (String.unsafe_get payload !rpos) in
      incr rpos;
      c
    in
    let u32 () =
      rneed 4;
      let b i = Char.code (String.unsafe_get payload (!rpos + i)) in
      let v = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      rpos := !rpos + 4;
      v
    in
    let i64 () =
      rneed 8;
      let v = ref 0L in
      for i = 0 to 7 do
        v :=
          Int64.logor (Int64.shift_left !v 8)
            (Int64.of_int (Char.code (String.unsafe_get payload (!rpos + i))))
      done;
      rpos := !rpos + 8;
      !v
    in
    let pool_len = Pool.length pool in
    let id () =
      let id = u32 () in
      if id >= pool_len then raise (Reject "route string id out of pool range");
      id
    in
    let ids () =
      let k = u32 () in
      if k > rn then raise (Reject "implausible route id count");
      (* explicit loop: the ids must be consumed left-to-right, and
         [List.init]'s evaluation order is unspecified *)
      let rec go n acc = if n = 0 then List.rev acc else go (n - 1) (id () :: acc) in
      go k []
    in
    let count = u32 () in
    if count > rn then raise (Reject "implausible route count");
    let arena = Arena.create ~capacity:(max 16 count) () in
    for _ = 1 to count do
      let prefix =
        match byte () with
        | 4 ->
          let a = u32 () in
          let len = byte () in
          if len > 32 then raise (Reject "bad v4 prefix length");
          Rz_net.Prefix.v4 a len
        | 6 ->
          let hi = i64 () in
          let lo = i64 () in
          let len = byte () in
          if len > 128 then raise (Reject "bad v6 prefix length");
          Rz_net.Prefix.v6 (hi, lo) len
        | b -> raise (Reject (Printf.sprintf "bad route afi byte %d" b))
      in
      let origin = u32 () in
      let source_id = id () in
      let member_of_ids = ids () in
      let mnt_by_ids = ids () in
      Arena.push arena
        { Ir.prefix; origin; member_of_ids; mnt_by_ids; source_id }
    done;
    if !rpos <> rn then raise (Reject "trailing bytes in routes section");
    arena
  in
  let unmarshal name = Marshal.from_string (section name) 0 in
  let ir : Ir.t =
    { aut_nums = unmarshal "aut_nums";
      mntners = unmarshal "mntners";
      inet_rtrs = unmarshal "inet_rtrs";
      rtr_sets = unmarshal "rtr_sets";
      as_sets = unmarshal "as_sets";
      route_sets = unmarshal "route_sets";
      peering_sets = unmarshal "peering_sets";
      filter_sets = unmarshal "filter_sets";
      pool;
      routes;
      route_seen = Hashtbl.create 1024;
      errors = unmarshal "errors" }
  in
  Ir.iter_routes ir (fun (r : Ir.route_obj) ->
      Hashtbl.replace ir.route_seen (r.prefix, r.origin) ());
  (input_digest, ir)

let load path =
  match
    let ic = open_in_bin path in
    let data =
      Fun.protect
        ~finally:(fun () -> try close_in ic with Sys_error _ -> ())
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    decode data
  with
  | result -> Ok result
  | exception Reject msg ->
    Rz_obs.Obs.Counter.incr c_rejects;
    Error msg
  | exception e ->
    Rz_obs.Obs.Counter.incr c_rejects;
    Error (Printexc.to_string e)
