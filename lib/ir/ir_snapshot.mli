(** Binary IR snapshot cache.

    A snapshot persists a fully lowered {!Ir.t} so repeated runs over the
    same dumps skip parsing entirely. The format is defensive: a
    versioned header, an input digest identifying the dumps the IR was
    built from, per-section length framing, and an MD5 checksum per
    section. Any anomaly — flipped byte, truncation, version bump,
    unknown or missing section, trailing garbage — rejects the whole
    file (counted on [snapshot.rejects]); a snapshot is never partially
    loaded. The [route_seen] dedup index is derived data and is rebuilt
    on load. *)

val version : int
(** Current format version; bumped on any layout change. *)

val save : string -> input_digest:string -> Ir.t -> unit
(** [save path ~input_digest ir] writes the snapshot atomically
    (write-then-rename). [input_digest] must be 16 raw MD5 bytes
    identifying the input dumps; it is stored in the header so a loader
    can detect a stale snapshot. Raises [Invalid_argument] on a
    malformed digest and [Sys_error] on I/O failure. *)

val load : string -> (string * Ir.t, string) result
(** [load path] returns [(input_digest, ir)] or a rejection reason.
    Never raises; every rejection increments [snapshot.rejects]. *)

val encode : input_digest:string -> Ir.t -> string
(** The raw snapshot bytes [save] writes — exposed so tests can assert
    byte-stability of save → load → re-save. *)
