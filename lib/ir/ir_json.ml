open Rz_json.Json
module Ast = Rz_policy.Ast

let str s = String s
let asn n = Int n

let range_op op =
  match op with
  | Rz_net.Range_op.None_ -> Null
  | op -> String (Rz_net.Range_op.to_string op)

let rec as_expr_to_json = function
  | Ast.Asn n -> Obj [ ("asn", asn n) ]
  | Ast.As_set name -> Obj [ ("as_set", str name) ]
  | Ast.Any_as -> str "AS-ANY"
  | Ast.And (a, b) -> Obj [ ("and", List [ as_expr_to_json a; as_expr_to_json b ]) ]
  | Ast.Or (a, b) -> Obj [ ("or", List [ as_expr_to_json a; as_expr_to_json b ]) ]
  | Ast.Except_as (a, b) ->
    Obj [ ("except", List [ as_expr_to_json a; as_expr_to_json b ]) ]

let peering_to_json = function
  | Ast.Peering_set_ref name -> Obj [ ("peering_set", str name) ]
  | Ast.Peering_spec { as_expr; remote_router; local_router } ->
    Obj
      (List.filter_map Fun.id
         [ Some ("as_expr", as_expr_to_json as_expr);
           Option.map
             (fun r -> ("remote_router", str (Ast.router_expr_to_string r)))
             remote_router;
           Option.map
             (fun r -> ("local_router", str (Ast.router_expr_to_string r)))
             local_router ])

let action_to_json = function
  | Ast.Assign (k, v) -> Obj [ ("assign", str k); ("value", str v) ]
  | Ast.Append_op (k, vs) ->
    Obj [ ("append", str k); ("values", List (List.map str vs)) ]
  | Ast.Method_call (attr, meth, args) ->
    Obj [ ("call", str (attr ^ "." ^ meth)); ("args", List (List.map str args)) ]

let rec filter_to_json = function
  | Ast.Any -> str "ANY"
  | Ast.Peer_as_filter -> str "PeerAS"
  | Ast.Fltr_martian -> str "fltr-martian"
  | Ast.As_num (n, op) -> Obj [ ("asn", asn n); ("op", range_op op) ]
  | Ast.As_set_ref (name, op) -> Obj [ ("as_set", str name); ("op", range_op op) ]
  | Ast.Route_set_ref (name, op) -> Obj [ ("route_set", str name); ("op", range_op op) ]
  | Ast.Filter_set_ref name -> Obj [ ("filter_set", str name) ]
  | Ast.Prefix_set (members, op) ->
    Obj
      [ ("prefixes",
         List
           (List.map
              (fun (p, mop) ->
                Obj [ ("prefix", str (Rz_net.Prefix.to_string p)); ("op", range_op mop) ])
              members));
        ("op", range_op op) ]
  | Ast.Path_regex r -> Obj [ ("as_path_regex", str (Rz_aspath.Regex_ast.to_string r)) ]
  | Ast.Community (meth, args) ->
    Obj [ ("community", str meth); ("args", List (List.map str args)) ]
  | Ast.And_f (a, b) -> Obj [ ("and", List [ filter_to_json a; filter_to_json b ]) ]
  | Ast.Or_f (a, b) -> Obj [ ("or", List [ filter_to_json a; filter_to_json b ]) ]
  | Ast.Not_f a -> Obj [ ("not", filter_to_json a) ]

let factor_to_json (f : Ast.factor) =
  Obj
    [ ("peerings",
       List
         (List.map
            (fun (pa : Ast.peering_action) ->
              Obj
                [ ("peering", peering_to_json pa.peering);
                  ("actions", List (List.map action_to_json pa.actions)) ])
            f.peerings));
      ("filter", filter_to_json f.filter) ]

let term_to_json (t : Ast.term) =
  Obj
    [ ("afi", List (List.map (fun a -> str (Rz_net.Afi.to_string a)) t.afi));
      ("factors", List (List.map factor_to_json t.factors)) ]

let rec expr_to_json = function
  | Ast.Term_e t -> term_to_json t
  | Ast.Except_e (t, rest) ->
    Obj [ ("term", term_to_json t); ("except", expr_to_json rest) ]
  | Ast.Refine_e (t, rest) ->
    Obj [ ("term", term_to_json t); ("refine", expr_to_json rest) ]

let rule_to_json (r : Ast.rule) =
  Obj
    (List.filter_map Fun.id
       [ Some ("direction", str (match r.direction with `Import -> "import" | `Export -> "export"));
         Some ("multiprotocol", Bool r.multiprotocol);
         Option.map (fun p -> ("protocol", str p)) r.protocol;
         Option.map (fun p -> ("into", str p)) r.into_protocol;
         Some ("expr", expr_to_json r.expr);
         Some ("text", str (Ast.rule_to_string r)) ])

let default_to_json (d : Ast.default_rule) =
  Obj
    (List.filter_map Fun.id
       [ Some ("peering", peering_to_json d.peering);
         Some ("actions", List (List.map action_to_json d.actions));
         Option.map (fun f -> ("networks", filter_to_json f)) d.networks;
         Some ("multiprotocol", Bool d.multiprotocol);
         Some ("text", str (Ast.default_rule_to_string d)) ])

let aut_num_to_json (an : Ir.aut_num) =
  Obj
    [ ("asn", asn an.asn);
      ("as_name", str an.as_name);
      ("imports", List (List.map rule_to_json an.imports));
      ("exports", List (List.map rule_to_json an.exports));
      ("defaults", List (List.map default_to_json an.defaults));
      ("member_of", List (List.map str an.member_of));
      ("mnt_by", List (List.map str an.mnt_by));
      ("source", str an.source) ]

let as_set_to_json (s : Ir.as_set) =
  Obj
    [ ("name", str s.name);
      ("members_asn", List (List.map asn s.member_asns));
      ("members_set", List (List.map str s.member_sets));
      ("contains_any", Bool s.contains_any);
      ("mbrs_by_ref", List (List.map str s.mbrs_by_ref));
      ("source", str s.source) ]

let route_set_member_to_json = function
  | Ir.Rs_prefix (p, op) ->
    Obj [ ("prefix", str (Rz_net.Prefix.to_string p)); ("op", range_op op) ]
  | Ir.Rs_set (name, op) -> Obj [ ("set", str name); ("op", range_op op) ]
  | Ir.Rs_asn (n, op) -> Obj [ ("asn", asn n); ("op", range_op op) ]

let route_set_to_json (s : Ir.route_set) =
  Obj
    [ ("name", str s.name);
      ("members", List (List.map route_set_member_to_json s.members));
      ("mbrs_by_ref", List (List.map str s.mbrs_by_ref));
      ("source", str s.source) ]

let peering_set_to_json (s : Ir.peering_set) =
  Obj
    [ ("name", str s.name);
      ("peerings", List (List.map peering_to_json s.peerings));
      ("source", str s.source) ]

let filter_set_to_json (s : Ir.filter_set) =
  Obj
    [ ("name", str s.name);
      ("filter", filter_to_json s.filter);
      ("source", str s.source) ]

let route_to_json ir (r : Ir.route_obj) =
  Obj
    [ ("prefix", str (Rz_net.Prefix.to_string r.prefix));
      ("origin", asn r.origin);
      ("member_of", List (List.map str (Ir.route_member_of ir r)));
      ("source", str (Ir.route_source ir r)) ]

let mntner_to_json (m : Ir.mntner) =
  Obj
    [ ("name", str m.name);
      ("auth", List (List.map str m.auth));
      ("source", str m.source) ]

let inet_rtr_to_json (r : Ir.inet_rtr) =
  Obj
    (List.filter_map Fun.id
       [ Some ("name", str r.name);
         Option.map (fun a -> ("local_as", asn a)) r.local_as;
         Some ("ifaddrs", List (List.map str r.ifaddrs));
         Some
           ( "peers",
             List
               (List.map
                  (fun (addr, peer_asn) ->
                    Obj [ ("addr", str addr); ("asn", asn peer_asn) ])
                  r.bgp_peers) );
         Some ("member_of", List (List.map str r.rtr_member_of));
         Some ("source", str r.source) ])

let rtr_set_to_json (s : Ir.rtr_set) =
  Obj
    [ ("name", str s.name);
      ("members", List (List.map str s.members));
      ("source", str s.source) ]

let error_to_json (e : Ir.error) =
  Obj
    [ ("kind", str (Ir.error_kind_to_string e.kind));
      ("class", str e.cls);
      ("object", str e.obj_name);
      ("source", str e.source) ]

let hashtbl_values tbl = Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let export (ir : Ir.t) =
  let sort_by f = List.sort (fun a b -> compare (f a) (f b)) in
  Obj
    [ ("aut_nums",
       List
         (hashtbl_values ir.aut_nums
          |> sort_by (fun (a : Ir.aut_num) -> a.asn)
          |> List.map aut_num_to_json));
      ("as_sets",
       List
         (hashtbl_values ir.as_sets
          |> sort_by (fun (s : Ir.as_set) -> s.name)
          |> List.map as_set_to_json));
      ("route_sets",
       List
         (hashtbl_values ir.route_sets
          |> sort_by (fun (s : Ir.route_set) -> s.name)
          |> List.map route_set_to_json));
      ("peering_sets",
       List
         (hashtbl_values ir.peering_sets
          |> sort_by (fun (s : Ir.peering_set) -> s.name)
          |> List.map peering_set_to_json));
      ("filter_sets",
       List
         (hashtbl_values ir.filter_sets
          |> sort_by (fun (s : Ir.filter_set) -> s.name)
          |> List.map filter_set_to_json));
      ("mntners",
       List
         (hashtbl_values ir.mntners
          |> sort_by (fun (m : Ir.mntner) -> m.name)
          |> List.map mntner_to_json));
      ("inet_rtrs",
       List
         (hashtbl_values ir.inet_rtrs
          |> sort_by (fun (r : Ir.inet_rtr) -> r.name)
          |> List.map inet_rtr_to_json));
      ("rtr_sets",
       List
         (hashtbl_values ir.rtr_sets
          |> sort_by (fun (s : Ir.rtr_set) -> s.name)
          |> List.map rtr_set_to_json));
      ("routes",
       List (List.rev (Ir.fold_routes ir ~init:[] ~f:(fun acc r -> route_to_json ir r :: acc))));
      ("errors", List (List.rev_map error_to_json ir.errors)) ]

let export_string ?indent ir = to_string ?indent (export ir)
