type aut_num = {
  asn : Rz_net.Asn.t;
  as_name : string;
  imports : Rz_policy.Ast.rule list;
  exports : Rz_policy.Ast.rule list;
  defaults : Rz_policy.Ast.default_rule list;
  member_of : string list;
  mnt_by : string list;
  source : string;
}

type mntner = {
  name : string;
  auth : string list;
  source : string;
}

type as_set = {
  name : string;
  member_asns : Rz_net.Asn.t list;
  member_sets : string list;
  contains_any : bool;
  mbrs_by_ref : string list;
  mnt_by : string list;
  source : string;
}

type route_set_member =
  | Rs_prefix of Rz_net.Prefix.t * Rz_net.Range_op.t
  | Rs_set of string * Rz_net.Range_op.t
  | Rs_asn of Rz_net.Asn.t * Rz_net.Range_op.t

type route_set = {
  name : string;
  members : route_set_member list;
  mbrs_by_ref : string list;
  mnt_by : string list;
  source : string;
}

type peering_set = {
  name : string;
  peerings : Rz_policy.Ast.peering list;
  source : string;
}

type filter_set = {
  name : string;
  filter : Rz_policy.Ast.filter;
  source : string;
}

type inet_rtr = {
  name : string;
  local_as : Rz_net.Asn.t option;
  ifaddrs : string list;
  bgp_peers : (string * Rz_net.Asn.t) list;
  rtr_member_of : string list;
  source : string;
}

type rtr_set = {
  name : string;
  members : string list;
  mbrs_by_ref : string list;
  source : string;
}

type route_obj = {
  prefix : Rz_net.Prefix.t;
  origin : Rz_net.Asn.t;
  member_of_ids : int list;
  mnt_by_ids : int list;
  source_id : int;
}

type error_kind =
  | Syntax_error of string
  | Invalid_as_set_name
  | Invalid_route_set_name
  | Invalid_peering_set_name
  | Invalid_filter_set_name
  | Bad_origin of string
  | Bad_prefix of string

type error = {
  kind : error_kind;
  cls : string;
  obj_name : string;
  source : string;
}

module Pool = Rz_intern.Intern.Pool
module Arena = Rz_intern.Intern.Arena

type t = {
  aut_nums : (Rz_net.Asn.t, aut_num) Hashtbl.t;
  mntners : (string, mntner) Hashtbl.t;
  inet_rtrs : (string, inet_rtr) Hashtbl.t;
  rtr_sets : (string, rtr_set) Hashtbl.t;
  as_sets : (string, as_set) Hashtbl.t;
  route_sets : (string, route_set) Hashtbl.t;
  peering_sets : (string, peering_set) Hashtbl.t;
  filter_sets : (string, filter_set) Hashtbl.t;
  pool : Pool.t;
  routes : route_obj Arena.t;
  route_seen : (Rz_net.Prefix.t * Rz_net.Asn.t, unit) Hashtbl.t;
  mutable errors : error list;
}

let create () =
  { aut_nums = Hashtbl.create 1024;
    mntners = Hashtbl.create 64;
    inet_rtrs = Hashtbl.create 32;
    rtr_sets = Hashtbl.create 16;
    as_sets = Hashtbl.create 256;
    route_sets = Hashtbl.create 256;
    peering_sets = Hashtbl.create 16;
    filter_sets = Hashtbl.create 16;
    pool = Pool.create ();
    routes = Arena.create ~capacity:1024 ();
    route_seen = Hashtbl.create 4096;
    errors = [] }

let copy t =
  { aut_nums = Hashtbl.copy t.aut_nums;
    mntners = Hashtbl.copy t.mntners;
    inet_rtrs = Hashtbl.copy t.inet_rtrs;
    rtr_sets = Hashtbl.copy t.rtr_sets;
    as_sets = Hashtbl.copy t.as_sets;
    route_sets = Hashtbl.copy t.route_sets;
    peering_sets = Hashtbl.copy t.peering_sets;
    filter_sets = Hashtbl.copy t.filter_sets;
    pool = Pool.copy t.pool;
    routes = Arena.copy t.routes;
    route_seen = Hashtbl.copy t.route_seen;
    errors = t.errors }

let intern t s = Pool.intern t.pool s
let resolve t id = Pool.resolve t.pool id

let route_source t (r : route_obj) = Pool.resolve t.pool r.source_id
let route_member_of t (r : route_obj) = List.map (Pool.resolve t.pool) r.member_of_ids
let route_mnt_by t (r : route_obj) = List.map (Pool.resolve t.pool) r.mnt_by_ids

(* Interns the string fields, records the (prefix, origin) identity in
   [route_seen], and appends. Callers gate on [route_seen] themselves
   when dedup semantics apply (lowering, streaming edits). *)
let add_route t ~prefix ~origin ~member_of ~mnt_by ~source =
  (* explicit lets pin the interning order (member-of, mnt-by, source):
     id assignment must be deterministic so the parallel-merge remap
     reproduces it *)
  let member_of_ids = List.map (Pool.intern t.pool) member_of in
  let mnt_by_ids = List.map (Pool.intern t.pool) mnt_by in
  let source_id = Pool.intern t.pool source in
  Hashtbl.replace t.route_seen (prefix, origin) ();
  Arena.push t.routes { prefix; origin; member_of_ids; mnt_by_ids; source_id }

let n_route_objs t = Arena.length t.routes
let iter_routes t f = Arena.iter t.routes f
let iter_routes_rev t f = Arena.iter_rev t.routes f
let fold_routes t ~init ~f = Arena.fold t.routes ~init ~f
let filter_routes t keep = Arena.filter_in_place t.routes keep

(* Append [src]'s routes (in insertion order) onto [dst], re-interning
   every string id into [dst]'s pool. The dense-int remap table is the
   whole point of interning: one resolve+intern per *distinct* string,
   not per route. *)
let absorb_routes dst src =
  let remap = Array.make (max 1 (Pool.length src.pool)) (-1) in
  let map id =
    let m = remap.(id) in
    if m >= 0 then m
    else begin
      let m = Pool.intern dst.pool (Pool.resolve src.pool id) in
      remap.(id) <- m;
      m
    end
  in
  Arena.iter src.routes (fun r ->
      (* same interning order as [add_route]: member-of, mnt-by, source *)
      let member_of_ids = List.map map r.member_of_ids in
      let mnt_by_ids = List.map map r.mnt_by_ids in
      let source_id = map r.source_id in
      Arena.push dst.routes { r with member_of_ids; mnt_by_ids; source_id })

let error_kind_to_string = function
  | Syntax_error msg -> "syntax error: " ^ msg
  | Invalid_as_set_name -> "invalid as-set name"
  | Invalid_route_set_name -> "invalid route-set name"
  | Invalid_peering_set_name -> "invalid peering-set name"
  | Invalid_filter_set_name -> "invalid filter-set name"
  | Bad_origin msg -> "bad origin: " ^ msg
  | Bad_prefix msg -> "bad prefix: " ^ msg

let n_rules an = List.length an.imports + List.length an.exports
let find_aut_num t asn = Hashtbl.find_opt t.aut_nums asn

let canon = Rz_rpsl.Set_name.canonical

let find_as_set t name = Hashtbl.find_opt t.as_sets (canon name)
let find_route_set t name = Hashtbl.find_opt t.route_sets (canon name)
let find_peering_set t name = Hashtbl.find_opt t.peering_sets (canon name)
let find_filter_set t name = Hashtbl.find_opt t.filter_sets (canon name)
let find_mntner t name = Hashtbl.find_opt t.mntners (Rz_util.Strings.uppercase name)
let find_inet_rtr t name = Hashtbl.find_opt t.inet_rtrs (Rz_util.Strings.lowercase name)
let find_rtr_set t name = Hashtbl.find_opt t.rtr_sets (Rz_util.Strings.uppercase name)
