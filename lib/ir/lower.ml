let canon = Rz_rpsl.Set_name.canonical

(* Observability: lowering volume and error counters, plus the "parse"
   and "lower" phase spans every dump passes through. *)
let c_objects_lowered = Rz_obs.Obs.Counter.make "ir.objects_lowered_total"
let c_rules = Rz_obs.Obs.Counter.make "ir.rules_total"
let c_errors = Rz_obs.Obs.Counter.make "ir.errors_total"

let push_error (ir : Ir.t) kind (obj : Rz_rpsl.Obj.t) source =
  Rz_obs.Obs.Counter.incr c_errors;
  ir.errors <- { Ir.kind; cls = obj.cls; obj_name = obj.name; source } :: ir.errors

type rule_parser =
  direction:[ `Import | `Export ] ->
  multiprotocol:bool ->
  string ->
  (Rz_policy.Ast.rule, string) result

let lower_rule = Rz_policy.Parser.parse_rule

(* Fold the newline continuations inside attribute values into spaces
   before feeding the policy parser; values without continuations (the
   vast majority) pass through without a copy. *)
let flat value =
  if String.contains value '\n' then
    String.map (fun c -> if c = '\n' then ' ' else c) value
  else value

let lower_rules ~parse ir obj source ~attr ~direction ~multiprotocol =
  List.filter_map
    (fun value ->
      match parse ~direction ~multiprotocol (flat value) with
      | Ok rule ->
        Rz_obs.Obs.Counter.incr c_rules;
        Some rule
      | Error msg ->
        push_error ir (Ir.Syntax_error (attr ^ ": " ^ msg)) obj source;
        None)
    (Rz_rpsl.Obj.values obj attr)

let split_names value =
  Rz_policy.Parser.parse_members (flat value)

let multi_names split obj attr =
  List.concat_map split (Rz_rpsl.Obj.values obj attr)

(* Every gate below is [keep && not (Hashtbl.mem ...)]: [keep] is the
   cross-dump first-wins verdict (always true on the sequential path,
   precomputed by the parallel ingest's winner scan) and the table
   membership test handles duplicates within one dump. Errors outside
   the gate (name validity, bad prefixes) stay unconditional — the
   sequential path emits them for shadowed duplicates too. *)

let lower_aut_num ~keep ~parse ~split ir (obj : Rz_rpsl.Obj.t) source =
  match Rz_net.Asn.of_string obj.name with
  | Error msg -> push_error ir (Ir.Syntax_error ("aut-num name: " ^ msg)) obj source
  | Ok asn ->
    if keep && not (Hashtbl.mem ir.Ir.aut_nums asn) then begin
      let imports =
        lower_rules ~parse ir obj source ~attr:"import" ~direction:`Import ~multiprotocol:false
        @ lower_rules ~parse ir obj source ~attr:"mp-import" ~direction:`Import ~multiprotocol:true
      in
      let exports =
        lower_rules ~parse ir obj source ~attr:"export" ~direction:`Export ~multiprotocol:false
        @ lower_rules ~parse ir obj source ~attr:"mp-export" ~direction:`Export ~multiprotocol:true
      in
      let lower_defaults attr multiprotocol =
        List.filter_map
          (fun value ->
            match Rz_policy.Parser.parse_default ~multiprotocol (flat value) with
            | Ok d -> Some d
            | Error msg ->
              push_error ir (Ir.Syntax_error (attr ^ ": " ^ msg)) obj source;
              None)
          (Rz_rpsl.Obj.values obj attr)
      in
      let defaults =
        lower_defaults "default" false @ lower_defaults "mp-default" true
      in
      Hashtbl.replace ir.aut_nums asn
        { Ir.asn;
          as_name = Option.value ~default:"" (Rz_rpsl.Obj.value obj "as-name");
          imports;
          exports;
          defaults;
          member_of = multi_names split obj "member-of";
          mnt_by = multi_names split obj "mnt-by";
          source }
    end

(* Split an as-set member into ASN or nested set, flagging the reserved
   word ANY (a misuse the paper found three times). *)
type as_member = M_asn of Rz_net.Asn.t | M_set of string | M_any | M_bad of string

let classify_as_member name =
  let upper = Rz_util.Strings.uppercase name in
  if upper = "ANY" || upper = "AS-ANY" then M_any
  else
    match Rz_net.Asn.of_string name with
    | Ok asn when Rz_util.Strings.starts_with_ci ~prefix:"AS" name -> M_asn asn
    | _ ->
      if Rz_rpsl.Set_name.is_valid Rz_rpsl.Set_name.As_set name then M_set name
      else M_bad name

let lower_as_set ~keep ~split ir (obj : Rz_rpsl.Obj.t) source =
  let key = canon obj.name in
  if not (Rz_rpsl.Set_name.is_valid Rz_rpsl.Set_name.As_set obj.name) then
    push_error ir Ir.Invalid_as_set_name obj source;
  if keep && not (Hashtbl.mem ir.Ir.as_sets key) then begin
    let members = multi_names split obj "members" @ multi_names split obj "mp-members" in
    let member_asns = ref [] and member_sets = ref [] and contains_any = ref false in
    List.iter
      (fun m ->
        match classify_as_member m with
        | M_asn asn -> member_asns := asn :: !member_asns
        | M_set s -> member_sets := s :: !member_sets
        | M_any -> contains_any := true
        | M_bad name ->
          push_error ir (Ir.Syntax_error (Printf.sprintf "bad as-set member %S" name)) obj
            source)
      members;
    Hashtbl.replace ir.as_sets key
      { Ir.name = obj.name;
        member_asns = List.rev !member_asns;
        member_sets = List.rev !member_sets;
        contains_any = !contains_any;
        mbrs_by_ref = multi_names split obj "mbrs-by-ref";
        mnt_by = multi_names split obj "mnt-by";
        source }
  end

let classify_route_member name =
  let base, op =
    match String.index_opt name '^' with
    | None -> (name, Ok Rz_net.Range_op.None_)
    | Some i ->
      (String.sub name 0 i, Rz_net.Range_op.parse (String.sub name i (String.length name - i)))
  in
  match op with
  | Error e -> Error e
  | Ok op ->
    (match Rz_net.Prefix.of_string base with
     | Ok p -> Ok (Ir.Rs_prefix (p, op))
     | Error _ ->
       (match Rz_net.Asn.of_string base with
        | Ok asn when Rz_util.Strings.starts_with_ci ~prefix:"AS" base ->
          Ok (Ir.Rs_asn (asn, op))
        | _ ->
          if
            Rz_rpsl.Set_name.is_valid Rz_rpsl.Set_name.Route_set base
            || Rz_rpsl.Set_name.is_valid Rz_rpsl.Set_name.As_set base
          then Ok (Ir.Rs_set (base, op))
          else Error (Printf.sprintf "bad route-set member %S" name)))

let lower_route_set ~keep ~split ir (obj : Rz_rpsl.Obj.t) source =
  let key = canon obj.name in
  if not (Rz_rpsl.Set_name.is_valid Rz_rpsl.Set_name.Route_set obj.name) then
    push_error ir Ir.Invalid_route_set_name obj source;
  if keep && not (Hashtbl.mem ir.Ir.route_sets key) then begin
    let raw = multi_names split obj "members" @ multi_names split obj "mp-members" in
    let members =
      List.filter_map
        (fun m ->
          match classify_route_member m with
          | Ok member -> Some member
          | Error e ->
            push_error ir (Ir.Syntax_error e) obj source;
            None)
        raw
    in
    Hashtbl.replace ir.route_sets key
      { Ir.name = obj.name;
        members;
        mbrs_by_ref = multi_names split obj "mbrs-by-ref";
        mnt_by = multi_names split obj "mnt-by";
        source }
  end

let lower_peering_set ~keep ir (obj : Rz_rpsl.Obj.t) source =
  let key = canon obj.name in
  if not (Rz_rpsl.Set_name.is_valid Rz_rpsl.Set_name.Peering_set obj.name) then
    push_error ir Ir.Invalid_peering_set_name obj source;
  if keep && not (Hashtbl.mem ir.Ir.peering_sets key) then begin
    let values =
      Rz_rpsl.Obj.values obj "peering" @ Rz_rpsl.Obj.values obj "mp-peering"
    in
    let peerings =
      List.filter_map
        (fun v ->
          match Rz_policy.Parser.parse_peering (flat v) with
          | Ok p -> Some p
          | Error e ->
            push_error ir (Ir.Syntax_error ("peering: " ^ e)) obj source;
            None)
        values
    in
    Hashtbl.replace ir.peering_sets key { Ir.name = obj.name; peerings; source }
  end

(* The filter-set value the lowering interprets: [filter] preferred,
   [mp-filter] as fallback. *)
let filter_set_value (obj : Rz_rpsl.Obj.t) =
  match (Rz_rpsl.Obj.value obj "filter", Rz_rpsl.Obj.value obj "mp-filter") with
  | Some f, _ -> Some f
  | None, Some f -> Some f
  | None, None -> None

(* A filter-set only occupies its key when the filter actually lowers
   (sequential semantics: a failed insert leaves the gate open for a
   later same-key object). The winner scan needs this predicate. *)
let filter_set_lowerable obj =
  match filter_set_value obj with
  | None -> false
  | Some v -> Result.is_ok (Rz_policy.Parser.parse_filter (flat v))

let lower_filter_set ~keep ir (obj : Rz_rpsl.Obj.t) source =
  let key = canon obj.name in
  if not (Rz_rpsl.Set_name.is_valid Rz_rpsl.Set_name.Filter_set obj.name) then
    push_error ir Ir.Invalid_filter_set_name obj source;
  if keep && not (Hashtbl.mem ir.Ir.filter_sets key) then begin
    match filter_set_value obj with
    | None -> push_error ir (Ir.Syntax_error "filter-set without filter") obj source
    | Some v ->
      (match Rz_policy.Parser.parse_filter (flat v) with
       | Ok filter ->
         Hashtbl.replace ir.filter_sets key { Ir.name = obj.name; filter; source }
       | Error e -> push_error ir (Ir.Syntax_error ("filter: " ^ e)) obj source)
  end

(* Route object identity is (prefix, origin); duplicates across IRRs are
   dropped but distinct origins for the same prefix are kept. The
   admission key uses the parsed prefix value directly: [Prefix.t] is
   canonical (of_string normalizes, to_string is injective on it), so
   keying on the struct is equivalent to keying on the rendered string
   that [route_seen] uses, without paying [to_string] in the scan. *)
let route_identity (obj : Rz_rpsl.Obj.t) =
  match Rz_net.Prefix.of_string obj.name with
  | Error _ -> None
  | Ok prefix ->
    (* attrs store lowercased keys, so look up "origin" directly *)
    (match
       List.find_map
         (fun (a : Rz_rpsl.Attr.t) -> if a.key = "origin" then Some a.value else None)
         obj.attrs
     with
     | None -> None
     | Some origin_text ->
       (match Rz_net.Asn.of_string origin_text with
        | Error _ -> None
        | Ok origin -> Some (prefix, origin)))

let lower_route ~keep ~split ir (obj : Rz_rpsl.Obj.t) source =
  match Rz_net.Prefix.of_string obj.name with
  | Error e -> push_error ir (Ir.Bad_prefix e) obj source
  | Ok prefix ->
    (match Rz_rpsl.Obj.value obj "origin" with
     | None -> push_error ir (Ir.Bad_origin "missing origin attribute") obj source
     | Some origin_text ->
       (match Rz_net.Asn.of_string origin_text with
        | Error e -> push_error ir (Ir.Bad_origin e) obj source
        | Ok origin ->
          let key = (prefix, origin) in
          if keep && not (Hashtbl.mem ir.Ir.route_seen key) then
            Ir.add_route ir ~prefix ~origin
              ~member_of:(multi_names split obj "member-of")
              ~mnt_by:(multi_names split obj "mnt-by")
              ~source))

let lower_mntner ~keep ir (obj : Rz_rpsl.Obj.t) source =
  let key = Rz_util.Strings.uppercase obj.name in
  if keep && not (Hashtbl.mem ir.Ir.mntners key) then
    Hashtbl.replace ir.mntners key
      { Ir.name = obj.name; auth = Rz_rpsl.Obj.values obj "auth"; source }

(* inet-rtr peer attribute: "BGP4 192.0.2.1 asno(AS65001)" (protocol,
   peer address, options); we extract the address and the asno. *)
let parse_bgp_peer value =
  let words = Rz_util.Strings.split_words value in
  let addr = List.nth_opt (List.filter (fun w -> not (Rz_util.Strings.equal_ci w "BGP4")) words) 0 in
  let asno =
    List.find_map
      (fun w ->
        if Rz_util.Strings.starts_with_ci ~prefix:"asno(" w then
          let inner = String.sub w 5 (String.length w - 5) in
          let inner = Rz_util.Strings.chop_comment ')' inner in
          Result.to_option (Rz_net.Asn.of_string inner)
        else None)
      words
  in
  match (addr, asno) with Some a, Some n -> Some (a, n) | _ -> None

let lower_inet_rtr ~keep ~split ir (obj : Rz_rpsl.Obj.t) source =
  let key = Rz_util.Strings.lowercase obj.name in
  if keep && not (Hashtbl.mem ir.Ir.inet_rtrs key) then begin
    let local_as =
      Option.bind (Rz_rpsl.Obj.value obj "local-as") (fun v ->
          Result.to_option (Rz_net.Asn.of_string v))
    in
    let bgp_peers =
      List.filter_map parse_bgp_peer
        (Rz_rpsl.Obj.values obj "peer" @ Rz_rpsl.Obj.values obj "mp-peer")
    in
    Hashtbl.replace ir.inet_rtrs key
      { Ir.name = obj.name;
        local_as;
        ifaddrs = Rz_rpsl.Obj.values obj "ifaddr" @ Rz_rpsl.Obj.values obj "interface";
        bgp_peers;
        rtr_member_of = multi_names split obj "member-of";
        source }
  end

let lower_rtr_set ~keep ~split ir (obj : Rz_rpsl.Obj.t) source =
  let key = Rz_util.Strings.uppercase obj.name in
  if keep && not (Hashtbl.mem ir.Ir.rtr_sets key) then
    Hashtbl.replace ir.rtr_sets key
      { Ir.name = obj.name;
        members = multi_names split obj "members" @ multi_names split obj "mp-members";
        mbrs_by_ref = multi_names split obj "mbrs-by-ref";
        source }

(* The cross-dump admission key of an object: the identity under which
   first-definition-wins merge priority applies. [None] for non-routing
   classes and for objects whose identity does not parse (those never
   insert, and their name errors are emitted unconditionally). *)
type admission_key =
  | K_aut_num of Rz_net.Asn.t
  | K_as_set of string
  | K_route_set of string
  | K_peering_set of string
  | K_filter_set of string
  | K_mntner of string
  | K_inet_rtr of string
  | K_rtr_set of string
  | K_route of Rz_net.Prefix.t * Rz_net.Asn.t

let admission_key (obj : Rz_rpsl.Obj.t) =
  match obj.cls with
  | "aut-num" ->
    (match Rz_net.Asn.of_string obj.name with
     | Ok asn -> Some (K_aut_num asn)
     | Error _ -> None)
  | "as-set" -> Some (K_as_set (canon obj.name))
  | "route-set" -> Some (K_route_set (canon obj.name))
  | "peering-set" -> Some (K_peering_set (canon obj.name))
  | "filter-set" -> Some (K_filter_set (canon obj.name))
  | "mntner" -> Some (K_mntner (Rz_util.Strings.uppercase obj.name))
  | "inet-rtr" -> Some (K_inet_rtr (Rz_util.Strings.lowercase obj.name))
  | "rtr-set" -> Some (K_rtr_set (Rz_util.Strings.uppercase obj.name))
  | "route" | "route6" ->
    Option.map (fun (p, o) -> K_route (p, o)) (route_identity obj)
  | _ -> None

let add_objects ?(rule_parser = lower_rule) ?(split = split_names) ?keep ir ~source
    objects =
  Rz_obs.Obs.Span.with_ "lower" (fun () ->
      List.iteri
        (fun i (obj : Rz_rpsl.Obj.t) ->
          let keep = match keep with None -> true | Some flags -> flags.(i) in
          let routing =
            match obj.cls with
            | "aut-num" ->
              lower_aut_num ~keep ~parse:rule_parser ~split ir obj source; true
            | "mntner" -> lower_mntner ~keep ir obj source; true
            | "inet-rtr" -> lower_inet_rtr ~keep ~split ir obj source; true
            | "rtr-set" -> lower_rtr_set ~keep ~split ir obj source; true
            | "as-set" -> lower_as_set ~keep ~split ir obj source; true
            | "route-set" -> lower_route_set ~keep ~split ir obj source; true
            | "peering-set" -> lower_peering_set ~keep ir obj source; true
            | "filter-set" -> lower_filter_set ~keep ir obj source; true
            | "route" | "route6" -> lower_route ~keep ~split ir obj source; true
            | _ -> false
          in
          if routing then Rz_obs.Obs.Counter.incr c_objects_lowered)
        objects)

let add_reader_errors ir ~source errors =
  List.iter
    (fun (e : Rz_rpsl.Reader.error) ->
      Rz_obs.Obs.Counter.incr c_errors;
      ir.Ir.errors <-
        { Ir.kind = Syntax_error e.reason; cls = "dump"; obj_name = e.text; source }
        :: ir.Ir.errors)
    errors

let add_dump ir ~source text =
  let parsed =
    Rz_obs.Obs.Span.with_ "parse" (fun () -> Rz_rpsl.Reader.parse_string text)
  in
  add_reader_errors ir ~source parsed.errors;
  add_objects ir ~source parsed.objects;
  parsed.errors
