(** Lowering: interpret raw RPSL objects into the IR.

    Feed dumps in {e priority order} (the paper's Table 1 grouping:
    authoritative registries first, then RADB, then the rest): for objects
    defined in several IRRs, the first definition wins; [route] objects are
    keyed by (prefix, origin) so identical pairs from lower-priority IRRs
    are dropped while genuinely different origins accumulate (that
    multiplicity is itself one of the paper's findings). *)

type rule_parser =
  direction:[ `Import | `Export ] ->
  multiprotocol:bool ->
  string ->
  (Rz_policy.Ast.rule, string) result
(** The function that lowers one import/export attribute value. The
    default is {!lower_rule}; the parallel ingest substitutes a memoized
    fast-path parser that is observationally identical. *)

val add_objects :
  ?rule_parser:rule_parser ->
  ?split:(string -> string list) ->
  ?keep:bool array ->
  Ir.t ->
  source:string ->
  Rz_rpsl.Obj.t list ->
  unit
(** Lower the routing-related objects of one dump into [ir], skipping
    non-routing classes, never overwriting higher-priority definitions,
    and appending lowering problems to [ir.errors].

    [split] splits one member-list attribute value into names; the
    default is {!split_names} and any substitute must be observationally
    identical (the parallel ingest passes a memoized wrapper).

    [keep] (parallel-ingest winner flags, aligned by index with
    [objects]) pre-resolves cross-dump first-wins admission: an object
    with [keep.(i) = false] behaves exactly as if its key were already
    taken — unconditional errors (name validity, bad prefixes) are still
    emitted, but nothing is inserted. Omitted = all true (sequential
    behavior, where the IR's own tables carry the gate). *)

val split_names : string -> string list
(** The default member-list splitter: continuation folding + comma/space
    splitting via {!Rz_policy.Parser.parse_members}. Pure. *)

val add_dump : Ir.t -> source:string -> string -> Rz_rpsl.Reader.error list
(** Parse RPSL text and lower it; returns the reader-level errors (also
    appended to [ir.errors] as syntax errors). *)

val add_reader_errors :
  Ir.t -> source:string -> Rz_rpsl.Reader.error list -> unit
(** Append reader-level errors to [ir.errors] as dump-class syntax
    errors, exactly as {!add_dump} does before lowering — the parallel
    ingest calls this on independently parsed dumps. *)

val lower_rule :
  direction:[ `Import | `Export ] ->
  multiprotocol:bool ->
  string ->
  (Rz_policy.Ast.rule, string) result
(** Exposed for tests: lower one rule attribute value. *)

(** {2 Winner-scan support}

    The parallel ingest lowers each dump into a private IR, so the
    cross-dump first-wins gate cannot live in the shared tables. A cheap
    sequential scan computes per-object [keep] flags instead, using the
    same admission identity the gates use. *)

(** The identity under which first-definition-wins merge priority
    applies, one constructor per IR table ([route]/[route6] share the
    (prefix, origin) key of the route dedup index). *)
type admission_key =
  | K_aut_num of Rz_net.Asn.t
  | K_as_set of string
  | K_route_set of string
  | K_peering_set of string
  | K_filter_set of string
  | K_mntner of string
  | K_inet_rtr of string
  | K_rtr_set of string
  | K_route of Rz_net.Prefix.t * Rz_net.Asn.t

val admission_key : Rz_rpsl.Obj.t -> admission_key option
(** [None] for non-routing classes and for objects whose identity does
    not parse (bad aut-num name, bad route prefix/origin): those never
    insert, and their errors are unconditional, so they always lower
    with [keep = true]. *)

val filter_set_lowerable : Rz_rpsl.Obj.t -> bool
(** Whether a filter-set object would actually insert when its gate is
    open: a [filter]/[mp-filter] value is present and parses. A
    filter-set that fails this leaves its key unclaimed (sequential
    semantics: the gate stays open for a later same-key object). *)
