(** The intermediate representation (IR): the paper's central data
    structure. It captures the interpreted meaning of all routing-related
    RPSL objects from one or more IRRs, after lowering from raw RPSL text.

    The IR is pure data; resolution (set flattening, cross-references,
    priority merge across IRRs) lives in [Rz_irr]. *)

type aut_num = {
  asn : Rz_net.Asn.t;
  as_name : string;
  imports : Rz_policy.Ast.rule list;   (** import + mp-import, in order *)
  exports : Rz_policy.Ast.rule list;   (** export + mp-export, in order *)
  defaults : Rz_policy.Ast.default_rule list;  (** default + mp-default (RFC 2622 §6.5) *)
  member_of : string list;             (** as-sets joined via member-of *)
  mnt_by : string list;
  source : string;                     (** IRR the object came from *)
}

type mntner = {
  name : string;    (** maintainer handle, e.g. ["MNT-EXAMPLE"] *)
  auth : string list;   (** auth attributes, kept verbatim *)
  source : string;
}

type as_set = {
  name : string;
  member_asns : Rz_net.Asn.t list;     (** direct ASN members *)
  member_sets : string list;           (** direct nested as-set members *)
  contains_any : bool;                 (** the reserved word ANY appeared in members —
                                           an RPSL misuse the paper reports *)
  mbrs_by_ref : string list;           (** maintainer names, possibly ["ANY"] *)
  mnt_by : string list;
  source : string;
}

(** One member of a route-set: a literal prefix, a nested set (route-set
    or as-set), or an ASN (denoting the prefixes it originates) — each
    with an optional range operator. *)
type route_set_member =
  | Rs_prefix of Rz_net.Prefix.t * Rz_net.Range_op.t
  | Rs_set of string * Rz_net.Range_op.t
  | Rs_asn of Rz_net.Asn.t * Rz_net.Range_op.t

type route_set = {
  name : string;
  members : route_set_member list;
  mbrs_by_ref : string list;
  mnt_by : string list;
  source : string;
}

type peering_set = {
  name : string;
  peerings : Rz_policy.Ast.peering list;
  source : string;
}

type filter_set = {
  name : string;
  filter : Rz_policy.Ast.filter;
  source : string;
}

(** An [inet-rtr] object (RFC 2622 §9): a router, its addresses, and its
    BGP peerings — what peering router expressions name. *)
type inet_rtr = {
  name : string;              (** DNS-style router name (lowercased key) *)
  local_as : Rz_net.Asn.t option;
  ifaddrs : string list;      (** interface addresses, verbatim *)
  bgp_peers : (string * Rz_net.Asn.t) list;  (** (peer address, peer ASN) *)
  rtr_member_of : string list;  (** rtrs- sets joined via member-of *)
  source : string;
}

(** An [rtr-set] object grouping routers. *)
type rtr_set = {
  name : string;
  members : string list;      (** inet-rtr names, addresses, nested rtrs- sets *)
  mbrs_by_ref : string list;
  source : string;
}

(** Route objects are the hot class — the paper's IRRs carry millions of
    them, dwarfing every other table — so their string fields are
    interned: [member_of_ids] / [mnt_by_ids] / [source_id] are ids in
    the IR's {!Pool}. Resolve through {!route_member_of},
    {!route_mnt_by}, {!route_source}, or {!resolve}. *)
type route_obj = {
  prefix : Rz_net.Prefix.t;
  origin : Rz_net.Asn.t;
  member_of_ids : int list;            (** route-sets joined via member-of *)
  mnt_by_ids : int list;
  source_id : int;
}

(** Lowering problems, matching the categories reported in Section 4's
    "RPSL errors" paragraph. *)
type error_kind =
  | Syntax_error of string             (** unparsable rule / member / value *)
  | Invalid_as_set_name
  | Invalid_route_set_name
  | Invalid_peering_set_name
  | Invalid_filter_set_name
  | Bad_origin of string
  | Bad_prefix of string

type error = {
  kind : error_kind;
  cls : string;
  obj_name : string;
  source : string;
}

module Pool = Rz_intern.Intern.Pool
module Arena = Rz_intern.Intern.Arena

type t = {
  aut_nums : (Rz_net.Asn.t, aut_num) Hashtbl.t;
  mntners : (string, mntner) Hashtbl.t;   (** keyed by uppercase handle *)
  inet_rtrs : (string, inet_rtr) Hashtbl.t;   (** keyed by lowercase name *)
  rtr_sets : (string, rtr_set) Hashtbl.t;     (** keyed by canonical name *)
  as_sets : (string, as_set) Hashtbl.t;          (** keyed by canonical (uppercase) name *)
  route_sets : (string, route_set) Hashtbl.t;
  peering_sets : (string, peering_set) Hashtbl.t;
  filter_sets : (string, filter_set) Hashtbl.t;
  pool : Pool.t;  (** interned strings for the hot [route_obj] fields *)
  routes : route_obj Arena.t;                    (** insertion order *)
  route_seen : (Rz_net.Prefix.t * Rz_net.Asn.t, unit) Hashtbl.t;
      (** dedup index over (prefix, origin) pairs, maintained by lowering;
          [Prefix.t] is canonical so structural keys match rendered ones *)
  mutable errors : error list;
}

val create : unit -> t

val copy : t -> t
(** Independent tables over shared (immutable) object records: mutating
    the copy — replacing entries, adding routes — leaves the original
    untouched. Streaming verification copies the IR it is given so the
    caller's database generation stays valid. The pool and route arena
    are copied too. *)

val intern : t -> string -> int
(** Id for [s] in this IR's pool, interning it if new. *)

val resolve : t -> int -> string
(** The string behind a pool id. *)

val route_source : t -> route_obj -> string
val route_member_of : t -> route_obj -> string list
val route_mnt_by : t -> route_obj -> string list

val add_route :
  t ->
  prefix:Rz_net.Prefix.t ->
  origin:Rz_net.Asn.t ->
  member_of:string list ->
  mnt_by:string list ->
  source:string ->
  unit
(** Intern the string fields, mark [(prefix, origin)] in [route_seen],
    and append to the arena. Dedup gating (skip when already seen) is
    the caller's job, as it was with the list representation. *)

val n_route_objs : t -> int

val iter_routes : t -> (route_obj -> unit) -> unit
(** In insertion order (the order lowering appended them). *)

val iter_routes_rev : t -> (route_obj -> unit) -> unit
(** Newest first — the presentation order of the old reversed cons
    list, kept for consumers whose derived structures (tries, grouped
    lists, stream views) bake that order into goldens. *)

val fold_routes : t -> init:'a -> f:('a -> route_obj -> 'a) -> 'a
(** In insertion order. *)

val filter_routes : t -> (route_obj -> bool) -> unit
(** Drop route objects failing the predicate, in place, preserving
    relative order. Does not touch [route_seen]. *)

val absorb_routes : t -> t -> unit
(** [absorb_routes dst src] appends [src]'s routes to [dst] in [src]'s
    insertion order, re-interning string ids into [dst]'s pool. *)

val error_kind_to_string : error_kind -> string

val n_rules : aut_num -> int
(** Total number of import + export rules of an aut-num. *)

val find_aut_num : t -> Rz_net.Asn.t -> aut_num option
val find_as_set : t -> string -> as_set option
(** Lookup by name; canonicalized internally. *)

val find_route_set : t -> string -> route_set option
val find_peering_set : t -> string -> peering_set option
val find_filter_set : t -> string -> filter_set option
val find_mntner : t -> string -> mntner option
val find_inet_rtr : t -> string -> inet_rtr option
val find_rtr_set : t -> string -> rtr_set option
