(** RPSLyzer — parse, interpret, characterize, and verify RPSL routing
    policies (OCaml reproduction of the IMC'24 system).

    This module is the public facade: it re-exports every subsystem under
    a stable name and provides {!Pipeline}, the end-to-end driver that the
    examples, CLI, and benchmark harness are built on. *)

(** {1 Subsystems} *)

module Util = Rz_util
module Json = Rz_json.Json
module Net = Rz_net
module Rpsl = Rz_rpsl
module Aspath = Rz_aspath
module Policy = Rz_policy
module Ir = Rz_ir
module Irr = Rz_irr
module Asrel = Rz_asrel
module Bgp = Rz_bgp
module Topology = Rz_topology
module Routegen = Rz_routegen
module Synthirr = Rz_synthirr
module Verify = Rz_verify
module Stats = Rz_stats
module Lint = Rz_lint
module Rpki = Rz_rpki
module Obs = Rz_obs.Obs

(** {1 End-to-end pipeline} *)

module Pipeline = struct
  (** A fully built evaluation world: synthetic topology, the RPSL text it
      publishes, the parsed/merged IRR database, ground-truth AS
      relationships, and collector dumps. *)
  type world = {
    topo : Rz_topology.Gen.t;
    synth : Rz_synthirr.Generate.world;
    db : Rz_irr.Db.t;
    rels : Rz_asrel.Rel_db.t;
    dumps : (string * string) list;  (** (IRR name, RPSL text) *)
    table_dumps : Rz_bgp.Table_dump.t list;
  }

  (** Build a synthetic world end-to-end: generate the topology, render it
      to RPSL across 13 IRRs, parse + merge those dumps back through the
      real parsing pipeline, and propagate BGP routes to collectors. *)
  let build_synthetic ?(topo_params = Rz_topology.Gen.default_params)
      ?(irr_config = Rz_synthirr.Config.default) ?(n_collector_mids = 10)
      ?(n_collectors = 2) () =
    let topo = Rz_topology.Gen.generate topo_params in
    let synth = Rz_synthirr.Generate.generate ~config:irr_config topo in
    let db = Rz_irr.Db.of_dumps synth.dumps in
    let peers = Rz_routegen.Propagate.default_collector_peers topo ~n:n_collector_mids in
    let table_dumps = Rz_routegen.Propagate.collector_dumps topo ~n_collectors ~peers in
    { topo; synth; db; rels = topo.rels; dumps = synth.dumps; table_dumps }

  (** Verify every route of every collector dump; returns the aggregates
      behind Figures 2-6 plus the total number of routes examined and the
      number excluded (single-AS or AS_SET paths). *)
  let verify ?config world =
    Rz_obs.Obs.Span.with_ "verify" @@ fun () ->
    let engine = Rz_verify.Engine.create ?config world.db world.rels in
    let agg = Rz_verify.Aggregate.create () in
    let excluded = ref 0 and total = ref 0 in
    List.iter
      (fun (dump : Rz_bgp.Table_dump.t) ->
        List.iter
          (fun route ->
            incr total;
            match Rz_verify.Engine.verify_route engine route with
            | Some report -> Rz_verify.Aggregate.add_route_report agg report
            | None -> incr excluded)
          dump.routes)
      world.table_dumps;
    (agg, `Total !total, `Excluded !excluded)

  (** Parallel verification across OCaml 5 domains — the multicore mode
      matching the paper's 128-core verification run. The database and
      relationship caches are pre-warmed so the shared structures are
      read-only; each domain runs its own engine over a chunk of routes
      and the per-domain aggregates are merged. *)
  let c_par_domains = Rz_obs.Obs.Counter.make "verify.parallel.domains_total"
  let c_domain_retries = Rz_obs.Obs.Counter.make "verify.domain_retries"
  let h_par_domain_routes = Rz_obs.Obs.Histogram.make "verify.parallel.domain_routes"
  let h_par_domain_ns = Rz_obs.Obs.Histogram.make "verify.parallel.domain_ns"

  (* [inject_domain_fault] is the fault-injection hook used by the
     faultinject harness and the chaos bench: it runs at the top of each
     spawned domain (with the domain index) and may raise to simulate a
     domain crash. It deliberately does NOT run during the sequential
     retry, which is the recovery path under test. *)
  let verify_parallel ?config ?(domains = 4) ?inject_domain_fault world =
    Rz_obs.Obs.Span.with_ "verify" @@ fun () ->
    let routes =
      Array.of_list
        (List.concat_map (fun (d : Rz_bgp.Table_dump.t) -> d.routes) world.table_dumps)
    in
    Rz_irr.Db.warm_caches world.db;
    Rz_asrel.Rel_db.warm_cones world.rels;
    let n = Array.length routes in
    let domains = max 1 (min domains n) in
    let chunk = (n + domains - 1) / domains in
    let verify_shard ~on_route_error lo hi =
      let engine = Rz_verify.Engine.create ?config world.db world.rels in
      let agg = Rz_verify.Aggregate.create () in
      let excluded = ref 0 in
      for i = lo to hi - 1 do
        match Rz_verify.Engine.verify_route engine routes.(i) with
        | Some report -> Rz_verify.Aggregate.add_route_report agg report
        | None -> incr excluded
        | exception e -> on_route_error i e
      done;
      (agg, !excluded)
    in
    let work d lo hi () =
      (* per-domain hop/status tallies accumulate into the shared
         Atomic-backed counters; the per-domain route share and wall
         time go to histograms so stragglers are visible *)
      (match inject_domain_fault with Some f -> f d | None -> ());
      Rz_obs.Obs.Counter.incr c_par_domains;
      let t0 = Rz_obs.Obs.now_ns () in
      (* In the spawned domain a poison route re-raises: the whole shard
         is retried sequentially below, where per-route recovery applies. *)
      let result = verify_shard ~on_route_error:(fun _ e -> raise e) lo hi in
      Rz_obs.Obs.Histogram.observe h_par_domain_routes (float_of_int (hi - lo));
      Rz_obs.Obs.Histogram.observe h_par_domain_ns
        (float_of_int (Rz_obs.Obs.now_ns () - t0));
      result
    in
    let handles =
      List.init domains (fun d ->
          let lo = d * chunk in
          let hi = min n (lo + chunk) in
          (lo, hi, Domain.spawn (work d lo hi)))
    in
    let agg = Rz_verify.Aggregate.create () in
    let excluded = ref 0 in
    List.iter
      (fun (lo, hi, handle) ->
        let part, part_excluded =
          match Domain.join handle with
          | result -> result
          | exception _ ->
            (* Crash isolation: a dead domain loses no routes — its shard
               is re-verified sequentially in this domain, with per-route
               recovery so one poison route costs only itself. *)
            Rz_obs.Obs.Counter.incr c_domain_retries;
            verify_shard
              ~on_route_error:(fun _ _ -> incr excluded)
              lo hi
        in
        Rz_verify.Aggregate.merge_into ~dst:agg part;
        excluded := !excluded + part_excluded)
      handles;
    (agg, `Total n, `Excluded !excluded)

  (** Section-4 characterization of the world's RPSL. *)
  let usage world = Rz_stats.Usage.compute ~dumps:world.dumps world.db

  (** Verify one route and render the Appendix-C style report. *)
  let explain_route ?config world route =
    let engine = Rz_verify.Engine.create ?config world.db world.rels in
    Option.map Rz_verify.Report.route_report_to_string
      (Rz_verify.Engine.verify_route engine route)

  (** {2 On-disk layout}

      A world directory holds [<IRR>.db] RPSL dumps (one per IRR, named
      after {!Rz_irr.Db.priority_order}), [as-rel.txt] (CAIDA serial-1),
      and [<collector>.routes] table dumps. *)

  let save_world world dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (irr, text) ->
        let oc = open_out (Filename.concat dir (irr ^ ".db")) in
        output_string oc text;
        close_out oc)
      world.dumps;
    Rz_asrel.Rel_db.save world.rels (Filename.concat dir "as-rel.txt");
    List.iter
      (fun (dump : Rz_bgp.Table_dump.t) ->
        Rz_bgp.Table_dump.save dump (Filename.concat dir (dump.collector ^ ".routes")))
      world.table_dumps

  let read_file path =
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text

  (** Load the RPSL dumps of a world directory, in priority order,
      skipping IRRs whose file is absent. *)
  let load_dumps dir =
    List.filter_map
      (fun irr ->
        let path = Filename.concat dir (irr ^ ".db") in
        if Sys.file_exists path then Some (irr, read_file path) else None)
      Rz_irr.Db.priority_order

  (** Load a previously saved world directory. Topology/persona ground
      truth is not persisted; the returned world carries empty synth
      metadata and is suitable for parsing, stats, and verification. *)
  let load_world dir =
    let dumps = load_dumps dir in
    let db = Rz_irr.Db.of_dumps dumps in
    let rels =
      match Rz_asrel.Rel_db.load (Filename.concat dir "as-rel.txt") with
      | Ok rels -> rels
      | Error msg -> invalid_arg ("as-rel.txt: " ^ msg)
    in
    let table_dumps =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".routes")
      |> List.sort compare
      |> List.map (fun f ->
             let collector = Filename.chop_suffix f ".routes" in
             match Rz_bgp.Table_dump.load ~collector (Filename.concat dir f) with
             | Ok dump -> dump
             | Error msg -> invalid_arg (f ^ ": " ^ msg))
    in
    let topo = Rz_topology.Gen.generate { Rz_topology.Gen.default_params with n_tier1 = 0; n_mid = 0; n_stub = 0 } in
    let synth =
      { Rz_synthirr.Generate.topo;
        config = Rz_synthirr.Config.default;
        profiles = Hashtbl.create 1;
        dumps }
    in
    { topo; synth; db; rels; dumps; table_dumps }
end

(** {1 Convenience one-shots} *)

(** Parse RPSL text into the IR (single unnamed source). *)
let parse_rpsl ?(source = "INLINE") text =
  let ir = Rz_ir.Ir.create () in
  ignore (Rz_ir.Lower.add_dump ir ~source text);
  ir

(** Parse RPSL text and build a queryable database. *)
let db_of_rpsl ?(source = "INLINE") text = Rz_irr.Db.of_dumps [ (source, text) ]

(** Export an IR as JSON text. *)
let ir_to_json = Rz_ir.Ir_json.export_string
