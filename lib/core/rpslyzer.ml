(** RPSLyzer — parse, interpret, characterize, and verify RPSL routing
    policies (OCaml reproduction of the IMC'24 system).

    This module is the public facade: it re-exports every subsystem under
    a stable name and provides {!Pipeline}, the end-to-end driver that the
    examples, CLI, and benchmark harness are built on. *)

(** {1 Subsystems} *)

module Util = Rz_util
module Json = Rz_json.Json
module Net = Rz_net
module Rpsl = Rz_rpsl
module Aspath = Rz_aspath
module Policy = Rz_policy
module Ir = Rz_ir
module Irr = Rz_irr
module Asrel = Rz_asrel
module Bgp = Rz_bgp
module Topology = Rz_topology
module Routegen = Rz_routegen
module Synthirr = Rz_synthirr
module Verify = Rz_verify
module Stats = Rz_stats
module Lint = Rz_lint
module Rpki = Rz_rpki
module Obs = Rz_obs.Obs
module Trace = Rz_trace.Trace
module Ingest = Rz_ingest
module Stream = Rz_stream
module Serve = Rz_serve

(** {1 End-to-end pipeline} *)

module Pipeline = struct
  (** A fully built evaluation world: synthetic topology, the RPSL text it
      publishes, the parsed/merged IRR database, ground-truth AS
      relationships, and collector dumps. *)
  type world = {
    topo : Rz_topology.Gen.t;
    synth : Rz_synthirr.Generate.world;
    db : Rz_irr.Db.t;
    rels : Rz_asrel.Rel_db.t;
    dumps : (string * string) list;  (** (IRR name, RPSL text) *)
    table_dumps : Rz_bgp.Table_dump.t list;
  }

  (** Build a synthetic world end-to-end: generate the topology, render it
      to RPSL across 13 IRRs, parse + merge those dumps back through the
      real parsing pipeline, and propagate BGP routes to collectors. *)
  let build_synthetic ?(topo_params = Rz_topology.Gen.default_params)
      ?(irr_config = Rz_synthirr.Config.default) ?(n_collector_mids = 10)
      ?(n_collectors = 2) () =
    let topo = Rz_topology.Gen.generate topo_params in
    let synth = Rz_synthirr.Generate.generate ~config:irr_config topo in
    let db = Rz_ingest.Ingest.db_of_dumps synth.dumps in
    let peers = Rz_routegen.Propagate.default_collector_peers topo ~n:n_collector_mids in
    let table_dumps = Rz_routegen.Propagate.collector_dumps topo ~n_collectors ~peers in
    { topo; synth; db; rels = topo.rels; dumps = synth.dumps; table_dumps }

  (** Verify every route of every collector dump; returns the aggregates
      behind Figures 2-6 plus the total number of routes examined and the
      number excluded (single-AS or AS_SET paths). *)
  let verify ?config world =
    Rz_obs.Obs.Span.with_ "verify" @@ fun () ->
    let engine = Rz_verify.Engine.create ?config world.db world.rels in
    let agg = Rz_verify.Aggregate.create () in
    let excluded = ref 0 and total = ref 0 in
    List.iter
      (fun (dump : Rz_bgp.Table_dump.t) ->
        List.iter
          (fun route ->
            incr total;
            match Rz_verify.Engine.verify_route engine route with
            | Some report -> Rz_verify.Aggregate.add_route_report agg report
            | None -> incr excluded)
          dump.routes)
      world.table_dumps;
    (agg, `Total !total, `Excluded !excluded)

  let c_cross_routes = Rz_obs.Obs.Counter.make "rpki.cross.routes_total"
  let c_cross_no_origin = Rz_obs.Obs.Counter.make "rpki.cross.no_origin"
  let c_cross_verified_invalid =
    Rz_obs.Obs.Counter.make "rpki.cross.verified_rpki_invalid"
  let c_cross_unrecorded_valid =
    Rz_obs.Obs.Counter.make "rpki.cross.unrecorded_rpki_valid"

  (** Run RFC 6811 origin validation alongside RPSL verification over every
      collector route and tabulate the per-(RPSL-verdict x RPKI-state)
      agreement matrix — the cross-validation view contrasting the paper's
      registry-based verdicts with the deployed RPKI baseline. Routes whose
      AS-path ends in an AS_SET have no plain origin to validate and are
      tallied separately. *)
  let cross_validate ?config world roa_table =
    Rz_obs.Obs.Span.with_ "rpki-cross" @@ fun () ->
    let engine = Rz_verify.Engine.create ?config world.db world.rels in
    let matrix = Rz_stats.Rpki_cross.create () in
    List.iter
      (fun (dump : Rz_bgp.Table_dump.t) ->
        List.iter
          (fun route ->
            Rz_obs.Obs.Counter.incr c_cross_routes;
            match Rz_bgp.Route.origin route with
            | None ->
              Rz_stats.Rpki_cross.add_no_origin matrix;
              Rz_obs.Obs.Counter.incr c_cross_no_origin
            | Some origin ->
              let state =
                Rz_rpki.Roa.validate roa_table route.Rz_bgp.Route.prefix origin
              in
              let rpsl =
                Rz_stats.Rpki_cross.route_class
                  (Rz_verify.Engine.verify_route engine route)
              in
              Rz_stats.Rpki_cross.add matrix ~rpsl state)
          dump.routes)
      world.table_dumps;
    Rz_obs.Obs.Counter.add c_cross_verified_invalid
      (Rz_stats.Rpki_cross.verified_but_rpki_invalid matrix);
    Rz_obs.Obs.Counter.add c_cross_unrecorded_valid
      (Rz_stats.Rpki_cross.unrecorded_but_rpki_valid matrix);
    matrix

  (** Parallel verification across OCaml 5 domains — the multicore mode
      matching the paper's 128-core verification run. The database and
      relationship caches are pre-warmed so the shared structures are
      read-only; each domain runs its own engine over a chunk of routes
      and the per-domain aggregates are merged. *)
  let c_par_domains = Rz_obs.Obs.Counter.make "verify.parallel.domains_total"
  let c_domain_retries = Rz_obs.Obs.Counter.make "verify.domain_retries"
  let c_dedup_collapsed = Rz_obs.Obs.Counter.make "dedup.collapsed"
  let c_steal_batches = Rz_obs.Obs.Counter.make "steal.batches"
  let h_par_domain_routes = Rz_obs.Obs.Histogram.make "verify.parallel.domain_routes"
  let h_par_domain_ns = Rz_obs.Obs.Histogram.make "verify.parallel.domain_ns"

  (* Dedup runs over every route of every dump, so it hashes by hand
     (prefix words + path ASNs are machine integers) rather than paying
     [Hashtbl.hash]'s generic structure walk per route. *)
  module Route_tbl = Hashtbl.Make (struct
    type t = Rz_bgp.Route.t

    let equal = Rz_bgp.Route.equal

    let hash (r : Rz_bgp.Route.t) =
      let h =
        match r.prefix.addr with
        | Rz_net.Prefix.V4 a -> (a * 31) + r.prefix.len
        | Rz_net.Prefix.V6 (hi, lo) ->
          (((Int64.to_int hi * 31) + Int64.to_int lo) * 31) + r.prefix.len
      in
      List.fold_left
        (fun h (seg : Rz_bgp.Route.segment) ->
          match seg with
          | Rz_bgp.Route.Seq asn -> (h * 31) + asn
          | Rz_bgp.Route.Set asns -> List.fold_left (fun h a -> (h * 33) + a) (h * 37) asns)
        h r.path
  end)

  (* Collapse identical [(prefix, as_path)] routes (collector dumps repeat
     them heavily) into (unique route, multiplicity) pairs, preserving
     first-occurrence order. Each unique route is verified once and its
     report weighted by multiplicity, which produces the exact aggregate
     an undeduplicated run would. *)
  let dedup_routes routes =
    let n = Array.length routes in
    let index = Route_tbl.create (2 * n) in
    let order = ref [] and n_unique = ref 0 in
    Array.iter
      (fun (route : Rz_bgp.Route.t) ->
        match Route_tbl.find index route with
        | cell -> incr cell
        | exception Not_found ->
          Route_tbl.add index route (ref 1);
          order := route :: !order;
          incr n_unique)
      routes;
    let unique = Array.of_list (List.rev !order) in
    let weights = Array.map (fun route -> !(Route_tbl.find index route)) unique in
    Rz_obs.Obs.Counter.add c_dedup_collapsed (n - !n_unique);
    (unique, weights)

  (* [inject_domain_fault] is the fault-injection hook used by the
     faultinject harness and the chaos bench: it runs at the top of each
     spawned domain (with the domain index) and may raise to simulate a
     domain crash. It deliberately does NOT run during the sequential
     retry, which is the recovery path under test; that path has its own
     hook, [inject_batch_fault], driven by a seed derived below. *)

  let max_batch_attempts = 3

  (* The retry sweep's per-attempt seed: a pure function of the run seed,
     the batch being retried, and the attempt number, so a chaos run
     replays bit-identically — no ambient RNG state leaks in. *)
  let retry_seed ~run_seed ~batch ~attempt =
    let rng =
      Rz_util.Splitmix.create
        (run_seed lxor (batch * 0x9E3779B1) lxor (attempt * 0x85EBCA77))
    in
    Rz_util.Splitmix.int rng max_int

  let verify_parallel ?config ?(domains = 4) ?(seed = 0) ?inject_domain_fault
      ?inject_batch_fault world =
    Rz_obs.Obs.Span.with_ "verify" @@ fun () ->
    let all_routes =
      Array.of_list
        (List.concat_map (fun (d : Rz_bgp.Table_dump.t) -> d.routes) world.table_dumps)
    in
    Rz_irr.Db.warm_caches world.db;
    Rz_asrel.Rel_db.warm_cones world.rels;
    let n_total = Array.length all_routes in
    let routes, weights = dedup_routes all_routes in
    let n = Array.length routes in
    let domains = max 1 (min domains n) in
    (* Work-stealing over fixed-size batches: domains claim the next batch
       off a shared Atomic cursor, so fast domains drain what stragglers
       would otherwise sit on. Several batches per domain keeps claims
       cheap while leaving enough slack to steal. *)
    let batch_size = max 1 (min 256 (n / (domains * 8) + 1)) in
    let n_batches = (n + batch_size - 1) / batch_size in
    let next_batch = Atomic.make 0 in
    (* owners.(b): domain that claimed batch b, -1 while unclaimed. A
       batch claimed by a domain that later crashed is lost with that
       domain's private aggregate, so the retry sweep covers every batch
       whose owner crashed or never existed. *)
    let owners = Array.init n_batches (fun _ -> Atomic.make (-1)) in
    let verify_batch engine agg excluded ~on_route_error b =
      let lo = b * batch_size in
      let hi = min n (lo + batch_size) in
      for i = lo to hi - 1 do
        let weight = weights.(i) in
        match Rz_verify.Engine.verify_route engine routes.(i) with
        | Some report ->
          Rz_verify.Aggregate.add_route_report ~weight agg report;
          Rz_verify.Engine.replay_route_counters ~times:(weight - 1) (Some report)
        | None ->
          excluded := !excluded + weight;
          Rz_verify.Engine.replay_route_counters ~times:(weight - 1) None
        | exception e -> on_route_error i e
      done;
      hi - lo
    in
    let work d () =
      (* per-domain hop/status tallies accumulate into the shared
         Atomic-backed counters; the per-domain route share and wall
         time go to histograms so stragglers are visible *)
      (match inject_domain_fault with Some f -> f d | None -> ());
      (* one span per worker: gives each domain its own lane in the
         Chrome trace export (rz_trace) at negligible cost *)
      Rz_obs.Obs.Span.with_ "verify.domain" @@ fun () ->
      Rz_obs.Obs.Counter.incr c_par_domains;
      let t0 = Rz_obs.Obs.now_ns () in
      let engine = Rz_verify.Engine.create ?config world.db world.rels in
      let agg = Rz_verify.Aggregate.create () in
      let excluded = ref 0 and claimed_routes = ref 0 in
      (* In the spawned domain a poison route re-raises: every batch this
         domain claimed is retried sequentially below, where per-route
         recovery applies. *)
      let rec drain () =
        let b = Atomic.fetch_and_add next_batch 1 in
        if b < n_batches then begin
          Atomic.set owners.(b) d;
          Rz_obs.Obs.Counter.incr c_steal_batches;
          claimed_routes :=
            !claimed_routes
            + verify_batch engine agg excluded ~on_route_error:(fun _ e -> raise e) b;
          drain ()
        end
      in
      drain ();
      Rz_obs.Obs.Histogram.observe h_par_domain_routes (float_of_int !claimed_routes);
      Rz_obs.Obs.Histogram.observe h_par_domain_ns
        (float_of_int (Rz_obs.Obs.now_ns () - t0));
      (agg, !excluded)
    in
    let handles = List.init domains (fun d -> (d, Domain.spawn (work d))) in
    let agg = Rz_verify.Aggregate.create () in
    let excluded = ref 0 in
    let crashed = Array.make domains false in
    List.iter
      (fun (d, handle) ->
        match Domain.join handle with
        | part, part_excluded ->
          Rz_verify.Aggregate.merge_into ~dst:agg part;
          excluded := !excluded + part_excluded
        | exception _ ->
          (* Crash isolation: the dead domain's whole private aggregate is
             gone; its batches are re-verified in the sweep below. *)
          Rz_obs.Obs.Counter.incr c_domain_retries;
          crashed.(d) <- true)
      handles;
    if Array.exists Fun.id crashed || Atomic.get next_batch < n_batches then begin
      (* Sequential retry: every batch owned by a crashed domain, plus any
         batch never claimed (possible only when domains died), is
         re-verified here with per-route recovery, so a dead domain loses
         no routes and one poison route costs only itself. *)
      let engine = Rz_verify.Engine.create ?config world.db world.rels in
      for b = 0 to n_batches - 1 do
        let owner = Atomic.get owners.(b) in
        if owner < 0 || crashed.(owner) then begin
          (* Bounded attempts. The fault hook runs before the batch is
             verified, so a failed attempt adds nothing to the aggregate
             and a retry never double-counts. An exhausted batch is
             excluded whole — the accounting invariant (every route
             verified or excluded) survives even a hook that always
             raises. *)
          let rec attempt k =
            match
              (match inject_batch_fault with
              | Some f ->
                f ~seed:(retry_seed ~run_seed:seed ~batch:b ~attempt:k)
                  ~batch:b ~attempt:k
              | None -> ());
              verify_batch engine agg excluded
                ~on_route_error:(fun i _ -> excluded := !excluded + weights.(i))
                b
            with
            | _ -> ()
            | exception _ when k < max_batch_attempts ->
              Rz_obs.Obs.Counter.incr c_domain_retries;
              attempt (k + 1)
            | exception _ ->
              Rz_obs.Obs.Counter.incr c_domain_retries;
              let lo = b * batch_size and hi = min n ((b + 1) * batch_size) in
              for i = lo to hi - 1 do
                excluded := !excluded + weights.(i)
              done
          in
          attempt 1
        end
      done
    end;
    (agg, `Total n_total, `Excluded !excluded)

  (** Section-4 characterization of the world's RPSL. *)
  let usage world = Rz_stats.Usage.compute ~dumps:world.dumps world.db

  (** Verify one route and render the Appendix-C style report. *)
  let explain_route ?config world route =
    let engine = Rz_verify.Engine.create ?config world.db world.rels in
    Option.map Rz_verify.Report.route_report_to_string
      (Rz_verify.Engine.verify_route engine route)

  (** {2 Traced explanation}

      The [explain] subcommand's engine: re-verify one route with
      decision-trace sampling forced on and pair every hop report with
      the provenance record the engine emitted for it. *)

  type explained_hop = {
    hop : Rz_verify.Report.hop;
    trace : Rz_trace.Trace.record option;
        (** [None] only if the record was evicted, which cannot happen
            for a single route within the default ring capacity *)
  }

  type explanation = {
    route : Rz_bgp.Route.t;
    hops : explained_hop list;  (** origin-side first, like the report *)
  }

  let explain_route_traced ?config world route =
    Rz_trace.Trace.with_sampling Rz_trace.Trace.All @@ fun () ->
    let engine = Rz_verify.Engine.create ?config world.db world.rels in
    match Rz_verify.Engine.verify_route engine route with
    | None -> None
    | Some report ->
      let records = Rz_trace.Trace.records () in
      let subject_of (hop : Rz_verify.Report.hop) =
        match hop.direction with `Export -> hop.from_as | `Import -> hop.to_as
      in
      let remote_of (hop : Rz_verify.Report.hop) =
        match hop.direction with `Export -> hop.to_as | `Import -> hop.from_as
      in
      let matches (hop : Rz_verify.Report.hop) (r : Rz_trace.Trace.record) =
        r.direction = (match hop.direction with `Export -> "export" | `Import -> "import")
        && r.subject = subject_of hop
        && r.remote = remote_of hop
      in
      (* Emission order equals the report's hop order (origin-side
         first), so hop i pairs with record i; the identity check guards
         against eviction skew and falls back to a search. *)
      let hops =
        List.mapi
          (fun i hop ->
            let trace =
              match List.nth_opt records i with
              | Some r when matches hop r -> Some r
              | _ -> List.find_opt (matches hop) records
            in
            { hop; trace })
          report.hops
      in
      Some { route; hops }

  let explanation_to_text e =
    let b = Buffer.create 512 in
    Buffer.add_string b (Printf.sprintf "route %s" (Rz_bgp.Route.to_line e.route));
    List.iter
      (fun { hop; trace } ->
        Buffer.add_char b '\n';
        Buffer.add_string b (Rz_verify.Report.hop_to_string hop);
        match trace with
        | None -> ()
        | Some r ->
          List.iter
            (fun line -> Buffer.add_string b ("\n    " ^ line))
            (Rz_trace.Trace.record_to_lines r))
      e.hops;
    Buffer.contents b

  let explanation_to_json e =
    let hop_json { hop; trace } =
      Rz_json.Json.Obj
        [ ("verb", Rz_json.Json.String (Rz_verify.Report.verb_of hop));
          ( "direction",
            Rz_json.Json.String
              (match hop.direction with `Export -> "export" | `Import -> "import") );
          ("from", Rz_json.Json.Int hop.from_as);
          ("to", Rz_json.Json.Int hop.to_as);
          ("status", Rz_json.Json.String (Rz_verify.Status.to_string hop.status));
          ("class", Rz_json.Json.String (Rz_verify.Status.class_label hop.status));
          ( "items",
            Rz_json.Json.List
              (List.map
                 (fun i -> Rz_json.Json.String (Rz_verify.Report.item_to_string i))
                 hop.items) );
          ( "trace",
            match trace with
            | Some r -> Rz_trace.Trace.record_to_json r
            | None -> Rz_json.Json.Null ) ]
    in
    Rz_json.Json.Obj
      [ ("route", Rz_json.Json.String (Rz_bgp.Route.to_line e.route));
        ("prefix", Rz_json.Json.String (Rz_net.Prefix.to_string e.route.prefix));
        ("excluded", Rz_json.Json.Bool false);
        ("hops", Rz_json.Json.List (List.map hop_json e.hops)) ]

  (** {2 On-disk layout}

      A world directory holds [<IRR>.db] RPSL dumps (one per IRR, named
      after {!Rz_irr.Db.priority_order}), [as-rel.txt] (CAIDA serial-1),
      and [<collector>.routes] table dumps. *)

  let save_world world dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun (irr, text) ->
        let oc = open_out (Filename.concat dir (irr ^ ".db")) in
        output_string oc text;
        close_out oc)
      world.dumps;
    Rz_asrel.Rel_db.save world.rels (Filename.concat dir "as-rel.txt");
    List.iter
      (fun (dump : Rz_bgp.Table_dump.t) ->
        Rz_bgp.Table_dump.save dump (Filename.concat dir (dump.collector ^ ".routes")))
      world.table_dumps

  let read_file path =
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    text

  (** Load the RPSL dumps of a world directory, in priority order,
      skipping IRRs whose file is absent. *)
  let load_dumps dir =
    List.filter_map
      (fun irr ->
        let path = Filename.concat dir (irr ^ ".db") in
        if Sys.file_exists path then Some (irr, read_file path) else None)
      Rz_irr.Db.priority_order

  (** Load a previously saved world directory. Topology/persona ground
      truth is not persisted; the returned world carries empty synth
      metadata and is suitable for parsing, stats, and verification.
      [snapshot] names an IR snapshot cache file ({!Rz_ir.Ir_snapshot}):
      when present and built from exactly these dumps the parse is
      skipped entirely; otherwise the dumps are ingested (in parallel,
      up to [domains] domains) and the snapshot is (re)written. *)
  let load_world ?snapshot ?domains dir =
    let dumps = load_dumps dir in
    let db = Rz_ingest.Ingest.db_of_dumps ?domains ?snapshot dumps in
    let rels =
      match Rz_asrel.Rel_db.load (Filename.concat dir "as-rel.txt") with
      | Ok rels -> rels
      | Error msg -> invalid_arg ("as-rel.txt: " ^ msg)
    in
    let table_dumps =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".routes")
      |> List.sort compare
      |> List.map (fun f ->
             let collector = Filename.chop_suffix f ".routes" in
             match Rz_bgp.Table_dump.load ~collector (Filename.concat dir f) with
             | Ok dump -> dump
             | Error msg -> invalid_arg (f ^ ": " ^ msg))
    in
    let topo = Rz_topology.Gen.generate { Rz_topology.Gen.default_params with n_tier1 = 0; n_mid = 0; n_stub = 0 } in
    let synth =
      { Rz_synthirr.Generate.topo;
        config = Rz_synthirr.Config.default;
        profiles = Hashtbl.create 1;
        dumps }
    in
    { topo; synth; db; rels; dumps; table_dumps }
end

(** {1 Convenience one-shots} *)

(** Parse RPSL text into the IR (single unnamed source). *)
let parse_rpsl ?(source = "INLINE") text =
  let ir = Rz_ir.Ir.create () in
  ignore (Rz_ir.Lower.add_dump ir ~source text);
  ir

(** Parse RPSL text and build a queryable database. *)
let db_of_rpsl ?(source = "INLINE") text = Rz_irr.Db.of_dumps [ (source, text) ]

(** Export an IR as JSON text. *)
let ir_to_json = Rz_ir.Ir_json.export_string
