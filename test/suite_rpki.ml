(* Tests for rz_rpki (ROV + ROA generation + ASPA), the RPSL x RPKI
   agreement matrix, and the anomaly injection workload. *)
module Roa = Rz_rpki.Roa
module Roagen = Rz_rpki.Roagen
module Aspa = Rz_rpki.Aspa
module Cross = Rz_stats.Rpki_cross
module Anomaly = Rz_routegen.Anomaly
module Gen = Rz_topology.Gen
module Prefix = Rz_net.Prefix
module Json = Rz_json.Json

let p = Rz_net.Prefix.of_string_exn

(* ---------------- ROV ---------------- *)

let roa_table () =
  let t = Roa.create () in
  Roa.add t { Roa.prefix = p "192.0.2.0/24"; max_length = 24; origin = 65001 };
  Roa.add t { Roa.prefix = p "198.51.0.0/16"; max_length = 20; origin = 65002 };
  t

let check_state name expected got =
  Alcotest.(check string) name (Roa.state_to_string expected) (Roa.state_to_string got)

let test_rov_valid () =
  let t = roa_table () in
  check_state "exact match" Roa.Valid (Roa.validate t (p "192.0.2.0/24") 65001);
  check_state "within maxLength" Roa.Valid (Roa.validate t (p "198.51.16.0/20") 65002)

let test_rov_invalid () =
  let t = roa_table () in
  check_state "wrong origin" Roa.Invalid_origin (Roa.validate t (p "192.0.2.0/24") 64999);
  check_state "too specific" Roa.Invalid_length (Roa.validate t (p "198.51.100.0/24") 65002);
  check_state "hijacked subprefix" Roa.Invalid_origin
    (Roa.validate t (p "192.0.2.128/25") 64999)

let test_rov_not_found () =
  let t = roa_table () in
  check_state "uncovered space" Roa.Not_found (Roa.validate t (p "203.0.113.0/24") 65001)

(* The four states pinned one-by-one: the refined RFC 6811 outcomes the
   agreement matrix columns are built on. *)
let test_rov_four_states () =
  let t = roa_table () in
  check_state "valid" Roa.Valid (Roa.validate t (p "192.0.2.0/24") 65001);
  check_state "invalid-origin" Roa.Invalid_origin
    (Roa.validate t (p "198.51.16.0/20") 65099);
  (* /25 under a maxLength-24 ROA by the right origin: only length fails *)
  check_state "invalid-length" Roa.Invalid_length
    (Roa.validate t (p "192.0.2.0/25") 65001);
  check_state "not-found" Roa.Not_found (Roa.validate t (p "2001:db8::/32") 65001);
  Alcotest.(check bool) "is_invalid origin" true (Roa.is_invalid Roa.Invalid_origin);
  Alcotest.(check bool) "is_invalid length" true (Roa.is_invalid Roa.Invalid_length);
  Alcotest.(check bool) "is_invalid valid" false (Roa.is_invalid Roa.Valid);
  Alcotest.(check string) "coarse invalid-length" "invalid" (Roa.coarse Roa.Invalid_length);
  List.iter
    (fun s ->
      Alcotest.(check (option string)) "state string round-trip"
        (Some (Roa.state_to_string s))
        (Option.map Roa.state_to_string (Roa.state_of_string (Roa.state_to_string s))))
    [ Roa.Valid; Roa.Invalid_origin; Roa.Invalid_length; Roa.Not_found ]

let test_rov_valid_beats_invalid () =
  (* Valid wins over a competing covering ROA that would be invalid, and a
     matching-origin cover makes length the deciding failure. *)
  let t = roa_table () in
  Roa.add t { Roa.prefix = p "192.0.2.0/24"; max_length = 24; origin = 64999 };
  check_state "either origin valid" Roa.Valid (Roa.validate t (p "192.0.2.0/24") 64999);
  Alcotest.(check int) "size" 3 (Roa.size t)

let small_topo =
  lazy (Gen.generate { Gen.default_params with n_tier1 = 3; n_mid = 20; n_stub = 60 })

let test_rov_of_topology () =
  let topo = Lazy.force small_topo in
  let full = Roagen.of_topology ~adoption:1.0 topo in
  let none = Roagen.of_topology ~adoption:0.0 topo in
  Alcotest.(check int) "no adoption -> empty" 0 (Roa.size none);
  Alcotest.(check bool) "full adoption covers" true (Roa.size full > 100);
  (* ground truth validates *)
  let asn = topo.ases.(10) in
  List.iter
    (fun prefix ->
      check_state "own announcement valid" Roa.Valid (Roa.validate full prefix asn);
      Alcotest.(check bool) "foreign origin invalid" true
        (Roa.is_invalid (Roa.validate full prefix (asn + 1))))
    (Gen.prefixes_of topo asn)

(* ---------------- ROV trie vs. brute-force oracle ---------------- *)

(* Linear-scan reimplementation of RFC 6811 with the same precedence as
   Roa.validate, over a plain list instead of the trie. *)
let oracle_validate roas prefix origin =
  let len = prefix.Prefix.len in
  let covering = List.filter (fun r -> Prefix.contains r.Roa.prefix prefix) roas in
  if covering = [] then Roa.Not_found
  else if
    List.exists (fun r -> r.Roa.origin = origin && len <= r.Roa.max_length) covering
  then Roa.Valid
  else if List.exists (fun r -> r.Roa.origin = origin) covering then Roa.Invalid_length
  else Roa.Invalid_origin

(* Random prefixes biased toward the edge lengths (/0, /32, /128) and
   shared high bits, so covering relations actually occur. *)
let prefix_gen =
  let open QCheck.Gen in
  let v4 =
    let* len = oneofl [ 0; 1; 2; 8; 15; 16; 24; 31; 32 ] in
    let* a = int_bound 0xFF in
    (* keep the top byte in a tiny pool so prefixes nest *)
    let* top = oneofl [ 0x0A; 0x0B ] in
    return (Prefix.v4 ((top lsl 24) lor (a lsl 8)) len)
  in
  let v6 =
    let* len = oneofl [ 0; 1; 32; 48; 64; 96; 127; 128 ] in
    let* hi = oneofl [ 0x20010DB8_00000000L; 0x20010DB8_00000001L ] in
    let* lo = oneofl [ 0L; 1L; 0x8000000000000000L ] in
    return (Prefix.v6 (hi, lo) len)
  in
  QCheck.Gen.oneof [ v4; v6 ]

let roa_gen =
  let open QCheck.Gen in
  let* prefix = prefix_gen in
  let* slack = int_bound (Prefix.max_len prefix - prefix.Prefix.len) in
  let* origin = int_range 64496 64500 in
  return { Roa.prefix; max_length = prefix.Prefix.len + slack; origin }

let rov_oracle_case =
  let gen =
    QCheck.Gen.(
      triple (list_size (int_bound 8) roa_gen) prefix_gen (int_range 64496 64500))
  in
  QCheck.Test.make ~name:"trie ROV = linear-scan ROV" ~count:1000 (QCheck.make gen)
    (fun (roas, prefix, origin) ->
      let table = Roa.of_list roas in
      Roa.validate table prefix origin = oracle_validate roas prefix origin)

let test_rov_oracle_edges () =
  (* the edge lengths pinned deterministically on top of the random sweep *)
  let roas =
    [ { Roa.prefix = p "0.0.0.0/0"; max_length = 8; origin = 64496 };
      { Roa.prefix = p "10.0.0.0/8"; max_length = 32; origin = 64497 };
      { Roa.prefix = p "::/0"; max_length = 64; origin = 64498 } ]
  in
  let table = Roa.of_list roas in
  List.iter
    (fun (prefix, origin) ->
      check_state
        (Printf.sprintf "oracle at %s" (Prefix.to_string prefix))
        (oracle_validate roas prefix origin)
        (Roa.validate table prefix origin))
    [ (p "0.0.0.0/0", 64496); (p "10.1.2.3/32", 64497); (p "10.1.2.3/32", 64496);
      (p "10.0.0.0/8", 64496); (p "::/0", 64498);
      (p "2001:db8::1/128", 64498); (p "2001:db8::/64", 64498) ]

(* ---------------- ROA generation ---------------- *)

let test_roagen_deterministic () =
  let topo = Lazy.force small_topo in
  let a = Roagen.generate topo and b = Roagen.generate topo in
  Alcotest.(check bool) "same config, same ROAs" true
    (List.map Roa.roa_to_line a.roas = List.map Roa.roa_to_line b.roas);
  let c = Roagen.generate ~config:{ Roagen.default with seed = 8 } topo in
  Alcotest.(check bool) "different seed, different ROAs" true
    (List.map Roa.roa_to_line a.roas <> List.map Roa.roa_to_line c.roas)

let test_roagen_misconfigurations () =
  let topo = Lazy.force small_topo in
  let result =
    Roagen.generate
      ~config:
        { Roagen.seed = 11; adoption = 1.0; wrong_maxlen_prob = 0.2;
          stale_origin_prob = 0.2; hostile_covering_prob = 0.1 }
      topo
  in
  let s = result.stats in
  Alcotest.(check bool) "each kind generated" true
    (s.n_clean > 0 && s.n_wrong_maxlen > 0 && s.n_stale > 0 && s.n_hostile > 0);
  Alcotest.(check int) "stats account for every ROA"
    (List.length result.roas)
    (s.n_clean + s.n_wrong_maxlen + s.n_stale + s.n_hostile);
  (* under only-misconfigured signing, ground-truth announcements must
     validate invalid, never valid *)
  let bad =
    Roagen.table_of
      (Roagen.generate
         ~config:
           { Roagen.seed = 12; adoption = 1.0; wrong_maxlen_prob = 1.0;
             stale_origin_prob = 0.0; hostile_covering_prob = 0.0 }
         topo)
  in
  Array.iter
    (fun asn ->
      List.iter
        (fun prefix ->
          if prefix.Prefix.len >= 2 then
            check_state "wrong maxLength invalidates the signer" Roa.Invalid_length
              (Roa.validate bad prefix asn))
        (Gen.prefixes_of topo asn))
    topo.ases

let test_roa_render_round_trip () =
  let topo = Lazy.force small_topo in
  let result = Roagen.generate topo in
  let parsed = Roa.parse_string (Roa.render result.roas) in
  Alcotest.(check int) "no rejects on rendered output" 0 parsed.n_rejected;
  (* duplicates collapse on load; everything else survives byte-for-byte *)
  let dedup lines =
    List.sort_uniq compare (List.map Roa.roa_to_line lines)
  in
  Alcotest.(check (list string)) "round trip"
    (dedup result.roas) (dedup parsed.roas);
  Alcotest.(check int) "loaded = distinct" (List.length (dedup result.roas)) parsed.loaded

(* ---------------- RPSL x RPKI agreement matrix ---------------- *)

let test_cross_matrix_counts () =
  let m = Cross.create () in
  Cross.add m ~rpsl:"verified" Roa.Valid;
  Cross.add m ~rpsl:"verified" Roa.Invalid_origin;
  Cross.add m ~rpsl:"verified" Roa.Invalid_length;
  Cross.add m ~rpsl:"unrecorded" Roa.Not_found;
  Cross.add m ~rpsl:"unrecorded" Roa.Valid;
  Cross.add m ~rpsl:"unverified" Roa.Invalid_origin;
  Cross.add m ~rpsl:"skipped" Roa.Valid;
  Cross.add m ~rpsl:"excluded" Roa.Valid;
  Cross.add_no_origin m;
  Alcotest.(check int) "cell" 1 (Cross.cell m ~rpsl:"verified" ~rpki:"invalid-origin");
  Alcotest.(check int) "total" 8 (Cross.total m);
  Alcotest.(check int) "classified excludes excluded row" 7 (Cross.classified m);
  (* agree: verified x valid, unrecorded x not-found, unverified x invalid *)
  Alcotest.(check int) "agree" 3 (Cross.agree m);
  Alcotest.(check int) "verified but invalid" 2 (Cross.verified_but_rpki_invalid m);
  Alcotest.(check int) "unrecorded but valid" 1 (Cross.unrecorded_but_rpki_valid m);
  Alcotest.(check int) "no origin" 1 (Cross.n_no_origin m);
  Alcotest.check_raises "unknown class rejected"
    (Invalid_argument "Rpki_cross: unknown RPSL class \"bogus\"") (fun () ->
      Cross.add m ~rpsl:"bogus" Roa.Valid)

let test_cross_json_round_trip () =
  let m = Cross.create () in
  Cross.add m ~rpsl:"verified" Roa.Valid;
  Cross.add m ~rpsl:"relaxed" Roa.Invalid_length;
  Cross.add_no_origin m;
  let json = Cross.to_json m in
  (match Cross.of_json json with
   | Error e -> Alcotest.failf "of_json: %s" e
   | Ok m' ->
     Alcotest.(check bool) "round trip" true (Json.equal json (Cross.to_json m')));
  Alcotest.(check (list string)) "self-diff is empty" []
    (Cross.diff_json ~baseline:json json)

let test_cross_diff_localizes () =
  let m = Cross.create () in
  Cross.add m ~rpsl:"verified" Roa.Valid;
  let baseline = Cross.to_json m in
  Cross.add m ~rpsl:"verified" Roa.Valid;
  let diffs = Cross.diff_json ~baseline (Cross.to_json m) in
  Alcotest.(check bool) "perturbation detected" true (diffs <> []);
  Alcotest.(check bool) "diff names the moved cell" true
    (List.exists
       (fun d ->
         String.length d >= String.length "matrix.verified.valid"
         && String.sub d 0 (String.length "matrix.verified.valid")
            = "matrix.verified.valid")
       diffs)

let test_cross_validate_pipeline () =
  let world =
    Rpslyzer.Pipeline.build_synthetic
      ~topo_params:
        { Gen.default_params with seed = 3; n_tier1 = 3; n_mid = 12; n_stub = 30 }
      ()
  in
  let roagen = Roagen.generate world.topo in
  let m = Rpslyzer.Pipeline.cross_validate world (Roagen.table_of roagen) in
  let n_routes =
    List.fold_left
      (fun acc (d : Rz_bgp.Table_dump.t) -> acc + List.length d.routes)
      0 world.table_dumps
  in
  Alcotest.(check int) "every route lands somewhere" n_routes
    (Cross.total m + Cross.n_no_origin m);
  Alcotest.(check bool) "matrix is populated" true (Cross.classified m > 0);
  Alcotest.(check bool) "agreement bounded" true
    (Cross.agree m <= Cross.classified m)

(* ---------------- ASPA ---------------- *)

(* topology: 1 -- 2 tier1 peers; 1 > 3, 2 > 4 (providers); 3 > 5, 4 > 6 *)
let aspa_full () =
  let t = Aspa.create () in
  Aspa.attest t ~customer:3 ~providers:[ 1 ];
  Aspa.attest t ~customer:4 ~providers:[ 2 ];
  Aspa.attest t ~customer:5 ~providers:[ 3 ];
  Aspa.attest t ~customer:6 ~providers:[ 4 ];
  t

let check_aspa name expected got =
  Alcotest.(check string) name (Aspa.result_to_string expected) (Aspa.result_to_string got)

let test_aspa_valid_up_down () =
  let t = aspa_full () in
  (* wire order collector-side first: 6 4 2 | 1 3 5 reversed = origin 5 *)
  check_aspa "valley-free across apex" Aspa.Valid
    (Aspa.verify_path t [| 6; 4; 2; 1; 3; 5 |]);
  check_aspa "pure uphill" Aspa.Valid (Aspa.verify_path t [| 1; 3; 5 |]);
  check_aspa "single AS" Aspa.Valid (Aspa.verify_path t [| 5 |])

let test_aspa_single_suspect_pair_is_unknown () =
  let t = aspa_full () in
  (* origin 6 climbs to 4 (attested), 4-3 has provably-no-authorization in
     both directions — but a single such pair is indistinguishable from a
     lateral peer link at the apex, so the draft (and we) stay Unknown:
     the hop after it (3 -> 1) cannot be proven to climb. *)
  check_aspa "one suspect pair tolerated as apex" Aspa.Unknown
    (Aspa.verify_path t [| 1; 3; 4; 6 |])

let test_aspa_invalid_deep_leak () =
  let t = aspa_full () in
  (* two provably-unauthorized pairs far apart force K + L < N:
     path origin 5, up to 3 (ok), fake hop 3 -> 6 (3 attests [1): NP up;
     6 attests [4]: NP down), then 6 -> 4 up (P), then 4 -> 2 up...
     wire order: [2; 4; 6; 3; 5] -> a = [5;3;6;4;2]:
       pair(5,3)=P up; pair(3,6): up NP; -> K=2
       from top: pair(4,2): down = is 4 provider of 2? 2 no ASPA ->
       plausible; pair(6,4): down = is 6 a provider of 4? 4 attests [2] ->
       NP -> L=2. K+L=4 < N=5 -> Invalid *)
  check_aspa "valley deep in the path" Aspa.Invalid
    (Aspa.verify_path t [| 2; 4; 6; 3; 5 |])

let test_aspa_unknown_without_attestations () =
  let t = Aspa.create () in
  Aspa.attest t ~customer:5 ~providers:[ 3 ];
  (* only one attestation: the rest of the path is unverifiable *)
  check_aspa "partial adoption" Aspa.Unknown (Aspa.verify_path t [| 6; 4; 2; 1; 3; 5 |])

let test_aspa_authorized () =
  let t = aspa_full () in
  Alcotest.(check bool) "provider" true (Aspa.authorized t ~customer:3 ~provider:1 = Aspa.Provider);
  Alcotest.(check bool) "not provider" true
    (Aspa.authorized t ~customer:3 ~provider:2 = Aspa.Not_provider);
  Alcotest.(check bool) "no attestation" true
    (Aspa.authorized t ~customer:1 ~provider:2 = Aspa.No_attestation);
  Alcotest.(check bool) "has_aspa" true (Aspa.has_aspa t 3);
  Alcotest.(check int) "size" 4 (Aspa.size t)

let test_aspa_of_topology_validates_real_routes () =
  let topo = Lazy.force small_topo in
  let aspa = Aspa.of_topology ~adoption:1.0 topo in
  (* real collector routes must never be Invalid under full adoption *)
  let peers = Rz_routegen.Propagate.default_collector_peers topo ~n:3 in
  let dump = Rz_routegen.Propagate.collector_dump topo ~collector:"t" ~peers in
  List.iter
    (fun (r : Rz_bgp.Route.t) ->
      let path = Array.of_list (Rz_bgp.Route.dedup_path r) in
      match Aspa.verify_path aspa path with
      | Aspa.Invalid ->
        Alcotest.failf "legitimate route flagged invalid: %s" (Rz_bgp.Route.to_line r)
      | _ -> ())
    dump.routes

(* ---------------- anomalies ---------------- *)

let test_inject_prefix_hijack () =
  let topo = Lazy.force small_topo in
  let observer = topo.ases.(0) in
  let events = Anomaly.inject topo ~observer ~n:20 Anomaly.Prefix_hijack in
  Alcotest.(check bool) "events produced" true (List.length events > 5);
  List.iter
    (fun (e : Anomaly.event) ->
      (* the observed origin is the attacker, but the prefix belongs to
         the victim *)
      Alcotest.(check (option int)) "origin is attacker" (Some e.attacker)
        (Rz_bgp.Route.origin e.route);
      Alcotest.(check bool) "prefix is the victim's" true
        (List.exists (Rz_net.Prefix.equal e.prefix) (Gen.prefixes_of topo e.victim)))
    events

let test_inject_forged_origin () =
  let topo = Lazy.force small_topo in
  let observer = topo.ases.(0) in
  let events = Anomaly.inject topo ~observer ~n:20 Anomaly.Forged_origin in
  Alcotest.(check bool) "events produced" true (List.length events > 5);
  List.iter
    (fun (e : Anomaly.event) ->
      Alcotest.(check (option int)) "forged origin is the victim" (Some e.victim)
        (Rz_bgp.Route.origin e.route);
      (* the attacker sits adjacent to the forged origin *)
      let path = Rz_bgp.Route.dedup_path e.route in
      let rec last_two = function
        | [ a; b ] -> (a, b)
        | _ :: rest -> last_two rest
        | [] -> Alcotest.fail "path too short"
      in
      let penultimate, last = last_two path in
      Alcotest.(check int) "attacker before origin" e.attacker penultimate;
      Alcotest.(check int) "victim last" e.victim last)
    events

let test_inject_route_leak () =
  let topo = Lazy.force small_topo in
  let observer = topo.ases.(0) in
  let events = Anomaly.inject topo ~observer ~n:20 Anomaly.Route_leak in
  Alcotest.(check bool) "events produced" true (List.length events > 0);
  List.iter
    (fun (e : Anomaly.event) ->
      let path = Rz_bgp.Route.dedup_path e.route in
      Alcotest.(check bool) "attacker on path" true (List.mem e.attacker path);
      Alcotest.(check (option int)) "victim is origin" (Some e.victim)
        (Rz_bgp.Route.origin e.route))
    events

let test_rov_catches_hijacks () =
  let topo = Lazy.force small_topo in
  let observer = topo.ases.(0) in
  let roa = Roagen.of_topology ~adoption:1.0 topo in
  let events = Anomaly.inject topo ~observer ~n:20 Anomaly.Prefix_hijack in
  List.iter
    (fun (e : Anomaly.event) ->
      match Rz_bgp.Route.origin e.route with
      | Some origin ->
        Alcotest.(check bool) "hijack invalid under full ROV" true
          (Roa.is_invalid (Roa.validate roa e.prefix origin))
      | None -> Alcotest.fail "no origin")
    events

let test_rov_misses_forged_origin () =
  (* the known ROV blind spot: the forged origin IS the authorized one *)
  let topo = Lazy.force small_topo in
  let observer = topo.ases.(0) in
  let roa = Roagen.of_topology ~adoption:1.0 topo in
  let events = Anomaly.inject topo ~observer ~n:10 Anomaly.Forged_origin in
  List.iter
    (fun (e : Anomaly.event) ->
      match Rz_bgp.Route.origin e.route with
      | Some origin ->
        check_state "forged origin evades ROV" Roa.Valid (Roa.validate roa e.prefix origin)
      | None -> Alcotest.fail "no origin")
    events

let test_aspa_catches_leaks () =
  let topo = Lazy.force small_topo in
  let observer = topo.ases.(0) in
  let aspa = Aspa.of_topology ~adoption:1.0 topo in
  let events = Anomaly.inject topo ~observer ~n:20 Anomaly.Route_leak in
  let detected =
    List.length
      (List.filter
         (fun (e : Anomaly.event) ->
           Aspa.verify_path aspa (Array.of_list (Rz_bgp.Route.dedup_path e.route))
           = Aspa.Invalid)
         events)
  in
  Alcotest.(check bool)
    (Printf.sprintf "ASPA detects most leaks (%d/%d)" detected (List.length events))
    true
    (List.length events = 0 || float_of_int detected /. float_of_int (List.length events) > 0.5)

let suite =
  [ Alcotest.test_case "rov valid" `Quick test_rov_valid;
    Alcotest.test_case "rov invalid" `Quick test_rov_invalid;
    Alcotest.test_case "rov not-found" `Quick test_rov_not_found;
    Alcotest.test_case "rov four states" `Quick test_rov_four_states;
    Alcotest.test_case "rov competing roas" `Quick test_rov_valid_beats_invalid;
    Alcotest.test_case "rov from topology" `Quick test_rov_of_topology;
    QCheck_alcotest.to_alcotest rov_oracle_case;
    Alcotest.test_case "rov oracle edge lengths" `Quick test_rov_oracle_edges;
    Alcotest.test_case "roagen deterministic" `Quick test_roagen_deterministic;
    Alcotest.test_case "roagen misconfigurations" `Quick test_roagen_misconfigurations;
    Alcotest.test_case "roa render round trip" `Quick test_roa_render_round_trip;
    Alcotest.test_case "cross matrix counts" `Quick test_cross_matrix_counts;
    Alcotest.test_case "cross json round trip" `Quick test_cross_json_round_trip;
    Alcotest.test_case "cross diff localizes" `Quick test_cross_diff_localizes;
    Alcotest.test_case "cross validate pipeline" `Quick test_cross_validate_pipeline;
    Alcotest.test_case "aspa valid paths" `Quick test_aspa_valid_up_down;
    Alcotest.test_case "aspa apex ambiguity" `Quick test_aspa_single_suspect_pair_is_unknown;
    Alcotest.test_case "aspa deep valley" `Quick test_aspa_invalid_deep_leak;
    Alcotest.test_case "aspa partial adoption" `Quick test_aspa_unknown_without_attestations;
    Alcotest.test_case "aspa authorized" `Quick test_aspa_authorized;
    Alcotest.test_case "aspa no false invalids" `Quick test_aspa_of_topology_validates_real_routes;
    Alcotest.test_case "inject prefix hijack" `Quick test_inject_prefix_hijack;
    Alcotest.test_case "inject forged origin" `Quick test_inject_forged_origin;
    Alcotest.test_case "inject route leak" `Quick test_inject_route_leak;
    Alcotest.test_case "rov catches hijacks" `Quick test_rov_catches_hijacks;
    Alcotest.test_case "rov misses forged origins" `Quick test_rov_misses_forged_origin;
    Alcotest.test_case "aspa catches leaks" `Quick test_aspa_catches_leaks ]
