(* String-interning pool and arena storage (Rz_intern) — the compact-IR
   substrate. Properties: intern/resolve are inverse, ids are dense and
   first-seen-order stable, encode/decode round-trips, truncated
   encodings are rejected; plus arena unit coverage. *)
module Intern = Rz_intern.Intern
module Gen = QCheck.Gen

let gen_strings =
  (* duplicates on purpose: a small alphabet of short strings makes
     repeat interning the common case, as in real RPSL dumps *)
  Gen.list_size (Gen.int_range 0 200)
    (Gen.oneof
       [ Gen.map (Printf.sprintf "AS%d") (Gen.int_range 1 40);
         Gen.map (Printf.sprintf "MNT-%d") (Gen.int_range 1 10);
         Gen.return "";
         Gen.string_size ~gen:Gen.printable (Gen.int_range 0 12) ])

let arb_strings = QCheck.make ~print:(String.concat "|") gen_strings

let intern_resolve_identity =
  QCheck.Test.make ~name:"intern then resolve is the identity" ~count:200
    arb_strings (fun strings ->
      let pool = Intern.Pool.create () in
      List.for_all
        (fun s -> Intern.Pool.resolve pool (Intern.Pool.intern pool s) = s)
        strings)

let ids_dense_first_seen =
  QCheck.Test.make ~name:"ids are dense in first-seen order" ~count:200
    arb_strings (fun strings ->
      let pool = Intern.Pool.create () in
      let seen = Hashtbl.create 16 in
      let distinct = ref [] in
      List.iter
        (fun s ->
          if not (Hashtbl.mem seen s) then begin
            Hashtbl.add seen s ();
            distinct := s :: !distinct
          end;
          ignore (Intern.Pool.intern pool s))
        strings;
      let distinct = List.rev !distinct in
      Intern.Pool.length pool = List.length distinct
      && List.for_all2
           (fun id s ->
             Intern.Pool.intern pool s = id
             && Intern.Pool.find_opt pool s = Some id)
           (List.init (List.length distinct) Fun.id)
           distinct)

let encode_decode_roundtrip =
  QCheck.Test.make ~name:"encode/decode round-trips contents and ids"
    ~count:200 arb_strings (fun strings ->
      let pool = Intern.Pool.create () in
      List.iter (fun s -> ignore (Intern.Pool.intern pool s)) strings;
      let b = Buffer.create 256 in
      Buffer.add_string b "pre";
      Intern.Pool.encode b pool;
      Buffer.add_string b "post";
      let decoded, pos = Intern.Pool.decode (Buffer.contents b) ~pos:3 in
      pos = Buffer.length b - 4
      && Intern.Pool.length decoded = Intern.Pool.length pool
      &&
      let ok = ref true in
      Intern.Pool.iter pool (fun id s ->
          if Intern.Pool.resolve decoded id <> s then ok := false);
      !ok)

let decode_rejects_truncation =
  QCheck.Test.make ~name:"decode rejects every truncation" ~count:50
    arb_strings (fun strings ->
      let pool = Intern.Pool.create () in
      List.iter (fun s -> ignore (Intern.Pool.intern pool s)) strings;
      let b = Buffer.create 256 in
      Intern.Pool.encode b pool;
      let enc = Buffer.contents b in
      List.for_all
        (fun cut ->
          match Intern.Pool.decode (String.sub enc 0 cut) ~pos:0 with
          | _ -> false
          | exception Failure _ -> true)
        (List.init (String.length enc - 1) Fun.id))

let test_pool_copy_independent () =
  let pool = Intern.Pool.create () in
  let id_a = Intern.Pool.intern pool "a" in
  let copy = Intern.Pool.copy pool in
  let id_b = Intern.Pool.intern copy "b" in
  Alcotest.(check int) "copy keeps ids" id_a (Intern.Pool.intern copy "a");
  Alcotest.(check (option int)) "original unaffected" None
    (Intern.Pool.find_opt pool "b");
  Alcotest.(check string) "copy resolves new id" "b"
    (Intern.Pool.resolve copy id_b)

let test_arena_basics () =
  let a = Intern.Arena.create ~capacity:2 () in
  for i = 0 to 9 do Intern.Arena.push a i done;
  Alcotest.(check int) "length" 10 (Intern.Arena.length a);
  Alcotest.(check int) "get" 7 (Intern.Arena.get a 7);
  Alcotest.(check (list int)) "to_list in insertion order"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (Intern.Arena.to_list a);
  let rev = ref [] in
  Intern.Arena.iter_rev a (fun x -> rev := x :: !rev);
  Alcotest.(check (list int)) "iter_rev is newest first"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] !rev;
  Alcotest.(check int) "fold in order" 45
    (Intern.Arena.fold a ~init:0 ~f:( + ))

let test_arena_filter_and_copy () =
  let a = Intern.Arena.of_list [ 1; 2; 3; 4; 5; 6 ] in
  let c = Intern.Arena.copy a in
  Intern.Arena.filter_in_place a (fun x -> x mod 2 = 0);
  Alcotest.(check (list int)) "survivors keep order" [ 2; 4; 6 ]
    (Intern.Arena.to_list a);
  Alcotest.(check (list int)) "copy untouched" [ 1; 2; 3; 4; 5; 6 ]
    (Intern.Arena.to_list c)

let suite =
  [ QCheck_alcotest.to_alcotest intern_resolve_identity;
    QCheck_alcotest.to_alcotest ids_dense_first_seen;
    QCheck_alcotest.to_alcotest encode_decode_roundtrip;
    QCheck_alcotest.to_alcotest decode_rejects_truncation;
    Alcotest.test_case "pool copy is independent" `Quick
      test_pool_copy_independent;
    Alcotest.test_case "arena push/get/iter/fold" `Quick test_arena_basics;
    Alcotest.test_case "arena filter_in_place and copy" `Quick
      test_arena_filter_and_copy ]
