(* Tests for the rz_trace decision-tracing layer: ring-buffer bounds,
   sampling policies, the explain/batch-engine parity property (the
   tentpole contract: re-verifying a route with tracing forced on must
   reproduce the batch engine's verdicts, memoized or not, with
   provenance consistent with each verdict), Chrome trace-event export
   well-formedness, and the metrics streamer. *)

module Obs = Rz_obs.Obs
module Trace = Rz_trace.Trace
module Json = Rz_json.Json
module Status = Rz_verify.Status
module Report = Rz_verify.Report

(* Fresh tracer and registry per test; both left off afterwards so the
   other suites stay uninstrumented. *)
let with_trace f () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect f ~finally:(fun () ->
      (* capacity is sticky across configure calls; restore the default
         so tests stay order-independent *)
      Trace.configure ~cap:Trace.default_capacity Trace.Off;
      Obs.disable ();
      Obs.reset ())

let dummy_record ?(verdict_class = "verified") () =
  { Trace.seq = 0; t_ns = Obs.now_ns (); domain = (Domain.self () :> int);
    direction = "import"; subject = 65000; remote = 65001;
    prefix = "10.0.0.0/24"; origin = 65000; path_len = 2;
    verdict = "Verified"; verdict_class; rule = Some "import: from AS65001 accept ANY";
    filter_kind = Some "any"; as_sets = []; memo = "computed"; trigger = None;
    items = [] }

(* ---------------- sampling policies ---------------- *)

let test_sampling_strings () =
  List.iter
    (fun (s, p) ->
      Alcotest.(check bool) (Printf.sprintf "parse %S" s) true
        (Trace.sampling_of_string s = Some p);
      Alcotest.(check bool) (Printf.sprintf "round-trip %S" s) true
        (Trace.sampling_of_string (Trace.sampling_to_string p) = Some p))
    [ ("off", Trace.Off); ("all", Trace.All); ("quota:5", Trace.Per_status 5) ];
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "reject %S" s) true
        (Trace.sampling_of_string s = None))
    [ ""; "some"; "quota:"; "quota:0"; "quota:-3"; "quota:x" ]

let test_disabled_is_inert () =
  Trace.configure Trace.Off;
  Alcotest.(check bool) "disabled" false (Trace.enabled ());
  Alcotest.(check bool) "nothing sampled" false (Trace.should_sample "verified");
  Trace.emit (dummy_record ());
  Alcotest.(check int) "emit is a no-op" 0 (Trace.kept ());
  Alcotest.(check (list reject)) "no records" [] (Trace.records ())

let test_sampling_all_and_quota () =
  Trace.configure Trace.All;
  Alcotest.(check bool) "all samples everything" true (Trace.should_sample "unverified");
  for _ = 1 to 10 do Trace.emit (dummy_record ()) done;
  Alcotest.(check int) "all kept" 10 (Trace.kept ());
  Trace.configure (Trace.Per_status 3);
  for _ = 1 to 10 do
    if Trace.should_sample "verified" then Trace.emit (dummy_record ())
  done;
  for _ = 1 to 2 do
    if Trace.should_sample "relaxed" then
      Trace.emit (dummy_record ~verdict_class:"relaxed" ())
  done;
  Alcotest.(check int) "quota caps per class, not globally" 5 (Trace.kept ());
  (* records come back in emission order with contiguous seq *)
  let seqs = List.map (fun r -> r.Trace.seq) (Trace.records ()) in
  Alcotest.(check (list int)) "seq order" [ 0; 1; 2; 3; 4 ] seqs

let test_ring_bounds () =
  Trace.configure ~cap:8 Trace.All;
  Alcotest.(check int) "capacity taken" 8 (Trace.ring_capacity ());
  for _ = 1 to 20 do Trace.emit (dummy_record ()) done;
  Alcotest.(check int) "kept bounded by capacity" 8 (Trace.kept ());
  Alcotest.(check int) "overflow counted as dropped" 12 (Trace.dropped ());
  (* the ring keeps the newest records *)
  let seqs = List.map (fun r -> r.Trace.seq) (Trace.records ()) in
  Alcotest.(check (list int)) "newest survive" [ 12; 13; 14; 15; 16; 17; 18; 19 ] seqs

let test_ring_bound_multi_domain () =
  (* every domain gets its own ring: total memory stays within
     cap * domains even under concurrent emission, and nothing is lost
     below capacity *)
  let cap = 64 and domains = 4 and per_domain = 200 in
  Trace.configure ~cap Trace.All;
  let work () = for _ = 1 to per_domain do Trace.emit (dummy_record ()) done in
  List.iter Domain.join (List.init domains (fun _ -> Domain.spawn work));
  Alcotest.(check int) "kept = cap * domains" (cap * domains) (Trace.kept ());
  Alcotest.(check int) "dropped accounts for the rest"
    ((domains * per_domain) - (cap * domains))
    (Trace.dropped ());
  let rs = Trace.records () in
  Alcotest.(check int) "records match kept" (cap * domains) (List.length rs);
  (* emission order is globally coherent *)
  let sorted = List.sort (fun a b -> compare a.Trace.seq b.Trace.seq) rs in
  Alcotest.(check bool) "sorted by seq" true (rs = sorted)

let test_with_sampling_restores () =
  Trace.configure (Trace.Per_status 2);
  let inside =
    Trace.with_sampling Trace.All (fun () ->
        Trace.emit (dummy_record ());
        (Trace.sampling (), Trace.kept ()))
  in
  Alcotest.(check bool) "forced to All inside" true (fst inside = Trace.All);
  Alcotest.(check int) "temporary record collected" 1 (snd inside);
  Alcotest.(check bool) "policy restored" true (Trace.sampling () = Trace.Per_status 2);
  Alcotest.(check int) "temporary records discarded" 0 (Trace.kept ())

(* ---------------- verify-engine emission ---------------- *)

let small_world () =
  Rpslyzer.Pipeline.build_synthetic
    ~topo_params:
      { Rz_topology.Gen.default_params with seed = 11; n_tier1 = 3; n_mid = 12; n_stub = 40 }
    ~irr_config:{ Rz_synthirr.Config.default with seed = 12 }
    ()

let world_routes world =
  Array.of_list
    (List.concat_map
       (fun (d : Rz_bgp.Table_dump.t) -> d.routes)
       world.Rpslyzer.Pipeline.table_dumps)

let test_engine_emits_records () =
  let world = small_world () in
  let routes = world_routes world in
  Trace.configure Trace.All;
  let engine = Rz_verify.Engine.create world.db world.rels in
  let n_hops = ref 0 in
  Array.iteri
    (fun i route ->
      if i < 50 then
        match Rz_verify.Engine.verify_route engine route with
        | Some report -> n_hops := !n_hops + List.length report.Report.hops
        | None -> ())
    routes;
  let rs = Trace.records () in
  Alcotest.(check int) "one record per hop" !n_hops (List.length rs);
  List.iter
    (fun r ->
      Alcotest.(check bool) "direction well-formed" true
        (r.Trace.direction = "import" || r.Trace.direction = "export");
      Alcotest.(check bool) "memo label well-formed" true
        (List.mem r.Trace.memo [ "computed"; "hit"; "miss"; "bypass" ]);
      Alcotest.(check bool) "verdict class well-formed" true
        (List.mem r.Trace.verdict_class
           [ "verified"; "skipped"; "unrecorded"; "relaxed"; "safelisted";
             "unverified" ]))
    rs;
  Alcotest.(check bool) "memo machinery visible in traces" true
    (List.exists (fun r -> r.Trace.memo = "hit") rs
     || List.exists (fun r -> r.Trace.memo = "miss") rs)

let test_untraced_run_emits_nothing () =
  let world = small_world () in
  let routes = world_routes world in
  Trace.configure Trace.Off;
  let engine = Rz_verify.Engine.create world.db world.rels in
  Array.iteri
    (fun i route -> if i < 20 then ignore (Rz_verify.Engine.verify_route engine route))
    routes;
  Alcotest.(check int) "no records without sampling" 0 (Trace.kept ())

(* ---------------- explain parity (the tentpole property) ---------------- *)

(* A provenance record is consistent with its verdict when the fields
   the verdict implies are populated: a Verified hop names the matching
   rule; Relaxed/Safelisted name their special case in the trigger;
   Unrecorded/Skipped name their reason; Verified/Unverified carry no
   trigger. *)
let provenance_consistent (hop : Report.hop) (r : Trace.record) =
  String.equal r.Trace.verdict (Status.to_string hop.status)
  && String.equal r.Trace.verdict_class (Status.class_label hop.status)
  &&
  match hop.status with
  | Status.Verified -> r.Trace.rule <> None && r.Trace.trigger = None
  | Status.Relaxed s | Status.Safelisted s ->
    r.Trace.trigger = Some (Status.special_to_string s)
  | Status.Unrecorded u -> r.Trace.trigger = Some (Status.unrec_to_string u)
  | Status.Skipped k -> r.Trace.trigger = Some (Status.skip_to_string k)
  | Status.Unverified -> r.Trace.trigger = None

let hop_statuses (report : Report.route_report) =
  List.map (fun (h : Report.hop) -> h.Report.status) report.hops

let test_explain_parity_qcheck () =
  let world = small_world () in
  let routes = world_routes world in
  let n = Array.length routes in
  Alcotest.(check bool) "world has routes" true (n > 0);
  (* Batch engines outlive the property: the memoized one is warmed over
     the whole table first, so explain is checked against genuine memo
     hits, not just first computations. *)
  let module Engine = Rz_verify.Engine in
  let warm = Engine.create world.db world.rels in
  Array.iter (fun r -> ignore (Engine.verify_route warm r)) routes;
  let cold_config = { Engine.default_config with memoize = false } in
  let prop i =
    let route = routes.(i mod n) in
    let batch_warm = Engine.verify_route warm route in
    let cold = Engine.create ~config:cold_config world.db world.rels in
    let batch_cold = Engine.verify_route cold route in
    match Rpslyzer.Pipeline.explain_route_traced world route with
    | None ->
      (* explain excludes exactly what the batch engine excludes *)
      batch_warm = None && batch_cold = None
    | Some e ->
      let explained =
        List.map (fun (h : Rpslyzer.Pipeline.explained_hop) -> h.hop.Report.status) e.hops
      in
      (match (batch_warm, batch_cold) with
       | Some w, Some c ->
         explained = hop_statuses w
         && explained = hop_statuses c
         && List.for_all
              (fun (h : Rpslyzer.Pipeline.explained_hop) ->
                match h.trace with
                | None -> false (* sampling forced on: every hop must carry provenance *)
                | Some r -> provenance_consistent h.hop r)
              e.hops
       | _ -> false)
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:120 ~name:"explain verdict parity (memo on + off)"
       QCheck.(int_bound (max 0 (n - 1)))
       prop)

let test_explain_leaves_tracer_off () =
  let world = small_world () in
  let routes = world_routes world in
  Trace.configure Trace.Off;
  ignore (Rpslyzer.Pipeline.explain_route_traced world routes.(0));
  Alcotest.(check bool) "explain restores the Off policy" false (Trace.enabled ());
  Alcotest.(check int) "explain leaves no records behind" 0 (Trace.kept ())

(* ---------------- Chrome export ---------------- *)

let test_chrome_export_well_formed () =
  Trace.configure Trace.All;
  Trace.Chrome.install ();
  Fun.protect ~finally:Trace.Chrome.uninstall @@ fun () ->
  Obs.Span.with_ "trace.test.outer" (fun () ->
      Obs.Span.with_ "trace.test.inner" (fun () -> Sys.opaque_identity ()));
  Trace.emit (dummy_record ());
  let doc = Trace.Chrome.export ~records:(Trace.records ()) () in
  (* must survive a serialize/parse round-trip through Rz_json *)
  let doc =
    match Json.of_string (Json.to_string doc) with
    | Ok d -> d
    | Error e -> Alcotest.failf "chrome JSON does not re-parse: %s" e
  in
  let events =
    match doc with
    | Json.List es -> es
    | _ -> Alcotest.fail "chrome trace is not a JSON array"
  in
  Alcotest.(check bool) "nonempty" true (events <> []);
  let phase e =
    match Json.member "ph" e with
    | Some (Json.String p) -> p
    | _ -> Alcotest.failf "event without ph: %s" (Json.to_string e)
  in
  List.iter
    (fun e ->
      Alcotest.(check bool) "event is an object" true
        (match e with Json.Obj _ -> true | _ -> false);
      Alcotest.(check bool) "known phase" true
        (List.mem (phase e) [ "M"; "X"; "i" ]);
      Alcotest.(check bool) "named" true (Json.member "name" e <> None);
      match phase e with
      | "X" ->
        let nonneg k =
          match Json.member k e with
          | Some (Json.Float f) -> f >= 0.0
          | Some (Json.Int i) -> i >= 0
          | _ -> false
        in
        Alcotest.(check bool) "X has ts >= 0" true (nonneg "ts");
        Alcotest.(check bool) "X has dur >= 0" true (nonneg "dur")
      | "i" ->
        Alcotest.(check bool) "instant carries the record args" true
          (match Json.member "args" e with
           | Some args -> Json.member "verdict" args <> None
           | None -> false)
      | _ -> ())
    events;
  let count p = List.length (List.filter (fun e -> phase e = p) events) in
  Alcotest.(check int) "both spans exported" 2 (count "X");
  Alcotest.(check int) "hop instant exported" 1 (count "i");
  Alcotest.(check bool) "metadata events present" true (count "M" >= 2)

(* ---------------- metrics streaming ---------------- *)

let test_metrics_stream_writes_jsonl () =
  let path = Filename.temp_file "rz_trace_stream" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let c = Obs.Counter.make "trace.test.stream_counter" in
  let t = Trace.Metrics_stream.start ~interval_s:0.05 path in
  Obs.Counter.add c 41;
  Unix.sleepf 0.12;
  Obs.Counter.incr c;
  Trace.Metrics_stream.stop t;
  let lines =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file -> close_in ic; List.rev acc
    in
    go []
  in
  (* at least one periodic sample plus the final line at stop *)
  Alcotest.(check bool) "several JSONL lines" true (List.length lines >= 2);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error e -> Alcotest.failf "stream line does not parse: %s" e
      | Ok doc ->
        Alcotest.(check bool) "elapsed_s present" true
          (match Json.member "elapsed_s" doc with
           | Some (Json.Float f) -> f >= 0.0
           | _ -> false);
        Alcotest.(check bool) "metrics snapshot embedded" true
          (match Json.member "metrics" doc with
           | Some m -> Json.member "counters" m <> None
           | None -> false))
    lines;
  (* the final line reflects the state at stop *)
  let last = List.nth lines (List.length lines - 1) in
  match Json.of_string last with
  | Ok doc ->
    let counters = Option.get (Json.member "counters" (Option.get (Json.member "metrics" doc))) in
    Alcotest.(check bool) "final line has the final counter value" true
      (Json.member "trace.test.stream_counter" counters = Some (Json.Int 42))
  | Error e -> Alcotest.failf "final line: %s" e

let suite =
  [ Alcotest.test_case "sampling strings" `Quick (with_trace test_sampling_strings);
    Alcotest.test_case "disabled is inert" `Quick (with_trace test_disabled_is_inert);
    Alcotest.test_case "sampling all + quota" `Quick (with_trace test_sampling_all_and_quota);
    Alcotest.test_case "ring bounds" `Quick (with_trace test_ring_bounds);
    Alcotest.test_case "ring bound across domains" `Quick
      (with_trace test_ring_bound_multi_domain);
    Alcotest.test_case "with_sampling restores" `Quick (with_trace test_with_sampling_restores);
    Alcotest.test_case "engine emits records" `Quick (with_trace test_engine_emits_records);
    Alcotest.test_case "untraced run emits nothing" `Quick
      (with_trace test_untraced_run_emits_nothing);
    Alcotest.test_case "explain parity (QCheck)" `Quick (with_trace test_explain_parity_qcheck);
    Alcotest.test_case "explain leaves tracer off" `Quick
      (with_trace test_explain_leaves_tracer_off);
    Alcotest.test_case "chrome export well-formed" `Quick
      (with_trace test_chrome_export_well_formed);
    Alcotest.test_case "metrics stream JSONL" `Quick
      (with_trace test_metrics_stream_writes_jsonl) ]
