(* Tests for the fault-injection harness (Rz_fault) and the recovery
   paths it exists to exercise: the bounded reader, the bounded
   flatteners, the capped NFA compiler, and crash-isolated parallel
   verification. *)

module Fault = Rz_fault.Fault
module Reader = Rz_rpsl.Reader
module Db = Rz_irr.Db
module Obs = Rz_obs.Obs

let sample_dump =
  "aut-num: AS65001\n\
   as-name: ONE\n\
   import: from AS65002 accept ANY\n\
   export: to AS65002 announce AS65001\n\
   \n\
   as-set: AS-ONE\n\
   members: AS65001, AS65003\n\
   \n\
   route: 192.0.2.0/24\n\
   origin: AS65001\n\
   \n\
   route: 198.51.100.0/24\n\
   origin: AS65003\n"

let plan ?kinds ~rate () = Fault.plan ?kinds ~seed:99 ~rate ()

(* ---- the injector itself ---- *)

let test_determinism () =
  let p = plan ~rate:0.7 () in
  let a, ra = Fault.corrupt_dump p sample_dump in
  let b, rb = Fault.corrupt_dump p sample_dump in
  Alcotest.(check string) "same plan, same bytes" a b;
  Alcotest.(check int) "same fault count" (Fault.total_faults ra) (Fault.total_faults rb);
  let p2 = Fault.plan ~seed:100 ~rate:0.7 () in
  let c, _ = Fault.corrupt_dump p2 sample_dump in
  Alcotest.(check bool) "different seed, different bytes" true (a <> c)

let test_rate_zero_identity () =
  let out, report = Fault.corrupt_dump (plan ~rate:0.0 ()) sample_dump in
  Alcotest.(check string) "byte-identical" sample_dump out;
  Alcotest.(check int) "no faults" 0 (Fault.total_faults report)

let test_kind_names_roundtrip () =
  List.iter
    (fun k ->
      match Fault.kind_of_name (Fault.kind_name k) with
      | Some k' -> Alcotest.(check bool) (Fault.kind_name k) true (k = k')
      | None -> Alcotest.failf "kind %s does not roundtrip" (Fault.kind_name k))
    Fault.all_kinds;
  Alcotest.(check bool) "unknown name" true (Fault.kind_of_name "no-such-kind" = None)

let test_every_kind_applies () =
  List.iter
    (fun k ->
      let p = plan ~kinds:[ k ] ~rate:1.0 () in
      let _, report = Fault.corrupt_dump p sample_dump in
      let n = Option.value ~default:0 (List.assoc_opt k report.faults) in
      Alcotest.(check bool) (Fault.kind_name k ^ " fires at rate 1") true (n > 0))
    Fault.all_kinds

(* ---- reader robustness ---- *)

let test_parse_corrupted_never_raises () =
  (* every kind at full blast, several seeds: the reader must return a
     result (objects + errors), never raise, and account for what it saw *)
  List.iter
    (fun seed ->
      let p = Fault.plan ~seed ~rate:1.0 () in
      let corrupted, _ = Fault.corrupt_dump p sample_dump in
      let r = Reader.parse_string corrupted in
      Alcotest.(check bool) "some objects survive or errors recorded" true
        (r.objects <> [] || r.errors <> []))
    [ 1; 2; 3; 4; 5 ]

let test_reader_oversized_line_dropped () =
  Obs.enable ();
  Obs.reset ();
  let c = Obs.Counter.make "reader.lines_dropped" in
  let text = "aut-num: AS1\nremarks: " ^ String.make 70_000 'x' ^ "\nas-name: X\n" in
  let r = Reader.parse_string text in
  Obs.disable ();
  Alcotest.(check int) "object survives" 1 (List.length r.objects);
  Alcotest.(check int) "one error" 1 (List.length r.errors);
  Alcotest.(check bool) "lines_dropped counted" true (Obs.Counter.get c > 0);
  (* the surviving object keeps the attrs around the dropped line *)
  let obj = List.hd r.objects in
  Alcotest.(check int) "two attrs kept" 2 (List.length obj.Rz_rpsl.Obj.attrs)

let test_reader_error_budget () =
  let limits = { Reader.default_limits with max_errors = 5 } in
  let garbage = String.concat "\n" (List.init 50 (fun i -> Printf.sprintf "junk %d" i)) in
  let r = Reader.parse_string ~limits garbage in
  (* 5 recorded + 1 synthetic summary *)
  Alcotest.(check int) "budget + summary" 6 (List.length r.errors);
  let summary = List.nth r.errors (List.length r.errors - 1) in
  Alcotest.(check bool) "summary mentions suppression" true
    (Rz_util.Strings.split_on_string ~sep:"suppressed" summary.reason |> List.length > 1)

(* ---- hostile ROA input ---- *)

(* fixtures are declared as test deps, so they sit next to the built
   executable; anchor there so dune exec from the project root works too *)
let fixture_dir =
  lazy
    (let candidates =
       [ Filename.concat (Filename.dirname Sys.executable_name) "fixtures";
         "fixtures"; Filename.concat "test" "fixtures" ]
     in
     match List.find_opt Sys.file_exists candidates with
     | Some dir -> dir
     | None -> "fixtures")

let fixture path = Filename.concat (Lazy.force fixture_dir) path

(* the hostile ROA corpus: (file, loaded, rejected). Every file must parse
   without raising, load exactly the well-formed entries, and count every
   rejection on rpki.roas_rejected. *)
let roa_fixture_expectations =
  [ ("roa_truncated.roa", 2, 4);
    ("roa_duplicates.roa", 3, 3);
    ("roa_bad_maxlen.roa", 1, 5);
    ("roa_nul_injection.roa", 2, 2) ]

let test_hostile_roa_fixtures () =
  Obs.enable ();
  Obs.reset ();
  let c = Obs.Counter.make "rpki.roas_rejected" in
  Fun.protect ~finally:(fun () -> Obs.disable (); Obs.reset ()) @@ fun () ->
  List.iter
    (fun (file, exp_loaded, exp_rejected) ->
      match Rz_rpki.Roa.load_file (fixture file) with
      | Error e -> Alcotest.failf "%s: cannot read: %s" file e
      | Ok parsed ->
        Alcotest.(check int) (file ^ " loaded") exp_loaded parsed.loaded;
        Alcotest.(check int) (file ^ " rejected") exp_rejected parsed.n_rejected;
        Alcotest.(check int)
          (file ^ " every rejection recorded")
          parsed.n_rejected
          (List.length parsed.rejected);
        List.iter
          (fun (e : Rz_rpki.Roa.parse_error) ->
            Alcotest.(check bool)
              (Printf.sprintf "%s line %d text sanitized" file e.line)
              false
              (String.exists (fun ch -> Char.code ch < 0x20) e.text))
          parsed.rejected)
    roa_fixture_expectations;
  let total_rejected =
    List.fold_left (fun acc (_, _, r) -> acc + r) 0 roa_fixture_expectations
  in
  Alcotest.(check int) "rpki.roas_rejected counts the corpus" total_rejected
    (Obs.Counter.get c)

let test_roa_corruption_recovery () =
  (* the faultinject drill the [rpki --fault-rate] path runs: corrupt a
     clean rendered ROA file at full blast; the parser must stay graceful
     and both fault.injected and rpki.roas_rejected must fire. *)
  Obs.enable ();
  Obs.reset ();
  let c_injected = Obs.Counter.make "fault.injected" in
  let c_rejected = Obs.Counter.make "rpki.roas_rejected" in
  Fun.protect ~finally:(fun () -> Obs.disable (); Obs.reset ()) @@ fun () ->
  let clean =
    Rz_rpki.Roa.render
      [ { Rz_rpki.Roa.prefix = Rz_net.Prefix.of_string_exn "192.0.2.0/24";
          max_length = 24; origin = 65001 };
        { Rz_rpki.Roa.prefix = Rz_net.Prefix.of_string_exn "198.51.100.0/24";
          max_length = 25; origin = 65002 };
        { Rz_rpki.Roa.prefix = Rz_net.Prefix.of_string_exn "2001:db8::/32";
          max_length = 48; origin = 65003 } ]
  in
  Alcotest.(check int) "clean render has no rejects" 0
    (Rz_rpki.Roa.parse_string clean).n_rejected;
  List.iter
    (fun seed ->
      let p = Fault.plan ~seed ~rate:1.0 () in
      let corrupted, report = Fault.corrupt_dump p clean in
      Alcotest.(check bool) "faults were injected" true
        (Fault.total_faults report > 0);
      let parsed = Rz_rpki.Roa.parse_string corrupted in
      Alcotest.(check bool) "loaded and rejected account for the damage" true
        (parsed.loaded >= 0 && parsed.n_rejected >= 0))
    [ 1; 2; 3; 4; 5 ];
  Alcotest.(check bool) "fault.injected fired" true (Obs.Counter.get c_injected > 0);
  Alcotest.(check bool) "rpki.roas_rejected fired" true (Obs.Counter.get c_rejected > 0)

let test_parse_file_missing () =
  let r = Reader.parse_file "/nonexistent/rpslyzer-fault-test.db" in
  Alcotest.(check int) "no objects" 0 (List.length r.objects);
  Alcotest.(check int) "one synthetic error" 1 (List.length r.errors)

let test_parse_file_partial () =
  let path = Filename.temp_file "rz_fault" ".db" in
  let oc = open_out path in
  output_string oc sample_dump;
  close_out oc;
  let r = Reader.parse_file path in
  Sys.remove path;
  Alcotest.(check int) "all four objects" 4 (List.length r.objects);
  Alcotest.(check int) "no errors" 0 (List.length r.errors)

(* ---- flattening bombs ---- *)

let corrupt_db kinds =
  let p = plan ~kinds ~rate:1.0 () in
  let corrupted, _ = Fault.corrupt_dump p sample_dump in
  Db.of_dumps [ ("TEST", corrupted) ]

let test_deep_bomb_truncates () =
  Obs.enable ();
  Obs.reset ();
  let c = Obs.Counter.make "flatten.truncated" in
  let db = corrupt_db [ Fault.As_set_deep_bomb ] in
  (* flattening the bomb root must terminate without stack overflow and
     record truncation (chain depth 96 > cap 64) *)
  let flat = Db.flatten_as_set db "AS-FAULT-DEEP-0-0" in
  Obs.disable ();
  Alcotest.(check bool) "truncation marked" true (Db.flatten_truncated db "AS-FAULT-DEEP-0-0");
  Alcotest.(check bool) "counter fired" true (Obs.Counter.get c > 0);
  (* the terminal member AS1 sits past the cap, so the flatten is partial *)
  Alcotest.(check bool) "partial result" true (not (Db.Asn_set.mem 1 flat));
  Alcotest.(check bool) "depth saturates, no overflow" true
    (Db.as_set_depth db "AS-FAULT-DEEP-0-0" <= Db.max_flatten_depth + 1)

let test_deep_bomb_depth_relationship () =
  (* the bomb must actually overshoot the db cap, or the test above is
     vacuous; pin the relationship between the two literals *)
  let db = corrupt_db [ Fault.As_set_deep_bomb ] in
  Alcotest.(check bool) "bomb deeper than cap" true
    (Db.as_set_exists db (Printf.sprintf "AS-FAULT-DEEP-0-%d" (Db.max_flatten_depth + 1)))

let test_cycle_bomb_detected () =
  let db = corrupt_db [ Fault.As_set_cycle_bomb ] in
  Alcotest.(check bool) "cycle detected" true (Db.as_set_has_loop db "AS-FAULT-CYC-0-0");
  (* flattening a cycle terminates and is not marked truncated (cycles are
     cut exactly, not bounded away) *)
  ignore (Db.flatten_as_set db "AS-FAULT-CYC-0-0");
  Alcotest.(check bool) "cycle is cut, not truncated" true
    (not (Db.flatten_truncated db "AS-FAULT-CYC-0-0"))

let test_clean_sets_unaffected () =
  let db = corrupt_db [ Fault.As_set_deep_bomb ] in
  let flat = Db.flatten_as_set db "AS-ONE" in
  Alcotest.(check int) "clean set flattens fully" 2 (Db.Asn_set.cardinal flat);
  Alcotest.(check bool) "not truncated" true (not (Db.flatten_truncated db "AS-ONE"))

(* ---- pathological regex ---- *)

let test_regex_bomb_capped () =
  Obs.enable ();
  Obs.reset ();
  let c = Obs.Counter.make "nfa.capped" in
  match Rz_aspath.Regex_parse.parse "^AS2{3000,6000}$" with
  | Error e -> Alcotest.fail e
  | Ok ast ->
    Alcotest.(check bool) "estimate over budget" true
      (Rz_aspath.Regex_ast.state_estimate ast > Rz_aspath.Regex_nfa.default_max_states);
    let nfa = Rz_aspath.Regex_nfa.compile ast in
    Obs.disable ();
    Alcotest.(check bool) "capped" true (Rz_aspath.Regex_nfa.is_capped nfa);
    Alcotest.(check int) "no states allocated" 0 (Rz_aspath.Regex_nfa.state_count nfa);
    Alcotest.(check bool) "counter fired" true (Obs.Counter.get c > 0);
    (* conservative abstain: a capped matcher admits nothing *)
    Alcotest.(check bool) "matches nothing" false
      (Rz_aspath.Regex_nfa.matches nfa [| 2 |])

let test_regex_estimate_sane () =
  (* ordinary patterns stay far under the cap and still compile *)
  List.iter
    (fun s ->
      match Rz_aspath.Regex_parse.parse s with
      | Error e -> Alcotest.fail (s ^ ": " ^ e)
      | Ok ast ->
        Alcotest.(check bool) (s ^ " under budget") true
          (Rz_aspath.Regex_ast.state_estimate ast <= 1000);
        Alcotest.(check bool) (s ^ " compiles") true
          (not (Rz_aspath.Regex_nfa.is_capped (Rz_aspath.Regex_nfa.compile ast))))
    [ "^AS1+$"; "AS1 AS2* [AS3 AS4]"; "^AS-FOO{1,9}$"; "(AS1|AS2){2,4} AS5~*" ]

(* ---- snapshot cache under corruption ---- *)

(* The snapshot loader is a parser for hostile bytes like any other:
   flipped bytes, truncation, version skew and trailing garbage must all
   reject (counted on snapshot.rejects), and the cached-ingest path must
   fall back to parsing — wrong data is never served. *)

let snapshot_ir_and_digest =
  lazy
    (let dumps = [ ("TEST", sample_dump) ] in
     let ir = Rz_ingest.Ingest.ingest_sequential dumps in
     (dumps, ir, Rz_ingest.Ingest.dumps_digest dumps))

let with_snapshot_bytes bytes f =
  let path = Filename.temp_file "rz_fault_snapshot" ".snap" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
  @@ fun () ->
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc;
  f path

let count_rejects body =
  Obs.enable ();
  Obs.reset ();
  let c = Obs.Counter.make "snapshot.rejects" in
  Fun.protect ~finally:(fun () -> Obs.disable (); Obs.reset ()) @@ fun () ->
  body ();
  Obs.Counter.get c

let test_snapshot_flipped_bytes_rejected () =
  let _, ir, digest = Lazy.force snapshot_ir_and_digest in
  let clean = Rz_ir.Ir_snapshot.encode ~input_digest:digest ir in
  let n = String.length clean in
  (* one flip in every region: magic, version, digest, section framing,
     payload, checksum, last byte *)
  let positions = [ 0; 9; 14; 30; n / 3; n / 2; (2 * n) / 3; n - 1 ] in
  let rejected =
    count_rejects (fun () ->
        List.iter
          (fun i ->
            let b = Bytes.of_string clean in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
            with_snapshot_bytes (Bytes.to_string b) @@ fun path ->
            match Rz_ir.Ir_snapshot.load path with
            | Ok _ -> Alcotest.failf "flip at byte %d silently loaded" i
            | Error _ -> ())
          positions)
  in
  Alcotest.(check int) "every flip counted a reject" (List.length positions) rejected

let test_snapshot_truncation_rejected () =
  let _, ir, digest = Lazy.force snapshot_ir_and_digest in
  let clean = Rz_ir.Ir_snapshot.encode ~input_digest:digest ir in
  let n = String.length clean in
  let lengths = [ 0; 4; n / 4; n / 2; n - 1 ] in
  let rejected =
    count_rejects (fun () ->
        List.iter
          (fun len ->
            with_snapshot_bytes (String.sub clean 0 len) @@ fun path ->
            match Rz_ir.Ir_snapshot.load path with
            | Ok _ -> Alcotest.failf "truncation to %d bytes silently loaded" len
            | Error _ -> ())
          lengths)
  in
  Alcotest.(check bool) "every truncation counted" true (rejected >= List.length lengths);
  (* trailing garbage is rejected too: a snapshot is exactly its frame *)
  let garbage =
    count_rejects (fun () ->
        with_snapshot_bytes (clean ^ "extra") @@ fun path ->
        match Rz_ir.Ir_snapshot.load path with
        | Ok _ -> Alcotest.fail "trailing garbage silently loaded"
        | Error _ -> ())
  in
  Alcotest.(check bool) "garbage counted" true (garbage >= 1)

let test_snapshot_version_bump_rejected () =
  (* a future format version must reject even with valid framing: the
     version field is bytes 8..11 (big-endian) after the 8-byte magic *)
  let _, ir, digest = Lazy.force snapshot_ir_and_digest in
  let clean = Rz_ir.Ir_snapshot.encode ~input_digest:digest ir in
  let b = Bytes.of_string clean in
  Bytes.set b 11 (Char.chr (Rz_ir.Ir_snapshot.version + 1));
  let rejected =
    count_rejects (fun () ->
        with_snapshot_bytes (Bytes.to_string b) @@ fun path ->
        match Rz_ir.Ir_snapshot.load path with
        | Ok _ -> Alcotest.fail "version bump silently loaded"
        | Error e ->
          Alcotest.(check bool) "reason names the version" true
            (Rz_util.Strings.split_on_string ~sep:"version" e |> List.length > 1))
  in
  Alcotest.(check int) "reject counted" 1 rejected

let test_snapshot_corrupt_fallback_parses () =
  (* cached ingest over a corrupt snapshot: reject + miss, then reparse
     and rewrite; the result is the oracle IR and the rewritten file is
     valid again *)
  let dumps, ir, digest = Lazy.force snapshot_ir_and_digest in
  let clean = Rz_ir.Ir_snapshot.encode ~input_digest:digest ir in
  let b = Bytes.of_string clean in
  let mid = Bytes.length b / 2 in
  Bytes.set b mid (Char.chr (Char.code (Bytes.get b mid) lxor 0x40));
  with_snapshot_bytes (Bytes.to_string b) @@ fun path ->
  Obs.enable ();
  Obs.reset ();
  let rejects = Obs.Counter.make "snapshot.rejects" in
  let misses = Obs.Counter.make "snapshot.misses" in
  let hits = Obs.Counter.make "snapshot.hits" in
  Fun.protect ~finally:(fun () -> Obs.disable (); Obs.reset ()) @@ fun () ->
  let got = Rz_ingest.Ingest.ingest_cached ~snapshot:path dumps in
  Alcotest.(check int) "corrupt file rejected" 1 (Obs.Counter.get rejects);
  Alcotest.(check int) "counted as a miss" 1 (Obs.Counter.get misses);
  Alcotest.(check bool) "fallback reproduces the oracle" true
    (String.equal
       (Rz_ir.Ir_json.export_string got)
       (Rz_ir.Ir_json.export_string ir));
  let again = Rz_ingest.Ingest.ingest_cached ~snapshot:path dumps in
  Alcotest.(check int) "rewritten snapshot hits" 1 (Obs.Counter.get hits);
  ignore again

(* ---- crash-isolated parallel verification ---- *)

let small_world =
  lazy
    (let topo_params =
       { Rz_topology.Gen.default_params with seed = 5; n_tier1 = 3; n_mid = 12; n_stub = 40 }
     in
     Rpslyzer.Pipeline.build_synthetic ~topo_params ())

let agg_fingerprint agg =
  (Rz_verify.Aggregate.n_hops agg,
   Rz_verify.Aggregate.counts_classes (Rz_verify.Aggregate.overall agg))

let test_domain_crash_loses_nothing () =
  Obs.enable ();
  Obs.reset ();
  let retries = Obs.Counter.make "verify.domain_retries" in
  let world = Lazy.force small_world in
  let seq, `Total t1, `Excluded e1 = Rpslyzer.Pipeline.verify world in
  (* crash every domain: the whole verification runs through the
     sequential retry path and must still account for every route *)
  let par, `Total t2, `Excluded e2 =
    Rpslyzer.Pipeline.verify_parallel ~domains:4
      ~inject_domain_fault:(fun _ -> failwith "injected crash")
      world
  in
  Obs.disable ();
  Alcotest.(check int) "totals equal" t1 t2;
  Alcotest.(check int) "excluded equal" e1 e2;
  Alcotest.(check bool) "aggregates identical" true
    (agg_fingerprint seq = agg_fingerprint par);
  Alcotest.(check int) "every domain retried" 4 (Obs.Counter.get retries)

let test_single_domain_crash () =
  let world = Lazy.force small_world in
  let seq, _, _ = Rpslyzer.Pipeline.verify world in
  let par, _, _ =
    Rpslyzer.Pipeline.verify_parallel ~domains:4
      ~inject_domain_fault:(fun d -> if d = 2 then failwith "injected crash")
      world
  in
  Alcotest.(check bool) "one crashed domain, same aggregate" true
    (agg_fingerprint seq = agg_fingerprint par)

(* Work stealing + dedup under a crash: triplicate the collector dumps so
   dedup assigns real multiplicities, crash one of the stealing domains,
   and require that no route (weighted or not) is lost — the parallel
   aggregate and the accounting match the sequential run exactly, while
   the stealing and dedup counters show both mechanisms actually ran. *)
let test_stealing_crash_loses_nothing () =
  Obs.enable ();
  Obs.reset ();
  let steal = Obs.Counter.make "steal.batches" in
  let collapsed = Obs.Counter.make "dedup.collapsed" in
  let world = Lazy.force small_world in
  let world =
    { world with
      Rpslyzer.Pipeline.table_dumps =
        world.table_dumps @ world.table_dumps @ world.table_dumps }
  in
  let seq, `Total t1, `Excluded e1 = Rpslyzer.Pipeline.verify world in
  let par, `Total t2, `Excluded e2 =
    Rpslyzer.Pipeline.verify_parallel ~domains:3
      ~inject_domain_fault:(fun d -> if d = 1 then failwith "injected crash")
      world
  in
  Obs.disable ();
  Alcotest.(check int) "totals equal" t1 t2;
  Alcotest.(check int) "excluded equal" e1 e2;
  Alcotest.(check bool) "aggregates identical" true
    (agg_fingerprint seq = agg_fingerprint par);
  Alcotest.(check bool) "surviving domains stole batches" true
    (Obs.Counter.get steal > 0);
  Alcotest.(check bool) "dedup collapsed the triplicated dumps" true
    (3 * Obs.Counter.get collapsed >= 2 * t2)

(* ---- bounded retry of crashed batches (sequential sweep) ---- *)

let test_retry_seed_pure () =
  let s = Rpslyzer.Pipeline.retry_seed in
  Alcotest.(check int) "same inputs, same seed"
    (s ~run_seed:42 ~batch:3 ~attempt:1) (s ~run_seed:42 ~batch:3 ~attempt:1);
  Alcotest.(check bool) "attempt changes it" true
    (s ~run_seed:42 ~batch:3 ~attempt:1 <> s ~run_seed:42 ~batch:3 ~attempt:2);
  Alcotest.(check bool) "batch changes it" true
    (s ~run_seed:42 ~batch:3 ~attempt:1 <> s ~run_seed:42 ~batch:4 ~attempt:1);
  Alcotest.(check bool) "run seed changes it" true
    (s ~run_seed:42 ~batch:3 ~attempt:1 <> s ~run_seed:43 ~batch:3 ~attempt:1)

let test_batch_retry_recovers () =
  Obs.enable ();
  Obs.reset ();
  let retries = Obs.Counter.make "verify.domain_retries" in
  let world = Lazy.force small_world in
  let seq, `Total t1, `Excluded e1 = Rpslyzer.Pipeline.verify world in
  (* crash every domain so the sweep owns every batch, then fail each
     batch's first attempt: the second attempt must recover everything,
     and the seed handed to the hook must be the pinned pure function of
     (run seed, batch, attempt) — chaos runs replay bit-identically *)
  let seen = Hashtbl.create 16 in
  let par, `Total t2, `Excluded e2 =
    Rpslyzer.Pipeline.verify_parallel ~domains:4 ~seed:7
      ~inject_domain_fault:(fun _ -> failwith "injected crash")
      ~inject_batch_fault:(fun ~seed ~batch ~attempt ->
        Hashtbl.replace seen (batch, attempt) seed;
        if attempt = 1 then failwith "first attempt fails")
      world
  in
  Obs.disable ();
  Alcotest.(check int) "totals equal" t1 t2;
  Alcotest.(check int) "excluded equal" e1 e2;
  Alcotest.(check bool) "aggregates identical" true
    (agg_fingerprint seq = agg_fingerprint par);
  Alcotest.(check bool) "batches were retried" true (Hashtbl.length seen > 0);
  Hashtbl.iter
    (fun (batch, attempt) seed ->
      Alcotest.(check int)
        (Printf.sprintf "seed for batch %d attempt %d" batch attempt)
        (Rpslyzer.Pipeline.retry_seed ~run_seed:7 ~batch ~attempt)
        seed)
    seen;
  Alcotest.(check bool) "retries counted" true (Obs.Counter.get retries > 0)

let test_batch_exhaustion_excludes_whole_batch () =
  let world = Lazy.force small_world in
  let _, `Total t1, `Excluded _ = Rpslyzer.Pipeline.verify world in
  let attempts = Hashtbl.create 16 in
  (* a hook that always raises: every batch burns its full attempt budget
     and is excluded whole — accounting still covers every route *)
  let par, `Total t2, `Excluded e2 =
    Rpslyzer.Pipeline.verify_parallel ~domains:4 ~seed:7
      ~inject_domain_fault:(fun _ -> failwith "injected crash")
      ~inject_batch_fault:(fun ~seed:_ ~batch ~attempt ->
        Hashtbl.replace attempts batch attempt;
        failwith "always fails")
      world
  in
  Alcotest.(check int) "totals still cover every route" t1 t2;
  Alcotest.(check int) "every route excluded" t2 e2;
  Alcotest.(check int) "nothing aggregated" 0 (Rz_verify.Aggregate.n_hops par);
  Hashtbl.iter
    (fun batch attempt ->
      Alcotest.(check int)
        (Printf.sprintf "batch %d stopped at the attempt budget" batch)
        Rpslyzer.Pipeline.max_batch_attempts attempt)
    attempts

(* ---- journal parser hardening (table-driven) ---- *)

(* Each case: journal text, expected accepted count, expected rejected
   count, and a substring every rejection reason must mention. *)
let journal_cases =
  [ ( "clean interleaved announce/withdraw, same prefix",
      "1 A 192.0.2.0/24|65001 65002\n\
       2 W 192.0.2.0/24|65001\n\
       3 A 192.0.2.0/24|65001 65002\n",
      3, 0, "" );
    ( "truncated event line",
      "1 A 192.0.2.0/24|65001 65002\n2 E autnum AS65001\n",
      1, 1, "truncated" );
    ( "missing rule text",
      "1 E autnum AS65001 add-import\n",
      0, 1, "rule text" );
    ( "NUL byte rejected",
      "1 A 192.0.2.0/24|65001 65002\n2 A 198.51.100.0/24|65\0001 65002\n",
      1, 1, "NUL" );
    ( "out-of-order sequence rejected",
      "2 A 192.0.2.0/24|65001 65002\n\
       1 A 198.51.100.0/24|65001 65002\n\
       3 W 192.0.2.0/24|65001\n",
      2, 1, "out-of-order" );
    ( "duplicate sequence rejected",
      "1 A 192.0.2.0/24|65001 65002\n1 W 192.0.2.0/24|65001\n",
      1, 1, "out-of-order" );
    ( "bad prefix rejected, parse continues",
      "1 A not-a-prefix|65001 65002\n2 W 192.0.2.0/24|65001\n",
      1, 1, "" );
    ( "unknown event kind rejected",
      "1 Q 192.0.2.0/24|65001\n",
      0, 1, "unknown event kind" );
    ( "bare sequence number rejected",
      "7\n",
      0, 1, "truncated" ) ]

let test_journal_parser_table () =
  Obs.enable ();
  Obs.reset ();
  let c = Obs.Counter.make "stream.journal_rejected" in
  let total_rejected =
    List.fold_left
      (fun acc (name, text, want_ok, want_bad, needle) ->
        let items, errors = Rz_routegen.Events.parse text in
        Alcotest.(check int) (name ^ ": accepted") want_ok (List.length items);
        Alcotest.(check int) (name ^ ": rejected") want_bad (List.length errors);
        if needle <> "" then
          List.iter
            (fun (lineno, reason) ->
              let found =
                let nl = String.length needle and rl = String.length reason in
                let rec scan i = i + nl <= rl && (String.sub reason i nl = needle || scan (i + 1)) in
                scan 0
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s: line %d reason mentions %S (got %S)" name
                   lineno needle reason)
                true found)
            errors;
        acc + want_bad)
      0 journal_cases
  in
  Alcotest.(check int) "every rejection counted on stream.journal_rejected"
    total_rejected (Obs.Counter.get c);
  Obs.disable ()

(* ---- hostile query corpus through the service dispatch ---- *)

let slurp path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let query_corpus_files =
  [ "query_truncated.txt"; "query_pipelined_garbage.txt"; "query_slowloris.txt" ]

let test_query_corpus_rate_one_drill () =
  (* the serve-side analogue of the chaos drills: the hostile query
     corpus — raw, and corrupted at rate 1.0 under several seeds — goes
     line by line through the shared dispatch path. The keep-going
     contract: every line gets a rendered protocol response, nothing
     raises, and the guards account for what they shed. *)
  Obs.enable ();
  Obs.reset ();
  Fun.protect ~finally:(fun () -> Obs.disable (); Obs.reset ()) @@ fun () ->
  let c_total = Obs.Counter.make "serve.queries_total" in
  let c_rejected = Obs.Counter.make "serve.queries_rejected" in
  let db = Db.of_dumps [ ("TEST", sample_dump) ] in
  let corpus =
    String.concat "\n" (List.map (fun f -> slurp (fixture f)) query_corpus_files)
  in
  let dispatched = ref 0 in
  let drive text =
    List.iter
      (fun line ->
        incr dispatched;
        let resp = Rz_serve.Serve.dispatch db line in
        Alcotest.(check bool) "response renders" true
          (String.length (Rz_irr.Irrd_query.render resp) >= 0))
      (String.split_on_char '\n' text)
  in
  drive corpus;
  List.iter
    (fun seed ->
      let p = Fault.plan ~seed ~rate:1.0 () in
      let corrupted, report = Fault.corrupt_dump p corpus in
      Alcotest.(check bool) "rate 1.0 injected faults" true
        (Fault.total_faults report > 0);
      drive corrupted)
    [ 1; 2; 3 ];
  Alcotest.(check int) "every line dispatched and counted" !dispatched
    (Obs.Counter.get c_total);
  (* the raw corpus alone carries a NUL-injected line *)
  Alcotest.(check bool) "guards fired" true (Obs.Counter.get c_rejected > 0)

let suite =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "rate 0 identity" `Quick test_rate_zero_identity;
    Alcotest.test_case "kind names roundtrip" `Quick test_kind_names_roundtrip;
    Alcotest.test_case "every kind applies" `Quick test_every_kind_applies;
    Alcotest.test_case "corrupted parse never raises" `Quick test_parse_corrupted_never_raises;
    Alcotest.test_case "oversized line dropped" `Quick test_reader_oversized_line_dropped;
    Alcotest.test_case "error budget" `Quick test_reader_error_budget;
    Alcotest.test_case "hostile roa fixtures" `Quick test_hostile_roa_fixtures;
    Alcotest.test_case "roa corruption recovery" `Quick test_roa_corruption_recovery;
    Alcotest.test_case "parse_file missing" `Quick test_parse_file_missing;
    Alcotest.test_case "parse_file clean" `Quick test_parse_file_partial;
    Alcotest.test_case "deep bomb truncates" `Quick test_deep_bomb_truncates;
    Alcotest.test_case "deep bomb overshoots cap" `Quick test_deep_bomb_depth_relationship;
    Alcotest.test_case "cycle bomb detected" `Quick test_cycle_bomb_detected;
    Alcotest.test_case "clean sets unaffected" `Quick test_clean_sets_unaffected;
    Alcotest.test_case "regex bomb capped" `Quick test_regex_bomb_capped;
    Alcotest.test_case "regex estimate sane" `Quick test_regex_estimate_sane;
    Alcotest.test_case "snapshot flips rejected" `Quick test_snapshot_flipped_bytes_rejected;
    Alcotest.test_case "snapshot truncation rejected" `Quick test_snapshot_truncation_rejected;
    Alcotest.test_case "snapshot version bump rejected" `Quick
      test_snapshot_version_bump_rejected;
    Alcotest.test_case "snapshot corrupt fallback" `Quick test_snapshot_corrupt_fallback_parses;
    Alcotest.test_case "all-domain crash loses nothing" `Quick test_domain_crash_loses_nothing;
    Alcotest.test_case "single-domain crash" `Quick test_single_domain_crash;
    Alcotest.test_case "stealing crash loses nothing" `Quick
      test_stealing_crash_loses_nothing;
    Alcotest.test_case "retry seed pure" `Quick test_retry_seed_pure;
    Alcotest.test_case "batch retry recovers" `Quick test_batch_retry_recovers;
    Alcotest.test_case "batch exhaustion excludes whole batch" `Quick
      test_batch_exhaustion_excludes_whole_batch;
    Alcotest.test_case "journal parser table" `Quick test_journal_parser_table;
    Alcotest.test_case "query corpus rate-1.0 drill" `Quick
      test_query_corpus_rate_one_drill ]
