(* Unit and concurrency tests for the rz_obs observability layer:
   counter/histogram/span semantics, JSON round-trip through Rz_json,
   and a multi-domain stress test proving no increments are lost under
   Domain.spawn fan-out (the registry's core safety claim, relied on by
   Rpslyzer.Pipeline.verify_parallel). *)

module Obs = Rz_obs.Obs
module Json = Rz_json.Json

(* Every test runs against a clean, enabled registry and leaves the
   process-wide flag off so the other suites stay uninstrumented. *)
let with_metrics f () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect f ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())

(* ---------------- counters ---------------- *)

let test_counter_basics () =
  let c = Obs.Counter.make "test.counter_basics" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.get c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Counter.get c);
  Alcotest.(check string) "name" "test.counter_basics" (Obs.Counter.name c);
  (* make is idempotent: a second handle aliases the same cell *)
  let c' = Obs.Counter.make "test.counter_basics" in
  Obs.Counter.incr c';
  Alcotest.(check int) "same underlying counter" 43 (Obs.Counter.get c)

let test_counter_disabled_noop () =
  let c = Obs.Counter.make "test.counter_disabled" in
  Obs.disable ();
  Obs.Counter.incr c;
  Obs.Counter.add c 10;
  Obs.enable ();
  Alcotest.(check int) "disabled increments dropped" 0 (Obs.Counter.get c)

let test_reset () =
  let c = Obs.Counter.make "test.counter_reset" in
  Obs.Counter.add c 7;
  let h = Obs.Histogram.make "test.hist_reset" in
  Obs.Histogram.observe h 5.0;
  Obs.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Obs.Counter.get c);
  Alcotest.(check int) "histogram zeroed" 0 (Obs.Histogram.count h)

(* ---------------- histograms ---------------- *)

let test_histogram_quantiles () =
  let h = Obs.Histogram.make "test.hist_quantiles" in
  for v = 1 to 1000 do
    Obs.Histogram.observe h (float_of_int v)
  done;
  Alcotest.(check int) "count" 1000 (Obs.Histogram.count h);
  let g = Obs.Histogram.gamma h in
  let within_bucket ~expect got =
    got >= expect /. g && got <= expect *. g
  in
  Alcotest.(check bool) "p50 ~ 500" true
    (within_bucket ~expect:500.0 (Obs.Histogram.quantile h 0.5));
  Alcotest.(check bool) "p90 ~ 900" true
    (within_bucket ~expect:900.0 (Obs.Histogram.quantile h 0.9));
  Alcotest.(check bool) "p0 ~ 1" true
    (within_bucket ~expect:1.0 (Obs.Histogram.quantile h 0.0));
  Alcotest.(check bool) "p100 ~ 1000" true
    (within_bucket ~expect:1000.0 (Obs.Histogram.quantile h 1.0))

let test_histogram_constant_stream () =
  let h = Obs.Histogram.make "test.hist_constant" in
  for _ = 1 to 50 do
    Obs.Histogram.observe h 1024.0
  done;
  let g = Obs.Histogram.gamma h in
  List.iter
    (fun q ->
      let est = Obs.Histogram.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f within one bucket of 1024" q)
        true
        (est >= 1024.0 /. g && est <= 1024.0 *. g))
    [ 0.0; 0.25; 0.5; 0.99; 1.0 ]

let test_histogram_underflow_and_empty () =
  let h = Obs.Histogram.make "test.hist_underflow" in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Obs.Histogram.quantile h 0.5);
  Obs.Histogram.observe h 0.25;
  Obs.Histogram.observe h (-3.0);
  Alcotest.(check int) "underflow counted" 2 (Obs.Histogram.count h);
  Alcotest.(check bool) "underflow representative < 1" true
    (Obs.Histogram.quantile h 0.5 < 1.0)

(* Degenerate-input pins for Histogram.quantile: these exact semantics
   are documented in obs.mli and relied on by metrics consumers — an
   empty histogram is 0.0 at every q, a single observation collapses
   every q (including out-of-range and NaN, which clamp) to its bucket
   representative, q=0/q=1 are the lowest/highest occupied buckets, and
   the underflow bucket's representative is the 0.5 sentinel. *)
let test_quantile_degenerate_pins () =
  let h = Obs.Histogram.make "test.hist_degenerate" in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0)) "empty histogram -> 0.0" 0.0
        (Obs.Histogram.quantile h q))
    [ -1.0; 0.0; 0.5; 1.0; 2.0; Float.nan ];
  Obs.Histogram.observe h 100.0;
  let rep = Obs.Histogram.quantile h 0.5 in
  let g = Obs.Histogram.gamma h in
  Alcotest.(check bool) "single observation lands in its bucket" true
    (rep >= 100.0 /. g && rep <= 100.0 *. g);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "single observation: q=%.2f collapses" q)
        rep (Obs.Histogram.quantile h q))
    [ 0.0; 0.25; 1.0; -3.0; 7.0; Float.nan ]

let test_quantile_extreme_qs () =
  let h = Obs.Histogram.make "test.hist_extreme_qs" in
  Obs.Histogram.observe h 1.0;
  Obs.Histogram.observe h 1000.0;
  let g = Obs.Histogram.gamma h in
  let q0 = Obs.Histogram.quantile h 0.0 in
  let q1 = Obs.Histogram.quantile h 1.0 in
  Alcotest.(check bool) "q=0 is the lowest occupied bucket" true
    (q0 >= 1.0 /. g && q0 <= 1.0 *. g);
  Alcotest.(check bool) "q=1 is the highest occupied bucket" true
    (q1 >= 1000.0 /. g && q1 <= 1000.0 *. g);
  Alcotest.(check (float 0.0)) "q>1 clamps to q=1" q1
    (Obs.Histogram.quantile h 42.0);
  Alcotest.(check (float 0.0)) "q<0 clamps to q=0" q0
    (Obs.Histogram.quantile h (-1.0));
  Alcotest.(check (float 0.0)) "NaN q behaves as q=0" q0
    (Obs.Histogram.quantile h Float.nan);
  let hu = Obs.Histogram.make "test.hist_underflow_only" in
  Obs.Histogram.observe hu 0.0;
  Obs.Histogram.observe hu (-5.0);
  Alcotest.(check (float 0.0)) "underflow-only stream reports the 0.5 sentinel"
    0.5 (Obs.Histogram.quantile hu 0.5)

(* ---------------- rolling windows ---------------- *)

let ns = 1_000_000_000

let test_window_rolling () =
  (* 4 slots of 1s: a 4-second rolling window, driven on virtual time *)
  let w = Obs.Window.make ~slots:4 ~slot_ms:1000 "test.win_roll" in
  let t0 = 100 * ns in
  Obs.Window.observe ~now_ns:t0 w 10.0;
  Obs.Window.observe ~now_ns:t0 w 10.0;
  Obs.Window.observe ~now_ns:(t0 + ns) w 1000.0;
  Obs.Window.observe ~now_ns:(t0 + (3 * ns)) w 1000.0;
  Alcotest.(check int) "span" (4 * ns) (Obs.Window.span_ns w);
  Alcotest.(check int) "all four in window" 4
    (Obs.Window.total ~now_ns:(t0 + (3 * ns)) w);
  Alcotest.(check (float 1e-9)) "rate = total / span" 1.0
    (Obs.Window.rate ~now_ns:(t0 + (3 * ns)) w);
  let g = Obs.Window.gamma w in
  let p50 = Obs.Window.quantile ~now_ns:(t0 + (3 * ns)) w 0.5 in
  let p99 = Obs.Window.quantile ~now_ns:(t0 + (3 * ns)) w 0.99 in
  Alcotest.(check bool) "rolling p50 in the 10.0 bucket" true
    (p50 >= 10.0 /. g && p50 <= 10.0 *. g);
  Alcotest.(check bool) "rolling p99 in the 1000.0 bucket" true
    (p99 >= 1000.0 /. g && p99 <= 1000.0 *. g);
  (* one second later the t0 slot has rolled out of the window *)
  Alcotest.(check int) "t0 slot expired" 2
    (Obs.Window.total ~now_ns:(t0 + (4 * ns)) w);
  Alcotest.(check (float 1e-9)) "rate follows expiry" 0.5
    (Obs.Window.rate ~now_ns:(t0 + (4 * ns)) w);
  (* far future: everything expired, quantile degenerates like an empty
     histogram *)
  Alcotest.(check int) "all expired" 0 (Obs.Window.total ~now_ns:(t0 + (7 * ns)) w);
  Alcotest.(check (float 0.0)) "empty window quantile" 0.0
    (Obs.Window.quantile ~now_ns:(t0 + (7 * ns)) w 0.5);
  (* make is idempotent and keeps the first geometry *)
  let w' = Obs.Window.make ~slots:99 ~slot_ms:1 "test.win_roll" in
  Alcotest.(check int) "second make keeps geometry" (4 * ns) (Obs.Window.span_ns w')

let test_window_snapshot_delta () =
  let w = Obs.Window.make ~slots:4 ~slot_ms:1000 "test.win_delta" in
  let t0 = 200 * ns in
  Obs.Window.observe ~now_ns:t0 w 5.0;
  let base = Obs.Window.snapshot_all ~now_ns:t0 () in
  Obs.Window.observe ~now_ns:t0 w 5.0;
  Obs.Window.observe ~now_ns:(t0 + ns) w 7.0;
  let deltas = Obs.Window.deltas_since ~now_ns:(t0 + ns) base in
  let d =
    match
      List.find_opt (fun (s : Obs.Window.snap) -> s.w_name = "test.win_delta") deltas
    with
    | Some d -> d
    | None -> Alcotest.fail "no delta for test.win_delta"
  in
  (* the delta carries exactly the post-baseline events: one more in the
     t0 epoch, one in the t0+1s epoch *)
  let total = List.fold_left (fun acc (_, c, _) -> acc + c) 0 d.w_cells in
  Alcotest.(check int) "delta total" 2 total;
  Alcotest.(check int) "delta epochs" 2 (List.length d.w_cells)

(* ---------------- merge == inline differentials ---------------- *)

(* The shard contract: worker processes observe into their own registry,
   ship (histogram, window) deltas home, and the parent merges them.
   Merging the worker snapshots in any order must equal having observed
   every event inline — bucket-exact, not just statistically close. The
   tests emulate the fork boundary by observing each partition into a
   scratch metric, snapshotting it, and re-labelling the snapshot to the
   shared target name before merge_into. *)

let trial = ref 0

let permutations3 = [| [ 0; 1; 2 ]; [ 0; 2; 1 ]; [ 1; 0; 2 ];
                       [ 1; 2; 0 ]; [ 2; 0; 1 ]; [ 2; 1; 0 ] |]

let hist_merge_order_differential =
  QCheck.Test.make ~count:100
    ~name:"histogram: merging worker deltas in any order = observing inline"
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 0 60)
              (pair (int_range 0 2) (float_range 0.0 1e7)))
           (int_range 0 5)))
    (fun (events, perm) ->
      Obs.enable ();
      Fun.protect ~finally:Obs.disable @@ fun () ->
      incr trial;
      let n = !trial in
      let inline = Obs.Histogram.make (Printf.sprintf "test.hmerge.%d.inline" n) in
      List.iter (fun (_, v) -> Obs.Histogram.observe inline v) events;
      let target_name = Printf.sprintf "test.hmerge.%d.merged" n in
      let snaps =
        List.init 3 (fun k ->
            let scratch =
              Obs.Histogram.make (Printf.sprintf "test.hmerge.%d.w%d" n k)
            in
            List.iter
              (fun (owner, v) ->
                if owner = k then Obs.Histogram.observe scratch v)
              events;
            { (Obs.Histogram.snapshot scratch) with s_name = target_name })
      in
      List.iter
        (fun i -> Obs.Histogram.merge_into (List.nth snaps i))
        permutations3.(perm);
      let merged = Obs.Histogram.make target_name in
      if Obs.Histogram.counts merged <> Obs.Histogram.counts inline then
        QCheck.Test.fail_reportf "buckets diverge: merged count %d, inline %d"
          (Obs.Histogram.count merged) (Obs.Histogram.count inline);
      true)

let window_fingerprint (s : Obs.Window.snap) =
  String.concat ";"
    (List.map
       (fun (epoch, count, buckets) ->
         Printf.sprintf "%d:%d:%s" epoch count
           (String.concat "," (List.map string_of_int (Array.to_list buckets))))
       s.w_cells)

let window_merge_order_differential =
  QCheck.Test.make ~count:100
    ~name:"window: merging worker snapshots in any order = observing inline"
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 0 60)
              (triple (int_range 0 2) (int_range 0 20) (float_range 0.0 1e7)))
           (int_range 0 5)))
    (fun (events, perm) ->
      Obs.enable ();
      Fun.protect ~finally:Obs.disable @@ fun () ->
      incr trial;
      let n = !trial in
      let t0 = 1000 * ns in
      let t_read = t0 + (20 * ns) in
      (* 12x5s window: every event offset (0..20s) stays in window *)
      let at off = t0 + (off * ns) in
      let by_time = List.sort (fun (_, a, _) (_, b, _) -> compare a b) events in
      let inline = Obs.Window.make (Printf.sprintf "test.wmerge.%d.inline" n) in
      List.iter (fun (_, off, v) -> Obs.Window.observe ~now_ns:(at off) inline v) by_time;
      let target_name = Printf.sprintf "test.wmerge.%d.merged" n in
      let snaps =
        List.init 3 (fun k ->
            let scratch =
              Obs.Window.make (Printf.sprintf "test.wmerge.%d.w%d" n k)
            in
            List.iter
              (fun (owner, off, v) ->
                if owner = k then Obs.Window.observe ~now_ns:(at off) scratch v)
              by_time;
            { (Obs.Window.snapshot ~now_ns:t_read scratch) with w_name = target_name })
      in
      List.iter
        (fun i -> Obs.Window.merge_into (List.nth snaps i))
        permutations3.(perm);
      let merged = Obs.Window.make target_name in
      let fp_merged =
        window_fingerprint (Obs.Window.snapshot ~now_ns:t_read merged)
      in
      let fp_inline =
        window_fingerprint (Obs.Window.snapshot ~now_ns:t_read inline)
      in
      if fp_merged <> fp_inline then
        QCheck.Test.fail_reportf "window cells diverge:\nmerged %s\ninline %s"
          fp_merged fp_inline;
      if
        Obs.Window.total ~now_ns:t_read merged
        <> Obs.Window.total ~now_ns:t_read inline
      then QCheck.Test.fail_reportf "window totals diverge";
      true)

(* ---------------- scrape-vs-observe race ---------------- *)

(* Regression pin for the torn (count, buckets) read: three writer
   domains hammer a histogram and a window with a single value while the
   main domain scrapes. Every quantile read must be either 0.0 (nothing
   in the copy yet) or exactly that value's bucket representative — a
   rank computed from a count inconsistent with the bucket copy would
   run past the occupied bucket. Every full Prometheus scrape must
   strict-parse. *)
let test_scrape_under_observe_stress () =
  let h = Obs.Histogram.make "test.scrape_stress.hist" in
  let w = Obs.Window.make "test.scrape_stress.win" in
  (* the expected representative, from an isolated single observation *)
  let probe = Obs.Histogram.make "test.scrape_stress.probe" in
  Obs.Histogram.observe probe 100.0;
  let rep = Obs.Histogram.quantile probe 0.5 in
  let stop = Atomic.make false in
  let writers =
    List.init 3 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Obs.Histogram.observe h 100.0;
              Obs.Window.observe w 100.0
            done))
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      List.iter Domain.join writers)
    (fun () ->
      for i = 1 to 2000 do
        List.iter
          (fun q ->
            let est = Obs.Histogram.quantile h q in
            if not (est = 0.0 || est = rep) then
              Alcotest.failf "torn histogram quantile: q=%.2f read %.17g" q est;
            let west = Obs.Window.quantile w q in
            if not (west = 0.0 || west = rep) then
              Alcotest.failf "torn window quantile: q=%.2f read %.17g" q west)
          [ 0.0; 0.5; 0.99; 1.0 ];
        if i mod 100 = 0 then
          match Obs.parse_prometheus (Obs.to_prometheus (Obs.Registry.snapshot ())) with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "scrape under load does not parse: %s" e
      done)

(* ---------------- prometheus exposition ---------------- *)

let find_sample name samples =
  match
    List.find_opt (fun (s : Obs.prom_sample) -> s.Obs.p_name = name) samples
  with
  | Some s -> s.Obs.p_value
  | None -> Alcotest.failf "sample %s missing from exposition" name

let test_prometheus_roundtrip () =
  let c = Obs.Counter.make "test.prom.counter" in
  Obs.Counter.add c 42;
  let g = Obs.Gauge.make "test.prom.gauge" in
  Obs.Gauge.set g (-7);
  let h = Obs.Histogram.make "test.prom.hist" in
  List.iter (Obs.Histogram.observe h) [ 3.0; 700.0; 12_345.0 ];
  let w = Obs.Window.make "test.prom.win" in
  Obs.Window.observe w 100.0;
  Obs.Span.with_ "test.prom.span" (fun () -> ());
  Obs.Meta.set "test_key" (Json.String "test value");
  let text = Obs.to_prometheus (Obs.Registry.snapshot ()) in
  match Obs.parse_prometheus text with
  | Error e -> Alcotest.failf "own exposition rejected: %s\n%s" e text
  | Ok samples ->
    Alcotest.(check (float 0.0)) "counter" 42.0
      (find_sample "test_prom_counter" samples);
    Alcotest.(check (float 0.0)) "negative gauge" (-7.0)
      (find_sample "test_prom_gauge" samples);
    Alcotest.(check (float 0.0)) "histogram count" 3.0
      (find_sample "test_prom_hist_count" samples);
    let inf_bucket =
      List.find_opt
        (fun (s : Obs.prom_sample) ->
          s.Obs.p_name = "test_prom_hist_bucket"
          && List.assoc_opt "le" s.Obs.p_labels = Some "+Inf")
        samples
    in
    (match inf_bucket with
     | Some s -> Alcotest.(check (float 0.0)) "+Inf bucket = count" 3.0 s.Obs.p_value
     | None -> Alcotest.fail "+Inf bucket missing");
    Alcotest.(check (float 0.0)) "window count gauge" 1.0
      (find_sample "test_prom_win_window_count" samples);
    Alcotest.(check (float 0.0)) "span count" 1.0
      (find_sample "test_prom_span_span_count" samples);
    (* meta rides as comments, invisible to the sample list but present *)
    Alcotest.(check bool) "meta comment present" true
      (List.exists
         (fun line ->
           String.length line > 7 && String.sub line 0 7 = "# meta "
           && Option.is_some (String.index_opt line 'k'))
         (String.split_on_char '\n' text))

let test_parse_prometheus_rejects () =
  List.iter
    (fun (label, text) ->
      match Obs.parse_prometheus text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parser accepted %s" label)
    [ ("sample without TYPE", "foo 1\n");
      ("timestamped sample", "# TYPE foo counter\nfoo 1 1234567\n");
      ("duplicate TYPE", "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n");
      ("unquoted label value", "# TYPE foo counter\nfoo{bar=baz} 1\n");
      ("bad metric name", "# TYPE 9foo counter\n9foo 1\n");
      ("bad value", "# TYPE foo counter\nfoo one\n");
      ("unknown TYPE kind", "# TYPE foo enum\nfoo 1\n");
      ( "histogram cumulative decrease",
        "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n\
         h_sum 1\nh_count 3\n" );
      ( "histogram +Inf != count",
        "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\nh_sum 0\nh_count 4\n" );
      ( "histogram without +Inf",
        "# TYPE h histogram\nh_bucket{le=\"1\"} 3\nh_sum 0\nh_count 3\n" ) ];
  (* and a hand-written exposition with escapes and +Inf values parses *)
  match
    Obs.parse_prometheus
      "# HELP free text\n# TYPE foo gauge\nfoo{a=\"b\\\"c\",d=\"e\"} +Inf\n"
  with
  | Ok [ s ] ->
    Alcotest.(check string) "escaped label" "b\"c" (List.assoc "a" s.Obs.p_labels);
    Alcotest.(check bool) "+Inf value" true (s.Obs.p_value = Float.infinity)
  | Ok _ -> Alcotest.fail "expected exactly one sample"
  | Error e -> Alcotest.failf "valid exposition rejected: %s" e

(* ---------------- README metrics table drift ---------------- *)

(* Every counter, gauge, histogram, and window any linked library
   registers must appear (backticked) in README.md's metrics reference
   table. Names the test suites register for themselves (the "test."
   prefix) and bench-only names are exempt. A failure here means a
   metric shipped without documentation — add a row to the README
   table. *)
let test_readme_metrics_table () =
  let readme =
    (* cwd is _build/default/test under `dune runtest`, the workspace
       root under `dune exec test/test_main.exe` *)
    let path =
      List.find_opt Sys.file_exists [ "../README.md"; "README.md" ]
      |> Option.value ~default:"../README.md"
    in
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let contains needle =
    let n = String.length needle and m = String.length readme in
    let rec go i = i + n <= m && (String.sub readme i n = needle || go (i + 1)) in
    go 0
  in
  let prefixed p name =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  let snap = Obs.Registry.snapshot () in
  let registered =
    List.map fst (Obs.Registry.counters snap)
    @ List.map fst (Obs.Registry.gauges snap)
    @ List.map fst (Obs.Registry.window_stats snap)
  in
  (* histogram names via the JSON rendering ("histograms" section keys:
     the registry exposes no direct histogram listing) *)
  let hist_names =
    match Obs.Registry.to_json snap with
    | Json.Obj fields -> (
      match List.assoc_opt "histograms" fields with
      | Some (Json.Obj hists) -> List.map fst hists
      | _ -> [])
    | _ -> []
  in
  let missing =
    List.filter
      (fun name ->
        (not (prefixed "test." name))
        && (not (prefixed "bench." name))
        && not (contains (Printf.sprintf "`%s`" name)))
      (registered @ hist_names)
  in
  if missing <> [] then
    Alcotest.failf
      "metrics missing from the README reference table: %s"
      (String.concat ", " (List.sort_uniq compare missing))

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  Alcotest.(check int) "depth 0 outside" 0 (Obs.Span.depth ());
  let inner_depth = ref (-1) in
  let result =
    Obs.Span.with_ "test.span_outer" (fun () ->
        Alcotest.(check int) "depth 1 in outer" 1 (Obs.Span.depth ());
        Obs.Span.with_ "test.span_inner" (fun () ->
            inner_depth := Obs.Span.depth ();
            17))
  in
  Alcotest.(check int) "nested depth" 2 !inner_depth;
  Alcotest.(check int) "result threads through" 17 result;
  Alcotest.(check int) "depth 0 after" 0 (Obs.Span.depth ());
  Alcotest.(check int) "outer count" 1 (Obs.Span.count "test.span_outer");
  Alcotest.(check int) "inner count" 1 (Obs.Span.count "test.span_inner");
  Alcotest.(check bool) "outer time >= inner time" true
    (Obs.Span.total_ns "test.span_outer" >= Obs.Span.total_ns "test.span_inner")

let test_span_exception_still_recorded () =
  (try Obs.Span.with_ "test.span_raises" (fun () -> failwith "boom") with
   | Failure _ -> ());
  Alcotest.(check int) "recorded despite exception" 1 (Obs.Span.count "test.span_raises");
  Alcotest.(check int) "stack unwound" 0 (Obs.Span.depth ())

let test_span_accumulates () =
  for _ = 1 to 5 do
    Obs.Span.with_ "test.span_repeat" (fun () -> Sys.opaque_identity ())
  done;
  Alcotest.(check int) "five runs" 5 (Obs.Span.count "test.span_repeat")

(* ---------------- registry rendering ---------------- *)

let test_json_roundtrip () =
  let c = Obs.Counter.make "test.json.counter" in
  Obs.Counter.add c 1234;
  let h = Obs.Histogram.make "test.json.hist" in
  Obs.Histogram.observe h 100.0;
  Obs.Span.with_ "test.json.span" (fun () -> ());
  let snap = Obs.Registry.snapshot () in
  let text = Json.to_string (Obs.Registry.to_json snap) in
  match Json.of_string text with
  | Error e -> Alcotest.failf "snapshot JSON does not re-parse: %s" e
  | Ok doc ->
    let counters = Option.get (Json.member "counters" doc) in
    Alcotest.(check bool) "counter present with value" true
      (Json.member "test.json.counter" counters = Some (Json.Int 1234));
    let hists = Option.get (Json.member "histograms" doc) in
    let hist = Option.get (Json.member "test.json.hist" hists) in
    Alcotest.(check bool) "histogram count" true
      (Json.member "count" hist = Some (Json.Int 1));
    let spans = Option.get (Json.member "spans" doc) in
    let span = Option.get (Json.member "test.json.span" spans) in
    Alcotest.(check bool) "span count" true
      (Json.member "count" span = Some (Json.Int 1));
    Alcotest.(check bool) "span total_ns is an int" true
      (match Json.member "total_ns" span with Some (Json.Int _) -> true | _ -> false)

let test_text_rendering () =
  let c = Obs.Counter.make "test.text.counter" in
  Obs.Counter.add c 9;
  Obs.Span.with_ "test.text.span" (fun () -> ());
  let text = Obs.Registry.to_text (Obs.Registry.snapshot ()) in
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter line" true (contains "test.text.counter");
  Alcotest.(check bool) "span line" true (contains "test.text.span")

(* ---------------- multi-domain safety ---------------- *)

let stress_domains = 4
let stress_iters = 100_000

let test_multi_domain_no_lost_increments () =
  let c = Obs.Counter.make "test.stress.counter" in
  let h = Obs.Histogram.make "test.stress.hist" in
  let work d () =
    Obs.Span.with_ "test.stress.span" (fun () ->
        for i = 1 to stress_iters do
          Obs.Counter.incr c;
          (* spread observations over buckets so bucket CAS traffic is
             not serialized through a single cell *)
          Obs.Histogram.observe h (float_of_int (((d * stress_iters) + i) mod 4096))
        done)
  in
  let handles = List.init stress_domains (fun d -> Domain.spawn (work d)) in
  List.iter Domain.join handles;
  Alcotest.(check int) "no lost counter increments" (stress_domains * stress_iters)
    (Obs.Counter.get c);
  Alcotest.(check int) "no lost histogram observations" (stress_domains * stress_iters)
    (Obs.Histogram.count h);
  Alcotest.(check int) "every domain's span recorded" stress_domains
    (Obs.Span.count "test.stress.span")

(* A domain that dies with spans open must not disturb any other
   domain's DLS stack or the final snapshot: Span.with_ records the
   raising span on the way out, the dead domain's stack dies with its
   DLS, and every surviving domain's counts stay exact. *)
let test_span_crash_isolation () =
  let crash_domains = 4 in
  let iters = 1000 in
  let work d () =
    for i = 1 to iters do
      Obs.Span.with_ "test.crash.outer" (fun () ->
          Obs.Span.with_ "test.crash.inner" (fun () ->
              if d = 0 && i = iters / 2 then failwith "injected span crash"))
    done
  in
  let handles = List.init crash_domains (fun d -> Domain.spawn (work d)) in
  let crashed = ref 0 in
  List.iter (fun h -> try Domain.join h with Failure _ -> incr crashed) handles;
  Alcotest.(check int) "exactly one domain crashed" 1 !crashed;
  (* survivors completed all iterations; the crashed domain recorded every
     span it entered, including the raising one (exception-safe finish) *)
  let expect = ((crash_domains - 1) * iters) + (iters / 2) in
  Alcotest.(check int) "outer spans exact" expect (Obs.Span.count "test.crash.outer");
  Alcotest.(check int) "inner spans exact" expect (Obs.Span.count "test.crash.inner");
  Alcotest.(check int) "main domain's stack untouched" 0 (Obs.Span.depth ());
  Obs.Span.with_ "test.crash.after" (fun () ->
      Alcotest.(check int) "main domain still nests" 1 (Obs.Span.depth ()));
  match
    Json.of_string (Json.to_string (Obs.Registry.to_json (Obs.Registry.snapshot ())))
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "snapshot after crash invalid: %s" e

let test_parallel_verify_counters_match_sequential () =
  (* the counters under Pipeline.verify_parallel (domains = 4) must agree
     with a sequential run over the same world: nothing lost, nothing
     double-counted *)
  let world =
    Rpslyzer.Pipeline.build_synthetic
      ~topo_params:{ Rz_topology.Gen.default_params with n_tier1 = 3; n_mid = 12; n_stub = 30 }
      ()
  in
  let hops = Obs.Counter.make "verify.hops_total" in
  Obs.reset ();
  let agg_seq, _, _ = Rpslyzer.Pipeline.verify world in
  let seq_hops = Obs.Counter.get hops in
  Alcotest.(check int) "sequential counter = aggregate hops"
    (Rz_verify.Aggregate.n_hops agg_seq) seq_hops;
  Obs.reset ();
  let agg_par, _, _ = Rpslyzer.Pipeline.verify_parallel ~domains:4 world in
  Alcotest.(check int) "parallel counter = aggregate hops"
    (Rz_verify.Aggregate.n_hops agg_par) (Obs.Counter.get hops);
  Alcotest.(check int) "parallel = sequential" seq_hops (Obs.Counter.get hops)

let test_recovery_names_complete () =
  (* Obs.recovery_counter_names is the single source of truth the CLI's
     exit-2 policy and the docs both read. Counters register at library
     init, so by the time this test runs the registry holds every counter
     any linked library defines: any name that *looks* like a recovery
     counter (suffix rejected/dropped/truncated/capped) but is missing
     from the list is drift — a recovery path the CLI would ignore. *)
  let registered =
    List.map fst (Obs.Registry.counters (Obs.Registry.snapshot ()))
  in
  Alcotest.(check bool) "registry is populated" true (registered <> []);
  List.iter
    (fun name ->
      if Obs.looks_like_recovery name then
        Alcotest.(check bool)
          (Printf.sprintf "%s is in Obs.recovery_counter_names" name)
          true
          (List.mem name Obs.recovery_counter_names))
    registered;
  (* and the list itself never names a counter no library registers *)
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%s is actually registered" name)
        true (List.mem name registered))
    Obs.recovery_counter_names

let suite =
  [ Alcotest.test_case "counter basics" `Quick (with_metrics test_counter_basics);
    Alcotest.test_case "counter disabled no-op" `Quick (with_metrics test_counter_disabled_noop);
    Alcotest.test_case "reset" `Quick (with_metrics test_reset);
    Alcotest.test_case "histogram quantiles" `Quick (with_metrics test_histogram_quantiles);
    Alcotest.test_case "histogram constant stream" `Quick
      (with_metrics test_histogram_constant_stream);
    Alcotest.test_case "histogram underflow/empty" `Quick
      (with_metrics test_histogram_underflow_and_empty);
    Alcotest.test_case "quantile degenerate pins" `Quick
      (with_metrics test_quantile_degenerate_pins);
    Alcotest.test_case "quantile extreme qs" `Quick
      (with_metrics test_quantile_extreme_qs);
    Alcotest.test_case "span nesting" `Quick (with_metrics test_span_nesting);
    Alcotest.test_case "span exception" `Quick (with_metrics test_span_exception_still_recorded);
    Alcotest.test_case "span accumulates" `Quick (with_metrics test_span_accumulates);
    Alcotest.test_case "json round-trip" `Quick (with_metrics test_json_roundtrip);
    Alcotest.test_case "text rendering" `Quick (with_metrics test_text_rendering);
    Alcotest.test_case "window rolling semantics" `Quick (with_metrics test_window_rolling);
    Alcotest.test_case "window snapshot delta" `Quick (with_metrics test_window_snapshot_delta);
    QCheck_alcotest.to_alcotest hist_merge_order_differential;
    QCheck_alcotest.to_alcotest window_merge_order_differential;
    Alcotest.test_case "scrape under observe stress (4 domains)" `Quick
      (with_metrics test_scrape_under_observe_stress);
    Alcotest.test_case "prometheus round-trip" `Quick (with_metrics test_prometheus_roundtrip);
    Alcotest.test_case "prometheus parser rejects malformed" `Quick
      test_parse_prometheus_rejects;
    Alcotest.test_case "README metrics table drift" `Quick test_readme_metrics_table;
    Alcotest.test_case "multi-domain stress (4 domains)" `Quick
      (with_metrics test_multi_domain_no_lost_increments);
    Alcotest.test_case "span crash isolation (4 domains)" `Quick
      (with_metrics test_span_crash_isolation);
    Alcotest.test_case "verify_parallel counters" `Quick
      (with_metrics test_parallel_verify_counters_match_sequential);
    Alcotest.test_case "recovery counter list complete" `Quick
      (with_metrics test_recovery_names_complete) ]
