(* Unit and concurrency tests for the rz_obs observability layer:
   counter/histogram/span semantics, JSON round-trip through Rz_json,
   and a multi-domain stress test proving no increments are lost under
   Domain.spawn fan-out (the registry's core safety claim, relied on by
   Rpslyzer.Pipeline.verify_parallel). *)

module Obs = Rz_obs.Obs
module Json = Rz_json.Json

(* Every test runs against a clean, enabled registry and leaves the
   process-wide flag off so the other suites stay uninstrumented. *)
let with_metrics f () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect f ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())

(* ---------------- counters ---------------- *)

let test_counter_basics () =
  let c = Obs.Counter.make "test.counter_basics" in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.get c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Counter.get c);
  Alcotest.(check string) "name" "test.counter_basics" (Obs.Counter.name c);
  (* make is idempotent: a second handle aliases the same cell *)
  let c' = Obs.Counter.make "test.counter_basics" in
  Obs.Counter.incr c';
  Alcotest.(check int) "same underlying counter" 43 (Obs.Counter.get c)

let test_counter_disabled_noop () =
  let c = Obs.Counter.make "test.counter_disabled" in
  Obs.disable ();
  Obs.Counter.incr c;
  Obs.Counter.add c 10;
  Obs.enable ();
  Alcotest.(check int) "disabled increments dropped" 0 (Obs.Counter.get c)

let test_reset () =
  let c = Obs.Counter.make "test.counter_reset" in
  Obs.Counter.add c 7;
  let h = Obs.Histogram.make "test.hist_reset" in
  Obs.Histogram.observe h 5.0;
  Obs.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Obs.Counter.get c);
  Alcotest.(check int) "histogram zeroed" 0 (Obs.Histogram.count h)

(* ---------------- histograms ---------------- *)

let test_histogram_quantiles () =
  let h = Obs.Histogram.make "test.hist_quantiles" in
  for v = 1 to 1000 do
    Obs.Histogram.observe h (float_of_int v)
  done;
  Alcotest.(check int) "count" 1000 (Obs.Histogram.count h);
  let g = Obs.Histogram.gamma h in
  let within_bucket ~expect got =
    got >= expect /. g && got <= expect *. g
  in
  Alcotest.(check bool) "p50 ~ 500" true
    (within_bucket ~expect:500.0 (Obs.Histogram.quantile h 0.5));
  Alcotest.(check bool) "p90 ~ 900" true
    (within_bucket ~expect:900.0 (Obs.Histogram.quantile h 0.9));
  Alcotest.(check bool) "p0 ~ 1" true
    (within_bucket ~expect:1.0 (Obs.Histogram.quantile h 0.0));
  Alcotest.(check bool) "p100 ~ 1000" true
    (within_bucket ~expect:1000.0 (Obs.Histogram.quantile h 1.0))

let test_histogram_constant_stream () =
  let h = Obs.Histogram.make "test.hist_constant" in
  for _ = 1 to 50 do
    Obs.Histogram.observe h 1024.0
  done;
  let g = Obs.Histogram.gamma h in
  List.iter
    (fun q ->
      let est = Obs.Histogram.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q=%.2f within one bucket of 1024" q)
        true
        (est >= 1024.0 /. g && est <= 1024.0 *. g))
    [ 0.0; 0.25; 0.5; 0.99; 1.0 ]

let test_histogram_underflow_and_empty () =
  let h = Obs.Histogram.make "test.hist_underflow" in
  Alcotest.(check (float 0.0)) "empty quantile" 0.0 (Obs.Histogram.quantile h 0.5);
  Obs.Histogram.observe h 0.25;
  Obs.Histogram.observe h (-3.0);
  Alcotest.(check int) "underflow counted" 2 (Obs.Histogram.count h);
  Alcotest.(check bool) "underflow representative < 1" true
    (Obs.Histogram.quantile h 0.5 < 1.0)

(* Degenerate-input pins for Histogram.quantile: these exact semantics
   are documented in obs.mli and relied on by metrics consumers — an
   empty histogram is 0.0 at every q, a single observation collapses
   every q (including out-of-range and NaN, which clamp) to its bucket
   representative, q=0/q=1 are the lowest/highest occupied buckets, and
   the underflow bucket's representative is the 0.5 sentinel. *)
let test_quantile_degenerate_pins () =
  let h = Obs.Histogram.make "test.hist_degenerate" in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0)) "empty histogram -> 0.0" 0.0
        (Obs.Histogram.quantile h q))
    [ -1.0; 0.0; 0.5; 1.0; 2.0; Float.nan ];
  Obs.Histogram.observe h 100.0;
  let rep = Obs.Histogram.quantile h 0.5 in
  let g = Obs.Histogram.gamma h in
  Alcotest.(check bool) "single observation lands in its bucket" true
    (rep >= 100.0 /. g && rep <= 100.0 *. g);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "single observation: q=%.2f collapses" q)
        rep (Obs.Histogram.quantile h q))
    [ 0.0; 0.25; 1.0; -3.0; 7.0; Float.nan ]

let test_quantile_extreme_qs () =
  let h = Obs.Histogram.make "test.hist_extreme_qs" in
  Obs.Histogram.observe h 1.0;
  Obs.Histogram.observe h 1000.0;
  let g = Obs.Histogram.gamma h in
  let q0 = Obs.Histogram.quantile h 0.0 in
  let q1 = Obs.Histogram.quantile h 1.0 in
  Alcotest.(check bool) "q=0 is the lowest occupied bucket" true
    (q0 >= 1.0 /. g && q0 <= 1.0 *. g);
  Alcotest.(check bool) "q=1 is the highest occupied bucket" true
    (q1 >= 1000.0 /. g && q1 <= 1000.0 *. g);
  Alcotest.(check (float 0.0)) "q>1 clamps to q=1" q1
    (Obs.Histogram.quantile h 42.0);
  Alcotest.(check (float 0.0)) "q<0 clamps to q=0" q0
    (Obs.Histogram.quantile h (-1.0));
  Alcotest.(check (float 0.0)) "NaN q behaves as q=0" q0
    (Obs.Histogram.quantile h Float.nan);
  let hu = Obs.Histogram.make "test.hist_underflow_only" in
  Obs.Histogram.observe hu 0.0;
  Obs.Histogram.observe hu (-5.0);
  Alcotest.(check (float 0.0)) "underflow-only stream reports the 0.5 sentinel"
    0.5 (Obs.Histogram.quantile hu 0.5)

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  Alcotest.(check int) "depth 0 outside" 0 (Obs.Span.depth ());
  let inner_depth = ref (-1) in
  let result =
    Obs.Span.with_ "test.span_outer" (fun () ->
        Alcotest.(check int) "depth 1 in outer" 1 (Obs.Span.depth ());
        Obs.Span.with_ "test.span_inner" (fun () ->
            inner_depth := Obs.Span.depth ();
            17))
  in
  Alcotest.(check int) "nested depth" 2 !inner_depth;
  Alcotest.(check int) "result threads through" 17 result;
  Alcotest.(check int) "depth 0 after" 0 (Obs.Span.depth ());
  Alcotest.(check int) "outer count" 1 (Obs.Span.count "test.span_outer");
  Alcotest.(check int) "inner count" 1 (Obs.Span.count "test.span_inner");
  Alcotest.(check bool) "outer time >= inner time" true
    (Obs.Span.total_ns "test.span_outer" >= Obs.Span.total_ns "test.span_inner")

let test_span_exception_still_recorded () =
  (try Obs.Span.with_ "test.span_raises" (fun () -> failwith "boom") with
   | Failure _ -> ());
  Alcotest.(check int) "recorded despite exception" 1 (Obs.Span.count "test.span_raises");
  Alcotest.(check int) "stack unwound" 0 (Obs.Span.depth ())

let test_span_accumulates () =
  for _ = 1 to 5 do
    Obs.Span.with_ "test.span_repeat" (fun () -> Sys.opaque_identity ())
  done;
  Alcotest.(check int) "five runs" 5 (Obs.Span.count "test.span_repeat")

(* ---------------- registry rendering ---------------- *)

let test_json_roundtrip () =
  let c = Obs.Counter.make "test.json.counter" in
  Obs.Counter.add c 1234;
  let h = Obs.Histogram.make "test.json.hist" in
  Obs.Histogram.observe h 100.0;
  Obs.Span.with_ "test.json.span" (fun () -> ());
  let snap = Obs.Registry.snapshot () in
  let text = Json.to_string (Obs.Registry.to_json snap) in
  match Json.of_string text with
  | Error e -> Alcotest.failf "snapshot JSON does not re-parse: %s" e
  | Ok doc ->
    let counters = Option.get (Json.member "counters" doc) in
    Alcotest.(check bool) "counter present with value" true
      (Json.member "test.json.counter" counters = Some (Json.Int 1234));
    let hists = Option.get (Json.member "histograms" doc) in
    let hist = Option.get (Json.member "test.json.hist" hists) in
    Alcotest.(check bool) "histogram count" true
      (Json.member "count" hist = Some (Json.Int 1));
    let spans = Option.get (Json.member "spans" doc) in
    let span = Option.get (Json.member "test.json.span" spans) in
    Alcotest.(check bool) "span count" true
      (Json.member "count" span = Some (Json.Int 1));
    Alcotest.(check bool) "span total_ns is an int" true
      (match Json.member "total_ns" span with Some (Json.Int _) -> true | _ -> false)

let test_text_rendering () =
  let c = Obs.Counter.make "test.text.counter" in
  Obs.Counter.add c 9;
  Obs.Span.with_ "test.text.span" (fun () -> ());
  let text = Obs.Registry.to_text (Obs.Registry.snapshot ()) in
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter line" true (contains "test.text.counter");
  Alcotest.(check bool) "span line" true (contains "test.text.span")

(* ---------------- multi-domain safety ---------------- *)

let stress_domains = 4
let stress_iters = 100_000

let test_multi_domain_no_lost_increments () =
  let c = Obs.Counter.make "test.stress.counter" in
  let h = Obs.Histogram.make "test.stress.hist" in
  let work d () =
    Obs.Span.with_ "test.stress.span" (fun () ->
        for i = 1 to stress_iters do
          Obs.Counter.incr c;
          (* spread observations over buckets so bucket CAS traffic is
             not serialized through a single cell *)
          Obs.Histogram.observe h (float_of_int (((d * stress_iters) + i) mod 4096))
        done)
  in
  let handles = List.init stress_domains (fun d -> Domain.spawn (work d)) in
  List.iter Domain.join handles;
  Alcotest.(check int) "no lost counter increments" (stress_domains * stress_iters)
    (Obs.Counter.get c);
  Alcotest.(check int) "no lost histogram observations" (stress_domains * stress_iters)
    (Obs.Histogram.count h);
  Alcotest.(check int) "every domain's span recorded" stress_domains
    (Obs.Span.count "test.stress.span")

(* A domain that dies with spans open must not disturb any other
   domain's DLS stack or the final snapshot: Span.with_ records the
   raising span on the way out, the dead domain's stack dies with its
   DLS, and every surviving domain's counts stay exact. *)
let test_span_crash_isolation () =
  let crash_domains = 4 in
  let iters = 1000 in
  let work d () =
    for i = 1 to iters do
      Obs.Span.with_ "test.crash.outer" (fun () ->
          Obs.Span.with_ "test.crash.inner" (fun () ->
              if d = 0 && i = iters / 2 then failwith "injected span crash"))
    done
  in
  let handles = List.init crash_domains (fun d -> Domain.spawn (work d)) in
  let crashed = ref 0 in
  List.iter (fun h -> try Domain.join h with Failure _ -> incr crashed) handles;
  Alcotest.(check int) "exactly one domain crashed" 1 !crashed;
  (* survivors completed all iterations; the crashed domain recorded every
     span it entered, including the raising one (exception-safe finish) *)
  let expect = ((crash_domains - 1) * iters) + (iters / 2) in
  Alcotest.(check int) "outer spans exact" expect (Obs.Span.count "test.crash.outer");
  Alcotest.(check int) "inner spans exact" expect (Obs.Span.count "test.crash.inner");
  Alcotest.(check int) "main domain's stack untouched" 0 (Obs.Span.depth ());
  Obs.Span.with_ "test.crash.after" (fun () ->
      Alcotest.(check int) "main domain still nests" 1 (Obs.Span.depth ()));
  match
    Json.of_string (Json.to_string (Obs.Registry.to_json (Obs.Registry.snapshot ())))
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "snapshot after crash invalid: %s" e

let test_parallel_verify_counters_match_sequential () =
  (* the counters under Pipeline.verify_parallel (domains = 4) must agree
     with a sequential run over the same world: nothing lost, nothing
     double-counted *)
  let world =
    Rpslyzer.Pipeline.build_synthetic
      ~topo_params:{ Rz_topology.Gen.default_params with n_tier1 = 3; n_mid = 12; n_stub = 30 }
      ()
  in
  let hops = Obs.Counter.make "verify.hops_total" in
  Obs.reset ();
  let agg_seq, _, _ = Rpslyzer.Pipeline.verify world in
  let seq_hops = Obs.Counter.get hops in
  Alcotest.(check int) "sequential counter = aggregate hops"
    (Rz_verify.Aggregate.n_hops agg_seq) seq_hops;
  Obs.reset ();
  let agg_par, _, _ = Rpslyzer.Pipeline.verify_parallel ~domains:4 world in
  Alcotest.(check int) "parallel counter = aggregate hops"
    (Rz_verify.Aggregate.n_hops agg_par) (Obs.Counter.get hops);
  Alcotest.(check int) "parallel = sequential" seq_hops (Obs.Counter.get hops)

let test_recovery_names_complete () =
  (* Obs.recovery_counter_names is the single source of truth the CLI's
     exit-2 policy and the docs both read. Counters register at library
     init, so by the time this test runs the registry holds every counter
     any linked library defines: any name that *looks* like a recovery
     counter (suffix rejected/dropped/truncated/capped) but is missing
     from the list is drift — a recovery path the CLI would ignore. *)
  let registered =
    List.map fst (Obs.Registry.counters (Obs.Registry.snapshot ()))
  in
  Alcotest.(check bool) "registry is populated" true (registered <> []);
  List.iter
    (fun name ->
      if Obs.looks_like_recovery name then
        Alcotest.(check bool)
          (Printf.sprintf "%s is in Obs.recovery_counter_names" name)
          true
          (List.mem name Obs.recovery_counter_names))
    registered;
  (* and the list itself never names a counter no library registers *)
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%s is actually registered" name)
        true (List.mem name registered))
    Obs.recovery_counter_names

let suite =
  [ Alcotest.test_case "counter basics" `Quick (with_metrics test_counter_basics);
    Alcotest.test_case "counter disabled no-op" `Quick (with_metrics test_counter_disabled_noop);
    Alcotest.test_case "reset" `Quick (with_metrics test_reset);
    Alcotest.test_case "histogram quantiles" `Quick (with_metrics test_histogram_quantiles);
    Alcotest.test_case "histogram constant stream" `Quick
      (with_metrics test_histogram_constant_stream);
    Alcotest.test_case "histogram underflow/empty" `Quick
      (with_metrics test_histogram_underflow_and_empty);
    Alcotest.test_case "quantile degenerate pins" `Quick
      (with_metrics test_quantile_degenerate_pins);
    Alcotest.test_case "quantile extreme qs" `Quick
      (with_metrics test_quantile_extreme_qs);
    Alcotest.test_case "span nesting" `Quick (with_metrics test_span_nesting);
    Alcotest.test_case "span exception" `Quick (with_metrics test_span_exception_still_recorded);
    Alcotest.test_case "span accumulates" `Quick (with_metrics test_span_accumulates);
    Alcotest.test_case "json round-trip" `Quick (with_metrics test_json_roundtrip);
    Alcotest.test_case "text rendering" `Quick (with_metrics test_text_rendering);
    Alcotest.test_case "multi-domain stress (4 domains)" `Quick
      (with_metrics test_multi_domain_no_lost_increments);
    Alcotest.test_case "span crash isolation (4 domains)" `Quick
      (with_metrics test_span_crash_isolation);
    Alcotest.test_case "verify_parallel counters" `Quick
      (with_metrics test_parallel_verify_counters_match_sequential);
    Alcotest.test_case "recovery counter list complete" `Quick
      (with_metrics test_recovery_names_complete) ]
