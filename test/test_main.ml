let () =
  Alcotest.run "rpslyzer"
    [ (* shard must run first: it forks, and OCaml 5 forbids Unix.fork
         once any suite has spawned a domain (see suite_shard.ml) *)
      ("shard", Suite_shard.suite);
      ("util", Suite_util.suite);
      ("intern", Suite_intern.suite);
      ("json", Suite_json.suite);
      ("net", Suite_net.suite);
      ("rpsl", Suite_rpsl.suite);
      ("aspath", Suite_aspath.suite);
      ("policy", Suite_policy.suite);
      ("ir", Suite_ir.suite);
      ("irr", Suite_irr.suite);
      ("asrel", Suite_asrel.suite);
      ("bgp", Suite_bgp.suite);
      ("verify", Suite_verify.suite);
      ("verify-advanced", Suite_verify_advanced.suite);
      ("topology", Suite_topology.suite);
      ("routegen", Suite_routegen.suite);
      ("synthirr", Suite_synthirr.suite);
      ("stats", Suite_stats.suite);
      ("obs", Suite_obs.suite);
      ("trace", Suite_trace.suite);
      ("pipeline", Suite_pipeline.suite);
      ("lint", Suite_lint.suite);
      ("classify", Suite_classify.suite);
      ("aggregate", Suite_aggregate.suite);
      ("property", Suite_property.suite);
      ("irrd", Suite_irrd.suite);
      ("actions", Suite_actions.suite);
      ("rpki", Suite_rpki.suite);
      ("inference", Suite_inference.suite);
      ("edge", Suite_edge.suite);
      ("fault", Suite_fault.suite);
      ("stream", Suite_stream.suite);
      ("serve", Suite_serve.suite);
      ("ingest", Suite_ingest.suite) ]
