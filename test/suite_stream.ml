(* Tests for the streaming verification engine (Rz_stream): the bounded
   backpressure queue, the journal round-trip, chaos determinism, and —
   the load-bearing property — the differential between incremental
   verification and a from-scratch batch re-verify after an arbitrary
   event sequence, fault-injected runs included. *)

module S = Rz_stream.Stream
module Bq = Rz_stream.Bqueue
module E = Rz_routegen.Events
module Fault = Rz_fault.Fault
module Engine = Rz_verify.Engine
module Obs = Rz_obs.Obs

let small_world =
  lazy
    (let topo_params =
       { Rz_topology.Gen.default_params with seed = 11; n_tier1 = 3; n_mid = 12; n_stub = 40 }
     in
     Rpslyzer.Pipeline.build_synthetic ~topo_params ())

let base_routes (world : Rpslyzer.Pipeline.world) =
  List.concat_map (fun (d : Rz_bgp.Table_dump.t) -> d.routes) world.table_dumps

let test_config =
  { S.default_config with window = 16; queue_capacity = 64; backoff_ms = 0.0 }

let mk_service ?(config = test_config) (world : Rpslyzer.Pipeline.world) =
  S.create ~config ~ir:(Rz_irr.Db.ir world.db) ~rels:world.rels ()

let gen_items ?(n = 80) ?(edit_rate = 0.12) ~seed world =
  let view = S.view_of world.Rpslyzer.Pipeline.db (base_routes world) in
  E.generate ~seed ~n ~edit_rate view

(* The differential surface: every verdict the service holds must equal
   what a fresh engine over the service's *current* database computes. *)
let differential_holds t (world : Rpslyzer.Pipeline.world) =
  let fresh = Engine.create (S.db t) world.rels in
  List.for_all (fun (r, rep) -> Engine.verify_route fresh r = rep) (S.reports t)

(* ---- bounded queue ---- *)

let test_bqueue_block_lossless () =
  let q = Bq.create ~capacity:8 () in
  for i = 1 to 8 do
    Alcotest.(check bool) "admitted" true (Bq.push q i)
  done;
  Alcotest.(check int) "hwm" 8 (Bq.hwm q);
  Bq.close q;
  let rec drain acc = match Bq.pop q with Some x -> drain (x :: acc) | None -> List.rev acc in
  Alcotest.(check (list int)) "FIFO, nothing lost" [ 1; 2; 3; 4; 5; 6; 7; 8 ] (drain []);
  Alcotest.(check int) "nothing dropped" 0 (Bq.dropped q);
  Alcotest.(check int) "nothing sampled" 0 (Bq.sampled q)

let test_bqueue_shed_oldest () =
  let q = Bq.create ~policy:Bq.Shed_oldest ~capacity:4 () in
  for i = 1 to 10 do
    ignore (Bq.push q i)
  done;
  Bq.close q;
  let rec drain acc = match Bq.pop q with Some x -> drain (x :: acc) | None -> List.rev acc in
  Alcotest.(check (list int)) "freshest survive" [ 7; 8; 9; 10 ] (drain []);
  Alcotest.(check int) "oldest shed" 6 (Bq.dropped q);
  Alcotest.(check int) "hwm capped" 4 (Bq.hwm q)

let test_bqueue_sample_deterministic () =
  (* sampling is an overload policy: it only gates arrivals once the
     queue is full, so keep the capacity small relative to the pushes *)
  let run seed =
    let q = Bq.create ~policy:(Bq.Sample 0.4) ~seed ~capacity:16 () in
    let admitted = List.init 200 (fun i -> Bq.push q (i + 1)) in
    (admitted, Bq.sampled q)
  in
  let a1, s1 = run 9 in
  let a2, s2 = run 9 in
  let a3, _ = run 10 in
  Alcotest.(check (list bool)) "same seed, same admissions" a1 a2;
  Alcotest.(check int) "same seed, same sampled count" s1 s2;
  Alcotest.(check bool) "sampling actually discards" true (s1 > 0);
  Alcotest.(check bool) "sampling actually admits" true (List.exists Fun.id a1);
  Alcotest.(check bool) "different seed, different pattern" true (a1 <> a3)

let test_bqueue_close_semantics () =
  let q = Bq.create ~capacity:4 () in
  ignore (Bq.push q 1);
  ignore (Bq.push q 2);
  Bq.close q;
  Alcotest.(check bool) "drains after close" true (Bq.pop q = Some 1 && Bq.pop q = Some 2);
  Alcotest.(check bool) "then None" true (Bq.pop q = None);
  Alcotest.(check bool) "push after close raises" true
    (match Bq.push q 3 with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_bqueue_set_policy_live () =
  let q = Bq.create ~capacity:2 () in
  ignore (Bq.push q 1);
  ignore (Bq.push q 2);
  (* full under Block would wedge a single-threaded pusher; the
     watchdog's degradation lever must unwedge it *)
  Bq.set_policy q Bq.Shed_oldest;
  Alcotest.(check bool) "push proceeds" true (Bq.push q 3);
  Alcotest.(check int) "oldest shed" 1 (Bq.dropped q);
  Alcotest.(check string) "policy switched" "shed-oldest" (Bq.policy_name (Bq.policy q))

(* ---- journal round-trip ---- *)

let test_journal_roundtrip () =
  let world = Lazy.force small_world in
  let items = gen_items ~n:150 ~edit_rate:0.2 ~seed:5 world in
  let parsed, errors = E.parse (E.render items) in
  Alcotest.(check int) "no rejections" 0 (List.length errors);
  Alcotest.(check int) "every event back" (List.length items) (List.length parsed);
  Alcotest.(check bool) "identical items" true (parsed = items)

let test_generate_deterministic () =
  let world = Lazy.force small_world in
  let a = gen_items ~seed:21 world and b = gen_items ~seed:21 world in
  let c = gen_items ~seed:22 world in
  Alcotest.(check bool) "same seed, same stream" true (a = b);
  Alcotest.(check bool) "different seed, different stream" true (a <> c)

(* ---- incremental == batch differential ---- *)

let feed_all t items = List.map (fun it -> S.feed t it) items

let test_differential_clean () =
  let world = Lazy.force small_world in
  let t = mk_service world in
  let items = gen_items ~n:120 ~edit_rate:0.15 ~seed:31 world in
  ignore (feed_all t items);
  S.flush t;
  Alcotest.(check bool) "policy edits happened" true (S.generations t > 0);
  Alcotest.(check bool) "rib populated" true (S.rib_routes t <> []);
  Alcotest.(check bool) "incremental == batch" true (differential_holds t world)

let qcheck_differential =
  QCheck.Test.make ~count:10 ~name:"incremental == batch after any event sequence"
    QCheck.(make ~print:Print.(pair int bool) Gen.(pair (int_bound 9999) bool))
    (fun (seed, with_chaos) ->
      let world = Lazy.force small_world in
      let chaos =
        if with_chaos then Some (Fault.plan ~seed:(seed + 7) ~rate:0.3 ()) else None
      in
      let t = mk_service ~config:{ test_config with chaos } world in
      let items = gen_items ~n:80 ~seed world in
      ignore (feed_all t items);
      S.flush t;
      if not (differential_holds t world) then
        QCheck.Test.fail_reportf "differential broke at seed %d (chaos %b)" seed
          with_chaos;
      true)

let test_invalidation_counters () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () -> Obs.disable (); Obs.reset ()) @@ fun () ->
  let memo_hits = Obs.Counter.make "verify.memo_hits" in
  let invalidations = Obs.Counter.make "stream.invalidations" in
  let world = Lazy.force small_world in
  let t = mk_service world in
  let items = gen_items ~n:100 ~edit_rate:0.25 ~seed:47 world in
  ignore (feed_all t items);
  S.flush t;
  Alcotest.(check bool) "generations advanced" true (S.generations t > 0);
  Alcotest.(check int) "counter tracks engine invalidations"
    (S.invalidated t) (Obs.Counter.get invalidations);
  (* memo-warm sweeps: untouched hops must be cache hits, not re-verifies *)
  Alcotest.(check bool) "sweeps hit the hop memo" true (Obs.Counter.get memo_hits > 0);
  Alcotest.(check bool) "differential still holds" true (differential_holds t world)

(* ---- chaos ---- *)

let test_chaos_deterministic () =
  let world = Lazy.force small_world in
  let items = gen_items ~n:90 ~seed:61 world in
  let outcomes () =
    let chaos = Some (Fault.plan ~seed:13 ~rate:0.4 ()) in
    let t = mk_service ~config:{ test_config with chaos } world in
    let rs = feed_all t items in
    S.flush t;
    (rs, S.reports t)
  in
  let r1, rep1 = outcomes () in
  let r2, rep2 = outcomes () in
  Alcotest.(check bool) "same plan, same fates" true (r1 = r2);
  Alcotest.(check bool) "same plan, same verdicts" true (rep1 = rep2);
  Alcotest.(check bool) "some events abandoned at rate 0.4" true
    (List.exists (fun r -> r = S.Abandoned) r1)

let test_chaos_rate_one_degrades_never_crashes () =
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () -> Obs.disable (); Obs.reset ()) @@ fun () ->
  let abandoned = Obs.Counter.make "stream.events_abandoned" in
  let world = Lazy.force small_world in
  let chaos = Some (Fault.plan ~seed:3 ~rate:1.0 ()) in
  let t = mk_service ~config:{ test_config with chaos } world in
  let items = gen_items ~n:60 ~seed:71 world in
  let results = feed_all t items in
  S.flush t;
  Alcotest.(check bool) "every event abandoned" true
    (List.for_all (fun r -> r = S.Abandoned) results);
  Alcotest.(check int) "abandonments counted" 60 (Obs.Counter.get abandoned);
  Alcotest.(check int) "rib untouched" 0 (List.length (S.rib_routes t));
  Alcotest.(check int) "no generation swaps" 0 (S.generations t)

(* ---- pipelined run ---- *)

let test_run_matches_sequential_feed () =
  let world = Lazy.force small_world in
  let items = gen_items ~n:100 ~seed:83 world in
  let t_seq = mk_service world in
  ignore (feed_all t_seq items);
  S.flush t_seq;
  let t_run = mk_service world in
  let stats = S.run ~seed:0 t_run items in
  Alcotest.(check int) "all events processed" 100 stats.S.r_processed;
  Alcotest.(check int) "Block loses nothing" 0 (stats.S.r_dropped + stats.S.r_sampled);
  Alcotest.(check bool) "bounded queue memory" true
    (stats.S.r_hwm <= test_config.S.queue_capacity);
  Alcotest.(check bool) "clean run not degraded" true (not stats.S.r_degraded);
  Alcotest.(check bool) "pipelined == synchronous" true
    (S.reports t_run = S.reports t_seq);
  Alcotest.(check bool) "same windows" true (S.windows t_run = S.windows t_seq)

let test_windows_account_for_everything () =
  let world = Lazy.force small_world in
  let t = mk_service world in
  let items = gen_items ~n:100 ~seed:97 world in
  ignore (feed_all t items);
  S.flush t;
  let ws = S.windows t in
  Alcotest.(check int) "100 events over 16-event windows" 7 (List.length ws);
  let total = List.fold_left (fun acc (w : S.window) -> acc + w.S.w_events) 0 ws in
  Alcotest.(check int) "every event in exactly one window" 100 total;
  List.iter
    (fun (w : S.window) ->
      Alcotest.(check int)
        (Printf.sprintf "window %d kinds sum to events" w.S.w_index)
        w.S.w_events
        (w.S.w_announce + w.S.w_withdraw + w.S.w_edit))
    ws;
  (* window JSON is reparseable, like every other surface *)
  List.iter
    (fun w ->
      let s = Rz_json.Json.to_string (S.window_to_json w) in
      ignore (Rz_json.Json.of_string s))
    ws

let suite =
  [ Alcotest.test_case "bqueue block lossless" `Quick test_bqueue_block_lossless;
    Alcotest.test_case "bqueue shed-oldest" `Quick test_bqueue_shed_oldest;
    Alcotest.test_case "bqueue sample deterministic" `Quick test_bqueue_sample_deterministic;
    Alcotest.test_case "bqueue close semantics" `Quick test_bqueue_close_semantics;
    Alcotest.test_case "bqueue live policy switch" `Quick test_bqueue_set_policy_live;
    Alcotest.test_case "journal round-trip" `Quick test_journal_roundtrip;
    Alcotest.test_case "generator deterministic" `Quick test_generate_deterministic;
    Alcotest.test_case "differential (clean run)" `Quick test_differential_clean;
    QCheck_alcotest.to_alcotest qcheck_differential;
    Alcotest.test_case "invalidation counters" `Quick test_invalidation_counters;
    Alcotest.test_case "chaos deterministic" `Quick test_chaos_deterministic;
    Alcotest.test_case "chaos 1.0 degrades, never crashes" `Quick
      test_chaos_rate_one_degrades_never_crashes;
    Alcotest.test_case "pipelined run == sequential feed" `Quick
      test_run_matches_sequential_feed;
    Alcotest.test_case "windows account for everything" `Quick
      test_windows_account_for_everything ]
