(* Tests for the IRRd-style query protocol (Rz_irr.Irrd_query). *)
module Q = Rz_irr.Irrd_query
module Db = Rz_irr.Db

let fixture =
  "aut-num: AS65001\n\
   as-name: EXAMPLE\n\
   import: from AS65002 accept AS-CONE\n\
   export: to AS65002 announce AS65001\n\
   mnt-by: MNT-EX\n\
   \n\
   as-set: AS-CONE\n\
   members: AS65001, AS-SUB\n\
   \n\
   as-set: AS-SUB\n\
   members: AS65003\n\
   \n\
   route-set: RS-NETS\n\
   members: 192.0.2.0/24^+, AS65003\n\
   \n\
   route: 192.0.2.0/24\norigin: AS65001\n\
   \n\
   route: 198.51.100.0/24\norigin: AS65001\n\
   \n\
   route: 198.51.100.0/25\norigin: AS65003\n\
   \n\
   route6: 2001:db8::/32\norigin: AS65001\n"

let db = lazy (Db.of_dumps [ ("TEST", fixture) ])

let expect_data query check =
  match Q.answer (Lazy.force db) query with
  | Q.Data payload -> check payload
  | other -> Alcotest.failf "%s: expected data, got %s" query (Q.render other)

let test_g_origin_v4 () =
  expect_data "!gAS65001" (fun payload ->
      Alcotest.(check string) "v4 prefixes" "192.0.2.0/24 198.51.100.0/24" payload)

let test_6_origin_v6 () =
  expect_data "!6AS65001" (fun payload ->
      Alcotest.(check string) "v6 prefixes" "2001:db8::/32" payload)

let test_g_no_routes () =
  Alcotest.(check bool) "unknown origin -> D" true
    (Q.answer (Lazy.force db) "!gAS64999" = Q.Not_found_key)

let test_i_direct () =
  expect_data "!iAS-CONE" (fun payload ->
      Alcotest.(check string) "direct members" "AS65001 AS-SUB" payload)

let test_i_recursive () =
  expect_data "!iAS-CONE,1" (fun payload ->
      Alcotest.(check string) "flattened" "AS65001 AS65003" payload)

let test_i_route_set_recursive () =
  expect_data "!iRS-NETS,1" (fun payload ->
      Alcotest.(check bool) "has prefix with op" true
        (Rz_util.Strings.split_on_string ~sep:"192.0.2.0/24^+" payload |> List.length > 1);
      Alcotest.(check bool) "asn member expanded" true
        (Rz_util.Strings.split_on_string ~sep:"198.51.100.0/25" payload |> List.length > 1))

let test_i_missing () =
  Alcotest.(check bool) "missing set -> D" true
    (Q.answer (Lazy.force db) "!iAS-NOWHERE" = Q.Not_found_key)

let test_m_aut_num () =
  expect_data "!maut-num,AS65001" (fun payload ->
      Alcotest.(check bool) "renders rules" true
        (Rz_util.Strings.split_on_string ~sep:"import:" payload |> List.length > 1);
      Alcotest.(check bool) "renders source" true
        (Rz_util.Strings.split_on_string ~sep:"source:" payload |> List.length > 1))

let test_m_route () =
  expect_data "!mroute,192.0.2.0/24" (fun payload ->
      Alcotest.(check bool) "origin present" true
        (Rz_util.Strings.split_on_string ~sep:"AS65001" payload |> List.length > 1))

let test_m_bad_class () =
  match Q.answer (Lazy.force db) "!mperson,foo" with
  | Q.Error_resp _ -> ()
  | other -> Alcotest.failf "expected error, got %s" (Q.render other)

let test_r_exact_and_covering () =
  expect_data "!r198.51.100.0/25" (fun payload ->
      Alcotest.(check bool) "exact match" true
        (Rz_util.Strings.split_on_string ~sep:"AS65003" payload |> List.length > 1));
  expect_data "!r198.51.100.0/25,l" (fun payload ->
      (* covering includes the /24 by AS65001 *)
      Alcotest.(check bool) "covering includes /24" true
        (Rz_util.Strings.split_on_string ~sep:"198.51.100.0/24 AS65001" payload
         |> List.length > 1));
  expect_data "!r198.51.100.0/25,o" (fun payload ->
      Alcotest.(check string) "origins only" "AS65003" payload)

let test_a_aggregated_prefixes () =
  expect_data "!aAS-CONE" (fun payload ->
      (* AS65001's /24s and AS65003's /25 aggregate: the /25 is inside
         198.51.100.0/24 so only the two /24s remain *)
      Alcotest.(check string) "aggregated" "192.0.2.0/24 198.51.100.0/24" payload);
  expect_data "!a6AS-CONE" (fun payload ->
      Alcotest.(check string) "v6" "2001:db8::/32" payload);
  Alcotest.(check bool) "unknown set" true
    (Q.answer (Lazy.force db) "!aAS-NOWHERE" = Q.Not_found_key)

let test_plain_whois () =
  expect_data "AS-CONE" (fun payload ->
      Alcotest.(check bool) "as-set block" true
        (Rz_util.Strings.split_on_string ~sep:"as-set:" payload |> List.length > 1));
  expect_data "192.0.2.0/24" (fun payload ->
      Alcotest.(check bool) "route block" true
        (Rz_util.Strings.split_on_string ~sep:"route:" payload |> List.length > 1));
  Alcotest.(check bool) "unknown -> D" true
    (Q.answer (Lazy.force db) "WHAT-IS-THIS" = Q.Not_found_key)

let test_framing () =
  Alcotest.(check string) "no data" "C\n" (Q.render Q.No_data);
  Alcotest.(check string) "not found" "D\n" (Q.render Q.Not_found_key);
  Alcotest.(check string) "error" "F nope\n" (Q.render (Q.Error_resp "nope"));
  Alcotest.(check string) "data framing" "A5\nhello\nC\n" (Q.render (Q.Data "hello"));
  Alcotest.(check string) "quit renders empty" "" (Q.render Q.Quit)

let test_session () =
  let transcript = Q.session (Lazy.force db) [ "!nbgpq4"; "!gAS65001"; "!q"; "!gAS65001" ] in
  (* the !n ack, then one data block; nothing after !q *)
  Alcotest.(check bool) "starts with ack" true
    (String.length transcript > 2 && String.sub transcript 0 2 = "C\n");
  Alcotest.(check int) "one data block only" 2
    (List.length (Rz_util.Strings.split_on_string ~sep:"192.0.2.0/24" transcript))

let test_unsupported_bang () =
  match Q.answer (Lazy.force db) "!zwhatever" with
  | Q.Error_resp _ -> ()
  | other -> Alcotest.failf "expected error, got %s" (Q.render other)

(* ---- hostile queries: every answer must be a protocol response, never
   an exception escaping into the session loop ---- *)

let expect_fd label query =
  match Q.answer (Lazy.force db) query with
  | Q.Error_resp _ | Q.Not_found_key | Q.No_data -> ()
  | other -> Alcotest.failf "%s: expected F/D/C, got %s" label (Q.render other)

let test_malformed_garbage_bytes () =
  expect_fd "nul garbage" "\x00\x01\xff\xfebinary";
  expect_fd "nul after bang" "!\x00\x01\x02";
  expect_fd "bang g garbage" "!g\x00\xff not an asn";
  expect_fd "high bytes" "\xc3\xa9\xc2\xa0\xe2\x80\x8b"

let test_malformed_overlong_set_name () =
  expect_fd "overlong !i" ("!i" ^ String.make 100_000 'A');
  expect_fd "overlong !i recursive" ("!iAS-" ^ String.make 100_000 'X' ^ ",1");
  expect_fd "overlong !a" ("!a" ^ String.make 50_000 'B')

let test_malformed_r_prefixes () =
  expect_fd "not a prefix" "!rnot-a-prefix";
  expect_fd "octets out of range" "!r999.999.999.999/99";
  expect_fd "negative length" "!r192.0.2.0/-1";
  expect_fd "lone slash" "!r/";
  expect_fd "empty with mode" "!r,l";
  expect_fd "v6 garbage" "!r:::::/200,o"

let test_malformed_empty_and_whitespace () =
  Alcotest.(check bool) "empty query -> C" true (Q.answer (Lazy.force db) "" = Q.No_data);
  Alcotest.(check bool) "whitespace query -> C" true
    (Q.answer (Lazy.force db) "   \t  " = Q.No_data);
  expect_fd "lone bang" "!";
  expect_fd "bang i no arg" "!i";
  expect_fd "bang m no comma" "!maut-num"

let test_malformed_session_survives () =
  (* a hostile session never raises and produces one framed response per
     query line *)
  let transcript =
    Q.session (Lazy.force db)
      [ "\x00garbage"; "!r999.999.999.999/99"; "!i" ^ String.make 10_000 'Z'; "" ]
  in
  Alcotest.(check bool) "non-empty transcript" true (String.length transcript > 0)

let suite =
  [ Alcotest.test_case "!g origin v4" `Quick test_g_origin_v4;
    Alcotest.test_case "!6 origin v6" `Quick test_6_origin_v6;
    Alcotest.test_case "!g unknown" `Quick test_g_no_routes;
    Alcotest.test_case "!i direct" `Quick test_i_direct;
    Alcotest.test_case "!i recursive" `Quick test_i_recursive;
    Alcotest.test_case "!i route-set recursive" `Quick test_i_route_set_recursive;
    Alcotest.test_case "!i missing" `Quick test_i_missing;
    Alcotest.test_case "!m aut-num" `Quick test_m_aut_num;
    Alcotest.test_case "!m route" `Quick test_m_route;
    Alcotest.test_case "!m bad class" `Quick test_m_bad_class;
    Alcotest.test_case "!r exact/covering/origins" `Quick test_r_exact_and_covering;
    Alcotest.test_case "!a aggregated prefixes" `Quick test_a_aggregated_prefixes;
    Alcotest.test_case "plain whois" `Quick test_plain_whois;
    Alcotest.test_case "framing" `Quick test_framing;
    Alcotest.test_case "session" `Quick test_session;
    Alcotest.test_case "unsupported !x" `Quick test_unsupported_bang;
    Alcotest.test_case "malformed: garbage bytes" `Quick test_malformed_garbage_bytes;
    Alcotest.test_case "malformed: overlong set names" `Quick test_malformed_overlong_set_name;
    Alcotest.test_case "malformed: !r bad prefixes" `Quick test_malformed_r_prefixes;
    Alcotest.test_case "malformed: empty/whitespace" `Quick test_malformed_empty_and_whitespace;
    Alcotest.test_case "malformed: session survives" `Quick test_malformed_session_survives ]
