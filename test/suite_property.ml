(* Cross-cutting property tests: random policy ASTs round-trip through the
   printer and parser; the verification engine is deterministic and total;
   file-based reading agrees with in-memory parsing. *)
module Ast = Rz_policy.Ast
module Gen = QCheck.Gen

(* ---------------- random policy AST generation ---------------- *)

let gen_asn = Gen.int_range 1 99999
let gen_set_name =
  Gen.map (fun n -> Printf.sprintf "AS-SET%d" n) (Gen.int_range 1 99)
let gen_route_set_name =
  Gen.map (fun n -> Printf.sprintf "RS-SET%d" n) (Gen.int_range 1 99)

let gen_range_op =
  Gen.oneof
    [ Gen.return Rz_net.Range_op.None_;
      Gen.return Rz_net.Range_op.Minus;
      Gen.return Rz_net.Range_op.Plus;
      Gen.map (fun n -> Rz_net.Range_op.Exact n) (Gen.int_range 8 32);
      Gen.map2
        (fun a b -> Rz_net.Range_op.Range (min a b, max a b))
        (Gen.int_range 8 32) (Gen.int_range 8 32) ]

let gen_prefix =
  Gen.map2
    (fun addr24 len -> Rz_net.Prefix.v4 (addr24 lsl 8) len)
    (Gen.int_range 1 0xFFFFFF) (Gen.int_range 8 24)

let rec gen_as_expr depth =
  if depth = 0 then
    Gen.oneof
      [ Gen.map (fun a -> Ast.Asn a) gen_asn;
        Gen.map (fun s -> Ast.As_set s) gen_set_name;
        Gen.return Ast.Any_as ]
  else
    Gen.oneof
      [ gen_as_expr 0;
        Gen.map2 (fun a b -> Ast.And (a, b)) (gen_as_expr (depth - 1)) (gen_as_expr (depth - 1));
        Gen.map2 (fun a b -> Ast.Or (a, b)) (gen_as_expr (depth - 1)) (gen_as_expr (depth - 1)) ]

let rec gen_filter depth =
  if depth = 0 then
    Gen.oneof
      [ Gen.return Ast.Any;
        Gen.return Ast.Peer_as_filter;
        Gen.return Ast.Fltr_martian;
        Gen.map2 (fun a op -> Ast.As_num (a, op)) gen_asn gen_range_op;
        Gen.map2 (fun s op -> Ast.As_set_ref (s, op)) gen_set_name gen_range_op;
        Gen.map2 (fun s op -> Ast.Route_set_ref (s, op)) gen_route_set_name gen_range_op;
        Gen.map
          (fun members -> Ast.Prefix_set (members, Rz_net.Range_op.None_))
          (Gen.list_size (Gen.int_range 1 3) (Gen.pair gen_prefix gen_range_op)) ]
  else
    Gen.oneof
      [ gen_filter 0;
        Gen.map2 (fun a b -> Ast.And_f (a, b)) (gen_filter (depth - 1)) (gen_filter (depth - 1));
        Gen.map2 (fun a b -> Ast.Or_f (a, b)) (gen_filter (depth - 1)) (gen_filter (depth - 1));
        Gen.map (fun a -> Ast.Not_f a) (gen_filter (depth - 1)) ]

let gen_factor =
  Gen.map2
    (fun as_exprs filter ->
      { Ast.peerings =
          List.map
            (fun e ->
              { Ast.peering =
                  Ast.Peering_spec { as_expr = e; remote_router = None; local_router = None };
                actions = [] })
            as_exprs;
        filter })
    (Gen.list_size (Gen.int_range 1 2) (gen_as_expr 1))
    (gen_filter 2)

let gen_rule =
  Gen.map2
    (fun direction factors ->
      { Ast.direction;
        multiprotocol = false;
        protocol = None;
        into_protocol = None;
        expr = Ast.Term_e { afi = []; factors } })
    (Gen.oneofl [ `Import; `Export ])
    (Gen.list_size (Gen.int_range 1 1) gen_factor)

(* The canonical text of a rule (strip the leading "attr:" produced by
   rule_to_string). *)
let rule_body rule =
  let rendered = Ast.rule_to_string rule in
  match String.index_opt rendered ':' with
  | Some i -> String.sub rendered (i + 1) (String.length rendered - i - 1)
  | None -> rendered

let rule_roundtrip =
  QCheck.Test.make ~name:"random rule: print |> parse |> print is stable" ~count:500
    (QCheck.make gen_rule)
    (fun rule ->
      let body = rule_body rule in
      match
        Rz_policy.Parser.parse_rule ~direction:rule.Ast.direction ~multiprotocol:false body
      with
      | Error e -> QCheck.Test.fail_reportf "did not re-parse: %s\n%s" e body
      | Ok reparsed ->
        (* printing must be a fixpoint after one round *)
        String.equal (Ast.rule_to_string rule) (Ast.rule_to_string reparsed))

let filter_roundtrip =
  QCheck.Test.make ~name:"random filter: print |> parse |> print is stable" ~count:500
    (QCheck.make (gen_filter 3))
    (fun filter ->
      let text = Ast.filter_to_string filter in
      match Rz_policy.Parser.parse_filter text with
      | Error e -> QCheck.Test.fail_reportf "did not re-parse: %s\n%s" e text
      | Ok reparsed ->
        String.equal text (Ast.filter_to_string reparsed))

(* ---------------- engine totality / determinism ---------------- *)

let small_world =
  lazy
    (let topo =
       Rz_topology.Gen.generate
         { Rz_topology.Gen.default_params with n_tier1 = 3; n_mid = 15; n_stub = 40 }
     in
     let world = Rz_synthirr.Generate.generate topo in
     let db = Rz_irr.Db.of_dumps world.dumps in
     (topo, db))

let engine_total_and_deterministic =
  QCheck.Test.make ~name:"verify_hop is total and deterministic" ~count:300
    (QCheck.make
       (Gen.tup4 (Gen.int_range 0 57) (Gen.int_range 0 57)
          (Gen.int_range 1 0xFFFFFF) (Gen.list_size (Gen.int_range 1 5) (Gen.int_range 0 57))))
    (fun (subject_i, remote_i, addr24, path_is) ->
      let topo, db = Lazy.force small_world in
      let engine = Rz_verify.Engine.create db topo.rels in
      let asn i = topo.ases.(i mod Array.length topo.ases) in
      let subject = asn subject_i and remote = asn remote_i in
      let prefix = Rz_net.Prefix.v4 (addr24 lsl 8) 24 in
      let path = Array.of_list (List.map asn path_is) in
      let run () =
        Rz_verify.Engine.verify_hop engine ~direction:`Import ~subject ~remote ~prefix ~path
      in
      let a = run () and b = run () in
      Rz_verify.Status.to_string a.status = Rz_verify.Status.to_string b.status)

let status_precedence_no_aut_num =
  QCheck.Test.make ~name:"missing aut-num always classifies Unrecorded" ~count:100
    (QCheck.make (Gen.int_range 5_000_000 6_000_000))
    (fun ghost_asn ->
      let topo, db = Lazy.force small_world in
      let engine = Rz_verify.Engine.create db topo.rels in
      let hop =
        Rz_verify.Engine.verify_hop engine ~direction:`Export ~subject:ghost_asn
          ~remote:topo.ases.(0)
          ~prefix:(Rz_net.Prefix.of_string_exn "203.0.113.0/24")
          ~path:[| ghost_asn |]
      in
      match hop.status with Rz_verify.Status.Unrecorded _ -> true | _ -> false)

(* ---------------- observability: histogram accuracy ---------------- *)

(* Feed random streams of values into an Rz_obs log-bucketed histogram and
   compare every extracted quantile against the exact answer computed from
   the sorted array (same rank convention: max 1 (ceil (q * n))).  The
   bucket layout guarantees the estimate is within one bucket's relative
   error, i.e. a factor of gamma, of the true value. *)
let histogram_quantile_accuracy =
  (* log-uniform values spanning ~150 buckets, so streams exercise the
     underflow-free range broadly rather than clustering in a few cells *)
  let gen_stream =
    Gen.list_size (Gen.int_range 1 400)
      (Gen.map exp (Gen.float_range 0.0 25.0))
  in
  QCheck.Test.make ~name:"histogram quantiles within one bucket of exact" ~count:150
    (QCheck.make ~print:QCheck.Print.(list float) gen_stream)
    (fun values ->
      let module Obs = Rz_obs.Obs in
      Obs.reset ();
      Obs.enable ();
      Fun.protect
        ~finally:(fun () ->
          Obs.disable ();
          Obs.reset ())
      @@ fun () ->
      let h = Obs.Histogram.make "test.property.hist" in
      List.iter (Obs.Histogram.observe h) values;
      let arr = Array.of_list (List.sort compare values) in
      let n = Array.length arr in
      let g = Obs.Histogram.gamma h in
      Obs.Histogram.count h = n
      && List.for_all
           (fun q ->
             let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
             let exact = arr.(rank - 1) in
             let est = Obs.Histogram.quantile h q in
             est >= exact /. g && est <= exact *. g)
           [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ])

(* ---------------- fault-injection properties ---------------- *)

(* One moderately sized clean dump, corrupted differently per case. *)
let fault_base_dumps =
  lazy
    (let topo_params =
       { Rz_topology.Gen.default_params with seed = 11; n_tier1 = 2; n_mid = 10; n_stub = 30 }
     in
     (Rpslyzer.Pipeline.build_synthetic ~topo_params ()).dumps)

let gen_fault_plan =
  Gen.map2
    (fun seed rate -> Rz_fault.Fault.plan ~seed ~rate:(float_of_int rate /. 100.) ())
    (Gen.int_range 0 10_000) (Gen.int_range 0 40)

(* Parsing is total and deterministic on any corrupted dump: for every
   plan, parse_string returns a result decomposed into objects + errors
   (never an exception), twice-parsing agrees, and a non-empty corrupted
   text always accounts for at least one object or error. *)
let fault_parse_total =
  QCheck.Test.make ~count:40 ~name:"corrupted parse is total and deterministic"
    (QCheck.make gen_fault_plan) (fun plan ->
      List.for_all
        (fun (_, text) ->
          let corrupted, _ = Rz_fault.Fault.corrupt_dump plan text in
          let a = Rz_rpsl.Reader.parse_string corrupted in
          let b = Rz_rpsl.Reader.parse_string corrupted in
          List.length a.objects = List.length b.objects
          && List.length a.errors = List.length b.errors
          && (String.trim corrupted = "" || a.objects <> [] || a.errors <> []))
        (Lazy.force fault_base_dumps))

(* Hop accounting survives corruption and domain crashes: the aggregate's
   per-class counts sum to its hop total, and both agree with the
   verify.hops_total observability counter. *)
let fault_hops_accounting =
  QCheck.Test.make ~count:5 ~name:"hop accounting under corruption"
    (QCheck.make gen_fault_plan) (fun plan ->
      let world =
        Rpslyzer.Pipeline.build_synthetic
          ~topo_params:{ Rz_topology.Gen.default_params with seed = 11; n_tier1 = 2; n_mid = 10; n_stub = 30 }
          ()
      in
      let corrupted, _ = Rz_fault.Fault.corrupt_dumps plan world.dumps in
      let db = Rz_irr.Db.of_dumps corrupted in
      let world = { world with Rpslyzer.Pipeline.db; dumps = corrupted } in
      Rz_obs.Obs.enable ();
      Rz_obs.Obs.reset ();
      let c_hops = Rz_obs.Obs.Counter.make "verify.hops_total" in
      let agg, _, _ =
        Rpslyzer.Pipeline.verify_parallel ~domains:3
          ~inject_domain_fault:(fun d -> if d = 0 then failwith "crash")
          world
      in
      let counted = Rz_obs.Obs.Counter.get c_hops in
      Rz_obs.Obs.disable ();
      let classes = Rz_verify.Aggregate.counts_classes (Rz_verify.Aggregate.overall agg) in
      let class_sum = List.fold_left (fun acc (_, n) -> acc + n) 0 classes in
      let hops = Rz_verify.Aggregate.n_hops agg in
      class_sum = hops && counted = hops)

(* ---------------- hop-memoization parity ---------------- *)

(* The hop-verdict memo must be invisible in the output. A single
   long-lived memoizing engine (so hits really accumulate across cases)
   and a memo-off engine must produce structurally identical route
   reports — status, diagnostic items, and action-assigned attributes.
   Each route is also verified twice on the memoizing engine, so both
   the miss path and the hit path are compared against the unmemoized
   engine. *)

let memo_parity_engines =
  lazy
    (let topo, db = Lazy.force small_world in
     ( topo,
       Rz_verify.Engine.create db topo.rels,
       Rz_verify.Engine.create
         ~config:{ Rz_verify.Engine.default_config with memoize = false }
         db topo.rels ))

let gen_route_shape =
  Gen.tup2 (Gen.int_range 1 0xFFFFFF)
    (Gen.list_size (Gen.int_range 1 6) (Gen.int_range 0 57))

let memo_parity_synthetic =
  QCheck.Test.make ~name:"memoized engine = unmemoized engine (synthetic world)"
    ~count:300
    (QCheck.make gen_route_shape)
    (fun (addr24, path_is) ->
      let topo, memo_engine, plain_engine = Lazy.force memo_parity_engines in
      let asn i = topo.ases.(i mod Array.length topo.ases) in
      let route =
        Rz_bgp.Route.make
          (Rz_net.Prefix.v4 (addr24 lsl 8) 24)
          (List.map asn path_is)
      in
      let plain = Rz_verify.Engine.verify_route plain_engine route in
      let memo1 = Rz_verify.Engine.verify_route memo_engine route in
      let memo2 = Rz_verify.Engine.verify_route memo_engine route in
      plain = memo1 && plain = memo2)

(* Same parity over a hand-written world whose policies read the AS path:
   synthirr never emits [Path_regex] filters, so this world forces the
   per-(aut-num, direction) path-freeness analysis to flag subjects as
   path-dependent and bypass the memo for them, while AS2's plain
   policies stay memoizable. *)
let memo_parity_regex_engines =
  lazy
    (let rpsl =
       "aut-num: AS1\n\
        import: from AS2 accept <^AS2 AS3*$>\n\
        export: to AS2 announce ANY\n\
        \n\
        aut-num: AS2\n\
        import: from AS1 accept ANY\n\
        import: from AS3 accept AS-REG\n\
        export: to AS1 announce ANY\n\
        export: to AS3 announce AS2\n\
        \n\
        aut-num: AS3\n\
        import: from AS2 accept <^AS2+ AS1$>\n\
        export: to AS2 announce <^AS3$>\n\
        \n\
        as-set: AS-REG\n\
        members: AS1, AS3\n\
        \n\
        route: 10.0.0.0/24\n\
        origin: AS3\n\
        \n\
        route: 10.1.0.0/24\n\
        origin: AS1\n"
     in
     let db = Rz_irr.Db.of_dumps [ ("parity", rpsl) ] in
     let rels = Rz_asrel.Rel_db.create () in
     Rz_asrel.Rel_db.add_p2c rels ~provider:2 ~customer:1;
     Rz_asrel.Rel_db.add_p2c rels ~provider:2 ~customer:3;
     ( Rz_verify.Engine.create db rels,
       Rz_verify.Engine.create
         ~config:{ Rz_verify.Engine.default_config with memoize = false }
         db rels ))

let memo_parity_path_regex =
  QCheck.Test.make ~name:"memoized engine = unmemoized engine (path-regex world)"
    ~count:300
    (QCheck.make
       (Gen.tup2 (Gen.int_range 0 7)
          (Gen.list_size (Gen.int_range 1 5) (Gen.int_range 1 5))))
    (fun (net, path) ->
      let memo_engine, plain_engine = Lazy.force memo_parity_regex_engines in
      let route =
        Rz_bgp.Route.make
          (Rz_net.Prefix.v4 ((10 lsl 24) lor (net lsl 8)) 24)
          path
      in
      let plain = Rz_verify.Engine.verify_route plain_engine route in
      let memo1 = Rz_verify.Engine.verify_route memo_engine route in
      let memo2 = Rz_verify.Engine.verify_route memo_engine route in
      plain = memo1 && plain = memo2)

(* ---------------- file IO agreement ---------------- *)

let test_parse_file_agrees () =
  let text = "aut-num: AS1\nimport: from AS2 accept ANY\n\nroute: 192.0.2.0/24\norigin: AS1\n" in
  let path = Filename.temp_file "rpsl" ".db" in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  let from_file = Rz_rpsl.Reader.parse_file path in
  let from_string = Rz_rpsl.Reader.parse_string text in
  Sys.remove path;
  Alcotest.(check int) "same object count" (List.length from_string.objects)
    (List.length from_file.objects);
  List.iter2
    (fun (a : Rz_rpsl.Obj.t) (b : Rz_rpsl.Obj.t) ->
      Alcotest.(check string) "same name" a.name b.name)
    from_string.objects from_file.objects

let test_fold_file () =
  let text = "aut-num: AS1\n\naut-num: AS2\n\naut-num: AS3\n" in
  let path = Filename.temp_file "rpsl" ".db" in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  let count, errors = Rz_rpsl.Reader.fold_file path ~init:0 ~f:(fun acc _ -> acc + 1) in
  Sys.remove path;
  Alcotest.(check int) "three objects" 3 count;
  Alcotest.(check int) "no errors" 0 (List.length errors)

let test_world_save_load_roundtrip () =
  let world =
    Rpslyzer.Pipeline.build_synthetic
      ~topo_params:{ Rz_topology.Gen.default_params with n_tier1 = 2; n_mid = 8; n_stub = 20 }
      ()
  in
  let dir = Filename.temp_file "world" "" in
  Sys.remove dir;
  Rpslyzer.Pipeline.save_world world dir;
  let loaded = Rpslyzer.Pipeline.load_world dir in
  let ir_a = Rz_irr.Db.ir world.db and ir_b = Rz_irr.Db.ir loaded.db in
  Alcotest.(check int) "same aut-num count" (Hashtbl.length ir_a.Rz_ir.Ir.aut_nums)
    (Hashtbl.length ir_b.Rz_ir.Ir.aut_nums);
  Alcotest.(check int) "same route count" (Rz_ir.Ir.n_route_objs ir_a) (Rz_ir.Ir.n_route_objs ir_b);
  let routes d =
    List.concat_map (fun (t : Rz_bgp.Table_dump.t) -> t.routes) d
  in
  Alcotest.(check int) "same collector routes"
    (List.length (routes world.table_dumps))
    (List.length (routes loaded.table_dumps));
  (* verification produces identical aggregates on the reloaded world *)
  let agg_a, _, _ = Rpslyzer.Pipeline.verify world in
  let agg_b, _, _ = Rpslyzer.Pipeline.verify loaded in
  Alcotest.(check (list (pair string int))) "same hop classes"
    (Rz_verify.Aggregate.counts_classes (Rz_verify.Aggregate.overall agg_a))
    (Rz_verify.Aggregate.counts_classes (Rz_verify.Aggregate.overall agg_b));
  (* cleanup *)
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let suite =
  [ QCheck_alcotest.to_alcotest rule_roundtrip;
    QCheck_alcotest.to_alcotest filter_roundtrip;
    QCheck_alcotest.to_alcotest engine_total_and_deterministic;
    QCheck_alcotest.to_alcotest status_precedence_no_aut_num;
    QCheck_alcotest.to_alcotest histogram_quantile_accuracy;
    QCheck_alcotest.to_alcotest fault_parse_total;
    QCheck_alcotest.to_alcotest fault_hops_accounting;
    QCheck_alcotest.to_alcotest memo_parity_synthetic;
    QCheck_alcotest.to_alcotest memo_parity_path_regex;
    Alcotest.test_case "parse_file agrees with parse_string" `Quick test_parse_file_agrees;
    Alcotest.test_case "fold_file" `Quick test_fold_file;
    Alcotest.test_case "world save/load roundtrip" `Quick test_world_save_load_roundtrip ]
