(* Tests for the persistent IRRd query service (Rz_serve): protocol
   conformance of the shared dispatch path, admission guards at both the
   in-process and the socket layer (hostile-query corpus), live
   copy-on-write generation swaps raced by concurrent sessions, and the
   NRTM incremental==batch differential. *)

module Serve = Rz_serve.Serve
module Generation = Rz_serve.Generation
module Q = Rz_irr.Irrd_query
module Db = Rz_irr.Db
module Nrtm = Rz_synthirr.Nrtm
module Obs = Rz_obs.Obs

(* same registry as suite_irrd: a cone with a sub-set, a route-set, and
   covering/covered route pairs, so every response shape is reachable *)
let fixture =
  "aut-num: AS65001\n\
   as-name: EXAMPLE\n\
   import: from AS65002 accept AS-CONE\n\
   export: to AS65002 announce AS65001\n\
   mnt-by: MNT-EX\n\
   \n\
   as-set: AS-CONE\n\
   members: AS65001, AS-SUB\n\
   \n\
   as-set: AS-SUB\n\
   members: AS65003\n\
   \n\
   route-set: RS-NETS\n\
   members: 192.0.2.0/24^+, AS65003\n\
   \n\
   route: 192.0.2.0/24\norigin: AS65001\n\
   \n\
   route: 198.51.100.0/24\norigin: AS65001\n\
   \n\
   route: 198.51.100.0/25\norigin: AS65003\n\
   \n\
   route6: 2001:db8::/32\norigin: AS65001\n"

let db = lazy (Db.of_dumps [ ("TEST", fixture) ])

let counter name = Obs.Counter.get (Obs.Counter.make name)

(* fixtures are declared as test deps, so they sit next to the built
   executable; anchor there so dune exec from the project root works too *)
let fixture_dir =
  lazy
    (let candidates =
       [ Filename.concat (Filename.dirname Sys.executable_name) "fixtures";
         "fixtures"; Filename.concat "test" "fixtures" ]
     in
     match List.find_opt Sys.file_exists candidates with
     | Some dir -> dir
     | None -> "fixtures")

let slurp file =
  let ic = open_in_bin (Filename.concat (Lazy.force fixture_dir) file) in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

(* ---- protocol conformance: every Irrd_query response shape through
   the shared dispatch path ---- *)

let shape = function
  | Q.Data _ -> "data"
  | Q.No_data -> "no-data"
  | Q.Not_found_key -> "not-found"
  | Q.Error_resp _ -> "error"
  | Q.Quit -> "quit"

let conformance_pins =
  [ ("!gAS65001", `Payload "192.0.2.0/24 198.51.100.0/24");
    ("!6AS65001", `Payload "2001:db8::/32");
    ("!iAS-CONE", `Payload "AS65001 AS-SUB");
    ("!iAS-CONE,1", `Payload "AS65001 AS65003");
    ("!aAS-CONE", `Payload "192.0.2.0/24 198.51.100.0/24");
    ("!r198.51.100.0/25,o", `Payload "AS65003");
    ("!gAS64999", `Shape "not-found");
    ("!iAS-NOWHERE", `Shape "not-found");
    ("WHAT-IS-THIS", `Shape "not-found");
    ("", `Shape "no-data");
    ("   \t ", `Shape "no-data");
    ("!nbgpq4", `Shape "no-data");
    ("!q", `Shape "quit");
    ("!zwhatever", `Shape "error");
    ("!maut-num", `Shape "error") ]

let test_dispatch_conformance () =
  let db = Lazy.force db in
  List.iter
    (fun (query, expect) ->
      match (Serve.dispatch db query, expect) with
      | Q.Data payload, `Payload want ->
        Alcotest.(check string) query want payload
      | resp, `Payload want ->
        Alcotest.failf "%s: want data %S, got %s" query want (shape resp)
      | resp, `Shape want -> Alcotest.(check string) query want (shape resp))
    conformance_pins

let test_dispatch_matches_answer () =
  (* for clean in-protocol queries the service path adds nothing: it must
     agree with Irrd_query.answer, and session_lines with session *)
  let db = Lazy.force db in
  List.iter
    (fun (query, _) ->
      Alcotest.(check string) query
        (Q.render (Q.answer db query))
        (Q.render (Serve.dispatch db query)))
    conformance_pins;
  let lines = [ "!nbgpq4"; "!gAS65001"; "!iAS-CONE,1"; "!q"; "!gAS65001" ] in
  Alcotest.(check string) "session_lines == session" (Q.session db lines)
    (Serve.session_lines db lines)

let test_dispatch_guards () =
  Obs.enable ();
  let db = Lazy.force db in
  let expect_rejected label query =
    let before = counter "serve.queries_rejected" in
    (match Serve.dispatch db query with
    | Q.Error_resp _ -> ()
    | resp -> Alcotest.failf "%s: want error, got %s" label (shape resp));
    Alcotest.(check int) (label ^ " counted") (before + 1)
      (counter "serve.queries_rejected")
  in
  expect_rejected "oversized line" ("!i" ^ String.make 2_048 'A');
  expect_rejected "NUL byte" "!gAS1\000AS2";
  expect_rejected "CR injection" "!gAS65001\rF fake";
  expect_rejected "LF injection" "!gAS65001\nA5\nowned";
  (* the boundary itself is admissible *)
  let before = counter "serve.queries_rejected" in
  ignore (Serve.dispatch db (String.make 1_024 'x'));
  Alcotest.(check int) "max_line_bytes admissible" before
    (counter "serve.queries_rejected");
  let total_before = counter "serve.queries_total" in
  ignore (Serve.session_lines db [ "!gAS65001"; "!iAS-CONE" ]);
  Alcotest.(check int) "every query counted" (total_before + 2)
    (counter "serve.queries_total")

(* ---- the real server: socket round-trips ---- *)

let tmp_socket () =
  let path = Filename.temp_file "rz_serve" ".sock" in
  Sys.remove path;
  path

let with_server ?config ?journal store f =
  let path = tmp_socket () in
  let t = Serve.start ?config ?journal store (Serve.Socket path) in
  Fun.protect ~finally:(fun () -> Serve.stop t) @@ fun () ->
  f (Serve.Socket path)

let fixture_store = lazy (Generation.init (Db.ir (Lazy.force db)))

let test_server_roundtrip_unix () =
  let store = Lazy.force fixture_store in
  with_server store @@ fun addr ->
  Alcotest.(check string) "framed reply"
    (Q.render (Q.Data "AS65001 AS-SUB") ^ Q.render Q.Not_found_key)
    (Serve.client addr [ "!iAS-CONE"; "!gAS64999" ])

let test_server_roundtrip_tcp_ephemeral () =
  let store = Lazy.force fixture_store in
  let t = Serve.start store (Serve.Port 0) in
  Fun.protect ~finally:(fun () -> Serve.stop t) @@ fun () ->
  Alcotest.(check bool) "ephemeral port bound" true (Serve.port t > 0);
  Alcotest.(check string) "reply over tcp"
    (Q.render (Q.Data "AS65001 AS65003"))
    (Serve.client (Serve.Port (Serve.port t)) [ "!iAS-CONE,1" ]);
  Serve.stop t;
  (* stop is idempotent *)
  Serve.stop t

let test_server_journal_u () =
  Obs.enable ();
  let ops = Nrtm.generate ~seed:3 ~n:6 [ ("TEST", fixture) ] in
  Alcotest.(check bool) "journal non-empty" true (ops <> []);
  let k = max 1 (List.length ops / 2) in
  let b1 = List.filteri (fun i _ -> i < k) ops in
  let b2 = List.filteri (fun i _ -> i >= k) ops in
  let store = Generation.init (Db.ir (Lazy.force db)) in
  with_server ~journal:[ b1; b2 ] store @@ fun addr ->
  let has needle reply =
    Rz_util.Strings.split_on_string ~sep:needle reply |> List.length > 1
  in
  Alcotest.(check bool) "first !u swaps to generation 2" true
    (has "generation 2: applied" (Serve.client addr [ "!u" ]));
  Alcotest.(check bool) "second !u swaps to generation 3" true
    (has "generation 3: applied" (Serve.client addr [ "!u" ]));
  Alcotest.(check string) "drained journal -> C" "C\n"
    (Serve.client addr [ "!u" ]);
  Alcotest.(check int) "store generation" 3 (Generation.generation store);
  Alcotest.(check bool) "serial advanced" true (Generation.last_serial store > 0)

(* ---- hostile corpus through the real admission path ---- *)

let await label pred =
  let rec go tries =
    if pred () then ()
    else if tries = 0 then Alcotest.failf "%s: never observed" label
    else begin
      Unix.sleepf 0.02;
      go (tries - 1)
    end
  in
  go 150

let test_hostile_truncated () =
  Obs.enable ();
  let store = Lazy.force fixture_store in
  with_server store @@ fun addr ->
  let before = counter "serve.queries_rejected" in
  let reply = Serve.client_raw addr (slurp "query_truncated.txt") in
  Alcotest.(check string) "truncated command gets no reply" "" reply;
  await "truncated query rejected" (fun () ->
      counter "serve.queries_rejected" > before);
  (* the server is still healthy *)
  Alcotest.(check string) "next session answers"
    (Q.render (Q.Data "AS65001 AS-SUB"))
    (Serve.client addr [ "!iAS-CONE" ])

let test_hostile_pipelined_garbage () =
  Obs.enable ();
  let store = Lazy.force fixture_store in
  with_server store @@ fun addr ->
  let before = counter "serve.queries_rejected" in
  let reply = Serve.client_raw addr (slurp "query_pipelined_garbage.txt") in
  let has needle =
    Rz_util.Strings.split_on_string ~sep:needle reply |> List.length > 1
  in
  Alcotest.(check bool) "garbage answered with F" true (has "F ");
  Alcotest.(check bool) "NUL line rejected in-protocol" true
    (has "F NUL byte in query");
  Alcotest.(check bool) "pipelined valid query still answered" true
    (has "AS65001 AS-SUB");
  await "rejections counted" (fun () ->
      counter "serve.queries_rejected" >= before + 1)

let test_hostile_slowloris () =
  Obs.enable ();
  let store = Lazy.force fixture_store in
  let config = { Serve.default_config with read_timeout_ms = 250 } in
  with_server ~config store @@ fun addr ->
  let before = counter "serve.sessions_dropped" in
  let reply =
    Serve.client_raw addr ~stall_s:0.8 (slurp "query_slowloris.txt")
  in
  Alcotest.(check string) "stalled partial line gets no reply" "" reply;
  await "slowloris session dropped" (fun () ->
      counter "serve.sessions_dropped" > before);
  Alcotest.(check string) "server survives the drop"
    (Q.render (Q.Data "AS65001 AS65003"))
    (Serve.client addr [ "!iAS-CONE,1" ])

let test_admission_busy () =
  Obs.enable ();
  let store = Lazy.force fixture_store in
  let config =
    { Serve.default_config with
      workers = 1;
      max_inflight = 1;
      read_timeout_ms = 3_000 }
  in
  let path = tmp_socket () in
  let t = Serve.start ~config store (Serve.Socket path) in
  Fun.protect ~finally:(fun () -> Serve.stop t) @@ fun () ->
  let connect () =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  in
  (* occupy the single worker with a half-sent command, then fill the
     one queue slot the same way; the third connection must be refused
     at accept time *)
  let fd1 = connect () in
  ignore (Unix.write_substring fd1 "!gAS" 0 4);
  Unix.sleepf 0.4;
  let fd2 = connect () in
  ignore (Unix.write_substring fd2 "!gAS" 0 4);
  Unix.sleepf 0.4;
  let before = counter "serve.sessions_rejected" in
  let reply = Serve.client_raw (Serve.Socket path) "" in
  Alcotest.(check string) "third connection refused" "F server busy\n" reply;
  Alcotest.(check int) "refusal counted" (before + 1)
    (counter "serve.sessions_rejected");
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ fd1; fd2 ]

(* ---- live generations: soak + differential ---- *)

let small_world =
  lazy
    (let topo_params =
       { Rz_topology.Gen.default_params with
         seed = 13;
         n_tier1 = 3;
         n_mid = 12;
         n_stub = 40 }
     in
     Rpslyzer.Pipeline.build_synthetic ~topo_params ())

(* base database rebuilt sequentially from the dump texts, so both sides
   of every differential share one lowering path *)
let base_db =
  lazy (Db.of_dumps (Lazy.force small_world).Rpslyzer.Pipeline.dumps)

let chunk3 ops =
  let n = List.length ops in
  let k = max 1 ((n + 2) / 3) in
  let b1 = List.filteri (fun i _ -> i < k) ops in
  let b2 = List.filteri (fun i _ -> i >= k && i < 2 * k) ops in
  let b3 = List.filteri (fun i _ -> i >= 2 * k) ops in
  List.filter (fun b -> b <> []) [ b1; b2; b3 ]

(* Eight concurrent sessions race three live generation swaps; every
   transcript+fingerprint pair a reader observes must equal one of the
   precomputed per-generation pairs — a torn read (answers from one
   generation, content hash from another, or a half-swapped database)
   matches none of them. *)
let qcheck_soak =
  QCheck.Test.make ~count:2 ~name:"soak: 8 sessions across 3 live swaps, no torn reads"
    QCheck.(make ~print:Print.int Gen.(int_bound 9_999))
    (fun seed ->
      let world = Lazy.force small_world in
      let base = Lazy.force base_db in
      let ops = Nrtm.generate ~seed ~n:24 world.Rpslyzer.Pipeline.dumps in
      if List.length ops < 6 then
        QCheck.Test.fail_reportf "journal too small at seed %d" seed;
      let batches = chunk3 ops in
      let probes =
        [ "!r198.18.0.0/24"; "!r198.18.1.0/24"; "!gAS64511"; "!iAS-NOWHERE" ]
      in
      let observe db = (Serve.session_lines db probes, Generation.fingerprint db) in
      let shadow = Generation.init (Db.ir base) in
      let expected = ref [ observe (Generation.current shadow) ] in
      List.iter
        (fun batch ->
          ignore (Generation.apply shadow batch);
          expected := observe (Generation.current shadow) :: !expected)
        batches;
      let expected = List.rev !expected in
      let n_gens = List.length batches + 1 in
      if
        List.length (List.sort_uniq compare (List.map snd expected)) <> n_gens
      then
        QCheck.Test.fail_reportf
          "seed %d: batches did not produce %d distinct generations" seed n_gens;
      let store = Generation.init (Db.ir base) in
      let torn = Atomic.make 0 in
      let readers =
        List.init 8 (fun _ ->
            Domain.spawn (fun () ->
                let iters = ref 0 in
                let distinct = ref [] in
                while Generation.generation store < n_gens && !iters < 2_000 do
                  incr iters;
                  let got = observe (Generation.current store) in
                  if not (List.mem got expected) then Atomic.incr torn;
                  if not (List.mem (snd got) !distinct) then
                    distinct := snd got :: !distinct
                done;
                (* one more read after the last swap *)
                if not (List.mem (observe (Generation.current store)) expected)
                then Atomic.incr torn;
                List.length !distinct))
      in
      List.iter
        (fun batch ->
          Unix.sleepf 0.01;
          ignore (Generation.apply store batch))
        batches;
      let seen = List.map Domain.join readers in
      if Atomic.get torn > 0 then
        QCheck.Test.fail_reportf "seed %d: %d torn reads" seed (Atomic.get torn);
      if Generation.generation store <> n_gens then
        QCheck.Test.fail_reportf "seed %d: expected %d generations, got %d" seed
          n_gens (Generation.generation store);
      if List.for_all (fun n -> n <= 1) seen then
        QCheck.Test.fail_reportf
          "seed %d: no reader ever observed more than one generation live" seed;
      true)

(* Applying a journal as generation swaps must land on a database
   byte-identical (canonical fingerprint) to re-ingesting the post-edit
   registry from scratch. *)
let qcheck_incremental_equals_batch =
  QCheck.Test.make ~count:6 ~name:"nrtm journal: generation swaps == batch re-ingest"
    QCheck.(make ~print:Print.(pair int int) Gen.(pair (int_bound 9_999) (int_range 4 32)))
    (fun (seed, n) ->
      let world = Lazy.force small_world in
      let base = Lazy.force base_db in
      let dumps = world.Rpslyzer.Pipeline.dumps in
      let ops = Nrtm.generate ~seed ~n dumps in
      let store = Generation.init (Db.ir base) in
      List.iter (fun batch -> ignore (Generation.apply store batch)) (chunk3 ops);
      let fp_incremental = Generation.fingerprint (Generation.current store) in
      let fp_batch =
        Generation.fingerprint (Db.of_dumps (Nrtm.apply_to_dumps ops dumps))
      in
      if fp_incremental <> fp_batch then
        QCheck.Test.fail_reportf
          "fingerprints diverge at seed %d n %d (%d ops): %s vs %s" seed n
          (List.length ops) fp_incremental fp_batch;
      true)

let test_stale_ops_skipped () =
  Obs.enable ();
  let ops = Nrtm.generate ~seed:9 ~n:5 [ ("TEST", fixture) ] in
  Alcotest.(check bool) "journal non-empty" true (ops <> []);
  let store = Generation.init (Db.ir (Lazy.force db)) in
  let g1 = Generation.apply store ops in
  Alcotest.(check int) "first apply publishes" 2 g1;
  let fp1 = Generation.fingerprint (Generation.current store) in
  let stale_before = counter "nrtm.ops_stale" in
  let g2 = Generation.apply store ops in
  Alcotest.(check int) "replayed journal publishes nothing" g1 g2;
  Alcotest.(check int) "stale ops counted"
    (stale_before + List.length ops)
    (counter "nrtm.ops_stale");
  Alcotest.(check string) "content unchanged" fp1
    (Generation.fingerprint (Generation.current store))

let suite =
  [ Alcotest.test_case "dispatch conformance pins" `Quick test_dispatch_conformance;
    Alcotest.test_case "dispatch == answer on clean queries" `Quick
      test_dispatch_matches_answer;
    Alcotest.test_case "dispatch guards + counters" `Quick test_dispatch_guards;
    Alcotest.test_case "server round-trip (unix socket)" `Quick
      test_server_roundtrip_unix;
    Alcotest.test_case "server round-trip (tcp ephemeral)" `Quick
      test_server_roundtrip_tcp_ephemeral;
    Alcotest.test_case "!u applies journal batches" `Quick test_server_journal_u;
    Alcotest.test_case "hostile: truncated command" `Quick test_hostile_truncated;
    Alcotest.test_case "hostile: pipelined garbage" `Quick
      test_hostile_pipelined_garbage;
    Alcotest.test_case "hostile: slowloris" `Quick test_hostile_slowloris;
    Alcotest.test_case "admission: server busy" `Quick test_admission_busy;
    Alcotest.test_case "stale ops skipped" `Quick test_stale_ops_skipped;
    QCheck_alcotest.to_alcotest qcheck_incremental_equals_batch;
    QCheck_alcotest.to_alcotest qcheck_soak ]
