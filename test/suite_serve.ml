(* Tests for the persistent IRRd query service (Rz_serve): protocol
   conformance of the shared dispatch path, admission guards at both the
   in-process and the socket layer (hostile-query corpus), live
   copy-on-write generation swaps raced by concurrent sessions, and the
   NRTM incremental==batch differential. *)

module Serve = Rz_serve.Serve
module Generation = Rz_serve.Generation
module Q = Rz_irr.Irrd_query
module Db = Rz_irr.Db
module Nrtm = Rz_synthirr.Nrtm
module Obs = Rz_obs.Obs
module Json = Rz_json.Json

(* same registry as suite_irrd: a cone with a sub-set, a route-set, and
   covering/covered route pairs, so every response shape is reachable *)
let fixture =
  "aut-num: AS65001\n\
   as-name: EXAMPLE\n\
   import: from AS65002 accept AS-CONE\n\
   export: to AS65002 announce AS65001\n\
   mnt-by: MNT-EX\n\
   \n\
   as-set: AS-CONE\n\
   members: AS65001, AS-SUB\n\
   \n\
   as-set: AS-SUB\n\
   members: AS65003\n\
   \n\
   route-set: RS-NETS\n\
   members: 192.0.2.0/24^+, AS65003\n\
   \n\
   route: 192.0.2.0/24\norigin: AS65001\n\
   \n\
   route: 198.51.100.0/24\norigin: AS65001\n\
   \n\
   route: 198.51.100.0/25\norigin: AS65003\n\
   \n\
   route6: 2001:db8::/32\norigin: AS65001\n"

let db = lazy (Db.of_dumps [ ("TEST", fixture) ])

let counter name = Obs.Counter.get (Obs.Counter.make name)

(* fixtures are declared as test deps, so they sit next to the built
   executable; anchor there so dune exec from the project root works too *)
let fixture_dir =
  lazy
    (let candidates =
       [ Filename.concat (Filename.dirname Sys.executable_name) "fixtures";
         "fixtures"; Filename.concat "test" "fixtures" ]
     in
     match List.find_opt Sys.file_exists candidates with
     | Some dir -> dir
     | None -> "fixtures")

let slurp file =
  let ic = open_in_bin (Filename.concat (Lazy.force fixture_dir) file) in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

(* ---- protocol conformance: every Irrd_query response shape through
   the shared dispatch path ---- *)

let shape = function
  | Q.Data _ -> "data"
  | Q.No_data -> "no-data"
  | Q.Not_found_key -> "not-found"
  | Q.Error_resp _ -> "error"
  | Q.Quit -> "quit"

let conformance_pins =
  [ ("!gAS65001", `Payload "192.0.2.0/24 198.51.100.0/24");
    ("!6AS65001", `Payload "2001:db8::/32");
    ("!iAS-CONE", `Payload "AS65001 AS-SUB");
    ("!iAS-CONE,1", `Payload "AS65001 AS65003");
    ("!aAS-CONE", `Payload "192.0.2.0/24 198.51.100.0/24");
    ("!r198.51.100.0/25,o", `Payload "AS65003");
    ("!gAS64999", `Shape "not-found");
    ("!iAS-NOWHERE", `Shape "not-found");
    ("WHAT-IS-THIS", `Shape "not-found");
    ("", `Shape "no-data");
    ("   \t ", `Shape "no-data");
    ("!nbgpq4", `Shape "no-data");
    ("!q", `Shape "quit");
    ("!zwhatever", `Shape "error");
    ("!maut-num", `Shape "error") ]

let test_dispatch_conformance () =
  let db = Lazy.force db in
  List.iter
    (fun (query, expect) ->
      match (Serve.dispatch db query, expect) with
      | Q.Data payload, `Payload want ->
        Alcotest.(check string) query want payload
      | resp, `Payload want ->
        Alcotest.failf "%s: want data %S, got %s" query want (shape resp)
      | resp, `Shape want -> Alcotest.(check string) query want (shape resp))
    conformance_pins

let test_dispatch_matches_answer () =
  (* for clean in-protocol queries the service path adds nothing: it must
     agree with Irrd_query.answer, and session_lines with session *)
  let db = Lazy.force db in
  List.iter
    (fun (query, _) ->
      Alcotest.(check string) query
        (Q.render (Q.answer db query))
        (Q.render (Serve.dispatch db query)))
    conformance_pins;
  let lines = [ "!nbgpq4"; "!gAS65001"; "!iAS-CONE,1"; "!q"; "!gAS65001" ] in
  Alcotest.(check string) "session_lines == session" (Q.session db lines)
    (Serve.session_lines db lines)

let test_dispatch_guards () =
  Obs.enable ();
  let db = Lazy.force db in
  let expect_rejected label query =
    let before = counter "serve.queries_rejected" in
    (match Serve.dispatch db query with
    | Q.Error_resp _ -> ()
    | resp -> Alcotest.failf "%s: want error, got %s" label (shape resp));
    Alcotest.(check int) (label ^ " counted") (before + 1)
      (counter "serve.queries_rejected")
  in
  expect_rejected "oversized line" ("!i" ^ String.make 2_048 'A');
  expect_rejected "NUL byte" "!gAS1\000AS2";
  expect_rejected "CR injection" "!gAS65001\rF fake";
  expect_rejected "LF injection" "!gAS65001\nA5\nowned";
  (* the boundary itself is admissible *)
  let before = counter "serve.queries_rejected" in
  ignore (Serve.dispatch db (String.make 1_024 'x'));
  Alcotest.(check int) "max_line_bytes admissible" before
    (counter "serve.queries_rejected");
  let total_before = counter "serve.queries_total" in
  ignore (Serve.session_lines db [ "!gAS65001"; "!iAS-CONE" ]);
  Alcotest.(check int) "every query counted" (total_before + 2)
    (counter "serve.queries_total")

(* ---- the real server: socket round-trips ---- *)

let tmp_socket () =
  let path = Filename.temp_file "rz_serve" ".sock" in
  Sys.remove path;
  path

let with_server ?config ?journal ?access_log store f =
  let path = tmp_socket () in
  let t = Serve.start ?config ?journal ?access_log store (Serve.Socket path) in
  Fun.protect ~finally:(fun () -> Serve.stop t) @@ fun () ->
  f (Serve.Socket path)

let fixture_store = lazy (Generation.init (Db.ir (Lazy.force db)))

let test_server_roundtrip_unix () =
  let store = Lazy.force fixture_store in
  with_server store @@ fun addr ->
  Alcotest.(check string) "framed reply"
    (Q.render (Q.Data "AS65001 AS-SUB") ^ Q.render Q.Not_found_key)
    (Serve.client addr [ "!iAS-CONE"; "!gAS64999" ])

let test_server_roundtrip_tcp_ephemeral () =
  let store = Lazy.force fixture_store in
  let t = Serve.start store (Serve.Port 0) in
  Fun.protect ~finally:(fun () -> Serve.stop t) @@ fun () ->
  Alcotest.(check bool) "ephemeral port bound" true (Serve.port t > 0);
  Alcotest.(check string) "reply over tcp"
    (Q.render (Q.Data "AS65001 AS65003"))
    (Serve.client (Serve.Port (Serve.port t)) [ "!iAS-CONE,1" ]);
  Serve.stop t;
  (* stop is idempotent *)
  Serve.stop t

let test_server_journal_u () =
  Obs.enable ();
  let ops = Nrtm.generate ~seed:3 ~n:6 [ ("TEST", fixture) ] in
  Alcotest.(check bool) "journal non-empty" true (ops <> []);
  let k = max 1 (List.length ops / 2) in
  let b1 = List.filteri (fun i _ -> i < k) ops in
  let b2 = List.filteri (fun i _ -> i >= k) ops in
  let store = Generation.init (Db.ir (Lazy.force db)) in
  with_server ~journal:[ b1; b2 ] store @@ fun addr ->
  let has needle reply =
    Rz_util.Strings.split_on_string ~sep:needle reply |> List.length > 1
  in
  Alcotest.(check bool) "first !u swaps to generation 2" true
    (has "generation 2: applied" (Serve.client addr [ "!u" ]));
  Alcotest.(check bool) "second !u swaps to generation 3" true
    (has "generation 3: applied" (Serve.client addr [ "!u" ]));
  Alcotest.(check string) "drained journal -> C" "C\n"
    (Serve.client addr [ "!u" ]);
  Alcotest.(check int) "store generation" 3 (Generation.generation store);
  Alcotest.(check bool) "serial advanced" true (Generation.last_serial store > 0)

(* ---- hostile corpus through the real admission path ---- *)

let await label pred =
  let rec go tries =
    if pred () then ()
    else if tries = 0 then Alcotest.failf "%s: never observed" label
    else begin
      Unix.sleepf 0.02;
      go (tries - 1)
    end
  in
  go 150

let test_hostile_truncated () =
  Obs.enable ();
  let store = Lazy.force fixture_store in
  with_server store @@ fun addr ->
  let before = counter "serve.queries_rejected" in
  let reply = Serve.client_raw addr (slurp "query_truncated.txt") in
  Alcotest.(check string) "truncated command gets no reply" "" reply;
  await "truncated query rejected" (fun () ->
      counter "serve.queries_rejected" > before);
  (* the server is still healthy *)
  Alcotest.(check string) "next session answers"
    (Q.render (Q.Data "AS65001 AS-SUB"))
    (Serve.client addr [ "!iAS-CONE" ])

let test_hostile_pipelined_garbage () =
  Obs.enable ();
  let store = Lazy.force fixture_store in
  with_server store @@ fun addr ->
  let before = counter "serve.queries_rejected" in
  let reply = Serve.client_raw addr (slurp "query_pipelined_garbage.txt") in
  let has needle =
    Rz_util.Strings.split_on_string ~sep:needle reply |> List.length > 1
  in
  Alcotest.(check bool) "garbage answered with F" true (has "F ");
  Alcotest.(check bool) "NUL line rejected in-protocol" true
    (has "F NUL byte in query");
  Alcotest.(check bool) "pipelined valid query still answered" true
    (has "AS65001 AS-SUB");
  await "rejections counted" (fun () ->
      counter "serve.queries_rejected" >= before + 1)

let test_hostile_slowloris () =
  Obs.enable ();
  let store = Lazy.force fixture_store in
  let config = { Serve.default_config with read_timeout_ms = 250 } in
  with_server ~config store @@ fun addr ->
  let before = counter "serve.sessions_dropped" in
  let reply =
    Serve.client_raw addr ~stall_s:0.8 (slurp "query_slowloris.txt")
  in
  Alcotest.(check string) "stalled partial line gets no reply" "" reply;
  await "slowloris session dropped" (fun () ->
      counter "serve.sessions_dropped" > before);
  Alcotest.(check string) "server survives the drop"
    (Q.render (Q.Data "AS65001 AS65003"))
    (Serve.client addr [ "!iAS-CONE,1" ])

let test_admission_busy () =
  Obs.enable ();
  let store = Lazy.force fixture_store in
  let config =
    { Serve.default_config with
      workers = 1;
      max_inflight = 1;
      read_timeout_ms = 3_000 }
  in
  let path = tmp_socket () in
  let t = Serve.start ~config store (Serve.Socket path) in
  Fun.protect ~finally:(fun () -> Serve.stop t) @@ fun () ->
  let connect () =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  in
  (* occupy the single worker with a half-sent command, then fill the
     one queue slot the same way; the third connection must be refused
     at accept time *)
  let fd1 = connect () in
  ignore (Unix.write_substring fd1 "!gAS" 0 4);
  Unix.sleepf 0.4;
  let fd2 = connect () in
  ignore (Unix.write_substring fd2 "!gAS" 0 4);
  Unix.sleepf 0.4;
  let before = counter "serve.sessions_rejected" in
  let reply = Serve.client_raw (Serve.Socket path) "" in
  Alcotest.(check string) "third connection refused" "F server busy\n" reply;
  Alcotest.(check int) "refusal counted" (before + 1)
    (counter "serve.sessions_rejected");
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ fd1; fd2 ]

(* ---- live generations: soak + differential ---- *)

let small_world =
  lazy
    (let topo_params =
       { Rz_topology.Gen.default_params with
         seed = 13;
         n_tier1 = 3;
         n_mid = 12;
         n_stub = 40 }
     in
     Rpslyzer.Pipeline.build_synthetic ~topo_params ())

(* base database rebuilt sequentially from the dump texts, so both sides
   of every differential share one lowering path *)
let base_db =
  lazy (Db.of_dumps (Lazy.force small_world).Rpslyzer.Pipeline.dumps)

let chunk3 ops =
  let n = List.length ops in
  let k = max 1 ((n + 2) / 3) in
  let b1 = List.filteri (fun i _ -> i < k) ops in
  let b2 = List.filteri (fun i _ -> i >= k && i < 2 * k) ops in
  let b3 = List.filteri (fun i _ -> i >= 2 * k) ops in
  List.filter (fun b -> b <> []) [ b1; b2; b3 ]

(* Eight concurrent sessions race three live generation swaps; every
   transcript+fingerprint pair a reader observes must equal one of the
   precomputed per-generation pairs — a torn read (answers from one
   generation, content hash from another, or a half-swapped database)
   matches none of them. *)
let qcheck_soak =
  QCheck.Test.make ~count:2 ~name:"soak: 8 sessions across 3 live swaps, no torn reads"
    QCheck.(make ~print:Print.int Gen.(int_bound 9_999))
    (fun seed ->
      let world = Lazy.force small_world in
      let base = Lazy.force base_db in
      let ops = Nrtm.generate ~seed ~n:24 world.Rpslyzer.Pipeline.dumps in
      if List.length ops < 6 then
        QCheck.Test.fail_reportf "journal too small at seed %d" seed;
      let batches = chunk3 ops in
      let probes =
        [ "!r198.18.0.0/24"; "!r198.18.1.0/24"; "!gAS64511"; "!iAS-NOWHERE" ]
      in
      let observe db = (Serve.session_lines db probes, Generation.fingerprint db) in
      let shadow = Generation.init (Db.ir base) in
      let expected = ref [ observe (Generation.current shadow) ] in
      List.iter
        (fun batch ->
          ignore (Generation.apply shadow batch);
          expected := observe (Generation.current shadow) :: !expected)
        batches;
      let expected = List.rev !expected in
      let n_gens = List.length batches + 1 in
      if
        List.length (List.sort_uniq compare (List.map snd expected)) <> n_gens
      then
        QCheck.Test.fail_reportf
          "seed %d: batches did not produce %d distinct generations" seed n_gens;
      let store = Generation.init (Db.ir base) in
      let torn = Atomic.make 0 in
      (* Each swap waits until some reader has completed a read since the
         previous swap (bounded, so a reader crash cannot wedge the
         writer) — otherwise a loaded single-core host can apply every
         batch before any reader iterates, and the "observed more than
         one generation" liveness check below flakes. *)
      let reads = Atomic.make 0 in
      let readers =
        List.init 8 (fun _ ->
            Domain.spawn (fun () ->
                let iters = ref 0 in
                let distinct = ref [] in
                while Generation.generation store < n_gens && !iters < 2_000 do
                  incr iters;
                  let got = observe (Generation.current store) in
                  Atomic.incr reads;
                  if not (List.mem got expected) then Atomic.incr torn;
                  if not (List.mem (snd got) !distinct) then
                    distinct := snd got :: !distinct
                done;
                (* one more read after the last swap *)
                let last = observe (Generation.current store) in
                if not (List.mem last expected) then Atomic.incr torn;
                if not (List.mem (snd last) !distinct) then
                  distinct := snd last :: !distinct;
                List.length !distinct))
      in
      List.iter
        (fun batch ->
          let mark = Atomic.get reads in
          let waited = ref 0 in
          while Atomic.get reads <= mark && !waited < 5_000 do
            incr waited;
            Unix.sleepf 0.002
          done;
          ignore (Generation.apply store batch))
        batches;
      let seen = List.map Domain.join readers in
      if Atomic.get torn > 0 then
        QCheck.Test.fail_reportf "seed %d: %d torn reads" seed (Atomic.get torn);
      if Generation.generation store <> n_gens then
        QCheck.Test.fail_reportf "seed %d: expected %d generations, got %d" seed
          n_gens (Generation.generation store);
      if List.for_all (fun n -> n <= 1) seen then
        QCheck.Test.fail_reportf
          "seed %d: no reader ever observed more than one generation live" seed;
      true)

(* Applying a journal as generation swaps must land on a database
   byte-identical (canonical fingerprint) to re-ingesting the post-edit
   registry from scratch. *)
let qcheck_incremental_equals_batch =
  QCheck.Test.make ~count:6 ~name:"nrtm journal: generation swaps == batch re-ingest"
    QCheck.(make ~print:Print.(pair int int) Gen.(pair (int_bound 9_999) (int_range 4 32)))
    (fun (seed, n) ->
      let world = Lazy.force small_world in
      let base = Lazy.force base_db in
      let dumps = world.Rpslyzer.Pipeline.dumps in
      let ops = Nrtm.generate ~seed ~n dumps in
      let store = Generation.init (Db.ir base) in
      List.iter (fun batch -> ignore (Generation.apply store batch)) (chunk3 ops);
      let fp_incremental = Generation.fingerprint (Generation.current store) in
      let fp_batch =
        Generation.fingerprint (Db.of_dumps (Nrtm.apply_to_dumps ops dumps))
      in
      if fp_incremental <> fp_batch then
        QCheck.Test.fail_reportf
          "fingerprints diverge at seed %d n %d (%d ops): %s vs %s" seed n
          (List.length ops) fp_incremental fp_batch;
      true)

(* ---- live telemetry: !s scrapes, access-log differential ---- *)

(* Unwrap a one-query Data reply: "A<len>\n<payload>..." -> payload. *)
let unframe reply =
  match String.index_opt reply '\n' with
  | Some i when String.length reply > 1 && reply.[0] = 'A' -> (
    match int_of_string_opt (String.sub reply 1 (i - 1)) with
    | Some len when String.length reply >= i + 1 + len ->
      String.sub reply (i + 1) len
    | _ -> Alcotest.failf "bad data frame: %S" reply)
  | _ -> Alcotest.failf "not a data frame: %S" reply

let scrape addr =
  let payload = unframe (Serve.client addr [ "!s" ]) in
  match Obs.parse_prometheus payload with
  | Ok samples -> samples
  | Error e -> Alcotest.failf "!s exposition does not parse: %s\n%s" e payload

let sample name samples =
  match
    List.find_opt (fun (s : Obs.prom_sample) -> s.Obs.p_name = name) samples
  with
  | Some s -> s.Obs.p_value
  | None -> Alcotest.failf "!s exposition lacks sample %s" name

(* One poller scrapes !s continuously while a second session drives three
   live generation swaps: every exposition must strict-parse, cumulative
   counters must be monotone across polls, and the post-swap scrape must
   report the new serial — no torn scrape under churn. *)
let test_scrape_soak_under_swaps () =
  Obs.enable ();
  let world = Lazy.force small_world in
  let base = Lazy.force base_db in
  let ops = Nrtm.generate ~seed:55 ~n:24 world.Rpslyzer.Pipeline.dumps in
  let batches = chunk3 ops in
  Alcotest.(check int) "three batches" 3 (List.length batches);
  let n_gens = List.length batches + 1 in
  let store = Generation.init (Db.ir base) in
  with_server ~journal:batches store @@ fun addr ->
  (* Swap i waits for the poller's (i+1)-th scrape, so every swap lands
     between two polls no matter how the scheduler interleaves the
     domains (a plain sleep let loaded machines finish all swaps inside
     the first scrape). The wait is bounded so a poller crash cannot
     wedge the join in Fun.protect. *)
  let poll_count = Atomic.make 0 in
  let swapper =
    Domain.spawn (fun () ->
        List.iteri
          (fun i _ ->
            let waited = ref 0 in
            while Atomic.get poll_count <= i && !waited < 5_000 do
              incr waited;
              Unix.sleepf 0.002
            done;
            ignore (Serve.client addr [ "!u" ]))
          batches)
  in
  Fun.protect ~finally:(fun () -> Domain.join swapper) @@ fun () ->
  let polls = ref 0 in
  let last_queries = ref 0.0 in
  let gens_seen = ref [] in
  while Generation.generation store < n_gens && !polls < 500 do
    incr polls;
    Atomic.incr poll_count;
    let samples = scrape addr in
    let queries = sample "serve_queries_total" samples in
    if queries < !last_queries then
      Alcotest.failf "serve_queries_total went backwards: %g -> %g"
        !last_queries queries;
    last_queries := queries;
    let gen = sample "serve_generation" samples in
    if not (List.mem gen !gens_seen) then gens_seen := gen :: !gens_seen
  done;
  Alcotest.(check bool) "polled while swapping" true (!polls >= 3);
  Alcotest.(check int) "all generations published" n_gens
    (Generation.generation store);
  (* the scrape that follows the last swap reports it *)
  let samples = scrape addr in
  Alcotest.(check (float 0.0)) "post-swap generation"
    (float_of_int n_gens) (sample "serve_generation" samples);
  Alcotest.(check (float 0.0)) "post-swap serial"
    (float_of_int (Generation.last_serial store))
    (sample "serve_serial" samples);
  Alcotest.(check bool) "final serial advanced" true
    (Generation.last_serial store > 0)

(* Acceptance differential: the !s windowed qps and rolling p50/p99 must
   match an offline recomputation from the structured access log, within
   histogram bucket error, with three generation swaps mid-run. Every
   dispatched query (including !q and earlier !s scrapes) is windowed
   with exactly the latency the access log records; !u is handled
   outside dispatch (logged, not windowed); the final scrape's own
   observation lands after its exposition is built, so the offline set
   is every record written before it. *)
let test_scrape_matches_access_log () =
  Obs.enable ();
  Obs.reset ();
  let world = Lazy.force small_world in
  let base = Lazy.force base_db in
  let ops = Nrtm.generate ~seed:77 ~n:24 world.Rpslyzer.Pipeline.dumps in
  let batches = chunk3 ops in
  Alcotest.(check int) "three batches" 3 (List.length batches);
  let log_path = Filename.temp_file "rz_access" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove log_path with Sys_error _ -> ())
  @@ fun () ->
  let alog = Rz_serve.Access_log.create log_path in
  let store = Generation.init (Db.ir base) in
  let final_scrape =
    Fun.protect ~finally:(fun () -> Rz_serve.Access_log.close alog) @@ fun () ->
    with_server ~journal:batches ~access_log:alog store @@ fun addr ->
    ignore (Serve.client addr [ "!gAS64500"; "!r198.18.0.0/24" ]);
    ignore (Serve.client addr [ "!u" ]);
    ignore (Serve.client addr [ "!s" ]);
    ignore (Serve.client addr [ "!iAS-NOWHERE"; "!gAS64501" ]);
    ignore (Serve.client addr [ "!u" ]);
    ignore (Serve.client addr [ "!aAS-NOWHERE" ]);
    ignore (Serve.client addr [ "!u" ]);
    Alcotest.(check int) "three swaps mid-run" 4 (Generation.generation store);
    scrape addr
  in
  (* offline recomputation from the flushed access log *)
  let records =
    let ic = open_in log_path in
    Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
    let rec go acc =
      match input_line ic with
      | line -> (
        match Json.of_string line with
        | Ok doc -> go (doc :: acc)
        | Error e -> Alcotest.failf "access record does not parse: %s: %s" e line)
      | exception End_of_file -> List.rev acc
    in
    go []
  in
  let str doc key =
    match Json.member key doc with
    | Some (Json.String s) -> s
    | _ -> Alcotest.failf "access record lacks string %S" key
  in
  let int_field doc key =
    match Json.member key doc with
    | Some (Json.Int n) -> n
    | _ -> Alcotest.failf "access record lacks int %S" key
  in
  Alcotest.(check bool) "log has records" true (records <> []);
  Alcotest.(check bool) "every !u logged" true
    (List.length (List.filter (fun r -> str r "query" = "!u") records) = 3);
  (* records written before the final !s: everything the scrape's window
     had seen. Sessions are sequential, the writer queue is FIFO, so log
     order is dispatch order. *)
  let last_s =
    let rec find i best = function
      | [] -> best
      | r :: rest ->
        find (i + 1) (if str r "query" = "!s" then i else best) rest
    in
    find 0 (-1) records
  in
  Alcotest.(check bool) "final !s logged" true (last_s >= 0);
  let windowed =
    List.filteri (fun i _ -> i < last_s) records
    |> List.filter (fun r ->
           str r "query" <> "!u" && Json.member "rejected" r = None)
  in
  let scratch = Obs.Histogram.make "test.accesslog.recompute" in
  List.iter
    (fun r -> Obs.Histogram.observe scratch (float_of_int (int_field r "latency_ns")))
    windowed;
  let n = List.length windowed in
  Alcotest.(check (float 0.0)) "windowed count = access-log recomputation"
    (float_of_int n)
    (sample "serve_query_window_window_count" final_scrape);
  let span_s = sample "serve_query_window_window_span_seconds" final_scrape in
  Alcotest.(check (float 1e-9)) "windowed qps = count / span"
    (float_of_int n /. span_s)
    (sample "serve_query_window_window_rate" final_scrape);
  (* same bucket math on both sides: quantiles agree within one log
     bucket (the histogram bucket error bound) *)
  let g = Obs.Histogram.gamma scratch in
  let check_quantile label q prom_name =
    let offline = Obs.Histogram.quantile scratch q in
    let live = sample prom_name final_scrape in
    Alcotest.(check bool)
      (Printf.sprintf "%s within bucket error (offline %g, live %g)" label
         offline live)
      true
      (live >= offline /. g && live <= offline *. g)
  in
  check_quantile "rolling p50" 0.5 "serve_query_window_window_p50";
  check_quantile "rolling p99" 0.99 "serve_query_window_window_p99";
  Alcotest.(check (float 0.0)) "no access records dropped" 0.0
    (sample "obs_accesslog_dropped" final_scrape)

let test_stale_ops_skipped () =
  Obs.enable ();
  let ops = Nrtm.generate ~seed:9 ~n:5 [ ("TEST", fixture) ] in
  Alcotest.(check bool) "journal non-empty" true (ops <> []);
  let store = Generation.init (Db.ir (Lazy.force db)) in
  let g1 = Generation.apply store ops in
  Alcotest.(check int) "first apply publishes" 2 g1;
  let fp1 = Generation.fingerprint (Generation.current store) in
  let stale_before = counter "nrtm.ops_stale" in
  let g2 = Generation.apply store ops in
  Alcotest.(check int) "replayed journal publishes nothing" g1 g2;
  Alcotest.(check int) "stale ops counted"
    (stale_before + List.length ops)
    (counter "nrtm.ops_stale");
  Alcotest.(check string) "content unchanged" fp1
    (Generation.fingerprint (Generation.current store))

let suite =
  [ Alcotest.test_case "dispatch conformance pins" `Quick test_dispatch_conformance;
    Alcotest.test_case "dispatch == answer on clean queries" `Quick
      test_dispatch_matches_answer;
    Alcotest.test_case "dispatch guards + counters" `Quick test_dispatch_guards;
    Alcotest.test_case "server round-trip (unix socket)" `Quick
      test_server_roundtrip_unix;
    Alcotest.test_case "server round-trip (tcp ephemeral)" `Quick
      test_server_roundtrip_tcp_ephemeral;
    Alcotest.test_case "!u applies journal batches" `Quick test_server_journal_u;
    Alcotest.test_case "hostile: truncated command" `Quick test_hostile_truncated;
    Alcotest.test_case "hostile: pipelined garbage" `Quick
      test_hostile_pipelined_garbage;
    Alcotest.test_case "hostile: slowloris" `Quick test_hostile_slowloris;
    Alcotest.test_case "admission: server busy" `Quick test_admission_busy;
    Alcotest.test_case "stale ops skipped" `Quick test_stale_ops_skipped;
    Alcotest.test_case "!s soak across live swaps" `Quick
      test_scrape_soak_under_swaps;
    Alcotest.test_case "!s matches access-log recomputation" `Quick
      test_scrape_matches_access_log;
    QCheck_alcotest.to_alcotest qcheck_incremental_equals_batch;
    QCheck_alcotest.to_alcotest qcheck_soak ]
