(* Differential and golden tests for the parallel ingestion layer
   (Rz_ingest) and the IR snapshot cache (Rz_ir.Ir_snapshot).

   The contract under test is byte-identity: for any input and any
   domain count, [Ingest.ingest] must produce an IR whose Ir_json export
   equals the sequential oracle's ([Ingest.ingest_sequential], i.e. the
   [Db.of_dumps] lowering loop) — including the error list and the
   inter-IRR first-definition-wins winners. Snapshots must round-trip
   byte-stably and a valid-looking-but-stale snapshot must miss, never
   serve wrong data. The on-disk fixture corpus exercises the reader on
   real files: every persona, CRLF endings, continuation folding, and
   injected syntax errors. *)

module Ingest = Rz_ingest.Ingest
module Reader = Rz_rpsl.Reader
module Snapshot = Rz_ir.Ir_snapshot
module Obs = Rz_obs.Obs
module Gen = QCheck.Gen

let export ir = Rz_ir.Ir_json.export_string ir

let world_dumps =
  lazy
    (let topo_params =
       { Rz_topology.Gen.default_params with seed = 21; n_tier1 = 2; n_mid = 10; n_stub = 35 }
     in
     (Rpslyzer.Pipeline.build_synthetic ~topo_params ()).dumps)

(* ---- differential parity: parallel vs the sequential oracle ---- *)

let test_parity_clean_world () =
  let dumps = Lazy.force world_dumps in
  Alcotest.(check int) "13-IRR world" 13 (List.length dumps);
  let oracle = export (Ingest.ingest_sequential dumps) in
  List.iter
    (fun domains ->
      let got = export (Ingest.ingest ~domains ~force_domains:true dumps) in
      Alcotest.(check bool)
        (Printf.sprintf "byte-identical at %d forced domains" domains)
        true (String.equal got oracle))
    [ 1; 2; 4 ]

let test_parity_error_lists () =
  (* structural parity of the lowering-error list, not just its JSON *)
  let plan = Rz_fault.Fault.plan ~seed:31 ~rate:0.25 () in
  let dumps, _ = Rz_fault.Fault.corrupt_dumps plan (Lazy.force world_dumps) in
  let seq = Ingest.ingest_sequential dumps in
  let par = Ingest.ingest ~domains:4 ~force_domains:true dumps in
  Alcotest.(check bool) "corruption produced lowering errors" true (seq.errors <> []);
  Alcotest.(check bool) "error lists structurally equal" true (par.errors = seq.errors);
  (* interned ids are deterministic (first-seen order matches the
     sequential lowering), so raw route records — ids included — must
     agree, and so must the strings the ids resolve to *)
  let witness (ir : Rz_ir.Ir.t) =
    Rz_ir.Ir.fold_routes ir ~init:[] ~f:(fun acc r ->
        ( r,
          Rz_ir.Ir.route_member_of ir r,
          Rz_ir.Ir.route_mnt_by ir r,
          Rz_ir.Ir.route_source ir r )
        :: acc)
  in
  Alcotest.(check bool) "route lists structurally equal" true
    (witness par = witness seq)

let gen_fault_plan =
  Gen.map2
    (fun seed rate -> Rz_fault.Fault.plan ~seed ~rate:(float_of_int rate /. 100.) ())
    (Gen.int_range 0 10_000) (Gen.int_range 0 50)

let parity_under_corruption =
  QCheck.Test.make ~count:12 ~name:"parallel = sequential on corrupted worlds"
    (QCheck.make gen_fault_plan) (fun plan ->
      let dumps, _ = Rz_fault.Fault.corrupt_dumps plan (Lazy.force world_dumps) in
      let oracle = export (Ingest.ingest_sequential dumps) in
      List.for_all
        (fun domains ->
          String.equal oracle
            (export (Ingest.ingest ~domains ~force_domains:true dumps)))
        [ 2; 4 ])

let test_parity_under_domain_crash () =
  (* crash every forced domain in both parallel phases: the sequential
     sweep must reproduce the oracle exactly *)
  let dumps = Lazy.force world_dumps in
  let oracle = export (Ingest.ingest_sequential dumps) in
  let crashed =
    Ingest.ingest ~domains:4 ~force_domains:true
      ~inject_domain_fault:(fun _ -> failwith "injected crash")
      dumps
  in
  Alcotest.(check bool) "all-domain crash still byte-identical" true
    (String.equal oracle (export crashed))

(* ---- merge priority: inter-IRR first-definition-wins ---- *)

let test_merge_priority_winners () =
  let dump_a =
    "aut-num: AS64500\nas-name: FROM-ALPHA\nimport: from AS64501 accept ANY\n\n\
     as-set: AS-DUP\nmembers: AS64500\n\n\
     filter-set: FLTR-DUP\nfilter: <^AS64500[*^+>\n" (* unlowerable: key stays open *)
  in
  let dump_b =
    "aut-num: AS64500\nas-name: FROM-BETA\n\n\
     as-set: AS-DUP\nmembers: AS64501, AS64502\n\n\
     filter-set: FLTR-DUP\nfilter: { 192.0.2.0/24 }\n\n\
     route: 192.0.2.0/24\norigin: AS64500\n"
  in
  let dumps = [ ("ALPHA", dump_a); ("BETA", dump_b) ] in
  let check ir tag =
    (match Rz_ir.Ir.find_aut_num ir 64500 with
     | None -> Alcotest.failf "%s: AS64500 missing" tag
     | Some a ->
       Alcotest.(check string) (tag ^ ": first definition wins") "FROM-ALPHA" a.as_name;
       Alcotest.(check string) (tag ^ ": winner source") "ALPHA" a.source);
    (match Rz_ir.Ir.find_as_set ir "AS-DUP" with
     | None -> Alcotest.failf "%s: AS-DUP missing" tag
     | Some s ->
       Alcotest.(check (list int)) (tag ^ ": alpha member list wins") [ 64500 ] s.member_asns);
    (* the unlowerable ALPHA filter-set left its key unclaimed, so the
       later lowerable BETA definition is admitted — the sequential gate
       behaves the same way *)
    match Rz_ir.Ir.find_filter_set ir "FLTR-DUP" with
    | None -> Alcotest.failf "%s: FLTR-DUP missing" tag
    | Some f -> Alcotest.(check string) (tag ^ ": lowerable definition wins") "BETA" f.source
  in
  let seq = Ingest.ingest_sequential dumps in
  let par = Ingest.ingest ~domains:2 ~force_domains:true dumps in
  check seq "seq";
  check par "par";
  Alcotest.(check bool) "byte-identical" true (String.equal (export seq) (export par))

(* ---- scanner vs reference parser ---- *)

let result_fingerprint (r : Reader.result_t) =
  ( List.map
      (fun (o : Rz_rpsl.Obj.t) ->
        (o.cls, o.name, o.line, List.map (fun (a : Rz_rpsl.Attr.t) -> (a.key, a.value)) o.attrs))
      r.objects,
    List.map (fun (e : Reader.error) -> (e.line, e.reason)) r.errors )

let scan_equals_parse =
  QCheck.Test.make ~count:20 ~name:"scan_string = parse_string on corrupted dumps"
    (QCheck.make gen_fault_plan) (fun plan ->
      List.for_all
        (fun (_, text) ->
          let corrupted, _ = Rz_fault.Fault.corrupt_dump plan text in
          result_fingerprint (Reader.scan_string corrupted)
          = result_fingerprint (Reader.parse_string corrupted))
        (Lazy.force world_dumps))

(* ---- fast-path rule parser vs the reference lowering ---- *)

let fast_parser_parity =
  (* generated aut-nums spanning the fast parser's domain (simple
     from/to + word filter, with and without afi) plus shapes it must
     decline (actions, compound peerings, parenthesised filters): the
     end-to-end IR must not depend on which parser ran *)
  let gen_rule =
    Gen.map3
      (fun dir peer (afi, filt) ->
        let kw, kw2 = if dir then ("import", "accept") else ("export", "announce") in
        Printf.sprintf "%s: %sfrom AS%d %s %s" kw afi peer kw2 filt)
      Gen.bool
      (Gen.int_range 64500 64520)
      (Gen.pair
         (Gen.oneofl [ ""; "afi ipv4.unicast "; "afi ipv6.unicast " ])
         (Gen.oneofl
            [ "ANY"; "AS-FIXTURE"; "AS64501"; "PeerAS"; "RS-TEST";
              "{ 192.0.2.0/24 }"; "AS64501 AND NOT AS64502"; "<^AS64501+$>" ]))
  in
  QCheck.Test.make ~count:60 ~name:"fast rule parser = reference lowering"
    (QCheck.make (Gen.list_size (Gen.int_range 1 8) gen_rule))
    (fun rules ->
      let dump =
        "aut-num: AS64499\nas-name: GEN\n" ^ String.concat "\n" rules ^ "\n"
      in
      let dumps = [ ("GEN", dump) ] in
      String.equal
        (export (Ingest.ingest_sequential dumps))
        (export (Ingest.ingest ~domains:2 ~force_domains:true dumps)))

(* ---- snapshot cache ---- *)

let with_temp_snapshot f =
  let path = Filename.temp_file "rz_test_snapshot" ".snap" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) @@ fun () ->
  f path

let test_snapshot_roundtrip_bytes () =
  let dumps = Lazy.force world_dumps in
  let ir = Ingest.ingest_sequential dumps in
  let digest = Ingest.dumps_digest dumps in
  let bytes1 = Snapshot.encode ~input_digest:digest ir in
  with_temp_snapshot @@ fun path ->
  Snapshot.save path ~input_digest:digest ir;
  let on_disk =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  Alcotest.(check bool) "save writes exactly encode's bytes" true
    (String.equal bytes1 on_disk);
  match Snapshot.load path with
  | Error e -> Alcotest.failf "load rejected a fresh snapshot: %s" e
  | Ok (d, ir2) ->
    Alcotest.(check bool) "digest round-trips" true (String.equal d digest);
    Alcotest.(check bool) "IR round-trips byte-identically" true
      (String.equal (export ir) (export ir2));
    (* golden stability: save -> load -> re-save is a fixpoint *)
    Alcotest.(check bool) "re-encode is byte-stable" true
      (String.equal bytes1 (Snapshot.encode ~input_digest:d ir2))

let test_snapshot_hit_miss_counters () =
  let dumps = Lazy.force world_dumps in
  with_temp_snapshot @@ fun path ->
  Sys.remove path;
  Obs.enable ();
  Obs.reset ();
  let hits = Obs.Counter.make "snapshot.hits" in
  let misses = Obs.Counter.make "snapshot.misses" in
  Fun.protect ~finally:(fun () -> Obs.disable (); Obs.reset ()) @@ fun () ->
  let cold = Ingest.ingest_cached ~snapshot:path dumps in
  Alcotest.(check int) "first run misses" 1 (Obs.Counter.get misses);
  Alcotest.(check int) "no hit yet" 0 (Obs.Counter.get hits);
  Alcotest.(check bool) "snapshot written" true (Sys.file_exists path);
  let warm = Ingest.ingest_cached ~snapshot:path dumps in
  Alcotest.(check int) "second run hits" 1 (Obs.Counter.get hits);
  Alcotest.(check bool) "hit equals cold IR" true
    (String.equal (export cold) (export warm));
  (* a valid snapshot for different input is stale: miss + rewrite *)
  let other = ("EXTRA", "aut-num: AS64599\nas-name: STALE\n") :: dumps in
  let fresh = Ingest.ingest_cached ~snapshot:path other in
  Alcotest.(check int) "stale snapshot misses" 2 (Obs.Counter.get misses);
  Alcotest.(check bool) "stale miss reparses, never serves old IR" true
    (String.equal (export fresh) (export (Ingest.ingest_sequential other)));
  let warm2 = Ingest.ingest_cached ~snapshot:path other in
  Alcotest.(check int) "rewrite makes the new input hit" 2 (Obs.Counter.get hits);
  ignore warm2

(* ---- on-disk fixture corpus ---- *)

(* fixtures are declared as test deps, so they sit next to the built
   executable; anchor there so dune exec from the project root works too *)
let fixture_dir =
  lazy
    (let candidates =
       [ Filename.concat (Filename.dirname Sys.executable_name) "fixtures";
         "fixtures"; Filename.concat "test" "fixtures" ]
     in
     match List.find_opt Sys.file_exists candidates with
     | Some dir -> dir
     | None -> "fixtures")

let fixture path = Filename.concat (Lazy.force fixture_dir) path

(* expectations per fixture: (file, objects, errors, class of first object) *)
let fixture_table =
  [ ("01_autnum_basic.rpsl", 1, 0, "aut-num");
    ("02_autnum_multiprotocol.rpsl", 1, 0, "aut-num");
    ("03_as_set_crlf.rpsl", 2, 0, "as-set");
    ("04_route_set.rpsl", 2, 0, "route-set");
    ("05_routes.rpsl", 3, 0, "route");
    ("06_mntner.rpsl", 1, 0, "mntner");
    ("07_filter_peering_sets.rpsl", 2, 0, "filter-set");
    ("08_inet_rtr.rpsl", 2, 0, "inet-rtr");
    ("09_continuations.rpsl", 1, 0, "aut-num");
    ("10_syntax_error.rpsl", 1, 2, "aut-num") ]

let test_fixture_corpus () =
  List.iter
    (fun (file, n_objects, n_errors, cls) ->
      let r = Reader.parse_file (fixture file) in
      Alcotest.(check int) (file ^ ": object count") n_objects (List.length r.objects);
      Alcotest.(check int) (file ^ ": error count") n_errors (List.length r.errors);
      match r.objects with
      | [] -> Alcotest.failf "%s: no objects parsed" file
      | (o : Rz_rpsl.Obj.t) :: _ -> Alcotest.(check string) (file ^ ": class") cls o.cls)
    fixture_table

let read_fixture file =
  let ic = open_in_bin (fixture file) in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_fixture_file_equals_string () =
  (* parse_file, parse_string and scan_string agree on every fixture —
     including the CRLF one, whose \r must vanish in both paths *)
  List.iter
    (fun (file, _, _, _) ->
      let text = read_fixture file in
      let from_file = result_fingerprint (Reader.parse_file (fixture file)) in
      Alcotest.(check bool) (file ^ ": parse_file = parse_string") true
        (from_file = result_fingerprint (Reader.parse_string text));
      Alcotest.(check bool) (file ^ ": parse_file = scan_string") true
        (from_file = result_fingerprint (Reader.scan_string text)))
    fixture_table

let test_fixture_crlf_values_clean () =
  let r = Reader.parse_file (fixture "03_as_set_crlf.rpsl") in
  List.iter
    (fun (o : Rz_rpsl.Obj.t) ->
      List.iter
        (fun (a : Rz_rpsl.Attr.t) ->
          Alcotest.(check bool) (a.key ^ " value carries no CR") false
            (String.contains a.value '\r'))
        o.attrs)
    r.objects;
  match r.objects with
  | (o : Rz_rpsl.Obj.t) :: _ ->
    Alcotest.(check string) "folded member list" "AS64500, AS64510,\nAS64520"
      (Rz_rpsl.Obj.value o "members" |> Option.value ~default:"")
  | [] -> Alcotest.fail "CRLF fixture parsed no objects"

let test_fixture_corpus_ingest_parity () =
  (* the corpus as a 10-IRR world: parallel = sequential on real files *)
  let dumps = List.map (fun (file, _, _, _) -> (file, read_fixture file)) fixture_table in
  let oracle = export (Ingest.ingest_sequential dumps) in
  Alcotest.(check bool) "fixture world byte-identical" true
    (String.equal oracle (export (Ingest.ingest ~domains:3 ~force_domains:true dumps)))

let test_truncated_file_keeps_partial () =
  (* cut a fixture mid-object (no trailing newline, mid-attribute): every
     whole line parsed before the cut must survive, and the partial
     trailing object must still be flushed *)
  let text = read_fixture "01_autnum_basic.rpsl" in
  let cut =
    match String.index_from_opt text (String.length text / 2) '\n' with
    | Some i -> String.sub text 0 (i + 5) (* ends mid-line *)
    | None -> Alcotest.fail "fixture too small to truncate"
  in
  let path = Filename.temp_file "rz_truncated" ".rpsl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out_bin path in
  output_string oc cut;
  close_out oc;
  let r = Reader.parse_file path in
  Alcotest.(check int) "partial object flushed" 1 (List.length r.objects);
  let o = List.hd r.objects in
  Alcotest.(check string) "still the aut-num" "aut-num" o.Rz_rpsl.Obj.cls;
  Alcotest.(check bool) "keeps the attrs before the cut" true
    (List.length o.Rz_rpsl.Obj.attrs >= 4);
  (* and the file path agrees with parsing the truncated bytes directly *)
  Alcotest.(check bool) "truncated file = truncated string" true
    (result_fingerprint r = result_fingerprint (Reader.parse_string cut))

let suite =
  [ Alcotest.test_case "parity on clean world" `Quick test_parity_clean_world;
    Alcotest.test_case "parity of error lists" `Quick test_parity_error_lists;
    QCheck_alcotest.to_alcotest parity_under_corruption;
    Alcotest.test_case "parity under domain crash" `Quick test_parity_under_domain_crash;
    Alcotest.test_case "merge priority winners" `Quick test_merge_priority_winners;
    QCheck_alcotest.to_alcotest scan_equals_parse;
    QCheck_alcotest.to_alcotest fast_parser_parity;
    Alcotest.test_case "snapshot round-trip bytes" `Quick test_snapshot_roundtrip_bytes;
    Alcotest.test_case "snapshot hit/miss counters" `Quick test_snapshot_hit_miss_counters;
    Alcotest.test_case "fixture corpus table" `Quick test_fixture_corpus;
    Alcotest.test_case "fixture file = string" `Quick test_fixture_file_equals_string;
    Alcotest.test_case "fixture CRLF clean" `Quick test_fixture_crlf_values_clean;
    Alcotest.test_case "fixture world parity" `Quick test_fixture_corpus_ingest_parity;
    Alcotest.test_case "truncated file keeps partial" `Quick
      test_truncated_file_keeps_partial ]
