(* Tests for rz_verify: every verification status and all six special
   cases of Section 5.1, on hand-built mini-IRRs, plus structured-policy
   semantics and the Appendix-C walk. *)
module Db = Rz_irr.Db
module Rel_db = Rz_asrel.Rel_db
module Engine = Rz_verify.Engine
module Status = Rz_verify.Status
module Report = Rz_verify.Report

let p = Rz_net.Prefix.of_string_exn

(* Mini Internet:
     100 -- 200      Tier-1 clique (peers)
      |      |
     10 ---- 20      mids (peer with each other)
     /  \
    1    2           stubs (2 additionally has customer 3)
         |
         3                                                     *)
let rels () =
  let t = Rel_db.create () in
  Rel_db.add_p2p t 100 200;
  Rel_db.set_clique t [ 100; 200 ];
  Rel_db.add_p2c t ~provider:100 ~customer:10;
  Rel_db.add_p2c t ~provider:200 ~customer:20;
  Rel_db.add_p2p t 10 20;
  Rel_db.add_p2c t ~provider:10 ~customer:1;
  Rel_db.add_p2c t ~provider:10 ~customer:2;
  Rel_db.add_p2c t ~provider:2 ~customer:3;
  t

let engine ?config rpsl =
  Engine.create ?config (Db.of_dumps [ ("TEST", rpsl) ]) (rels ())

let check_status name expected (hop : Report.hop) =
  Alcotest.(check string) name (Status.to_string expected) (Status.to_string hop.status)

(* ---------------- Verified ---------------- *)

let test_verified_any () =
  let e = engine "aut-num: AS10\nimport: from AS1 accept ANY\n" in
  let hop =
    Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:1
      ~prefix:(p "192.0.2.0/24") ~path:[| 1 |]
  in
  check_status "accept ANY verifies" Status.Verified hop

let test_verified_asn_filter () =
  let e =
    engine "aut-num: AS10\nimport: from AS1 accept AS1\n\nroute: 192.0.2.0/24\norigin: AS1\n"
  in
  check_status "ASN filter with route object" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "192.0.2.0/24") ~path:[| 1 |])

let test_verified_as_set_filter () =
  let e =
    engine
      "aut-num: AS10\nexport: to AS100 announce AS-CONE\n\n\
       as-set: AS-CONE\nmembers: AS10, AS1, AS2\n\n\
       route: 192.0.2.0/24\norigin: AS1\n"
  in
  check_status "as-set filter" Status.Verified
    (Engine.verify_hop e ~direction:`Export ~subject:10 ~remote:100
       ~prefix:(p "192.0.2.0/24") ~path:[| 10; 1 |])

let test_verified_route_set_filter () =
  let e =
    engine
      "aut-num: AS10\nimport: from AS1 accept RS-NETS^+\n\n\
       route-set: RS-NETS\nmembers: 192.0.2.0/24\n"
  in
  check_status "route-set with op takes more-specific" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "192.0.2.128/25") ~path:[| 1 |])

let test_verified_prefix_set () =
  let e = engine "aut-num: AS10\nimport: from AS1 accept { 192.0.2.0/24^24-32 }\n" in
  check_status "inline prefix set" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "192.0.2.0/26") ~path:[| 1 |])

let test_verified_regex () =
  (* the remote is the peer AS20 so a mismatch cannot be rescued by the
     uphill safelist *)
  let e = engine "aut-num: AS10\nimport: from AS20 accept <^AS20 AS3+$>\n" in
  check_status "path regex" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20; 3; 3 |]);
  check_status "path regex rejects" Status.Unverified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20; 2 |])

let test_verified_peeras_regex () =
  let e = engine "aut-num: AS10\nimport: from AS1 accept <^PeerAS+$>\n" in
  check_status "PeerAS regex binds remote" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "192.0.2.0/24") ~path:[| 1; 1 |])

let test_verified_peeras_filter () =
  let e =
    engine "aut-num: AS10\nimport: from AS1 accept PeerAS\n\nroute: 192.0.2.0/24\norigin: AS1\n"
  in
  check_status "PeerAS filter = peer's routes" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "192.0.2.0/24") ~path:[| 1 |])

let test_verified_filter_set () =
  let e =
    engine
      "aut-num: AS10\nimport: from AS1 accept FLTR-DOC\n\n\
       filter-set: FLTR-DOC\nfilter: { 192.0.2.0/24^+ }\n"
  in
  check_status "filter-set resolves" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "192.0.2.0/24") ~path:[| 1 |])

let test_verified_peering_set () =
  let e =
    engine
      "aut-num: AS10\nimport: from PRNG-UP accept ANY\n\npeering-set: PRNG-UP\npeering: AS1\n"
  in
  check_status "peering-set resolves" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "192.0.2.0/24") ~path:[| 1 |])

let test_verified_as_any_peering () =
  let e = engine "aut-num: AS10\nimport: from AS-ANY accept ANY\n" in
  check_status "AS-ANY peering" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:999
       ~prefix:(p "192.0.2.0/24") ~path:[| 999 |])

(* ---------------- afi gating ---------------- *)

let test_afi_plain_rule_is_v4_only () =
  let e = engine "aut-num: AS10\nimport: from AS1 accept ANY\n" in
  let hop =
    Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:1
      ~prefix:(p "2001:db8::/32") ~path:[| 1 |]
  in
  Alcotest.(check bool) "plain import does not cover v6" true
    (hop.status <> Status.Verified)

let test_afi_mp_any_covers_v6 () =
  let e = engine "aut-num: AS10\nmp-import: afi any.unicast from AS1 accept ANY\n" in
  check_status "mp afi any covers v6" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "2001:db8::/32") ~path:[| 1 |])

let test_afi_specific_mismatch () =
  let e = engine "aut-num: AS10\nmp-import: afi ipv6.unicast from AS1 accept ANY\n" in
  let hop =
    Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:1
      ~prefix:(p "192.0.2.0/24") ~path:[| 1 |]
  in
  Alcotest.(check bool) "ipv6-only rule does not cover v4" true (hop.status <> Status.Verified)

(* ---------------- Skip ---------------- *)

let test_skip_community_filter () =
  let e = engine "aut-num: AS10\nimport: from AS1 accept community(65535:666)\n" in
  check_status "community filter skipped" (Status.Skipped Status.Community_filter)
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "192.0.2.0/24") ~path:[| 1 |])

let test_skip_future_work_only_in_paper_compat () =
  let rpsl = "aut-num: AS10\nimport: from AS1 accept <^AS1~+$>\n" in
  let compat = engine ~config:{ Engine.default_config with paper_compat = true } rpsl in
  check_status "paper_compat skips ~ ops" (Status.Skipped Status.Future_work_regex)
    (Engine.verify_hop compat ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "192.0.2.0/24") ~path:[| 1; 1 |]);
  let full = engine rpsl in
  check_status "default evaluates ~ ops" Status.Verified
    (Engine.verify_hop full ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "192.0.2.0/24") ~path:[| 1; 1 |])

(* ---------------- Unrecorded ---------------- *)

let test_unrec_no_aut_num () =
  let e = engine "aut-num: AS10\nimport: from AS1 accept ANY\n" in
  check_status "missing aut-num" (Status.Unrecorded (Status.No_aut_num 77))
    (Engine.verify_hop e ~direction:`Import ~subject:77 ~remote:1
       ~prefix:(p "192.0.2.0/24") ~path:[| 1 |])

let test_unrec_no_rules_direction () =
  let e = engine "aut-num: AS10\nimport: from AS1 accept ANY\n" in
  check_status "no export rules" (Status.Unrecorded Status.No_rules)
    (Engine.verify_hop e ~direction:`Export ~subject:10 ~remote:100
       ~prefix:(p "192.0.2.0/24") ~path:[| 10; 1 |])

let test_unrec_zero_route_as () =
  (* filter references AS2, which originates no route objects at all *)
  let e = engine "aut-num: AS10\nimport: from AS2 accept AS2\n" in
  check_status "zero-route AS" (Status.Unrecorded (Status.Zero_route_as 2))
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:2
       ~prefix:(p "192.0.2.0/24") ~path:[| 2 |])

let test_unrec_missing_sets () =
  let e = engine "aut-num: AS10\nimport: from AS1 accept AS-NOWHERE\n" in
  check_status "unknown as-set" (Status.Unrecorded (Status.Unrecorded_as_set "AS-NOWHERE"))
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "192.0.2.0/24") ~path:[| 1 |]);
  let e2 = engine "aut-num: AS10\nimport: from AS1 accept RS-NOWHERE\n" in
  check_status "unknown route-set"
    (Status.Unrecorded (Status.Unrecorded_route_set "RS-NOWHERE"))
    (Engine.verify_hop e2 ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "192.0.2.0/24") ~path:[| 1 |]);
  let e3 = engine "aut-num: AS10\nimport: from PRNG-NOWHERE accept ANY\n" in
  check_status "unknown peering-set"
    (Status.Unrecorded (Status.Unrecorded_peering_set "PRNG-NOWHERE"))
    (Engine.verify_hop e3 ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "192.0.2.0/24") ~path:[| 1 |]);
  let e4 = engine "aut-num: AS10\nimport: from AS1 accept FLTR-NOWHERE\n" in
  check_status "unknown filter-set"
    (Status.Unrecorded (Status.Unrecorded_filter_set "FLTR-NOWHERE"))
    (Engine.verify_hop e4 ~direction:`Import ~subject:10 ~remote:1
       ~prefix:(p "192.0.2.0/24") ~path:[| 1 |])

(* ---------------- Relaxed ---------------- *)

let test_relaxed_export_self () =
  (* Transit AS10 announces only itself uphill; route actually originated
     by its customer AS1, whose route object exists (cone coverage). *)
  let e =
    engine
      "aut-num: AS10\nexport: to AS100 announce AS10\n\n\
       route: 192.0.2.0/24\norigin: AS1\n\nroute: 198.51.100.0/24\norigin: AS10\n"
  in
  check_status "export self relaxed" (Status.Relaxed Status.Export_self)
    (Engine.verify_hop e ~direction:`Export ~subject:10 ~remote:100
       ~prefix:(p "192.0.2.0/24") ~path:[| 10; 1 |])

let test_export_self_needs_customer () =
  (* previous AS on the path is a PEER (20), not a customer: neither the
     export-self relaxation nor the uphill safelist applies — a
     peer-learned route passed to a provider is a route leak. *)
  let e =
    engine
      "aut-num: AS10\nexport: to AS100 announce AS10\n\n\
       route: 192.0.2.0/24\norigin: AS20\n\nroute: 198.51.100.0/24\norigin: AS10\n"
  in
  check_status "peer-learned route leak stays unverified" Status.Unverified
    (Engine.verify_hop e ~direction:`Export ~subject:10 ~remote:100
       ~prefix:(p "192.0.2.0/24") ~path:[| 10; 20 |])

let test_export_self_needs_cone_route_object () =
  (* Appendix C: without a cone route object for the prefix, export-self
     does not apply and the hop falls through to uphill safelisting. *)
  let e =
    engine
      "aut-num: AS10\nexport: to AS100 announce AS10\n\n\
       route: 198.51.100.0/24\norigin: AS10\n"
  in
  check_status "no cone route object -> uphill" (Status.Safelisted Status.Uphill)
    (Engine.verify_hop e ~direction:`Export ~subject:10 ~remote:100
       ~prefix:(p "192.0.2.0/24") ~path:[| 10; 1 |])

let test_relaxed_import_customer () =
  (* AS10 imports from transit customer AS2 with filter AS2; the route is
     originated deeper (AS3). AS2 must have some route object (else the
     zero-route unrecorded case fires first). *)
  let e =
    engine
      "aut-num: AS10\nimport: from AS2 accept AS2\n\nroute: 198.51.100.0/24\norigin: AS2\n"
  in
  check_status "import customer relaxed" (Status.Relaxed Status.Import_customer)
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:2
       ~prefix:(p "192.0.2.0/24") ~path:[| 2; 3 |])

let test_relaxed_missing_routes () =
  (* Filter names the origin AS1, which has route objects — but not for
     this prefix. The route arrives via peer AS20 so neither the
     import-customer relaxation nor the uphill safelist can fire first. *)
  let e =
    engine
      "aut-num: AS10\nimport: from AS20 accept AS1\n\nroute: 198.51.100.0/24\norigin: AS1\n"
  in
  check_status "missing routes relaxed" (Status.Relaxed Status.Missing_routes)
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20; 1 |])

let test_relaxed_missing_routes_as_set () =
  let e =
    engine
      "aut-num: AS10\nimport: from AS20 accept AS-CONE\n\n\
       as-set: AS-CONE\nmembers: AS1\n\nroute: 198.51.100.0/24\norigin: AS1\n"
  in
  check_status "missing routes via as-set" (Status.Relaxed Status.Missing_routes)
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20; 1 |])

(* ---------------- Safelisted ---------------- *)

let test_safelisted_only_provider () =
  (* AS2 (customer: AS3, provider: AS10) writes rules only toward AS10;
     importing from customer AS3 is safelisted. *)
  let e =
    engine
      "aut-num: AS2\nimport: from AS10 accept ANY\nexport: to AS10 announce AS2\n"
  in
  check_status "only provider policies" (Status.Safelisted Status.Only_provider_policies)
    (Engine.verify_hop e ~direction:`Import ~subject:2 ~remote:3
       ~prefix:(p "192.0.2.0/24") ~path:[| 3 |])

let test_safelisted_tier1_pair () =
  let e = engine "aut-num: AS100\nimport: from AS10 accept ANY\n" in
  check_status "tier1 pair" (Status.Safelisted Status.Tier1_pair)
    (Engine.verify_hop e ~direction:`Import ~subject:100 ~remote:200
       ~prefix:(p "192.0.2.0/24") ~path:[| 200 |])

let test_safelisted_uphill_both_directions () =
  (* AS2 (customer of AS10, provider of AS3) passes a customer-learned
     route up to AS10; both its export and AS10's import are uphill. *)
  let e = engine "aut-num: AS2\nexport: to AS99 announce AS2\n\naut-num: AS10\nimport: from AS99 accept ANY\n" in
  check_status "uphill export" (Status.Safelisted Status.Uphill)
    (Engine.verify_hop e ~direction:`Export ~subject:2 ~remote:10
       ~prefix:(p "192.0.2.0/24") ~path:[| 2; 3 |]);
  check_status "uphill import" (Status.Safelisted Status.Uphill)
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:2
       ~prefix:(p "192.0.2.0/24") ~path:[| 2; 3 |])

let test_origin_uphill_export_not_safelisted () =
  (* Appendix C: the origin's own export to its provider has no previous
     AS, so the uphill safelist does not apply and a peering mismatch
     stays BadExport. *)
  let e = engine "aut-num: AS1\nexport: to AS99 announce AS1\n" in
  check_status "origin export not safelisted" Status.Unverified
    (Engine.verify_hop e ~direction:`Export ~subject:1 ~remote:10
       ~prefix:(p "192.0.2.0/24") ~path:[| 1 |])

(* ---------------- Unverified ---------------- *)

let test_unverified_peering_mismatch_items () =
  (* AS20 imports from peer AS10 but wrote rules for other ASes; the
     extra non-provider reference (AS300) keeps the only-provider
     safelist from firing *)
  let e = engine "aut-num: AS20\nimport: from AS200 accept ANY\nimport: from AS300 accept ANY\n" in
  let hop =
    Engine.verify_hop e ~direction:`Import ~subject:20 ~remote:10
      ~prefix:(p "192.0.2.0/24") ~path:[| 10 |]
  in
  check_status "peering mismatch" Status.Unverified hop;
  Alcotest.(check bool) "items name the referenced remote" true
    (List.mem (Report.Match_remote_as_num 200) hop.items)

let test_unverified_filter_mismatch_items () =
  (* peering matches but the ASN filter rejects; AS1 has other route
     objects and is not the origin (origin is 99), so no relaxation *)
  let e =
    engine
      "aut-num: AS20\nimport: from AS10 accept AS1\n\nroute: 198.51.100.0/24\norigin: AS1\n"
  in
  let hop =
    Engine.verify_hop e ~direction:`Import ~subject:20 ~remote:10
      ~prefix:(p "192.0.2.0/24") ~path:[| 10; 99 |]
  in
  check_status "filter mismatch" Status.Unverified hop;
  Alcotest.(check bool) "filter diagnostic present" true
    (List.exists
       (function Report.Match_filter_as_num (1, _) -> true | _ -> false)
       hop.items)

(* ---------------- structured policies ---------------- *)

let test_refine_requires_both () =
  let rpsl =
    "aut-num: AS10\nmp-import: afi any.unicast from AS20 accept ANY REFINE afi any from AS20 accept <^AS20 AS3+$>\n"
  in
  let e = engine rpsl in
  check_status "matches both levels" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20; 3 |]);
  check_status "fails refine level" Status.Unverified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20; 2 |])

let test_refine_afi_scoped () =
  (* The refine applies to ipv4 only; v6 routes are governed by the outer
     term alone (the paper's AS14595 semantics). *)
  let rpsl =
    "aut-num: AS10\nmp-import: afi any.unicast from AS20 accept ANY REFINE afi ipv4.unicast from AS20 accept <^AS20 AS3+$>\n"
  in
  let e = engine rpsl in
  check_status "v6 bypasses ipv4 refine" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "2001:db8::/32") ~path:[| 20; 2 |]);
  check_status "v4 must satisfy refine" Status.Unverified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20; 2 |])

let test_except_rhs_wins () =
  let rpsl =
    "aut-num: AS10\nimport: from AS20 accept { 192.0.2.0/24 } EXCEPT from AS20 accept { 198.51.100.0/24 }\n"
  in
  let e = engine rpsl in
  check_status "lhs route accepted" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20 |]);
  check_status "rhs route accepted via exception" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "198.51.100.0/24") ~path:[| 20 |]);
  check_status "other routes rejected" Status.Unverified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "203.0.113.0/24") ~path:[| 20 |])

let test_not_filter () =
  let e = engine "aut-num: AS10\nimport: from AS20 accept ANY AND NOT { 192.0.2.0/24^+ }\n" in
  check_status "NOT rejects listed" Status.Unverified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "192.0.2.0/24") ~path:[| 20 |]);
  check_status "NOT passes others" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "198.51.100.0/24") ~path:[| 20 |])

let test_fltr_martian () =
  let e = engine "aut-num: AS10\nimport: from AS20 accept NOT fltr-martian\n" in
  check_status "public prefix passes" Status.Verified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "198.51.0.0/16") ~path:[| 20 |]);
  check_status "martian rejected" Status.Unverified
    (Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
       ~prefix:(p "10.1.0.0/16") ~path:[| 20 |])

(* ---------------- whole routes ---------------- *)

let test_verify_route_walk () =
  let rpsl =
    "aut-num: AS1\nexport: to AS10 announce AS1\nimport: from AS10 accept ANY\n\n\
     aut-num: AS10\nimport: from AS1 accept AS1\nexport: to AS100 announce AS-CONE\n\n\
     aut-num: AS100\nimport: from AS10 accept AS-CONE\n\n\
     as-set: AS-CONE\nmembers: AS10, AS1, AS2\n\n\
     route: 192.0.2.0/24\norigin: AS1\n"
  in
  let e = engine rpsl in
  let route = Rz_bgp.Route.make (p "192.0.2.0/24") [ 100; 10; 1 ] in
  match Engine.verify_route e route with
  | None -> Alcotest.fail "route excluded unexpectedly"
  | Some report ->
    Alcotest.(check int) "2 links x 2 checks" 4 (List.length report.hops);
    (* origin-side export first *)
    let first = List.hd report.hops in
    Alcotest.(check bool) "origin export first" true
      (first.direction = `Export && first.from_as = 1 && first.to_as = 10);
    List.iter
      (fun (hop : Report.hop) ->
        check_status (Report.hop_to_string hop) Status.Verified hop)
      report.hops

let test_verify_route_exclusions () =
  let e = engine "aut-num: AS1\n" in
  Alcotest.(check bool) "single AS excluded" true
    (Engine.verify_route e (Rz_bgp.Route.make (p "192.0.2.0/24") [ 1 ]) = None);
  Alcotest.(check bool) "prepended single AS excluded" true
    (Engine.verify_route e (Rz_bgp.Route.make (p "192.0.2.0/24") [ 1; 1; 1 ]) = None);
  (match Rz_bgp.Route.of_line "192.0.2.0/24|1 {2,3} 4" with
   | Ok r -> Alcotest.(check bool) "AS_SET excluded" true (Engine.verify_route e r = None)
   | Error e -> Alcotest.fail e)

let test_verify_route_dedups_prepending () =
  let e = engine "aut-num: AS10\nimport: from AS1 accept ANY\n" in
  let route = Rz_bgp.Route.make (p "192.0.2.0/24") [ 10; 10; 10; 1; 1 ] in
  match Engine.verify_route e route with
  | None -> Alcotest.fail "excluded"
  | Some report -> Alcotest.(check int) "one link after dedup" 2 (List.length report.hops)

(* ---------------- report formatting ---------------- *)

let test_report_formatting () =
  let e = engine "aut-num: AS20\nimport: from AS200 accept ANY\nimport: from AS300 accept ANY\n" in
  let hop =
    Engine.verify_hop e ~direction:`Import ~subject:20 ~remote:10
      ~prefix:(p "192.0.2.0/24") ~path:[| 10 |]
  in
  let text = Report.hop_to_string hop in
  Alcotest.(check bool) "BadImport prefix" true
    (String.length text >= 9 && String.sub text 0 9 = "BadImport");
  Alcotest.(check bool) "mentions remote" true
    (Rz_util.Strings.split_on_string ~sep:"MatchRemoteAsNum(200)" text |> List.length > 1)

let test_report_meh_naming () =
  let e = engine "aut-num: AS100\nimport: from AS10 accept ANY\n" in
  let hop =
    Engine.verify_hop e ~direction:`Import ~subject:100 ~remote:200
      ~prefix:(p "192.0.2.0/24") ~path:[| 200 |]
  in
  let text = Report.hop_to_string hop in
  Alcotest.(check bool) "MehImport + SpecTier1Pair" true
    (String.sub text 0 9 = "MehImport"
     && Rz_util.Strings.split_on_string ~sep:"SpecTier1Pair" text |> List.length > 1)

(* ---------------- hop-verdict memoization ---------------- *)

(* Subjects whose policies read the AS path (Path_regex anywhere in a
   reachable filter) must bypass the hop memo entirely — neither hits
   nor misses — while path-free subjects in the same engine memoize
   normally and replay the identical verdict on a hit. *)
let test_memo_bypass_path_regex () =
  let module Obs = Rz_obs.Obs in
  let e =
    engine
      "aut-num: AS10\nimport: from AS20 accept <^AS20 AS3+$>\n\n\
       aut-num: AS20\nimport: from AS10 accept ANY\n"
  in
  Obs.reset ();
  Obs.enable ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
  @@ fun () ->
  let hits = Obs.Counter.make "verify.memo_hits" in
  let misses = Obs.Counter.make "verify.memo_misses" in
  let regex_hop () =
    Engine.verify_hop e ~direction:`Import ~subject:10 ~remote:20
      ~prefix:(p "192.0.2.0/24") ~path:[| 20; 3 |]
  in
  check_status "path-regex hop verifies" Status.Verified (regex_hop ());
  ignore (regex_hop ());
  Alcotest.(check int) "path-dependent subject bypasses the memo" 0
    (Obs.Counter.get hits + Obs.Counter.get misses);
  let plain_hop () =
    Engine.verify_hop e ~direction:`Import ~subject:20 ~remote:10
      ~prefix:(p "192.0.2.0/24") ~path:[| 10; 3 |]
  in
  let a = plain_hop () in
  Alcotest.(check int) "first plain hop is a memo miss" 1 (Obs.Counter.get misses);
  let b = plain_hop () in
  Alcotest.(check int) "second plain hop is a memo hit" 1 (Obs.Counter.get hits);
  Alcotest.(check string) "hit replays the identical verdict"
    (Status.to_string a.status) (Status.to_string b.status)

let suite =
  [ Alcotest.test_case "verified: ANY" `Quick test_verified_any;
    Alcotest.test_case "verified: ASN filter" `Quick test_verified_asn_filter;
    Alcotest.test_case "verified: as-set filter" `Quick test_verified_as_set_filter;
    Alcotest.test_case "verified: route-set filter" `Quick test_verified_route_set_filter;
    Alcotest.test_case "verified: prefix set" `Quick test_verified_prefix_set;
    Alcotest.test_case "verified: regex" `Quick test_verified_regex;
    Alcotest.test_case "verified: PeerAS regex" `Quick test_verified_peeras_regex;
    Alcotest.test_case "verified: PeerAS filter" `Quick test_verified_peeras_filter;
    Alcotest.test_case "verified: filter-set" `Quick test_verified_filter_set;
    Alcotest.test_case "verified: peering-set" `Quick test_verified_peering_set;
    Alcotest.test_case "verified: AS-ANY peering" `Quick test_verified_as_any_peering;
    Alcotest.test_case "afi: plain rule v4-only" `Quick test_afi_plain_rule_is_v4_only;
    Alcotest.test_case "afi: mp any covers v6" `Quick test_afi_mp_any_covers_v6;
    Alcotest.test_case "afi: specific mismatch" `Quick test_afi_specific_mismatch;
    Alcotest.test_case "skip: community" `Quick test_skip_community_filter;
    Alcotest.test_case "skip: future-work regex" `Quick test_skip_future_work_only_in_paper_compat;
    Alcotest.test_case "unrecorded: no aut-num" `Quick test_unrec_no_aut_num;
    Alcotest.test_case "unrecorded: no rules" `Quick test_unrec_no_rules_direction;
    Alcotest.test_case "unrecorded: zero-route AS" `Quick test_unrec_zero_route_as;
    Alcotest.test_case "unrecorded: missing sets" `Quick test_unrec_missing_sets;
    Alcotest.test_case "relaxed: export self" `Quick test_relaxed_export_self;
    Alcotest.test_case "export self needs customer" `Quick test_export_self_needs_customer;
    Alcotest.test_case "export self needs cone route" `Quick test_export_self_needs_cone_route_object;
    Alcotest.test_case "relaxed: import customer" `Quick test_relaxed_import_customer;
    Alcotest.test_case "relaxed: missing routes" `Quick test_relaxed_missing_routes;
    Alcotest.test_case "relaxed: missing routes as-set" `Quick test_relaxed_missing_routes_as_set;
    Alcotest.test_case "safelisted: only provider" `Quick test_safelisted_only_provider;
    Alcotest.test_case "safelisted: tier1 pair" `Quick test_safelisted_tier1_pair;
    Alcotest.test_case "safelisted: uphill" `Quick test_safelisted_uphill_both_directions;
    Alcotest.test_case "origin uphill export not safelisted" `Quick test_origin_uphill_export_not_safelisted;
    Alcotest.test_case "unverified: peering items" `Quick test_unverified_peering_mismatch_items;
    Alcotest.test_case "unverified: filter items" `Quick test_unverified_filter_mismatch_items;
    Alcotest.test_case "refine requires both" `Quick test_refine_requires_both;
    Alcotest.test_case "refine afi scoped" `Quick test_refine_afi_scoped;
    Alcotest.test_case "except rhs wins" `Quick test_except_rhs_wins;
    Alcotest.test_case "NOT filter" `Quick test_not_filter;
    Alcotest.test_case "fltr-martian" `Quick test_fltr_martian;
    Alcotest.test_case "verify_route walk" `Quick test_verify_route_walk;
    Alcotest.test_case "verify_route exclusions" `Quick test_verify_route_exclusions;
    Alcotest.test_case "verify_route dedups prepending" `Quick test_verify_route_dedups_prepending;
    Alcotest.test_case "report formatting" `Quick test_report_formatting;
    Alcotest.test_case "report Meh naming" `Quick test_report_meh_naming;
    Alcotest.test_case "memo bypass for path regex" `Quick test_memo_bypass_path_regex ]
