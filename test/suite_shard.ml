(* Multi-process shard-and-merge verification (Rz_shard): differential
   equality against the in-process sequential oracle, plus the two fault
   drills (corrupt frame, crashed worker).

   ORDERING CONSTRAINT: this suite must be registered FIRST in
   test_main.ml. OCaml 5 permanently refuses [Unix.fork] once any
   [Domain.spawn] has happened in the process, and Alcotest runs suites
   in registration order — so the forking tests have to run before any
   suite that ingests in parallel or calls [verify_parallel]. For the
   same reason the world below is built by hand with [~domains:1]
   (inline, no spawn) rather than through [build_synthetic], whose
   default domain count is resolved at module-init time. *)

module Shard = Rz_shard.Shard
module Aggregate = Rz_verify.Aggregate
module Obs = Rz_obs.Obs

let world =
  lazy
    (let topo_params =
       { Rz_topology.Gen.default_params with seed = 21; n_tier1 = 3; n_mid = 25; n_stub = 80 }
     in
     let topo = Rz_topology.Gen.generate topo_params in
     let synth = Rz_synthirr.Generate.generate topo in
     let db = Rz_ingest.Ingest.db_of_dumps ~domains:1 synth.dumps in
     let peers = Rz_routegen.Propagate.default_collector_peers topo ~n:10 in
     let table_dumps =
       Rz_routegen.Propagate.collector_dumps topo ~n_collectors:2 ~peers
     in
     { Rpslyzer.Pipeline.topo; synth; db; rels = topo.rels;
       dumps = synth.dumps; table_dumps })

(* The sequential oracle the sharded runs must match byte-for-byte. *)
let oracle = lazy (Rpslyzer.Pipeline.verify (Lazy.force world))

let check_matches_oracle label (agg, `Total total, `Excluded excluded) =
  let o_agg, `Total o_total, `Excluded o_excluded = Lazy.force oracle in
  Alcotest.(check string)
    (label ^ ": fingerprint")
    (Aggregate.fingerprint o_agg) (Aggregate.fingerprint agg);
  Alcotest.(check int) (label ^ ": total") o_total total;
  Alcotest.(check int) (label ^ ": excluded") o_excluded excluded

let test_sharded_equals_oracle () =
  let w = Lazy.force world in
  for shards = 1 to 4 do
    check_matches_oracle
      (Printf.sprintf "%d shard(s)" shards)
      (Shard.verify_sharded ~shards w)
  done

(* Run [f] with RPSLYZER_SHARD_FAULT set, Obs enabled and reset, and
   return (result, frames_rejected delta). *)
let with_fault spec f =
  Unix.putenv "RPSLYZER_SHARD_FAULT" spec;
  Obs.enable ();
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "RPSLYZER_SHARD_FAULT" "";
      Obs.disable ())
    (fun () ->
      let result = f () in
      let rejected =
        Option.value ~default:0
          (List.assoc_opt "shard.frames_rejected"
             (Obs.Registry.counters (Obs.Registry.snapshot ())))
      in
      (result, rejected))

let test_corrupt_frame_recovered () =
  let w = Lazy.force world in
  let result, rejected =
    with_fault "1" (fun () -> Shard.verify_sharded ~shards:3 w)
  in
  Alcotest.(check int) "one frame rejected" 1 rejected;
  check_matches_oracle "corrupt frame" result

let test_crashed_worker_recovered () =
  let w = Lazy.force world in
  let result, rejected =
    with_fault "0:crash" (fun () -> Shard.verify_sharded ~shards:2 w)
  in
  Alcotest.(check int) "one frame rejected" 1 rejected;
  check_matches_oracle "crashed worker" result

(* Regression: worker histogram observations must survive into the
   parent registry via the RZSHARDF delta frames — they used to be
   silently dropped (only counters shipped), leaving verify.route_ns
   empty after any sharded run, including --shards 1.

   verify.route_ns is observed once per unique route per shard (the
   dedup replay re-adds counters for duplicate weight but never fakes a
   latency observation), so with one shard the parent's merged count
   must equal an inline sequential run exactly; with several shards
   duplicates can split across shards, so the count is bounded below by
   the inline unique count and above by the dedup-replayed
   verify.routes_total counter. *)
let test_worker_histograms_survive () =
  let w = Lazy.force world in
  let route_ns_count () =
    let snap = Obs.Registry.snapshot () in
    match Rz_json.Json.member "histograms" (Obs.Registry.to_json snap) with
    | Some (Rz_json.Json.Obj hists) -> (
      match List.assoc_opt "verify.route_ns" hists with
      | Some row -> (
        match Rz_json.Json.member "count" row with
        | Some (Rz_json.Json.Int n) -> n
        | _ -> 0)
      | None -> 0)
    | _ -> 0
  in
  let counter name =
    Option.value ~default:0
      (List.assoc_opt name (Obs.Registry.counters (Obs.Registry.snapshot ())))
  in
  Obs.enable ();
  Fun.protect ~finally:Obs.disable @@ fun () ->
  Obs.reset ();
  ignore (Rpslyzer.Pipeline.verify w);
  let inline_count = route_ns_count () in
  Alcotest.(check bool) "inline run observes latencies" true (inline_count > 0);
  Obs.reset ();
  ignore (Shard.verify_sharded ~shards:1 w);
  Alcotest.(check int) "one shard: parent histogram = inline" inline_count
    (route_ns_count ());
  Obs.reset ();
  ignore (Shard.verify_sharded ~shards:3 w);
  let sharded = route_ns_count () in
  Alcotest.(check bool) "three shards: observations survived" true (sharded > 0);
  Alcotest.(check bool)
    (Printf.sprintf
       "three shards: inline uniques <= merged count (%d <= %d)" inline_count
       sharded)
    true (inline_count <= sharded);
  Alcotest.(check bool)
    (Printf.sprintf "three shards: merged count <= routes_total (%d <= %d)"
       sharded (counter "verify.routes_total"))
    true
    (sharded <= counter "verify.routes_total")

let test_fingerprint_merge_order_independent () =
  (* The fingerprint canonicalizes per-route ordering, so merging shard
     aggregates in any order (different shard counts produce different
     merge trees) yields one value — already exercised implicitly above;
     here the sharded fingerprints are also checked against each other. *)
  let w = Lazy.force world in
  let fp shards =
    let agg, _, _ = Shard.verify_sharded ~shards w in
    Aggregate.fingerprint agg
  in
  Alcotest.(check string) "2 vs 3 shards" (fp 2) (fp 3)

let suite =
  [ Alcotest.test_case "sharded 1..4 equals sequential oracle" `Slow
      test_sharded_equals_oracle;
    Alcotest.test_case "corrupt frame rejected and re-verified" `Slow
      test_corrupt_frame_recovered;
    Alcotest.test_case "crashed worker rejected and re-verified" `Slow
      test_crashed_worker_recovered;
    Alcotest.test_case "worker histograms survive into the parent" `Slow
      test_worker_histograms_survive;
    Alcotest.test_case "fingerprint independent of merge order" `Slow
      test_fingerprint_merge_order_independent ]
