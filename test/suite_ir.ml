(* Tests for rz_ir: lowering RPSL objects into the IR, error recording,
   and the JSON export. *)
module Ir = Rz_ir.Ir
module Lower = Rz_ir.Lower

let lower ?(source = "TEST") text =
  let ir = Ir.create () in
  ignore (Lower.add_dump ir ~source text);
  ir

let test_lower_aut_num () =
  let ir =
    lower
      "aut-num: AS65001\nas-name: EXAMPLE\nimport: from AS1 accept ANY\nimport: from AS2 accept AS2\nexport: to AS1 announce AS65001\nmnt-by: MNT-EX\n"
  in
  match Ir.find_aut_num ir 65001 with
  | None -> Alcotest.fail "aut-num missing"
  | Some an ->
    Alcotest.(check string) "as-name" "EXAMPLE" an.as_name;
    Alcotest.(check int) "imports" 2 (List.length an.imports);
    Alcotest.(check int) "exports" 1 (List.length an.exports);
    Alcotest.(check int) "n_rules" 3 (Ir.n_rules an);
    Alcotest.(check (list string)) "mnt-by" [ "MNT-EX" ] an.mnt_by;
    Alcotest.(check string) "source" "TEST" an.source

let test_lower_mp_rules () =
  let ir =
    lower "aut-num: AS65001\nmp-import: afi ipv6.unicast from AS1 accept ANY\nmp-export: afi any to AS1 announce AS65001\n"
  in
  match Ir.find_aut_num ir 65001 with
  | Some an ->
    Alcotest.(check int) "mp-import counted" 1 (List.length an.imports);
    Alcotest.(check bool) "flagged multiprotocol" true (List.hd an.imports).multiprotocol
  | None -> Alcotest.fail "missing"

let test_lower_bad_rule_is_error () =
  let ir = lower "aut-num: AS65001\nimport: from accept ANY\nexport: to AS1 announce AS65001\n" in
  (match Ir.find_aut_num ir 65001 with
   | Some an ->
     Alcotest.(check int) "bad import dropped" 0 (List.length an.imports);
     Alcotest.(check int) "good export kept" 1 (List.length an.exports)
   | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "error recorded" true
    (List.exists (fun (e : Ir.error) -> match e.kind with Ir.Syntax_error _ -> true | _ -> false)
       ir.errors)

let test_lower_as_set () =
  let ir = lower "as-set: AS-EX\nmembers: AS1, AS2, AS-NESTED\nmbrs-by-ref: MNT-A\n" in
  match Ir.find_as_set ir "as-ex" with
  | Some s ->
    Alcotest.(check (list int)) "asns" [ 1; 2 ] s.member_asns;
    Alcotest.(check (list string)) "sets" [ "AS-NESTED" ] s.member_sets;
    Alcotest.(check bool) "no ANY" false s.contains_any;
    Alcotest.(check (list string)) "mbrs-by-ref" [ "MNT-A" ] s.mbrs_by_ref
  | None -> Alcotest.fail "as-set missing (case-insensitive lookup)"

let test_lower_as_set_with_any () =
  let ir = lower "as-set: AS-HASANY\nmembers: ANY\n" in
  match Ir.find_as_set ir "AS-HASANY" with
  | Some s -> Alcotest.(check bool) "contains_any" true s.contains_any
  | None -> Alcotest.fail "missing"

let test_lower_invalid_as_set_name () =
  let ir = lower "as-set: BADNAME\nmembers: AS1\n" in
  Alcotest.(check bool) "invalid name recorded" true
    (List.exists (fun (e : Ir.error) -> e.kind = Ir.Invalid_as_set_name) ir.errors)

let test_lower_route_set () =
  let ir =
    lower
      "route-set: RS-EX\nmembers: 10.0.0.0/8^+, AS5, RS-OTHER^24-32\nmp-members: 2001:db8::/32\n"
  in
  match Ir.find_route_set ir "RS-EX" with
  | Some s ->
    Alcotest.(check int) "4 members" 4 (List.length s.members);
    (match s.members with
     | [ Ir.Rs_prefix (_, Rz_net.Range_op.Plus); Ir.Rs_asn (5, _); Ir.Rs_set ("RS-OTHER", Rz_net.Range_op.Range (24, 32)); Ir.Rs_prefix (p6, _) ] ->
       Alcotest.(check bool) "v6 member" true (Rz_net.Prefix.is_v6 p6)
     | _ -> Alcotest.fail "unexpected members")
  | None -> Alcotest.fail "route-set missing"

let test_lower_route_objects () =
  let ir =
    lower
      "route: 192.0.2.0/24\norigin: AS65001\nmnt-by: MNT-A\n\nroute6: 2001:db8::/32\norigin: AS65001\n\nroute: 192.0.2.0/24\norigin: AS65002\n"
  in
  Alcotest.(check int) "three route objects" 3 (Ir.n_route_objs ir);
  let origins =
    Ir.fold_routes ir ~init:[] ~f:(fun acc (r : Ir.route_obj) -> r.origin :: acc) |> List.sort compare
  in
  Alcotest.(check (list int)) "origins" [ 65001; 65001; 65002 ] origins

let test_lower_route_dedup () =
  let ir = lower "route: 192.0.2.0/24\norigin: AS65001\n\nroute: 192.0.2.0/24\norigin: AS65001\n" in
  Alcotest.(check int) "same (prefix, origin) deduped" 1 (Ir.n_route_objs ir)

let test_lower_route_dedup_is_per_ir () =
  (* regression: the dedup table must not leak across IR instances *)
  let first = lower "route: 192.0.2.0/24\norigin: AS65001\n" in
  let second = lower "route: 192.0.2.0/24\norigin: AS65001\n" in
  Alcotest.(check int) "first" 1 (Ir.n_route_objs first);
  Alcotest.(check int) "second" 1 (Ir.n_route_objs second)

let test_lower_route_errors () =
  let ir = lower "route: banana\norigin: AS1\n\nroute: 192.0.2.0/24\n\nroute: 192.0.2.0/24\norigin: ASX\n" in
  Alcotest.(check int) "no routes" 0 (Ir.n_route_objs ir);
  Alcotest.(check int) "three errors" 3 (List.length ir.errors)

let test_priority_merge () =
  let ir = Ir.create () in
  ignore (Lower.add_dump ir ~source:"HIGH" "aut-num: AS65001\nas-name: FIRST\n");
  ignore (Lower.add_dump ir ~source:"LOW" "aut-num: AS65001\nas-name: SECOND\n");
  match Ir.find_aut_num ir 65001 with
  | Some an ->
    Alcotest.(check string) "first wins" "FIRST" an.as_name;
    Alcotest.(check string) "source" "HIGH" an.source
  | None -> Alcotest.fail "missing"

let test_lower_peering_and_filter_sets () =
  let ir =
    lower
      "peering-set: PRNG-EX\nperring-typo: ignored\npeering: AS1 at 7.7.7.7\n\nfilter-set: FLTR-EX\nfilter: { 10.0.0.0/8^+ } AND NOT community(65535:666)\n"
  in
  Alcotest.(check bool) "peering-set present" true (Ir.find_peering_set ir "PRNG-EX" <> None);
  Alcotest.(check bool) "filter-set present" true (Ir.find_filter_set ir "FLTR-EX" <> None)

let test_lower_defaults () =
  let ir =
    lower
      "aut-num: AS65001\ndefault: to AS65000 action pref=100; networks ANY\nmp-default: afi ipv6.unicast to AS65000\n"
  in
  match Ir.find_aut_num ir 65001 with
  | Some an ->
    Alcotest.(check int) "two defaults" 2 (List.length an.defaults);
    let first = List.hd an.defaults in
    Alcotest.(check bool) "plain default" false first.multiprotocol;
    Alcotest.(check bool) "has networks filter" true (first.networks <> None);
    Alcotest.(check string) "rendered"
      "default: to AS65000 action pref = 100; networks ANY"
      (Rz_policy.Ast.default_rule_to_string first);
    let second = List.nth an.defaults 1 in
    Alcotest.(check bool) "mp flagged" true second.multiprotocol;
    Alcotest.(check int) "afi recorded" 1 (List.length second.afi)
  | None -> Alcotest.fail "missing"

let test_lower_bad_default () =
  let ir = lower "aut-num: AS65001\ndefault: from AS65000\n" in
  (match Ir.find_aut_num ir 65001 with
   | Some an -> Alcotest.(check int) "bad default dropped" 0 (List.length an.defaults)
   | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "error recorded" true (ir.errors <> [])

let test_lower_mntner () =
  let ir = lower "mntner: MNT-EXAMPLE\nauth: PGPKEY-123\nauth: CRYPT-PW foo\n" in
  match Ir.find_mntner ir "mnt-example" with
  | Some m ->
    Alcotest.(check string) "name" "MNT-EXAMPLE" m.name;
    Alcotest.(check int) "two auth" 2 (List.length m.auth)
  | None -> Alcotest.fail "mntner missing (case-insensitive lookup)"

let test_lower_inet_rtr () =
  let ir =
    lower
      "inet-rtr: RTR1.Example.NET\nlocal-as: AS65001\nifaddr: 192.0.2.1 masklen 30\n\
       peer: BGP4 192.0.2.2 asno(AS65002)\npeer: BGP4 192.0.2.6 asno(AS65003)\n\
       member-of: RTRS-BACKBONE\n"
  in
  match Ir.find_inet_rtr ir "rtr1.example.net" with
  | Some rtr ->
    Alcotest.(check (option int)) "local-as" (Some 65001) rtr.local_as;
    Alcotest.(check int) "ifaddrs" 1 (List.length rtr.ifaddrs);
    Alcotest.(check (list (pair string int))) "peers"
      [ ("192.0.2.2", 65002); ("192.0.2.6", 65003) ]
      rtr.bgp_peers;
    Alcotest.(check (list string)) "member-of" [ "RTRS-BACKBONE" ] rtr.rtr_member_of
  | None -> Alcotest.fail "inet-rtr missing (case-insensitive lookup)"

let test_lower_rtr_set () =
  let ir = lower "rtr-set: RTRS-BACKBONE\nmembers: rtr1.example.net, RTRS-EDGE\n" in
  match Ir.find_rtr_set ir "rtrs-backbone" with
  | Some s -> Alcotest.(check int) "two members" 2 (List.length s.members)
  | None -> Alcotest.fail "rtr-set missing"

let test_json_export_roundtrip () =
  let ir =
    lower
      "aut-num: AS65001\nimport: from AS1 accept ANY\n\nas-set: AS-EX\nmembers: AS1\n\nroute: 192.0.2.0/24\norigin: AS65001\n"
  in
  let text = Rz_ir.Ir_json.export_string ~indent:2 ir in
  match Rz_json.Json.of_string text with
  | Error e -> Alcotest.fail e
  | Ok doc ->
    let count key =
      match Rz_json.Json.member key doc with
      | Some (Rz_json.Json.List items) -> List.length items
      | _ -> -1
    in
    Alcotest.(check int) "aut_nums" 1 (count "aut_nums");
    Alcotest.(check int) "as_sets" 1 (count "as_sets");
    Alcotest.(check int) "routes" 1 (count "routes");
    Alcotest.(check bool) "mntners key present" true
      (Rz_json.Json.member "mntners" doc <> None);
    Alcotest.(check bool) "inet_rtrs key present" true
      (Rz_json.Json.member "inet_rtrs" doc <> None)

let test_json_rule_structure () =
  let rule =
    match
      Rz_policy.Parser.parse_rule ~direction:`Import ~multiprotocol:false
        "from AS1 action pref=10; accept AS-FOO^+"
    with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let doc = Rz_ir.Ir_json.rule_to_json rule in
  Alcotest.(check bool) "direction field" true
    (Rz_json.Json.member "direction" doc = Some (Rz_json.Json.String "import"));
  Alcotest.(check bool) "has text field" true (Rz_json.Json.member "text" doc <> None)

let suite =
  [ Alcotest.test_case "lower aut-num" `Quick test_lower_aut_num;
    Alcotest.test_case "lower mp rules" `Quick test_lower_mp_rules;
    Alcotest.test_case "bad rule -> error" `Quick test_lower_bad_rule_is_error;
    Alcotest.test_case "lower as-set" `Quick test_lower_as_set;
    Alcotest.test_case "as-set with ANY" `Quick test_lower_as_set_with_any;
    Alcotest.test_case "invalid as-set name" `Quick test_lower_invalid_as_set_name;
    Alcotest.test_case "lower route-set" `Quick test_lower_route_set;
    Alcotest.test_case "lower route objects" `Quick test_lower_route_objects;
    Alcotest.test_case "route dedup" `Quick test_lower_route_dedup;
    Alcotest.test_case "route dedup per IR" `Quick test_lower_route_dedup_is_per_ir;
    Alcotest.test_case "route errors" `Quick test_lower_route_errors;
    Alcotest.test_case "priority merge" `Quick test_priority_merge;
    Alcotest.test_case "peering/filter sets" `Quick test_lower_peering_and_filter_sets;
    Alcotest.test_case "lower defaults" `Quick test_lower_defaults;
    Alcotest.test_case "bad default -> error" `Quick test_lower_bad_default;
    Alcotest.test_case "lower mntner" `Quick test_lower_mntner;
    Alcotest.test_case "lower inet-rtr" `Quick test_lower_inet_rtr;
    Alcotest.test_case "lower rtr-set" `Quick test_lower_rtr_set;
    Alcotest.test_case "json export roundtrip" `Quick test_json_export_roundtrip;
    Alcotest.test_case "json rule structure" `Quick test_json_rule_structure ]
