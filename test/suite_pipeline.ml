(* End-to-end tests over the full pipeline (the Rpslyzer facade), plus
   aggregate-level checks of the Figures 2-6 machinery on real engine
   output. *)
module Aggregate = Rz_verify.Aggregate
module Status = Rz_verify.Status

let world =
  lazy
    (Rpslyzer.Pipeline.build_synthetic
       ~topo_params:
         { Rz_topology.Gen.default_params with n_tier1 = 3; n_mid = 25; n_stub = 80 }
       ())

let verified = lazy (Rpslyzer.Pipeline.verify (Lazy.force world))

let test_world_builds () =
  let w = Lazy.force world in
  let ir = Rz_irr.Db.ir w.db in
  Alcotest.(check bool) "aut-nums parsed" true (Hashtbl.length ir.Rz_ir.Ir.aut_nums > 50);
  Alcotest.(check bool) "routes parsed" true (Rz_ir.Ir.n_route_objs ir > 100);
  Alcotest.(check int) "two collectors" 2 (List.length w.table_dumps)

let test_verification_covers_routes () =
  let agg, `Total total, `Excluded excluded = Lazy.force verified in
  Alcotest.(check bool) "routes verified" true (Aggregate.n_routes agg > 1000);
  Alcotest.(check int) "total = verified + excluded" total
    (Aggregate.n_routes agg + excluded);
  Alcotest.(check bool) "hops counted" true
    (Aggregate.n_hops agg > Aggregate.n_routes agg)

let test_overall_shape () =
  (* the headline shape of the paper's results: verified and unrecorded
     are the dominant classes; every class except skip is populated *)
  let agg, _, _ = Lazy.force verified in
  let c = Aggregate.overall agg in
  let total = float_of_int (Aggregate.n_hops agg) in
  let frac n = float_of_int n /. total in
  Alcotest.(check bool) "verified substantial" true (frac c.verified > 0.15);
  Alcotest.(check bool) "unrecorded substantial" true (frac c.unrecorded > 0.2);
  Alcotest.(check bool) "special cases exist" true (c.relaxed + c.safelisted > 0);
  Alcotest.(check bool) "some unverified" true (c.unverified > 0)

let test_per_as_summary () =
  let agg, _, _ = Lazy.force verified in
  let s = Aggregate.per_as_summary agg in
  Alcotest.(check bool) "ases observed" true (s.n_ases > 50);
  (* the paper: a majority of ASes have a single consistent status *)
  Alcotest.(check bool) "many single-status ASes" true
    (float_of_int s.all_same_status /. float_of_int s.n_ases > 0.5);
  Alcotest.(check bool) "some all-verified" true (s.all_verified > 0);
  Alcotest.(check bool) "some all-unrecorded" true (s.all_unrecorded > 0);
  Alcotest.(check bool) "counts consistent" true
    (s.all_verified + s.all_unrecorded + s.all_relaxed + s.all_safelisted + s.all_unverified
     <= s.all_same_status)

let test_per_pair_summary () =
  let agg, _, _ = Lazy.force verified in
  let s = Aggregate.per_pair_summary agg in
  Alcotest.(check bool) "pairs observed" true (s.n_pairs > 100);
  (* the paper: ~92% of pairs have one consistent status; undeclared
     peerings dominate unverified cases (98.98%) *)
  Alcotest.(check bool) "most import pairs single-status" true (s.single_status_import > 0.7);
  Alcotest.(check bool) "most export pairs single-status" true (s.single_status_export > 0.7);
  Alcotest.(check bool) "peering mismatches dominate unverified" true
    (s.unverified_peering_mismatch > 0.5)

let test_per_route_summary () =
  let agg, _, _ = Lazy.force verified in
  let s = Aggregate.per_route_summary agg in
  Alcotest.(check bool) "routes" true (s.n_routes > 1000);
  let total = s.single_status +. s.two_statuses +. s.three_plus in
  Alcotest.(check (float 1e-6)) "fractions sum to 1" 1.0 total;
  (* the paper: only 6.6% of routes have one status across all hops *)
  Alcotest.(check bool) "mixed statuses dominate" true (s.single_status < 0.5)

let test_unrec_breakdown () =
  let agg, _, _ = Lazy.force verified in
  let b = Aggregate.unrec_breakdown agg in
  (* the paper's ordering: missing aut-nums and no-rules dominate over
     zero-route ASes and missing sets *)
  Alcotest.(check bool) "no_aut_num populated" true (b.ases_no_aut_num > 0);
  Alcotest.(check bool) "no_rules populated" true (b.ases_no_rules > 0);
  Alcotest.(check bool) "no_aut_num >= missing sets" true
    (b.ases_no_aut_num >= b.ases_missing_set)

let test_special_breakdown () =
  let agg, _, _ = Lazy.force verified in
  let b = Aggregate.special_breakdown agg in
  Alcotest.(check bool) "uphill dominates" true
    (b.ases_uphill >= b.ases_export_self && b.ases_uphill >= b.ases_import_customer);
  (* paper: more export-self than import-customer ASes *)
  Alcotest.(check bool) "export-self populated" true (b.ases_export_self > 0);
  Alcotest.(check bool) "any-special is the union" true
    (b.ases_any_special >= b.ases_uphill)

let test_usage_stats_on_world () =
  let w = Lazy.force world in
  let u = Rpslyzer.Pipeline.usage w in
  Alcotest.(check int) "13 table1 rows" 13 (List.length u.table1);
  let total_aut_nums =
    List.fold_left (fun acc (r : Rz_stats.Usage.table1_row) -> acc + r.n_aut_num) 0 u.table1
  in
  let ir = Rz_irr.Db.ir w.db in
  Alcotest.(check bool) "table1 aut-nums >= merged" true
    (total_aut_nums >= Hashtbl.length ir.Rz_ir.Ir.aut_nums);
  Alcotest.(check bool) "most peerings simple" true (u.peering_simple_fraction > 0.9);
  Alcotest.(check bool) "most ASes bgpq4-only" true (u.ases_bgpq4_only > 0.7);
  Alcotest.(check bool) "route stats populated" true (u.route_stats.n_objects > 0);
  Alcotest.(check bool) "multi-origin prefixes exist" true
    (u.route_stats.multi_origin_prefixes > 0)

let test_explain_route () =
  let w = Lazy.force world in
  let dump = List.hd w.table_dumps in
  (* find a multi-hop route *)
  let route =
    List.find (fun r -> List.length (Rz_bgp.Route.dedup_path r) >= 3) dump.routes
  in
  match Rpslyzer.Pipeline.explain_route w route with
  | Some text ->
    Alcotest.(check bool) "report mentions the route" true
      (Rz_util.Strings.split_on_string ~sep:"route " text |> List.length > 1);
    Alcotest.(check bool) "reports Export and Import lines" true
      (Rz_util.Strings.split_on_string ~sep:"Export {" text |> List.length > 1
       && Rz_util.Strings.split_on_string ~sep:"Import {" text |> List.length > 1)
  | None -> Alcotest.fail "route unexpectedly excluded"

let test_parse_rpsl_one_shot () =
  let ir = Rpslyzer.parse_rpsl "aut-num: AS65000\nimport: from AS1 accept ANY\n" in
  Alcotest.(check bool) "facade parse" true (Rz_ir.Ir.find_aut_num ir 65000 <> None);
  let json = Rpslyzer.ir_to_json ir in
  Alcotest.(check bool) "facade json" true (Result.is_ok (Rz_json.Json.of_string json))

let test_parallel_agrees_with_sequential () =
  let w = Lazy.force world in
  let seq, `Total t1, `Excluded e1 = Rpslyzer.Pipeline.verify w in
  let par, `Total t2, `Excluded e2 = Rpslyzer.Pipeline.verify_parallel ~domains:4 w in
  Alcotest.(check int) "same total" t1 t2;
  Alcotest.(check int) "same excluded" e1 e2;
  Alcotest.(check (list (pair string int))) "same hop classes"
    (Aggregate.counts_classes (Aggregate.overall seq))
    (Aggregate.counts_classes (Aggregate.overall par));
  Alcotest.(check int) "same routes" (Aggregate.n_routes seq) (Aggregate.n_routes par);
  let sum_as agg =
    List.fold_left
      (fun acc (_, i, e) -> acc + Aggregate.counts_total i + Aggregate.counts_total e)
      0 (Aggregate.per_as_list agg)
  in
  Alcotest.(check int) "same per-AS volume" (sum_as seq) (sum_as par);
  let sp_seq = Aggregate.special_breakdown seq and sp_par = Aggregate.special_breakdown par in
  Alcotest.(check int) "same uphill ASes" sp_seq.ases_uphill sp_par.ases_uphill

let test_paper_compat_mode_runs () =
  let w = Lazy.force world in
  let compat, _, _ =
    Rpslyzer.Pipeline.verify
      ~config:{ Rz_verify.Engine.default_config with paper_compat = true }
      w
  in
  let full, _, _ = Rpslyzer.Pipeline.verify w in
  Alcotest.(check bool) "compat mode verifies" true (Aggregate.n_hops compat > 0);
  Alcotest.(check int) "same hop volume" (Aggregate.n_hops full) (Aggregate.n_hops compat);
  (* the future-work extensions only add Skips in compat mode *)
  Alcotest.(check bool) "compat skips >= full skips" true
    ((Aggregate.overall compat).skipped >= (Aggregate.overall full).skipped);
  Alcotest.(check bool) "compat verifies <= full verifies" true
    ((Aggregate.overall compat).verified <= (Aggregate.overall full).verified)

(* ---------------- golden metrics ---------------- *)

(* Run the quick synthetic world end-to-end under an enabled Rz_obs
   registry with a fixed SplitMix seed and check the emitted metric
   *names* (the stable observability surface other tooling diffs
   against) plus the cross-metric invariants the engine guarantees. *)
let test_golden_metrics () =
  let module Obs = Rz_obs.Obs in
  Obs.reset ();
  Obs.enable ();
  Fun.protect ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
  @@ fun () ->
  let w =
    Rpslyzer.Pipeline.build_synthetic
      ~topo_params:
        { Rz_topology.Gen.default_params with seed = 7; n_tier1 = 3; n_mid = 15; n_stub = 50 }
      ~irr_config:{ Rz_synthirr.Config.default with seed = 8 }
      ()
  in
  let agg, `Total _, `Excluded excluded = Rpslyzer.Pipeline.verify w in
  let snap = Obs.Registry.snapshot () in
  let counters = Obs.Registry.counters snap in
  let counter name =
    match List.assoc_opt name counters with
    | Some v -> v
    | None -> Alcotest.failf "golden counter %s missing from snapshot" name
  in
  (* golden name set: these exact names are the contract *)
  List.iter
    (fun name -> ignore (counter name))
    [ "rpsl.objects_total"; "rpsl.attrs_total"; "rpsl.errors_total";
      "ir.objects_lowered_total"; "ir.rules_total"; "ir.errors_total";
      "irr.trie_inserts_total"; "irr.as_flat.hits"; "irr.as_flat.misses";
      "irr.rs_flat.hits"; "irr.rs_flat.misses";
      "synthirr.dumps_total"; "synthirr.bytes_total";
      "routegen.routes_total";
      "verify.hops_total"; "verify.routes_total"; "verify.routes_excluded_total";
      "verify.status.verified"; "verify.status.skipped"; "verify.status.unrecorded";
      "verify.status.relaxed"; "verify.status.safelisted"; "verify.status.unverified";
      "verify.filter_evals.as_set"; "verify.filter_abstains_total";
      "verify.memo_hits"; "verify.memo_misses"; "nfa.compile_hits";
      "dedup.collapsed"; "steal.batches";
      "ingest.parallel.domains"; "ingest.files_stolen";
      "snapshot.hits"; "snapshot.misses"; "snapshot.rejects";
      "trace.records_total"; "trace.dropped_total" ];
  let span_names = List.map fst (Obs.Registry.spans snap) in
  List.iter
    (fun name ->
      Alcotest.(check bool) (Printf.sprintf "span %s present" name) true
        (List.mem name span_names && Obs.Span.count name > 0))
    [ "generate"; "parse"; "lower"; "db-build"; "routegen"; "verify" ];
  (* invariants *)
  Alcotest.(check int) "hops_total = sum of per-status counters"
    (counter "verify.hops_total")
    (counter "verify.status.verified" + counter "verify.status.skipped"
     + counter "verify.status.unrecorded" + counter "verify.status.relaxed"
     + counter "verify.status.safelisted" + counter "verify.status.unverified");
  Alcotest.(check int) "hops_total = aggregate hop count"
    (Aggregate.n_hops agg) (counter "verify.hops_total");
  Alcotest.(check int) "routes counter = aggregate routes"
    (Aggregate.n_routes agg) (counter "verify.routes_total");
  Alcotest.(check int) "excluded counter" excluded (counter "verify.routes_excluded_total");
  Alcotest.(check bool) "as_flat hits+misses covers as-set filter evals" true
    (counter "irr.as_flat.hits" + counter "irr.as_flat.misses"
     >= counter "verify.filter_evals.as_set");
  Alcotest.(check int) "13 IRR dumps generated" 13 (counter "synthirr.dumps_total");
  (* ingestion sharding: every dump is stolen exactly once off the
     Atomic cursor (build_synthetic routes through Rz_ingest), and the
     pool size was recorded; no snapshot is involved in this pipeline *)
  Alcotest.(check int) "every dump stolen once"
    (counter "synthirr.dumps_total") (counter "ingest.files_stolen");
  Alcotest.(check bool) "ingest pool size recorded" true
    (counter "ingest.parallel.domains" >= 1);
  Alcotest.(check int) "no snapshot traffic" 0
    (counter "snapshot.hits" + counter "snapshot.misses" + counter "snapshot.rejects");
  Alcotest.(check bool) "routegen emitted the collector routes" true
    (counter "routegen.routes_total" > 0);
  Alcotest.(check int) "trie inserts = route objects"
    (Rz_ir.Ir.n_route_objs (Rz_irr.Db.ir w.db))
    (counter "irr.trie_inserts_total");
  (* hot-path overhaul counters: the sequential engine memoizes hop
     verdicts, so the memo ledger covers a (strict) subset of hop checks *)
  Alcotest.(check bool) "memo counters cover a subset of hops" true
    (counter "verify.memo_hits" + counter "verify.memo_misses"
     <= counter "verify.hops_total");
  Alcotest.(check bool) "memoization active on the sequential path" true
    (counter "verify.memo_misses" > 0);
  (* dedup + stealing fire on the parallel path; double the dump list so
     dedup has real multiplicity to collapse *)
  let w2 =
    { w with
      Rpslyzer.Pipeline.table_dumps = w.table_dumps @ w.table_dumps }
  in
  let agg2, `Total t2, `Excluded _ =
    Rpslyzer.Pipeline.verify_parallel ~domains:2 w2
  in
  let counters2 = Obs.Registry.counters (Obs.Registry.snapshot ()) in
  let counter2 name =
    match List.assoc_opt name counters2 with
    | Some v -> v
    | None -> Alcotest.failf "golden counter %s missing from snapshot" name
  in
  Alcotest.(check bool) "work stealing claimed batches" true
    (counter2 "steal.batches" > 0);
  Alcotest.(check bool) "dedup collapsed the doubled dumps" true
    (2 * counter2 "dedup.collapsed" >= t2);
  (* replay keeps the hop ledger exact across dedup: counters after the
     parallel run grew by exactly that run's aggregate hop count *)
  Alcotest.(check int) "parallel hop ledger exact"
    (counter "verify.hops_total" + Aggregate.n_hops agg2)
    (counter2 "verify.hops_total");
  (* the snapshot renders to JSON that Rz_json re-parses, and the run
     metadata set through Obs.Meta leads the document under "meta" *)
  Obs.Meta.set "subcommand" (Rz_json.Json.String "golden-test");
  Obs.Meta.set "seed" (Rz_json.Json.Int 7);
  let snap3 = Obs.Registry.snapshot () in
  Alcotest.(check bool) "meta in snapshot" true
    (List.assoc_opt "seed" (Obs.Registry.meta snap3) = Some (Rz_json.Json.Int 7));
  (match Rz_json.Json.of_string (Rz_json.Json.to_string (Obs.Registry.to_json snap3)) with
   | Ok doc ->
     (match Rz_json.Json.member "meta" doc with
      | Some meta ->
        Alcotest.(check bool) "meta.subcommand round-trips" true
          (Rz_json.Json.member "subcommand" meta
           = Some (Rz_json.Json.String "golden-test"))
      | None -> Alcotest.fail "snapshot JSON has no meta header")
   | Error e -> Alcotest.failf "snapshot JSON invalid: %s" e);
  (match Rz_json.Json.of_string (Rz_json.Json.to_string (Obs.Registry.to_json snap)) with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "snapshot JSON invalid: %s" e)

let test_golden_metrics_deterministic () =
  (* same seed, fresh registry: the counter panel is identical (spans
     carry wall time and are excluded) *)
  let module Obs = Rz_obs.Obs in
  let run () =
    Obs.reset ();
    Obs.enable ();
    Fun.protect ~finally:(fun () ->
        Obs.disable ())
    @@ fun () ->
    let w =
      Rpslyzer.Pipeline.build_synthetic
        ~topo_params:
          { Rz_topology.Gen.default_params with seed = 7; n_tier1 = 3; n_mid = 10; n_stub = 30 }
        ~irr_config:{ Rz_synthirr.Config.default with seed = 8 }
        ()
    in
    ignore (Rpslyzer.Pipeline.verify w);
    let counters = Obs.Registry.counters (Obs.Registry.snapshot ()) in
    Obs.reset ();
    counters
  in
  Alcotest.(check (list (pair string int))) "two runs, same counters" (run ()) (run ())

let suite =
  [ Alcotest.test_case "world builds" `Quick test_world_builds;
    Alcotest.test_case "verification covers routes" `Quick test_verification_covers_routes;
    Alcotest.test_case "overall shape" `Quick test_overall_shape;
    Alcotest.test_case "per-AS summary (fig 2)" `Quick test_per_as_summary;
    Alcotest.test_case "per-pair summary (fig 3)" `Quick test_per_pair_summary;
    Alcotest.test_case "per-route summary (fig 4)" `Quick test_per_route_summary;
    Alcotest.test_case "unrecorded breakdown (fig 5)" `Quick test_unrec_breakdown;
    Alcotest.test_case "special breakdown (fig 6)" `Quick test_special_breakdown;
    Alcotest.test_case "usage stats on world" `Quick test_usage_stats_on_world;
    Alcotest.test_case "explain route" `Quick test_explain_route;
    Alcotest.test_case "facade one-shots" `Quick test_parse_rpsl_one_shot;
    Alcotest.test_case "parallel = sequential" `Quick test_parallel_agrees_with_sequential;
    Alcotest.test_case "paper-compat mode" `Quick test_paper_compat_mode_runs;
    Alcotest.test_case "golden metrics" `Quick test_golden_metrics;
    Alcotest.test_case "golden metrics deterministic" `Quick
      test_golden_metrics_deterministic ]
