(* Exit 0 iff the file named on the command line is a strictly valid
   Prometheus text exposition by the library's own parser
   (Rz_obs.Obs.parse_prometheus): TYPE-declared families, well-formed
   sample lines, histogram bucket invariants. The CLI smokes use it to
   validate every --prom-file and !s scrape the tools emit.

   Optional `--require NAME` arguments additionally demand that a sample
   with that exact exposition name is present (e.g. verify_route_ns_count
   after a verify run). *)
let () =
  let required = ref [] in
  let path = ref None in
  let rec parse = function
    | [] -> ()
    | "--require" :: name :: rest ->
      required := name :: !required;
      parse rest
    | [ p ] when !path = None -> path := Some p
    | _ ->
      prerr_endline "usage: prom_check [--require NAME]... FILE";
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path =
    match !path with
    | Some p -> p
    | None ->
      prerr_endline "usage: prom_check [--require NAME]... FILE";
      exit 2
  in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let fail msg =
    Printf.eprintf "prom_check: %s: %s\n" path msg;
    exit 1
  in
  match Rz_obs.Obs.parse_prometheus s with
  | Error e -> fail e
  | Ok samples ->
    if samples = [] then fail "exposition holds no samples";
    List.iter
      (fun name ->
        if
          not
            (List.exists
               (fun (s : Rz_obs.Obs.prom_sample) -> s.p_name = name)
               samples)
        then fail (Printf.sprintf "required sample %S is missing" name))
      !required
