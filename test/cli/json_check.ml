(* Exit 0 iff the file named on the command line holds JSON that Rz_json
   re-parses; cli_test.sh uses it to validate `--metrics` output with the
   same parser the library ships. *)
let () =
  let path = Sys.argv.(1) in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Rz_json.Json.of_string s with
  | Ok _ -> ()
  | Error e ->
    Printf.eprintf "json_check: %s: %s\n" path e;
    exit 1
