(* Exit 0 iff the file named on the command line holds JSON that Rz_json
   re-parses; cli_test.sh uses it to validate `--metrics` output with the
   same parser the library ships.

   With --chrome the file must additionally be a well-formed Chrome
   trace-event document: a non-empty JSON array whose every element is
   an object carrying at least "ph" (a known phase) and "name". *)
let () =
  let chrome, path =
    match Sys.argv with
    | [| _; "--chrome"; p |] -> (true, p)
    | [| _; p |] -> (false, p)
    | _ ->
      prerr_endline "usage: json_check [--chrome] FILE";
      exit 2
  in
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let fail msg =
    Printf.eprintf "json_check: %s: %s\n" path msg;
    exit 1
  in
  match Rz_json.Json.of_string s with
  | Error e -> fail e
  | Ok doc ->
    if chrome then begin
      let events =
        match doc with
        | Rz_json.Json.List [] -> fail "chrome trace is empty"
        | Rz_json.Json.List es -> es
        | _ -> fail "chrome trace is not a JSON array"
      in
      List.iteri
        (fun i e ->
          let field k =
            match Rz_json.Json.member k e with
            | Some (Rz_json.Json.String v) -> v
            | _ -> fail (Printf.sprintf "event %d has no string %S" i k)
          in
          (match e with
           | Rz_json.Json.Obj _ -> ()
           | _ -> fail (Printf.sprintf "event %d is not an object" i));
          let ph = field "ph" in
          if not (List.mem ph [ "M"; "X"; "i"; "B"; "E" ]) then
            fail (Printf.sprintf "event %d has unknown phase %S" i ph);
          ignore (field "name"))
        events
    end
