#!/usr/bin/env bash
# --prom-file contract: the Prometheus text exposition every subcommand
# can emit must validate under the library's strict parser (prom_check),
# for both a clean verify run and a chaos-injected stream run, and must
# carry the samples the run is known to produce (verify latency buckets,
# stream watchdog/chaos accounting, the meta comments).
set -eu
CLI="$1"
PROM_CHECK="$2"
case "$PROM_CHECK" in /*|./*) ;; *) PROM_CHECK="./$PROM_CHECK" ;; esac
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

fail() { echo "PROM SMOKE FAILED: $1" >&2; exit 1; }

"$CLI" gen --seed 5 --tier1 3 --mid 10 --stub 30 -o "$DIR/world" > /dev/null \
  || fail "gen failed"

# --- verify: clean run, full pipeline counters + latency histograms ---
"$CLI" verify -d "$DIR/world" --prom-file "$DIR/verify.prom" > /dev/null \
  || fail "verify failed"
[ -s "$DIR/verify.prom" ] || fail "verify wrote no exposition"
"$PROM_CHECK" \
  --require verify_routes_total \
  --require verify_route_ns_count \
  --require verify_route_ns_sum \
  --require verify_hops_total \
  "$DIR/verify.prom" || fail "verify exposition invalid"
grep -q '^# meta ' "$DIR/verify.prom" || fail "verify exposition lost meta comments"
grep -q '_bucket{le="+Inf"}' "$DIR/verify.prom" \
  || fail "verify exposition has no +Inf buckets"

# --- stream --chaos: degraded-but-alive run still exposes cleanly ---
status=0
"$CLI" stream -d "$DIR/world" --chaos 0.05 --chaos-seed 7 \
  --prom-file "$DIR/stream.prom" > /dev/null 2>&1 || status=$?
[ "$status" -eq 0 ] || [ "$status" -eq 2 ] \
  || fail "stream --chaos exited $status, want 0 or 2"
[ -s "$DIR/stream.prom" ] || fail "stream wrote no exposition"
"$PROM_CHECK" \
  --require stream_retries \
  --require stream_event_ns_count \
  "$DIR/stream.prom" || fail "stream exposition invalid"

# --- the validator itself must reject garbage ---
printf 'serve qps 1\n' > "$DIR/bad.prom"
if "$PROM_CHECK" "$DIR/bad.prom" 2>/dev/null; then
  fail "prom_check accepted a malformed exposition"
fi
printf 'no_type_decl 3\n' > "$DIR/bad2.prom"
if "$PROM_CHECK" "$DIR/bad2.prom" 2>/dev/null; then
  fail "prom_check accepted a sample without a TYPE declaration"
fi

echo "prom smoke: verify + chaos-stream expositions strict-parse"
