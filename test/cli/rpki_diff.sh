#!/usr/bin/env bash
# Differential anchor for the RPKI cross-validation scenario: the
# default-seed agreement matrix is committed as rpki_golden.json. Any
# change to topology generation, RPSL rendering, ingestion, verification,
# ROA generation, or ROV that moves a single cell fails the structural
# diff — by design. Regenerate with:
#   rpslyzer gen --seed 5 --tier1 3 --mid 15 --stub 40 -o W
#   rpslyzer rpki -d W --json > test/cli/rpki_golden.json
set -eu
CLI="$1"
GOLDEN="$2"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT
fail() { echo "RPKI DIFF TEST FAILED: $1" >&2; exit 1; }

"$CLI" gen --seed 5 --tier1 3 --mid 15 --stub 40 -o "$DIR/world" >/dev/null

# the anchor seed must reproduce the committed golden bit-for-bit
"$CLI" rpki -d "$DIR/world" --golden "$GOLDEN" > "$DIR/rpki.txt" 2> "$DIR/rpki.err" \
  || fail "golden mismatch on the anchor seed: $(cat "$DIR/rpki.err")"
grep -q 'golden: MATCH' "$DIR/rpki.txt" || fail "MATCH marker missing"

# a perturbed run (different world seed) must be rejected with exit 1
"$CLI" gen --seed 6 --tier1 3 --mid 15 --stub 40 -o "$DIR/world2" >/dev/null
rc=0
"$CLI" rpki -d "$DIR/world2" --golden "$GOLDEN" >/dev/null 2> "$DIR/diff.txt" || rc=$?
[ "$rc" -eq 1 ] || fail "perturbed run exited $rc, want 1"
grep -q 'golden: MISMATCH' "$DIR/diff.txt" || fail "mismatch not reported"
grep -q 'cross\.' "$DIR/diff.txt" || fail "diff does not localize the moved cells"

# hostile ROA input: corruption must keep going (matrix still printed)
# and exit 2 per the faultinject degraded contract
rc=0
"$CLI" rpki -d "$DIR/world" --fault-rate 0.8 > "$DIR/faulted.txt" 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || fail "faulted run exited $rc, want 2"
grep -q 'agreement:' "$DIR/faulted.txt" || fail "faulted run did not keep going"

echo "rpki diff: golden anchored, perturbation rejected, degradation contained"
