#!/usr/bin/env bash
# Integration smoke of every CLI subcommand against a generated world.
set -eu
CLI="$1"
JSON_CHECK="${2:-}"
# dune hands us a path relative to the sandbox cwd; make it invocable
case "$JSON_CHECK" in ""|/*|./*) ;; *) JSON_CHECK="./$JSON_CHECK" ;; esac
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

fail() { echo "CLI TEST FAILED: $1" >&2; exit 1; }
expect() { # expect <label> <pattern> <file>
  grep -q "$2" "$3" || fail "$1"
}

"$CLI" gen --seed 5 --tier1 3 --mid 15 --stub 40 -o "$DIR/world" > "$DIR/gen.txt"
expect gen 'wrote 13 IRR dumps' "$DIR/gen.txt"
test -f "$DIR/world/RIPE.db" || fail "RIPE dump missing"
test -f "$DIR/world/as-rel.txt" || fail "as-rel missing"

"$CLI" stats -d "$DIR/world" > "$DIR/stats.txt"
expect stats 'Table 1' "$DIR/stats.txt"
expect stats-errors 'syntax 15' "$DIR/stats.txt"

"$CLI" verify -d "$DIR/world" -v > "$DIR/verify.txt"
expect verify 'hop statuses' "$DIR/verify.txt"
expect verify-classes 'unrecorded' "$DIR/verify.txt"

"$CLI" parse -d "$DIR/world" -o "$DIR/ir.json" > "$DIR/parse.txt"
expect parse 'wrote IR' "$DIR/parse.txt"
expect json '"aut_nums"' "$DIR/ir.json"

# pick a route whose path has two distinct ASes (prepending makes some
# multi-token paths single-AS) and explain it
ROUTE=$(awk -F'|' 'NF==2 { n=split($2, a, " "); for (i=2; i<=n; i++) if (a[i] != a[1]) { print; exit } }' \
          "$DIR/world/synth-rrc00.routes")
PFX=${ROUTE%%|*}; PATH_ASNS=${ROUTE#*|}
"$CLI" explain -d "$DIR/world" "$PFX" $PATH_ASNS > "$DIR/explain.txt"
grep -qE '(Ok|Meh|Bad|Unrec|Skip)(Import|Export)' "$DIR/explain.txt" || fail "explain"

"$CLI" whois -d "$DIR/world" AS1000 > "$DIR/whois.txt"
expect whois 'aut-num' "$DIR/whois.txt"

"$CLI" query -d "$DIR/world" '!gAS1000' > "$DIR/query.txt"
grep -qE '^A[0-9]+' "$DIR/query.txt" || fail "query !g"
"$CLI" query -d "$DIR/world" '!iAS-NOWHERE' > "$DIR/query2.txt"
expect query-miss '^D' "$DIR/query2.txt"

"$CLI" peval -d "$DIR/world" 'AS1000' -A > "$DIR/peval.txt" || [ $? -eq 2 ] || fail "peval"

# lint exits 1 when errors exist — both outcomes acceptable, output must parse
"$CLI" lint -d "$DIR/world" > "$DIR/lint.txt" || true
expect lint 'diagnostics' "$DIR/lint.txt"

"$CLI" classify -d "$DIR/world" > "$DIR/classify.txt"
expect classify 'unregistered' "$DIR/classify.txt"

# --metrics: `-` appends a JSON snapshot as the last stdout line; a path
# writes the same document to that file. Without the flag nothing changes
# (the earlier verify run above already exercised that: exit 0, no JSON).
"$CLI" verify -d "$DIR/world" --metrics - > "$DIR/verify_metrics.txt"
tail -n 1 "$DIR/verify_metrics.txt" > "$DIR/metrics_stdout.json"
expect metrics-counters '"verify.hops_total"' "$DIR/metrics_stdout.json"
expect metrics-spans '"db-build"' "$DIR/metrics_stdout.json"
if grep -q '"counters"' "$DIR/verify.txt"; then fail "metrics JSON leaked without --metrics"; fi

"$CLI" verify -d "$DIR/world" --metrics "$DIR/metrics_file.json" > "$DIR/verify2.txt"
expect metrics-file '"spans"' "$DIR/metrics_file.json"
# verify output itself must be unchanged by the flag
expect metrics-verify-intact 'hop statuses' "$DIR/verify2.txt"

if [ -n "$JSON_CHECK" ]; then
  "$JSON_CHECK" "$DIR/metrics_stdout.json" || fail "stdout metrics JSON does not re-parse via Rz_json"
  "$JSON_CHECK" "$DIR/metrics_file.json" || fail "file metrics JSON does not re-parse via Rz_json"
fi
# the --metrics snapshot leads with the run-metadata header
expect metrics-meta '"meta"' "$DIR/metrics_file.json"
expect metrics-meta-cmd '"subcommand":"verify"' "$DIR/metrics_file.json"

# --trace + --metrics-stream around a verify run: Chrome trace-event
# export (spans as "X", hop records as "i") and JSONL metric streaming.
"$CLI" verify -d "$DIR/world" --trace "$DIR/trace.json" --trace-sample all \
  --metrics-stream "$DIR/stream.jsonl" --metrics-interval 1 > "$DIR/verify3.txt"
expect trace-verify-intact 'hop statuses' "$DIR/verify3.txt"
expect trace-span '"ph":"X"' "$DIR/trace.json"
expect trace-hop '"ph":"i"' "$DIR/trace.json"
test -s "$DIR/stream.jsonl" || fail "metrics stream empty"
expect stream-metrics '"metrics"' "$DIR/stream.jsonl"
head -n 1 "$DIR/stream.jsonl" > "$DIR/stream_line.json"

# explain --json: per-hop verdicts with full provenance records
"$CLI" explain -d "$DIR/world" --json "$PFX" $PATH_ASNS > "$DIR/explain.json"
expect explain-json-trace '"trace"' "$DIR/explain.json"
expect explain-json-verdict '"verdict"' "$DIR/explain.json"

if [ -n "$JSON_CHECK" ]; then
  "$JSON_CHECK" --chrome "$DIR/trace.json" || fail "trace file is not a well-formed Chrome trace"
  "$JSON_CHECK" "$DIR/explain.json" || fail "explain --json does not re-parse via Rz_json"
  "$JSON_CHECK" "$DIR/stream_line.json" || fail "metrics stream line does not re-parse"
fi

# rpki: RFC 6811 origin validation cross-validated against the RPSL
# verdicts, over the ROAs gen wrote next to the dumps
test -f "$DIR/world/roas.csv" || fail "roas.csv missing"
expect gen-roas 'ROAs' "$DIR/gen.txt"
"$CLI" rpki -d "$DIR/world" > "$DIR/rpki.txt"
expect rpki-matrix 'RPSL verdict x RPKI' "$DIR/rpki.txt"
expect rpki-agreement 'agreement:' "$DIR/rpki.txt"
expect rpki-loaded 'ROAs: .* loaded' "$DIR/rpki.txt"

"$CLI" rpki -d "$DIR/world" --json > "$DIR/rpki.json"
expect rpki-json-cross '"cross"' "$DIR/rpki.json"
expect rpki-json-matrix '"matrix"' "$DIR/rpki.json"

"$CLI" rpki -d "$DIR/world" --metrics "$DIR/rpki_metrics.json" > /dev/null
expect rpki-metrics-rov '"rpki.rov_total"' "$DIR/rpki_metrics.json"
expect rpki-metrics-cross '"rpki.cross.routes_total"' "$DIR/rpki_metrics.json"

if [ -n "$JSON_CHECK" ]; then
  "$JSON_CHECK" "$DIR/rpki.json" || fail "rpki --json does not re-parse via Rz_json"
  "$JSON_CHECK" "$DIR/rpki_metrics.json" || fail "rpki metrics JSON does not re-parse"
fi

"$CLI" gen --seed 6 --tier1 3 --mid 15 --stub 40 -o "$DIR/world2" >/dev/null
"$CLI" diff "$DIR/world" "$DIR/world2" > "$DIR/diff.txt"
expect diff 'aut-nums:' "$DIR/diff.txt"

echo "cli smoke: all subcommands ok"
