#!/usr/bin/env bash
# End-to-end contract for the paper-scale path: gen --world-scale paper
# streams a world to disk, verify --shards merges to exactly the
# in-process aggregate (fingerprints equal across shard counts), and a
# corrupt worker frame (RPSLYZER_SHARD_FAULT) degrades the run — exit 2,
# recovery counter lit — while still producing the same fingerprint.
set -eu
CLI="$1"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT
fail() { echo "SCALE SMOKE TEST FAILED: $1" >&2; exit 1; }

# a small paper-preset world, streamed one route at a time
"$CLI" gen --world-scale paper --scale 0.01 --seed 11 -o "$DIR/world" \
  > "$DIR/gen.txt" || fail "gen --world-scale paper failed"
grep -q 'streamed' "$DIR/gen.txt" || fail "gen did not report streaming"
ls "$DIR/world"/synth-rrc*.routes >/dev/null 2>&1 \
  || fail "no collector dumps written"

# an unknown preset is a usage error, not a silent fallback
rc=0
"$CLI" gen --world-scale warp9 -o "$DIR/bogus" >/dev/null 2>&1 || rc=$?
[ "$rc" -ne 0 ] || fail "unknown preset accepted"

fingerprint() { grep 'aggregate fingerprint:' "$1" | awk '{print $3}'; }

# sharded runs agree with each other (and with the in-process oracle's
# accounting) — the byte-identical-merge contract
"$CLI" verify -d "$DIR/world" > "$DIR/oracle.txt" \
  || fail "in-process verify failed"
"$CLI" verify -d "$DIR/world" --shards 1 > "$DIR/s1.txt" \
  || fail "1-shard verify failed"
"$CLI" verify -d "$DIR/world" --shards 3 > "$DIR/s3.txt" \
  || fail "3-shard verify failed"
FP1=$(fingerprint "$DIR/s1.txt"); FP3=$(fingerprint "$DIR/s3.txt")
[ -n "$FP1" ] || fail "no fingerprint in 1-shard output"
[ "$FP1" = "$FP3" ] || fail "fingerprints differ across shard counts: $FP1 vs $FP3"
ORACLE_LINE=$(grep '^verified' "$DIR/oracle.txt" | cut -d'(' -f1-2)
for f in s1 s3; do
  SHARD_LINE=$(grep '^verified' "$DIR/$f.txt" | cut -d'(' -f1-2)
  # compare "verified N routes (M excluded" — timing differs per run
  [ "${ORACLE_LINE%% in *}" = "${SHARD_LINE%% in *}" ] \
    || fail "$f accounting differs from oracle"
done

# a corrupt result frame is rejected, re-verified inline, and degrades
# the run: exit 2, same fingerprint
rc=0
RPSLYZER_SHARD_FAULT=1 "$CLI" verify -d "$DIR/world" --shards 3 \
  > "$DIR/corrupt.txt" 2> "$DIR/corrupt.err" || rc=$?
[ "$rc" -eq 2 ] || fail "corrupt-frame run exited $rc, want 2"
grep -q 'result: DEGRADED' "$DIR/corrupt.txt" || fail "corrupt run not degraded"
grep -q 'shard 1 rejected' "$DIR/corrupt.err" || fail "rejection not reported"
[ "$(fingerprint "$DIR/corrupt.txt")" = "$FP1" ] \
  || fail "fingerprint changed under the corrupt-frame drill"

# a crashed worker takes the same recovery path
rc=0
RPSLYZER_SHARD_FAULT=0:crash "$CLI" verify -d "$DIR/world" --shards 2 \
  > "$DIR/crash.txt" 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || fail "crashed-worker run exited $rc, want 2"
[ "$(fingerprint "$DIR/crash.txt")" = "$FP1" ] \
  || fail "fingerprint changed under the crashed-worker drill"

echo "scale smoke: OK"
