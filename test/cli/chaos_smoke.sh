#!/usr/bin/env bash
# Chaos smoke: the faultinject harness at a fixed seed must complete the
# whole pipeline on corrupted input (exit 2 = degraded-but-alive, every
# recovery counter nonzero), and at rate 0 must report a clean run
# (exit 0, every recovery counter zero). The script itself exits 0 when
# the contract holds.
set -u
CLI="$1"
JSON_CHECK="${2:-}"
case "$JSON_CHECK" in ""|/*|./*) ;; *) JSON_CHECK="./$JSON_CHECK" ;; esac
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

fail() { echo "CHAOS SMOKE FAILED: $1" >&2; exit 1; }

counter() { # counter <name> <metrics-file> -> value (0 when absent)
  sed -n "s/.*\"$1\"[^0-9-]*\([0-9][0-9]*\).*/\1/p" "$2" | head -n1
}

RECOVERY="fault.injected reader.lines_dropped flatten.truncated nfa.capped verify.domain_retries"

# --- corrupted run: fixed seed, 10% object corruption ---
"$CLI" faultinject --seed 7 --rate 0.10 --metrics "$DIR/chaos.json" \
  > "$DIR/chaos.txt" 2>&1
status=$?
[ "$status" -eq 2 ] || fail "corrupted run: expected exit 2, got $status"
[ -s "$DIR/chaos.txt" ] || fail "corrupted run: empty report"
grep -q 'faults injected' "$DIR/chaos.txt" || fail "report missing fault summary"
grep -q 'DEGRADED' "$DIR/chaos.txt" || fail "report missing DEGRADED verdict"
if [ -n "$JSON_CHECK" ]; then
  "$JSON_CHECK" "$DIR/chaos.json" || fail "metrics JSON malformed"
fi
for name in $RECOVERY; do
  v=$(counter "$name" "$DIR/chaos.json")
  [ -n "$v" ] && [ "$v" -gt 0 ] || fail "corrupted run: counter $name not positive (got '${v:-absent}')"
done

# --- clean run: rate 0 must be a no-op ---
"$CLI" faultinject --seed 7 --rate 0 --metrics "$DIR/clean.json" \
  > "$DIR/clean.txt" 2>&1
status=$?
[ "$status" -eq 0 ] || fail "clean run: expected exit 0, got $status"
grep -q 'CLEAN' "$DIR/clean.txt" || fail "clean run missing CLEAN verdict"
for name in $RECOVERY; do
  v=$(counter "$name" "$DIR/clean.json")
  [ -z "$v" ] || [ "$v" -eq 0 ] || fail "clean run: counter $name nonzero ($v)"
done

echo "chaos smoke OK"
