#!/usr/bin/env bash
# End-to-end contract for the stream subcommand: the anchor seed must
# reproduce the committed windowed-aggregate golden, a perturbed world
# must be rejected with exit 1, a journal replay must reproduce the
# generated run, corrupt journal lines and chaos drills must degrade
# (exit 2, recovery counters lit) without crashing, and --metrics output
# must re-parse with the library's own JSON parser. Regenerate with:
#   rpslyzer stream --seed 7 --events 192 --window 48 --json \
#     > test/cli/stream_golden.json
set -eu
CLI="$1"
GOLDEN="$2"
JSON_CHECK="$3"
case "$JSON_CHECK" in /*|./*) ;; *) JSON_CHECK="./$JSON_CHECK" ;; esac
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT
fail() { echo "STREAM SMOKE TEST FAILED: $1" >&2; exit 1; }

ANCHOR="--seed 7 --events 192 --window 48"

# the anchor seed reproduces the committed golden bit-for-bit
"$CLI" stream $ANCHOR --golden "$GOLDEN" > "$DIR/stream.txt" 2> "$DIR/stream.err" \
  || fail "golden mismatch on the anchor seed: $(cat "$DIR/stream.err")"
grep -q 'golden: MATCH' "$DIR/stream.txt" || fail "MATCH marker missing"
grep -q 'result: CLEAN' "$DIR/stream.txt" || fail "anchor run not clean"
grep -q '== windows ==' "$DIR/stream.txt" || fail "windowed aggregates missing"

# a perturbed feed (different seed) must be rejected with exit 1
rc=0
"$CLI" stream --seed 8 --events 192 --window 48 --golden "$GOLDEN" \
  >/dev/null 2> "$DIR/diff.txt" || rc=$?
[ "$rc" -eq 1 ] || fail "perturbed run exited $rc, want 1"
grep -q 'golden: MISMATCH' "$DIR/diff.txt" || fail "mismatch not reported"
grep -q 'windows' "$DIR/diff.txt" || fail "diff does not localize the moved cells"

# a journal round-trip reproduces the generated run exactly
"$CLI" stream $ANCHOR --journal-out "$DIR/feed.journal" >/dev/null
"$CLI" stream --seed 7 --window 48 --replay "$DIR/feed.journal" \
  --golden "$GOLDEN" > "$DIR/replay.txt" \
  || fail "journal replay does not reproduce the golden"
grep -q 'golden: MATCH' "$DIR/replay.txt" || fail "replay MATCH marker missing"

# corrupt journal lines are rejected, counted, and degrade the run (exit 2)
{ cat "$DIR/feed.journal"; printf 'garbage line\n9999 A not-a-prefix|65001\n'; } \
  > "$DIR/corrupt.journal"
rc=0
"$CLI" stream --seed 7 --window 48 --replay "$DIR/corrupt.journal" \
  > "$DIR/corrupt.txt" 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || fail "corrupt replay exited $rc, want 2"
grep -q 'result: DEGRADED' "$DIR/corrupt.txt" || fail "corrupt replay not marked degraded"

# chaos drill: keeps going, exits 2, and the stream.* recovery counters
# in the --metrics snapshot are nonzero and re-parse as JSON
rc=0
"$CLI" stream $ANCHOR --chaos 0.5 --chaos-seed 3 --metrics "$DIR/metrics.json" \
  > "$DIR/chaos.txt" 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || fail "chaos run exited $rc, want 2"
grep -q 'result: DEGRADED' "$DIR/chaos.txt" || fail "chaos run not marked degraded"
grep -q '== windows ==' "$DIR/chaos.txt" || fail "chaos run did not keep going"
"$JSON_CHECK" "$DIR/metrics.json" || fail "metrics JSON does not re-parse via Rz_json"
grep -Eq '"stream\.retries": *[1-9]' "$DIR/metrics.json" \
  || fail "chaos fired no stream.retries"
grep -Eq '"stream\.(events_abandoned|retries)": *[1-9]' "$DIR/metrics.json" \
  || fail "no nonzero stream.* recovery counter"

# full chaos: every event abandoned, still no crash, still exit 2
rc=0
"$CLI" stream --seed 7 --events 64 --chaos 1.0 --json > "$DIR/full.json" 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || fail "chaos 1.0 exited $rc, want 2"
"$JSON_CHECK" "$DIR/full.json" || fail "chaos 1.0 JSON does not re-parse"
grep -q '"abandoned": 64' "$DIR/full.json" || fail "chaos 1.0 did not abandon everything"
grep -q '"rib": 0' "$DIR/full.json" || fail "abandoned events leaked into the RIB"

echo "stream smoke: golden anchored, replay faithful, corruption and chaos contained"
