#!/usr/bin/env bash
# End-to-end contract for the serve subcommand: a server on an ephemeral
# Unix socket answers scripted client queries against a generated world,
# a !u control query applies the generated NRTM journal as a live
# copy-on-write generation swap (visible in the very next answer), the
# !s scrape and `rpslyzer top --once` report the live generation, the
# structured access log records every query with the generation it ran
# against, a SIGTERM shutdown is clean (exit 0, "stopped at generation"
# line), and the --metrics snapshot re-parses with the library's own
# JSON parser and carries the serve.* session/query counters, the
# per-query latency histogram, and the swap-cost histogram. The !s
# exposition and the server's --prom-file must strict-parse under
# prom_check.
set -eu
CLI="$1"
JSON_CHECK="$2"
PROM_CHECK="$3"
case "$JSON_CHECK" in /*|./*) ;; *) JSON_CHECK="./$JSON_CHECK" ;; esac
case "$PROM_CHECK" in /*|./*) ;; *) PROM_CHECK="./$PROM_CHECK" ;; esac
DIR=$(mktemp -d)
SERVER=
cleanup() {
  [ -n "$SERVER" ] && kill "$SERVER" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT
fail() { echo "SERVE SMOKE TEST FAILED: $1" >&2; exit 1; }

# a small world plus a 24-op churn journal against its dumps
"$CLI" gen -o "$DIR/world" --seed 11 --tier1 3 --mid 10 --stub 30 \
  --journal-ops 24 --journal-out "$DIR/journal.nrtm" > /dev/null \
  || fail "gen failed"
[ -s "$DIR/journal.nrtm" ] || fail "journal not written"

SOCK="$DIR/irrd.sock"
"$CLI" serve -d "$DIR/world" --socket "$SOCK" --workers 2 \
  --journal "$DIR/journal.nrtm" --journal-batch 1000 \
  --access-log "$DIR/access.jsonl" \
  --metrics "$DIR/metrics.json" --prom-file "$DIR/serve.prom" \
  > "$DIR/server.log" 2>&1 &
SERVER=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || fail "server socket never appeared: $(cat "$DIR/server.log")"
grep -q 'listening on' "$DIR/server.log" || fail "no listening line"

# generation 1: the journal's fresh 198.18/15 route does not exist yet
"$CLI" serve --connect "$SOCK" '!r198.18.0.0/24' > "$DIR/q1.txt" \
  || fail "client query failed"
grep -q '^D$' "$DIR/q1.txt" || fail "fresh route visible before the swap"

# !u applies the whole journal as one live generation swap
"$CLI" serve --connect "$SOCK" '!u' > "$DIR/swap.txt" || fail "!u failed"
grep -q 'generation 2: applied 24 ops' "$DIR/swap.txt" \
  || fail "swap not applied: $(cat "$DIR/swap.txt")"

# the same query now answers from generation 2
"$CLI" serve --connect "$SOCK" '!r198.18.0.0/24' > "$DIR/q2.txt" \
  || fail "post-swap query failed"
grep -q '198.18.0.0/24' "$DIR/q2.txt" || fail "journal route not served after swap"
grep -q '^D$' "$DIR/q2.txt" && fail "post-swap query still not-found"

# a drained journal acks !u with C (no data)
"$CLI" serve --connect "$SOCK" '!u' > "$DIR/drained.txt" || fail "drained !u failed"
grep -q '^C$' "$DIR/drained.txt" || fail "drained journal should answer C"

# !s scrape: live telemetry rides the normal query path and reports the
# post-swap generation; the exposition strict-parses under prom_check
"$CLI" serve --connect "$SOCK" '!s' > "$DIR/scrape.txt" || fail "!s failed"
sed -e '1d' -e '$d' "$DIR/scrape.txt" > "$DIR/scrape.prom"
"$PROM_CHECK" \
  --require serve_generation \
  --require serve_serial \
  --require serve_queries_total \
  --require serve_query_window_window_rate \
  --require serve_query_window_window_p99 \
  "$DIR/scrape.prom" || fail "!s exposition invalid"
grep -q '^serve_generation 2$' "$DIR/scrape.prom" \
  || fail "!s does not report the post-swap generation"
grep -q '^serve_serial 24$' "$DIR/scrape.prom" \
  || fail "!s does not report the post-swap serial"
grep -q '^# meta generation_fingerprint "' "$DIR/scrape.prom" \
  || fail "!s carries no generation fingerprint"

# top --once renders the one-screen health view off the same scrape
"$CLI" top --connect "$SOCK" --once > "$DIR/top.txt" || fail "top --once failed"
grep -q 'generation 2 (serial 24)' "$DIR/top.txt" \
  || fail "top does not show the live generation: $(cat "$DIR/top.txt")"
grep -q 'qps (window)' "$DIR/top.txt" || fail "top missing qps line"
grep -q 'query p99' "$DIR/top.txt" || fail "top missing latency line"

# clean SIGTERM shutdown: exit 0, final generation line, metrics written
kill -TERM "$SERVER"
rc=0
wait "$SERVER" || rc=$?
SERVER=
[ "$rc" -eq 0 ] || fail "server exited $rc, want 0: $(cat "$DIR/server.log")"
grep -q 'stopped at generation 2 (serial 24)' "$DIR/server.log" \
  || fail "no clean stop line: $(cat "$DIR/server.log")"

"$JSON_CHECK" "$DIR/metrics.json" || fail "metrics JSON does not re-parse via Rz_json"
grep -Eq '"serve\.sessions_total": *[1-9]' "$DIR/metrics.json" \
  || fail "no sessions counted"
grep -Eq '"serve\.queries_total": *[1-9]' "$DIR/metrics.json" \
  || fail "no queries counted"
grep -Eq '"serve\.generations": *1' "$DIR/metrics.json" \
  || fail "generation swap not counted"
grep -Eq '"nrtm\.ops_applied": *24' "$DIR/metrics.json" \
  || fail "journal ops not accounted"
grep -Eq '"serve\.queries_rejected": *0' "$DIR/metrics.json" \
  || fail "clean run tripped the query guards"
grep -Eq '"serve\.query_ns": *\{"count": *[1-9]' "$DIR/metrics.json" \
  || fail "per-query latency histogram missing"
grep -Eq '"serve\.swap_ns": *\{"count": *1' "$DIR/metrics.json" \
  || fail "swap-cost histogram missing"

# the server's own --prom-file exposition (written at shutdown)
[ -s "$DIR/serve.prom" ] || fail "server wrote no --prom-file exposition"
"$PROM_CHECK" \
  --require serve_queries_total \
  --require serve_query_ns_count \
  --require serve_generations \
  "$DIR/serve.prom" || fail "server --prom-file exposition invalid"

# structured access log: one JSON record per query, each valid JSON,
# carrying the generation the query actually ran against
[ -s "$DIR/access.jsonl" ] || fail "access log empty"
while IFS= read -r line; do
  printf '%s' "$line" > "$DIR/one.json"
  "$JSON_CHECK" "$DIR/one.json" || fail "access-log record is not valid JSON: $line"
done < "$DIR/access.jsonl"
grep -q '"query":"!u"' "$DIR/access.jsonl" || fail "access log missing the !u record"
grep -q '"query":"!s"' "$DIR/access.jsonl" || fail "access log missing the !s record"
grep -q '"generation":1' "$DIR/access.jsonl" \
  || fail "access log has no generation-1 record"
grep -q '"generation":2' "$DIR/access.jsonl" \
  || fail "access log has no generation-2 record"
grep -q '"class":' "$DIR/access.jsonl" || fail "access log records carry no class"
grep -q '"latency_ns":' "$DIR/access.jsonl" || fail "access log records carry no latency"
grep -q '"rejected"' "$DIR/access.jsonl" \
  && fail "clean run logged a rejected query"

echo "serve smoke: live swap + !s/top telemetry + access log, shutdown clean"
