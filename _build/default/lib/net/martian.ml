let p = Prefix.of_string_exn

let v4_list =
  [ p "0.0.0.0/8";       (* "this" network *)
    p "10.0.0.0/8";      (* RFC 1918 *)
    p "100.64.0.0/10";   (* CGN shared space *)
    p "127.0.0.0/8";     (* loopback *)
    p "169.254.0.0/16";  (* link local *)
    p "172.16.0.0/12";   (* RFC 1918 *)
    p "192.0.0.0/24";    (* IETF protocol assignments *)
    p "192.0.2.0/24";    (* TEST-NET-1 *)
    p "192.168.0.0/16";  (* RFC 1918 *)
    p "198.18.0.0/15";   (* benchmarking *)
    p "198.51.100.0/24"; (* TEST-NET-2 *)
    p "203.0.113.0/24";  (* TEST-NET-3 *)
    p "224.0.0.0/4";     (* multicast *)
    p "240.0.0.0/4" ]    (* reserved *)

let v6_list =
  [ p "::/8";            (* loopback, unspecified, v4-mapped *)
    p "100::/64";        (* discard only *)
    p "2001:db8::/32";   (* documentation *)
    p "fc00::/7";        (* unique local *)
    p "fe80::/10";       (* link local *)
    p "ff00::/8" ]       (* multicast *)

let is_martian prefix =
  let overlong =
    if Prefix.is_v4 prefix then prefix.Prefix.len > 24 else prefix.Prefix.len > 48
  in
  overlong
  || List.exists
       (fun m -> Prefix.contains m prefix)
       (if Prefix.is_v4 prefix then v4_list else v6_list)
