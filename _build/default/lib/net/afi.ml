type family = Ipv4 | Ipv6 | Any_family
type subfamily = Unicast | Multicast | Any_sub
type t = { family : family; sub : subfamily }

let any = { family = Any_family; sub = Any_sub }
let ipv4_unicast = { family = Ipv4; sub = Unicast }
let ipv6_unicast = { family = Ipv6; sub = Unicast }

let parse s =
  let s = Rz_util.Strings.strip (Rz_util.Strings.lowercase s) in
  let family_of = function
    | "ipv4" -> Ok Ipv4
    | "ipv6" -> Ok Ipv6
    | "any" -> Ok Any_family
    | other -> Error (Printf.sprintf "unknown afi family %S" other)
  in
  let sub_of = function
    | "unicast" -> Ok Unicast
    | "multicast" -> Ok Multicast
    | "any" -> Ok Any_sub
    | other -> Error (Printf.sprintf "unknown afi subfamily %S" other)
  in
  match String.index_opt s '.' with
  | None ->
    (match family_of s with
     | Ok family -> Ok { family; sub = Any_sub }
     | Error e -> Error e)
  | Some i ->
    let fam = String.sub s 0 i and sub = String.sub s (i + 1) (String.length s - i - 1) in
    (match (family_of fam, sub_of sub) with
     | Ok family, Ok sub -> Ok { family; sub }
     | Error e, _ | _, Error e -> Error e)

let parse_list s =
  let parts = String.split_on_char ',' s |> List.map Rz_util.Strings.strip in
  let parts = List.filter (fun p -> p <> "") parts in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      (match parse p with
       | Ok afi -> go (afi :: acc) rest
       | Error e -> Error e)
  in
  go [] parts

let to_string { family; sub } =
  let f = match family with Ipv4 -> "ipv4" | Ipv6 -> "ipv6" | Any_family -> "any" in
  match sub with
  | Any_sub -> f
  | Unicast -> f ^ ".unicast"
  | Multicast -> f ^ ".multicast"

let matches_prefix { family; sub } p =
  let family_ok =
    match family with
    | Any_family -> true
    | Ipv4 -> Prefix.is_v4 p
    | Ipv6 -> Prefix.is_v6 p
  in
  let sub_ok = match sub with Multicast -> false | Unicast | Any_sub -> true in
  family_ok && sub_ok

let matches_any afis p =
  match afis with [] -> true | _ -> List.exists (fun afi -> matches_prefix afi p) afis

let equal a b = a = b
let pp fmt t = Format.pp_print_string fmt (to_string t)
