(** Autonomous System Numbers.

    4-byte ASNs are stored in a native [int] (OCaml ints are 63-bit on all
    supported platforms). Accepts the [ASxxx] RPSL form, plain decimal, and
    the asdot notation ([1.5] = 65541) that appears in some registries. *)

type t = int

val min_value : t
val max_value : t

val of_string : string -> (t, string) result
(** Parse ["AS65000"], ["65000"] or asdot ["1.5"] (case-insensitive). *)

val of_string_exn : string -> t
(** @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Canonical ["AS65000"] form. *)

val to_asdot : t -> string
(** Asdot form ["1.5"] for 4-byte ASNs, plain decimal otherwise. *)

val is_private : t -> bool
(** True for the IANA private-use ranges 64512-65534 and
    4200000000-4294967294. *)

val is_reserved : t -> bool
(** True for 0, 23456 (AS_TRANS), 65535, and 4294967295. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
