type t =
  | None_
  | Minus
  | Plus
  | Exact of int
  | Range of int * int

let parse s =
  let s = Rz_util.Strings.strip s in
  if s = "" then Ok None_
  else if s.[0] <> '^' then Error (Printf.sprintf "range operator %S must start with ^" s)
  else
    let body = String.sub s 1 (String.length s - 1) in
    match body with
    | "-" -> Ok Minus
    | "+" -> Ok Plus
    | _ ->
      (match String.index_opt body '-' with
       | None ->
         (match int_of_string_opt body with
          | Some n when n >= 0 && n <= 128 -> Ok (Exact n)
          | _ -> Error (Printf.sprintf "bad range operator %S" s))
       | Some i ->
         let lo = String.sub body 0 i
         and hi = String.sub body (i + 1) (String.length body - i - 1) in
         (match (int_of_string_opt lo, int_of_string_opt hi) with
          | Some lo, Some hi when lo >= 0 && hi >= lo && hi <= 128 -> Ok (Range (lo, hi))
          | _ -> Error (Printf.sprintf "bad range operator %S" s)))

let to_string = function
  | None_ -> ""
  | Minus -> "^-"
  | Plus -> "^+"
  | Exact n -> Printf.sprintf "^%d" n
  | Range (lo, hi) -> Printf.sprintf "^%d-%d" lo hi

let matches op ~declared ~observed =
  Prefix.contains declared observed
  &&
  let dl = declared.Prefix.len and ol = observed.Prefix.len in
  match op with
  | None_ -> ol = dl
  | Minus -> ol > dl
  | Plus -> ol >= dl
  | Exact n -> ol = n && n >= dl
  | Range (lo, hi) -> ol >= lo && ol <= hi && ol >= dl

(* RFC 2622 §2: when operators stack ({set}^op or member^inner under
   outer), the outer operator applies to the prefix as if the inner one
   defined a base range; the standard collapses this to: outer wins unless
   it denotes an empty range, in which case the term matches nothing. We
   encode "nothing" as Range (n, m) with n > m never arising by keeping the
   simple replace-with-outer rule used by IRRd and bgpq4. *)
let compose outer inner =
  match outer with
  | None_ -> inner
  | _ -> outer

let is_more_specific = function
  | None_ -> false
  | Minus | Plus -> true
  | Exact _ | Range _ -> true

let equal a b = a = b
let pp fmt t = Format.pp_print_string fmt (to_string t)
