type 'a node = {
  mutable zero : 'a node option;
  mutable one : 'a node option;
  mutable values : (Prefix.t * 'a) list; (* bindings terminating here *)
}

type 'a t = {
  v4_root : 'a node;
  v6_root : 'a node;
  mutable count : int;
}

let fresh_node () = { zero = None; one = None; values = [] }
let create () = { v4_root = fresh_node (); v6_root = fresh_node (); count = 0 }
let root t p = if Prefix.is_v4 p then t.v4_root else t.v6_root

let add t prefix value =
  let rec descend node depth =
    if depth = prefix.Prefix.len then
      node.values <- (prefix, value) :: node.values
    else begin
      let child =
        if Prefix.bit prefix depth then
          match node.one with
          | Some c -> c
          | None ->
            let c = fresh_node () in
            node.one <- Some c;
            c
        else
          match node.zero with
          | Some c -> c
          | None ->
            let c = fresh_node () in
            node.zero <- Some c;
            c
      in
      descend child (depth + 1)
    end
  in
  descend (root t prefix) 0;
  t.count <- t.count + 1

let exact t prefix =
  let rec descend node depth =
    if depth = prefix.Prefix.len then List.map snd node.values
    else
      let child = if Prefix.bit prefix depth then node.one else node.zero in
      match child with None -> [] | Some c -> descend c (depth + 1)
  in
  descend (root t prefix) 0

let mem_exact t prefix = exact t prefix <> []

let covering t prefix =
  let rec descend node depth acc =
    let acc = List.rev_append node.values acc in
    if depth = prefix.Prefix.len then acc
    else
      let child = if Prefix.bit prefix depth then node.one else node.zero in
      match child with None -> acc | Some c -> descend c (depth + 1) acc
  in
  List.rev (descend (root t prefix) 0 [])

let covered_by t prefix =
  let rec subtree node acc =
    let acc = List.rev_append node.values acc in
    let acc = match node.zero with None -> acc | Some c -> subtree c acc in
    match node.one with None -> acc | Some c -> subtree c acc
  in
  let rec descend node depth =
    if depth = prefix.Prefix.len then subtree node []
    else
      let child = if Prefix.bit prefix depth then node.one else node.zero in
      match child with None -> [] | Some c -> descend c (depth + 1)
  in
  descend (root t prefix) 0

let length t = t.count

let iter f t =
  let rec walk node =
    List.iter (fun (p, v) -> f p v) node.values;
    Option.iter walk node.zero;
    Option.iter walk node.one
  in
  walk t.v4_root;
  walk t.v6_root

let fold f t init =
  let acc = ref init in
  iter (fun p v -> acc := f p v !acc) t;
  !acc
