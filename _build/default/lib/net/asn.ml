type t = int

let min_value = 0
let max_value = 4294967295

let in_range n = n >= min_value && n <= max_value

let of_string s =
  let s = Rz_util.Strings.strip s in
  let body =
    if String.length s >= 2 && (s.[0] = 'A' || s.[0] = 'a') && (s.[1] = 'S' || s.[1] = 's')
    then String.sub s 2 (String.length s - 2)
    else s
  in
  if body = "" then Error "empty ASN"
  else
    match String.index_opt body '.' with
    | Some i ->
      let hi = String.sub body 0 i and lo = String.sub body (i + 1) (String.length body - i - 1) in
      (match (int_of_string_opt hi, int_of_string_opt lo) with
       | Some hi, Some lo when hi >= 0 && hi <= 65535 && lo >= 0 && lo <= 65535 ->
         Ok ((hi lsl 16) lor lo)
       | _ -> Error (Printf.sprintf "malformed asdot ASN %S" s))
    | None ->
      (match int_of_string_opt body with
       | Some n when in_range n -> Ok n
       | Some _ -> Error (Printf.sprintf "ASN out of range %S" s)
       | None -> Error (Printf.sprintf "malformed ASN %S" s))

let of_string_exn s =
  match of_string s with Ok n -> n | Error msg -> invalid_arg msg

let to_string n = "AS" ^ string_of_int n

let to_asdot n =
  if n > 65535 then Printf.sprintf "%d.%d" (n lsr 16) (n land 0xFFFF)
  else string_of_int n

let is_private n =
  (n >= 64512 && n <= 65534) || (n >= 4200000000 && n <= 4294967294)

let is_reserved n = n = 0 || n = 23456 || n = 65535 || n = 4294967295
let compare = Int.compare
let equal = Int.equal
let pp fmt n = Format.pp_print_string fmt (to_string n)
