(** IPv4 and IPv6 addresses.

    IPv4 addresses are unsigned 32-bit values carried in an [int]; IPv6
    addresses are a pair of unsigned 64-bit halves. Only what the RPSL
    pipeline needs: parse, print, bit access, masking. *)

module V4 : sig
  type t = int
  (** Value in [0, 2^32). *)

  val of_string : string -> (t, string) result
  val to_string : t -> string

  val bit : t -> int -> bool
  (** [bit a i] is the i-th most significant bit (i in [0,31]). *)

  val mask : t -> int -> t
  (** [mask a len] zeroes all but the top [len] bits. *)
end

module V6 : sig
  type t = int64 * int64
  (** Big-endian (high 64 bits, low 64 bits). *)

  val of_string : string -> (t, string) result
  (** Parses full and [::]-compressed forms, without embedded IPv4 dotted
      quads (not used by the pipeline). *)

  val to_string : t -> string
  (** Canonical RFC 5952-ish output (longest zero run compressed). *)

  val bit : t -> int -> bool
  (** [bit a i] is the i-th most significant bit (i in [0,127]). *)

  val mask : t -> int -> t
  val compare : t -> t -> int
end
