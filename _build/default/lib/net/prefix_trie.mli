(** Binary trie keyed by prefix bits, holding a list of values per exact
    prefix. One trie holds one address family's prefixes; {!t} internally
    keeps one root per family so callers need not split.

    Supports the two queries route verification needs:
    - all entries whose prefix {e covers} a given prefix (walk down the
      observed prefix's bits), used to match a route against declared
      filter prefixes with range operators;
    - all entries {e covered by} a given prefix (subtree enumeration),
      used for customer-cone and more-specific analyses. *)

type 'a t

val create : unit -> 'a t
val add : 'a t -> Prefix.t -> 'a -> unit

val exact : 'a t -> Prefix.t -> 'a list
(** Values stored at exactly this prefix (most recent first). *)

val covering : 'a t -> Prefix.t -> (Prefix.t * 'a) list
(** All (prefix, value) entries whose prefix contains the argument,
    including an exact match; shortest (least specific) first. *)

val covered_by : 'a t -> Prefix.t -> (Prefix.t * 'a) list
(** All entries contained within the argument (including exact). *)

val mem_exact : 'a t -> Prefix.t -> bool
val length : 'a t -> int
(** Number of (prefix, value) bindings. *)

val iter : (Prefix.t -> 'a -> unit) -> 'a t -> unit
val fold : (Prefix.t -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
