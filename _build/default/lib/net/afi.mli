(** Address-family identifiers used by [mp-import]/[mp-export] rules
    (RFC 4012): an address family ([ipv4], [ipv6], [any]) qualified by a
    sub-family ([unicast], [multicast], [any]). *)

type family = Ipv4 | Ipv6 | Any_family
type subfamily = Unicast | Multicast | Any_sub

type t = { family : family; sub : subfamily }

val any : t
(** [afi any] / unqualified rules: matches every route. *)

val ipv4_unicast : t
val ipv6_unicast : t

val parse : string -> (t, string) result
(** Parses ["ipv4"], ["ipv6.unicast"], ["any.unicast"], ["any"], ... *)

val parse_list : string -> (t list, string) result
(** Comma-separated afi list, as in [afi ipv4.unicast, ipv6.unicast]. *)

val to_string : t -> string

val matches_prefix : t -> Prefix.t -> bool
(** Whether a (unicast) route with this prefix falls under the afi. BGP
    table dumps carry unicast routes, so [Multicast]-only afis match no
    observed route. *)

val matches_any : t list -> Prefix.t -> bool
(** [matches_any afis p] — true when the list is empty (no restriction) or
    any element matches. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
