(** Prefix-list aggregation — the space optimization BGPq4 applies to
    generated router filters (its [-A] flag): collapse a set of prefixes
    into the minimal list covering exactly the same address space.

    Two reductions run to fixpoint:
    - containment: a prefix covered by another in the list is dropped;
    - sibling merge: two prefixes that are the two halves of their common
      parent are replaced by the parent.

    Both preserve the represented address set exactly. *)

val aggregate : Prefix.t list -> Prefix.t list
(** Minimal equivalent prefix list, sorted. Families are aggregated
    independently and may be mixed in the input. *)

val covers_same_space : Prefix.t list -> Prefix.t list -> bool
(** Whether two prefix lists denote the same address set (used by the
    property tests; exact, via mutual containment of a canonical form). *)

val sibling : Prefix.t -> Prefix.t option
(** The other half of this prefix's parent ([None] for length 0). *)

val parent : Prefix.t -> Prefix.t option
