(** RPSL prefix range operators (RFC 2622 §2): [^-], [^+], [^n], [^n-m].

    A filter term like [192.0.2.0/24^+] matches the prefix itself and all
    more-specifics; [^n-m] matches more-specifics whose length lies in
    [n..m]. [None_] is the absence of an operator (exact match). *)

type t =
  | None_        (** exact prefix only *)
  | Minus        (** [^-] exclusive more-specifics *)
  | Plus         (** [^+] inclusive more-specifics *)
  | Exact of int (** [^n] more-specifics of length exactly [n] *)
  | Range of int * int (** [^n-m] more-specifics of length [n] to [m] *)

val parse : string -> (t, string) result
(** Parse the operator text including the caret, e.g. ["^24-32"]. The empty
    string parses to [None_]. *)

val to_string : t -> string
(** Render including the caret; [""] for [None_]. *)

val matches : t -> declared:Prefix.t -> observed:Prefix.t -> bool
(** Whether [observed] falls inside [declared] under the operator. *)

val compose : t -> t -> t
(** [compose outer inner] — RFC 2622 operator composition when a range
    operator is applied to a set whose members already carry operators
    (e.g. route-set members with [^+] referenced under [^24-32]).
    Follows the RFC rule: the outer operator replaces the inner one if the
    result is non-empty, using the more-specific interpretation. *)

val is_more_specific : t -> bool
(** True when the operator admits prefixes longer than the declared one. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
