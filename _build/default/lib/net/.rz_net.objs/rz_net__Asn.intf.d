lib/net/asn.mli: Format
