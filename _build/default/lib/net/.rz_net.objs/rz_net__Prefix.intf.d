lib/net/prefix.mli: Format Ipaddr
