lib/net/afi.mli: Format Prefix
