lib/net/ipaddr.ml: Array Int64 List Option Printf Rz_util String
