lib/net/ipaddr.mli:
