lib/net/prefix_agg.ml: Int64 List Prefix
