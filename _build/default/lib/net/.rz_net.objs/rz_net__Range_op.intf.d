lib/net/range_op.mli: Format Prefix
