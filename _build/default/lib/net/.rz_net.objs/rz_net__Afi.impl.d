lib/net/afi.ml: Format List Prefix Printf Rz_util String
