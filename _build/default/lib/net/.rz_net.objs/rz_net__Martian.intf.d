lib/net/martian.mli: Prefix
