lib/net/range_op.ml: Format Prefix Printf Rz_util String
