lib/net/asn.ml: Format Int Printf Rz_util String
