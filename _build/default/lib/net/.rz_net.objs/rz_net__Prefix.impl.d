lib/net/prefix.ml: Format Int Int64 Ipaddr List Printf Rz_util String
