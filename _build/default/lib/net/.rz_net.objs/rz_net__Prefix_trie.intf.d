lib/net/prefix_trie.mli: Prefix
