lib/net/prefix_trie.ml: List Option Prefix
