lib/net/prefix_agg.mli: Prefix
