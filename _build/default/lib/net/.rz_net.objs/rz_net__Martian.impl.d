lib/net/martian.ml: List Prefix
