let parent (p : Prefix.t) =
  if p.len = 0 then None
  else
    Some
      (match p.addr with
       | Prefix.V4 a -> Prefix.v4 a (p.len - 1)
       | Prefix.V6 a -> Prefix.v6 a (p.len - 1))

let sibling (p : Prefix.t) =
  if p.len = 0 then None
  else
    Some
      (match p.addr with
       | Prefix.V4 a ->
         let flipped = a lxor (1 lsl (32 - p.len)) in
         Prefix.v4 flipped p.len
       | Prefix.V6 (hi, lo) ->
         if p.len <= 64 then
           Prefix.v6 (Int64.logxor hi (Int64.shift_left 1L (64 - p.len)), lo) p.len
         else Prefix.v6 (hi, Int64.logxor lo (Int64.shift_left 1L (128 - p.len))) p.len)

(* Drop prefixes covered by an earlier (shorter or equal) one. The list
   must be sorted by Prefix.compare, which orders a covering prefix
   before everything it contains. *)
let drop_contained sorted =
  let rec go kept = function
    | [] -> List.rev kept
    | p :: rest ->
      if List.exists (fun k -> Prefix.contains k p) kept then go kept rest
      else go (p :: kept) rest
  in
  (* only the most recent kept prefixes can cover p; linear scan is fine
     for filter-sized lists *)
  go [] sorted

let rec merge_siblings sorted =
  let rec go acc changed = function
    | a :: b :: rest when a.Prefix.len = b.Prefix.len && sibling a = Some b ->
      (match parent a with
       | Some up -> go (up :: acc) true rest
       | None -> go (b :: a :: acc) changed rest)
    | x :: rest -> go (x :: acc) changed rest
    | [] -> (List.rev acc, changed)
  in
  let merged, changed = go [] false sorted in
  if changed then
    merge_siblings (drop_contained (List.sort_uniq Prefix.compare merged))
  else merged

let aggregate prefixes =
  prefixes
  |> List.sort_uniq Prefix.compare
  |> drop_contained
  |> merge_siblings

let covers_same_space a b =
  let canon l = aggregate l in
  let ca = canon a and cb = canon b in
  let covered_by l p = List.exists (fun q -> Prefix.contains q p) l in
  List.for_all (covered_by cb) ca && List.for_all (covered_by ca) cb
