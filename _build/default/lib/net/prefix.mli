(** IP prefixes (IPv4 and IPv6) — the unit over which RPSL filters and
    route objects are defined. Stored canonically: host bits are zeroed. *)

type addr = V4 of Ipaddr.V4.t | V6 of Ipaddr.V6.t

type t = private { addr : addr; len : int }

val v4 : Ipaddr.V4.t -> int -> t
(** @raise Invalid_argument if [len] is outside [0,32]. *)

val v6 : Ipaddr.V6.t -> int -> t
(** @raise Invalid_argument if [len] is outside [0,128]. *)

val of_string : string -> (t, string) result
(** Parse ["10.0.0.0/8"] or ["2001:db8::/32"]. Host bits are masked off. *)

val of_string_exn : string -> t
val to_string : t -> string

val is_v4 : t -> bool
val is_v6 : t -> bool

val max_len : t -> int
(** 32 for IPv4 prefixes, 128 for IPv6. *)

val bit : t -> int -> bool
(** [bit p i] is the i-th most significant address bit; [i < len p]. *)

val contains : t -> t -> bool
(** [contains super sub]: [sub] is equal to or more specific than
    [super]. Prefixes of different families never contain each other. *)

val compare : t -> t -> int
(** Total order: family, then address bits, then length. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val subnets : t -> int -> t list
(** [subnets p l] enumerates the [2^(l - len p)] subnets of [p] at length
    [l] (same family). Raises [Invalid_argument] when [l < len p] or the
    expansion exceeds 4096 prefixes (guards against absurd sweeps). *)

val default_v4 : t
(** [0.0.0.0/0] *)

val default_v6 : t
(** [::/0] *)
