module V4 = struct
  type t = int

  let of_string s =
    let parts = String.split_on_char '.' (Rz_util.Strings.strip s) in
    match parts with
    | [ a; b; c; d ] ->
      let byte x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 && x <> "" -> Some v
        | _ -> None
      in
      (match (byte a, byte b, byte c, byte d) with
       | Some a, Some b, Some c, Some d -> Ok ((a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d)
       | _ -> Error (Printf.sprintf "malformed IPv4 address %S" s))
    | _ -> Error (Printf.sprintf "malformed IPv4 address %S" s)

  let to_string a =
    Printf.sprintf "%d.%d.%d.%d" ((a lsr 24) land 0xFF) ((a lsr 16) land 0xFF)
      ((a lsr 8) land 0xFF) (a land 0xFF)

  let bit a i = (a lsr (31 - i)) land 1 = 1

  let mask a len =
    if len <= 0 then 0
    else if len >= 32 then a
    else a land (((1 lsl len) - 1) lsl (32 - len))
end

module V6 = struct
  type t = int64 * int64

  let of_string s =
    let s = Rz_util.Strings.strip s in
    let fail () = Error (Printf.sprintf "malformed IPv6 address %S" s) in
    let group g =
      if g = "" || String.length g > 4 then None
      else
        match int_of_string_opt ("0x" ^ g) with
        | Some v when v >= 0 && v <= 0xFFFF -> Some v
        | _ -> None
    in
    let to_t groups =
      if List.length groups <> 8 then fail ()
      else
        match List.map group groups with
        | parts when List.for_all Option.is_some parts ->
          let vals = List.map Option.get parts in
          let fold lst =
            List.fold_left (fun acc v -> Int64.logor (Int64.shift_left acc 16) (Int64.of_int v)) 0L lst
          in
          let rec split i acc = function
            | rest when i = 4 -> (List.rev acc, rest)
            | x :: rest -> split (i + 1) (x :: acc) rest
            | [] -> (List.rev acc, [])
          in
          let hi, lo = split 0 [] vals in
          Ok (fold hi, fold lo)
        | _ -> fail ()
    in
    match Rz_util.Strings.split_on_string ~sep:"::" s with
    | [ whole ] -> to_t (String.split_on_char ':' whole)
    | [ left; right ] ->
      let lgroups = if left = "" then [] else String.split_on_char ':' left in
      let rgroups = if right = "" then [] else String.split_on_char ':' right in
      let fill = 8 - List.length lgroups - List.length rgroups in
      if fill < 1 then fail ()
      else to_t (lgroups @ List.init fill (fun _ -> "0") @ rgroups)
    | _ -> fail ()

  let groups (hi, lo) =
    let g64 x =
      [ Int64.to_int (Int64.logand (Int64.shift_right_logical x 48) 0xFFFFL);
        Int64.to_int (Int64.logand (Int64.shift_right_logical x 32) 0xFFFFL);
        Int64.to_int (Int64.logand (Int64.shift_right_logical x 16) 0xFFFFL);
        Int64.to_int (Int64.logand x 0xFFFFL) ]
    in
    g64 hi @ g64 lo

  let to_string t =
    let gs = Array.of_list (groups t) in
    (* Find the longest run of zero groups (length >= 2) for :: compression. *)
    let best_start = ref (-1) and best_len = ref 0 in
    let i = ref 0 in
    while !i < 8 do
      if gs.(!i) = 0 then begin
        let j = ref !i in
        while !j < 8 && gs.(!j) = 0 do incr j done;
        if !j - !i > !best_len then begin
          best_len := !j - !i;
          best_start := !i
        end;
        i := !j
      end
      else incr i
    done;
    if !best_len < 2 then
      String.concat ":" (Array.to_list (Array.map (Printf.sprintf "%x") gs))
    else begin
      let before = Array.to_list (Array.sub gs 0 !best_start) in
      let after = Array.to_list (Array.sub gs (!best_start + !best_len) (8 - !best_start - !best_len)) in
      let fmt l = String.concat ":" (List.map (Printf.sprintf "%x") l) in
      fmt before ^ "::" ^ fmt after
    end

  let bit (hi, lo) i =
    if i < 64 then Int64.logand (Int64.shift_right_logical hi (63 - i)) 1L = 1L
    else Int64.logand (Int64.shift_right_logical lo (63 - (i - 64))) 1L = 1L

  let mask64 x len =
    if len <= 0 then 0L
    else if len >= 64 then x
    else Int64.logand x (Int64.shift_left Int64.minus_one (64 - len))

  let mask (hi, lo) len =
    if len <= 64 then (mask64 hi len, 0L) else (hi, mask64 lo (len - 64))

  let compare (h1, l1) (h2, l2) =
    let c = Int64.unsigned_compare h1 h2 in
    if c <> 0 then c else Int64.unsigned_compare l1 l2
end
