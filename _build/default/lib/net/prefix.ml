type addr = V4 of Ipaddr.V4.t | V6 of Ipaddr.V6.t
type t = { addr : addr; len : int }

let v4 a len =
  if len < 0 || len > 32 then invalid_arg "Prefix.v4: bad length";
  { addr = V4 (Ipaddr.V4.mask a len); len }

let v6 a len =
  if len < 0 || len > 128 then invalid_arg "Prefix.v6: bad length";
  { addr = V6 (Ipaddr.V6.mask a len); len }

let of_string s =
  let s = Rz_util.Strings.strip s in
  match String.index_opt s '/' with
  | None -> Error (Printf.sprintf "prefix %S is missing /len" s)
  | Some i ->
    let addr_s = String.sub s 0 i in
    let len_s = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt len_s with
     | None -> Error (Printf.sprintf "bad prefix length in %S" s)
     | Some len ->
       if String.contains addr_s ':' then
         match Ipaddr.V6.of_string addr_s with
         | Ok a when len >= 0 && len <= 128 -> Ok (v6 a len)
         | Ok _ -> Error (Printf.sprintf "bad IPv6 prefix length in %S" s)
         | Error e -> Error e
       else
         match Ipaddr.V4.of_string addr_s with
         | Ok a when len >= 0 && len <= 32 -> Ok (v4 a len)
         | Ok _ -> Error (Printf.sprintf "bad IPv4 prefix length in %S" s)
         | Error e -> Error e)

let of_string_exn s =
  match of_string s with Ok p -> p | Error msg -> invalid_arg msg

let to_string { addr; len } =
  match addr with
  | V4 a -> Printf.sprintf "%s/%d" (Ipaddr.V4.to_string a) len
  | V6 a -> Printf.sprintf "%s/%d" (Ipaddr.V6.to_string a) len

let is_v4 t = match t.addr with V4 _ -> true | V6 _ -> false
let is_v6 t = not (is_v4 t)
let max_len t = if is_v4 t then 32 else 128

let bit t i =
  match t.addr with V4 a -> Ipaddr.V4.bit a i | V6 a -> Ipaddr.V6.bit a i

let contains super sub =
  super.len <= sub.len
  &&
  match (super.addr, sub.addr) with
  | V4 a, V4 b -> Ipaddr.V4.mask b super.len = a
  | V6 a, V6 b -> Ipaddr.V6.mask b super.len = a
  | _ -> false

let compare a b =
  match (a.addr, b.addr) with
  | V4 _, V6 _ -> -1
  | V6 _, V4 _ -> 1
  | V4 x, V4 y ->
    let c = Int.compare x y in
    if c <> 0 then c else Int.compare a.len b.len
  | V6 x, V6 y ->
    let c = Ipaddr.V6.compare x y in
    if c <> 0 then c else Int.compare a.len b.len

let equal a b = compare a b = 0
let pp fmt t = Format.pp_print_string fmt (to_string t)

let subnets t l =
  if l < t.len then invalid_arg "Prefix.subnets: target shorter than prefix";
  let count_bits = l - t.len in
  if count_bits > 12 then invalid_arg "Prefix.subnets: expansion too large";
  let count = 1 lsl count_bits in
  match t.addr with
  | V4 a ->
    List.init count (fun i -> v4 (a lor (i lsl (32 - l))) l)
  | V6 (hi, lo) ->
    List.init count (fun i ->
        let i64 = Int64.of_int i in
        if l <= 64 then v6 (Int64.logor hi (Int64.shift_left i64 (64 - l)), lo) l
        else v6 (hi, Int64.logor lo (Int64.shift_left i64 (128 - l))) l)

let default_v4 = v4 0 0
let default_v6 = v6 (0L, 0L) 0
