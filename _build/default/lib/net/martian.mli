(** The [fltr-martian] built-in filter: reserved, private, and otherwise
    unroutable ("bogon") address space, per RFC 2622's fltr-martian object
    updated with the usual operator bogon lists. *)

val v4_list : Prefix.t list
(** IPv4 martian prefixes (each matched with inclusive more-specifics). *)

val v6_list : Prefix.t list
(** IPv6 martian prefixes. *)

val is_martian : Prefix.t -> bool
(** True when the prefix is equal to or more specific than a martian
    prefix, or is an overly-long announcement (IPv4 longer than /24, IPv6
    longer than /48) — the same policy the paper's AS199284 example
    encodes. *)
