(** Lowering: interpret raw RPSL objects into the IR.

    Feed dumps in {e priority order} (the paper's Table 1 grouping:
    authoritative registries first, then RADB, then the rest): for objects
    defined in several IRRs, the first definition wins; [route] objects are
    keyed by (prefix, origin) so identical pairs from lower-priority IRRs
    are dropped while genuinely different origins accumulate (that
    multiplicity is itself one of the paper's findings). *)

val add_objects : Ir.t -> source:string -> Rz_rpsl.Obj.t list -> unit
(** Lower the routing-related objects of one dump into [ir], skipping
    non-routing classes, never overwriting higher-priority definitions,
    and appending lowering problems to [ir.errors]. *)

val add_dump : Ir.t -> source:string -> string -> Rz_rpsl.Reader.error list
(** Parse RPSL text and lower it; returns the reader-level errors (also
    appended to [ir.errors] as syntax errors). *)

val lower_rule :
  direction:[ `Import | `Export ] ->
  multiprotocol:bool ->
  string ->
  (Rz_policy.Ast.rule, string) result
(** Exposed for tests: lower one rule attribute value. *)
