lib/ir/lower.mli: Ir Rz_policy Rz_rpsl
