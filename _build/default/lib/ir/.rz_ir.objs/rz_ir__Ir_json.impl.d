lib/ir/ir_json.ml: Fun Hashtbl Ir List Option Rz_aspath Rz_json Rz_net Rz_policy
