lib/ir/ir.mli: Hashtbl Rz_net Rz_policy
