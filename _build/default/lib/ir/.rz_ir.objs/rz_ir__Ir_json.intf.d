lib/ir/ir_json.mli: Ir Rz_json Rz_policy
