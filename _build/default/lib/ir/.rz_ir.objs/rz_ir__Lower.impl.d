lib/ir/lower.ml: Hashtbl Ir List Option Printf Result Rz_net Rz_policy Rz_rpsl Rz_util String
