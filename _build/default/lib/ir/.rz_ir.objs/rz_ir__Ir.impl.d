lib/ir/ir.ml: Hashtbl List Rz_net Rz_policy Rz_rpsl Rz_util
