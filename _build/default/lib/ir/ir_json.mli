(** JSON export of the IR, mirroring the paper's exported representation
    so external tools can consume interpreted RPSL without reimplementing
    the parser. Policies are exported structurally (peerings, actions,
    filters as trees) with a [text] field holding the canonical rendering. *)

val export : Ir.t -> Rz_json.Json.t
(** Whole-IR document: aut-nums, sets, routes, and lowering errors. *)

val rule_to_json : Rz_policy.Ast.rule -> Rz_json.Json.t
val filter_to_json : Rz_policy.Ast.filter -> Rz_json.Json.t
val peering_to_json : Rz_policy.Ast.peering -> Rz_json.Json.t

val export_string : ?indent:int -> Ir.t -> string
(** [export] composed with serialization. *)
