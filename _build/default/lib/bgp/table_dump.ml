type t = {
  collector : string;
  routes : Route.t list;
}

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "# collector: %s\n" t.collector);
  List.iter
    (fun r ->
      Buffer.add_string buf (Route.to_line r);
      Buffer.add_char buf '\n')
    t.routes;
  Buffer.contents buf

let lines text =
  String.split_on_char '\n' text
  |> List.map Rz_util.Strings.strip
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let of_string ~collector text =
  let rec go acc = function
    | [] -> Ok { collector; routes = List.rev acc }
    | line :: rest ->
      (match Route.of_line line with
       | Ok r -> go (r :: acc) rest
       | Error e -> Error e)
  in
  go [] (lines text)

let of_string_lossy ~collector text =
  let dropped = ref 0 in
  let routes =
    List.filter_map
      (fun line ->
        match Route.of_line line with
        | Ok r -> Some r
        | Error _ ->
          incr dropped;
          None)
      (lines text)
  in
  ({ collector; routes }, !dropped)

let save t path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load ~collector path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  of_string ~collector text
