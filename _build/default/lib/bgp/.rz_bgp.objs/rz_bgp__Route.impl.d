lib/bgp/route.ml: Format List Option Printf Rz_net Rz_util String
