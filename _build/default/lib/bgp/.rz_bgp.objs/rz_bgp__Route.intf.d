lib/bgp/route.mli: Format Rz_net
