lib/bgp/table_dump.ml: Buffer List Printf Route Rz_util String
