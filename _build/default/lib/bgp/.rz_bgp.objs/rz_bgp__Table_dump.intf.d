lib/bgp/table_dump.mli: Route
