type segment =
  | Seq of Rz_net.Asn.t
  | Set of Rz_net.Asn.t list

type t = {
  prefix : Rz_net.Prefix.t;
  path : segment list;
}

let make prefix asns = { prefix; path = List.map (fun a -> Seq a) asns }

let contains_as_set t =
  List.exists (function Set _ -> true | Seq _ -> false) t.path

let origin t =
  match List.rev t.path with
  | Seq asn :: _ -> Some asn
  | _ -> None

let dedup_path t =
  let plain = List.filter_map (function Seq a -> Some a | Set _ -> None) t.path in
  let rec dedup = function
    | a :: (b :: _ as rest) -> if a = b then dedup rest else a :: dedup rest
    | l -> l
  in
  dedup plain

let is_single_as t = match dedup_path t with [ _ ] -> true | _ -> false

let segment_to_string = function
  | Seq a -> string_of_int a
  | Set asns -> "{" ^ String.concat "," (List.map string_of_int asns) ^ "}"

let to_line t =
  Printf.sprintf "%s|%s"
    (Rz_net.Prefix.to_string t.prefix)
    (String.concat " " (List.map segment_to_string t.path))

let parse_segment word =
  if String.length word >= 2 && word.[0] = '{' && word.[String.length word - 1] = '}' then
    let inner = String.sub word 1 (String.length word - 2) in
    let parts = String.split_on_char ',' inner |> List.filter (fun s -> s <> "") in
    let asns = List.map int_of_string_opt parts in
    if List.for_all Option.is_some asns then Some (Set (List.map Option.get asns))
    else None
  else
    match int_of_string_opt word with Some a -> Some (Seq a) | None -> None

let of_line line =
  match String.index_opt line '|' with
  | None -> Error (Printf.sprintf "route line %S is missing |" line)
  | Some i ->
    let prefix_s = String.sub line 0 i in
    let path_s = String.sub line (i + 1) (String.length line - i - 1) in
    (match Rz_net.Prefix.of_string prefix_s with
     | Error e -> Error e
     | Ok prefix ->
       let words = Rz_util.Strings.split_words path_s in
       let segments = List.map parse_segment words in
       if List.for_all Option.is_some segments then
         Ok { prefix; path = List.map Option.get segments }
       else Error (Printf.sprintf "bad AS-path in %S" line))

let pp fmt t = Format.pp_print_string fmt (to_line t)
let equal a b = a = b
