(** One BGP route as observed at a collector: a prefix and its AS-path.

    The AS-path is in wire order — the collector-side neighbor first, the
    origin AS last. Paths may contain prepending (repeated ASNs) and, in
    rare discouraged cases, BGP AS_SETs; the paper removes prepending and
    ignores routes containing AS_SETs (0.03%) before verification. *)

type segment =
  | Seq of Rz_net.Asn.t       (** ordinary AS_SEQUENCE element *)
  | Set of Rz_net.Asn.t list  (** a BGP AS_SET aggregate element *)

type t = {
  prefix : Rz_net.Prefix.t;
  path : segment list;
}

val make : Rz_net.Prefix.t -> Rz_net.Asn.t list -> t
(** Build a route with a plain sequence path. *)

val contains_as_set : t -> bool
val origin : t -> Rz_net.Asn.t option
(** Last path element when it is a plain sequence element. *)

val dedup_path : t -> Rz_net.Asn.t list
(** Plain ASN path with consecutive duplicates (prepending) collapsed.
    Only valid when {!contains_as_set} is false; AS_SET segments are
    skipped. *)

val is_single_as : t -> bool
(** Paths with one AS have no inter-AS link to verify. *)

val to_line : t -> string
(** Serialize as the collector dump line format:
    [prefix|asn asn asn|{asn,asn}] — AS_SETs in braces. *)

val of_line : string -> (t, string) result

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
