(** Collector table dumps: the line-oriented text equivalent of the MRT
    RIB dumps the paper downloads from RIPE RIS and RouteViews. One line
    per route, [#]-comments and blank lines ignored. *)

type t = {
  collector : string;         (** collector name, e.g. ["rrc00"] *)
  routes : Route.t list;
}

val to_string : t -> string
val of_string : collector:string -> string -> (t, string) result
(** Fails on the first malformed line. *)

val of_string_lossy : collector:string -> string -> t * int
(** Skips malformed lines, returning how many were dropped. *)

val save : t -> string -> unit
val load : collector:string -> string -> (t, string) result
